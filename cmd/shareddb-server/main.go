// Command shareddb-server exposes a SharedDB instance over TCP.
//
//	shareddb-server -listen :5843 [-wal dir] [-fold] [-text]
//
// By default it speaks the binary wire protocol (internal/wire): length-
// prefixed frames, prepared-statement handles with typed parameter
// binding, streaming result cursors, and pipelined submission with
// out-of-order completion — one connection keeps a window of queries in
// flight, so duplicates land in the same generation and fold (README
// "Network protocol" documents the frame layout and guarantees; the
// `client` package is the Go client). Admission rejections travel as
// typed BUSY frames carrying the engine's RetryAfter hint.
//
// Every connected client's statements join the same always-on global
// plan, so concurrent clients share work exactly as the paper describes.
// The port default matches the paper's Figure 5 example ("Output Network,
// TCP Port 5843").
//
// -text serves the legacy line protocol instead (one SQL statement per
// line, tab-separated rows, SUB/UNSUB push frames). It is kept for one
// release for existing clients; see the README migration notes.
package main

import (
	"flag"
	"log"
	"net"
	"strings"

	"shareddb"
	"shareddb/internal/server"
)

func main() {
	listen := flag.String("listen", ":5843", "listen address")
	wal := flag.String("wal", "", "WAL directory (empty = no durability)")
	pipeline := flag.Int("pipeline", 0, "max generations in flight (0 = engine default, 1 = serial; negative values are rejected)")
	workers := flag.Int("workers", 0, "intra-operator worker pool per cycle (0 = GOMAXPROCS, 1 = serial)")
	shards := flag.Int("shards", 0, "shard engines with hash-partitioned tables (0 or 1 = single engine)")
	columnar := flag.Bool("columnar", false, "scan the delta-maintained columnar mirror instead of the row store")
	shardWorkers := flag.Int("shard-workers", 0, "workers per shard engine (0 = GOMAXPROCS/shards split)")
	replicate := flag.String("replicate", "", "comma-separated tables to replicate to every shard instead of partitioning")
	partition := flag.String("partition", "", "partition-key overrides as table=col[+col...],... (default: primary key)")
	maxDelay := flag.Duration("max-delay", 0, "per-generation latency SLO; enables SLO batch sizing and the slow-query breaker (0 = off, minimum 1ms)")
	queueLimit := flag.Int("queue-limit", 0, "max submissions queued per engine before BUSY rejections (0 = unlimited)")
	stmtQuota := flag.Int("stmt-quota", 0, "max activations of one statement per generation; excess shed to later generations (0 = unlimited)")
	fold := flag.Bool("fold", false, "collapse identical concurrent reads into one activation with a shared fan-out")
	foldSubsume := flag.Bool("fold-subsume", false, "also serve equality restrictions from covering full scans (implies -fold semantics; requires -fold)")
	window := flag.Int("window", 0, "per-connection in-flight request window for the binary protocol (0 = default)")
	text := flag.Bool("text", false, "serve the legacy line protocol instead of the binary wire protocol (kept for one release)")
	flag.Parse()

	cfg := shareddb.Config{WALDir: *wal, MaxInFlightGenerations: *pipeline, Workers: *workers, Shards: *shards,
		ColumnarScan: *columnar, ShardWorkers: *shardWorkers,
		MaxGenerationDelay: *maxDelay, QueueDepthLimit: *queueLimit, StatementQuota: *stmtQuota,
		FoldQueries: *fold, FoldSubsume: *foldSubsume}
	if *replicate != "" {
		cfg.ReplicatedTables = strings.Split(*replicate, ",")
	}
	if *partition != "" {
		cfg.PartitionKeys = map[string][]string{}
		for _, spec := range strings.Split(*partition, ",") {
			table, cols, ok := strings.Cut(spec, "=")
			if !ok {
				log.Fatalf("bad -partition entry %q (want table=col[+col...])", spec)
			}
			cfg.PartitionKeys[table] = strings.Split(cols, "+")
		}
	}
	db, err := shareddb.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	proto := "binary"
	if *text {
		proto = "text"
	}
	log.Printf("shareddb-server listening on %s (%s protocol)", ln.Addr(), proto)
	srv := server.New(db, server.Options{Window: *window, TextProtocol: *text})
	defer srv.Close()
	if err := srv.Serve(ln); err != nil {
		log.Fatal(err)
	}
}
