// Command shareddb-server exposes a SharedDB instance over TCP with a
// simple line protocol (one SQL statement per line, results as
// tab-separated rows terminated by "OK <n rows>" or "ERR <message>").
// With admission control enabled (-max-delay / -queue-limit / -stmt-quota)
// an overloaded server answers "BUSY <retry-after-ms> <reason>" instead of
// queueing the statement — clients should back off for the hinted
// milliseconds and resubmit.
//
//	shareddb-server -listen :5843 [-wal dir]
//
// Every connected client's statements join the same always-on global plan,
// so concurrent clients share work exactly as the paper describes. The
// port default matches the paper's Figure 5 example ("Output Network, TCP
// Port 5843").
//
// Besides SQL, the protocol answers these verbs: EXPLAIN PLAN (the global
// plan), STATS (engine counters as name<TAB>value rows, including the
// -fold fan-out counters), SUB/UNSUB (standing queries) and QUIT.
//
// SUB <select> registers the statement as a standing query and answers
// "OK SUB <id>". From then on the server pushes asynchronous frames on the
// connection whenever a generation changes the result:
//
//	!SUB <id> <gen> FULL <n>     followed by n tab-separated rows
//	!SUB <id> <gen> DELTA <a> <r>  followed by a "+"-prefixed added rows
//	                               and r "-"-prefixed removed rows
//
// Frames start with "!" so clients can separate them from statement
// responses; a frame is never interleaved inside another response. UNSUB
// <id> detaches the standing query. All subscriptions close with the
// connection.
//
// Try it:
//
//	echo "CREATE TABLE t (a INT, PRIMARY KEY (a))" | nc localhost 5843
//	echo "STATS" | nc localhost 5843
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"strconv"
	"strings"
	"sync"

	"shareddb"
	"shareddb/internal/types"
)

func main() {
	listen := flag.String("listen", ":5843", "listen address")
	wal := flag.String("wal", "", "WAL directory (empty = no durability)")
	pipeline := flag.Int("pipeline", 0, "max generations in flight (0 = engine default, 1 = serial; negative values are rejected)")
	workers := flag.Int("workers", 0, "intra-operator worker pool per cycle (0 = GOMAXPROCS, 1 = serial)")
	shards := flag.Int("shards", 0, "shard engines with hash-partitioned tables (0 or 1 = single engine)")
	columnar := flag.Bool("columnar", false, "scan the delta-maintained columnar mirror instead of the row store")
	shardWorkers := flag.Int("shard-workers", 0, "workers per shard engine (0 = GOMAXPROCS/shards split)")
	replicate := flag.String("replicate", "", "comma-separated tables to replicate to every shard instead of partitioning")
	partition := flag.String("partition", "", "partition-key overrides as table=col[+col...],... (default: primary key)")
	maxDelay := flag.Duration("max-delay", 0, "per-generation latency SLO; enables SLO batch sizing and the slow-query breaker (0 = off, minimum 1ms)")
	queueLimit := flag.Int("queue-limit", 0, "max submissions queued per engine before BUSY rejections (0 = unlimited)")
	stmtQuota := flag.Int("stmt-quota", 0, "max activations of one statement per generation; excess shed to later generations (0 = unlimited)")
	fold := flag.Bool("fold", false, "collapse identical concurrent reads into one activation with a shared fan-out")
	foldSubsume := flag.Bool("fold-subsume", false, "also serve equality restrictions from covering full scans (implies -fold semantics; requires -fold)")
	flag.Parse()

	cfg := shareddb.Config{WALDir: *wal, MaxInFlightGenerations: *pipeline, Workers: *workers, Shards: *shards,
		ColumnarScan: *columnar, ShardWorkers: *shardWorkers,
		MaxGenerationDelay: *maxDelay, QueueDepthLimit: *queueLimit, StatementQuota: *stmtQuota,
		FoldQueries: *fold, FoldSubsume: *foldSubsume}
	if *replicate != "" {
		cfg.ReplicatedTables = strings.Split(*replicate, ",")
	}
	if *partition != "" {
		cfg.PartitionKeys = map[string][]string{}
		for _, spec := range strings.Split(*partition, ",") {
			table, cols, ok := strings.Cut(spec, "=")
			if !ok {
				log.Fatalf("bad -partition entry %q (want table=col[+col...])", spec)
			}
			cfg.PartitionKeys[table] = strings.Split(cols, "+")
		}
	}
	db, err := shareddb.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("shareddb-server listening on %s", ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Printf("accept: %v", err)
			continue
		}
		go serve(db, conn)
	}
}

// connState is one client connection: its buffered writer (shared between
// the serve loop and subscription pusher goroutines, so every complete
// frame is written under mu) and its open standing queries.
type connState struct {
	mu     sync.Mutex
	w      *bufio.Writer
	subs   map[uint64]*shareddb.Subscription
	nextID uint64
}

func serve(db *shareddb.DB, conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	cs := &connState{w: bufio.NewWriter(conn), subs: map[uint64]*shareddb.Subscription{}}
	defer func() {
		cs.mu.Lock()
		for _, sub := range cs.subs {
			sub.Close()
		}
		cs.w.Flush()
		cs.mu.Unlock()
	}()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		upper := strings.ToUpper(line)
		cs.mu.Lock()
		w := cs.w
		switch {
		case upper == "QUIT" || upper == "EXIT":
			fmt.Fprintln(w, "BYE")
			w.Flush()
			cs.mu.Unlock()
			return
		case upper == "EXPLAIN PLAN":
			fmt.Fprint(w, db.DescribePlan())
			fmt.Fprintln(w, "OK")
		case upper == "STATS":
			writeStats(w, db.Stats())
		case strings.HasPrefix(upper, "SUB "):
			subscribe(db, cs, strings.TrimSpace(line[4:]))
		case strings.HasPrefix(upper, "UNSUB "):
			unsubscribe(cs, strings.TrimSpace(line[6:]))
		default:
			execute(db, w, line)
		}
		w.Flush()
		cs.mu.Unlock()
	}
}

// subscribe answers the SUB verb. Caller holds cs.mu.
func subscribe(db *shareddb.DB, cs *connState, sqlText string) {
	stmt, err := db.Prepare(sqlText)
	if err != nil {
		fail(cs.w, err)
		return
	}
	sub, err := db.Subscribe(context.Background(), stmt)
	if err != nil {
		fail(cs.w, err)
		return
	}
	cs.nextID++
	id := cs.nextID
	cs.subs[id] = sub
	fmt.Fprintf(cs.w, "OK SUB %d\n", id)
	go pushUpdates(cs, id, sub)
}

// unsubscribe answers the UNSUB verb. Caller holds cs.mu.
func unsubscribe(cs *connState, arg string) {
	id, err := strconv.ParseUint(arg, 10, 64)
	if err != nil {
		fmt.Fprintf(cs.w, "ERR bad subscription id %q\n", arg)
		return
	}
	sub, ok := cs.subs[id]
	if !ok {
		fmt.Fprintf(cs.w, "ERR no subscription %d\n", id)
		return
	}
	sub.Close()
	delete(cs.subs, id)
	fmt.Fprintf(cs.w, "OK UNSUB %d\n", id)
}

// pushUpdates streams one subscription's updates as asynchronous "!SUB"
// frames; it exits when the subscription closes (UNSUB, connection end or
// database shutdown).
func pushUpdates(cs *connState, id uint64, sub *shareddb.Subscription) {
	for u := range sub.Updates() {
		cs.mu.Lock()
		if u.Full {
			fmt.Fprintf(cs.w, "!SUB %d %d FULL %d\n", id, u.Gen, len(u.Rows))
			for _, row := range u.Rows {
				fmt.Fprintln(cs.w, rowCells(row))
			}
		} else {
			fmt.Fprintf(cs.w, "!SUB %d %d DELTA %d %d\n", id, u.Gen, len(u.Added), len(u.Removed))
			for _, row := range u.Added {
				fmt.Fprintf(cs.w, "+%s\n", rowCells(row))
			}
			for _, row := range u.Removed {
				fmt.Fprintf(cs.w, "-%s\n", rowCells(row))
			}
		}
		cs.w.Flush()
		cs.mu.Unlock()
	}
}

func rowCells(row types.Row) string {
	cells := make([]string, len(row))
	for i, v := range row {
		cells[i] = v.String()
	}
	return strings.Join(cells, "\t")
}

// writeStats answers the STATS verb: one "name<TAB>value" line per counter,
// terminated like a result set so existing clients can parse it.
func writeStats(w *bufio.Writer, st shareddb.Stats) {
	rows := []struct {
		name  string
		value interface{}
	}{
		{"generations", st.Generations},
		{"queries_run", st.QueriesRun},
		{"writes_applied", st.WritesApplied},
		{"folded_queries", st.FoldedQueries},
		{"subsumed_queries", st.SubsumedQueries},
		{"fold_hit_rate", fmt.Sprintf("%.4f", st.FoldHitRate())},
		{"in_flight_generations", st.InFlightGenerations},
		{"queue_depth", st.QueueDepth},
		{"shed", st.Shed},
		{"rejected", st.Rejected},
		{"breaker_trips", st.BreakerTrips},
		{"subscriptions_active", st.SubscriptionsActive},
		{"subscription_updates", st.SubscriptionUpdates},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%v\n", r.name, r.value)
	}
	fmt.Fprintf(w, "OK %d rows\n", len(rows))
}

// fail writes the error response: "BUSY <retry-ms> <reason>" for admission
// rejections (backpressure — the client should wait and resubmit), "ERR
// <message>" for everything else.
func fail(w *bufio.Writer, err error) {
	var oe *shareddb.OverloadError
	if errors.As(err, &oe) {
		retry := oe.RetryAfter.Milliseconds()
		if retry < 1 {
			retry = 1
		}
		fmt.Fprintf(w, "BUSY %d %s\n", retry, oe.Reason)
		return
	}
	fmt.Fprintf(w, "ERR %v\n", err)
}

func execute(db *shareddb.DB, w *bufio.Writer, sqlText string) {
	upper := strings.ToUpper(sqlText)
	if strings.HasPrefix(upper, "SELECT") {
		rows, err := db.Query(sqlText)
		if err != nil {
			fail(w, err)
			return
		}
		fmt.Fprintln(w, strings.Join(rows.Columns(), "\t"))
		for rows.Next() {
			row := rows.Row()
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = v.String()
			}
			fmt.Fprintln(w, strings.Join(cells, "\t"))
		}
		fmt.Fprintf(w, "OK %d rows\n", rows.Len())
		return
	}
	res, err := db.Exec(sqlText)
	if err != nil {
		fail(w, err)
		return
	}
	fmt.Fprintf(w, "OK %d rows\n", res.RowsAffected)
}
