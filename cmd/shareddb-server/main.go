// Command shareddb-server exposes a SharedDB instance over TCP with a
// simple line protocol (one SQL statement per line, results as
// tab-separated rows terminated by "OK <n rows>" or "ERR <message>").
// With admission control enabled (-max-delay / -queue-limit / -stmt-quota)
// an overloaded server answers "BUSY <retry-after-ms> <reason>" instead of
// queueing the statement — clients should back off for the hinted
// milliseconds and resubmit.
//
//	shareddb-server -listen :5843 [-wal dir]
//
// Every connected client's statements join the same always-on global plan,
// so concurrent clients share work exactly as the paper describes. The
// port default matches the paper's Figure 5 example ("Output Network, TCP
// Port 5843").
//
// Besides SQL, the protocol answers three verbs: EXPLAIN PLAN (the global
// plan), STATS (engine counters as name<TAB>value rows, including the
// -fold fan-out counters) and QUIT.
//
// Try it:
//
//	echo "CREATE TABLE t (a INT, PRIMARY KEY (a))" | nc localhost 5843
//	echo "STATS" | nc localhost 5843
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"strings"

	"shareddb"
)

func main() {
	listen := flag.String("listen", ":5843", "listen address")
	wal := flag.String("wal", "", "WAL directory (empty = no durability)")
	pipeline := flag.Int("pipeline", 0, "max generations in flight (0 = engine default, 1 = serial; negative values are rejected)")
	workers := flag.Int("workers", 0, "intra-operator worker pool per cycle (0 = GOMAXPROCS, 1 = serial)")
	shards := flag.Int("shards", 0, "shard engines with hash-partitioned tables (0 or 1 = single engine)")
	replicate := flag.String("replicate", "", "comma-separated tables to replicate to every shard instead of partitioning")
	partition := flag.String("partition", "", "partition-key overrides as table=col[+col...],... (default: primary key)")
	maxDelay := flag.Duration("max-delay", 0, "per-generation latency SLO; enables SLO batch sizing and the slow-query breaker (0 = off, minimum 1ms)")
	queueLimit := flag.Int("queue-limit", 0, "max submissions queued per engine before BUSY rejections (0 = unlimited)")
	stmtQuota := flag.Int("stmt-quota", 0, "max activations of one statement per generation; excess shed to later generations (0 = unlimited)")
	fold := flag.Bool("fold", false, "collapse identical concurrent reads into one activation with a shared fan-out")
	foldSubsume := flag.Bool("fold-subsume", false, "also serve equality restrictions from covering full scans (implies -fold semantics; requires -fold)")
	flag.Parse()

	cfg := shareddb.Config{WALDir: *wal, MaxInFlightGenerations: *pipeline, Workers: *workers, Shards: *shards,
		MaxGenerationDelay: *maxDelay, QueueDepthLimit: *queueLimit, StatementQuota: *stmtQuota,
		FoldQueries: *fold, FoldSubsume: *foldSubsume}
	if *replicate != "" {
		cfg.ReplicatedTables = strings.Split(*replicate, ",")
	}
	if *partition != "" {
		cfg.PartitionKeys = map[string][]string{}
		for _, spec := range strings.Split(*partition, ",") {
			table, cols, ok := strings.Cut(spec, "=")
			if !ok {
				log.Fatalf("bad -partition entry %q (want table=col[+col...])", spec)
			}
			cfg.PartitionKeys[table] = strings.Split(cols, "+")
		}
	}
	db, err := shareddb.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("shareddb-server listening on %s", ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Printf("accept: %v", err)
			continue
		}
		go serve(db, conn)
	}
}

func serve(db *shareddb.DB, conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	w := bufio.NewWriter(conn)
	defer w.Flush()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		switch strings.ToUpper(line) {
		case "QUIT", "EXIT":
			fmt.Fprintln(w, "BYE")
			w.Flush()
			return
		case "EXPLAIN PLAN":
			fmt.Fprint(w, db.DescribePlan())
			fmt.Fprintln(w, "OK")
			w.Flush()
			continue
		case "STATS":
			writeStats(w, db.Stats())
			w.Flush()
			continue
		}
		execute(db, w, line)
		w.Flush()
	}
}

// writeStats answers the STATS verb: one "name<TAB>value" line per counter,
// terminated like a result set so existing clients can parse it.
func writeStats(w *bufio.Writer, st shareddb.Stats) {
	rows := []struct {
		name  string
		value interface{}
	}{
		{"generations", st.Generations},
		{"queries_run", st.QueriesRun},
		{"writes_applied", st.WritesApplied},
		{"folded_queries", st.FoldedQueries},
		{"subsumed_queries", st.SubsumedQueries},
		{"fold_hit_rate", fmt.Sprintf("%.4f", st.FoldHitRate())},
		{"in_flight_generations", st.InFlightGenerations},
		{"queue_depth", st.QueueDepth},
		{"shed", st.Shed},
		{"rejected", st.Rejected},
		{"breaker_trips", st.BreakerTrips},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%v\n", r.name, r.value)
	}
	fmt.Fprintf(w, "OK %d rows\n", len(rows))
}

// fail writes the error response: "BUSY <retry-ms> <reason>" for admission
// rejections (backpressure — the client should wait and resubmit), "ERR
// <message>" for everything else.
func fail(w *bufio.Writer, err error) {
	var oe *shareddb.OverloadError
	if errors.As(err, &oe) {
		retry := oe.RetryAfter.Milliseconds()
		if retry < 1 {
			retry = 1
		}
		fmt.Fprintf(w, "BUSY %d %s\n", retry, oe.Reason)
		return
	}
	fmt.Fprintf(w, "ERR %v\n", err)
}

func execute(db *shareddb.DB, w *bufio.Writer, sqlText string) {
	upper := strings.ToUpper(sqlText)
	if strings.HasPrefix(upper, "SELECT") {
		rows, err := db.Query(sqlText)
		if err != nil {
			fail(w, err)
			return
		}
		fmt.Fprintln(w, strings.Join(rows.Columns(), "\t"))
		for rows.Next() {
			row := rows.Row()
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = v.String()
			}
			fmt.Fprintln(w, strings.Join(cells, "\t"))
		}
		fmt.Fprintf(w, "OK %d rows\n", rows.Len())
		return
	}
	res, err := db.Exec(sqlText)
	if err != nil {
		fail(w, err)
		return
	}
	fmt.Fprintf(w, "OK %d rows\n", res.RowsAffected)
}
