package main

// The -json mode: a machine-readable micro-benchmark baseline
// (BENCH_*.json) covering the shared engine's hot paths — scan, join, sort
// and the TPC-W interaction mix — with ops/sec, ns/op, B/op and allocs/op
// per bench. Future PRs diff their own run against the committed
// BENCH_baseline.json to keep a perf trajectory (see README "Memory
// discipline" for how to read the numbers).

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"shareddb/internal/core"
	"shareddb/internal/experiments"
	"shareddb/internal/plan"
	"shareddb/internal/storage"
	"shareddb/internal/tpcw"
	"shareddb/internal/types"
)

// benchRecord is one benchmark's measurements.
type benchRecord struct {
	Name        string  `json:"name"`
	Description string  `json:"description"`
	Ops         int     `json:"ops"`            // completed benchmark iterations
	Unit        string  `json:"unit"`           // what one iteration is
	NsPerOp     float64 `json:"ns_per_op"`      // wall time per iteration
	OpsPerSec   float64 `json:"ops_per_sec"`    // 1e9 / ns_per_op
	BytesPerOp  int64   `json:"b_per_op"`       // heap bytes allocated per iteration
	AllocsPerOp int64   `json:"allocs_per_op"`  // heap allocations per iteration
	QueriesPerX int     `json:"queries_per_op"` // queries executed per iteration (batch size; 1 for mix)

	// Overload-scenario extras (absent on the throughput benches): the
	// admitted-latency percentiles and the fraction of offered queries the
	// admission controller rejected with ErrOverloaded.
	P50Ns    float64 `json:"p50_ns,omitempty"`
	P99Ns    float64 `json:"p99_ns,omitempty"`
	P999Ns   float64 `json:"p999_ns,omitempty"`
	ShedRate float64 `json:"shed_rate,omitempty"`

	// Folding-scenario extras (absent elsewhere): the engine-work rate —
	// which must stay constant between fold_zipf_off and fold_zipf_on —
	// and the fraction of client queries served by fan-out.
	GenPerSec   float64 `json:"generations_per_sec,omitempty"`
	FoldHitRate float64 `json:"fold_hit_rate,omitempty"`
}

// benchReport is the file layout of BENCH_*.json.
type benchReport struct {
	Schema string `json:"schema"`
	Go     string `json:"go"`
	Procs  int    `json:"gomaxprocs"`
	Config struct {
		Items     int   `json:"items"`
		Customers int   `json:"customers"`
		Workers   int   `json:"workers"`
		Shards    int   `json:"shards"`
		Seed      int64 `json:"seed"`
	} `json:"config"`
	Results []benchRecord `json:"results"`
}

// jsonBatch is the batch size for the per-operator benches: large enough
// that sharing engages (one generation answers the whole batch).
const jsonBatch = 64

func record(name, description, unit string, queriesPerOp int, r testing.BenchmarkResult) benchRecord {
	ns := float64(r.NsPerOp())
	ops := 0.0
	if ns > 0 {
		ops = 1e9 / ns
	}
	return benchRecord{
		Name: name, Description: description, Ops: r.N, Unit: unit,
		NsPerOp: ns, OpsPerSec: ops,
		BytesPerOp: r.AllocedBytesPerOp(), AllocsPerOp: r.AllocsPerOp(),
		QueriesPerX: queriesPerOp,
	}
}

// benchStatement measures one prepared statement executed in concurrent
// batches of jsonBatch (one op = one batch = roughly one generation).
// warmup batches run untimed first (they grow the operator free lists, the
// batch pool and — on a columnar engine — the table mirrors to steady-state
// shape); the bench then runs count times and the median-ns/op run is
// reported, so a GC pause or scheduler hiccup in one run cannot move the
// trajectory record.
func benchStatement(e *core.Engine, s *plan.Statement, mkParams func(i int) []types.Value, warmup, count int) testing.BenchmarkResult {
	batch := func(fail func(error)) {
		var wg sync.WaitGroup
		results := make([]*core.Result, jsonBatch)
		for j := 0; j < jsonBatch; j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				res := e.Submit(s, mkParams(j))
				res.Wait()
				results[j] = res
			}(j)
		}
		wg.Wait()
		for _, res := range results {
			if res.Err != nil {
				fail(res.Err)
			}
		}
	}
	for w := 0; w < warmup; w++ {
		var err error
		batch(func(e error) { err = e })
		if err != nil {
			// Surface the error through the measured path's b.Fatal below.
			break
		}
	}
	if count < 1 {
		count = 1
	}
	runs := make([]testing.BenchmarkResult, count)
	for i := range runs {
		runs[i] = testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				batch(func(err error) { b.Fatal(err) })
			}
		})
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].NsPerOp() < runs[j].NsPerOp() })
	return runs[len(runs)/2]
}

// runJSONBench produces the benchmark report on stdout. warmup and count
// shape the per-statement benches (see benchStatement); the scenario
// benches (mix, incremental, subscribe, overload, fold) measure wall-clock
// protocols and run once regardless.
func runJSONBench(opts experiments.Options, warmup, count, loadClients, loadPipeline int) error {
	var report benchReport
	report.Schema = "shareddb-microbench/v1"
	report.Go = runtime.Version()
	report.Procs = runtime.GOMAXPROCS(0)
	report.Config.Items = opts.Scale.Items
	report.Config.Customers = opts.Scale.Customers
	report.Config.Workers = opts.Workers
	report.Config.Shards = opts.Shards
	report.Config.Seed = opts.Seed

	// Per-operator benches on a dedicated engine over a fresh TPC-W load.
	db, err := storage.Open(storage.Options{})
	if err != nil {
		return err
	}
	defer db.Close()
	if _, err := tpcw.Setup(db, opts.Scale, opts.Seed); err != nil {
		return err
	}
	// The group/topn benches need a scan-dominated aggregation (the shape
	// the columnar pushdown targets): a sales table an order of magnitude
	// larger than item, grouped on a low-cardinality region key behind a
	// selective measure predicate.
	if err := setupSales(db); err != nil {
		return err
	}

	gp := plan.New(db)
	eng := core.New(db, gp, core.Config{Workers: opts.Workers})
	defer eng.Close()

	stmts := []struct {
		name, desc string
		columnar   bool // also measured on the columnar engine as <name>_columnar
		sql        string
		mkParams   func(i int) []types.Value
	}{
		{
			"scan", "shared ClockScan: LIKE predicate batch over item", true,
			`SELECT i_id, i_title FROM item WHERE i_title LIKE ?`,
			func(i int) []types.Value {
				return []types.Value{types.NewString(fmt.Sprintf("Title %02d%%", i%100))}
			},
		},
		{
			"join", "shared join: item ⋈ author with per-query range predicate", true,
			`SELECT item.i_id, author.a_lname FROM item, author
			 WHERE item.i_a_id = author.a_id AND item.i_cost > ?`,
			func(i int) []types.Value {
				return []types.Value{types.NewFloat(float64(i%80) + 10)}
			},
		},
		{
			"sort", "shared sort/Top-N: full item scan ORDER BY title LIMIT 50", false,
			`SELECT i_id, i_title FROM item ORDER BY i_title LIMIT 50`,
			func(int) []types.Value { return nil },
		},
		{
			"group", fmt.Sprintf("shared grouped aggregation: selective range predicate GROUP BY region over %d sales rows", salesRows), true,
			`SELECT s_region, COUNT(*), SUM(s_qty) FROM sales WHERE s_val > ? GROUP BY s_region`,
			func(i int) []types.Value {
				return []types.Value{types.NewFloat(float64(i%8) + 85)}
			},
		},
		{
			"topn", fmt.Sprintf("shared grouped Top-N over %d sales rows: GROUP BY region ORDER BY aggregate LIMIT 5 (bounded per-query heaps)", salesRows), true,
			`SELECT s_region, SUM(s_val) AS v FROM sales WHERE s_val > ?
			 GROUP BY s_region ORDER BY v DESC, s_region LIMIT 5`,
			func(i int) []types.Value {
				return []types.Value{types.NewFloat(float64(i%8) + 85)}
			},
		},
	}
	for _, sp := range stmts {
		stmt, err := eng.Prepare(sp.sql)
		if err != nil {
			return fmt.Errorf("prepare %s: %w", sp.name, err)
		}
		r := benchStatement(eng, stmt, sp.mkParams, warmup, count)
		report.Results = append(report.Results,
			record(sp.name, sp.desc, fmt.Sprintf("batch of %d queries", jsonBatch), jsonBatch, r))
	}

	// The same batches against the columnar mirror: a second engine over the
	// same loaded database with ColumnarScan on. The trajectory claims are
	// the <name>_columnar/<name> ns ratios — the scan pair measures the
	// stride kernels, the group/topn pairs measure the aggregation pushdown
	// (the GroupOp fed straight from the mirror, bypassing the scan stream).
	colEng := core.New(db, plan.New(db), core.Config{Workers: opts.Workers, ColumnarScan: true})
	defer colEng.Close()
	for _, sp := range stmts {
		if !sp.columnar {
			continue
		}
		stmt, err := colEng.Prepare(sp.sql)
		if err != nil {
			return fmt.Errorf("prepare %s_columnar: %w", sp.name, err)
		}
		r := benchStatement(colEng, stmt, sp.mkParams, warmup, count)
		report.Results = append(report.Results,
			record(sp.name+"_columnar", sp.desc+" (columnar shared scan)",
				fmt.Sprintf("batch of %d queries", jsonBatch), jsonBatch, r))
	}

	// TPC-W interaction mix on a fresh environment (its writes must not
	// skew the per-operator data above), then the same mix on a sharded
	// deployment — the scale-out trajectory entry.
	shardCounts := []int{1, 2}
	switch {
	case opts.Shards == 1:
		shardCounts = shardCounts[:1] // single-engine only
	case opts.Shards > 1:
		shardCounts[1] = opts.Shards
	}
	for _, shards := range shardCounts {
		r, err := benchMix(opts, shards)
		if err != nil {
			return err
		}
		name, desc := "tpcw_mix", "TPC-W Shopping mix, concurrent sessions"
		if shards > 1 {
			name = fmt.Sprintf("tpcw_mix_shards%d", shards)
			desc = fmt.Sprintf("TPC-W Shopping mix on %d shard engines (hash-partitioned tables, scatter-gather router)", shards)
		}
		report.Results = append(report.Results, record(name, desc, "interaction", 1, r))
	}

	// Incremental operator state: the same repeat-read hash join on a
	// write-light mix with the rebuild path and with delta-maintained
	// build-side state. The trajectory claim is the ns/op ratio (≥ 2x).
	for _, inc := range []bool{false, true} {
		rec, err := benchIncrementalJoin(opts, inc)
		if err != nil {
			return err
		}
		report.Results = append(report.Results, rec)
	}

	// Standing-query feed: 64 subscribers on a TPC-W browsing query while a
	// writer updates items — updates delivered per second, end to end.
	subRec, err := benchSubscribeBrowsing(opts)
	if err != nil {
		return err
	}
	report.Results = append(report.Results, subRec)

	// Overload scenario: a saturating burst against a queue-capped,
	// SLO-bounded engine. The perf-trajectory quantities are the admitted
	// p50/p99 and the shed rate — whether backpressure keeps latency
	// bounded, not raw throughput (benchdiff excludes it from the ns gate).
	// Run twice: clients re-offering immediately, then clients honoring the
	// typed RetryAfter hint — the shed-rate drop at equal offered load is
	// the quantity of record for the back-off protocol.
	for _, backoff := range []bool{false, true} {
		ovRec, err := benchOverload(opts, backoff)
		if err != nil {
			return err
		}
		report.Results = append(report.Results, ovRec)
	}

	// Folding scenario: the same Zipfian-duplicate workload with folding
	// off then on. The trajectory quantity is the ratio of client-visible
	// ops/sec at matching generations_per_sec — benchdiff excludes both
	// records from the ns gate (wall-clock scenarios, not micro-ops).
	for _, fold := range []bool{false, true} {
		rec, err := benchFolding(opts, fold)
		if err != nil {
			return err
		}
		report.Results = append(report.Results, rec)
	}

	// Network fan-in scenario: the fold workload arriving over real
	// loopback sockets, binary protocol (pipelined) then legacy text. The
	// trajectory quantities are RPS, tail percentiles and shed rate —
	// benchdiff excludes both records from the ns gate.
	for _, text := range []bool{false, true} {
		rec, err := benchLoad1k(opts, loadClients, loadPipeline, text)
		if err != nil {
			return err
		}
		report.Results = append(report.Results, rec)
	}

	out := json.NewEncoder(os.Stdout)
	out.SetIndent("", "  ")
	return out.Encode(report)
}

// Sales fixture shape for the group/topn benches: a fact table large
// enough that the shared scan dominates a grouped-aggregation generation,
// 32 region groups, and a measure whose high quantiles make the per-query
// predicates selective (~2-10% of rows).
const (
	salesRows    = 32768
	salesRegions = 32
)

// setupSales loads the grouped-aggregation fixture next to the TPC-W
// tables. Values come from a fixed multiplicative hash so the distribution
// is uniform but deterministic across runs.
func setupSales(db *storage.Database) error {
	sales, err := db.CreateTable("sales", types.NewSchema(
		types.Column{Qualifier: "sales", Name: "s_id", Kind: types.KindInt},
		types.Column{Qualifier: "sales", Name: "s_region", Kind: types.KindInt},
		types.Column{Qualifier: "sales", Name: "s_val", Kind: types.KindFloat},
		types.Column{Qualifier: "sales", Name: "s_qty", Kind: types.KindInt},
	))
	if err != nil {
		return err
	}
	if _, err := sales.SetPrimaryKey("s_id"); err != nil {
		return err
	}
	ops := make([]storage.WriteOp, 0, 4096)
	flush := func() error {
		results, _ := db.ApplyOps(ops)
		for _, r := range results {
			if r.Err != nil {
				return r.Err
			}
		}
		ops = ops[:0]
		return nil
	}
	for i := 0; i < salesRows; i++ {
		h := uint64(i) * 2654435761
		ops = append(ops, storage.WriteOp{Kind: storage.WInsert, Table: "sales", Row: types.Row{
			types.NewInt(int64(i)),
			types.NewInt(int64(i % salesRegions)),
			types.NewFloat(float64(h%10000) / 100),
			types.NewInt(int64(h % 7)),
		}})
		if len(ops) == cap(ops) {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// Overload scenario shape: enough concurrent clients to overflow the queue
// cap many times over, so the run exercises both admission outcomes (shed
// and admitted) at a measurable rate.
const (
	overloadQueries  = 2000
	overloadClients  = 256
	overloadQueueCap = 64
	overloadSLO      = 5 * time.Millisecond
)

// benchOverload runs the experiments.Overload scenario on a single-engine
// deployment and folds its percentiles and shed rate into a bench record.
// With backoff, clients honor the typed RetryAfter hint on each shed (the
// shed-rate delta against the immediate-retry record is the point).
func benchOverload(opts experiments.Options, backoff bool) (benchRecord, error) {
	ovOpts := opts
	ovOpts.Shards = 1 // admission is per engine; one engine keeps the scenario comparable
	ovOpts.MaxGenerationDelay = overloadSLO
	ovOpts.QueueDepthLimit = overloadQueueCap
	run := experiments.Overload
	name, clientKind := "overload", "immediate-retry clients"
	if backoff {
		run = experiments.OverloadBackoff
		name, clientKind = "overload_backoff", "clients honoring the RetryAfter hint"
	}
	res, err := run(ovOpts, overloadQueries, overloadClients)
	if err != nil {
		return benchRecord{}, err
	}
	ns := float64(res.Mean)
	ops := 0.0
	if ns > 0 {
		ops = 1e9 / ns
	}
	return benchRecord{
		Name: name,
		Description: fmt.Sprintf(
			"admission control under a %d-client saturating burst (SLO %v, queue cap %d), %s: admitted-latency percentiles + shed rate",
			overloadClients, overloadSLO, overloadQueueCap, clientKind),
		Ops: int(res.Admitted), Unit: "admitted query",
		NsPerOp: ns, OpsPerSec: ops, QueriesPerX: 1,
		P50Ns: float64(res.P50), P99Ns: float64(res.P99), ShedRate: res.ShedRate(),
	}, nil
}

// Incremental-join scenario shape: a fact table large enough that
// rebuilding the join build side dominates a generation, a small dimension
// probe side, reads repeating the same statement + parameters back to back
// (the state-reuse condition) with a point update every incWriteEvery
// reads — the write-light repeat-read mix the incremental state targets.
const (
	incFactRows   = 16384
	incDimRows    = 128
	incWriteEvery = 8
)

// benchIncrementalJoin measures one repeat-read hash-join query on the
// write-light mix, with the rebuild path (inc=false) or delta-maintained
// build-side state (inc=true). The dimension side stays scan-evaluated in
// both runs; the fact-side scan + hash build is what incremental state
// elides.
func benchIncrementalJoin(opts experiments.Options, inc bool) (benchRecord, error) {
	db, err := storage.Open(storage.Options{})
	if err != nil {
		return benchRecord{}, err
	}
	defer db.Close()
	fact, err := db.CreateTable("fact", types.NewSchema(
		types.Column{Qualifier: "fact", Name: "f_id", Kind: types.KindInt},
		types.Column{Qualifier: "fact", Name: "f_key", Kind: types.KindInt},
		types.Column{Qualifier: "fact", Name: "f_val", Kind: types.KindFloat},
	))
	if err != nil {
		return benchRecord{}, err
	}
	if _, err := fact.SetPrimaryKey("f_id"); err != nil {
		return benchRecord{}, err
	}
	dim, err := db.CreateTable("dim", types.NewSchema(
		types.Column{Qualifier: "dim", Name: "d_id", Kind: types.KindInt},
		types.Column{Qualifier: "dim", Name: "d_key", Kind: types.KindInt},
	))
	if err != nil {
		return benchRecord{}, err
	}
	if _, err := dim.SetPrimaryKey("d_id"); err != nil {
		return benchRecord{}, err
	}
	var ops []storage.WriteOp
	for i := 0; i < incFactRows; i++ {
		ops = append(ops, storage.WriteOp{Kind: storage.WInsert, Table: "fact", Row: types.Row{
			types.NewInt(int64(i)), types.NewInt(int64(i % incDimRows)), types.NewFloat(float64(i % 100)),
		}})
	}
	for i := 0; i < incDimRows; i++ {
		ops = append(ops, storage.WriteOp{Kind: storage.WInsert, Table: "dim", Row: types.Row{
			types.NewInt(int64(i)), types.NewInt(int64(i)),
		}})
	}
	for start := 0; start < len(ops); start += 4096 {
		end := min(start+4096, len(ops))
		results, _ := db.ApplyOps(ops[start:end])
		for _, r := range results {
			if r.Err != nil {
				return benchRecord{}, r.Err
			}
		}
	}

	gp := plan.New(db)
	eng := core.New(db, gp, core.Config{Workers: opts.Workers, IncrementalState: inc})
	defer eng.Close()
	// Per-query predicate on the fact scan keeps this a shared hash join
	// with fact as the build side (an unpredicated inner would compile to
	// an index nested-loop join on the primary key).
	read, err := eng.Prepare(`SELECT dim.d_id, fact.f_val FROM dim, fact
		WHERE dim.d_key = fact.f_key AND fact.f_val > ?`)
	if err != nil {
		return benchRecord{}, err
	}
	write, err := eng.Prepare(`UPDATE fact SET f_val = ? WHERE f_id = ?`)
	if err != nil {
		return benchRecord{}, err
	}
	// Selective predicate: the result stays small, so the generation's cost
	// is the build-side work the incremental state elides, not shared
	// result materialization.
	params := []types.Value{types.NewFloat(98.5)}
	warm := eng.Submit(read, params)
	warm.Wait()
	if warm.Err != nil {
		return benchRecord{}, warm.Err
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if i%incWriteEvery == incWriteEvery-1 {
				res := eng.Submit(write, []types.Value{
					types.NewFloat(float64(i % 100)), types.NewInt(int64(i % incFactRows))})
				if res.Wait(); res.Err != nil {
					b.Fatal(res.Err)
				}
			}
			res := eng.Submit(read, params)
			if res.Wait(); res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	})
	name, state := "incremental_join_rebuild", "rebuild-every-generation"
	if inc {
		name, state = "incremental_join", "delta-maintained build side"
	}
	return record(name, fmt.Sprintf(
		"repeat-read hash join (%d-row build side, %d-row probe, 1 point update per %d reads), %s",
		incFactRows, incDimRows, incWriteEvery, state),
		"query", 1, r), nil
}

// Subscribe scenario shape: a 64-subscriber browsing feed (one standing
// subject-search per subscriber) while a single writer updates item costs,
// one point write per generation.
const (
	subSubscribers = 64
	subWrites      = 512
)

// benchSubscribeBrowsing measures end-to-end standing-query delivery:
// updates handed to subscribers per second while the write stream runs.
func benchSubscribeBrowsing(opts experiments.Options) (benchRecord, error) {
	db, err := storage.Open(storage.Options{})
	if err != nil {
		return benchRecord{}, err
	}
	defer db.Close()
	if _, err := tpcw.Setup(db, opts.Scale, opts.Seed); err != nil {
		return benchRecord{}, err
	}
	gp := plan.New(db)
	eng := core.New(db, gp, core.Config{Workers: opts.Workers, IncrementalState: true})
	defer eng.Close()

	read, err := eng.Prepare(`SELECT i_id, i_title, i_cost FROM item WHERE i_subject = ?`)
	if err != nil {
		return benchRecord{}, err
	}
	write, err := eng.Prepare(`UPDATE item SET i_cost = ? WHERE i_id = ?`)
	if err != nil {
		return benchRecord{}, err
	}

	subjects := tpcw.Subjects()
	var delivered int64
	var wg sync.WaitGroup
	subs := make([]*core.Subscription, subSubscribers)
	for i := range subs {
		sub, err := eng.Subscribe(read, []types.Value{types.NewString(subjects[i%len(subjects)])})
		if err != nil {
			return benchRecord{}, err
		}
		subs[i] = sub
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range sub.Updates() {
				atomic.AddInt64(&delivered, 1)
			}
		}()
	}
	// Let every initial full result land before the measured write stream.
	for atomic.LoadInt64(&delivered) < subSubscribers {
		time.Sleep(time.Millisecond)
	}

	base := atomic.LoadInt64(&delivered)
	start := time.Now()
	for i := 0; i < subWrites; i++ {
		res := eng.Submit(write, []types.Value{
			types.NewFloat(float64(i%90) + 1), types.NewInt(int64(i%opts.Scale.Items) + 1)})
		if res.Wait(); res.Err != nil {
			return benchRecord{}, res.Err
		}
	}
	// Deliveries ride the write generations' sink cycles; settle until the
	// counter stops moving so the last generation's updates are counted.
	for prev := int64(-1); ; {
		cur := atomic.LoadInt64(&delivered)
		if cur == prev {
			break
		}
		prev = cur
		time.Sleep(5 * time.Millisecond)
	}
	elapsed := time.Since(start)
	for _, sub := range subs {
		sub.Close()
	}
	wg.Wait()

	updates := atomic.LoadInt64(&delivered) - base
	rate := 0.0
	if elapsed > 0 {
		rate = float64(updates) / elapsed.Seconds()
	}
	ns := 0.0
	if rate > 0 {
		// Round to whole nanoseconds: ns_per_op is integral everywhere else
		// (testing.BenchmarkResult reports it as an int64) and benchdiff's
		// consumers treat it as such.
		ns = math.Round(1e9 / rate)
	}
	return benchRecord{
		Name: "subscribe_browsing",
		Description: fmt.Sprintf(
			"%d standing subject-search subscribers on the TPC-W item table, %d point writes: subscription updates delivered per second",
			subSubscribers, subWrites),
		Ops: int(updates), Unit: "subscription update",
		NsPerOp: ns, OpsPerSec: rate, QueriesPerX: 1,
	}, nil
}

// Folding scenario shape: many clients drawing the same statement's
// parameter from a small Zipfian domain, against a statement quota well
// below the client count and a heartbeat-pinned generation cadence. With
// folding off the quota rations clients across generations; with folding
// on the duplicates collapse into the quota'd leads and every client rides
// every generation — client throughput multiplies at constant
// generations/sec.
const (
	foldClients   = 64
	foldDistinct  = 8
	foldQuota     = 8
	foldHeartbeat = 2 * time.Millisecond
	foldWindow    = 1500 * time.Millisecond
)

// benchFolding runs the experiments.Folding scenario with folding off or
// on and reports client-visible queries as the op.
func benchFolding(opts experiments.Options, fold bool) (benchRecord, error) {
	fOpts := opts
	fOpts.Shards = 1 // folding ratio is per engine; the router fold path has its own tests
	fOpts.StatementQuota = foldQuota
	fOpts.MaxInFlightGenerations = 1
	fOpts.Heartbeat = foldHeartbeat
	fOpts.FoldQueries = fold
	res, err := experiments.Folding(fOpts, foldClients, foldDistinct, foldWindow)
	if err != nil {
		return benchRecord{}, err
	}
	qps := res.ClientQPS()
	ns := 0.0
	if qps > 0 {
		ns = math.Round(1e9 / qps)
	}
	name, state := "fold_zipf_off", "folding off"
	if fold {
		name, state = "fold_zipf_on", "folding on"
	}
	return benchRecord{
		Name: name,
		Description: fmt.Sprintf(
			"%s: %d clients, Zipf over %d params, statement quota %d, heartbeat %v — client-visible queries/sec at constant generations/sec",
			state, foldClients, foldDistinct, foldQuota, foldHeartbeat),
		Ops: int(res.ClientQueries), Unit: "client query",
		NsPerOp: ns, OpsPerSec: qps, QueriesPerX: 1,
		GenPerSec: res.GenerationsPerSec(), FoldHitRate: res.FoldHitRate(),
	}, nil
}

// benchMix measures the concurrent TPC-W Shopping mix on a fresh
// environment with the given shard count.
func benchMix(opts experiments.Options, shards int) (testing.BenchmarkResult, error) {
	env, err := experiments.NewEnvSharded(experiments.SharedDB, opts.Scale, opts.Seed, opts.Workers, shards)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	defer env.Close()
	mixResult := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		var mu sync.Mutex
		var seed int64
		weights := tpcw.Shopping.Weights()
		var cum [tpcw.NumInteractions]float64
		total := 0.0
		for i, w := range weights {
			total += w
			cum[i] = total
		}
		b.RunParallel(func(pb *testing.PB) {
			mu.Lock()
			seed++
			sess := tpcw.NewSession(env.Sys, env.Scale, env.IDs, seed)
			mu.Unlock()
			for pb.Next() {
				pick := sess.Rng.Float64() * total
				inter := tpcw.Interaction(0)
				for i := tpcw.Interaction(0); i < tpcw.NumInteractions; i++ {
					if pick <= cum[i] {
						inter = i
						break
					}
				}
				if err := sess.Run(inter); err != nil {
					if errors.Is(err, storage.ErrConflict) || errors.Is(err, storage.ErrUniqueViolate) {
						continue // SI write-write conflict: a real client retries
					}
					b.Error(err)
					return
				}
			}
		})
	})
	return mixResult, nil
}
