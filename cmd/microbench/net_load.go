package main

// The network fan-in scenario: Load1k drives closed-loop clients over
// real loopback sockets against the wire front end — the same Zipfian
// title-search workload as the fold_zipf benches, but arriving the way
// the paper's thousand queries arrive. The -json records (load_1k,
// load_1k_text) pin the pipelined-binary vs legacy-text comparison;
// benchdiff excludes both from the ns ratio gate (wall-clock scenarios).

import (
	"fmt"
	"math"

	"shareddb/internal/experiments"
	"shareddb/internal/harness"
)

// Load scenario shape: the fold configuration of fold_zipf_on (quota'd,
// heartbeat-paced serial generations) plus a queue cap so admission is
// live, driven from network connections instead of in-process goroutines.
const (
	loadItems    = 500
	loadQueueCap = 1024
)

// loadOptions maps the bench configuration onto the scenario options.
func loadOptions(opts experiments.Options, clients, pipeline int, text bool) experiments.LoadOptions {
	return experiments.LoadOptions{
		Clients:       clients,
		Distinct:      foldDistinct,
		Window:        foldWindow,
		PipelineDepth: pipeline,
		Items:         loadItems,
		Seed:          opts.Seed,
		Text:          text,
		Engine: experiments.Options{
			Workers:                opts.Workers,
			StatementQuota:         foldQuota,
			MaxInFlightGenerations: 1,
			Heartbeat:              foldHeartbeat,
			FoldQueries:            true,
			QueueDepthLimit:        loadQueueCap,
		},
	}
}

// benchLoad1k runs one Load1k pass and folds it into a bench record.
func benchLoad1k(opts experiments.Options, clients, pipeline int, text bool) (benchRecord, error) {
	res, err := experiments.Load1k(loadOptions(opts, clients, pipeline, text))
	if err != nil {
		return benchRecord{}, err
	}
	rps := res.RPS()
	ns := 0.0
	if rps > 0 {
		ns = math.Round(1e9 / rps)
	}
	name := "load_1k"
	proto := fmt.Sprintf("binary protocol, %d-deep pipelines", pipeline)
	if text {
		name = "load_1k_text"
		proto = "legacy text protocol (ad-hoc SQL, no pipelining)"
	}
	genPerSec := 0.0
	if res.Elapsed > 0 {
		genPerSec = float64(res.Generations) / res.Elapsed.Seconds()
	}
	return benchRecord{
		Name: name,
		Description: fmt.Sprintf(
			"%d closed-loop network clients over loopback, %s: Zipf title search over %d params, quota %d, heartbeat %v, queue cap %d",
			clients, proto, foldDistinct, foldQuota, foldHeartbeat, loadQueueCap),
		Ops: int(res.Queries), Unit: "client query",
		NsPerOp: ns, OpsPerSec: rps, QueriesPerX: 1,
		P50Ns: float64(res.P50), P99Ns: float64(res.P99), P999Ns: float64(res.P999),
		ShedRate: res.ShedRate(), GenPerSec: genPerSec, FoldHitRate: res.FoldHitRate(),
	}, nil
}

// runLoadScenario is the -load mode: both protocols at the requested
// client count, printed as a comparison table.
func runLoadScenario(opts experiments.Options, clients, pipeline int) error {
	t := &harness.Table{Header: []string{
		"protocol", "clients", "queries", "RPS", "p50", "p99", "p999", "shed", "fold-hit", "gen/s"}}
	for _, text := range []bool{false, true} {
		res, err := experiments.Load1k(loadOptions(opts, clients, pipeline, text))
		if err != nil {
			return err
		}
		proto := "binary"
		if text {
			proto = "text"
		}
		genPerSec := 0.0
		if res.Elapsed > 0 {
			genPerSec = float64(res.Generations) / res.Elapsed.Seconds()
		}
		t.Add(proto, res.Clients, res.Queries, res.RPS(),
			res.P50, res.P99, res.P999,
			fmt.Sprintf("%.3f", res.ShedRate()), fmt.Sprintf("%.3f", res.FoldHitRate()),
			genPerSec)
	}
	fmt.Printf("Network fan-in: %d closed-loop clients over loopback (window %v)\n%s",
		clients, foldWindow, t)
	return nil
}
