// Command microbench regenerates the micro-benchmark figures of the
// paper's evaluation:
//
//	microbench -fig 10     batch response time: light vs heavy queries
//	microbench -fig 11     load interaction between light and heavy queries
//	microbench -json       machine-readable scan/join/sort/TPC-W-mix baseline
//	                       (the BENCH_*.json perf-trajectory artifact)
//	microbench -load       network fan-in scenario: closed-loop clients over
//	                       loopback sockets (binary protocol vs legacy text)
//
// See EXPERIMENTS.md for recorded outputs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"shareddb/internal/experiments"
	"shareddb/internal/tpcw"
)

func main() {
	fig := flag.Int("fig", 10, "figure to regenerate (10 or 11)")
	items := flag.Int("items", 1000, "TPC-W item count")
	customers := flag.Int("customers", 1440, "TPC-W customer count")
	sizes := flag.String("sizes", "1,10,50,100,250,500,1000,2000", "batch sizes for figure 10")
	lightRate := flag.Float64("light", 200, "light queries per second for figure 11")
	heavyRates := flag.String("heavy", "0,5,10,25,50,100,200", "heavy query rates for figure 11")
	window := flag.Duration("window", 2*time.Second, "measurement window per data point")
	seed := flag.Int64("seed", 2012, "data generator seed")
	workers := flag.Int("workers", 0, "SharedDB intra-operator worker pool per cycle (0 = GOMAXPROCS, 1 = serial)")
	shards := flag.Int("shards", 0, "SharedDB shard engines for the sharded TPC-W mix bench (0 = default 2, 1 = skip the sharded entry)")
	columnar := flag.Bool("columnar", false, "scan the delta-maintained columnar mirror instead of the row store")
	shardWorkers := flag.Int("shard-workers", 0, "workers per shard engine (0 = GOMAXPROCS/shards split)")
	jsonOut := flag.Bool("json", false, "emit the machine-readable scan/join/sort/TPC-W-mix benchmark baseline on stdout")
	warmup := flag.Int("warmup", 1, "untimed warm-up batches per -json statement bench (free lists, columnar mirror, batch pool)")
	count := flag.Int("count", 1, "timed runs per -json statement bench; the median ns/op is reported")
	load := flag.Bool("load", false, "run the network fan-in scenario (Load1k) and print its table instead of a figure")
	loadClients := flag.Int("load-clients", 1000, "concurrent network connections for the Load1k scenario (-load and -json)")
	loadPipeline := flag.Int("load-pipeline", 2, "pipelined in-flight queries per Load1k connection (binary protocol)")
	flag.Parse()

	opts := experiments.Options{
		Scale:         tpcw.Scale{Items: *items, Customers: *customers},
		PointDuration: *window,
		Seed:          *seed,
		Workers:       *workers,
		Shards:        *shards,
		ColumnarScan:  *columnar,
		ShardWorkers:  *shardWorkers,
	}

	if *load {
		exitOn(runLoadScenario(opts, *loadClients, *loadPipeline))
		return
	}
	if *jsonOut {
		exitOn(runJSONBench(opts, *warmup, *count, *loadClients, *loadPipeline))
		return
	}

	switch *fig {
	case 10:
		for _, q := range []experiments.Fig10Query{experiments.LightQuery, experiments.HeavyQuery} {
			res, err := experiments.Fig10(q, parseInts(*sizes), opts)
			exitOn(err)
			fmt.Println(experiments.RenderFig10(q, res))
		}
	case 11:
		var rates []float64
		for _, part := range strings.Split(*heavyRates, ",") {
			f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			exitOn(err)
			rates = append(rates, f)
		}
		res, err := experiments.Fig11(*lightRate, rates, opts)
		exitOn(err)
		fmt.Println(experiments.RenderFig11(*lightRate, res))
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %d (want 10 or 11)\n", *fig)
		os.Exit(2)
	}
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		exitOn(err)
		out = append(out, n)
	}
	return out
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "microbench:", err)
		os.Exit(1)
	}
}
