// Command benchdiff is the bench-regression gate: it compares a freshly
// generated microbench report (go run ./cmd/microbench -json) against the
// committed BENCH_baseline.json and fails — exit code 1 — when any gated
// benchmark regresses:
//
//   - ns/op grows by more than -ns-threshold percent (default 25), or
//   - allocs/op grows by more than -allocs-threshold percent (default 1:
//     the concurrent benches jitter by a few allocations in tens of
//     thousands run to run — scheduling changes map-growth timing — while
//     a real alloc regression moves the count by whole multiples; the
//     exact zero-alloc pins live in the CI allocation-gate tests, this
//     gate catches trend regressions).
//
// Benchmarks present in only one report are listed but not gated (that is
// how a new benchmark enters the baseline). -exclude drops named benches
// from gating entirely — CI excludes "overload", whose quantities of record
// are the p50/p99/shed-rate extras, reported here for trajectory but too
// scenario-shaped for a ratio gate.
//
//	go run ./cmd/microbench -json | tee bench-current.json
//	go run ./cmd/benchdiff -baseline BENCH_baseline.json -current bench-current.json -exclude overload
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"
)

// benchRecord mirrors the microbench report entries (unknown fields are
// ignored so the two commands can evolve independently).
type benchRecord struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	// float64, not int64: rate-derived records have historically emitted
	// fractional ns_per_op/allocs_per_op values, and a gate that dies on a
	// decimal point in an otherwise valid report gates nothing. Parse
	// tolerantly, render rounded.
	AllocsPerOp float64 `json:"allocs_per_op"`
	P50Ns       float64 `json:"p50_ns"`
	P99Ns       float64 `json:"p99_ns"`
	ShedRate    float64 `json:"shed_rate"`
}

type benchReport struct {
	Go     string `json:"go"`
	Procs  int    `json:"gomaxprocs"`
	Config struct {
		Items     int   `json:"items"`
		Customers int   `json:"customers"`
		Workers   int   `json:"workers"`
		Shards    int   `json:"shards"`
		Seed      int64 `json:"seed"`
	} `json:"config"`
	Results []benchRecord `json:"results"`
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "committed baseline report")
	currentPath := flag.String("current", "-", "fresh report to gate ('-' = stdin)")
	nsThreshold := flag.Float64("ns-threshold", 25, "max allowed ns/op regression in percent")
	allocsThreshold := flag.Float64("allocs-threshold", 1, "max allowed allocs/op growth in percent")
	exclude := flag.String("exclude", "", "comma-separated benchmark names to report but not gate")
	flag.Parse()

	baseline, err := load(*baselinePath)
	exitOn(err)
	current, err := load(*currentPath)
	exitOn(err)

	// Ratios only mean something when the two runs measured the same
	// workload in the same execution regime: GOMAXPROCS decides whether
	// the serial or the parallel operator paths ran (different allocs/op
	// profiles entirely), and the config block decides the data volume.
	// A Go version difference is worth knowing but not a gate.
	if baseline.Procs != current.Procs {
		exitOn(fmt.Errorf("gomaxprocs mismatch: baseline %d, current %d — pin GOMAXPROCS to the baseline's value (serial vs parallel operator paths are not comparable)",
			baseline.Procs, current.Procs))
	}
	if baseline.Config != current.Config {
		exitOn(fmt.Errorf("config mismatch: baseline %+v, current %+v — run microbench with the baseline's scale flags",
			baseline.Config, current.Config))
	}
	if baseline.Go != current.Go {
		fmt.Printf("note: go version differs (baseline %s, current %s) — expect some ns/op drift\n\n",
			baseline.Go, current.Go)
	}

	excluded := map[string]bool{}
	for _, name := range strings.Split(*exclude, ",") {
		if name = strings.TrimSpace(name); name != "" {
			excluded[name] = true
		}
	}

	base := map[string]benchRecord{}
	for _, r := range baseline.Results {
		base[r.Name] = r
	}
	failures := 0
	fmt.Printf("%-18s %14s %14s %8s %10s %10s %8s  %s\n",
		"benchmark", "base ns/op", "cur ns/op", "Δns%", "base alloc", "cur alloc", "Δalloc%", "verdict")
	for _, cur := range current.Results {
		b, ok := base[cur.Name]
		if !ok {
			fmt.Printf("%-18s %14s %14.0f %8s %10s %10.0f %8s  new (not gated)\n",
				cur.Name, "-", cur.NsPerOp, "-", "-", cur.AllocsPerOp, "-")
			continue
		}
		delete(base, cur.Name)
		nsDelta := pctDelta(b.NsPerOp, cur.NsPerOp)
		allocDelta := pctDelta(b.AllocsPerOp, cur.AllocsPerOp)
		verdict := "ok"
		switch {
		case excluded[cur.Name]:
			verdict = "excluded"
		case b.NsPerOp <= 0:
			verdict = "no baseline ns/op (not gated)"
		case nsDelta > *nsThreshold:
			verdict = fmt.Sprintf("FAIL ns/op +%.1f%% > %.1f%%", nsDelta, *nsThreshold)
			failures++
		case b.AllocsPerOp == 0 && cur.AllocsPerOp > 0:
			// A percentage gate cannot see growth from zero, and zero
			// allocations is exactly the pinned property worth guarding.
			verdict = fmt.Sprintf("FAIL allocs/op 0 -> %.0f", cur.AllocsPerOp)
			failures++
		case allocDelta > *allocsThreshold:
			verdict = fmt.Sprintf("FAIL allocs/op +%.1f%% > %.1f%%", allocDelta, *allocsThreshold)
			failures++
		}
		fmt.Printf("%-18s %14.0f %14.0f %+7.1f%% %10.0f %10.0f %+7.1f%%  %s\n",
			cur.Name, b.NsPerOp, cur.NsPerOp, nsDelta, b.AllocsPerOp, cur.AllocsPerOp, allocDelta, verdict)
		if cur.P99Ns > 0 || b.P99Ns > 0 {
			fmt.Printf("%-18s   p50 %v → %v, p99 %v → %v, shed %.1f%% → %.1f%% (informational)\n",
				"", ns(b.P50Ns), ns(cur.P50Ns), ns(b.P99Ns), ns(cur.P99Ns),
				b.ShedRate*100, cur.ShedRate*100)
		}
	}
	for name := range base {
		fmt.Printf("%-18s missing from current report (not gated)\n", name)
	}
	if failures > 0 {
		fmt.Printf("\nbenchdiff: %d benchmark(s) regressed\n", failures)
		os.Exit(1)
	}
	fmt.Println("\nbenchdiff: no gated regressions")
}

func pctDelta(base, cur float64) float64 {
	if base <= 0 {
		return 0
	}
	return (cur - base) / base * 100
}

func ns(v float64) time.Duration { return time.Duration(v) }

func load(path string) (*benchReport, error) {
	var raw []byte
	var err error
	if path == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results", path)
	}
	return &rep, nil
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}
