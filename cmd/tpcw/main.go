// Command tpcw regenerates the TPC-W figures of the paper's evaluation:
//
//	tpcw -fig 7            throughput under varying load, all three mixes
//	tpcw -fig 8            max throughput vs number of cores
//	tpcw -fig 9            max throughput per individual web interaction
//
// Flags scale the experiment; defaults are laptop-sized. See EXPERIMENTS.md
// for recorded outputs and the comparison with the paper.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"shareddb/internal/experiments"
	"shareddb/internal/tpcw"
)

func main() {
	fig := flag.Int("fig", 7, "figure to regenerate (7, 8 or 9)")
	items := flag.Int("items", 1000, "TPC-W item count")
	customers := flag.Int("customers", 1440, "TPC-W customer count")
	dur := flag.Duration("point", 2*time.Second, "measurement window per data point")
	think := flag.Duration("think", 20*time.Millisecond, "mean think time (spec: 7s, scaled down)")
	ebList := flag.String("ebs", "16,32,64,128,256,512", "EB counts for figure 7")
	coreList := flag.String("cores", "", "core counts for figure 8 (default 1,2,4,...,NumCPU)")
	saturate := flag.Int("saturate", 128, "closed-loop clients for figures 8 and 9")
	mixFlag := flag.String("mix", "all", "mix for figures 7/8: browsing, shopping, ordering or all")
	seed := flag.Int64("seed", 2012, "data generator seed")
	shards := flag.Int("shards", 0, "SharedDB shard engines (0 or 1 = single engine)")
	flag.Parse()

	opts := experiments.Options{
		Scale:         tpcw.Scale{Items: *items, Customers: *customers},
		PointDuration: *dur,
		ThinkTime:     *think,
		Seed:          *seed,
		Shards:        *shards,
	}
	mixes := parseMixes(*mixFlag)

	switch *fig {
	case 7:
		ebs := parseInts(*ebList)
		for _, mix := range mixes {
			res, err := experiments.Fig7(mix, ebs, opts)
			exitOn(err)
			fmt.Println(experiments.RenderFig7(mix, res))
		}
	case 8:
		cores := parseInts(*coreList)
		if len(cores) == 0 {
			for n := 1; n <= runtime.NumCPU(); n *= 2 {
				cores = append(cores, n)
			}
			if last := cores[len(cores)-1]; last != runtime.NumCPU() {
				cores = append(cores, runtime.NumCPU())
			}
		}
		for _, mix := range mixes {
			res, err := experiments.Fig8(mix, cores, *saturate, opts, runtime.GOMAXPROCS)
			exitOn(err)
			fmt.Println(experiments.RenderFig8(mix, res))
		}
	case 9:
		res, err := experiments.Fig9(*saturate, opts)
		exitOn(err)
		fmt.Println(experiments.RenderFig9(res))
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %d (want 7, 8 or 9)\n", *fig)
		os.Exit(2)
	}
}

func parseMixes(s string) []tpcw.Mix {
	switch strings.ToLower(s) {
	case "browsing":
		return []tpcw.Mix{tpcw.Browsing}
	case "shopping":
		return []tpcw.Mix{tpcw.Shopping}
	case "ordering":
		return []tpcw.Mix{tpcw.Ordering}
	default:
		return []tpcw.Mix{tpcw.Browsing, tpcw.Ordering, tpcw.Shopping}
	}
}

func parseInts(s string) []int {
	if s == "" {
		return nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		exitOn(err)
		out = append(out, n)
	}
	return out
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tpcw:", err)
		os.Exit(1)
	}
}
