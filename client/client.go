// Package client is the Go client for shareddb-server's binary wire
// protocol (internal/wire). Its surface deliberately mirrors the
// in-process shareddb package — DB, Stmt, Rows, Stats, Subscribe, the
// same Context-suffixed entry points, the same Scan destinations — so
// code written against the embedded engine ports to the network with an
// import swap and an address.
//
// The differences that remain are the ones the network forces:
//
//   - Rows is a streaming cursor, not a materialized result. Iteration
//     can fail mid-stream — a connection lost between batches surfaces
//     from Rows.Err, which in-process always returned nil.
//   - One DB multiplexes every call over a single pipelined connection
//     with a bounded in-flight window (Config.Window). Goroutines
//     calling concurrently fill the window; the server completes out of
//     order and the demultiplexer matches responses by request id.
//     Pipelined duplicates land in the same engine generation, so with
//     server-side folding a window of identical queries costs one
//     activation — the same behavior a thousand in-process goroutines
//     get, delivered over one socket.
//   - Admission rejections arrive as typed BUSY frames. With
//     Config.RetryOverloaded > 0 the client sleeps the server's
//     RetryAfter hint and resubmits (the same back-off loop the
//     in-process TPC-W driver runs); otherwise the *OverloadError is
//     returned for the caller's own policy, matching
//     errors.Is(err, ErrOverloaded).
package client

import (
	"context"
	"errors"
	"fmt"
	"time"

	"shareddb/internal/types"
	"shareddb/internal/wire"
)

// Config tunes a client connection.
type Config struct {
	// Addr is the server's TCP address ("host:5843").
	Addr string
	// Window is the client-side in-flight request window: how many
	// Query/Exec calls may be awaiting completion on the connection at
	// once. Further calls block until a slot frees. 0 selects 32; the
	// server enforces its own window independently.
	Window int
	// DialTimeout bounds the TCP dial + protocol handshake (0 = no limit).
	DialTimeout time.Duration
	// RetryOverloaded is how many times Query/Exec resubmit after a BUSY
	// rejection, sleeping the server's RetryAfter hint between attempts.
	// 0 disables retries: the *OverloadError is returned to the caller.
	RetryOverloaded int
	// SubscriptionBuffer is the per-subscription update channel capacity
	// (0 selects 16). A subscriber that falls a full buffer behind drops
	// updates: the demultiplexer never blocks on a slow consumer.
	SubscriptionBuffer int
}

// DB is a client handle: one multiplexed, pipelined connection to a
// shareddb-server. It is safe for concurrent use; concurrent calls share
// the connection's in-flight window.
type DB struct {
	cfg Config
	c   *conn
}

// Open dials addr with default configuration.
func Open(addr string) (*DB, error) { return OpenConfig(Config{Addr: addr}) }

// OpenConfig dials cfg.Addr and performs the protocol handshake.
func OpenConfig(cfg Config) (*DB, error) {
	if cfg.Window <= 0 {
		cfg.Window = 32
	}
	if cfg.SubscriptionBuffer <= 0 {
		cfg.SubscriptionBuffer = 16
	}
	c, err := dial(cfg)
	if err != nil {
		return nil, err
	}
	return &DB{cfg: cfg, c: c}, nil
}

// Close sends an orderly QUIT and closes the connection. Outstanding
// calls fail with ErrClosed.
func (db *DB) Close() error { return db.c.close() }

// Ping round-trips a liveness probe.
func (db *DB) Ping(ctx context.Context) error { return db.c.ping(ctx) }

// Prepare registers sqlText server-side and returns a statement handle.
// It is PrepareContext with context.Background().
func (db *DB) Prepare(sqlText string) (*Stmt, error) {
	return db.PrepareContext(context.Background(), sqlText)
}

// PrepareContext registers sqlText server-side. The handle is backed by
// the server's shared statement registry: a thousand clients preparing
// the same SQL pay the engine's registration quiesce once.
func (db *DB) PrepareContext(ctx context.Context, sqlText string) (*Stmt, error) {
	ok, err := db.c.prepare(ctx, sqlText)
	if err != nil {
		return nil, err
	}
	return &Stmt{db: db, handle: ok.Stmt, sqlText: sqlText,
		numParams: int(ok.NumParams), isWrite: ok.IsWrite, cols: ok.Columns}, nil
}

// Query runs an ad-hoc read. It is QueryContext with context.Background().
func (db *DB) Query(sqlText string, args ...interface{}) (*Rows, error) {
	return db.QueryContext(context.Background(), sqlText, args...)
}

// QueryContext runs an ad-hoc read and returns its streaming cursor.
func (db *DB) QueryContext(ctx context.Context, sqlText string, args ...interface{}) (*Rows, error) {
	params, err := toValues(args)
	if err != nil {
		return nil, err
	}
	return retryBusy(ctx, db, func() (*Rows, error) {
		return db.c.startQuery(ctx, func(id uint64) []byte {
			return wire.SQLCall{ID: id, SQL: sqlText, Params: params}.Append(nil, wire.TQuerySQL)
		})
	})
}

// Exec runs an ad-hoc write (or DDL). It is ExecContext with
// context.Background().
func (db *DB) Exec(sqlText string, args ...interface{}) (Result, error) {
	return db.ExecContext(context.Background(), sqlText, args...)
}

// ExecContext runs an ad-hoc write or DDL statement.
func (db *DB) ExecContext(ctx context.Context, sqlText string, args ...interface{}) (Result, error) {
	params, err := toValues(args)
	if err != nil {
		return Result{}, err
	}
	return retryBusy(ctx, db, func() (Result, error) {
		return db.c.exec(ctx, func(id uint64) []byte {
			return wire.SQLCall{ID: id, SQL: sqlText, Params: params}.Append(nil, wire.TExecSQL)
		})
	})
}

// Subscribe registers stmt with the given arguments as a standing query.
// Updates stream as push frames on the shared connection; a subscriber
// that falls Config.SubscriptionBuffer updates behind drops further
// updates (the connection never blocks on a slow consumer). Cancelling
// ctx closes the subscription, as does Subscription.Close.
func (db *DB) Subscribe(ctx context.Context, stmt *Stmt, args ...interface{}) (*Subscription, error) {
	params, err := toValues(args)
	if err != nil {
		return nil, err
	}
	sub, err := db.c.subscribe(ctx, stmt.sqlText, params, db.cfg.SubscriptionBuffer)
	if err != nil {
		return nil, err
	}
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				sub.Close()
			case <-sub.Done():
			}
		}()
	}
	return sub, nil
}

// Stats fetches the server engine's counter snapshot.
func (db *DB) Stats() (Stats, error) {
	return db.c.stats(context.Background())
}

// Result reports the outcome of a write.
type Result struct {
	RowsAffected int
}

// Stmt is a prepared statement handle bound to the server's shared plan.
// Statements are the unit of sharing: every concurrent activation of the
// same shape — from this client or any other — runs on the same shared
// operators.
type Stmt struct {
	db        *DB
	handle    uint64
	sqlText   string
	numParams int
	isWrite   bool
	cols      []string
}

// SQL returns the statement text.
func (s *Stmt) SQL() string { return s.sqlText }

// NumParams returns the statement's parameter arity.
func (s *Stmt) NumParams() int { return s.numParams }

// IsWrite reports whether the statement modifies data.
func (s *Stmt) IsWrite() bool { return s.isWrite }

// Columns returns the result column names (empty for writes).
func (s *Stmt) Columns() []string { return append([]string(nil), s.cols...) }

// Close releases the session's handle. The statement stays registered in
// the server's shared plan (it is shared with every other client).
func (s *Stmt) Close() error { return s.db.c.closeStmt(s.handle) }

// Query enqueues a read and returns its streaming cursor. It is
// QueryContext with context.Background().
func (s *Stmt) Query(args ...interface{}) (*Rows, error) {
	return s.QueryContext(context.Background(), args...)
}

// QueryContext enqueues a read over the pipelined connection. It returns
// as soon as the result header arrives; rows stream through the cursor.
func (s *Stmt) QueryContext(ctx context.Context, args ...interface{}) (*Rows, error) {
	if s.isWrite {
		return nil, errors.New("client: Query on a write statement")
	}
	params, err := toValues(args)
	if err != nil {
		return nil, err
	}
	return retryBusy(ctx, s.db, func() (*Rows, error) {
		return s.db.c.startQuery(ctx, func(id uint64) []byte {
			return wire.StmtCall{ID: id, Stmt: s.handle, Params: params}.Append(nil, wire.TQuery)
		})
	})
}

// Exec enqueues a write and blocks for its outcome. It is ExecContext
// with context.Background().
func (s *Stmt) Exec(args ...interface{}) (Result, error) {
	return s.ExecContext(context.Background(), args...)
}

// ExecContext enqueues a write over the pipelined connection.
func (s *Stmt) ExecContext(ctx context.Context, args ...interface{}) (Result, error) {
	params, err := toValues(args)
	if err != nil {
		return Result{}, err
	}
	return retryBusy(ctx, s.db, func() (Result, error) {
		return s.db.c.exec(ctx, func(id uint64) []byte {
			return wire.StmtCall{ID: id, Stmt: s.handle, Params: params}.Append(nil, wire.TExec)
		})
	})
}

// retryBusy runs fn, resubmitting after BUSY rejections up to
// Config.RetryOverloaded times, sleeping the server's RetryAfter hint
// (context-aware) between attempts.
func retryBusy[T any](ctx context.Context, db *DB, fn func() (T, error)) (T, error) {
	attempts := db.cfg.RetryOverloaded
	for {
		v, err := fn()
		var oe *OverloadError
		if err == nil || attempts <= 0 || !errors.As(err, &oe) {
			return v, err
		}
		attempts--
		wait := oe.RetryAfter
		if wait <= 0 {
			wait = time.Millisecond
		}
		t := time.NewTimer(wait)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			var zero T
			return zero, ctx.Err()
		}
	}
}

// ErrOverloaded is the sentinel every BUSY rejection wraps, mirroring
// shareddb.ErrOverloaded: errors.Is(err, client.ErrOverloaded) matches
// any admission rejection.
var ErrOverloaded = errors.New("client: server overloaded")

// ErrClosed is returned by calls on a closed or failed connection; the
// underlying cause (if any) is wrapped alongside it.
var ErrClosed = errors.New("client: connection closed")

// OverloadError is the typed admission rejection from the server: the
// reason plus RetryAfter, the suggested back-off before resubmitting.
type OverloadError struct {
	Reason     string
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("client: server overloaded: %s (retry after %v)", e.Reason, e.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrOverloaded) match.
func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// ServerError is a typed failure reply (wire ERR frame).
type ServerError struct {
	Code uint64
	Msg  string
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("client: server error %d: %s", e.Code, e.Msg)
}

// Stats is the server engine's counter snapshot, mirroring
// shareddb.Stats field for field. Counters are cumulative since the
// server opened its database; QueueDepth and InFlightGenerations are
// live gauges.
type Stats struct {
	Generations         uint64
	QueriesRun          uint64
	WritesApplied       uint64
	FoldedQueries       uint64
	SubsumedQueries     uint64
	InFlightGenerations int
	QueueDepth          int
	Shed                uint64
	Rejected            uint64
	BreakerTrips        uint64
	SubscriptionsActive int
	SubscriptionUpdates uint64
}

// FoldHitRate is the fraction of client-visible reads served by folding:
// FoldedQueries / (QueriesRun + FoldedQueries). Zero when no reads ran.
func (s Stats) FoldHitRate() float64 {
	total := s.QueriesRun + s.FoldedQueries
	if total == 0 {
		return 0
	}
	return float64(s.FoldedQueries) / float64(total)
}

// statsFromFields maps wire counter names onto the typed snapshot,
// ignoring unknown names (the field list is extensible by contract).
func statsFromFields(fields []wire.StatField) Stats {
	var st Stats
	for _, f := range fields {
		switch f.Name {
		case "generations":
			st.Generations = f.Value
		case "queries_run":
			st.QueriesRun = f.Value
		case "writes_applied":
			st.WritesApplied = f.Value
		case "folded_queries":
			st.FoldedQueries = f.Value
		case "subsumed_queries":
			st.SubsumedQueries = f.Value
		case "in_flight_generations":
			st.InFlightGenerations = int(f.Value)
		case "queue_depth":
			st.QueueDepth = int(f.Value)
		case "shed":
			st.Shed = f.Value
		case "rejected":
			st.Rejected = f.Value
		case "breaker_trips":
			st.BreakerTrips = f.Value
		case "subscriptions_active":
			st.SubscriptionsActive = int(f.Value)
		case "subscription_updates":
			st.SubscriptionUpdates = f.Value
		}
	}
	return st
}

// toValues converts Go values to engine values, mirroring the in-process
// package's parameter conversion exactly.
func toValues(args []interface{}) ([]types.Value, error) {
	if len(args) == 0 {
		return nil, nil
	}
	out := make([]types.Value, len(args))
	for i, a := range args {
		switch v := a.(type) {
		case nil:
			out[i] = types.Null
		case int:
			out[i] = types.NewInt(int64(v))
		case int32:
			out[i] = types.NewInt(int64(v))
		case int64:
			out[i] = types.NewInt(v)
		case uint64:
			out[i] = types.NewInt(int64(v))
		case float64:
			out[i] = types.NewFloat(v)
		case float32:
			out[i] = types.NewFloat(float64(v))
		case string:
			out[i] = types.NewString(v)
		case bool:
			out[i] = types.NewBool(v)
		case time.Time:
			out[i] = types.NewTime(v)
		case types.Value:
			out[i] = v
		default:
			return nil, fmt.Errorf("client: unsupported parameter type %T", a)
		}
	}
	return out, nil
}
