package client

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"shareddb/internal/types"
	"shareddb/internal/wire"
)

// conn is the single multiplexed connection behind a DB.
//
// Concurrency shape: callers serialize frame writes through wmu and park
// on per-call queues; one reader goroutine demultiplexes every inbound
// frame by request id. The window semaphore bounds how many Query/Exec
// calls are in flight; prepare/stats/ping/subscribe ride outside the
// window (they are not generation work).
type conn struct {
	cfg Config
	nc  net.Conn

	wmu sync.Mutex // serializes frame writes

	// sem is the in-flight window: buffered sends acquire, the reader
	// releases as terminal frames arrive.
	sem chan struct{}

	mu         sync.Mutex
	nextID     uint64
	calls      map[uint64]*call
	subs       map[uint64]*Subscription
	err        error // terminal connection error; nil while healthy
	closed     bool  // orderly close requested
	readerDone chan struct{}
}

// call is one pending request: the demultiplexer appends decoded response
// frames to queue; the caller pops them. notify has capacity 1 — a
// delivery always leaves either a queued frame or a pending notification,
// so a waiting caller never misses a wake-up.
type call struct {
	id       uint64
	windowed bool
	sub      *Subscription // subscribe calls: registered by the reader on SUB_OK

	mu      sync.Mutex
	queue   []interface{}
	notify  chan struct{}
	done    bool
	err     error
	discard bool // abandoned: drop frames, keep consuming to the terminal
}

func (cl *call) deliver(msg interface{}, terminal bool) {
	cl.mu.Lock()
	if !cl.discard {
		cl.queue = append(cl.queue, msg)
	}
	if terminal {
		cl.done = true
	}
	cl.mu.Unlock()
	select {
	case cl.notify <- struct{}{}:
	default:
	}
}

func (cl *call) fail(err error) {
	cl.mu.Lock()
	if cl.err == nil {
		cl.err = err
	}
	cl.done = true
	cl.mu.Unlock()
	select {
	case cl.notify <- struct{}{}:
	default:
	}
}

// next blocks for the call's next response frame.
func (cl *call) next(ctx context.Context) (interface{}, error) {
	for {
		cl.mu.Lock()
		if len(cl.queue) > 0 {
			m := cl.queue[0]
			cl.queue = cl.queue[1:]
			cl.mu.Unlock()
			return m, nil
		}
		err, done := cl.err, cl.done
		cl.mu.Unlock()
		if err != nil {
			return nil, err
		}
		if done {
			return nil, fmt.Errorf("%w: response stream ended unexpectedly", ErrClosed)
		}
		select {
		case <-cl.notify:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// abandon detaches the caller: frames already queued are dropped and
// future ones discarded, but the demultiplexer keeps consuming to the
// terminal frame so the request id retires and its window slot frees.
func (cl *call) abandon() {
	cl.mu.Lock()
	cl.discard = true
	cl.queue = nil
	cl.mu.Unlock()
}

// dial connects and performs the HELLO handshake synchronously, then
// starts the demultiplexer.
func dial(cfg Config) (*conn, error) {
	d := net.Dialer{Timeout: cfg.DialTimeout}
	nc, err := d.Dial("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	return handshake(nc, cfg)
}

// handshake runs the HELLO exchange over an established transport and
// returns the live conn. Split from dial so tests can drive net.Pipe ends.
func handshake(nc net.Conn, cfg Config) (*conn, error) {
	if cfg.DialTimeout > 0 {
		nc.SetDeadline(time.Now().Add(cfg.DialTimeout))
	}
	if _, err := nc.Write(wire.Hello{Version: wire.Version, Window: uint64(cfg.Window)}.Append(nil)); err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	typ, payload, _, err := wire.ReadFrame(nc, nil)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	switch typ {
	case wire.THelloOK:
		if _, err := wire.DecodeHelloOK(payload); err != nil {
			nc.Close()
			return nil, fmt.Errorf("client: handshake: %w", err)
		}
	case wire.TErr:
		m, derr := wire.DecodeError(payload)
		nc.Close()
		if derr != nil {
			return nil, fmt.Errorf("client: handshake: %w", derr)
		}
		return nil, &ServerError{Code: m.Code, Msg: m.Msg}
	default:
		nc.Close()
		return nil, fmt.Errorf("client: handshake: unexpected frame %v", typ)
	}
	if cfg.DialTimeout > 0 {
		nc.SetDeadline(time.Time{})
	}
	c := &conn{
		cfg:        cfg,
		nc:         nc,
		sem:        make(chan struct{}, cfg.Window),
		calls:      map[uint64]*call{},
		subs:       map[uint64]*Subscription{},
		readerDone: make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// readLoop is the demultiplexer: every inbound frame routes to its
// pending call (by request id) or subscription (by subscription id). A
// read or protocol error fails every pending call — which is how a
// connection lost mid-cursor surfaces from Rows.Err.
func (c *conn) readLoop() {
	defer close(c.readerDone)
	var buf []byte
	for {
		typ, payload, b, err := wire.ReadFrame(c.nc, buf)
		if err != nil {
			c.fail(err)
			return
		}
		buf = b
		if err := c.route(typ, payload); err != nil {
			c.fail(err)
			return
		}
	}
}

func (c *conn) route(typ wire.Type, payload []byte) error {
	switch typ {
	case wire.TPrepareOK:
		m, err := wire.DecodePrepareOK(payload)
		if err != nil {
			return err
		}
		c.deliver(m.ID, m, true)
	case wire.TRowsHeader:
		m, err := wire.DecodeRowsHeader(payload)
		if err != nil {
			return err
		}
		c.deliver(m.ID, m, false)
	case wire.TRowBatch:
		m, err := wire.DecodeRowBatch(payload)
		if err != nil {
			return err
		}
		c.deliver(m.ID, m, false)
	case wire.TRowsDone:
		m, err := wire.DecodeRowsDone(payload)
		if err != nil {
			return err
		}
		c.deliver(m.ID, m, true)
	case wire.TExecOK:
		m, err := wire.DecodeExecOK(payload)
		if err != nil {
			return err
		}
		c.deliver(m.ID, m, true)
	case wire.TErr:
		m, err := wire.DecodeError(payload)
		if err != nil {
			return err
		}
		c.deliver(m.ID, m, true)
	case wire.TBusy:
		m, err := wire.DecodeBusy(payload)
		if err != nil {
			return err
		}
		c.deliver(m.ID, m, true)
	case wire.TStatsOK:
		m, err := wire.DecodeStatsOK(payload)
		if err != nil {
			return err
		}
		c.deliver(m.ID, m, true)
	case wire.TPong:
		m, err := wire.DecodeSimple(payload)
		if err != nil {
			return err
		}
		c.deliver(m.ID, m, true)
	case wire.TSubOK:
		m, err := wire.DecodeSubOK(payload)
		if err != nil {
			return err
		}
		// Register the subscription before delivering the ack: a push
		// frame may follow SUB_OK on the very next read.
		c.mu.Lock()
		if cl := c.calls[m.ID]; cl != nil && cl.sub != nil {
			cl.sub.id = m.Sub
			c.subs[m.Sub] = cl.sub
		}
		c.mu.Unlock()
		c.deliver(m.ID, m, true)
	case wire.TSubPush:
		m, err := wire.DecodeSubPush(payload)
		if err != nil {
			return err
		}
		c.mu.Lock()
		if s := c.subs[m.Sub]; s != nil {
			// Non-blocking under the lock: a full subscriber drops the
			// update rather than stalling the demultiplexer.
			select {
			case s.ch <- SubscriptionUpdate{Gen: m.Gen, Full: m.Full,
				Rows: m.Rows, Added: m.Added, Removed: m.Removed}:
			default:
			}
		}
		c.mu.Unlock()
	case wire.TBye:
		// Orderly server goodbye; the read loop ends at EOF next.
	default:
		return fmt.Errorf("client: unexpected frame %v", typ)
	}
	return nil
}

// deliver hands a response frame to its pending call. Terminal frames
// retire the request id and release the call's window slot.
func (c *conn) deliver(id uint64, msg interface{}, terminal bool) {
	c.mu.Lock()
	cl := c.calls[id]
	if terminal {
		delete(c.calls, id)
	}
	c.mu.Unlock()
	if cl == nil {
		return // response for an id we never issued; tolerated like an unknown stat
	}
	if terminal && cl.windowed {
		<-c.sem
	}
	cl.deliver(msg, terminal)
}

// fail tears the connection down: every pending call and subscription
// learns the cause, window slots release, later calls fail fast.
func (c *conn) fail(cause error) {
	c.mu.Lock()
	if c.err == nil {
		if c.closed {
			c.err = ErrClosed
		} else {
			c.err = fmt.Errorf("%w: %v", ErrClosed, cause)
		}
	}
	err := c.err
	calls := c.calls
	subs := c.subs
	c.calls = map[uint64]*call{}
	c.subs = map[uint64]*Subscription{}
	c.mu.Unlock()
	c.nc.Close()
	for _, cl := range calls {
		if cl.windowed {
			<-c.sem
		}
		cl.fail(err)
	}
	for _, s := range subs {
		s.shutdown()
	}
}

func (c *conn) errNow() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	if c.closed {
		return ErrClosed
	}
	return nil
}

// acquire takes a window slot, honoring cancellation and connection death.
func (c *conn) acquire(ctx context.Context) error {
	select {
	case c.sem <- struct{}{}:
		return nil
	case <-c.readerDone:
		return c.errNow()
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (c *conn) newCall(windowed bool, sub *Subscription) (*call, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return nil, c.err
	}
	if c.closed {
		return nil, ErrClosed
	}
	c.nextID++
	cl := &call{id: c.nextID, windowed: windowed, sub: sub, notify: make(chan struct{}, 1)}
	c.calls[cl.id] = cl
	return cl, nil
}

func (c *conn) send(frame []byte) error {
	c.wmu.Lock()
	_, err := c.nc.Write(frame)
	c.wmu.Unlock()
	if err != nil {
		c.fail(err) // the reader may not notice a half-dead socket; fail eagerly
		return c.errNow()
	}
	return nil
}

// roundTrip issues one request and returns its first response frame with
// BUSY/ERR already translated. Cancellation abandons the call — the
// demultiplexer still drains it to the terminal frame.
func (c *conn) roundTrip(ctx context.Context, windowed bool, sub *Subscription, encode func(id uint64) []byte) (interface{}, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if windowed {
		if err := c.acquire(ctx); err != nil {
			return nil, err
		}
	}
	cl, err := c.newCall(windowed, sub)
	if err != nil {
		if windowed {
			<-c.sem
		}
		return nil, err
	}
	if err := c.send(encode(cl.id)); err != nil {
		return nil, err // fail() already retired the call and its slot
	}
	m, err := cl.next(ctx)
	if err != nil {
		if ctx.Err() != nil {
			cl.abandon()
		}
		return nil, err
	}
	switch m := m.(type) {
	case wire.Error:
		return nil, &ServerError{Code: m.Code, Msg: m.Msg}
	case wire.Busy:
		return nil, &OverloadError{Reason: m.Reason, RetryAfter: time.Duration(m.RetryAfterNs)}
	}
	return m, nil
}

func (c *conn) prepare(ctx context.Context, sqlText string) (wire.PrepareOK, error) {
	m, err := c.roundTrip(ctx, false, nil, func(id uint64) []byte {
		return wire.Prepare{ID: id, SQL: sqlText}.Append(nil)
	})
	if err != nil {
		return wire.PrepareOK{}, err
	}
	ok, isOK := m.(wire.PrepareOK)
	if !isOK {
		return wire.PrepareOK{}, fmt.Errorf("client: unexpected PREPARE response %T", m)
	}
	return ok, nil
}

// exec issues a windowed request whose response is a single EXEC_OK.
func (c *conn) exec(ctx context.Context, encode func(id uint64) []byte) (Result, error) {
	m, err := c.roundTrip(ctx, true, nil, encode)
	if err != nil {
		return Result{}, err
	}
	ok, isOK := m.(wire.ExecOK)
	if !isOK {
		return Result{}, fmt.Errorf("client: unexpected EXEC response %T", m)
	}
	return Result{RowsAffected: int(ok.RowsAffected)}, nil
}

// startQuery issues a windowed read and returns its cursor once the
// result header arrives. The window slot stays held until the cursor's
// terminal frame — a streaming result is in-flight work.
func (c *conn) startQuery(ctx context.Context, encode func(id uint64) []byte) (*Rows, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := c.acquire(ctx); err != nil {
		return nil, err
	}
	cl, err := c.newCall(true, nil)
	if err != nil {
		<-c.sem
		return nil, err
	}
	if err := c.send(encode(cl.id)); err != nil {
		return nil, err
	}
	m, err := cl.next(ctx)
	if err != nil {
		if ctx.Err() != nil {
			cl.abandon()
		}
		return nil, err
	}
	switch m := m.(type) {
	case wire.RowsHeader:
		return &Rows{cl: cl, cols: m.Columns, pos: -1}, nil
	case wire.Error:
		return nil, &ServerError{Code: m.Code, Msg: m.Msg}
	case wire.Busy:
		return nil, &OverloadError{Reason: m.Reason, RetryAfter: time.Duration(m.RetryAfterNs)}
	}
	cl.abandon()
	return nil, fmt.Errorf("client: unexpected QUERY response %T", m)
}

func (c *conn) stats(ctx context.Context) (Stats, error) {
	m, err := c.roundTrip(ctx, false, nil, func(id uint64) []byte {
		return wire.Simple{ID: id}.Append(nil, wire.TStats)
	})
	if err != nil {
		return Stats{}, err
	}
	ok, isOK := m.(wire.StatsOK)
	if !isOK {
		return Stats{}, fmt.Errorf("client: unexpected STATS response %T", m)
	}
	return statsFromFields(ok.Fields), nil
}

func (c *conn) ping(ctx context.Context) error {
	m, err := c.roundTrip(ctx, false, nil, func(id uint64) []byte {
		return wire.Simple{ID: id}.Append(nil, wire.TPing)
	})
	if err != nil {
		return err
	}
	if _, isOK := m.(wire.Simple); !isOK {
		return fmt.Errorf("client: unexpected PING response %T", m)
	}
	return nil
}

// subscribe registers a standing query. The Subscription is created
// first and handed to the call so the demultiplexer can register it the
// moment SUB_OK arrives — a push frame may follow on the very next read,
// before this goroutine even observes the ack.
func (c *conn) subscribe(ctx context.Context, sqlText string, params []types.Value, bufCap int) (*Subscription, error) {
	sub := &Subscription{c: c, ch: make(chan SubscriptionUpdate, bufCap), done: make(chan struct{})}
	m, err := c.roundTrip(ctx, false, sub, func(id uint64) []byte {
		return wire.SQLCall{ID: id, SQL: sqlText, Params: params}.Append(nil, wire.TSubscribe)
	})
	if err != nil {
		return nil, err
	}
	if _, isOK := m.(wire.SubOK); !isOK {
		return nil, fmt.Errorf("client: unexpected SUBSCRIBE response %T", m)
	}
	return sub, nil
}

func (c *conn) closeStmt(handle uint64) error {
	// CLOSE_STMT has no reply: handles are session-local names and the
	// server forgets them silently.
	return c.send(wire.Ref{Ref: handle}.Append(nil, wire.TCloseStmt))
}

// close is the orderly shutdown: best-effort QUIT, then tear down.
func (c *conn) close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.readerDone
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.wmu.Lock()
	c.nc.Write(wire.AppendEmpty(nil, wire.TQuit))
	c.wmu.Unlock()
	c.nc.Close()
	<-c.readerDone
	return nil
}
