package client

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"shareddb/internal/types"
	"shareddb/internal/wire"
)

// Rows is a streaming result cursor, mirroring the in-process Rows
// iteration API (Columns/Next/Row/Scan/All/Err/Close) over wire frames.
//
// Unlike the in-process package — where results are fully materialized
// before Query returns and Err is always nil — a network cursor can fail
// mid-stream: if the connection is lost between batches, Next returns
// false and Err reports the cause. Loops written in database/sql style
// (iterate, then check Err) are therefore correct against both packages;
// loops that skip the Err check silently mistake a dead connection for
// end-of-result — which is exactly the bug this cursor's Err contract
// exists to prevent.
type Rows struct {
	cl    *call
	cols  []string
	batch []types.Row
	pos   int
	total int
	done  bool
	err   error
}

// Columns returns the result column names.
func (r *Rows) Columns() []string { return append([]string(nil), r.cols...) }

// Next advances the cursor, fetching the next batch frame when the
// current one is exhausted; it must be called before the first Scan. It
// returns false at end of result or on error — check Err to tell the two
// apart.
func (r *Rows) Next() bool {
	if r.done || r.err != nil {
		return false
	}
	r.pos++
	if r.pos < len(r.batch) {
		return true
	}
	for {
		m, err := r.cl.next(context.Background())
		if err != nil {
			r.err = err
			r.batch, r.pos = nil, -1
			return false
		}
		switch m := m.(type) {
		case wire.RowBatch:
			if len(m.Rows) == 0 {
				continue
			}
			r.batch, r.pos = m.Rows, 0
			return true
		case wire.RowsDone:
			r.total = int(m.Total)
			r.done = true
			r.batch, r.pos = nil, -1
			return false
		case wire.Error:
			r.err = &ServerError{Code: m.Code, Msg: m.Msg}
			r.batch, r.pos = nil, -1
			return false
		default:
			r.err = fmt.Errorf("client: unexpected cursor frame %T", m)
			r.batch, r.pos = nil, -1
			return false
		}
	}
}

// Row returns the current row's raw values.
func (r *Rows) Row() types.Row {
	if r.pos < 0 || r.pos >= len(r.batch) {
		return nil
	}
	return r.batch[r.pos]
}

// All drains the cursor and returns every remaining row. Check Err
// afterwards: a mid-stream connection loss truncates the slice.
func (r *Rows) All() []types.Row {
	var out []types.Row
	for r.Next() {
		out = append(out, r.Row())
	}
	return out
}

// Total returns the server-reported row count, valid once the cursor is
// exhausted cleanly.
func (r *Rows) Total() int { return r.total }

// Err reports the error, if any, encountered during iteration — a
// connection lost mid-cursor, a server-side failure frame, or a protocol
// violation. It returns nil after a clean end of result.
func (r *Rows) Err() error {
	if r.err == nil || errors.Is(r.err, errRowsClosed) {
		return nil
	}
	return r.err
}

// errRowsClosed marks a cursor abandoned by Close rather than failed;
// Err filters it out so a deliberate early Close does not read as a
// connection error.
var errRowsClosed = errors.New("client: rows closed")

// Close abandons the cursor. The connection keeps draining the result's
// remaining frames in the background (retiring the request id and its
// window slot); iteration after Close returns no rows. Safe to defer in
// database/sql style and to call more than once.
func (r *Rows) Close() error {
	if r.done || r.err != nil {
		return nil
	}
	r.err = errRowsClosed
	r.batch, r.pos = nil, -1
	r.cl.abandon()
	return nil
}

// Scan copies the current row into dest pointers (*int64, *int,
// *float64, *string, *bool, *time.Time or *types.Value), binding
// destinations to the row's leading columns exactly like the in-process
// Rows.Scan.
func (r *Rows) Scan(dest ...interface{}) error {
	row := r.Row()
	if row == nil {
		return errors.New("client: Scan without Next")
	}
	if len(dest) > len(row) {
		return fmt.Errorf("client: Scan wants %d values, row has %d", len(dest), len(row))
	}
	for i, d := range dest {
		v := row[i]
		switch p := d.(type) {
		case *int64:
			*p = v.AsInt()
		case *int:
			*p = int(v.AsInt())
		case *float64:
			*p = v.AsFloat()
		case *string:
			*p = v.AsString()
		case *bool:
			*p = v.AsBool()
		case *time.Time:
			*p = v.AsTime()
		case *types.Value:
			*p = v
		default:
			return fmt.Errorf("client: unsupported Scan destination %T", d)
		}
	}
	return nil
}

// SubscriptionUpdate is one standing-query delivery: an initial full
// result (Full set, Rows populated), then per-generation Added/Removed
// deltas — the wire form of the in-process contract.
type SubscriptionUpdate struct {
	Gen     uint64
	Full    bool
	Rows    []types.Row
	Added   []types.Row
	Removed []types.Row
}

// Subscription is a standing query registered over the connection.
// Updates arrive as push frames demultiplexed onto Updates; the channel
// closes when the subscription ends (Close, context cancellation, or
// connection loss).
type Subscription struct {
	c    *conn
	id   uint64 // set by the demultiplexer on SUB_OK
	ch   chan SubscriptionUpdate
	done chan struct{}
	once sync.Once
}

// Updates returns the delivery channel; ranging over it terminates when
// the subscription closes.
func (s *Subscription) Updates() <-chan SubscriptionUpdate { return s.ch }

// Done is closed when the subscription is detached.
func (s *Subscription) Done() <-chan struct{} { return s.done }

// Close detaches the standing query: the server is told to unsubscribe
// (best-effort) and the Updates channel closes. Safe to call more than
// once and after connection loss.
func (s *Subscription) Close() error {
	s.once.Do(func() {
		s.c.mu.Lock()
		delete(s.c.subs, s.id)
		close(s.ch)
		close(s.done)
		s.c.mu.Unlock()
		// Fire-and-forget: the server also reaps subscriptions when the
		// connection ends, so a lost UNSUB only delays cleanup.
		s.c.send(wire.Ref{Ref: s.id}.Append(nil, wire.TUnsubscribe))
	})
	return nil
}

// shutdown closes the channels without the UNSUB round trip; called by
// the demultiplexer when the connection dies (the subscription is
// already unregistered).
func (s *Subscription) shutdown() {
	s.once.Do(func() {
		s.c.mu.Lock()
		close(s.ch)
		close(s.done)
		s.c.mu.Unlock()
	})
}
