package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"shareddb"
	"shareddb/internal/server"
	"shareddb/internal/types"
	"shareddb/internal/wire"
)

// startBackend serves a seeded DB over loopback via the real front end.
func startBackend(t *testing.T) string {
	t.Helper()
	db, err := shareddb.Open(shareddb.Config{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	if _, err := db.Exec(`CREATE TABLE kv (k INT, v VARCHAR, PRIMARY KEY (k))`); err != nil {
		t.Fatalf("create: %v", err)
	}
	for i := 0; i < 10; i++ {
		if _, err := db.Exec(`INSERT INTO kv VALUES (?, ?)`, i, fmt.Sprintf("v%d", i)); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := server.New(db, server.Options{})
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

// TestEndToEnd exercises the full mirrored surface against a real server:
// Ping, ad-hoc Query with Scan, Prepare/Query/Exec through a handle,
// Stats, and statement metadata.
func TestEndToEnd(t *testing.T) {
	db, err := Open(startBackend(t))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer db.Close()

	if err := db.Ping(context.Background()); err != nil {
		t.Fatalf("ping: %v", err)
	}

	rows, err := db.Query(`SELECT k, v FROM kv WHERE k < ?`, 3)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	var got []string
	for rows.Next() {
		var k int64
		var v string
		if err := rows.Scan(&k, &v); err != nil {
			t.Fatalf("scan: %v", err)
		}
		got = append(got, fmt.Sprintf("%d=%s", k, v))
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("rows: %v", err)
	}
	if len(got) != 3 || rows.Total() != 3 {
		t.Fatalf("got %v (total %d), want 3 rows", got, rows.Total())
	}
	if cols := rows.Columns(); len(cols) != 2 {
		t.Fatalf("columns = %v", cols)
	}

	stmt, err := db.Prepare(`SELECT v FROM kv WHERE k = ?`)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	if stmt.IsWrite() || stmt.NumParams() != 1 {
		t.Fatalf("statement metadata: write=%v params=%d", stmt.IsWrite(), stmt.NumParams())
	}
	r2, err := stmt.Query(7)
	if err != nil {
		t.Fatalf("stmt query: %v", err)
	}
	all := r2.All()
	if err := r2.Err(); err != nil {
		t.Fatalf("stmt rows: %v", err)
	}
	if len(all) != 1 || all[0][0].AsString() != "v7" {
		t.Fatalf("stmt result = %v", all)
	}
	if err := stmt.Close(); err != nil {
		t.Fatalf("stmt close: %v", err)
	}

	res, err := db.Exec(`INSERT INTO kv VALUES (?, ?)`, 50, "fifty")
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	if res.RowsAffected != 1 {
		t.Fatalf("rows affected = %d", res.RowsAffected)
	}

	st, err := db.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.QueriesRun == 0 || st.WritesApplied == 0 {
		t.Fatalf("stats look empty: %+v", st)
	}
}

// fakeServer runs script against the server end of a net.Pipe after
// completing the HELLO exchange, and returns a client conn speaking to it.
func fakeServer(t *testing.T, cfg Config, script func(nc net.Conn)) *conn {
	t.Helper()
	cliEnd, srvEnd := net.Pipe()
	go func() {
		typ, payload, _, err := wire.ReadFrame(srvEnd, nil)
		if err != nil || typ != wire.THello {
			srvEnd.Close()
			return
		}
		if _, err := wire.DecodeHello(payload); err != nil {
			srvEnd.Close()
			return
		}
		if _, err := srvEnd.Write(wire.HelloOK{Version: wire.Version, Window: 4}.Append(nil)); err != nil {
			return
		}
		script(srvEnd)
		// net.Pipe writes are synchronous: keep draining after the script
		// so the client's closing QUIT never blocks.
		io.Copy(io.Discard, srvEnd)
		srvEnd.Close()
	}()
	if cfg.Window <= 0 {
		cfg.Window = 4
	}
	c, err := handshake(cliEnd, cfg)
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}
	t.Cleanup(func() { c.close() })
	return c
}

// readReq pulls the next client frame, failing the test on error.
func readReq(t *testing.T, nc net.Conn) (wire.Type, []byte) {
	t.Helper()
	typ, payload, _, err := wire.ReadFrame(nc, nil)
	if err != nil {
		t.Errorf("fake server read: %v", err)
		return 0, nil
	}
	return typ, append([]byte(nil), payload...)
}

func oneRow(v int64) []types.Row {
	return []types.Row{{types.NewInt(v)}}
}

// TestRowsErrSurfacesMidCursorLoss is the bugfix pin: a connection cut
// between a ROW_BATCH and ROWS_DONE must surface through Rows.Err — not
// read as a clean, truncated end-of-result.
func TestRowsErrSurfacesMidCursorLoss(t *testing.T) {
	c := fakeServer(t, Config{}, func(nc net.Conn) {
		typ, payload := readReq(t, nc)
		if typ != wire.TQuerySQL {
			t.Errorf("fake server: got %v, want QUERY_SQL", typ)
			return
		}
		q, err := wire.DecodeSQLCall(payload)
		if err != nil {
			t.Errorf("fake server decode: %v", err)
			return
		}
		buf := wire.RowsHeader{ID: q.ID, Columns: []string{"k"}}.Append(nil)
		buf = wire.RowBatch{ID: q.ID, Rows: oneRow(1)}.Append(buf)
		nc.Write(buf)
		nc.Close() // cut mid-cursor: header + one batch delivered, no ROWS_DONE
	})
	db := &DB{cfg: c.cfg, c: c}

	rows, err := db.Query(`SELECT k FROM kv`)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if !rows.Next() {
		t.Fatalf("first row should arrive before the cut (err %v)", rows.Err())
	}
	if rows.Next() {
		t.Fatal("second Next should fail: connection is gone")
	}
	err = rows.Err()
	if err == nil {
		t.Fatal("Rows.Err() == nil after mid-cursor connection loss")
	}
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("Rows.Err() = %v, want wrapped ErrClosed", err)
	}
	// The whole connection is dead, and says so.
	if _, qerr := db.Query(`SELECT k FROM kv`); !errors.Is(qerr, ErrClosed) {
		t.Fatalf("post-loss query error = %v, want ErrClosed", qerr)
	}
}

// TestRetryHonorsRetryAfter pins the client's back-off loop: two BUSY
// rejections with an explicit hint must delay the (successful) third
// attempt by at least the sum of the hints.
func TestRetryHonorsRetryAfter(t *testing.T) {
	const hint = 30 * time.Millisecond
	c := fakeServer(t, Config{RetryOverloaded: 3}, func(nc net.Conn) {
		for attempt := 0; ; attempt++ {
			typ, payload := readReq(t, nc)
			if typ == 0 {
				return
			}
			if typ != wire.TQuerySQL {
				t.Errorf("fake server: got %v, want QUERY_SQL", typ)
				return
			}
			q, err := wire.DecodeSQLCall(payload)
			if err != nil {
				t.Errorf("fake server decode: %v", err)
				return
			}
			if attempt < 2 {
				nc.Write(wire.Busy{ID: q.ID, RetryAfterNs: uint64(hint), Reason: "queue full"}.Append(nil))
				continue
			}
			buf := wire.RowsHeader{ID: q.ID, Columns: []string{"k"}}.Append(nil)
			buf = wire.RowBatch{ID: q.ID, Rows: oneRow(42)}.Append(buf)
			buf = wire.RowsDone{ID: q.ID, Total: 1}.Append(buf)
			nc.Write(buf)
			return
		}
	})
	db := &DB{cfg: c.cfg, c: c}

	start := time.Now()
	rows, err := db.Query(`SELECT k FROM kv`)
	if err != nil {
		t.Fatalf("query after retries: %v", err)
	}
	all := rows.All()
	if err := rows.Err(); err != nil {
		t.Fatalf("rows: %v", err)
	}
	if len(all) != 1 || all[0][0].AsInt() != 42 {
		t.Fatalf("result = %v", all)
	}
	if elapsed := time.Since(start); elapsed < 2*hint {
		t.Fatalf("retries took %v, want >= %v (two RetryAfter hints)", elapsed, 2*hint)
	}
}

// TestRetryDisabledReturnsOverloadError pins the zero-config behavior:
// without RetryOverloaded the typed rejection reaches the caller intact.
func TestRetryDisabledReturnsOverloadError(t *testing.T) {
	const hint = 5 * time.Millisecond
	c := fakeServer(t, Config{}, func(nc net.Conn) {
		typ, payload := readReq(t, nc)
		if typ != wire.TQuerySQL {
			return
		}
		q, err := wire.DecodeSQLCall(payload)
		if err != nil {
			return
		}
		nc.Write(wire.Busy{ID: q.ID, RetryAfterNs: uint64(hint), Reason: "shed"}.Append(nil))
	})
	db := &DB{cfg: c.cfg, c: c}

	_, err := db.Query(`SELECT k FROM kv`)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("err = %T, want *OverloadError", err)
	}
	if oe.RetryAfter != hint || oe.Reason != "shed" {
		t.Fatalf("OverloadError = %+v", oe)
	}
}

// TestRowsCloseDrainsCursor pins the abandon path: closing a cursor early
// must retire its request id and window slot in the background so the
// connection stays usable — even while the server is still streaming.
func TestRowsCloseDrainsCursor(t *testing.T) {
	c := fakeServer(t, Config{Window: 1}, func(nc net.Conn) {
		for {
			typ, payload := readReq(t, nc)
			switch typ {
			case wire.TQuerySQL:
				q, err := wire.DecodeSQLCall(payload)
				if err != nil {
					return
				}
				buf := wire.RowsHeader{ID: q.ID, Columns: []string{"k"}}.Append(nil)
				nc.Write(buf)
				// Stream slowly so Close happens mid-stream.
				for i := 0; i < 50; i++ {
					nc.Write(wire.RowBatch{ID: q.ID, Rows: oneRow(int64(i))}.Append(nil))
				}
				nc.Write(wire.RowsDone{ID: q.ID, Total: 50}.Append(nil))
			case wire.TPing:
				m, err := wire.DecodeSimple(payload)
				if err != nil {
					return
				}
				nc.Write(wire.Simple{ID: m.ID}.Append(nil, wire.TPong))
			case wire.TQuit, 0:
				nc.Close()
				return
			}
		}
	})
	db := &DB{cfg: c.cfg, c: c}

	rows, err := db.Query(`SELECT k FROM kv`)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if !rows.Next() {
		t.Fatalf("first row: %v", rows.Err())
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if rows.Next() {
		t.Fatal("Next after Close returned a row")
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("deliberate Close must not read as an error, got %v", err)
	}
	// Window is 1: Ping doesn't use the window, but a second Query does —
	// it can only proceed once the abandoned cursor's slot is released.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := db.Ping(ctx); err != nil {
		t.Fatalf("ping after close: %v", err)
	}
	r2, err := db.QueryContext(ctx, `SELECT k FROM kv`)
	if err != nil {
		t.Fatalf("second query after abandoned cursor: %v", err)
	}
	r2.Close()
}

// TestSubscriptionCloseIdempotent guards the teardown paths: Close twice,
// then connection loss, must neither panic nor deadlock.
func TestSubscriptionCloseIdempotent(t *testing.T) {
	c := fakeServer(t, Config{}, func(nc net.Conn) {
		typ, payload := readReq(t, nc)
		if typ != wire.TSubscribe {
			return
		}
		q, err := wire.DecodeSQLCall(payload)
		if err != nil {
			return
		}
		buf := wire.SubOK{ID: q.ID, Sub: 1}.Append(nil)
		buf = wire.SubPush{Sub: 1, Gen: 1, Full: true, Rows: oneRow(1)}.Append(buf)
		nc.Write(buf)
		// Consume the UNSUB that Close sends, then hold the conn open.
		readReq(t, nc)
	})
	sub, err := c.subscribe(context.Background(), `SELECT k FROM kv`, nil, 4)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	select {
	case u := <-sub.Updates():
		if !u.Full || len(u.Rows) != 1 {
			t.Fatalf("unexpected update %+v", u)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no initial update")
	}
	sub.Close()
	sub.Close()
	select {
	case _, ok := <-sub.Updates():
		if ok {
			t.Fatal("update after Close")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("updates channel not closed")
	}
	<-sub.Done()
	c.fail(errors.New("synthetic loss")) // must not re-enter the closed subscription
}
