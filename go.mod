module shareddb

go 1.22
