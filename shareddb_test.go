package shareddb

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"shareddb/internal/core"
	"shareddb/internal/storage"
)

func openTestDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	mustExec := func(sqlText string, args ...interface{}) {
		if _, err := db.Exec(sqlText, args...); err != nil {
			t.Fatalf("Exec(%q): %v", sqlText, err)
		}
	}
	mustExec(`CREATE TABLE users (id INT, name VARCHAR(40), country VARCHAR(2),
		account FLOAT, active BOOL, created TIMESTAMP, PRIMARY KEY (id))`)
	mustExec(`CREATE INDEX users_country ON users (country)`)
	now := time.Date(2012, 8, 27, 0, 0, 0, 0, time.UTC)
	for i, u := range []struct {
		name, country string
		account       float64
	}{
		{"ada", "CH", 1000}, {"bob", "DE", 250}, {"eve", "CH", 75},
		{"mallory", "US", 3000}, {"trent", "DE", 10},
	} {
		mustExec(`INSERT INTO users VALUES (?, ?, ?, ?, ?, ?)`,
			i+1, u.name, u.country, u.account, true, now)
	}
	return db
}

func TestPublicAPIQuickstart(t *testing.T) {
	db := openTestDB(t)
	stmt, err := db.Prepare(`SELECT name, account FROM users WHERE country = ? ORDER BY account DESC`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := stmt.Query("CH")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 2 {
		t.Fatalf("rows = %d", rows.Len())
	}
	var name string
	var account float64
	if !rows.Next() {
		t.Fatal("Next failed")
	}
	if err := rows.Scan(&name, &account); err != nil {
		t.Fatal(err)
	}
	if name != "ada" || account != 1000 {
		t.Errorf("first row = %s/%v", name, account)
	}
	cols := rows.Columns()
	if cols[0] != "name" || cols[1] != "account" {
		t.Errorf("columns = %v", cols)
	}
}

func TestAdhocQuery(t *testing.T) {
	db := openTestDB(t)
	rows, err := db.Query(`SELECT COUNT(*), SUM(account) FROM users WHERE account > ?`, 50.0)
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	var n int64
	var sum float64
	if err := rows.Scan(&n, &sum); err != nil {
		t.Fatal(err)
	}
	if n != 4 || sum != 4325 {
		t.Errorf("count=%d sum=%v", n, sum)
	}
}

func TestExecWriteAndReadBack(t *testing.T) {
	db := openTestDB(t)
	res, err := db.Exec(`UPDATE users SET account = account + ? WHERE country = ?`, 100.0, "DE")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 2 {
		t.Errorf("affected = %d", res.RowsAffected)
	}
	rows, err := db.Query(`SELECT account FROM users WHERE name = ?`, "trent")
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	var acct float64
	rows.Scan(&acct)
	if acct != 110 {
		t.Errorf("account = %v", acct)
	}
}

func TestTransactionAPI(t *testing.T) {
	db := openTestDB(t)
	tx := db.Begin()
	if err := tx.Exec(`INSERT INTO users VALUES (?, ?, ?, ?, ?, ?)`,
		100, "zoe", "FR", 5.0, true, time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := tx.Exec(`UPDATE users SET account = ? WHERE id = ?`, 42.0, 1); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	rows, _ := db.Query(`SELECT COUNT(*) FROM users`)
	rows.Next()
	var n int64
	rows.Scan(&n)
	if n != 6 {
		t.Errorf("count = %d", n)
	}
	// reads inside Tx.Exec rejected
	tx2 := db.Begin()
	if err := tx2.Exec(`SELECT * FROM users`); err == nil {
		t.Error("read inside tx should fail")
	}
	tx2.Rollback()
	if err := tx2.Commit(); !errors.Is(err, storage.ErrTxDone) {
		t.Errorf("commit after rollback: %v", err)
	}
}

func TestTxConflictSurfaces(t *testing.T) {
	db := openTestDB(t)
	tx1, tx2 := db.Begin(), db.Begin()
	if err := tx1.Exec(`UPDATE users SET account = ? WHERE id = ?`, 1.0, 1); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Exec(`UPDATE users SET account = ? WHERE id = ?`, 2.0, 1); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); !errors.Is(err, storage.ErrConflict) {
		t.Errorf("want conflict, got %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	db := openTestDB(t)
	stmt, err := db.Prepare(`SELECT name FROM users WHERE country = ?`)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			country := []string{"CH", "DE", "US"}[i%3]
			want := map[string]int{"CH": 2, "DE": 2, "US": 1}[country]
			for j := 0; j < 10; j++ {
				rows, err := stmt.Query(country)
				if err != nil {
					t.Error(err)
					return
				}
				if rows.Len() != want {
					t.Errorf("%s: %d rows, want %d", country, rows.Len(), want)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	st := db.Stats()
	gens, queries := st.Generations, st.QueriesRun
	if queries != 320 {
		t.Errorf("queries = %d", queries)
	}
	if gens >= queries {
		t.Errorf("expected batching: %d generations for %d queries", gens, queries)
	}
}

func TestErrorPaths(t *testing.T) {
	db := openTestDB(t)
	if _, err := db.Prepare("SELECT * FROM missing"); err == nil {
		t.Error("unknown table should fail")
	}
	if _, err := db.Prepare("NOT SQL AT ALL"); err == nil {
		t.Error("parse failure expected")
	}
	if _, err := db.Exec("CREATE TABLE users (id INT)"); err == nil {
		t.Error("duplicate table should fail")
	}
	if _, err := db.Exec("CREATE INDEX ix ON missing (x)"); err == nil {
		t.Error("index on missing table should fail")
	}
	stmt, _ := db.Prepare("INSERT INTO users (id, name) VALUES (?, ?)")
	if _, err := stmt.Query(1, "x"); err == nil {
		t.Error("Query on write statement should fail")
	}
	if _, err := db.Query("SELECT id FROM users WHERE id = ?", struct{}{}); err == nil {
		t.Error("bad param type should fail")
	}
	rows, _ := db.Query("SELECT id, name FROM users WHERE id = ?", 1)
	var x chan int
	rows.Next()
	if err := rows.Scan(&x); err == nil {
		t.Error("bad scan dest should fail")
	}
	var a, b, c int64
	if err := rows.Scan(&a, &b, &c); err == nil {
		t.Error("too many scan dests should fail")
	}
}

func TestScanTypes(t *testing.T) {
	db := openTestDB(t)
	rows, err := db.Query(`SELECT id, name, account, active, created FROM users WHERE id = ?`, 1)
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	var (
		id      int
		name    string
		account float64
		active  bool
		created time.Time
	)
	if err := rows.Scan(&id, &name, &account, &active, &created); err != nil {
		t.Fatal(err)
	}
	if id != 1 || name != "ada" || account != 1000 || !active || created.Year() != 2012 {
		t.Errorf("scanned %v %v %v %v %v", id, name, account, active, created)
	}
}

func TestDurabilityThroughPublicAPI(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Config{WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE TABLE kv (k INT, v VARCHAR, PRIMARY KEY (k))`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO kv VALUES (?, ?)`, 1, "one"); err != nil {
		t.Fatal(err)
	}
	if err := db.Storage().Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO kv VALUES (?, ?)`, 2, "two"); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := Open(Config{WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := db2.Exec(`CREATE TABLE kv (k INT, v VARCHAR, PRIMARY KEY (k))`); err != nil {
		t.Fatal(err)
	}
	if err := db2.Storage().Recover(); err != nil {
		t.Fatal(err)
	}
	rows, err := db2.Query(`SELECT v FROM kv WHERE k = ?`, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 1 {
		t.Fatalf("recovered rows = %d", rows.Len())
	}
}

func TestHeartbeatConfig(t *testing.T) {
	db, err := Open(Config{Heartbeat: 5 * time.Millisecond, MaxBatch: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE t (a INT, PRIMARY KEY (a))`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO t VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Query(`SELECT a FROM t`)
	if err != nil || rows.Len() != 1 {
		t.Fatalf("heartbeat query: %v, %d rows", err, rows.Len())
	}
}

func TestWorkersConfig(t *testing.T) {
	// The worker-pool layer through the public API: a DB opened with
	// Workers=4 must answer identically to one opened with Workers=1
	// (strictly serial), across scan, join-shaped, aggregate and Top-N
	// statements.
	results := map[int][][]string{}
	for _, workers := range []int{1, 4} {
		db, err := Open(Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		mustExec := func(sqlText string, args ...interface{}) {
			if _, err := db.Exec(sqlText, args...); err != nil {
				t.Fatalf("Exec(%q): %v", sqlText, err)
			}
		}
		mustExec(`CREATE TABLE m (id INT, grp VARCHAR(4), v FLOAT, PRIMARY KEY (id))`)
		groups := []string{"a", "b", "c", "d"}
		for i := 0; i < 400; i++ {
			mustExec(`INSERT INTO m VALUES (?, ?, ?)`, i, groups[i%4], float64(i%97)+0.25)
		}
		if got := db.Engine().Workers(); got != workers {
			t.Fatalf("Engine().Workers() = %d, want %d", got, workers)
		}
		var answers [][]string
		for _, q := range []string{
			`SELECT id FROM m WHERE v > 50 ORDER BY v DESC, id LIMIT 20`,
			`SELECT grp, COUNT(*), SUM(v), MIN(v), MAX(v) FROM m GROUP BY grp ORDER BY grp`,
			`SELECT id, grp FROM m WHERE grp = 'b' ORDER BY id`,
		} {
			rows, err := db.Query(q)
			if err != nil {
				t.Fatalf("workers=%d %q: %v", workers, q, err)
			}
			var rendered []string
			for rows.Next() {
				rendered = append(rendered, rows.Row().String())
			}
			answers = append(answers, rendered)
		}
		results[workers] = answers
		db.Close()
	}
	for qi := range results[1] {
		s, p := results[1][qi], results[4][qi]
		if len(s) != len(p) {
			t.Fatalf("query %d: %d rows serial vs %d parallel", qi, len(s), len(p))
		}
		for i := range s {
			if s[i] != p[i] {
				t.Errorf("query %d row %d: %s serial vs %s parallel", qi, i, s[i], p[i])
			}
		}
	}
}

// TestConfigValidation: negative knobs are rejected with clear errors
// instead of silently defaulting.
func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{Workers: -1},
		{MaxInFlightGenerations: -2},
		{Shards: -1},
		{MaxBatch: -5},
		{MaxGenerationDelay: -time.Millisecond},
		{MaxGenerationDelay: 200 * time.Microsecond}, // non-zero but below timer resolution
		{QueueDepthLimit: -1},
		{StatementQuota: -3},
		{BreakerStrikes: -1, MaxGenerationDelay: time.Millisecond},
		{BreakerCooldown: -time.Second, MaxGenerationDelay: time.Millisecond},
		{BreakerStrikes: 3}, // breaker without the SLO that drives it
	}
	for _, cfg := range cases {
		if db, err := Open(cfg); err == nil {
			db.Close()
			t.Errorf("Open(%+v) succeeded, want validation error", cfg)
		}
	}
	// Zero still selects defaults; admission knobs at sane values open fine.
	for _, cfg := range []Config{
		{},
		{MaxGenerationDelay: 5 * time.Millisecond, QueueDepthLimit: 100, StatementQuota: 50},
	} {
		db, err := Open(cfg)
		if err != nil {
			t.Fatalf("Open(%+v): %v", cfg, err)
		}
		db.Close()
	}
}

// TestOverloadSurfacesThroughPublicAPI: with a queue cap and a frozen
// dispatch window, excess public-API queries fail fast with an error
// matching errors.Is(err, ErrOverloaded) and carrying a typed retry hint —
// on the single engine and on a sharded deployment alike.
func TestOverloadSurfacesThroughPublicAPI(t *testing.T) {
	for _, shards := range []int{0, 2} {
		db, err := Open(Config{QueueDepthLimit: 2, Heartbeat: time.Second, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.Exec("CREATE TABLE t (a INT, b VARCHAR, PRIMARY KEY (a))"); err != nil {
			t.Fatal(err)
		}
		stmt, err := db.Prepare("SELECT b FROM t WHERE a > ?") // scatters on sharded runs
		if err != nil {
			t.Fatal(err)
		}
		// First query dispatches immediately and starts the heartbeat
		// window; the next two fill the queue; the fourth must be refused.
		if _, err := stmt.Query(0); err != nil {
			t.Fatal(err)
		}
		type outcome struct {
			rows *Rows
			err  error
		}
		results := make(chan outcome, 2)
		for i := 0; i < 2; i++ {
			go func() {
				rows, err := stmt.Query(0)
				results <- outcome{rows, err}
			}()
		}
		// Let the two queued queries enqueue before overflowing.
		// admissionDepth sums per-shard queues and each scatter read
		// enqueues on every shard, so the full-queue signature is
		// 2 queries × max(shards, 1) depth entries.
		wantDepth := 2
		if shards > 1 {
			wantDepth = 2 * shards
		}
		deadline := time.Now().Add(500 * time.Millisecond)
		for admissionDepth(db) < wantDepth && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		_, err = stmt.Query(0)
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("shards=%d: over-cap query got %v, want ErrOverloaded", shards, err)
		}
		var oe *OverloadError
		if !errors.As(err, &oe) || oe.RetryAfter <= 0 {
			t.Fatalf("shards=%d: rejection must be typed with a retry hint, got %v", shards, err)
		}
		for i := 0; i < 2; i++ {
			o := <-results
			if o.err != nil {
				t.Fatalf("shards=%d: queued query failed: %v", shards, o.err)
			}
		}
		db.Close()
	}
}

// admissionDepth reads the current queue depth from either backend.
func admissionDepth(db *DB) int {
	type admStats interface{ AdmissionStats() core.AdmissionStats }
	if s, ok := db.Engine().(admStats); ok {
		return s.AdmissionStats().QueueDepth
	}
	return 0
}

// TestShardedDB drives the public API against a 3-shard deployment: DDL
// broadcasts, writes route by primary-key hash, reads merge across shards
// (including DISTINCT-aggregate HAVING), and transactions commit through
// the shard engines.
func TestShardedDB(t *testing.T) {
	db, err := Open(Config{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if len(db.Storages()) != 3 {
		t.Fatalf("Storages() = %d, want 3", len(db.Storages()))
	}
	mustExec := func(sqlText string, args ...interface{}) Result {
		res, err := db.Exec(sqlText, args...)
		if err != nil {
			t.Fatalf("Exec(%q): %v", sqlText, err)
		}
		return res
	}
	mustExec(`CREATE TABLE events (id INT, kind VARCHAR(10), actor INT, score FLOAT, PRIMARY KEY (id))`)
	for i := 0; i < 90; i++ {
		mustExec(`INSERT INTO events VALUES (?, ?, ?, ?)`,
			i, []string{"view", "click", "buy"}[i%3], i%11, float64(i)/3)
	}
	// rows actually spread across shards
	spread := 0
	for _, s := range db.Storages() {
		if s.Table("events").CountVisible(s.SnapshotTS()) > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("rows on %d shards, want spread", spread)
	}
	// point read
	rows, err := db.Query(`SELECT kind FROM events WHERE id = ?`, 42)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 1 {
		t.Fatalf("point read: %d rows", rows.Len())
	}
	// grouped merge with DISTINCT aggregate + HAVING + ORDER BY
	rows, err = db.Query(`SELECT kind, COUNT(*), COUNT(DISTINCT actor), AVG(score) FROM events
		GROUP BY kind HAVING COUNT(DISTINCT actor) > ? ORDER BY kind`, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 3 {
		t.Fatalf("grouped merge: %d rows, want 3", rows.Len())
	}
	prev := ""
	for rows.Next() {
		var kind string
		var cnt, actors int
		var avg float64
		if err := rows.Scan(&kind, &cnt, &actors, &avg); err != nil {
			t.Fatal(err)
		}
		if kind <= prev {
			t.Fatalf("ORDER BY kind violated: %q after %q", kind, prev)
		}
		prev = kind
		if cnt != 30 || actors != 11 {
			t.Fatalf("kind %s: count=%d actors=%d, want 30/11", kind, cnt, actors)
		}
	}
	// broadcast write
	res := mustExec(`UPDATE events SET score = ? WHERE kind = ?`, 0.0, "buy")
	if res.RowsAffected != 30 {
		t.Fatalf("broadcast update affected %d, want 30", res.RowsAffected)
	}
	// transaction through the router: a point insert and a point update of
	// an existing row, each routed to its owning shard
	tx := db.Begin()
	if err := tx.Exec(`INSERT INTO events VALUES (?, ?, ?, ?)`, 1000, "tx", 99, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := tx.Exec(`UPDATE events SET score = ? WHERE id = ?`, 9.0, 7); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	for id, want := range map[int]float64{1000: 1.0, 7: 9.0} {
		rows, err = db.Query(`SELECT score FROM events WHERE id = ?`, id)
		if err != nil {
			t.Fatal(err)
		}
		if rows.Len() != 1 || !rows.Next() {
			t.Fatalf("tx row %d missing", id)
		}
		var score float64
		rows.Scan(&score)
		if score != want {
			t.Fatalf("tx effect lost on id %d: score = %v, want %v", id, score, want)
		}
	}
}

// TestShardedStatsAndDescribe: stats aggregate across shards and the plan
// description renders.
func TestShardedStatsAndDescribe(t *testing.T) {
	db, err := Open(Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE t (a INT, PRIMARY KEY (a))`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO t VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(`SELECT a FROM t`); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	queries, writes := st.QueriesRun, st.WritesApplied
	if writes == 0 || queries == 0 {
		t.Fatalf("stats empty: queries=%d writes=%d", queries, writes)
	}
	if db.DescribePlan() == "" {
		t.Fatal("DescribePlan empty")
	}
}

// TestPartitionKeyTypoSurfacesAtDDL: a misspelled Config.PartitionKeys
// column errors when the table is created, instead of silently falling
// back to partitioning on the primary key.
func TestPartitionKeyTypoSurfacesAtDDL(t *testing.T) {
	db, err := Open(Config{Shards: 2, PartitionKeys: map[string][]string{"t": {"no_such_col"}}})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE t (a INT, b INT, PRIMARY KEY (a))`); err == nil {
		t.Fatal("CREATE TABLE with a typo'd partition key succeeded, want error")
	}
	// a valid override is accepted
	db2, err := Open(Config{Shards: 2, PartitionKeys: map[string][]string{"t": {"b"}}})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := db2.Exec(`CREATE TABLE t (a INT, b INT, PRIMARY KEY (a))`); err != nil {
		t.Fatalf("valid partition-key override rejected: %v", err)
	}
}

// TestSubscribePublicAPI: the standing-query surface end to end — initial
// full result, a delta after a write, stats visibility, and context
// cancellation detaching the subscription.
func TestSubscribePublicAPI(t *testing.T) {
	db, err := Open(Config{IncrementalState: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE ticks (id INT, v FLOAT, PRIMARY KEY (id))`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := db.Exec(`INSERT INTO ticks VALUES (?, ?)`, i, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	stmt, err := db.Prepare(`SELECT id, v FROM ticks WHERE v > ?`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sub, err := db.Subscribe(ctx, stmt, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case u := <-sub.Updates():
		if !u.Full || len(u.Rows) != 3 {
			t.Fatalf("initial delivery = %+v, want full with 3 rows", u)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no initial full result")
	}
	if _, err := db.Exec(`INSERT INTO ticks VALUES (?, ?)`, 10, 7.5); err != nil {
		t.Fatal(err)
	}
	select {
	case u := <-sub.Updates():
		if u.Full || len(u.Added) != 1 || len(u.Removed) != 0 {
			t.Fatalf("post-insert delivery = %+v, want delta with 1 added row", u)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no delta after insert")
	}
	if st := db.Stats(); st.SubscriptionsActive != 1 || st.SubscriptionUpdates < 2 {
		t.Fatalf("stats = active %d updates %d, want 1 and >= 2",
			st.SubscriptionsActive, st.SubscriptionUpdates)
	}
	cancel()
	select {
	case <-sub.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("context cancellation did not close the subscription")
	}
	// writes keep flowing after detach
	if _, err := db.Exec(`DELETE FROM ticks WHERE id = ?`, 10); err != nil {
		t.Fatal(err)
	}
}
