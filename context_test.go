package shareddb

import (
	"context"
	"testing"
	"time"
)

func TestContextVariantsDelegate(t *testing.T) {
	db := openTestDB(t)
	ctx := context.Background()

	stmt, err := db.PrepareContext(ctx, `SELECT name FROM users WHERE country = ? ORDER BY name`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := stmt.QueryContext(ctx, "CH")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 2 {
		t.Fatalf("rows = %d", rows.Len())
	}

	if _, err := db.ExecContext(ctx, `INSERT INTO users VALUES (?, ?, ?, ?, ?, ?)`,
		100, "zed", "FR", 5.0, true, time.Now()); err != nil {
		t.Fatal(err)
	}
	rows, err = db.QueryContext(ctx, `SELECT name FROM users WHERE id = ?`, 100)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 1 {
		t.Fatalf("insert via ExecContext not visible: %d rows", rows.Len())
	}

	tx, err := db.BeginContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.ExecContext(ctx, `UPDATE users SET account = ? WHERE id = ?`, 9.5, 100); err != nil {
		t.Fatal(err)
	}
	if err := tx.CommitContext(ctx); err != nil {
		t.Fatal(err)
	}
	var account float64
	rows, err = db.Query(`SELECT account FROM users WHERE id = ?`, 100)
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	if err := rows.Scan(&account); err != nil {
		t.Fatal(err)
	}
	if account != 9.5 {
		t.Fatalf("account = %v after CommitContext", account)
	}
}

func TestContextAlreadyExpired(t *testing.T) {
	db := openTestDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := db.QueryContext(ctx, `SELECT name FROM users`); err != context.Canceled {
		t.Fatalf("QueryContext err = %v", err)
	}
	if _, err := db.ExecContext(ctx, `INSERT INTO users VALUES (?, ?, ?, ?, ?, ?)`,
		101, "x", "FR", 0.0, true, time.Now()); err != context.Canceled {
		t.Fatalf("ExecContext err = %v", err)
	}
	if _, err := db.PrepareContext(ctx, `SELECT id FROM users`); err != context.Canceled {
		t.Fatalf("PrepareContext err = %v", err)
	}
	if _, err := db.BeginContext(ctx); err != context.Canceled {
		t.Fatalf("BeginContext err = %v", err)
	}
	tx := db.Begin()
	if err := tx.ExecContext(ctx, `UPDATE users SET account = ? WHERE id = ?`, 1.0, 1); err != context.Canceled {
		t.Fatalf("Tx.ExecContext err = %v", err)
	}
	tx.Rollback()

	// The expired insert never ran.
	rows, err := db.Query(`SELECT id FROM users WHERE id = ?`, 101)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 0 {
		t.Fatal("cancelled ExecContext still applied its write")
	}
}

// TestContextCancelAbandonsWait: a query cancelled mid-wait returns
// ctx.Err() promptly, and the generation it was queued into is unperturbed
// — concurrent queries sharing the batch still complete with full results.
func TestContextCancelAbandonsWait(t *testing.T) {
	db, err := Open(Config{
		// A wide heartbeat holds submissions in the pending queue long
		// enough to cancel one deterministically before dispatch.
		Heartbeat:   300 * time.Millisecond,
		FoldQueries: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE kv (k INT, v VARCHAR(8), PRIMARY KEY (k))`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := db.Exec(`INSERT INTO kv VALUES (?, ?)`, i, "x"); err != nil {
			t.Fatal(err)
		}
	}
	stmt, err := db.Prepare(`SELECT k FROM kv WHERE k >= ?`)
	if err != nil {
		t.Fatal(err)
	}
	// Warm: start the heartbeat window.
	if _, err := stmt.Query(0); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	type out struct {
		rows *Rows
		err  error
	}
	cancelled := make(chan out, 1)
	go func() {
		r, err := stmt.QueryContext(ctx, int64(5))
		cancelled <- out{r, err}
	}()
	survivor := make(chan out, 1)
	go func() {
		r, err := stmt.QueryContext(context.Background(), int64(5))
		survivor <- out{r, err}
	}()
	time.Sleep(50 * time.Millisecond) // both queued in the same window
	cancel()

	got := <-cancelled
	if got.err != context.Canceled {
		t.Fatalf("cancelled query err = %v", got.err)
	}
	sv := <-survivor
	if sv.err != nil {
		t.Fatalf("survivor err = %v", sv.err)
	}
	if sv.rows.Len() != 5 {
		t.Fatalf("survivor rows = %d, want 5", sv.rows.Len())
	}
}
