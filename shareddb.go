// Package shareddb is a main-memory relational database engine built around
// batched, shared query execution — a from-scratch reproduction of
// "SharedDB: Killing One Thousand Queries With One Stone" (Giannikis,
// Alonso, Kossmann; VLDB 2012).
//
// Instead of planning and running each query separately, SharedDB compiles
// the whole workload into a single always-on global plan of shared
// operators. Queries and updates are batched into generations; one big
// join/sort/group per generation serves every concurrent query, and results
// are routed back through set-valued query-id annotations (the data-query
// model). Work per generation is bounded by data size — not by the number
// of concurrent queries — which is what gives SharedDB robust latency under
// extreme load.
//
// Generations pipeline through the always-on plan: up to
// Config.MaxInFlightGenerations generations execute concurrently (default
// 4), so while one batch sits in the shared join, the next is already
// scanning. Each generation's updates apply in strict generation order and
// its reads run at the snapshot published after its own updates, so
// pipelining never changes results — set MaxInFlightGenerations to 1 for
// strictly serial generations.
//
// Within a generation, Config.Workers (default GOMAXPROCS) sets the
// intra-operator worker pool: table scans run as partition-parallel
// ClockScans and the blocking operators (sort, group-by, join build) run
// data-parallel Finish phases. Workers = 1 is strictly serial; per-query
// results are identical at any setting.
//
// Basic usage:
//
//	db, _ := shareddb.Open(shareddb.Config{})
//	defer db.Close()
//	db.Exec(`CREATE TABLE users (id INT, name VARCHAR, PRIMARY KEY (id))`)
//	db.Exec(`INSERT INTO users VALUES (1, 'Ada')`)
//	stmt, _ := db.Prepare(`SELECT name FROM users WHERE id = ?`)
//	rows, _ := stmt.Query(1)
//	for rows.Next() {
//	    var name string
//	    rows.Scan(&name)
//	}
package shareddb

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"shareddb/internal/core"
	"shareddb/internal/plan"
	"shareddb/internal/shard"
	"shareddb/internal/sql"
	"shareddb/internal/storage"
	"shareddb/internal/types"
)

// Config tunes a DB instance.
type Config struct {
	// Heartbeat is the minimum spacing between execution generations
	// (paper §3.2). Zero runs back-to-back generations: lowest latency,
	// batches form naturally from concurrent arrivals.
	Heartbeat time.Duration
	// MaxBatch caps requests per generation (0 = unlimited).
	MaxBatch int
	// MaxInFlightGenerations bounds how many generations execute
	// concurrently in the always-on plan (the generation pipeline). 0
	// selects the engine default (4); 1 restores strictly serial
	// generations; negative values are rejected by Open. Updates always
	// apply in generation order; only read phases overlap, each at its
	// own snapshot.
	MaxInFlightGenerations int
	// Workers is the intra-operator parallelism budget: each generation's
	// shared table scans run as partition-parallel ClockScans and the
	// blocking shared operators (sort, group-by, join build) run
	// data-parallel Finish phases on up to this many workers. 0 selects
	// GOMAXPROCS (one worker per core); 1 runs strictly serial; negative
	// values are rejected by Open. Per-query results are identical at any
	// setting.
	Workers int
	// ColumnarScan switches shared table scans from the row-store ClockScan
	// to a delta-maintained columnar mirror: typed flat vectors per column
	// with a validity bitmap, kept up to date from each generation's write
	// delta and scanned with vectorized predicate evaluation (equality
	// probes hash whole column chunks, ranges compare typed slices without
	// boxing). Results are bit-identical to the row path — same rows, same
	// order, same per-query assignment — only scan throughput changes. Off
	// (false), the scan path is byte-identical to the row-store engine. See
	// README "Columnar execution".
	ColumnarScan bool
	// ShardWorkers overrides the per-shard worker budget on sharded
	// deployments: by default each shard engine receives a disjoint
	// GOMAXPROCS/Shards share of the machine so shards do not contend for
	// the same cores; a positive value gives every shard exactly that many
	// workers instead (oversubscribing or isolating cores explicitly).
	// 0 selects the split; negative values are rejected by Open. Ignored
	// when Shards <= 1.
	ShardWorkers int
	// MaxGenerationDelay is the per-generation latency SLO (the paper's
	// response-time limit). When set, batch formation caps each generation
	// at the size predicted — from observed cycle times — to finish within
	// it, and the slow-query circuit breaker quarantines statements whose
	// generations repeatedly exceed it (submissions of a quarantined
	// statement are rejected with ErrOverloaded until a cooldown probe
	// meets the SLO again). 0 disables both; non-zero values below 1ms are
	// rejected by Open (the generation timer cannot enforce them).
	MaxGenerationDelay time.Duration
	// QueueDepthLimit caps how many submissions may wait for a generation
	// (per shard on sharded deployments). Submissions beyond the cap fail
	// immediately with a *OverloadError carrying a retry hint instead of
	// queueing unboundedly. 0 = unlimited.
	QueueDepthLimit int
	// StatementQuota caps how many activations of any single statement one
	// generation admits; excess activations are shed to later generations
	// in arrival order (they wait longer, but one statement's burst cannot
	// monopolize a cycle). 0 = unlimited.
	StatementQuota int
	// BreakerStrikes is the number of consecutive over-SLO generations
	// containing a statement that trips its slow-query breaker (0 selects
	// the default of 3; requires MaxGenerationDelay).
	BreakerStrikes int
	// BreakerCooldown is how long a quarantined statement stays rejected
	// before a half-open probe is admitted (0 selects 8×MaxGenerationDelay;
	// requires MaxGenerationDelay).
	BreakerCooldown time.Duration
	// FoldQueries enables result folding: concurrent reads with identical
	// SQL text and bit-identical parameters that land in the same
	// generation collapse to one engine activation whose result fans out
	// to every caller. Folded reads are charged once against
	// QueueDepthLimit/StatementQuota; writes and transaction operations
	// never fold. See README "Result folding" for the fingerprint rules
	// and the consistency argument. Off (false) keeps the submission path
	// byte-identical to pre-folding behavior.
	FoldQueries bool
	// FoldSubsume additionally lets a pending parameter-free simple scan
	// serve equality-restriction duplicates of itself through residual
	// filters when expression analysis proves covering. Requires
	// FoldQueries; rejected by Open otherwise.
	FoldSubsume bool
	// Shards splits the database into that many shard engines, each
	// owning a hash partition (on primary key) of every table with its
	// own always-on global plan and generation loop. A scatter-gather
	// router speaks the same API: point writes and primary-key reads go
	// to the owning shard, everything else fans out and merges
	// deterministically (ORDER BY via k-way merge, GROUP BY via
	// partial-aggregate recombination). 0 or 1 runs the classic single
	// engine — byte-identical to pre-sharding behavior. Negative values
	// are rejected by Open.
	Shards int
	// ReplicatedTables lists tables fully copied to every shard instead of
	// partitioned (dimension tables every shard joins against). Tables
	// without a primary key always replicate. Ignored when Shards <= 1.
	ReplicatedTables []string
	// PartitionKeys overrides the partition key of a table (default: its
	// primary key) — e.g. co-partitioning a detail table with its parent
	// on the parent's id so their join stays shard-local. Ignored when
	// Shards <= 1.
	PartitionKeys map[string][]string
	// WALDir enables durability (write-ahead log + checkpoints). Sharded
	// deployments log each shard under WALDir/shard-<i>.
	WALDir string
	// SyncWAL fsyncs the log on every commit batch.
	SyncWAL bool
	// IncrementalState keeps hash-join build sides and group-by aggregate
	// tables as persistent operator state maintained from each generation's
	// write delta, instead of rebuilding them from their input scan every
	// generation. State is reused when the covering queries and parameters
	// repeat between generations (standing queries, repeated prepared
	// reads); anything else reprimes from the base table. Off (false), the
	// execution path is byte-identical to rebuild-every-generation.
	// Requires MaxInFlightGenerations >= 1 (0 selects the default depth);
	// rejected by Open otherwise.
	IncrementalState bool
	// SubscriptionBuffer is the per-subscription update channel capacity
	// for DB.Subscribe (0 selects the default of 16; negative values are
	// rejected by Open). A subscriber that falls a full buffer behind is
	// marked lagged and receives a full resync as its next delivery —
	// generations never block on slow subscribers.
	SubscriptionBuffer int
}

// Validate rejects configurations that previously defaulted silently.
// Negative Workers, MaxInFlightGenerations and Shards are errors (zero
// keeps selecting each knob's documented default), as are negative
// admission limits, a non-zero MaxGenerationDelay below the 1ms timer
// resolution, and breaker knobs without the SLO that drives them.
func (c Config) Validate() error {
	if c.Shards < 0 {
		return fmt.Errorf("shareddb: Shards must be >= 0, got %d (0 or 1 = single engine)", c.Shards)
	}
	return c.coreConfig().Validate()
}

func (c Config) coreConfig() core.Config {
	return core.Config{
		Heartbeat:              c.Heartbeat,
		MaxBatch:               c.MaxBatch,
		MaxInFlightGenerations: c.MaxInFlightGenerations,
		Workers:                c.Workers,
		ColumnarScan:           c.ColumnarScan,
		ShardWorkers:           c.ShardWorkers,
		MaxGenerationDelay:     c.MaxGenerationDelay,
		QueueDepthLimit:        c.QueueDepthLimit,
		StatementQuota:         c.StatementQuota,
		BreakerStrikes:         c.BreakerStrikes,
		BreakerCooldown:        c.BreakerCooldown,
		FoldQueries:            c.FoldQueries,
		FoldSubsume:            c.FoldSubsume,
		IncrementalState:       c.IncrementalState,
		SubscriptionBuffer:     c.SubscriptionBuffer,
	}
}

// ErrOverloaded is the sentinel every admission-control rejection wraps:
// when the submission queue is at QueueDepthLimit, or a statement is
// quarantined by the slow-query breaker, Query/Exec fail fast with an error
// matching errors.Is(err, shareddb.ErrOverloaded) instead of queueing. Use
// errors.As with *OverloadError to recover the retry hint.
var ErrOverloaded = core.ErrOverloaded

// OverloadError is the typed admission rejection: the reason a submission
// was refused plus RetryAfter, the suggested client back-off.
type OverloadError = core.OverloadError

// Subscription is a standing query handle returned by DB.Subscribe: the
// statement joins every subsequent generation's query set and result changes
// arrive on Updates. See SubscriptionUpdate for the delivery contract.
type Subscription = core.Subscription

// SubscriptionUpdate is one delivery on a Subscription's Updates channel:
// an initial full result, then per-generation Added/Removed deltas
// (generations that leave the result unchanged deliver nothing). A
// subscriber that falls a full buffer behind is resynced with a fresh full
// result instead of a gapped delta stream.
type SubscriptionUpdate = core.SubscriptionUpdate

// DB is a SharedDB database handle. It is safe for concurrent use.
type DB struct {
	stores []*storage.Database
	plan   *plan.GlobalPlan // single-engine deployments only
	router *shard.Router    // sharded deployments only
	exec   core.Executor
}

// Open creates a new database. With Config.Shards <= 1 this is the classic
// single engine; otherwise the tables are hash-partitioned across
// Config.Shards shard engines behind a scatter-gather router.
func Open(cfg Config) (*DB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Shards <= 1 {
		store, err := storage.Open(storage.Options{WALDir: cfg.WALDir, SyncWAL: cfg.SyncWAL})
		if err != nil {
			return nil, err
		}
		gp := plan.New(store)
		eng := core.New(store, gp, cfg.coreConfig())
		return &DB{stores: []*storage.Database{store}, plan: gp, exec: eng}, nil
	}
	stores := make([]*storage.Database, cfg.Shards)
	for i := range stores {
		opts := storage.Options{SyncWAL: cfg.SyncWAL,
			Shard: storage.ShardInfo{Index: i, Count: cfg.Shards}}
		if cfg.WALDir != "" {
			opts.WALDir = filepath.Join(cfg.WALDir, fmt.Sprintf("shard-%d", i))
		}
		store, err := storage.Open(opts)
		if err != nil {
			for _, s := range stores[:i] {
				s.Close()
			}
			return nil, err
		}
		stores[i] = store
	}
	router, err := shard.New(stores, cfg.coreConfig(),
		shard.Placement{Replicated: cfg.ReplicatedTables, PartitionKeys: cfg.PartitionKeys})
	if err != nil {
		for _, s := range stores {
			s.Close()
		}
		return nil, err
	}
	return &DB{stores: stores, router: router, exec: router}, nil
}

// Close stops the engine(s) and releases storage resources.
func (db *DB) Close() error {
	db.exec.Close()
	var firstErr error
	for _, s := range db.stores {
		if err := s.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Storage exposes the underlying storage manager (checkpointing, recovery,
// direct table access for bulk loading). Sharded deployments return the
// first shard; use Storages for all partitions.
func (db *DB) Storage() *storage.Database { return db.stores[0] }

// Storages returns every shard's storage manager (one entry when
// unsharded).
func (db *DB) Storages() []*storage.Database { return db.stores }

// Engine exposes the execution backend (statistics, transaction
// submission): the single engine, or the shard router. Prefer Stats for
// observability — Engine remains for advanced integrations that submit
// through core types directly.
func (db *DB) Engine() core.Executor { return db.exec }

// Stats is a point-in-time snapshot of the database's execution counters.
// All counts are cumulative since Open and summed across shards; QueueDepth
// and InFlightGenerations are live gauges.
type Stats struct {
	// Generations is the number of execution generations dispatched.
	Generations uint64
	// QueriesRun counts read activations the engine actually executed.
	// Folded duplicates are excluded — they consumed no engine work.
	QueriesRun uint64
	// WritesApplied counts applied write statements and transaction
	// commits.
	WritesApplied uint64
	// FoldedQueries counts reads answered by fan-out from an identical
	// concurrent duplicate (Config.FoldQueries); SubsumedQueries is the
	// subset served through a subsumption residual filter
	// (Config.FoldSubsume).
	FoldedQueries   uint64
	SubsumedQueries uint64
	// InFlightGenerations is the pipeline gauge: generations dispatched
	// but not yet complete (summed across shards).
	InFlightGenerations int
	// QueueDepth is the number of submissions waiting for a generation
	// (including reserved broadcast slots; summed across shards).
	QueueDepth int
	// Shed counts activations deferred to a later generation by
	// StatementQuota or the latency-SLO batch cap; Rejected counts
	// submissions refused outright (queue full, breaker open);
	// BreakerTrips counts slow-query quarantines.
	Shed         uint64
	Rejected     uint64
	BreakerTrips uint64
	// SubscriptionsActive is the gauge of open standing queries
	// (DB.Subscribe handles not yet closed; summed across shards).
	SubscriptionsActive int
	// SubscriptionUpdates counts updates handed to subscribers: initial
	// full results, per-generation deltas and lag resyncs.
	SubscriptionUpdates uint64
}

// FoldHitRate is the fraction of client-visible reads served by folding:
// FoldedQueries / (QueriesRun + FoldedQueries). Zero when no reads ran.
func (s Stats) FoldHitRate() float64 {
	total := s.QueriesRun + s.FoldedQueries
	if total == 0 {
		return 0
	}
	return float64(s.FoldedQueries) / float64(total)
}

// Stats returns the database's typed execution counters.
func (db *DB) Stats() Stats {
	es := db.exec.Stats()
	return Stats{
		Generations:         es.Generations,
		QueriesRun:          es.QueriesRun,
		WritesApplied:       es.WritesRun,
		FoldedQueries:       es.FoldedQueries,
		SubsumedQueries:     es.SubsumedQueries,
		InFlightGenerations: es.InFlight,
		QueueDepth:          es.Admission.QueueDepth,
		Shed:                es.Admission.Shed,
		Rejected:            es.Admission.Rejected,
		BreakerTrips:        es.Admission.BreakerTrips,
		SubscriptionsActive: es.SubscriptionsActive,
		SubscriptionUpdates: es.SubscriptionUpdates,
	}
}

// DescribePlan renders the current global operator plan (shard 0's plan on
// sharded deployments — all shards compile the same statements).
func (db *DB) DescribePlan() string {
	if db.router != nil {
		return db.router.Describe()
	}
	return db.plan.Describe()
}

// Result reports the outcome of a write.
type Result struct {
	RowsAffected int
}

// Exec runs a statement outside the prepared path. DDL (CREATE TABLE /
// CREATE INDEX) applies immediately; reads and writes are enqueued for the
// next generation and waited on. It is ExecContext with
// context.Background().
func (db *DB) Exec(sqlText string, args ...interface{}) (Result, error) {
	return db.ExecContext(context.Background(), sqlText, args...)
}

// createTable applies DDL to every shard (tables exist on all partitions;
// rows are distributed by primary-key hash).
func (db *DB) createTable(s *sql.CreateTableStmt) error {
	cols := make([]types.Column, len(s.Columns))
	for i, c := range s.Columns {
		cols[i] = types.Column{Qualifier: s.Table, Name: c.Name, Kind: c.Kind}
	}
	for _, store := range db.stores {
		t, err := store.CreateTable(s.Table, types.NewSchema(cols...))
		if err != nil {
			return err
		}
		if len(s.Primary) > 0 {
			if _, err := t.SetPrimaryKey(s.Primary...); err != nil {
				return err
			}
		}
	}
	if db.router != nil {
		// Surface typo'd Config.PartitionKeys overrides now, not as a
		// silent primary-key fallback at routing time.
		return db.router.ValidateTable(s.Table)
	}
	return nil
}

func (db *DB) createIndex(s *sql.CreateIndexStmt) error {
	for _, store := range db.stores {
		t := store.Table(s.Table)
		if t == nil {
			return fmt.Errorf("shareddb: unknown table %q", s.Table)
		}
		if _, err := t.AddIndex(s.Name, s.Unique, s.Columns...); err != nil {
			return err
		}
	}
	return nil
}

// Stmt is a prepared statement registered in the global plan. Statements
// are the unit of sharing: every concurrent activation of every statement
// with a matching shape runs on the same shared operators.
type Stmt struct {
	db   *DB
	stmt *plan.Statement
}

// Prepare registers a statement. Like JDBC PreparedStatements in the
// paper's TPC-W setup, statements are typically prepared once at startup;
// preparing at runtime is the ad-hoc query path — which is why the
// slow-query breaker is consulted first: registration quiesces the
// generation pipeline, and retries of a quarantined ad-hoc statement must
// fail fast (ErrOverloaded) without stalling every other client.
func (db *DB) Prepare(sqlText string) (*Stmt, error) {
	if err := db.exec.AdmitStatement(sqlText); err != nil {
		return nil, err
	}
	ps, err := db.exec.Prepare(sqlText)
	if err != nil {
		return nil, err
	}
	return &Stmt{db: db, stmt: ps}, nil
}

// SQL returns the statement text.
func (s *Stmt) SQL() string { return s.stmt.SQL }

// Query enqueues a read for the next generation and blocks for its results.
// It is QueryContext with context.Background().
func (s *Stmt) Query(args ...interface{}) (*Rows, error) {
	return s.QueryContext(context.Background(), args...)
}

// Exec enqueues a write for the next generation and blocks for its outcome.
// It is ExecContext with context.Background().
func (s *Stmt) Exec(args ...interface{}) (Result, error) {
	return s.ExecContext(context.Background(), args...)
}

// Query is the ad-hoc path: the statement joins the global plan (sharing
// whatever operators match) and runs once. It is QueryContext with
// context.Background().
func (db *DB) Query(sqlText string, args ...interface{}) (*Rows, error) {
	return db.QueryContext(context.Background(), sqlText, args...)
}

// Subscribe registers stmt with the given arguments as a standing query.
// The statement becomes a permanent member of every subsequent generation's
// query set: the first delivery on the subscription's Updates channel is the
// full result at the next generation's snapshot, and each later generation
// that changes the result delivers the Added/Removed rows. With
// Config.IncrementalState the standing query's shared join and group state
// is maintained in place from each generation's write delta instead of
// being rebuilt.
//
// Cancelling ctx closes the subscription, as does Subscription.Close;
// either way the engine drops it at the next batch formation without
// perturbing in-flight generations. On sharded deployments the feed merges
// per-shard updates in generation order (scatter statements must be plain
// concatenations — no cross-shard ORDER BY, GROUP BY, DISTINCT or LIMIT).
func (db *DB) Subscribe(ctx context.Context, stmt *Stmt, args ...interface{}) (*Subscription, error) {
	params, err := toValues(args)
	if err != nil {
		return nil, err
	}
	sub, err := db.exec.Subscribe(stmt.stmt, params)
	if err != nil {
		return nil, err
	}
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				sub.Close()
			case <-sub.Done():
			}
		}()
	}
	return sub, nil
}

// Rows is a materialized, iterable result set.
//
// The materialized-result contract: the generation that served the query
// has already completed by the time Query returns, so Rows holds the full
// result in memory — iteration never blocks, never fails, and Len is known
// up front. Err and Close exist for database/sql-shaped callers (loops
// ending in rows.Err(), deferred rows.Close()): Err always returns nil and
// Close only releases the reference, because there is no cursor to fail or
// connection to return.
//
// Rows are read-only. With Config.FoldQueries, callers that issued
// identical queries receive results backed by the same row storage —
// mutating a row through Row or All would corrupt another caller's result.
type Rows struct {
	schema *types.Schema
	rows   []types.Row
	pos    int
}

// Columns returns the result column names.
func (r *Rows) Columns() []string {
	out := make([]string, r.schema.Len())
	for i, c := range r.schema.Cols {
		out[i] = c.Name
	}
	return out
}

// Len returns the number of rows.
func (r *Rows) Len() int { return len(r.rows) }

// Next advances the cursor; it must be called before the first Scan.
func (r *Rows) Next() bool {
	r.pos++
	return r.pos < len(r.rows)
}

// Row returns the current row's raw values.
func (r *Rows) Row() types.Row {
	if r.pos < 0 || r.pos >= len(r.rows) {
		return nil
	}
	return r.rows[r.pos]
}

// All returns every row. The returned rows are shared, read-only storage
// (see the type comment); copy before mutating.
func (r *Rows) All() []types.Row { return r.rows }

// Err reports the error, if any, encountered during iteration. Results are
// fully materialized before Query returns (execution errors surface from
// Query itself), so Err always returns nil; it exists so database/sql-style
// loops port without edits.
func (r *Rows) Err() error { return nil }

// Close releases the result set's row storage reference. It is never
// required — there is no cursor or connection behind Rows — but it is safe
// to defer in database/sql style; subsequent Next/Row calls return no rows.
func (r *Rows) Close() error {
	r.rows = nil
	r.pos = -1
	return nil
}

// Scan copies the current row into dest pointers (*int64, *int, *float64,
// *string, *bool, *time.Time or *types.Value). Destinations bind to the
// row's leading columns: Scan errors when given more destinations than the
// row has columns, while trailing row columns beyond len(dest) are simply
// not scanned (handy with SELECT * when only a prefix matters).
func (r *Rows) Scan(dest ...interface{}) error {
	row := r.Row()
	if row == nil {
		return errors.New("shareddb: Scan without Next")
	}
	if len(dest) > len(row) {
		return fmt.Errorf("shareddb: Scan wants %d values, row has %d", len(dest), len(row))
	}
	for i, d := range dest {
		v := row[i]
		switch p := d.(type) {
		case *int64:
			*p = v.AsInt()
		case *int:
			*p = int(v.AsInt())
		case *float64:
			*p = v.AsFloat()
		case *string:
			*p = v.AsString()
		case *bool:
			*p = v.AsBool()
		case *time.Time:
			*p = v.AsTime()
		case *types.Value:
			*p = v
		default:
			return fmt.Errorf("shareddb: unsupported Scan destination %T", d)
		}
	}
	return nil
}

// Tx is a snapshot-isolated write transaction. Reads issued while the
// transaction is open run as ordinary statements at the latest snapshot
// (read committed — the isolation TPC-W requires, §5.2); buffered writes
// apply atomically at Commit in the next generation's update batch. On a
// sharded deployment each write routes to the owning shard; commit
// validation runs per shard (cross-shard commits are not atomic).
type Tx struct {
	db   *DB
	tx   core.Tx
	done bool
}

// Begin opens a transaction.
func (db *DB) Begin() *Tx {
	return &Tx{db: db, tx: db.exec.BeginTx()}
}

// Exec buffers a write statement in the transaction. It is ExecContext
// with context.Background().
func (tx *Tx) Exec(sqlText string, args ...interface{}) error {
	return tx.ExecContext(context.Background(), sqlText, args...)
}

// ExecContext buffers a write statement in the transaction. Buffering is
// local (no generation is involved until Commit), so ctx only gates entry:
// an already-cancelled context fails fast without buffering.
func (tx *Tx) ExecContext(ctx context.Context, sqlText string, args ...interface{}) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if tx.done {
		return storage.ErrTxDone
	}
	ast, err := sql.Parse(sqlText)
	if err != nil {
		return err
	}
	bound, err := sql.PlanStatement(ast, planCatalog{tx.db.stores[0]})
	if err != nil {
		return err
	}
	wp, ok := bound.(*sql.WritePlan)
	if !ok {
		return errors.New("shareddb: only writes may run inside Tx.Exec")
	}
	params, err := toValues(args)
	if err != nil {
		return err
	}
	op, err := core.BindWriteForTx(wp, params)
	if err != nil {
		return err
	}
	switch op.Kind {
	case storage.WInsert:
		tx.tx.Insert(op.Table, op.Row)
	case storage.WUpdate:
		tx.tx.Update(op.Table, op.Pred, op.Set)
	case storage.WDelete:
		tx.tx.Delete(op.Table, op.Pred)
	}
	return nil
}

// Commit submits the transaction to the next generation's update batch and
// waits. Snapshot-isolation conflicts surface as storage.ErrConflict. It is
// CommitContext with context.Background().
func (tx *Tx) Commit() error {
	return tx.CommitContext(context.Background())
}

// CommitContext is Commit with cancellation: on ctx expiry the wait is
// abandoned and ctx.Err() returned, but the commit itself is NOT undone —
// it was already submitted and will apply (or conflict) in its generation,
// exactly as if the cancellation had arrived a moment later. Callers that
// must know the outcome should not cancel a commit wait.
func (tx *Tx) CommitContext(ctx context.Context) error {
	if tx.done {
		return storage.ErrTxDone
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	tx.done = true
	return awaitResult(ctx, tx.db.exec.SubmitTx(tx.tx))
}

// Rollback abandons the transaction.
func (tx *Tx) Rollback() {
	tx.done = true
	tx.tx.Rollback()
}

type planCatalog struct{ db *storage.Database }

func (c planCatalog) TableSchema(name string) (*types.Schema, bool) {
	t := c.db.Table(name)
	if t == nil {
		return nil, false
	}
	return t.Schema(), true
}

// toValues converts Go values to engine values.
func toValues(args []interface{}) ([]types.Value, error) {
	if len(args) == 0 {
		return nil, nil
	}
	out := make([]types.Value, len(args))
	for i, a := range args {
		switch v := a.(type) {
		case nil:
			out[i] = types.Null
		case int:
			out[i] = types.NewInt(int64(v))
		case int32:
			out[i] = types.NewInt(int64(v))
		case int64:
			out[i] = types.NewInt(v)
		case uint64:
			out[i] = types.NewInt(int64(v))
		case float64:
			out[i] = types.NewFloat(v)
		case float32:
			out[i] = types.NewFloat(float64(v))
		case string:
			out[i] = types.NewString(v)
		case bool:
			out[i] = types.NewBool(v)
		case time.Time:
			out[i] = types.NewTime(v)
		case types.Value:
			out[i] = v
		default:
			return nil, fmt.Errorf("shareddb: unsupported parameter type %T", a)
		}
	}
	return out, nil
}
