package shareddb_test

// One benchmark per figure of the paper's evaluation (DESIGN.md §4), plus
// the ablation benches for design choices (A1 lives in internal/queryset,
// A3 in internal/operators, A4 in internal/storage; A2 and A5 are here).
//
// These are smoke-scale versions: the full paper-shaped sweeps are produced
// by `go run ./cmd/tpcw` and `go run ./cmd/microbench` (see EXPERIMENTS.md).

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"shareddb"
	"shareddb/internal/baseline"
	"shareddb/internal/core"
	"shareddb/internal/storage"
	"shareddb/internal/tpcw"
	"shareddb/internal/types"
)

var benchScale = tpcw.Scale{Items: 500, Customers: 400}

func newBenchEnv(b *testing.B, kind string) (tpcw.System, *tpcw.IDAllocator) {
	b.Helper()
	db, err := storage.Open(storage.Options{})
	if err != nil {
		b.Fatal(err)
	}
	gen, err := tpcw.Setup(db, benchScale, 7)
	if err != nil {
		b.Fatal(err)
	}
	ids := tpcw.NewIDAllocator(gen)
	var sys tpcw.System
	switch kind {
	case "SharedDB":
		sys, err = tpcw.NewSharedSystem(db, core.Config{})
	case "SystemX":
		sys, err = tpcw.NewBaselineSystem(db, baseline.SystemXLike)
	case "MySQL":
		sys, err = tpcw.NewBaselineSystem(db, baseline.MySQLLike)
	}
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { sys.Close(); db.Close() })
	return sys, ids
}

// benchInteractions runs b.N interactions of the given mix concurrently
// (b.RunParallel supplies the concurrency that lets SharedDB batch).
func benchInteractions(b *testing.B, sys tpcw.System, ids *tpcw.IDAllocator, mix tpcw.Mix, only tpcw.Interaction) {
	weights := mix.Weights()
	var cum [tpcw.NumInteractions]float64
	total := 0.0
	for i, w := range weights {
		total += w
		cum[i] = total
	}
	var seed int64
	var mu sync.Mutex
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		mu.Lock()
		seed++
		sess := tpcw.NewSession(sys, benchScale, ids, seed)
		mu.Unlock()
		for pb.Next() {
			inter := only
			if inter < 0 {
				pick := sess.Rng.Float64() * total
				for i := tpcw.Interaction(0); i < tpcw.NumInteractions; i++ {
					if pick <= cum[i] {
						inter = i
						break
					}
				}
			}
			if err := sess.Run(inter); err != nil {
				// Write-write conflicts are expected under snapshot
				// isolation when concurrent BuyConfirms touch the same
				// item's stock; a real client retries. Anything else is a
				// bench failure.
				if errors.Is(err, storage.ErrConflict) || errors.Is(err, storage.ErrUniqueViolate) {
					continue
				}
				b.Error(err)
				return
			}
		}
	})
}

// Figure 7: TPC-W throughput under concurrent load, per mix. ns/op is the
// inverse of WIPS at this concurrency.
func BenchmarkFig7_TPCW(b *testing.B) {
	for _, mix := range []tpcw.Mix{tpcw.Browsing, tpcw.Shopping, tpcw.Ordering} {
		for _, kind := range []string{"MySQL", "SystemX", "SharedDB"} {
			b.Run(fmt.Sprintf("%s/%s", mix, kind), func(b *testing.B) {
				sys, ids := newBenchEnv(b, kind)
				benchInteractions(b, sys, ids, mix, -1)
			})
		}
	}
}

// Figure 8: throughput scaling with the core budget (GOMAXPROCS sweep).
func BenchmarkFig8_Cores(b *testing.B) {
	cores := []int{1, 2, 4}
	if n := runtime.NumCPU(); n >= 8 {
		cores = append(cores, 8)
	}
	for _, n := range cores {
		for _, kind := range []string{"MySQL", "SharedDB"} {
			b.Run(fmt.Sprintf("%dcores/%s", n, kind), func(b *testing.B) {
				prev := runtime.GOMAXPROCS(n)
				defer runtime.GOMAXPROCS(prev)
				sys, ids := newBenchEnv(b, kind)
				benchInteractions(b, sys, ids, tpcw.Shopping, -1)
			})
		}
	}
}

// Figure 9: individual web interactions (the paper's per-interaction bars;
// the two extremes plus the cart path keep bench time sane).
func BenchmarkFig9_Interactions(b *testing.B) {
	for _, inter := range []tpcw.Interaction{tpcw.Home, tpcw.BestSellers, tpcw.ShoppingCart, tpcw.OrderDisplay} {
		for _, kind := range []string{"MySQL", "SystemX", "SharedDB"} {
			b.Run(fmt.Sprintf("%s/%s", inter, kind), func(b *testing.B) {
				sys, ids := newBenchEnv(b, kind)
				benchInteractions(b, sys, ids, tpcw.Shopping, inter)
			})
		}
	}
}

// Figure 10: response time of one batch of concurrent identical-template
// queries (one op = one whole batch, light and heavy variants).
func BenchmarkFig10_BatchResponse(b *testing.B) {
	const batch = 128
	queries := []struct {
		name string
		stmt tpcw.StmtID
		mk   func(i int) []types.Value
	}{
		{"Light", tpcw.StDoTitleSearch, func(i int) []types.Value {
			return []types.Value{types.NewString(fmt.Sprintf("Title %02d%%", i%100))}
		}},
		{"Heavy", tpcw.StGetBestSellers, func(i int) []types.Value {
			return []types.Value{types.NewInt(0), types.NewString(tpcw.Subjects()[i%24])}
		}},
	}
	for _, q := range queries {
		for _, kind := range []string{"MySQL", "SystemX", "SharedDB"} {
			b.Run(fmt.Sprintf("%s/%s", q.name, kind), func(b *testing.B) {
				sys, _ := newBenchEnv(b, kind)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var wg sync.WaitGroup
					for j := 0; j < batch; j++ {
						wg.Add(1)
						go func(j int) {
							defer wg.Done()
							if _, err := sys.Query(q.stmt, q.mk(j)...); err != nil {
								b.Error(err)
							}
						}(j)
					}
					wg.Wait()
				}
			})
		}
	}
}

// Figure 11: load interaction — one op is a mixed burst of light queries
// plus heavy queries; SharedDB should degrade least as heavies mix in.
func BenchmarkFig11_LoadInteraction(b *testing.B) {
	for _, heavies := range []int{0, 4, 16} {
		for _, kind := range []string{"SystemX", "SharedDB"} {
			b.Run(fmt.Sprintf("%dheavy/%s", heavies, kind), func(b *testing.B) {
				sys, _ := newBenchEnv(b, kind)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var wg sync.WaitGroup
					for j := 0; j < 32; j++ {
						wg.Add(1)
						go func(j int) {
							defer wg.Done()
							if _, err := sys.Query(tpcw.StDoTitleSearch,
								types.NewString(fmt.Sprintf("Title %02d%%", j))); err != nil {
								b.Error(err)
							}
						}(j)
					}
					for j := 0; j < heavies; j++ {
						wg.Add(1)
						go func(j int) {
							defer wg.Done()
							if _, err := sys.Query(tpcw.StGetBestSellers,
								types.NewInt(0), types.NewString(tpcw.Subjects()[j%24])); err != nil {
								b.Error(err)
							}
						}(j)
					}
					wg.Wait()
				}
			})
		}
	}
}

// Ablation A2 (DESIGN.md): the shared-sort trade-off of §3.5 — one sort of
// the union (f(o)) vs one sort per query (Σ f(ni)) at varying overlap.
// With high overlap the shared sort wins although n·log n is super-linear.
func BenchmarkAblation_SharedSortCrossover(b *testing.B) {
	const queries = 64
	const perQuery = 2000
	for _, overlapPct := range []int{0, 50, 100} {
		b.Run(fmt.Sprintf("overlap%d", overlapPct), func(b *testing.B) {
			// union size o: at 100% overlap every query sorts the same rows
			unionSize := perQuery + (queries-1)*perQuery*(100-overlapPct)/100
			shared := make([]int, unionSize)
			for i := range shared {
				shared[i] = (i * 7919) % 1000003
			}
			b.Run("shared", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					data := append([]int(nil), shared...)
					sort.Ints(data)
				}
			})
			b.Run("individual", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					for q := 0; q < queries; q++ {
						data := make([]int, perQuery)
						for j := range data {
							data[j] = ((j + q*perQuery) * 7919) % 1000003
						}
						sort.Ints(data)
					}
				}
			})
		})
	}
}

// Ablation A5 (DESIGN.md): heartbeat pacing — latency/throughput trade-off
// of the batch-oriented model (§3.5: "batching increases latency by a
// factor of 2" worst-case).
func BenchmarkAblation_BatchLatency(b *testing.B) {
	for _, hb := range []time.Duration{0, time.Millisecond, 5 * time.Millisecond} {
		b.Run(fmt.Sprintf("heartbeat=%s", hb), func(b *testing.B) {
			db, err := shareddb.Open(shareddb.Config{Heartbeat: hb})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			if _, err := db.Exec(`CREATE TABLE t (a INT, b VARCHAR, PRIMARY KEY (a))`); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 1000; i++ {
				if _, err := db.Exec(`INSERT INTO t VALUES (?, ?)`, int64(i), fmt.Sprintf("v%d", i)); err != nil {
					b.Fatal(err)
				}
			}
			stmt, err := db.Prepare(`SELECT b FROM t WHERE a = ?`)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := int64(0)
				for pb.Next() {
					if _, err := stmt.Query(i % 1000); err != nil {
						b.Error(err)
					}
					i++
				}
			})
		})
	}
}
