package server

import (
	"io"
	"net"
	"sync"
	"testing"

	"shareddb"
	"shareddb/internal/types"
	"shareddb/internal/wire"
)

func seedRow() []types.Value {
	return []types.Value{types.NewInt(2), types.NewString("two")}
}

// fuzzServer lazily opens one DB + Server shared by every fuzz execution
// in the process: the property under test is the connection read path, so
// the engine behind it can be shared.
var fuzzServer = struct {
	once sync.Once
	srv  *Server
}{}

func fuzzTarget(t testing.TB) *Server {
	fuzzServer.once.Do(func() {
		db, err := shareddb.Open(shareddb.Config{})
		if err != nil {
			panic(err)
		}
		if _, err := db.Exec(`CREATE TABLE fz (id INT, s VARCHAR, PRIMARY KEY (id))`); err != nil {
			panic(err)
		}
		if _, err := db.Exec(`INSERT INTO fz VALUES (?, ?)`, 1, "one"); err != nil {
			panic(err)
		}
		fuzzServer.srv = New(db, Options{Window: 4, Logf: func(string, ...interface{}) {}})
	})
	return fuzzServer.srv
}

// serverSeeds returns valid and near-valid byte streams so the fuzzer
// starts from frames that exercise deep dispatch paths, not just the
// length-prefix check.
func serverSeeds() [][]byte {
	hello := wire.Hello{Version: wire.Version, Window: 4}.Append(nil)
	withHello := func(rest []byte) []byte { return append(append([]byte(nil), hello...), rest...) }
	return [][]byte{
		hello,
		withHello(wire.AppendEmpty(nil, wire.TQuit)),
		withHello(wire.Simple{ID: 1}.Append(nil, wire.TPing)),
		withHello(wire.Simple{ID: 2}.Append(nil, wire.TStats)),
		withHello(wire.Prepare{ID: 3, SQL: "SELECT id, s FROM fz WHERE id = ?"}.Append(nil)),
		withHello(wire.SQLCall{ID: 4, SQL: "SELECT id FROM fz"}.Append(nil, wire.TQuerySQL)),
		withHello(wire.SQLCall{ID: 5, SQL: "INSERT INTO fz VALUES (?, ?)", Params: seedRow()}.Append(nil, wire.TExecSQL)),
		withHello(wire.StmtCall{ID: 6, Stmt: 999, Params: seedRow()}.Append(nil, wire.TQuery)),
		withHello(wire.Ref{ID: 7, Ref: 999}.Append(nil, wire.TUnsubscribe)),
		withHello(wire.Ref{ID: 8, Ref: 1}.Append(nil, wire.TCloseStmt)),
		withHello([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF}),
		{0x00, 0x00, 0x00, 0x00},
		{0xde, 0xad, 0xbe, 0xef},
	}
}

// FuzzServerBytes feeds arbitrary byte streams to a live connection: the
// server must never panic and must always release the connection (the
// reader returning closes it). net.Pipe is synchronous, so a drain
// goroutine consumes whatever the server writes back.
func FuzzServerBytes(f *testing.F) {
	for _, seed := range serverSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		srv := fuzzTarget(t)
		cli, srvEnd := net.Pipe()
		srv.ServeConn(srvEnd)
		done := make(chan struct{})
		go func() {
			defer close(done)
			io.Copy(io.Discard, cli) // unblock the server's flusher
		}()
		cli.Write(data) // error (server closed early) is a valid outcome
		cli.Close()
		<-done
	})
}
