package server

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"shareddb"
	"shareddb/client"
	"shareddb/internal/types"
	"shareddb/internal/wire"
)

// startServer opens a DB, seeds it through cb, and serves it on loopback.
func startServer(t *testing.T, cfg shareddb.Config, opts Options, seed func(db *shareddb.DB)) (addr string, db *shareddb.DB) {
	t.Helper()
	db, err := shareddb.Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	if seed != nil {
		seed(db)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := New(db, opts)
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String(), db
}

func seedItems(n int) func(db *shareddb.DB) {
	return func(db *shareddb.DB) {
		mustExec(db, `CREATE TABLE item (i_id INT, i_title VARCHAR, i_stock INT, PRIMARY KEY (i_id))`)
		for i := 0; i < n; i++ {
			mustExec(db, `INSERT INTO item VALUES (?, ?, ?)`, i, fmt.Sprintf("Title %02d", i%10), 10+i)
		}
	}
}

func mustExec(db *shareddb.DB, sqlText string, args ...interface{}) {
	if _, err := db.Exec(sqlText, args...); err != nil {
		panic(fmt.Sprintf("seed %q: %v", sqlText, err))
	}
}

// TestPipelinedDifferential pins the protocol's core correctness claim:
// N queries pipelined on ONE connection return bit-identical rows to the
// same N queries issued over N sequential, separate connections. Out-of-
// order completion, window scheduling and fold fan-out must never change
// what any individual caller sees.
func TestPipelinedDifferential(t *testing.T) {
	addr, _ := startServer(t,
		shareddb.Config{FoldQueries: true, MaxInFlightGenerations: 1},
		Options{Window: 8}, seedItems(40))

	const q = `SELECT i_id, i_title, i_stock FROM item WHERE i_title LIKE ?`
	params := make([]string, 24)
	for i := range params {
		params[i] = fmt.Sprintf("Title %02d%%", i%6)
	}

	// Pipelined: one connection, all queries in flight concurrently.
	db, err := client.OpenConfig(client.Config{Addr: addr, Window: 8})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer db.Close()
	stmt, err := db.Prepare(q)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	pipelined := make([][]types.Row, len(params))
	var wg sync.WaitGroup
	errs := make([]error, len(params))
	for i, p := range params {
		wg.Add(1)
		go func(i int, p string) {
			defer wg.Done()
			rows, err := stmt.Query(p)
			if err != nil {
				errs[i] = err
				return
			}
			pipelined[i] = rows.All()
			errs[i] = rows.Err()
		}(i, p)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("pipelined query %d: %v", i, err)
		}
	}

	// Sequential: a fresh connection per query.
	for i, p := range params {
		one, err := client.Open(addr)
		if err != nil {
			t.Fatalf("sequential open %d: %v", i, err)
		}
		rows, err := one.Query(q, p)
		if err != nil {
			one.Close()
			t.Fatalf("sequential query %d: %v", i, err)
		}
		got := rows.All()
		if err := rows.Err(); err != nil {
			one.Close()
			t.Fatalf("sequential rows %d: %v", i, err)
		}
		one.Close()
		if !reflect.DeepEqual(got, pipelined[i]) {
			t.Fatalf("query %d (%q): pipelined and sequential results differ\npipelined: %v\nsequential: %v",
				i, p, pipelined[i], got)
		}
	}
}

// TestSameGenerationFold pins the fan-in payoff: a full pipeline window
// of IDENTICAL queries on one connection lands in the same pending queue
// and folds into one engine activation (FoldedQueries advances). The
// serial pipeline + heartbeat give duplicates time to accumulate, the
// same configuration the in-process folding benchmark uses.
func TestSameGenerationFold(t *testing.T) {
	const window = 16
	addr, sdb := startServer(t,
		shareddb.Config{FoldQueries: true, MaxInFlightGenerations: 1, Heartbeat: 2 * time.Millisecond},
		Options{Window: window}, seedItems(40))

	db, err := client.OpenConfig(client.Config{Addr: addr, Window: window})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer db.Close()
	stmt, err := db.Prepare(`SELECT i_id FROM item WHERE i_title LIKE ?`)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}

	before := sdb.Stats()
	var wg sync.WaitGroup
	for round := 0; round < 4; round++ {
		for i := 0; i < window; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				rows, err := stmt.Query("Title 03%")
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				rows.All()
				if err := rows.Err(); err != nil {
					t.Errorf("rows: %v", err)
				}
			}()
		}
		wg.Wait()
	}
	after := sdb.Stats()
	if folded := after.FoldedQueries - before.FoldedQueries; folded == 0 {
		t.Fatalf("no queries folded across 4 windows of %d identical pipelined queries (stats: %+v)", window, after)
	}

	// The client-visible Stats mirror must agree with the engine's.
	cst, err := db.Stats()
	if err != nil {
		t.Fatalf("client stats: %v", err)
	}
	if cst.FoldedQueries != sdb.Stats().FoldedQueries {
		t.Fatalf("client FoldedQueries %d != engine %d", cst.FoldedQueries, sdb.Stats().FoldedQueries)
	}
	if cst.FoldHitRate() <= 0 {
		t.Fatalf("client FoldHitRate = %v, want > 0", cst.FoldHitRate())
	}
}

// TestMalformedInput throws protocol garbage at a live server: every case
// must end with the connection closed (an ERR frame is allowed first) and
// the server still serving new connections afterwards. No recover() exists
// in the read path, so a panic would fail the whole test binary.
func TestMalformedInput(t *testing.T) {
	addr, _ := startServer(t, shareddb.Config{}, Options{}, seedItems(4))

	oversized := make([]byte, 4)
	binary.LittleEndian.PutUint32(oversized, wire.MaxFrame+1)
	cases := map[string][]byte{
		"raw garbage":         {0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03},
		"zero length frame":   {0, 0, 0, 0},
		"oversized frame":     oversized,
		"bad first frame":     wire.Simple{ID: 1}.Append(nil, wire.TPing),
		"bogus frame type":    {2, 0, 0, 0, 0x7F, 0x00},
		"truncated hello":     wire.Hello{Version: wire.Version, Window: 4}.Append(nil)[:5],
		"trailing payload":    append(wire.Hello{Version: wire.Version, Window: 4}.Append(nil), 9, 0, 0, 0, byte(wire.TPing), 1, 0xFF, 0xFF, 0xFF, 0xFF),
		"server-only frame":   append(wire.Hello{Version: wire.Version, Window: 4}.Append(nil), wire.ExecOK{ID: 1}.Append(nil)...),
		"wrong hello version": wire.Hello{Version: 99, Window: 4}.Append(nil),
	}
	for name, payload := range cases {
		t.Run(name, func(t *testing.T) {
			nc, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatalf("dial: %v", err)
			}
			defer nc.Close()
			if _, err := nc.Write(payload); err != nil {
				t.Fatalf("write: %v", err)
			}
			// The server must close the connection (after at most one ERR
			// frame): reads terminate rather than hang.
			nc.SetReadDeadline(time.Now().Add(5 * time.Second))
			buf := make([]byte, 1<<16)
			for {
				if _, err := nc.Read(buf); err != nil {
					break
				}
			}
		})
	}

	// The server survived all of it.
	db, err := client.Open(addr)
	if err != nil {
		t.Fatalf("server unusable after malformed input: %v", err)
	}
	defer db.Close()
	if err := db.Ping(context.Background()); err != nil {
		t.Fatalf("ping after malformed input: %v", err)
	}
}

// TestSubscribePush drives the standing-query path end to end: SUB_OK,
// the initial full result, then a delta after a write.
func TestSubscribePush(t *testing.T) {
	addr, _ := startServer(t, shareddb.Config{}, Options{}, seedItems(4))

	db, err := client.Open(addr)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer db.Close()
	stmt, err := db.Prepare(`SELECT i_id FROM item WHERE i_stock > ?`)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sub, err := db.Subscribe(ctx, stmt, 11)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	defer sub.Close()

	waitUpdate := func(what string) client.SubscriptionUpdate {
		t.Helper()
		select {
		case u, ok := <-sub.Updates():
			if !ok {
				t.Fatalf("updates channel closed waiting for %s", what)
			}
			return u
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out waiting for %s", what)
		}
		panic("unreachable")
	}

	first := waitUpdate("initial full result")
	if !first.Full {
		t.Fatalf("first update not full: %+v", first)
	}
	if len(first.Rows) != 2 { // stock values 12, 13 exceed 11
		t.Fatalf("initial result has %d rows, want 2: %+v", len(first.Rows), first.Rows)
	}
	if _, err := db.Exec(`INSERT INTO item VALUES (?, ?, ?)`, 100, "Title 99", 50); err != nil {
		t.Fatalf("insert: %v", err)
	}
	delta := waitUpdate("insert delta")
	if delta.Full || len(delta.Added) != 1 {
		t.Fatalf("unexpected delta after insert: %+v", delta)
	}
}

// TestTextProtocolStillServes keeps the legacy line protocol working
// behind Options.TextProtocol for its final release.
func TestTextProtocolStillServes(t *testing.T) {
	addr, _ := startServer(t, shareddb.Config{}, Options{TextProtocol: true}, seedItems(3))

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	rd := bufio.NewReader(nc)
	send := func(line string) {
		if _, err := fmt.Fprintf(nc, "%s\n", line); err != nil {
			t.Fatalf("send %q: %v", line, err)
		}
	}
	expectPrefix := func(prefix string) string {
		t.Helper()
		nc.SetReadDeadline(time.Now().Add(10 * time.Second))
		for {
			line, err := rd.ReadString('\n')
			if err != nil {
				t.Fatalf("waiting for %q: %v", prefix, err)
			}
			line = strings.TrimRight(line, "\n")
			if strings.HasPrefix(line, prefix) {
				return line
			}
		}
	}
	send(`SELECT i_id, i_title FROM item`)
	expectPrefix("OK 3 rows")
	send("STATS")
	expectPrefix("OK")
	send("QUIT")
	expectPrefix("BYE")
}

// TestQuitHandshake pins the orderly close: QUIT answers BYE and the
// server closes the connection after flushing it.
func TestQuitHandshake(t *testing.T) {
	addr, _ := startServer(t, shareddb.Config{}, Options{}, nil)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	if _, err := nc.Write(wire.Hello{Version: wire.Version, Window: 4}.Append(nil)); err != nil {
		t.Fatalf("hello: %v", err)
	}
	typ, _, buf, err := wire.ReadFrame(nc, nil)
	if err != nil || typ != wire.THelloOK {
		t.Fatalf("handshake: type %v err %v", typ, err)
	}
	if _, err := nc.Write(wire.AppendEmpty(nil, wire.TQuit)); err != nil {
		t.Fatalf("quit: %v", err)
	}
	typ, _, buf, err = wire.ReadFrame(nc, buf)
	if err != nil || typ != wire.TBye {
		t.Fatalf("quit reply: type %v err %v", typ, err)
	}
	if _, _, _, err := wire.ReadFrame(nc, buf); err == nil {
		t.Fatal("connection still open after BYE")
	}
}
