package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"shareddb"
	"shareddb/internal/core"
	"shareddb/internal/plan"
	"shareddb/internal/sql"
	"shareddb/internal/types"
	"shareddb/internal/wire"
)

// conn is one binary-protocol session.
//
// Concurrency shape: the reader goroutine owns all dispatch and the
// handle/subscription tables below; waiter and pusher goroutines only
// touch the engine result they wait on and the outbox. The sole
// reader-vs-waiter shared state is the window semaphore.
type conn struct {
	srv *Server
	nc  net.Conn
	out *outbox

	// sem is the in-flight window: acquired by the reader before each
	// QUERY/EXEC submission, released by the waiter after the terminal
	// frame is enqueued. A full window parks the reader — TCP back-
	// pressure is the flow control.
	sem chan struct{}

	// Reader-owned session state (no locks).
	stmts    map[uint64]*plan.Statement
	nextStmt uint64
	subs     map[uint64]*core.Subscription
	nextSub  uint64
}

func newConn(s *Server, nc net.Conn) *conn {
	return &conn{
		srv:   s,
		nc:    nc,
		out:   newOutbox(nc),
		sem:   make(chan struct{}, s.opts.Window),
		stmts: map[uint64]*plan.Statement{},
		subs:  map[uint64]*core.Subscription{},
	}
}

// readLoop is the connection's lifetime: handshake, then frame dispatch
// until the peer goes away, misbehaves, or says QUIT. Malformed input is
// answered with a BAD_REQUEST error frame and the connection is closed —
// deliberately without any recover(): the fuzz suite's no-panic property
// is only meaningful if a panic would actually crash the test.
func (c *conn) readLoop() {
	defer c.teardown()

	var buf []byte
	typ, payload, buf, err := wire.ReadFrame(c.nc, buf)
	if err != nil {
		c.protocolError(0, err)
		return
	}
	if typ != wire.THello {
		c.protocolError(0, fmt.Errorf("first frame must be HELLO, got %v", typ))
		return
	}
	hello, err := wire.DecodeHello(payload)
	if err != nil {
		c.protocolError(0, err)
		return
	}
	if hello.Version != wire.Version {
		c.out.send(wire.Error{Code: wire.CodeVersion,
			Msg: fmt.Sprintf("protocol version %d not supported (server speaks %d)", hello.Version, wire.Version)}.Append(nil))
		c.out.closeWhenDrained()
		return
	}
	c.out.send(wire.HelloOK{Version: wire.Version, Window: uint64(c.srv.opts.Window)}.Append(nil))

	for {
		typ, payload, buf, err = wire.ReadFrame(c.nc, buf)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				c.protocolError(0, err)
			}
			return
		}
		if !c.dispatch(typ, payload) {
			return
		}
	}
}

// dispatch handles one frame; false ends the session.
func (c *conn) dispatch(typ wire.Type, payload []byte) bool {
	switch typ {
	case wire.TPrepare:
		m, err := wire.DecodePrepare(payload)
		if err != nil {
			c.protocolError(0, err)
			return false
		}
		c.handlePrepare(m)
	case wire.TQuery, wire.TExec:
		m, err := wire.DecodeStmtCall(payload)
		if err != nil {
			c.protocolError(0, err)
			return false
		}
		c.handleStmtCall(m, typ == wire.TQuery)
	case wire.TQuerySQL, wire.TExecSQL:
		m, err := wire.DecodeSQLCall(payload)
		if err != nil {
			c.protocolError(0, err)
			return false
		}
		c.handleSQLCall(m, typ == wire.TQuerySQL)
	case wire.TCloseStmt:
		m, err := wire.DecodeRef(payload)
		if err != nil {
			c.protocolError(0, err)
			return false
		}
		// Handles are session-local names for registry statements; closing
		// forgets the name (the registry keeps the statement — it is shared).
		delete(c.stmts, m.Ref)
	case wire.TSubscribe:
		m, err := wire.DecodeSQLCall(payload)
		if err != nil {
			c.protocolError(0, err)
			return false
		}
		c.handleSubscribe(m)
	case wire.TUnsubscribe:
		m, err := wire.DecodeRef(payload)
		if err != nil {
			c.protocolError(0, err)
			return false
		}
		sub, ok := c.subs[m.Ref]
		if !ok {
			c.out.send(wire.Error{ID: m.ID, Code: wire.CodeUnknownSub,
				Msg: fmt.Sprintf("no subscription %d", m.Ref)}.Append(nil))
			return true
		}
		sub.Close()
		delete(c.subs, m.Ref)
		c.out.send(wire.ExecOK{ID: m.ID}.Append(nil))
	case wire.TStats:
		m, err := wire.DecodeSimple(payload)
		if err != nil {
			c.protocolError(0, err)
			return false
		}
		c.out.send(statsFrame(m.ID, c.srv.db.Stats()))
	case wire.TPing:
		m, err := wire.DecodeSimple(payload)
		if err != nil {
			c.protocolError(0, err)
			return false
		}
		c.out.send(wire.Simple{ID: m.ID}.Append(nil, wire.TPong))
	case wire.TQuit:
		if err := wire.DecodeEmpty(payload); err != nil {
			c.protocolError(0, err)
			return false
		}
		c.out.send(wire.AppendEmpty(nil, wire.TBye))
		c.out.closeWhenDrained()
		return false
	default:
		c.protocolError(0, fmt.Errorf("unexpected frame %v", typ))
		return false
	}
	return true
}

func (c *conn) handlePrepare(m wire.Prepare) {
	st, err := c.srv.prepare(m.SQL)
	if err != nil {
		c.fail(m.ID, err)
		return
	}
	c.nextStmt++
	h := c.nextStmt
	c.stmts[h] = st
	c.out.send(wire.PrepareOK{ID: m.ID, Stmt: h, NumParams: uint64(st.NumParams),
		IsWrite: st.IsWrite(), Columns: schemaColumns(st.OutSchema)}.Append(nil))
}

// handleStmtCall is the pipelined hot path: resolve the handle, submit
// asynchronously, hand the pending result to a waiter goroutine, and go
// straight back to reading. A window of identical queries is therefore
// pending in the engine simultaneously — which is what lets the fold index
// collapse them into one activation.
func (c *conn) handleStmtCall(m wire.StmtCall, isQuery bool) {
	st, ok := c.stmts[m.Stmt]
	if !ok {
		c.out.send(wire.Error{ID: m.ID, Code: wire.CodeUnknownStmt,
			Msg: fmt.Sprintf("no prepared statement %d", m.Stmt)}.Append(nil))
		return
	}
	c.submit(m.ID, st, m.Params, isQuery)
}

// handleSQLCall is the ad-hoc path: DDL applies synchronously (it is not
// generation-scheduled), everything else resolves through the registry and
// submits like a handle call.
func (c *conn) handleSQLCall(m wire.SQLCall, isQuery bool) {
	if !isQuery {
		ast, err := sql.Parse(m.SQL)
		if err != nil {
			c.fail(m.ID, err)
			return
		}
		switch ast.(type) {
		case *sql.CreateTableStmt, *sql.CreateIndexStmt:
			if _, err := c.srv.db.Exec(m.SQL); err != nil {
				c.fail(m.ID, err)
				return
			}
			c.out.send(wire.ExecOK{ID: m.ID}.Append(nil))
			return
		}
	}
	st, err := c.srv.prepare(m.SQL)
	if err != nil {
		c.fail(m.ID, err)
		return
	}
	c.submit(m.ID, st, m.Params, isQuery)
}

func (c *conn) submit(id uint64, st *plan.Statement, params []types.Value, isQuery bool) {
	if isQuery && st.IsWrite() {
		c.out.send(wire.Error{ID: id, Code: wire.CodeBadRequest,
			Msg: "QUERY on a write statement"}.Append(nil))
		return
	}
	if len(params) != st.NumParams {
		c.out.send(wire.Error{ID: id, Code: wire.CodeBadRequest,
			Msg: fmt.Sprintf("statement wants %d params, got %d", st.NumParams, len(params))}.Append(nil))
		return
	}
	c.sem <- struct{}{} // acquire window slot; parks the reader when full
	res := c.srv.exec.Submit(st, params)
	c.srv.wg.Add(1)
	go func() {
		defer c.srv.wg.Done()
		defer func() { <-c.sem }()
		c.await(id, res, isQuery)
	}()
}

// await is the waiter: it blocks on the engine result and enqueues the
// response frames. Waiters finish in engine-completion order, not request
// order — that is the protocol's out-of-order completion.
func (c *conn) await(id uint64, res *core.Result, isQuery bool) {
	if err := res.Wait(); err != nil {
		c.fail(id, err)
		return
	}
	if !isQuery {
		c.out.send(wire.ExecOK{ID: id, RowsAffected: uint64(res.RowsAffected)}.Append(nil))
		return
	}
	// Stream the cursor. Header, batches and the terminal frame are
	// encoded into one buffer and enqueued as a unit, so frames from
	// concurrent waiters never interleave inside a response.
	per := c.srv.opts.RowsPerBatch
	frames := wire.RowsHeader{ID: id, Columns: schemaColumns(res.Schema)}.Append(nil)
	for off := 0; off < len(res.Rows); off += per {
		end := off + per
		if end > len(res.Rows) {
			end = len(res.Rows)
		}
		frames = wire.RowBatch{ID: id, Rows: res.Rows[off:end]}.Append(frames)
	}
	frames = wire.RowsDone{ID: id, Total: uint64(len(res.Rows))}.Append(frames)
	c.out.send(frames)
}

func (c *conn) handleSubscribe(m wire.SQLCall) {
	st, err := c.srv.prepare(m.SQL)
	if err != nil {
		c.fail(m.ID, err)
		return
	}
	sub, err := c.srv.exec.Subscribe(st, m.Params)
	if err != nil {
		c.fail(m.ID, err)
		return
	}
	c.nextSub++
	id := c.nextSub
	c.subs[id] = sub
	c.out.send(wire.SubOK{ID: m.ID, Sub: id}.Append(nil))
	c.srv.wg.Add(1)
	go func() {
		defer c.srv.wg.Done()
		for u := range sub.Updates() {
			c.out.send(wire.SubPush{Sub: id, Gen: u.Gen, Full: u.Full,
				Rows: u.Rows, Added: u.Added, Removed: u.Removed}.Append(nil))
		}
	}()
}

// fail translates an engine error: admission rejections become BUSY frames
// carrying the RetryAfter hint, everything else an INTERNAL error frame.
func (c *conn) fail(id uint64, err error) {
	var oe *shareddb.OverloadError
	if errors.As(err, &oe) {
		retry := oe.RetryAfter
		if retry <= 0 {
			retry = 1
		}
		c.out.send(wire.Busy{ID: id, RetryAfterNs: uint64(retry), Reason: oe.Reason}.Append(nil))
		return
	}
	c.out.send(wire.Error{ID: id, Code: wire.CodeInternal, Msg: err.Error()}.Append(nil))
}

// protocolError reports malformed input and ends the session.
func (c *conn) protocolError(id uint64, err error) {
	c.out.send(wire.Error{ID: id, Code: wire.CodeBadRequest, Msg: err.Error()}.Append(nil))
	c.out.closeWhenDrained()
}

// teardown closes the session's standing queries and the socket. Waiters
// still in flight drain into the dead outbox harmlessly.
func (c *conn) teardown() {
	for _, sub := range c.subs {
		sub.Close()
	}
	c.out.closeWhenDrained()
}

func schemaColumns(s *types.Schema) []string {
	if s == nil {
		return nil
	}
	out := make([]string, s.Len())
	for i, col := range s.Cols {
		out[i] = col.Name
	}
	return out
}

// statsFrame renders the engine counter snapshot. Names are the wire
// contract (clients match by name; unknown names are ignored), mirroring
// the text protocol's STATS rows minus the derived rate — clients compute
// FoldHitRate from the counters.
func statsFrame(id uint64, st shareddb.Stats) []byte {
	return wire.StatsOK{ID: id, Fields: []wire.StatField{
		{Name: "generations", Value: st.Generations},
		{Name: "queries_run", Value: st.QueriesRun},
		{Name: "writes_applied", Value: st.WritesApplied},
		{Name: "folded_queries", Value: st.FoldedQueries},
		{Name: "subsumed_queries", Value: st.SubsumedQueries},
		{Name: "in_flight_generations", Value: uint64(st.InFlightGenerations)},
		{Name: "queue_depth", Value: uint64(st.QueueDepth)},
		{Name: "shed", Value: st.Shed},
		{Name: "rejected", Value: st.Rejected},
		{Name: "breaker_trips", Value: st.BreakerTrips},
		{Name: "subscriptions_active", Value: uint64(st.SubscriptionsActive)},
		{Name: "subscription_updates", Value: st.SubscriptionUpdates},
	}}.Append(nil)
}

// outbox is the connection's coalescing write path. Senders append
// complete frames under the lock; the first sender finding no flusher
// running starts one. While a flush syscall is in flight every other
// completion lands in the pending buffer and ships in the next syscall —
// under fan-in load, response writes amortize across completions instead
// of costing one syscall each.
type outbox struct {
	nc net.Conn

	mu       sync.Mutex
	queue    []byte
	spare    []byte // recycled flush buffer
	flushing bool
	closing  bool // close nc once the queue drains
	err      error
}

func newOutbox(nc net.Conn) *outbox { return &outbox{nc: nc} }

// send enqueues one or more complete frames for writing.
func (o *outbox) send(frames []byte) {
	o.mu.Lock()
	if o.err != nil || o.closing {
		o.mu.Unlock()
		return
	}
	o.queue = append(o.queue, frames...)
	if !o.flushing {
		o.flushing = true
		go o.flushLoop()
	}
	o.mu.Unlock()
}

// closeWhenDrained closes the socket after everything already enqueued has
// been written (or immediately when the outbox is idle or dead). Frames
// sent after this are dropped.
func (o *outbox) closeWhenDrained() {
	o.mu.Lock()
	if o.closing {
		o.mu.Unlock()
		return
	}
	o.closing = true
	idle := !o.flushing
	o.mu.Unlock()
	if idle {
		o.nc.Close()
	}
}

func (o *outbox) flushLoop() {
	for {
		o.mu.Lock()
		if len(o.queue) == 0 || o.err != nil {
			closing := o.closing
			o.flushing = false
			o.mu.Unlock()
			if closing {
				o.nc.Close()
			}
			return
		}
		buf := o.queue
		o.queue = o.spare[:0]
		o.mu.Unlock()

		_, err := o.nc.Write(buf)

		o.mu.Lock()
		o.spare = buf[:0]
		if err != nil && o.err == nil {
			o.err = err
			o.queue = nil
		}
		o.mu.Unlock()
		if err != nil {
			// The peer is gone; unblock the reader too.
			o.nc.Close()
		}
	}
}
