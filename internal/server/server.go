// Package server is SharedDB's network front end: it serves the binary
// wire protocol (internal/wire) over a listener, translating frames into
// engine submissions.
//
// The design goal is massive fan-in — the paper's thousand concurrent
// queries arriving over a thousand sockets:
//
//   - Each connection costs one parked reader goroutine while idle (the
//     runtime netpoller holds the socket; no per-connection write or timer
//     goroutines exist until there is work to do).
//   - The reader dispatches QUERY/EXEC frames straight into the engine's
//     asynchronous Submit without waiting for results, bounded by a
//     per-connection in-flight window. A full pipeline window therefore
//     lands in the same pending queue — and with Config.FoldQueries,
//     identical queries from one window (or a thousand windows) collapse
//     into one activation.
//   - Completions are written by short-lived waiter goroutines through a
//     coalescing outbox: while one flush syscall is in flight, every other
//     completion appends to the pending buffer and ships in the next
//     syscall, so response writes amortize exactly like the engine's
//     shared execution amortizes query work.
//   - Prepared statements live in a server-wide registry keyed by SQL
//     text. Statement registration quiesces the generation pipeline, so a
//     thousand clients preparing the same statement must pay that cost
//     once, not a thousand times.
//
// The legacy line protocol remains available behind Options.TextProtocol
// for one release (see text.go and the README migration notes).
package server

import (
	"log"
	"net"
	"sync"

	"shareddb"
	"shareddb/internal/core"
	"shareddb/internal/plan"
)

// Options tunes the front end.
type Options struct {
	// Window is the per-connection in-flight request window: how many
	// QUERY/EXEC frames one connection may have submitted without a
	// terminal response. The reader stops reading when the window is
	// full, back-pressuring the peer through TCP. 0 selects 64.
	Window int
	// RowsPerBatch caps rows per ROW_BATCH frame in streamed results.
	// 0 selects 256.
	RowsPerBatch int
	// TextProtocol serves the legacy line protocol instead of the binary
	// one (kept for one release; see README migration notes).
	TextProtocol bool
	// Logf receives accept-loop diagnostics; nil uses log.Printf.
	Logf func(format string, args ...interface{})
}

const (
	// DefaultWindow is the per-connection in-flight window when
	// Options.Window is zero.
	DefaultWindow = 64
	// DefaultRowsPerBatch is the streamed-cursor batch size when
	// Options.RowsPerBatch is zero.
	DefaultRowsPerBatch = 256
)

// Server serves one DB over one or more listeners.
type Server struct {
	db   *shareddb.DB
	exec core.Executor
	opts Options

	mu     sync.Mutex
	stmts  map[string]*plan.Statement // shared registry, keyed by SQL text
	conns  map[*conn]struct{}
	lns    map[net.Listener]struct{}
	closed bool

	wg sync.WaitGroup // readers, waiters, pushers, flushers
}

// New builds a Server around an open DB. The caller keeps ownership of the
// DB: Close stops serving but does not close the database.
func New(db *shareddb.DB, opts Options) *Server {
	if opts.Window <= 0 {
		opts.Window = DefaultWindow
	}
	if opts.RowsPerBatch <= 0 {
		opts.RowsPerBatch = DefaultRowsPerBatch
	}
	if opts.Logf == nil {
		opts.Logf = log.Printf
	}
	return &Server{
		db:    db,
		exec:  db.Engine(),
		opts:  opts,
		stmts: map[string]*plan.Statement{},
		conns: map[*conn]struct{}{},
		lns:   map[net.Listener]struct{}{},
	}
}

// Serve accepts connections on ln until the listener fails or the server
// closes. It blocks; run it in a goroutine to serve multiple listeners.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	s.lns[ln] = struct{}{}
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			delete(s.lns, ln)
			s.mu.Unlock()
			if closed {
				return net.ErrClosed
			}
			return err
		}
		s.ServeConn(nc)
	}
}

// ServeConn adopts one established connection (tests drive net.Pipe ends
// through here). It returns immediately; the connection is served by its
// reader goroutine.
func (s *Server) ServeConn(nc net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		nc.Close()
		return
	}
	if s.opts.TextProtocol {
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			serveText(s.db, nc)
		}()
		return
	}
	c := newConn(s, nc)
	s.conns[c] = struct{}{}
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		c.readLoop()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()
}

// Close stops accepting, closes every live connection and waits for all
// connection goroutines to drain. The DB stays open.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	for ln := range s.lns {
		ln.Close()
	}
	for c := range s.conns {
		c.nc.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// prepare resolves SQL text to a shared statement handle, registering it at
// most once server-wide. Registration quiesces the generation pipeline, so
// the registry is what keeps a thousand clients preparing the same
// statement from stalling the engine a thousand times. The breaker peek
// (AdmitStatement) runs before registration exactly like the in-process
// ad-hoc path.
func (s *Server) prepare(sqlText string) (*plan.Statement, error) {
	s.mu.Lock()
	st, ok := s.stmts[sqlText]
	s.mu.Unlock()
	if ok {
		return st, nil
	}
	if err := s.exec.AdmitStatement(sqlText); err != nil {
		return nil, err
	}
	st, err := s.exec.Prepare(sqlText)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	// Two racers both prepared: keep the first registration (both handles
	// are valid; keeping one makes handle identity stable).
	if prior, ok := s.stmts[sqlText]; ok {
		st = prior
	} else {
		s.stmts[sqlText] = st
	}
	s.mu.Unlock()
	return st, nil
}
