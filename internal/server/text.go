// The legacy line protocol (one SQL statement per line, tab-separated
// rows, "OK <n rows>" / "ERR <message>" / "BUSY <retry-ms> <reason>"
// terminators, SUB/UNSUB push frames prefixed "!"), kept behind
// Options.TextProtocol for one release so existing clients can migrate to
// the binary protocol on their own schedule. See the README's migration
// notes; this path re-parses every statement and cannot pipeline, so none
// of the fan-in properties of conn.go apply here.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"

	"shareddb"
	"shareddb/internal/types"
)

// textConn is one line-protocol client: its buffered writer (shared
// between the serve loop and subscription pusher goroutines, so every
// complete frame is written under mu) and its open standing queries.
type textConn struct {
	mu     sync.Mutex
	w      *bufio.Writer
	subs   map[uint64]*shareddb.Subscription
	nextID uint64
}

func serveText(db *shareddb.DB, conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	cs := &textConn{w: bufio.NewWriter(conn), subs: map[uint64]*shareddb.Subscription{}}
	defer func() {
		cs.mu.Lock()
		for _, sub := range cs.subs {
			sub.Close()
		}
		cs.w.Flush()
		cs.mu.Unlock()
	}()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		upper := strings.ToUpper(line)
		cs.mu.Lock()
		w := cs.w
		switch {
		case upper == "QUIT" || upper == "EXIT":
			fmt.Fprintln(w, "BYE")
			w.Flush()
			cs.mu.Unlock()
			return
		case upper == "EXPLAIN PLAN":
			fmt.Fprint(w, db.DescribePlan())
			fmt.Fprintln(w, "OK")
		case upper == "STATS":
			writeTextStats(w, db.Stats())
		case strings.HasPrefix(upper, "SUB "):
			textSubscribe(db, cs, strings.TrimSpace(line[4:]))
		case strings.HasPrefix(upper, "UNSUB "):
			textUnsubscribe(cs, strings.TrimSpace(line[6:]))
		default:
			textExecute(db, w, line)
		}
		w.Flush()
		cs.mu.Unlock()
	}
}

// textSubscribe answers the SUB verb. Caller holds cs.mu.
func textSubscribe(db *shareddb.DB, cs *textConn, sqlText string) {
	stmt, err := db.Prepare(sqlText)
	if err != nil {
		textFail(cs.w, err)
		return
	}
	sub, err := db.Subscribe(context.Background(), stmt)
	if err != nil {
		textFail(cs.w, err)
		return
	}
	cs.nextID++
	id := cs.nextID
	cs.subs[id] = sub
	fmt.Fprintf(cs.w, "OK SUB %d\n", id)
	go pushTextUpdates(cs, id, sub)
}

// textUnsubscribe answers the UNSUB verb. Caller holds cs.mu.
func textUnsubscribe(cs *textConn, arg string) {
	id, err := strconv.ParseUint(arg, 10, 64)
	if err != nil {
		fmt.Fprintf(cs.w, "ERR bad subscription id %q\n", arg)
		return
	}
	sub, ok := cs.subs[id]
	if !ok {
		fmt.Fprintf(cs.w, "ERR no subscription %d\n", id)
		return
	}
	sub.Close()
	delete(cs.subs, id)
	fmt.Fprintf(cs.w, "OK UNSUB %d\n", id)
}

// pushTextUpdates streams one subscription's updates as asynchronous
// "!SUB" frames; it exits when the subscription closes (UNSUB, connection
// end or database shutdown).
func pushTextUpdates(cs *textConn, id uint64, sub *shareddb.Subscription) {
	for u := range sub.Updates() {
		cs.mu.Lock()
		if u.Full {
			fmt.Fprintf(cs.w, "!SUB %d %d FULL %d\n", id, u.Gen, len(u.Rows))
			for _, row := range u.Rows {
				fmt.Fprintln(cs.w, rowCells(row))
			}
		} else {
			fmt.Fprintf(cs.w, "!SUB %d %d DELTA %d %d\n", id, u.Gen, len(u.Added), len(u.Removed))
			for _, row := range u.Added {
				fmt.Fprintf(cs.w, "+%s\n", rowCells(row))
			}
			for _, row := range u.Removed {
				fmt.Fprintf(cs.w, "-%s\n", rowCells(row))
			}
		}
		cs.w.Flush()
		cs.mu.Unlock()
	}
}

func rowCells(row types.Row) string {
	cells := make([]string, len(row))
	for i, v := range row {
		cells[i] = v.String()
	}
	return strings.Join(cells, "\t")
}

// writeTextStats answers the STATS verb: one "name<TAB>value" line per
// counter, terminated like a result set so existing clients can parse it.
func writeTextStats(w *bufio.Writer, st shareddb.Stats) {
	rows := []struct {
		name  string
		value interface{}
	}{
		{"generations", st.Generations},
		{"queries_run", st.QueriesRun},
		{"writes_applied", st.WritesApplied},
		{"folded_queries", st.FoldedQueries},
		{"subsumed_queries", st.SubsumedQueries},
		{"fold_hit_rate", fmt.Sprintf("%.4f", st.FoldHitRate())},
		{"in_flight_generations", st.InFlightGenerations},
		{"queue_depth", st.QueueDepth},
		{"shed", st.Shed},
		{"rejected", st.Rejected},
		{"breaker_trips", st.BreakerTrips},
		{"subscriptions_active", st.SubscriptionsActive},
		{"subscription_updates", st.SubscriptionUpdates},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%v\n", r.name, r.value)
	}
	fmt.Fprintf(w, "OK %d rows\n", len(rows))
}

// textFail writes the error response: "BUSY <retry-ms> <reason>" for
// admission rejections (backpressure — the client should wait and
// resubmit), "ERR <message>" for everything else.
func textFail(w *bufio.Writer, err error) {
	var oe *shareddb.OverloadError
	if errors.As(err, &oe) {
		retry := oe.RetryAfter.Milliseconds()
		if retry < 1 {
			retry = 1
		}
		fmt.Fprintf(w, "BUSY %d %s\n", retry, oe.Reason)
		return
	}
	fmt.Fprintf(w, "ERR %v\n", err)
}

func textExecute(db *shareddb.DB, w *bufio.Writer, sqlText string) {
	upper := strings.ToUpper(sqlText)
	if strings.HasPrefix(upper, "SELECT") {
		rows, err := db.Query(sqlText)
		if err != nil {
			textFail(w, err)
			return
		}
		fmt.Fprintln(w, strings.Join(rows.Columns(), "\t"))
		for rows.Next() {
			fmt.Fprintln(w, rowCells(rows.Row()))
		}
		fmt.Fprintf(w, "OK %d rows\n", rows.Len())
		return
	}
	res, err := db.Exec(sqlText)
	if err != nil {
		textFail(w, err)
		return
	}
	fmt.Fprintf(w, "OK %d rows\n", res.RowsAffected)
}
