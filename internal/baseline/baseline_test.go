package baseline

import (
	"fmt"
	"testing"

	"shareddb/internal/storage"
	"shareddb/internal/types"
)

func testDB(t testing.TB) *storage.Database {
	t.Helper()
	db, err := storage.Open(storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	item, _ := db.CreateTable("item", types.NewSchema(
		types.Column{Qualifier: "item", Name: "i_id", Kind: types.KindInt},
		types.Column{Qualifier: "item", Name: "i_subject", Kind: types.KindString},
		types.Column{Qualifier: "item", Name: "i_a_id", Kind: types.KindInt},
		types.Column{Qualifier: "item", Name: "i_price", Kind: types.KindFloat},
	))
	item.SetPrimaryKey("i_id")
	item.AddIndex("ix_subject", false, "i_subject")
	author, _ := db.CreateTable("author", types.NewSchema(
		types.Column{Qualifier: "author", Name: "a_id", Kind: types.KindInt},
		types.Column{Qualifier: "author", Name: "a_name", Kind: types.KindString},
	))
	author.SetPrimaryKey("a_id")

	var ops []storage.WriteOp
	for i := int64(0); i < 10; i++ {
		ops = append(ops, storage.WriteOp{Table: "author", Kind: storage.WInsert,
			Row: types.Row{types.NewInt(i), types.NewString(fmt.Sprintf("A%d", i))}})
	}
	subjects := []string{"X", "Y", "Z"}
	for i := int64(0); i < 60; i++ {
		ops = append(ops, storage.WriteOp{Table: "item", Kind: storage.WInsert,
			Row: types.Row{types.NewInt(i), types.NewString(subjects[i%3]),
				types.NewInt(i % 10), types.NewFloat(float64(i) * 1.5)}})
	}
	results, _ := db.ApplyOps(ops)
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	return db
}

func exec(t *testing.T, e *Engine, sqlText string, params ...types.Value) Result {
	t.Helper()
	s, err := e.Prepare(sqlText)
	if err != nil {
		t.Fatalf("Prepare(%q): %v", sqlText, err)
	}
	res, err := s.Exec(params)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sqlText, err)
	}
	return res
}

func TestBothProfilesBasicQueries(t *testing.T) {
	db := testDB(t)
	for _, profile := range []Profile{SystemXLike, MySQLLike} {
		t.Run(profile.String(), func(t *testing.T) {
			e := New(db, profile)
			if got := exec(t, e, "SELECT i_id FROM item WHERE i_id = ?", types.NewInt(7)); len(got.Rows) != 1 {
				t.Errorf("point query rows = %d", len(got.Rows))
			}
			if got := exec(t, e, "SELECT i_id FROM item WHERE i_subject = ?", types.NewString("X")); len(got.Rows) != 20 {
				t.Errorf("index scan rows = %d", len(got.Rows))
			}
			if got := exec(t, e, "SELECT i_id FROM item WHERE i_price > ?", types.NewFloat(80)); len(got.Rows) != 6 {
				t.Errorf("range rows = %d", len(got.Rows))
			}
			// join: item has index on i_a_id? no → SystemX hash join,
			// MySQL nested loop; both must agree
			got := exec(t, e, `SELECT i_id, a_name FROM item, author
				WHERE i_a_id = a_id AND i_subject = ?`, types.NewString("Y"))
			if len(got.Rows) != 20 {
				t.Errorf("join rows = %d", len(got.Rows))
			}
			// group + order + limit
			got = exec(t, e, `SELECT i_subject, COUNT(*) AS c, MAX(i_price) FROM item
				GROUP BY i_subject ORDER BY c DESC LIMIT 2`)
			if len(got.Rows) != 2 || got.Rows[0][1].AsInt() != 20 {
				t.Errorf("group rows = %v", got.Rows)
			}
		})
	}
}

func TestBaselineWrites(t *testing.T) {
	db := testDB(t)
	e := New(db, SystemXLike)
	res := exec(t, e, "INSERT INTO author (a_id, a_name) VALUES (?, ?)",
		types.NewInt(99), types.NewString("New"))
	if res.RowsAffected != 1 {
		t.Error("insert failed")
	}
	res = exec(t, e, "UPDATE author SET a_name = ? WHERE a_id = ?",
		types.NewString("Upd"), types.NewInt(99))
	if res.RowsAffected != 1 {
		t.Error("update failed")
	}
	got := exec(t, e, "SELECT a_name FROM author WHERE a_id = ?", types.NewInt(99))
	if len(got.Rows) != 1 || got.Rows[0][0].AsString() != "Upd" {
		t.Errorf("read back = %v", got.Rows)
	}
	res = exec(t, e, "DELETE FROM author WHERE a_id = ?", types.NewInt(99))
	if res.RowsAffected != 1 {
		t.Error("delete failed")
	}
}

func TestScalarAggregateEmptyInput(t *testing.T) {
	db := testDB(t)
	e := New(db, SystemXLike)
	got := exec(t, e, "SELECT COUNT(*) FROM item WHERE i_id = ?", types.NewInt(-1))
	if len(got.Rows) != 1 || got.Rows[0][0].AsInt() != 0 {
		t.Errorf("empty COUNT = %v", got.Rows)
	}
}

func TestMySQLWorkerCap(t *testing.T) {
	db := testDB(t)
	e := New(db, MySQLLike)
	if cap(e.sem) != mysqlWorkerCap {
		t.Errorf("worker cap = %d", cap(e.sem))
	}
	// saturate: all Execs still complete
	done := make(chan bool, 50)
	s, _ := e.Prepare("SELECT i_id FROM item WHERE i_subject = ?")
	for i := 0; i < 50; i++ {
		go func() {
			_, err := s.Exec([]types.Value{types.NewString("X")})
			done <- err == nil
		}()
	}
	for i := 0; i < 50; i++ {
		if !<-done {
			t.Fatal("exec under saturation failed")
		}
	}
}

func TestDistinctAndBetween(t *testing.T) {
	db := testDB(t)
	e := New(db, SystemXLike)
	got := exec(t, e, "SELECT DISTINCT i_subject FROM item")
	if len(got.Rows) != 3 {
		t.Errorf("distinct = %v", got.Rows)
	}
	got = exec(t, e, "SELECT i_id FROM item WHERE i_id BETWEEN ? AND ?",
		types.NewInt(10), types.NewInt(14))
	if len(got.Rows) != 5 {
		t.Errorf("between = %d rows", len(got.Rows))
	}
}
