package baseline

import (
	"shareddb/internal/btree"
	"shareddb/internal/expr"
	"shareddb/internal/sql"
	"shareddb/internal/storage"
	"shareddb/internal/types"
)

// execScan reads one base table with the best single-query access path:
// an index probe when an equality (or leading-column range) conjunct is
// available, else a full scan with predicate evaluation.
func (e *Engine) execScan(scan *sql.Scan, params []types.Value, ts uint64) ([]types.Row, error) {
	t := e.db.Table(scan.Table)
	if t == nil {
		return nil, storage.ErrNoTable
	}
	bound := expr.Bind(scan.Pred, params)
	conjs := expr.Conjuncts(bound)

	eq := map[int]types.Value{}
	for _, c := range conjs {
		if col, v, ok := expr.EqualityMatch(c); ok {
			if _, dup := eq[col]; !dup {
				eq[col] = v
			}
		}
	}
	var bestIx *storage.Index
	bestLen := 0
	for _, ix := range t.Indexes() {
		n := 0
		for _, c := range ix.Cols {
			if _, ok := eq[c]; ok {
				n++
			} else {
				break
			}
		}
		if n > bestLen {
			bestIx, bestLen = ix, n
		}
	}
	// Index traversals go through the storage layer's locked helpers
	// (IndexSeekAt / IndexScanAt): baseline reads run concurrently with
	// writes — and with the shared engine's pipelined write phases — so
	// trees and version chains cannot be walked lock-free.
	var out []types.Row
	if bestLen > 0 {
		key := make(btree.Key, bestLen)
		for i := 0; i < bestLen; i++ {
			key[i] = eq[bestIx.Cols[i]]
		}
		t.IndexSeekAt(bestIx, key, ts, func(_ storage.RowID, row types.Row) bool {
			if expr.TruthyEval(bound, row, nil) {
				out = append(out, row)
			}
			return true
		})
		return out, nil
	}

	// leading-column range on some index
	for _, ix := range t.Indexes() {
		lead := ix.Cols[0]
		var lo, hi btree.Key
		loIncl, hiIncl := false, false
		found := false
		for _, c := range conjs {
			if r, ok := expr.RangeMatch(c); ok && r.Col == lead {
				if !r.Lo.IsNull() && lo == nil {
					lo, loIncl = btree.Key{r.Lo}, r.LoIncl
					found = true
				}
				if !r.Hi.IsNull() && hi == nil {
					hi, hiIncl = btree.Key{r.Hi}, r.HiIncl
					found = true
				}
			}
		}
		if !found {
			continue
		}
		t.IndexScanAt(ix, lo, hi, loIncl, hiIncl, ts, func(_ storage.RowID, row types.Row) bool {
			if expr.TruthyEval(bound, row, nil) {
				out = append(out, row)
			}
			return true
		})
		return out, nil
	}

	t.ScanVisible(ts, func(_ storage.RowID, row types.Row) bool {
		if expr.TruthyEval(bound, row, nil) {
			out = append(out, row)
		}
		return true
	})
	return out, nil
}

// execJoin picks the join algorithm by profile: index nested-loop when the
// inner (right) base table has a usable index; otherwise hash join for
// SystemXLike and a plain O(n·m) nested loop for MySQLLike (MySQL 5.1 had
// no hash join).
func (e *Engine) execJoin(j *sql.Join, params []types.Value, ts uint64) ([]types.Row, error) {
	left, err := e.execPlan(j.Left, params, ts)
	if err != nil {
		return nil, err
	}

	// index nested-loop directly against the inner base table
	if rscan, ok := j.Right.(*sql.Scan); ok && len(j.RightKeys) > 0 {
		if t := e.db.Table(rscan.Table); t != nil {
			if ix := indexWithLeading(t, j.RightKeys); ix != nil {
				innerPred := expr.Bind(rscan.Pred, params)
				var out []types.Row
				for _, lrow := range left {
					key := make(btree.Key, len(j.LeftKeys))
					for i, c := range j.LeftKeys {
						key[i] = lrow[c]
					}
					t.IndexSeekAt(ix, key, ts, func(_ storage.RowID, irow types.Row) bool {
						if expr.TruthyEval(innerPred, irow, nil) {
							joined := lrow.Concat(irow)
							if j.Residual == nil || expr.TruthyEval(j.Residual, joined, params) {
								out = append(out, joined)
							}
						}
						return true
					})
				}
				return out, nil
			}
		}
	}

	right, err := e.execPlan(j.Right, params, ts)
	if err != nil {
		return nil, err
	}

	if e.profile == MySQLLike || len(j.LeftKeys) == 0 {
		// nested loop (also handles cross joins with residuals)
		var out []types.Row
		for _, lrow := range left {
			for _, rrow := range right {
				match := true
				for i := range j.LeftKeys {
					if !lrow[j.LeftKeys[i]].Equal(rrow[j.RightKeys[i]]) {
						match = false
						break
					}
				}
				if !match {
					continue
				}
				joined := lrow.Concat(rrow)
				if j.Residual == nil || expr.TruthyEval(j.Residual, joined, params) {
					out = append(out, joined)
				}
			}
		}
		return out, nil
	}

	// hash join: build on the smaller right side
	build := make(map[string][]types.Row, len(right))
	for _, rrow := range right {
		vals := make([]types.Value, len(j.RightKeys))
		for i, c := range j.RightKeys {
			vals[i] = rrow[c]
		}
		k := types.EncodeKey(vals...)
		build[k] = append(build[k], rrow)
	}
	var out []types.Row
	for _, lrow := range left {
		vals := make([]types.Value, len(j.LeftKeys))
		for i, c := range j.LeftKeys {
			vals[i] = lrow[c]
		}
		for _, rrow := range build[types.EncodeKey(vals...)] {
			joined := lrow.Concat(rrow)
			if j.Residual == nil || expr.TruthyEval(j.Residual, joined, params) {
				out = append(out, joined)
			}
		}
	}
	return out, nil
}

func indexWithLeading(t *storage.Table, keys []int) *storage.Index {
	for _, ix := range t.Indexes() {
		if len(ix.Cols) < len(keys) {
			continue
		}
		match := true
		for i := range keys {
			if ix.Cols[i] != keys[i] {
				match = false
				break
			}
		}
		if match {
			return ix
		}
	}
	return nil
}

// execGroup evaluates grouping and aggregation for one query.
func (e *Engine) execGroup(g *sql.Group, params []types.Value, ts uint64) ([]types.Row, error) {
	in, err := e.execPlan(g.In, params, ts)
	if err != nil {
		return nil, err
	}
	type aggAcc struct {
		count    int64
		sumI     int64
		sumF     float64
		isFloat  bool
		min, max types.Value
		distinct map[string]struct{}
	}
	type group struct {
		keyVals []types.Value
		accs    []*aggAcc
	}
	groups := map[string]*group{}
	order := []string{}
	for _, row := range in {
		keyVals := make([]types.Value, len(g.GroupCols))
		for i, c := range g.GroupCols {
			keyVals[i] = row[c]
		}
		k := types.EncodeKey(keyVals...)
		grp := groups[k]
		if grp == nil {
			grp = &group{keyVals: keyVals, accs: make([]*aggAcc, len(g.Aggs))}
			for i := range grp.accs {
				grp.accs[i] = &aggAcc{}
			}
			groups[k] = grp
			order = append(order, k)
		}
		for i, spec := range g.Aggs {
			v := types.NewInt(1)
			if spec.Arg != nil {
				v = spec.Arg.Eval(row, params)
			}
			if v.IsNull() {
				continue
			}
			acc := grp.accs[i]
			if spec.Distinct {
				if acc.distinct == nil {
					acc.distinct = map[string]struct{}{}
				}
				dk := types.EncodeKey(v)
				if _, seen := acc.distinct[dk]; seen {
					continue
				}
				acc.distinct[dk] = struct{}{}
			}
			acc.count++
			if v.Kind() == types.KindFloat {
				acc.isFloat = true
				acc.sumF += v.Float
			} else {
				acc.sumI += v.Int
			}
			if acc.min.IsNull() || v.Compare(acc.min) < 0 {
				acc.min = v
			}
			if acc.max.IsNull() || v.Compare(acc.max) > 0 {
				acc.max = v
			}
		}
	}
	// scalar aggregation over an empty input still yields one row
	if len(g.GroupCols) == 0 && len(order) == 0 {
		grp := &group{accs: make([]*aggAcc, len(g.Aggs))}
		for i := range grp.accs {
			grp.accs[i] = &aggAcc{}
		}
		groups[""] = grp
		order = append(order, "")
	}
	var out []types.Row
	for _, k := range order {
		grp := groups[k]
		row := make(types.Row, 0, len(grp.keyVals)+len(g.Aggs))
		row = append(row, grp.keyVals...)
		for i, spec := range g.Aggs {
			acc := grp.accs[i]
			var v types.Value
			switch spec.Func {
			case sql.AggCount:
				v = types.NewInt(acc.count)
			case sql.AggSum:
				if acc.count == 0 {
					v = types.Null
				} else if acc.isFloat {
					v = types.NewFloat(acc.sumF + float64(acc.sumI))
				} else {
					v = types.NewInt(acc.sumI)
				}
			case sql.AggMin:
				v = acc.min
			case sql.AggMax:
				v = acc.max
			case sql.AggAvg:
				if acc.count == 0 {
					v = types.Null
				} else {
					v = types.NewFloat((acc.sumF + float64(acc.sumI)) / float64(acc.count))
				}
			}
			row = append(row, v)
		}
		if g.Having == nil || expr.TruthyEval(g.Having, row, params) {
			out = append(out, row)
		}
	}
	return out, nil
}
