// Package baseline implements the classic query-at-a-time execution model
// that the paper compares SharedDB against (§5.2): every query gets its own
// plan and its own thread of execution, with no cross-query sharing. It
// runs over the same storage manager so that measured differences come from
// the execution model, not the data structures.
//
// Two profiles stand in for the paper's baselines:
//
//   - SystemXLike — a well-tuned commercial engine: hash joins and index
//     nested-loop joins, unbounded worker parallelism. Fastest on point
//     queries; per-query cost grows linearly with concurrency.
//   - MySQLLike — MySQL 5.1/InnoDB: no hash join (MySQL gained one only in
//     8.0.18), so non-indexed equi-joins degrade to nested loops, and
//     effective parallelism is capped at 12 workers, reproducing the "MySQL
//     does not scale beyond twelve cores" observation (§5.4, citing
//     Salomie et al.).
//
// These substitutions are documented in DESIGN.md §3.
package baseline

import (
	"fmt"
	"sort"

	"shareddb/internal/expr"
	"shareddb/internal/sql"
	"shareddb/internal/storage"
	"shareddb/internal/types"
)

// Profile selects the baseline personality.
type Profile int

// Profiles.
const (
	SystemXLike Profile = iota
	MySQLLike
)

func (p Profile) String() string {
	if p == MySQLLike {
		return "MySQLLike"
	}
	return "SystemXLike"
}

// mysqlWorkerCap is the effective parallelism plateau of the MySQL profile.
const mysqlWorkerCap = 12

// Engine is a query-at-a-time executor.
type Engine struct {
	db      *storage.Database
	profile Profile
	sem     chan struct{} // nil = unbounded
}

// New creates a baseline engine over db.
func New(db *storage.Database, profile Profile) *Engine {
	e := &Engine{db: db, profile: profile}
	if profile == MySQLLike {
		e.sem = make(chan struct{}, mysqlWorkerCap)
	}
	return e
}

// Database returns the underlying storage.
func (e *Engine) Database() *storage.Database { return e.db }

// Stmt is a prepared statement.
type Stmt struct {
	SQL       string
	NumParams int
	selectLP  sql.LogicalPlan
	write     *sql.WritePlan
	engine    *Engine
}

type dbCatalog struct{ db *storage.Database }

func (c dbCatalog) TableSchema(name string) (*types.Schema, bool) {
	t := c.db.Table(name)
	if t == nil {
		return nil, false
	}
	return t.Schema(), true
}

// Prepare parses and plans a statement.
func (e *Engine) Prepare(sqlText string) (*Stmt, error) {
	ast, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	bound, err := sql.PlanStatement(ast, dbCatalog{e.db})
	if err != nil {
		return nil, err
	}
	s := &Stmt{SQL: sqlText, NumParams: sql.NumParams(ast), engine: e}
	switch b := bound.(type) {
	case sql.LogicalPlan:
		s.selectLP = b
	case *sql.WritePlan:
		s.write = b
	default:
		return nil, fmt.Errorf("baseline: unsupported statement %T", bound)
	}
	return s, nil
}

// Result carries the outcome of one execution.
type Result struct {
	Rows         []types.Row
	RowsAffected int
}

// Exec runs the statement immediately on the calling goroutine — the
// query-at-a-time model: "traditional database systems allocate a separate
// thread for each query" (§3.5). The MySQL profile gates on its worker
// semaphore first.
func (s *Stmt) Exec(params []types.Value) (Result, error) {
	e := s.engine
	if e.sem != nil {
		e.sem <- struct{}{}
		defer func() { <-e.sem }()
	}
	if s.write != nil {
		op, err := bindWrite(s.write, params)
		if err != nil {
			return Result{}, err
		}
		results, _ := e.db.ApplyOps([]storage.WriteOp{op})
		return Result{RowsAffected: results[0].RowsAffected}, results[0].Err
	}
	return s.ExecAt(params, e.db.SnapshotTS())
}

// ExecAt runs a read statement at an explicit snapshot timestamp. MVCC
// version history is immutable (absent GC), so executing at a past snapshot
// reproduces exactly the state a concurrent reader saw there — this is what
// lets differential tests check the shared engine's pipelined generations,
// each of which reads at its own snapshot, against the query-at-a-time
// model after the fact.
func (s *Stmt) ExecAt(params []types.Value, ts uint64) (Result, error) {
	if s.write == nil {
		rows, err := s.engine.execPlan(s.selectLP, params, ts)
		if err != nil {
			return Result{}, err
		}
		return Result{Rows: rows}, nil
	}
	return Result{}, fmt.Errorf("baseline: ExecAt requires a read statement, got %q", s.SQL)
}

// BufferInTx buffers this write statement's bound operation into tx,
// for multi-statement transactions.
func (s *Stmt) BufferInTx(tx *storage.Tx, params []types.Value) error {
	if s.write == nil {
		return fmt.Errorf("baseline: %q is not a write statement", s.SQL)
	}
	op, err := bindWrite(s.write, params)
	if err != nil {
		return err
	}
	switch op.Kind {
	case storage.WInsert:
		tx.Insert(op.Table, op.Row)
	case storage.WUpdate:
		tx.Update(op.Table, op.Pred, op.Set)
	case storage.WDelete:
		tx.Delete(op.Table, op.Pred)
	}
	return nil
}

// ExecTx commits a storage transaction (used by multi-statement TPC-W
// interactions).
func (e *Engine) ExecTx(tx *storage.Tx) error {
	if e.sem != nil {
		e.sem <- struct{}{}
		defer func() { <-e.sem }()
	}
	return tx.Commit()
}

func bindWrite(wp *sql.WritePlan, params []types.Value) (storage.WriteOp, error) {
	switch wp.Kind {
	case sql.WriteInsert:
		row := make(types.Row, len(wp.Values))
		for i, v := range wp.Values {
			row[i] = v.Eval(nil, params)
		}
		return storage.WriteOp{Table: wp.Table, Kind: storage.WInsert, Row: row}, nil
	case sql.WriteUpdate:
		set := make([]storage.ColSet, len(wp.Set))
		for i, sc := range wp.Set {
			set[i] = storage.ColSet{Col: sc.Col, Val: expr.Bind(sc.Val, params)}
		}
		return storage.WriteOp{Table: wp.Table, Kind: storage.WUpdate,
			Pred: expr.Bind(wp.Pred, params), Set: set}, nil
	case sql.WriteDelete:
		return storage.WriteOp{Table: wp.Table, Kind: storage.WDelete,
			Pred: expr.Bind(wp.Pred, params)}, nil
	default:
		return storage.WriteOp{}, fmt.Errorf("baseline: unknown write kind %d", wp.Kind)
	}
}

// execPlan interprets a logical plan pull-style, materializing intermediate
// results (classic query-at-a-time execution over main-memory data).
func (e *Engine) execPlan(lp sql.LogicalPlan, params []types.Value, ts uint64) ([]types.Row, error) {
	switch n := lp.(type) {
	case *sql.Scan:
		return e.execScan(n, params, ts)
	case *sql.Filter:
		in, err := e.execPlan(n.In, params, ts)
		if err != nil {
			return nil, err
		}
		out := in[:0]
		for _, r := range in {
			if expr.TruthyEval(n.Pred, r, params) {
				out = append(out, r)
			}
		}
		return out, nil
	case *sql.Join:
		return e.execJoin(n, params, ts)
	case *sql.Group:
		return e.execGroup(n, params, ts)
	case *sql.Sort:
		in, err := e.execPlan(n.In, params, ts)
		if err != nil {
			return nil, err
		}
		sortRows(in, n.Keys, params)
		return in, nil
	case *sql.Limit:
		in, err := e.execPlan(n.In, params, ts)
		if err != nil {
			return nil, err
		}
		if len(in) > n.N {
			in = in[:n.N]
		}
		return in, nil
	case *sql.Project:
		in, err := e.execPlan(n.In, params, ts)
		if err != nil {
			return nil, err
		}
		out := make([]types.Row, len(in))
		for i, r := range in {
			row := make(types.Row, len(n.Exprs))
			for j, pe := range n.Exprs {
				row[j] = pe.Eval(r, params)
			}
			out[i] = row
		}
		return out, nil
	case *sql.Distinct:
		in, err := e.execPlan(n.In, params, ts)
		if err != nil {
			return nil, err
		}
		seen := map[string]bool{}
		out := in[:0]
		for _, r := range in {
			k := types.EncodeKey(r...)
			if !seen[k] {
				seen[k] = true
				out = append(out, r)
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("baseline: unsupported plan node %T", lp)
	}
}

func sortRows(rows []types.Row, keys []sql.SortKey, params []types.Value) {
	sort.SliceStable(rows, func(a, b int) bool {
		for _, k := range keys {
			va := k.Expr.Eval(rows[a], params)
			vb := k.Expr.Eval(rows[b], params)
			d := va.Compare(vb)
			if d == 0 {
				continue
			}
			if k.Desc {
				return d > 0
			}
			return d < 0
		}
		return false
	})
}
