// Package plan implements SharedDB's global query plan (paper §3.2, §3.3):
// the whole workload is compiled into a single always-on dataflow of shared
// operators. Compilation is the paper's two-step optimization (Figure 3):
// each statement arrives as an individually optimized logical plan
// (internal/sql, predicates pushed down), and this package merges those
// plans, sharing operators whose signatures match — the same join, sort or
// group-by node serves every statement (and every concurrent activation)
// that needs it.
package plan

import (
	"fmt"
	"strings"
	"sync"

	"shareddb/internal/expr"
	"shareddb/internal/operators"
	"shareddb/internal/par"
	"shareddb/internal/sql"
	"shareddb/internal/storage"
	"shareddb/internal/types"
)

// origin identifies the provenance of a stream column: either a base table
// column or a synthesized column (aggregate output). Origins make sharing
// signatures independent of query aliases and column positions, so the sort
// on Items.price is shared between a query sorting bare Items tuples and a
// query sorting Orders⋈Items tuples (Figure 2).
type origin struct {
	Table string // base table name; "" for synthesized columns
	Col   int    // column index in the base table
	Synth string // synthesized name (aggregate signature)
}

func (o origin) String() string {
	if o.Synth != "" {
		return "<" + o.Synth + ">"
	}
	return fmt.Sprintf("%s.%d", o.Table, o.Col)
}

// streamInfo describes one stream (homogeneous tuple flow) in the global
// plan.
type streamInfo struct {
	id      int
	schema  *types.Schema
	origins []origin
}

// GlobalPlan is the always-on operator DAG plus the registered statements.
type GlobalPlan struct {
	mu sync.Mutex

	db         *storage.Database
	nodes      []*operators.Node
	nextNodeID int
	nextStream int
	started    bool
	workers    int  // per-cycle intra-operator parallelism (<=1 = serial)
	columnar   bool // scan sources read the columnar mirror (SharedScanColumnar)
	// pool is the plan-wide batch free list: every node's emitter draws
	// from it and every node recycles consumed batches into it, so the
	// steady-state generation cycle reuses the same buffers (README
	// "Memory discipline").
	pool *operators.BatchPool

	// workerPool, when set, is the engine-owned persistent worker pool every
	// cycle's data-parallel phases run on (nil = the par package's default
	// pool). Owned by the engine: the plan never closes it.
	workerPool *par.Pool

	// costObserver, when set, receives every node cycle's operator-active
	// time with the generation and the cycle's tasks — the engine's
	// per-statement cost attribution feed (admission control).
	costObserver func(gen uint64, tasks []operators.Task, activeNs int64)

	// colAggCycles counts group-by node cycles dispatched as columnar
	// aggregation pushdowns (tests assert the pushdown actually engaged).
	colAggCycles uint64

	streams map[int]*streamInfo

	scanNodes  map[string]*sourceRef // table name → scan node
	probeNodes map[string]*sourceRef // table/index → probe node
	joinNodes  map[string][]*joinRef
	ixJoins    map[string][]*ixJoinRef
	sortNodes  map[string]*sortRef
	groupNodes map[string]*groupRef
	filterFor  map[int]*operators.Node // producer node id → shared filter

	edges map[[2]int]*operators.Edge // (fromID, toID) → edge

	sink   *operators.Node
	SinkOp *operators.SinkOp

	stmts []*Statement

	// inc tracks each stateful node's persistent NodeState version: the
	// signature of the covered activations it was built for and the storage
	// snapshot it is current as of. RunGeneration reuses state only when the
	// signature matches and the generation delta chains exactly onto the
	// state's snapshot; otherwise the node reprimes. Nil until an
	// incremental generation runs.
	inc map[*operators.Node]*incNodeState
}

// incNodeState is the plan-side version stamp of one node's maintained
// state.
type incNodeState struct {
	sig string // QID-sorted (qid, stmt, params) fingerprint of covered activations
	ts  uint64 // snapshot the state is current as of
}

type sourceRef struct {
	node   *operators.Node
	stream int
}

type joinRef struct {
	node        *operators.Node
	op          *operators.HashJoinOp
	innerStream int
	outerKeys   map[int][]int // outer stream → key cols (conflict detection)
}

type ixJoinRef struct {
	node      *operators.Node
	op        *operators.IndexJoinOp
	outerKeys map[int][]int
}

type sortRef struct {
	node *operators.Node
	op   *operators.SortOp
}

type groupRef struct {
	node      *operators.Node
	op        *operators.GroupOp
	outStream int
}

// New creates an empty global plan over the given storage.
func New(db *storage.Database) *GlobalPlan {
	p := &GlobalPlan{
		db:         db,
		streams:    map[int]*streamInfo{},
		scanNodes:  map[string]*sourceRef{},
		probeNodes: map[string]*sourceRef{},
		joinNodes:  map[string][]*joinRef{},
		ixJoins:    map[string][]*ixJoinRef{},
		sortNodes:  map[string]*sortRef{},
		groupNodes: map[string]*groupRef{},
		filterFor:  map[int]*operators.Node{},
		edges:      map[[2]int]*operators.Edge{},
		nextStream: 1,
		pool:       operators.NewBatchPool(),
	}
	p.SinkOp = &operators.SinkOp{}
	p.sink = operators.NewNode(p.allocNodeID(), "output", p.SinkOp)
	p.sink.SetPool(p.pool)
	return p
}

// PoolStats reports the batch free list's traffic: total batch requests and
// how many were served by reuse (the steady-state recycle rate).
func (p *GlobalPlan) PoolStats() (gets, reuses uint64) { return p.pool.Stats() }

func (p *GlobalPlan) allocNodeID() int {
	id := p.nextNodeID
	p.nextNodeID++
	return id
}

func (p *GlobalPlan) allocStream(schema *types.Schema, origins []origin) *streamInfo {
	si := &streamInfo{id: p.nextStream, schema: schema, origins: origins}
	p.nextStream++
	p.streams[si.id] = si
	return si
}

func (p *GlobalPlan) addNode(name string, op operators.Operator) *operators.Node {
	n := operators.NewNode(p.allocNodeID(), name, op)
	n.SetPool(p.pool)
	p.nodes = append(p.nodes, n)
	if p.started {
		n.Start()
	}
	return n
}

// edge returns the (single) edge between two nodes, wiring it on first use.
func (p *GlobalPlan) edge(from, to *operators.Node) *operators.Edge {
	key := [2]int{from.ID, to.ID}
	if e, ok := p.edges[key]; ok {
		return e
	}
	e := operators.Connect(from, to)
	p.edges[key] = e
	return e
}

// SetWorkers sets the worker-pool budget handed to every operator cycle
// (partitioned scans and data-parallel Finish phases). Values below 1 clamp
// to 1 (strictly serial — byte-identical to the pre-parallel engine).
func (p *GlobalPlan) SetWorkers(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n < 1 {
		n = 1
	}
	p.workers = n
}

// SetWorkerPool attaches an engine-owned persistent worker pool; cycles run
// their data-parallel phases on it instead of the package default. The pool
// stays owned (and eventually closed) by the caller.
func (p *GlobalPlan) SetWorkerPool(wp *par.Pool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.workerPool = wp
}

// SetCostObserver installs the engine's per-cycle cost attribution hook:
// ob(gen, tasks, activeNs) is called from each node's goroutine when it
// drains a generation, with the time spent inside the operator (excluding
// inbox waits). Every node reports a generation before the sink's OnDone
// for that generation fires. Nil disables timing entirely.
func (p *GlobalPlan) SetCostObserver(ob func(gen uint64, tasks []operators.Task, activeNs int64)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.costObserver = ob
}

// Workers returns the configured per-cycle parallelism budget.
func (p *GlobalPlan) Workers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.workers < 1 {
		return 1
	}
	return p.workers
}

// SetColumnar switches scan sources between the row-store ClockScan and the
// columnar mirror (storage.SharedScanColumnar). Takes effect from the next
// generation; emission is bit-identical either way.
func (p *GlobalPlan) SetColumnar(on bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.columnar = on
}

// ColAggCycles reports how many group-by node cycles ran as columnar
// aggregation pushdowns (fed straight from the columnar mirror instead of
// the scan stream) since the plan was created.
func (p *GlobalPlan) ColAggCycles() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.colAggCycles
}

// Columnar reports whether scan cycles read the columnar mirror.
func (p *GlobalPlan) Columnar() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.columnar
}

// Start launches every operator goroutine (idempotent).
func (p *GlobalPlan) Start() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		return
	}
	p.started = true
	for _, n := range p.nodes {
		n.Start()
	}
	p.sink.Start()
}

// Stop terminates all operator goroutines.
func (p *GlobalPlan) Stop() {
	p.mu.Lock()
	nodes := append([]*operators.Node{}, p.nodes...)
	sink := p.sink
	p.mu.Unlock()
	for _, n := range nodes {
		n.Stop()
	}
	sink.Stop()
}

// NumNodes returns the number of operator nodes (excluding the sink).
func (p *GlobalPlan) NumNodes() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.nodes)
}

// Statements returns the registered statements.
func (p *GlobalPlan) Statements() []*Statement {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*Statement{}, p.stmts...)
}

// Describe renders the DAG for debugging and the server's EXPLAIN.
func (p *GlobalPlan) Describe() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var b strings.Builder
	for _, n := range p.nodes {
		fmt.Fprintf(&b, "node %d: %s →", n.ID, n.Name)
		for _, e := range n.Consumers {
			fmt.Fprintf(&b, " %s", e.To.Name)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Statement is a registered (prepared) statement: either a read program
// over the shared DAG or a write plan executed by the storage layer.
type Statement struct {
	ID        int
	SQL       string
	NumParams int

	// read side
	steps          []stepBinding
	pathEdges      []*operators.Edge
	terminalStream int
	Project        []expr.Expr // over the terminal stream schema
	OutSchema      *types.Schema
	Distinct       bool
	SinkLimit      int // -1 none; applied at result assembly

	// Fold metadata, set when the statement is exactly one shared
	// ClockScan with a pure column projection and no DISTINCT/ORDER/LIMIT
	// — the shape core's subsumption-lite folding can serve from (or as) a
	// covering scan. Index-probe paths never qualify: they emit rows in
	// index order, not clock-scan order, so substituting one for the other
	// would reorder results. FoldTable is the scanned table, FoldPred the
	// scan's unbound predicate (nil = full scan), FoldCols the projected
	// table-column indices in output order.
	FoldTable string
	FoldPred  expr.Expr
	FoldCols  []int

	// write side
	Write *sql.WritePlan

	// incs are the statement's incremental-state bindings: stateful nodes
	// along its path (hash join, group-by) whose input is this statement's
	// direct base-table scan, eligible for maintained NodeState when
	// Config.IncrementalState is on. Set at compile time.
	incs []incBinding
}

// incBinding marks one (statement, stateful node) pair whose scan step can
// be replaced by maintained state: the scan node/edge to silence, the base
// table to prime from, and the statement's unbound scan predicate.
type incBinding struct {
	node     *operators.Node    // the stateful operator's node
	op       operators.Operator // *HashJoinOp or *GroupOp (eligibility checks)
	scanNode *operators.Node    // the feeding shared ClockScan
	scanEdge *operators.Edge    // scanNode → node edge
	table    *storage.Table
	pred     expr.Expr // unbound scan predicate (nil = every row)
}

// IsWrite reports whether the statement mutates data.
func (s *Statement) IsWrite() bool { return s.Write != nil }

// stepBinding is one node along a statement's path with its per-activation
// task factory.
type stepBinding struct {
	node     *operators.Node
	makeSpec func(params []types.Value) interface{}
}
