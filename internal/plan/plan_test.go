package plan

import (
	"strings"
	"testing"

	"shareddb/internal/storage"
	"shareddb/internal/types"
)

func testDB(t *testing.T) *storage.Database {
	t.Helper()
	db, err := storage.Open(storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	users, _ := db.CreateTable("users", types.NewSchema(
		types.Column{Qualifier: "users", Name: "user_id", Kind: types.KindInt},
		types.Column{Qualifier: "users", Name: "name", Kind: types.KindString},
		types.Column{Qualifier: "users", Name: "country", Kind: types.KindString},
	))
	users.SetPrimaryKey("user_id")
	orders, _ := db.CreateTable("orders", types.NewSchema(
		types.Column{Qualifier: "orders", Name: "o_id", Kind: types.KindInt},
		types.Column{Qualifier: "orders", Name: "o_user_id", Kind: types.KindInt},
		types.Column{Qualifier: "orders", Name: "o_total", Kind: types.KindFloat},
	))
	orders.SetPrimaryKey("o_id")
	orders.AddIndex("orders_user", false, "o_user_id")
	return db
}

func TestPrepareReadStatement(t *testing.T) {
	p := New(testDB(t))
	s, err := p.Prepare("SELECT name FROM users WHERE user_id = ?")
	if err != nil {
		t.Fatal(err)
	}
	if s.IsWrite() || s.NumParams != 1 || len(s.Project) != 1 {
		t.Errorf("statement = %+v", s)
	}
	if s.OutSchema.Cols[0].Name != "name" {
		t.Errorf("out schema = %v", s.OutSchema)
	}
	if len(p.Statements()) != 1 {
		t.Error("statement not registered")
	}
}

func TestPrepareWriteStatement(t *testing.T) {
	p := New(testDB(t))
	s, err := p.Prepare("UPDATE users SET name = ? WHERE user_id = ?")
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsWrite() || s.Write == nil {
		t.Error("write plan missing")
	}
}

func TestIdenticalStatementsShareEverything(t *testing.T) {
	p := New(testDB(t))
	if _, err := p.Prepare("SELECT name FROM users, orders WHERE user_id = o_user_id AND country = ?"); err != nil {
		t.Fatal(err)
	}
	n1 := p.NumNodes()
	if _, err := p.Prepare("SELECT name FROM users, orders WHERE user_id = o_user_id AND country = ?"); err != nil {
		t.Fatal(err)
	}
	if p.NumNodes() != n1 {
		t.Errorf("identical statement added nodes: %d → %d\n%s", n1, p.NumNodes(), p.Describe())
	}
}

func TestAccessPathSelection(t *testing.T) {
	p := New(testDB(t))
	// pk equality → probe node
	if _, err := p.Prepare("SELECT name FROM users WHERE user_id = ?"); err != nil {
		t.Fatal(err)
	}
	d := p.Describe()
	if !strings.Contains(d, "probe(users/pk_users)") {
		t.Errorf("expected pk probe, plan:\n%s", d)
	}
	// range predicate → shared scan (ranges share via the predicate index)
	if _, err := p.Prepare("SELECT o_id FROM orders WHERE o_total > ?"); err != nil {
		t.Fatal(err)
	}
	d = p.Describe()
	if !strings.Contains(d, "scan(orders)") {
		t.Errorf("expected shared scan for range, plan:\n%s", d)
	}
}

func TestJoinMethodSelection(t *testing.T) {
	p := New(testDB(t))
	// inner side (orders) reached purely by key with an index → index join
	if _, err := p.Prepare(`SELECT name, o_total FROM users, orders
		WHERE user_id = o_user_id AND user_id = ?`); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Describe(), "⋈ix(orders)") {
		t.Errorf("expected index join, plan:\n%s", p.Describe())
	}
	// inner side with a per-query predicate → shared hash join
	if _, err := p.Prepare(`SELECT o_id FROM orders, users
		WHERE o_user_id = user_id AND country = ?`); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Describe(), "⋈hash") {
		t.Errorf("expected hash join, plan:\n%s", p.Describe())
	}
}

func TestPrepareErrors(t *testing.T) {
	p := New(testDB(t))
	for _, bad := range []string{
		"SELECT * FROM missing",
		"SELECT * FROM users, orders", // cross join unsupported in shared plan
		"CREATE TABLE x (a INT)",      // DDL is not preparable
		"garbage",
	} {
		if _, err := p.Prepare(bad); err == nil {
			t.Errorf("Prepare(%q) should fail", bad)
		}
	}
}

func TestStartStopIdempotent(t *testing.T) {
	p := New(testDB(t))
	if _, err := p.Prepare("SELECT name FROM users WHERE user_id = ?"); err != nil {
		t.Fatal(err)
	}
	p.Start()
	p.Start() // idempotent
	p.Stop()
}

func TestLateNodeStartsWhenPlanRunning(t *testing.T) {
	p := New(testDB(t))
	p.Start()
	defer p.Stop()
	// preparing after Start must start the new nodes' goroutines
	if _, err := p.Prepare("SELECT o_id FROM orders WHERE o_id = ?"); err != nil {
		t.Fatal(err)
	}
}

func TestOriginString(t *testing.T) {
	o := origin{Table: "users", Col: 2}
	if o.String() != "users.2" {
		t.Errorf("origin = %s", o)
	}
	syn := origin{Synth: "SUM(x)"}
	if syn.String() != "<SUM(x)>" {
		t.Errorf("synth origin = %s", syn)
	}
}
