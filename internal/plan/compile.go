package plan

import (
	"fmt"
	"strings"

	"shareddb/internal/btree"
	"shareddb/internal/expr"
	"shareddb/internal/operators"
	"shareddb/internal/sql"
	"shareddb/internal/storage"
	"shareddb/internal/types"
)

// dbCatalog adapts the storage catalog for the SQL binder.
type dbCatalog struct{ db *storage.Database }

func (c dbCatalog) TableSchema(name string) (*types.Schema, bool) {
	t := c.db.Table(name)
	if t == nil {
		return nil, false
	}
	return t.Schema(), true
}

// Prepare parses, binds and compiles a statement into the global plan,
// sharing operators with previously registered statements wherever the
// sharing signatures match. Prepare may be called at any time between
// generations — this is also how ad-hoc queries join the plan (§3.2: plan
// operators act as materialized views for ad-hoc queries).
func (p *GlobalPlan) Prepare(sqlText string) (*Statement, error) {
	stmtAST, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	return p.PrepareParsed(sqlText, stmtAST)
}

// PrepareParsed compiles an already-parsed statement into the global plan.
// The shard router prepares rewritten (partial) statements through this
// path, since those exist as ASTs rather than SQL text. The AST is bound
// against this plan's catalog and must not be mutated afterwards.
func (p *GlobalPlan) PrepareParsed(sqlText string, stmtAST sql.Statement) (*Statement, error) {
	bound, err := sql.PlanStatement(stmtAST, dbCatalog{p.db})
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()

	s := &Statement{ID: len(p.stmts), SQL: sqlText, NumParams: sql.NumParams(stmtAST), SinkLimit: -1}
	switch b := bound.(type) {
	case *sql.WritePlan:
		s.Write = b
	case sql.LogicalPlan:
		if err := p.compileSelect(s, b); err != nil {
			return nil, err
		}
	case *sql.DDLPlan:
		return nil, fmt.Errorf("plan: DDL must be executed, not prepared: %s", sqlText)
	default:
		return nil, fmt.Errorf("plan: unsupported statement %T", bound)
	}
	p.stmts = append(p.stmts, s)
	return s, nil
}

// compiled is the result of compiling one logical subtree for one statement.
type compiled struct {
	node   *operators.Node
	stream *streamInfo
	steps  []stepBinding
	edges  []*operators.Edge

	// Fold provenance: set only by compileScan's shared-ClockScan branch
	// (and deliberately NOT propagated through filters, joins, groups or
	// sorts), so a non-empty foldTable at the plan root means "this whole
	// statement is one clock scan of foldTable under foldPred".
	foldTable string
	foldPred  expr.Expr
}

// compileSelect peels the top of the logical plan (Distinct → Project →
// Limit → Sort) and compiles the rest bottom-up into shared nodes.
func (p *GlobalPlan) compileSelect(s *Statement, lp sql.LogicalPlan) error {
	if d, ok := lp.(*sql.Distinct); ok {
		s.Distinct = true
		lp = d.In
	}
	proj, ok := lp.(*sql.Project)
	if !ok {
		return fmt.Errorf("plan: expected projection at plan root, got %T", lp)
	}
	lp = proj.In
	limit := -1
	if l, ok := lp.(*sql.Limit); ok {
		limit = l.N
		lp = l.In
	}
	var sortLP *sql.Sort
	if srt, ok := lp.(*sql.Sort); ok {
		sortLP = srt
		lp = srt.In
	}

	c, err := p.compile(s, lp)
	if err != nil {
		return err
	}
	if sortLP != nil {
		c, err = p.compileSort(s, c, sortLP, limit)
		if err != nil {
			return err
		}
	} else {
		s.SinkLimit = limit
	}

	// reject self-joins: one query id cannot play two roles at one node
	seen := map[*operators.Node]bool{}
	for _, st := range c.steps {
		if seen[st.node] {
			return fmt.Errorf("plan: statement visits node %q twice (self-joins are not supported)", st.node.Name)
		}
		seen[st.node] = true
	}

	te := p.edge(c.node, p.sink)
	s.steps = c.steps
	s.pathEdges = dedupEdges(append(c.edges, te))
	s.terminalStream = c.stream.id
	s.Project = proj.Exprs
	s.OutSchema = proj.Out

	// Fold metadata: a statement qualifies when it is exactly one shared
	// ClockScan with a pure column projection and no DISTINCT/ORDER/LIMIT
	// — then its result is the scanned rows, in clock order, filtered by
	// the scan predicate and narrowed to FoldCols, which is the contract
	// core's subsumption-lite folding builds residual transforms against.
	if c.foldTable != "" && len(c.steps) == 1 && !s.Distinct && s.SinkLimit < 0 {
		cols := make([]int, 0, len(proj.Exprs))
		pure := true
		for _, pe := range proj.Exprs {
			cr, ok := pe.(*expr.ColRef)
			if !ok {
				pure = false
				break
			}
			cols = append(cols, cr.Idx)
		}
		if pure {
			s.FoldTable = c.foldTable
			s.FoldPred = c.foldPred
			s.FoldCols = cols
		}
	}
	return nil
}

func dedupEdges(es []*operators.Edge) []*operators.Edge {
	seen := map[*operators.Edge]bool{}
	out := es[:0]
	for _, e := range es {
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	return out
}

// compile dispatches on the logical node type.
func (p *GlobalPlan) compile(s *Statement, lp sql.LogicalPlan) (compiled, error) {
	switch n := lp.(type) {
	case *sql.Scan:
		return p.compileScan(n)
	case *sql.Filter:
		return p.compileFilter(s, n)
	case *sql.Join:
		return p.compileJoin(s, n)
	case *sql.Group:
		return p.compileGroup(s, n)
	default:
		return compiled{}, fmt.Errorf("plan: unexpected logical node %T below the plan root", lp)
	}
}

// matchEqOperand recognizes col = operand where operand is a constant or a
// statement parameter (parameters are still unbound at compile time).
func matchEqOperand(e expr.Expr) (col int, operand expr.Expr, ok bool) {
	c, isCmp := e.(*expr.Cmp)
	if !isCmp || c.Op != expr.EQ {
		return 0, nil, false
	}
	if cr, o := c.L.(*expr.ColRef); o && isOperand(c.R) {
		return cr.Idx, c.R, true
	}
	if cr, o := c.R.(*expr.ColRef); o && isOperand(c.L) {
		return cr.Idx, c.L, true
	}
	return 0, nil, false
}

// matchRangeOperand recognizes col <op> operand for inequalities.
func matchRangeOperand(e expr.Expr) (col int, op expr.CmpOp, operand expr.Expr, ok bool) {
	c, isCmp := e.(*expr.Cmp)
	if !isCmp {
		return 0, 0, nil, false
	}
	switch c.Op {
	case expr.LT, expr.LE, expr.GT, expr.GE:
	default:
		return 0, 0, nil, false
	}
	if cr, o := c.L.(*expr.ColRef); o && isOperand(c.R) {
		return cr.Idx, c.Op, c.R, true
	}
	if cr, o := c.R.(*expr.ColRef); o && isOperand(c.L) {
		return cr.Idx, c.Op.Flip(), c.L, true
	}
	return 0, 0, nil, false
}

func isOperand(e expr.Expr) bool {
	switch e.(type) {
	case *expr.Const, *expr.Param:
		return true
	}
	return false
}

// compileScan chooses the access path for a base-table read: an index probe
// when an index prefix is pinned by equality (or a leading-column range),
// else the shared ClockScan.
func (p *GlobalPlan) compileScan(scan *sql.Scan) (compiled, error) {
	table := p.db.Table(scan.Table)
	if table == nil {
		return compiled{}, fmt.Errorf("plan: unknown table %q", scan.Table)
	}
	conjs := expr.Conjuncts(scan.Pred)
	eqOperands := map[int]expr.Expr{}
	eqConjunct := map[int]int{} // col → index into conjs
	for i, c := range conjs {
		if col, operand, ok := matchEqOperand(c); ok {
			if _, dup := eqOperands[col]; !dup {
				eqOperands[col] = operand
				eqConjunct[col] = i
			}
		}
	}

	// longest equality-covered index prefix wins
	var bestIx *storage.Index
	bestLen := 0
	for _, ix := range table.Indexes() {
		n := 0
		for _, c := range ix.Cols {
			if _, ok := eqOperands[c]; ok {
				n++
			} else {
				break
			}
		}
		if n > bestLen || (n == bestLen && n > 0 && ix.Unique && !bestIx.Unique) {
			bestIx, bestLen = ix, n
		}
	}

	if bestLen > 0 {
		used := map[int]bool{}
		keyExprs := make([]expr.Expr, bestLen)
		for i := 0; i < bestLen; i++ {
			col := bestIx.Cols[i]
			keyExprs[i] = eqOperands[col]
			used[eqConjunct[col]] = true
		}
		var residual []expr.Expr
		for i, c := range conjs {
			if !used[i] {
				residual = append(residual, c)
			}
		}
		res := expr.AndOf(residual)
		src := p.getProbe(table, bestIx)
		step := stepBinding{node: src.node, makeSpec: func(params []types.Value) interface{} {
			key := make(btree.Key, len(keyExprs))
			for i, ke := range keyExprs {
				key[i] = ke.Eval(nil, params)
			}
			return operators.ProbeSpec{Key: key, Residual: expr.Bind(res, params)}
		}}
		return compiled{node: src.node, stream: p.streams[src.stream], steps: []stepBinding{step}}, nil
	}

	// Range predicates deliberately do NOT use index range probes here:
	// a per-query range probe re-traverses the index for every concurrent
	// query, which defeats sharing. The shared ClockScan answers all range
	// queries of a generation in one pass through its predicate interval
	// index (§4.4) — bounded work regardless of concurrency. (The
	// query-at-a-time baseline keeps range probes: optimal for one query.)

	// shared ClockScan
	src := p.getScan(table)
	pred := scan.Pred
	step := stepBinding{node: src.node, makeSpec: func(params []types.Value) interface{} {
		return operators.ScanSpec{Pred: expr.Bind(pred, params)}
	}}
	return compiled{node: src.node, stream: p.streams[src.stream], steps: []stepBinding{step},
		foldTable: scan.Table, foldPred: pred}, nil
}

func tableOrigins(t *storage.Table) []origin {
	out := make([]origin, t.Schema().Len())
	for i := range out {
		out[i] = origin{Table: t.Name(), Col: i}
	}
	return out
}

func (p *GlobalPlan) getScan(t *storage.Table) *sourceRef {
	if ref, ok := p.scanNodes[t.Name()]; ok {
		return ref
	}
	si := p.allocStream(t.Schema(), tableOrigins(t))
	node := p.addNode("scan("+t.Name()+")", &operators.ScanOp{Table: t, OutStream: si.id})
	ref := &sourceRef{node: node, stream: si.id}
	p.scanNodes[t.Name()] = ref
	return ref
}

func (p *GlobalPlan) getProbe(t *storage.Table, ix *storage.Index) *sourceRef {
	key := t.Name() + "/" + ix.Name
	if ref, ok := p.probeNodes[key]; ok {
		return ref
	}
	si := p.allocStream(t.Schema(), tableOrigins(t))
	node := p.addNode("probe("+key+")", &operators.ProbeOp{Table: t, Index: ix, OutStream: si.id})
	ref := &sourceRef{node: node, stream: si.id}
	p.probeNodes[key] = ref
	return ref
}

// compileFilter routes the subtree through the shared filter node attached
// to its producer.
func (p *GlobalPlan) compileFilter(s *Statement, f *sql.Filter) (compiled, error) {
	c, err := p.compile(s, f.In)
	if err != nil {
		return compiled{}, err
	}
	fnode, ok := p.filterFor[c.node.ID]
	if !ok {
		fnode = p.addNode("filter<"+c.node.Name+">", &operators.FilterOp{})
		p.filterFor[c.node.ID] = fnode
	}
	e := p.edge(c.node, fnode)
	pred := f.Pred
	step := stepBinding{node: fnode, makeSpec: func(params []types.Value) interface{} {
		return operators.FilterSpec{Pred: expr.Bind(pred, params)}
	}}
	return compiled{
		node:   fnode,
		stream: c.stream, // filters pass streams through
		steps:  append(c.steps, step),
		edges:  append(c.edges, e),
	}, nil
}

// compileJoin compiles an equi-join: an index nested-loop join when the
// right side is a base table with a matching index (the inner table is then
// probed directly and its per-query predicate becomes a residual), else a
// shared hash join whose build side is the compiled right subtree.
func (p *GlobalPlan) compileJoin(s *Statement, j *sql.Join) (compiled, error) {
	left, err := p.compile(s, j.Left)
	if err != nil {
		return compiled{}, err
	}
	if len(j.LeftKeys) == 0 {
		return compiled{}, fmt.Errorf("plan: cross joins are not supported in the shared plan")
	}

	// Join method selection (mirrors the paper's Figure 6 mix of NL⋈ and
	// Hash⋈): an index nested-loop join only when the inner is a base table
	// reached purely by key — if the inner scan carries a per-query
	// predicate, the shared hash join wins, because the inner ClockScan's
	// predicate index evaluates that predicate once per row for all
	// queries, whereas an index join would re-evaluate it per (row, query).
	if rscan, ok := j.Right.(*sql.Scan); ok && rscan.Pred == nil {
		table := p.db.Table(rscan.Table)
		if ix := indexMatching(table, j.RightKeys); ix != nil {
			return p.compileIndexJoin(s, left, j, rscan, table, ix)
		}
	}

	right, err := p.compile(s, j.Right)
	if err != nil {
		return compiled{}, err
	}
	sig := fmt.Sprintf("hash|%d|%d|%v", right.node.ID, right.stream.id, j.RightKeys)
	var ref *joinRef
	for _, cand := range p.joinNodes[sig] {
		if keys, ok := cand.outerKeys[left.stream.id]; !ok || intsEqual(keys, j.LeftKeys) {
			ref = cand
			break
		}
	}
	if ref == nil {
		op := &operators.HashJoinOp{
			InnerKeyCols: j.RightKeys,
			InnerStream:  right.stream.id,
			Outers:       map[int]operators.JoinOuter{},
		}
		node := p.addNode(fmt.Sprintf("⋈hash(%s)", right.node.Name), op)
		ie := p.edge(right.node, node)
		op.SetInnerEdge(ie)
		ref = &joinRef{node: node, op: op, innerStream: right.stream.id, outerKeys: map[int][]int{}}
		p.joinNodes[sig] = append(p.joinNodes[sig], ref)
	}
	outCfg, ok := ref.op.Outers[left.stream.id]
	if !ok {
		osi := p.allocStream(left.stream.schema.Concat(right.stream.schema),
			append(append([]origin{}, left.stream.origins...), right.stream.origins...))
		outCfg = operators.JoinOuter{KeyCols: j.LeftKeys, OutStream: osi.id}
		ref.op.Outers[left.stream.id] = outCfg
		ref.outerKeys[left.stream.id] = j.LeftKeys
	}
	ie := p.edge(right.node, ref.node)
	oe := p.edge(left.node, ref.node)
	step := stepBinding{node: ref.node, makeSpec: func([]types.Value) interface{} {
		return operators.JoinSpec{}
	}}
	// Incremental-state binding: the build side is a direct shared ClockScan,
	// so the join's hash table can be maintained as persistent NodeState
	// (primed from the table, updated from generation write deltas) instead
	// of rebuilt from the scan stream every cycle.
	if right.foldTable != "" && len(right.steps) == 1 {
		s.incs = append(s.incs, incBinding{
			node:     ref.node,
			op:       ref.op,
			scanNode: right.node,
			scanEdge: ie,
			table:    p.db.Table(right.foldTable),
			pred:     right.foldPred,
		})
	}
	return compiled{
		node:   ref.node,
		stream: p.streams[outCfg.OutStream],
		steps:  append(append(left.steps, right.steps...), step),
		edges:  append(append(left.edges, right.edges...), ie, oe),
	}, nil
}

// indexMatching returns an index of t whose leading columns are exactly the
// given key columns (in any order up to position len(keys)), or nil.
func indexMatching(t *storage.Table, keys []int) *storage.Index {
	if t == nil {
		return nil
	}
	for _, ix := range t.Indexes() {
		if len(ix.Cols) < len(keys) {
			continue
		}
		// keys must cover exactly the index's first len(keys) columns
		covered := true
		for i := 0; i < len(keys); i++ {
			if ix.Cols[i] != keys[i] {
				covered = false
				break
			}
		}
		if covered {
			return ix
		}
	}
	return nil
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (p *GlobalPlan) compileIndexJoin(s *Statement, left compiled, j *sql.Join, rscan *sql.Scan, table *storage.Table, ix *storage.Index) (compiled, error) {
	sig := "ix|" + table.Name() + "/" + ix.Name
	var ref *ixJoinRef
	for _, cand := range p.ixJoins[sig] {
		if keys, exists := cand.outerKeys[left.stream.id]; !exists || intsEqual(keys, j.LeftKeys) {
			ref = cand
			break
		}
	}
	if ref == nil {
		op := &operators.IndexJoinOp{Table: table, Index: ix, Outers: map[int]operators.JoinOuter{}}
		node := p.addNode("⋈ix("+table.Name()+")", op)
		ref = &ixJoinRef{node: node, op: op, outerKeys: map[int][]int{}}
		p.ixJoins[sig] = append(p.ixJoins[sig], ref)
	}
	outCfg, exists := ref.op.Outers[left.stream.id]
	if !exists {
		osi := p.allocStream(left.stream.schema.Concat(rscan.Out),
			append(append([]origin{}, left.stream.origins...), tableOrigins(table)...))
		outCfg = operators.JoinOuter{KeyCols: j.LeftKeys, OutStream: osi.id}
		ref.op.Outers[left.stream.id] = outCfg
		ref.outerKeys[left.stream.id] = j.LeftKeys
	}
	oe := p.edge(left.node, ref.node)
	innerPred := rscan.Pred
	step := stepBinding{node: ref.node, makeSpec: func(params []types.Value) interface{} {
		return operators.IndexJoinSpec{InnerResidual: expr.Bind(innerPred, params)}
	}}
	return compiled{
		node:   ref.node,
		stream: p.streams[outCfg.OutStream],
		steps:  append(left.steps, step),
		edges:  append(left.edges, oe),
	}, nil
}

// compileGroup merges group-bys whose group keys and aggregates have the
// same provenance signature.
func (p *GlobalPlan) compileGroup(s *Statement, g *sql.Group) (compiled, error) {
	c, err := p.compile(s, g.In)
	if err != nil {
		return compiled{}, err
	}
	var sigParts []string
	for _, col := range g.GroupCols {
		sigParts = append(sigParts, c.stream.origins[col].String())
	}
	aggs := make([]operators.AggDef, len(g.Aggs))
	aggArgs := make([]expr.Expr, len(g.Aggs))
	for i, a := range g.Aggs {
		aggs[i] = operators.AggDef{Kind: operators.AggKind(a.Func), Distinct: a.Distinct}
		aggArgs[i] = a.Arg
		sigParts = append(sigParts, fmt.Sprintf("%s|%v|%s", a.Func, a.Distinct,
			originString(a.Arg, c.stream.origins, s.ID)))
	}
	sig := fmt.Sprintf("group|%s", strings.Join(sigParts, ","))

	ref, ok := p.groupNodes[sig]
	if !ok {
		origins := make([]origin, g.Out.Len())
		for i, col := range g.GroupCols {
			origins[i] = c.stream.origins[col]
		}
		for i, a := range g.Aggs {
			origins[len(g.GroupCols)+i] = origin{Synth: a.Name}
		}
		osi := p.allocStream(g.Out, origins)
		op := &operators.GroupOp{
			Streams:   map[int]operators.GroupStream{},
			Aggs:      aggs,
			OutStream: osi.id,
		}
		node := p.addNode("Γ("+strings.Join(sigParts, ",")+")", op)
		ref = &groupRef{node: node, op: op, outStream: osi.id}
		p.groupNodes[sig] = ref
	}
	if _, exists := ref.op.Streams[c.stream.id]; !exists {
		ref.op.Streams[c.stream.id] = operators.GroupStream{GroupCols: g.GroupCols, AggArgs: aggArgs}
	}
	e := p.edge(c.node, ref.node)
	// Incremental-state binding: the group-by's input is a direct shared
	// ClockScan, so its aggregate table can be maintained as persistent
	// NodeState across generations.
	if c.foldTable != "" && len(c.steps) == 1 {
		s.incs = append(s.incs, incBinding{
			node:     ref.node,
			op:       ref.op,
			scanNode: c.node,
			scanEdge: e,
			table:    p.db.Table(c.foldTable),
			pred:     c.foldPred,
		})
	}
	having := g.Having
	scalar := len(g.GroupCols) == 0
	step := stepBinding{node: ref.node, makeSpec: func(params []types.Value) interface{} {
		return operators.GroupSpec{Having: expr.Bind(having, params), Scalar: scalar}
	}}
	return compiled{
		node:   ref.node,
		stream: p.streams[ref.outStream],
		steps:  append(c.steps, step),
		edges:  append(c.edges, e),
	}, nil
}

// compileSort merges sorts (and Top-Ns, which are sorts with per-query
// limits) whose keys have the same provenance signature.
func (p *GlobalPlan) compileSort(s *Statement, c compiled, srt *sql.Sort, limit int) (compiled, error) {
	var sigParts []string
	keys := make([]operators.SortKey, len(srt.Keys))
	for i, k := range srt.Keys {
		keys[i] = operators.SortKey{E: k.Expr, Desc: k.Desc}
		sigParts = append(sigParts, fmt.Sprintf("%s|%v", originString(k.Expr, c.stream.origins, s.ID), k.Desc))
	}
	sig := "sort|" + strings.Join(sigParts, ",")
	ref, ok := p.sortNodes[sig]
	if !ok {
		op := &operators.SortOp{Streams: map[int]operators.SortStream{}}
		node := p.addNode("sort("+strings.Join(sigParts, ",")+")", op)
		ref = &sortRef{node: node, op: op}
		p.sortNodes[sig] = ref
	}
	if _, exists := ref.op.Streams[c.stream.id]; !exists {
		// Group-by output is per-(group, query) — every tuple carries exactly
		// one query id — which is the precondition for the sort's bounded
		// Top-N heap mode (grouped Top-N pushdown).
		_, fromGroup := c.node.Op.(*operators.GroupOp)
		ref.op.Streams[c.stream.id] = operators.SortStream{Keys: keys, OutStream: c.stream.id, Singleton: fromGroup}
	}
	e := p.edge(c.node, ref.node)
	lim := limit
	step := stepBinding{node: ref.node, makeSpec: func([]types.Value) interface{} {
		return operators.SortSpec{Limit: lim}
	}}
	return compiled{
		node:   ref.node,
		stream: c.stream,
		steps:  append(c.steps, step),
		edges:  append(c.edges, e),
	}, nil
}

// originString renders a bound expression with column references replaced
// by their provenance, for sharing signatures. Expressions containing
// parameters are never shareable across statements: the statement id is
// mixed into their signature.
func originString(e expr.Expr, origins []origin, stmtID int) string {
	if e == nil {
		return ""
	}
	var hasParam bool
	var render func(e expr.Expr) string
	render = func(e expr.Expr) string {
		switch x := e.(type) {
		case *expr.ColRef:
			if x.Idx < len(origins) {
				return origins[x.Idx].String()
			}
			return fmt.Sprintf("$%d", x.Idx)
		case *expr.Const:
			return x.Val.String()
		case *expr.Param:
			hasParam = true
			return fmt.Sprintf("?%d", x.Idx)
		case *expr.Cmp:
			return "(" + render(x.L) + x.Op.String() + render(x.R) + ")"
		case *expr.Arith:
			return "(" + render(x.L) + x.Op.String() + render(x.R) + ")"
		case *expr.And:
			parts := make([]string, len(x.Kids))
			for i, k := range x.Kids {
				parts[i] = render(k)
			}
			return "(" + strings.Join(parts, " AND ") + ")"
		case *expr.Or:
			parts := make([]string, len(x.Kids))
			for i, k := range x.Kids {
				parts[i] = render(k)
			}
			return "(" + strings.Join(parts, " OR ") + ")"
		case *expr.Not:
			return "NOT " + render(x.Kid)
		default:
			return fmt.Sprintf("%T", e)
		}
	}
	out := render(e)
	if hasParam {
		out += fmt.Sprintf("@stmt%d", stmtID)
	}
	return out
}
