package plan

import (
	"shareddb/internal/operators"
	"shareddb/internal/queryset"
	"shareddb/internal/types"
)

// Activation is one live query of a generation: a statement instance with
// its parameters and a generation-unique query id.
type Activation struct {
	QID    queryset.QueryID
	Stmt   *Statement
	Params []types.Value
}

// RunGeneration executes one heartbeat of the global plan (paper §3.2):
// every activation's tasks are queued at the operators along its path, edge
// query-sets are installed, and all active nodes are started for generation
// gen reading snapshot ts. onTuple receives every tuple reaching the sink;
// onDone fires when the generation has fully drained.
//
// RunGeneration returns immediately; completion is signaled via onDone. The
// caller must not start the next generation before onDone (the generation
// barrier is what makes edge/plan mutation safe).
func (p *GlobalPlan) RunGeneration(gen, ts uint64, acts []Activation, onTuple func(stream int, t operators.Tuple), onDone func()) {
	p.mu.Lock()

	if len(acts) == 0 {
		p.mu.Unlock()
		onDone()
		return
	}

	// reset per-generation edge state
	for _, e := range p.edges {
		e.SetQueries(queryset.Set{})
	}

	tasks := map[*operators.Node][]operators.Task{}
	edgeQ := map[*operators.Edge][]queryset.QueryID{}
	for _, a := range acts {
		for _, st := range a.Stmt.steps {
			tasks[st.node] = append(tasks[st.node], operators.Task{Query: a.QID, Spec: st.makeSpec(a.Params)})
		}
		for _, e := range a.Stmt.pathEdges {
			edgeQ[e] = append(edgeQ[e], a.QID)
		}
	}
	for e, ids := range edgeQ {
		e.SetQueries(queryset.Of(ids...))
	}

	activeProducers := func(n *operators.Node) int {
		c := 0
		for _, e := range n.Producers {
			if !e.Queries().Empty() {
				c++
			}
		}
		return c
	}

	p.SinkOp.SetHandler(onTuple)
	p.sink.Inbox().Push(operators.Message{Ctrl: &operators.CycleStart{
		Gen: gen, TS: ts,
		ActiveProducers: activeProducers(p.sink),
		OnDone:          onDone,
	}})
	for n, nt := range tasks {
		n.Inbox().Push(operators.Message{Ctrl: &operators.CycleStart{
			Gen: gen, TS: ts, Tasks: nt,
			ActiveProducers: activeProducers(n),
		}})
	}
	p.mu.Unlock()
}
