package plan

import (
	"shareddb/internal/operators"
	"shareddb/internal/queryset"
	"shareddb/internal/types"
)

// Activation is one live query of a generation: a statement instance with
// its parameters and a generation-unique query id.
type Activation struct {
	QID    queryset.QueryID
	Stmt   *Statement
	Params []types.Value
}

// RunGeneration executes one heartbeat of the global plan (paper §3.2):
// every activation's tasks are queued at the operators along its path, edge
// query-sets are installed for this generation, and all active nodes are
// started for generation gen reading snapshot ts. onTuple receives every
// tuple reaching the sink; onDone fires when the generation has fully
// drained.
//
// RunGeneration returns immediately; completion is signaled via onDone.
// Generations pipeline: the caller may start generation N+1 while earlier
// generations are still draining — routing state (edge query sets, the sink
// handler) is keyed by generation, each node runs its cycles in generation
// order, and messages carry their generation tag so overlapping generations
// never observe each other's tuples. Generations must be dispatched in
// increasing gen order, and plan mutation (Prepare) still requires all
// generations to have drained.
func (p *GlobalPlan) RunGeneration(gen, ts uint64, acts []Activation, onTuple func(stream int, t operators.Tuple), onDone func()) {
	p.mu.Lock()

	if len(acts) == 0 {
		p.mu.Unlock()
		onDone()
		return
	}

	tasks := map[*operators.Node][]operators.Task{}
	edgeQ := map[*operators.Edge][]queryset.QueryID{}
	for _, a := range acts {
		for _, st := range a.Stmt.steps {
			tasks[st.node] = append(tasks[st.node], operators.Task{Query: a.QID, Spec: st.makeSpec(a.Params)})
		}
		for _, e := range a.Stmt.pathEdges {
			edgeQ[e] = append(edgeQ[e], a.QID)
		}
	}
	activated := make([]*operators.Edge, 0, len(edgeQ))
	for e, ids := range edgeQ {
		e.SetQueries(gen, queryset.Of(ids...))
		activated = append(activated, e)
	}

	activeProducers := func(n *operators.Node) int {
		c := 0
		for _, e := range n.Producers {
			if !e.QueriesFor(gen).Empty() {
				c++
			}
		}
		return c
	}

	workers := p.workers
	if workers < 1 {
		workers = 1
	}
	p.SinkOp.SetHandler(gen, onTuple)
	// The sink is the last node to finish a generation (every active node's
	// EOS must reach it), so by the time its cycle completes every emitter
	// has snapshotted this generation's edge sets and they can be dropped.
	done := func() {
		for _, e := range activated {
			e.ClearQueries(gen)
		}
		onDone()
	}
	p.sink.Inbox().Push(operators.Message{Ctrl: &operators.CycleStart{
		Gen: gen, TS: ts,
		ActiveProducers: activeProducers(p.sink),
		Workers:         workers,
		OnDone:          done,
	}})
	for n, nt := range tasks {
		n.Inbox().Push(operators.Message{Ctrl: &operators.CycleStart{
			Gen: gen, TS: ts, Tasks: nt,
			ActiveProducers: activeProducers(n),
			Workers:         workers,
		}})
	}
	p.mu.Unlock()
}
