package plan

import (
	"fmt"
	"sort"
	"strings"

	"shareddb/internal/expr"
	"shareddb/internal/operators"
	"shareddb/internal/queryset"
	"shareddb/internal/storage"
	"shareddb/internal/types"
)

// Activation is one live query of a generation: a statement instance with
// its parameters and a generation-unique query id.
type Activation struct {
	QID    queryset.QueryID
	Stmt   *Statement
	Params []types.Value
}

// incAct is one activation covered by a node's incremental-state candidacy.
type incAct struct {
	qid    queryset.QueryID
	stmt   int
	params []types.Value
	pred   expr.Expr // unbound scan predicate from the activation's binding
}

// incCand accumulates the activations that reach one stateful node through
// its incremental binding this generation.
type incCand struct {
	b    incBinding
	acts []incAct
	ok   bool // false when bindings disagree on the scan edge/table
}

// RunGeneration executes one heartbeat of the global plan (paper §3.2):
// every activation's tasks are queued at the operators along its path, edge
// query-sets are installed for this generation, and all active nodes are
// started for generation gen reading snapshot ts. onTuple receives every
// tuple reaching the sink; onDone fires when the generation has fully
// drained.
//
// delta, when non-nil, turns on incremental node state for this generation:
// it is the accumulated write delta since the previous incremental
// generation, with delta.ToTS == ts (the generation barrier makes it exact).
// Eligible stateful nodes (hash-join build sides and group-by aggregate
// tables fed by a direct base-table scan, when every activation at the node
// is so bound) skip their scan input and instead prime from the table or
// reuse their maintained state by applying the delta in place. A nil delta
// is byte-identical to the pre-incremental engine.
//
// RunGeneration returns immediately; completion is signaled via onDone.
// Generations pipeline: the caller may start generation N+1 while earlier
// generations are still draining — routing state (edge query sets, the sink
// handler) is keyed by generation, each node runs its cycles in generation
// order, and messages carry their generation tag so overlapping generations
// never observe each other's tuples. Generations must be dispatched in
// increasing gen order, and plan mutation (Prepare) still requires all
// generations to have drained. The prime/reuse decision below is likewise
// safe under pipelining: it runs at dispatch time in generation order, and
// each node applies the resulting state mutations cycle-by-cycle in that
// same order.
func (p *GlobalPlan) RunGeneration(gen, ts uint64, acts []Activation, delta *storage.Delta, onTuple func(stream int, t operators.Tuple), onDone func()) {
	p.mu.Lock()

	if len(acts) == 0 {
		p.mu.Unlock()
		onDone()
		return
	}

	incCycles, skipTask, skipEdge := p.decideIncremental(ts, acts, delta)
	colCycles, skipTask, skipEdge := p.decideColumnarAgg(acts, incCycles, skipTask, skipEdge)

	tasks := map[*operators.Node][]operators.Task{}
	edgeQ := map[*operators.Edge][]queryset.QueryID{}
	for _, a := range acts {
		for _, st := range a.Stmt.steps {
			if skipTask[st.node] != nil && skipTask[st.node][a.QID] {
				continue
			}
			tasks[st.node] = append(tasks[st.node], operators.Task{Query: a.QID, Spec: st.makeSpec(a.Params)})
		}
		for _, e := range a.Stmt.pathEdges {
			if skipEdge[e] != nil && skipEdge[e][a.QID] {
				continue
			}
			edgeQ[e] = append(edgeQ[e], a.QID)
		}
	}
	activated := make([]*operators.Edge, 0, len(edgeQ))
	for e, ids := range edgeQ {
		e.SetQueries(gen, queryset.Of(ids...))
		activated = append(activated, e)
	}

	activeProducers := func(n *operators.Node) int {
		c := 0
		for _, e := range n.Producers {
			if !e.QueriesFor(gen).Empty() {
				c++
			}
		}
		return c
	}

	workers := p.workers
	if workers < 1 {
		workers = 1
	}
	// Per-generation cost attribution closure: node cycles report their
	// operator-active time tagged with this generation (pipelined
	// generations attribute independently). Every node drains a generation
	// before the sink does, so by sink-OnDone the attribution is complete.
	var costObserve func(tasks []operators.Task, activeNs int64)
	if ob := p.costObserver; ob != nil {
		costObserve = func(tasks []operators.Task, activeNs int64) { ob(gen, tasks, activeNs) }
	}
	p.SinkOp.SetHandler(gen, onTuple)
	// The sink is the last node to finish a generation (every active node's
	// EOS must reach it), so by the time its cycle completes every emitter
	// has snapshotted this generation's edge sets and they can be dropped.
	done := func() {
		for _, e := range activated {
			e.ClearQueries(gen)
		}
		onDone()
	}
	p.sink.Inbox().Push(operators.Message{Ctrl: &operators.CycleStart{
		Gen: gen, TS: ts,
		ActiveProducers: activeProducers(p.sink),
		Workers:         workers,
		Columnar:        p.columnar,
		Pool:            p.workerPool,
		CostObserve:     costObserve,
		OnDone:          done,
	}})
	for n, nt := range tasks {
		n.Inbox().Push(operators.Message{Ctrl: &operators.CycleStart{
			Gen: gen, TS: ts, Tasks: nt,
			ActiveProducers: activeProducers(n),
			Workers:         workers,
			Columnar:        p.columnar,
			Pool:            p.workerPool,
			CostObserve:     costObserve,
			Inc:             incCycles[n],
			Col:             colCycles[n],
		}})
	}
	p.mu.Unlock()
}

// decideIncremental picks, per stateful node, whether this generation runs
// on maintained state — and if so whether the state can be reused (delta
// applied in place) or must be reprimed from the base table. A node
// qualifies only when EVERY activation touching it this generation arrives
// through an incremental binding on the same scan edge; partial coverage
// falls back to the classic rebuild so shared-but-unbound queries still see
// the full build input. Returns the per-node incremental activations plus
// the scan tasks and edge memberships to suppress (the operator builds its
// own input, so the covered queries must not also stream the scan).
// Caller holds p.mu.
func (p *GlobalPlan) decideIncremental(ts uint64, acts []Activation, delta *storage.Delta) (
	incCycles map[*operators.Node]*operators.IncCycle,
	skipTask map[*operators.Node]map[queryset.QueryID]bool,
	skipEdge map[*operators.Edge]map[queryset.QueryID]bool,
) {
	if delta == nil {
		return nil, nil, nil
	}
	counts := map[*operators.Node]int{}
	cands := map[*operators.Node]*incCand{}
	for _, a := range acts {
		for _, st := range a.Stmt.steps {
			counts[st.node]++
		}
		for _, b := range a.Stmt.incs {
			c := cands[b.node]
			if c == nil {
				c = &incCand{b: b, ok: true}
				cands[b.node] = c
			}
			if c.b.scanEdge != b.scanEdge || c.b.table != b.table {
				c.ok = false
			}
			c.acts = append(c.acts, incAct{qid: a.QID, stmt: a.Stmt.ID, params: a.Params, pred: b.pred})
		}
	}
	if len(cands) == 0 {
		return nil, nil, nil
	}

	incCycles = map[*operators.Node]*operators.IncCycle{}
	skipTask = map[*operators.Node]map[queryset.QueryID]bool{}
	skipEdge = map[*operators.Edge]map[queryset.QueryID]bool{}
	for n, c := range cands {
		if !c.ok || len(c.acts) != counts[n] {
			continue
		}
		switch op := c.b.op.(type) {
		case *operators.HashJoinOp:
			if op.ByQueryID {
				continue
			}
		case *operators.GroupOp:
			if len(op.Streams) != 1 {
				continue
			}
		default:
			continue
		}
		sort.Slice(c.acts, func(i, j int) bool { return c.acts[i].qid < c.acts[j].qid })

		// The state signature captures exactly what the maintained state
		// depends on: which queries it routes (dense per-generation QIDs),
		// which statements they instantiate, and their parameter bindings.
		// Matching signature + chained snapshot ⇒ the delta alone brings the
		// state to this generation.
		var sb strings.Builder
		for _, a := range c.acts {
			fmt.Fprintf(&sb, "%d|%d|%s;", a.qid, a.stmt, types.EncodeKey(a.params...))
		}
		sig := sb.String()

		mode := operators.IncPrime
		if st := p.inc[n]; st != nil && st.sig == sig && st.ts == delta.FromTS {
			mode = operators.IncReuse
		}
		if p.inc == nil {
			p.inc = map[*operators.Node]*incNodeState{}
		}
		p.inc[n] = &incNodeState{sig: sig, ts: ts}

		preds := make([]operators.IncPred, len(c.acts))
		for i, a := range c.acts {
			preds[i] = operators.IncPred{QID: a.qid, Pred: expr.Bind(a.pred, a.params)}
		}
		ic := &operators.IncCycle{Mode: mode, Table: c.b.table, Preds: preds}
		if mode == operators.IncReuse {
			ic.Delta = delta.Table(c.b.table.Name())
		}
		incCycles[n] = ic

		st := skipTask[c.b.scanNode]
		if st == nil {
			st = map[queryset.QueryID]bool{}
			skipTask[c.b.scanNode] = st
		}
		se := skipEdge[c.b.scanEdge]
		if se == nil {
			se = map[queryset.QueryID]bool{}
			skipEdge[c.b.scanEdge] = se
		}
		for _, a := range c.acts {
			st[a.qid] = true
			se[a.qid] = true
		}
	}
	return incCycles, skipTask, skipEdge
}

// decideColumnarAgg picks, per eligible group-by node, whether this
// generation's aggregation runs as a columnar pushdown: the node feeds
// itself from the table's columnar mirror (operators.ColCycle) and the
// scan→group stream is silenced for the covered queries — the aggregation
// consumes typed vectors via the stride-kernel scan instead of materialized
// row batches. Eligibility mirrors decideIncremental: every activation at
// the node must arrive through its incremental binding (a direct base-table
// ClockScan into a single-stream GroupOp), and nodes already claimed by
// incremental state keep it (maintained state supersedes a re-scan). Only
// active when the plan is in columnar mode. Caller holds p.mu.
func (p *GlobalPlan) decideColumnarAgg(acts []Activation, incCycles map[*operators.Node]*operators.IncCycle,
	skipTask map[*operators.Node]map[queryset.QueryID]bool,
	skipEdge map[*operators.Edge]map[queryset.QueryID]bool,
) (map[*operators.Node]*operators.ColCycle,
	map[*operators.Node]map[queryset.QueryID]bool,
	map[*operators.Edge]map[queryset.QueryID]bool,
) {
	if !p.columnar {
		return nil, skipTask, skipEdge
	}
	counts := map[*operators.Node]int{}
	cands := map[*operators.Node]*incCand{}
	for _, a := range acts {
		for _, st := range a.Stmt.steps {
			counts[st.node]++
		}
		for _, b := range a.Stmt.incs {
			if _, isGroup := b.op.(*operators.GroupOp); !isGroup {
				continue
			}
			c := cands[b.node]
			if c == nil {
				c = &incCand{b: b, ok: true}
				cands[b.node] = c
			}
			if c.b.scanEdge != b.scanEdge || c.b.table != b.table {
				c.ok = false
			}
			c.acts = append(c.acts, incAct{qid: a.QID, stmt: a.Stmt.ID, params: a.Params, pred: b.pred})
		}
	}
	if len(cands) == 0 {
		return nil, skipTask, skipEdge
	}

	var colCycles map[*operators.Node]*operators.ColCycle
	for n, c := range cands {
		if incCycles[n] != nil {
			continue
		}
		if !c.ok || len(c.acts) != counts[n] {
			continue
		}
		if op := c.b.op.(*operators.GroupOp); len(op.Streams) != 1 {
			continue
		}
		sort.Slice(c.acts, func(i, j int) bool { return c.acts[i].qid < c.acts[j].qid })
		preds := make([]operators.IncPred, len(c.acts))
		for i, a := range c.acts {
			preds[i] = operators.IncPred{QID: a.qid, Pred: expr.Bind(a.pred, a.params)}
		}
		if colCycles == nil {
			colCycles = map[*operators.Node]*operators.ColCycle{}
		}
		colCycles[n] = &operators.ColCycle{Table: c.b.table, Preds: preds}
		p.colAggCycles++

		if skipTask == nil {
			skipTask = map[*operators.Node]map[queryset.QueryID]bool{}
		}
		if skipEdge == nil {
			skipEdge = map[*operators.Edge]map[queryset.QueryID]bool{}
		}
		st := skipTask[c.b.scanNode]
		if st == nil {
			st = map[queryset.QueryID]bool{}
			skipTask[c.b.scanNode] = st
		}
		se := skipEdge[c.b.scanEdge]
		if se == nil {
			se = map[queryset.QueryID]bool{}
			skipEdge[c.b.scanEdge] = se
		}
		for _, a := range c.acts {
			st[a.qid] = true
			se[a.qid] = true
		}
	}
	return colCycles, skipTask, skipEdge
}
