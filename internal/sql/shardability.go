package sql

// Statement shardability classification for the hash-partitioned engine
// (internal/shard): tables are either *partitioned* — each shard owns the
// rows whose partition key (by default the primary key) hashes to it — or
// *replicated* — every shard holds a full copy (dimension tables, tables
// without a primary key). PlanShards decides, per statement and at prepare
// time,
//
//   - where the statement's work lives: one owning shard (writes and reads
//     pinning a full partition key), any single shard (reads touching only
//     replicated tables), or every shard (broadcast), and
//   - how per-shard results recombine into the client result: concatenation
//     in shard order, a k-way merge preserving ORDER BY, or partial-
//     aggregate recombination for GROUP BY — including a rewrite of the
//     per-shard statement when the original's results are not mergeable
//     (sort keys outside the projection, AVG, DISTINCT aggregates).
//
// Joins are only shardable when every pair of matching rows is guaranteed
// co-located: each join edge must touch at most one partitioned table
// (replicated tables join anywhere), or pair the partition keys of both
// partitioned tables (a co-partitioned join). Non-co-located joins are
// rejected at prepare time with a placement hint — the same contract as
// distributed SQL engines built on hash partitioning plus reference
// tables.
//
// The recombination contracts follow the partition/merge template of the
// intra-node worker pool (internal/par): deterministic merges over
// partitioned state, with AVG shipped as sum+count pairs and DISTINCT
// aggregates shipped as per-shard-deduplicated value sets (here: extra
// GROUP BY columns), never as unmergeable finals.

import (
	"fmt"

	"shareddb/internal/expr"
	"shareddb/internal/types"
)

// ShardCatalog extends Catalog with the placement metadata the router
// partitions on.
type ShardCatalog interface {
	Catalog
	// TablePlacement reports how the table is distributed: the schema
	// column indices of its partition key, or replicated=true for tables
	// fully copied to every shard. ok=false for unknown tables.
	TablePlacement(table string) (partCols []int, replicated bool, ok bool)
}

// RouteKind says where a statement executes.
type RouteKind uint8

// Route kinds.
const (
	// RouteBroadcast fans the statement out to every shard.
	RouteBroadcast RouteKind = iota
	// RoutePoint sends the statement to the one shard owning the
	// partition key pinned by the statement (INSERT values, or a full
	// partition-key equality predicate).
	RoutePoint
	// RouteAny lets any single shard answer (reads over replicated tables
	// only) — the router load-balances across shards.
	RouteAny
)

// MergeKind enumerates how per-shard read results recombine.
type MergeKind uint8

// Merge kinds.
const (
	// MergeConcat concatenates per-shard results in shard order.
	MergeConcat MergeKind = iota
	// MergeOrdered k-way merges per-shard results on the statement's sort
	// keys (ties keep shard order) and re-cuts LIMIT.
	MergeOrdered
	// MergeGrouped recombines per-shard partial aggregates by group key,
	// then applies HAVING, ORDER BY, LIMIT, projection and DISTINCT.
	MergeGrouped
)

// AggMerge describes how one output aggregate recombines from the partial
// statement's output columns. Positions index the per-shard result row; -1
// marks unused components.
type AggMerge struct {
	Func     AggFunc
	Distinct bool
	// ArgPos (DISTINCT aggregates): the partial-output column carrying the
	// aggregate's argument values — the partial statement groups by the
	// argument, so each shard ships its distinct (group, value) pairs and
	// the router re-deduplicates across shards.
	ArgPos int
	// Sum/Count/Min/Max positions of the partial aggregates. AVG uses
	// SumPos+CountPos (sum of sums over sum of counts); COUNT uses
	// CountPos; SUM/MIN/MAX their own.
	SumPos, CountPos, MinPos, MaxPos int
}

// MergeSpec is the per-statement recipe, compiled at prepare time, for
// recombining per-shard results into the client result.
type MergeSpec struct {
	Kind MergeKind

	// Limit re-cuts the merged stream (-1 = none). Per-shard statements
	// keep their own LIMIT where a shard's top-N is a superset of its
	// contribution to the global top-N.
	Limit int
	// Distinct dedups merged rows on the projected columns. The per-shard
	// rewrite strips SELECT DISTINCT whenever rows must merge before
	// deduplication (ordered and grouped merges).
	Distinct bool

	// MergeOrdered: compare merged rows on SortCols/SortDesc (positions in
	// the per-shard output); Strip trailing columns were appended by the
	// rewrite to carry sort keys and are cut after the merge.
	SortCols []int
	SortDesc []bool
	Strip    int

	// MergeGrouped: the first GroupCols columns of a per-shard row are the
	// statement's group key; Aggs recombine the rest. The recombined row
	// layout is [group cols ++ aggregate results] — exactly the grouped
	// pipeline's output schema — over which Having, SortKeys and Project
	// are bound. Scalar statements (no GROUP BY) produce exactly one row,
	// with SQL's empty-input defaults when no shard contributes.
	GroupCols int
	Aggs      []AggMerge
	Scalar    bool
	Having    expr.Expr
	SortKeys  []SortKey
	Project   []expr.Expr
}

// ShardStatement is the shardability classification of one statement.
type ShardStatement struct {
	Route RouteKind
	// KeyExprs (RoutePoint): the partition-key value expressions in
	// partition-column order; evaluated with the activation's parameters
	// they identify the owning shard.
	KeyExprs []expr.Expr

	// Reads: Exec is the statement every shard prepares (the original, or
	// a partial rewrite) and Merge how its results recombine (nil = pass
	// the answering shard's result through unchanged). OutSchema is the
	// client-visible result schema.
	Exec      *SelectStmt
	Merge     *MergeSpec
	OutSchema *types.Schema

	// Writes: the bound write plan. WriteReplicated marks writes to a
	// replicated table — they broadcast and every shard applies the same
	// mutation (the router reports one shard's RowsAffected instead of
	// the sum). UpdatesKey flags an UPDATE assigning a partition-key
	// column — rows cannot migrate between shards, so the router rejects
	// these on multi-shard deployments.
	Write           *WritePlan
	WriteReplicated bool
	UpdatesKey      bool
}

// PlanShards classifies a parsed statement for execution over hash-
// partitioned shards.
func PlanShards(stmt Statement, cat ShardCatalog) (*ShardStatement, error) {
	switch s := stmt.(type) {
	case *SelectStmt:
		return planShardSelect(s, cat)
	case *InsertStmt:
		wp, err := planInsert(s, cat)
		if err != nil {
			return nil, err
		}
		cols, replicated, ok := cat.TablePlacement(s.Table)
		if !ok {
			return nil, fmt.Errorf("sql: unknown table %q", s.Table)
		}
		out := &ShardStatement{Write: wp}
		if replicated || len(cols) == 0 {
			out.Route = RouteBroadcast
			out.WriteReplicated = true
			return out, nil
		}
		out.Route = RoutePoint
		for _, c := range cols {
			out.KeyExprs = append(out.KeyExprs, wp.Values[c])
		}
		return out, nil
	case *UpdateStmt:
		wp, err := planUpdate(s, cat)
		if err != nil {
			return nil, err
		}
		out, cols, err := classifyPredWrite(wp, cat)
		if err != nil {
			return nil, err
		}
		for _, sc := range wp.Set {
			for _, c := range cols {
				if sc.Col == c {
					out.UpdatesKey = true
				}
			}
		}
		return out, nil
	case *DeleteStmt:
		wp, err := planDelete(s, cat)
		if err != nil {
			return nil, err
		}
		out, _, err := classifyPredWrite(wp, cat)
		return out, err
	default:
		return nil, fmt.Errorf("sql: statement %T cannot be classified for sharding", stmt)
	}
}

// classifyPredWrite routes an UPDATE/DELETE: replicated tables broadcast
// (every copy applies the mutation); partitioned tables go to the owning
// shard when the predicate pins the full partition key by equality, else
// broadcast (partitions are disjoint, so the union of per-shard effects
// equals the unsharded write).
func classifyPredWrite(wp *WritePlan, cat ShardCatalog) (*ShardStatement, []int, error) {
	cols, replicated, ok := cat.TablePlacement(wp.Table)
	if !ok {
		return nil, nil, fmt.Errorf("sql: unknown table %q", wp.Table)
	}
	out := &ShardStatement{Route: RouteBroadcast, Write: wp}
	if replicated || len(cols) == 0 {
		out.WriteReplicated = true
		return out, nil, nil
	}
	if keys := keyEqualityExprs(wp.Pred, cols); keys != nil {
		out.Route = RoutePoint
		out.KeyExprs = keys
	}
	return out, cols, nil
}

// keyEqualityExprs extracts the partition key's value expressions from the
// top-level equality conjuncts of pred, or nil when the predicate does not
// pin every key column. Matching mirrors the engine's index selection: the
// first `col = operand` conjunct per column wins, operands are constants or
// parameters.
func keyEqualityExprs(pred expr.Expr, keyCols []int) []expr.Expr {
	eq := map[int]expr.Expr{}
	for _, c := range expr.Conjuncts(pred) {
		col, operand, ok := eqOperand(c)
		if !ok {
			continue
		}
		if _, dup := eq[col]; !dup {
			eq[col] = operand
		}
	}
	keys := make([]expr.Expr, len(keyCols))
	for i, c := range keyCols {
		e, ok := eq[c]
		if !ok {
			return nil
		}
		keys[i] = e
	}
	return keys
}

// eqOperand recognizes col = operand where operand is a constant or a
// statement parameter.
func eqOperand(e expr.Expr) (col int, operand expr.Expr, ok bool) {
	c, isCmp := e.(*expr.Cmp)
	if !isCmp || c.Op != expr.EQ {
		return 0, nil, false
	}
	if cr, o := c.L.(*expr.ColRef); o && isRoutingOperand(c.R) {
		return cr.Idx, c.R, true
	}
	if cr, o := c.R.(*expr.ColRef); o && isRoutingOperand(c.L) {
		return cr.Idx, c.L, true
	}
	return 0, nil, false
}

func isRoutingOperand(e expr.Expr) bool {
	switch e.(type) {
	case *expr.Const, *expr.Param:
		return true
	}
	return false
}

// fromPlacement is the placement of one FROM entry.
type fromPlacement struct {
	name       string
	partCols   []int // local schema indices; nil when replicated
	replicated bool
	offset     int // first column in the combined (join output) schema
	width      int
}

// planShardSelect classifies a SELECT. The original statement is bound once
// (against any shard's catalog — schemas are identical) to recover the
// peeled logical shape: Distinct → Project → Limit → Sort → [Group] → rest.
func planShardSelect(s *SelectStmt, cat ShardCatalog) (*ShardStatement, error) {
	lp, err := PlanSelect(s, cat)
	if err != nil {
		return nil, err
	}
	cur := lp
	distinct := false
	if d, ok := cur.(*Distinct); ok {
		distinct = true
		cur = d.In
	}
	proj, ok := cur.(*Project)
	if !ok {
		return nil, fmt.Errorf("sql: expected projection at plan root, got %T", cur)
	}
	cur = proj.In
	limit := -1
	if l, ok := cur.(*Limit); ok {
		limit = l.N
		cur = l.In
	}
	var srt *Sort
	if x, ok := cur.(*Sort); ok {
		srt = x
		cur = x.In
	}
	var grp *Group
	if x, ok := cur.(*Group); ok {
		grp = x
		cur = x.In
	}

	// Placement of every FROM entry, with its offset in the combined join
	// output schema (FROM order, left-deep — the same layout PlanSelect
	// binds against).
	tables := make([]fromPlacement, len(s.From))
	offset := 0
	partitioned := 0
	for i, ref := range s.From {
		schema, ok := cat.TableSchema(ref.Table)
		if !ok {
			return nil, fmt.Errorf("sql: unknown table %q", ref.Table)
		}
		cols, replicated, ok := cat.TablePlacement(ref.Table)
		if !ok {
			return nil, fmt.Errorf("sql: unknown table %q", ref.Table)
		}
		tables[i] = fromPlacement{name: ref.Table, partCols: cols,
			replicated: replicated || len(cols) == 0, offset: offset, width: schema.Len()}
		if !tables[i].replicated {
			partitioned++
		}
		offset += schema.Len()
	}

	out := &ShardStatement{OutSchema: proj.Out}

	// Reads over replicated tables only: any single shard holds all the
	// data — the router load-balances and passes the result through.
	if partitioned == 0 {
		out.Route = RouteAny
		out.Exec = s
		return out, nil
	}

	// Co-location: every pair of partitioned FROM entries must be linked
	// (transitively) by equality between their partition keys, so matching
	// rows share a shard.
	if partitioned >= 2 {
		if err := checkCoLocation(cur, tables); err != nil {
			return nil, err
		}
	}

	// Point route: exactly one partitioned FROM entry whose partition key
	// is fully pinned by equality reads rows that can only live on the
	// owning shard; replicated tables are present there too, so the whole
	// statement (joins, grouping, ordering, LIMIT included) runs unchanged
	// on that shard. A scalar aggregate over the other shards' empty
	// partitions would only contribute neutral elements.
	if partitioned == 1 {
		var pt *fromPlacement
		for i := range tables {
			if !tables[i].replicated {
				pt = &tables[i]
			}
		}
		if scan := scanAt(cur, pt.offset, tables); scan != nil {
			if keys := keyEqualityExprs(scan.Pred, pt.partCols); keys != nil {
				out.Route = RoutePoint
				out.KeyExprs = keys
				out.Exec = s
				return out, nil
			}
		}
	}

	out.Route = RouteBroadcast
	switch {
	case grp != nil:
		return planGroupedShard(s, out, grp, srt, proj, limit, distinct)
	case srt != nil:
		return planOrderedShard(s, out, srt, proj, limit, distinct)
	default:
		// Concatenation in shard order. The per-shard statement is the
		// original: per-shard DISTINCT only removes rows the router's
		// cross-shard dedup would remove anyway, and a shard's first
		// LIMIT-n distinct rows are a superset of its contribution to the
		// global first n.
		out.Exec = s
		out.Merge = &MergeSpec{Kind: MergeConcat, Limit: limit, Distinct: distinct}
		return out, nil
	}
}

// collectScans returns the base-table scans of a bound plan fragment in
// left-to-right order — FROM order, by PlanSelect's left-deep
// construction.
func collectScans(lp LogicalPlan, out []*Scan) []*Scan {
	switch n := lp.(type) {
	case nil:
		return out
	case *Scan:
		return append(out, n)
	case *Join:
		out = collectScans(n.Left, out)
		return collectScans(n.Right, out)
	case *Filter:
		return collectScans(n.In, out)
	default:
		return out
	}
}

// scanAt returns the scan of the FROM entry at the given combined-schema
// offset.
func scanAt(lp LogicalPlan, offset int, tables []fromPlacement) *Scan {
	scans := collectScans(lp, nil)
	if len(scans) != len(tables) {
		return nil
	}
	for i := range tables {
		if tables[i].offset == offset {
			return scans[i]
		}
	}
	return nil
}

// checkCoLocation verifies that the partitioned FROM entries form one
// component under partition-key-equality edges: an equality (join key or
// residual conjunct) between the single-column partition keys of two
// partitioned entries links them; all partitioned entries must end up
// linked, else matching rows may live on different shards.
func checkCoLocation(lp LogicalPlan, tables []fromPlacement) error {
	entryOf := func(global int) int {
		for i := len(tables) - 1; i >= 0; i-- {
			if global >= tables[i].offset {
				return i
			}
		}
		return 0
	}
	// Union-find over FROM entries.
	parent := make([]int, len(tables))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	// A global equality pair (a, b) links its entries when each side is
	// its (partitioned) entry's single partition-key column.
	link := func(a, b int) {
		ta, tb := entryOf(a), entryOf(b)
		if ta == tb {
			return
		}
		pa, pb := &tables[ta], &tables[tb]
		if pa.replicated || pb.replicated {
			return
		}
		if len(pa.partCols) != 1 || len(pb.partCols) != 1 {
			return
		}
		if a-pa.offset == pa.partCols[0] && b-pb.offset == pb.partCols[0] {
			union(ta, tb)
		}
	}
	var walk func(LogicalPlan)
	walk = func(lp LogicalPlan) {
		switch n := lp.(type) {
		case nil:
		case *Join:
			scans := collectScans(n.Right, nil)
			// Right side of a PlanSelect join is a single base scan; find
			// its entry by matching the schema width boundary: left width
			// is the offset of the right entry.
			if len(scans) == 1 {
				rightOffset := -1
				leftWidth := n.Left.Schema().Len()
				for i := range tables {
					if tables[i].offset == leftWidth {
						rightOffset = tables[i].offset
						break
					}
				}
				if rightOffset >= 0 {
					for i := range n.LeftKeys {
						link(n.LeftKeys[i], rightOffset+n.RightKeys[i])
					}
				}
			}
			walk(n.Left)
			walk(n.Right)
		case *Filter:
			for _, c := range expr.Conjuncts(n.Pred) {
				if cmp, ok := c.(*expr.Cmp); ok && cmp.Op == expr.EQ {
					l, lok := cmp.L.(*expr.ColRef)
					r, rok := cmp.R.(*expr.ColRef)
					if lok && rok {
						link(l.Idx, r.Idx)
					}
				}
			}
			walk(n.In)
		}
	}
	walk(lp)

	root := -1
	for i := range tables {
		if tables[i].replicated {
			continue
		}
		if root < 0 {
			root = find(i)
			continue
		}
		if find(i) != root {
			return fmt.Errorf("sql: tables %q and %q are partitioned but not joined on their partition keys; "+
				"matching rows may live on different shards — replicate one of them or partition on the join key",
				tables[root].name, tables[i].name)
		}
	}
	return nil
}

// planOrderedShard builds the rewrite for ORDER BY without grouping: the
// per-shard statement appends the sort-key expressions to the select list
// (so the router can compare rows the projection dropped the keys from) and
// strips SELECT DISTINCT (rows must merge before deduplication — a shard
// deduplicating locally could under-fill the global LIMIT cut). Per-shard
// ORDER BY and LIMIT stay: each shard ships its own top-N, sorted.
func planOrderedShard(s *SelectStmt, out *ShardStatement, srt *Sort, proj *Project, limit int, distinct bool) (*ShardStatement, error) {
	exec := &SelectStmt{
		Items:   append([]SelectItem{}, s.Items...),
		From:    s.From,
		Where:   s.Where,
		OrderBy: s.OrderBy,
		Limit:   s.Limit,
	}
	spec := &MergeSpec{
		Kind:     MergeOrdered,
		Limit:    limit,
		Distinct: distinct,
		Strip:    len(srt.Keys),
	}
	base := proj.Out.Len()
	for i, oi := range s.OrderBy {
		exec.Items = append(exec.Items, SelectItem{Expr: resolveAlias(oi.Expr, s.Items)})
		spec.SortCols = append(spec.SortCols, base+i)
		spec.SortDesc = append(spec.SortDesc, oi.Desc)
	}
	out.Exec = exec
	out.Merge = spec
	return out, nil
}

// planGroupedShard builds the partial-aggregate rewrite: every shard runs
//
//	SELECT <group cols>, <distinct-agg args>, <partial aggregates>
//	FROM ... WHERE ...
//	GROUP BY <group cols>, <distinct-agg args>
//
// with no HAVING, ORDER BY, LIMIT or DISTINCT — those only apply to the
// recombined groups at the router. AVG ships as a SUM+COUNT pair; DISTINCT
// aggregates extend the group key with the aggregate's argument, so each
// shard ships its distinct (group, value) pairs and the router aggregates
// over the cross-shard-deduplicated value sets. This is also what makes
// HAVING over DISTINCT aggregates work across shards: the HAVING predicate
// evaluates against the recombined aggregate row, never against per-shard
// partials.
func planGroupedShard(s *SelectStmt, out *ShardStatement, grp *Group, srt *Sort, proj *Project, limit int, distinct bool) (*ShardStatement, error) {
	fcs, err := harvestAggCalls(s)
	if err != nil {
		return nil, err
	}
	if len(fcs) != len(grp.Aggs) {
		return nil, fmt.Errorf("sql: aggregate harvest mismatch (%d calls, %d specs)", len(fcs), len(grp.Aggs))
	}

	exec := &SelectStmt{From: s.From, Where: s.Where, Limit: -1}
	for _, gn := range s.GroupBy {
		exec.GroupBy = append(exec.GroupBy, gn)
		exec.Items = append(exec.Items, SelectItem{Expr: gn})
	}

	spec := &MergeSpec{
		Kind:      MergeGrouped,
		Limit:     limit,
		Distinct:  distinct,
		GroupCols: len(grp.GroupCols),
		Scalar:    len(grp.GroupCols) == 0,
		Having:    grp.Having,
		Project:   proj.Exprs,
	}
	if srt != nil {
		spec.SortKeys = srt.Keys
	}

	// Distinct-aggregate arguments become extra group columns. Arguments
	// that already are group columns reuse them; others append one column
	// per distinct bound column.
	argPos := map[int]int{} // bound column index → partial output position
	for i, as := range grp.Aggs {
		if !as.Distinct {
			continue
		}
		cr, isCol := as.Arg.(*expr.ColRef)
		if !isCol {
			return nil, fmt.Errorf("sql: %s(DISTINCT <expression>) cannot be merged across shards; use a plain column argument", as.Func)
		}
		if _, seen := argPos[cr.Idx]; seen {
			continue
		}
		pos := -1
		for j, gc := range grp.GroupCols {
			if gc == cr.Idx {
				pos = j
				break
			}
		}
		if pos < 0 {
			pos = len(exec.Items)
			exec.GroupBy = append(exec.GroupBy, fcs[i].Arg)
			exec.Items = append(exec.Items, SelectItem{Expr: fcs[i].Arg})
		}
		argPos[cr.Idx] = pos
	}

	// Partial aggregates, deduplicated by signature across the statement's
	// aggregates (AVG(x)+SUM(x) share one partial SUM(x)).
	partialPos := map[string]int{}
	addPartial := func(name string, star bool, arg Node) int {
		fc := &FuncCall{Name: name, Star: star, Arg: arg}
		sig := aggSignature(fc)
		if pos, ok := partialPos[sig]; ok {
			return pos
		}
		pos := len(exec.Items)
		partialPos[sig] = pos
		exec.Items = append(exec.Items, SelectItem{Expr: fc})
		return pos
	}
	for i, as := range grp.Aggs {
		am := AggMerge{Func: as.Func, Distinct: as.Distinct,
			ArgPos: -1, SumPos: -1, CountPos: -1, MinPos: -1, MaxPos: -1}
		if as.Distinct {
			cr := as.Arg.(*expr.ColRef)
			am.ArgPos = argPos[cr.Idx]
		} else {
			switch as.Func {
			case AggCount:
				am.CountPos = addPartial("COUNT", fcs[i].Star, fcs[i].Arg)
			case AggSum:
				am.SumPos = addPartial("SUM", false, fcs[i].Arg)
			case AggMin:
				am.MinPos = addPartial("MIN", false, fcs[i].Arg)
			case AggMax:
				am.MaxPos = addPartial("MAX", false, fcs[i].Arg)
			case AggAvg:
				am.SumPos = addPartial("SUM", false, fcs[i].Arg)
				am.CountPos = addPartial("COUNT", false, fcs[i].Arg)
			default:
				return nil, fmt.Errorf("sql: unknown aggregate function %d", as.Func)
			}
		}
		spec.Aggs = append(spec.Aggs, am)
	}

	out.Exec = exec
	out.Merge = spec
	return out, nil
}

// harvestAggCalls walks the select list, HAVING and ORDER BY in the same
// order as buildGroup, returning the deduplicated aggregate calls aligned
// with Group.Aggs.
func harvestAggCalls(s *SelectStmt) ([]*FuncCall, error) {
	var out []*FuncCall
	seen := map[string]bool{}
	var harvest func(Node) error
	harvest = func(n Node) error {
		switch x := n.(type) {
		case nil:
			return nil
		case *FuncCall:
			sig := aggSignature(x)
			if !seen[sig] {
				seen[sig] = true
				out = append(out, x)
			}
			return nil
		case *BinOp:
			if err := harvest(x.L); err != nil {
				return err
			}
			return harvest(x.R)
		case *UnOp:
			return harvest(x.Kid)
		default:
			return nil
		}
	}
	for _, it := range s.Items {
		if err := harvest(it.Expr); err != nil {
			return nil, err
		}
	}
	if err := harvest(s.Having); err != nil {
		return nil, err
	}
	for _, oi := range s.OrderBy {
		if err := harvest(resolveAlias(oi.Expr, s.Items)); err != nil {
			return nil, err
		}
	}
	return out, nil
}
