package sql

import (
	"fmt"
	"strconv"
	"strings"

	"shareddb/internal/types"
)

// Parse parses one SQL statement.
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(tokOp, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errf("unexpected trailing input %q", p.cur().text)
	}
	return stmt, nil
}

// NumParams returns the number of positional parameters in a parsed
// statement (the highest ParamRef index + 1).
func NumParams(stmt Statement) int {
	max := -1
	var walkNode func(Node)
	walkNode = func(n Node) {
		switch x := n.(type) {
		case nil:
		case *ParamRef:
			if x.Idx > max {
				max = x.Idx
			}
		case *BinOp:
			walkNode(x.L)
			walkNode(x.R)
		case *UnOp:
			walkNode(x.Kid)
		case *FuncCall:
			walkNode(x.Arg)
		case *LikeNode:
			walkNode(x.L)
			walkNode(x.Pattern)
		case *InNode:
			walkNode(x.L)
			for _, e := range x.List {
				walkNode(e)
			}
		case *IsNullNode:
			walkNode(x.L)
		case *BetweenNode:
			walkNode(x.L)
			walkNode(x.Lo)
			walkNode(x.Hi)
		}
	}
	switch s := stmt.(type) {
	case *SelectStmt:
		for _, it := range s.Items {
			walkNode(it.Expr)
		}
		for _, f := range s.From {
			walkNode(f.JoinOn)
		}
		walkNode(s.Where)
		for _, g := range s.GroupBy {
			walkNode(g)
		}
		walkNode(s.Having)
		for _, o := range s.OrderBy {
			walkNode(o.Expr)
		}
	case *InsertStmt:
		for _, v := range s.Values {
			walkNode(v)
		}
	case *UpdateStmt:
		for _, sc := range s.Set {
			walkNode(sc.Value)
		}
		walkNode(s.Where)
	case *DeleteStmt:
		walkNode(s.Where)
	}
	return max + 1
}

type parser struct {
	toks      []token
	pos       int
	src       string
	numParams int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func (p *parser) at(k tokenKind, text string) bool {
	t := p.cur()
	return t.kind == k && (text == "" || t.text == text)
}

func (p *parser) accept(k tokenKind, text string) bool {
	if p.at(k, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k tokenKind, text string) (token, error) {
	t := p.cur()
	if !p.at(k, text) {
		want := text
		if want == "" {
			want = fmt.Sprintf("token kind %d", k)
		}
		return t, p.errf("expected %s, found %q", want, t.text)
	}
	p.pos++
	return t, nil
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("sql: parse error near position %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.at(tokKeyword, "SELECT"):
		return p.parseSelect()
	case p.at(tokKeyword, "INSERT"):
		return p.parseInsert()
	case p.at(tokKeyword, "UPDATE"):
		return p.parseUpdate()
	case p.at(tokKeyword, "DELETE"):
		return p.parseDelete()
	case p.at(tokKeyword, "CREATE"):
		return p.parseCreate()
	default:
		return nil, p.errf("expected statement, found %q", p.cur().text)
	}
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{Limit: -1}
	if p.accept(tokKeyword, "DISTINCT") {
		s.Distinct = true
	}
	// TOP n (TPC-W uses LIMIT; TOP supported as a convenience)
	if p.accept(tokKeyword, "TOP") {
		n, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		limit, err := strconv.Atoi(n.text)
		if err != nil {
			return nil, p.errf("bad TOP count %q", n.text)
		}
		s.Limit = limit
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.accept(tokOp, ",") {
			break
		}
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseFrom()
	if err != nil {
		return nil, err
	}
	s.From = from
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, g)
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = h
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(tokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			s.OrderBy = append(s.OrderBy, item)
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		n, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		limit, err := strconv.Atoi(n.text)
		if err != nil {
			return nil, p.errf("bad LIMIT %q", n.text)
		}
		s.Limit = limit
	}
	return s, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.accept(tokOp, "*") {
		return SelectItem{Star: true}, nil
	}
	// t.* form
	if p.at(tokIdent, "") && p.peek().kind == tokOp && p.peek().text == "." {
		save := p.pos
		qual := p.cur().text
		p.pos += 2
		if p.accept(tokOp, "*") {
			return SelectItem{Star: true, StarTable: qual}, nil
		}
		p.pos = save
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(tokKeyword, "AS") {
		id, err := p.expect(tokIdent, "")
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = id.Name()
	} else if p.at(tokIdent, "") {
		item.Alias = p.cur().text
		p.pos++
	}
	return item, nil
}

func (p *parser) parseFrom() ([]TableRef, error) {
	var refs []TableRef
	first, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	refs = append(refs, first)
	for {
		switch {
		case p.accept(tokOp, ","):
			r, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			refs = append(refs, r)
		case p.at(tokKeyword, "JOIN") || p.at(tokKeyword, "INNER") || p.at(tokKeyword, "LEFT"):
			// only inner-join semantics are implemented; LEFT parses but
			// binds as inner (documented limitation, unused by TPC-W)
			p.accept(tokKeyword, "INNER")
			p.accept(tokKeyword, "LEFT")
			if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
				return nil, err
			}
			r, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokKeyword, "ON"); err != nil {
				return nil, err
			}
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			r.JoinOn = cond
			refs = append(refs, r)
		default:
			return refs, nil
		}
	}
}

func (p *parser) parseTableRef() (TableRef, error) {
	id, err := p.expect(tokIdent, "")
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: id.text}
	if p.accept(tokKeyword, "AS") {
		alias, err := p.expect(tokIdent, "")
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias.text
	} else if p.at(tokIdent, "") {
		ref.Alias = p.cur().text
		p.pos++
	}
	return ref, nil
}

func (p *parser) parseInsert() (*InsertStmt, error) {
	p.pos++ // INSERT
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	tbl, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	s := &InsertStmt{Table: tbl.text}
	if p.accept(tokOp, "(") {
		for {
			c, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			s.Columns = append(s.Columns, c.text)
			if !p.accept(tokOp, ",") {
				break
			}
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokOp, "("); err != nil {
		return nil, err
	}
	for {
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Values = append(s.Values, v)
		if !p.accept(tokOp, ",") {
			break
		}
	}
	if _, err := p.expect(tokOp, ")"); err != nil {
		return nil, err
	}
	return s, nil
}

func (p *parser) parseUpdate() (*UpdateStmt, error) {
	p.pos++ // UPDATE
	tbl, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	s := &UpdateStmt{Table: tbl.text}
	if _, err := p.expect(tokKeyword, "SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, "="); err != nil {
			return nil, err
		}
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Set = append(s.Set, SetClause{Column: col.text, Value: v})
		if !p.accept(tokOp, ",") {
			break
		}
	}
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	return s, nil
}

func (p *parser) parseDelete() (*DeleteStmt, error) {
	p.pos++ // DELETE
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	tbl, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	s := &DeleteStmt{Table: tbl.text}
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	return s, nil
}

func (p *parser) parseCreate() (Statement, error) {
	p.pos++ // CREATE
	unique := p.accept(tokKeyword, "UNIQUE")
	switch {
	case p.accept(tokKeyword, "TABLE"):
		if unique {
			return nil, p.errf("UNIQUE TABLE is not valid")
		}
		return p.parseCreateTable()
	case p.accept(tokKeyword, "INDEX"):
		return p.parseCreateIndex(unique)
	default:
		return nil, p.errf("expected TABLE or INDEX after CREATE")
	}
}

func (p *parser) parseCreateTable() (*CreateTableStmt, error) {
	tbl, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	s := &CreateTableStmt{Table: tbl.text}
	if _, err := p.expect(tokOp, "("); err != nil {
		return nil, err
	}
	for {
		if p.accept(tokKeyword, "PRIMARY") {
			if _, err := p.expect(tokKeyword, "KEY"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokOp, "("); err != nil {
				return nil, err
			}
			for {
				c, err := p.expect(tokIdent, "")
				if err != nil {
					return nil, err
				}
				s.Primary = append(s.Primary, c.text)
				if !p.accept(tokOp, ",") {
					break
				}
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
		} else {
			name, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			kind, err := p.parseType()
			if err != nil {
				return nil, err
			}
			s.Columns = append(s.Columns, ColumnDef{Name: name.text, Kind: kind})
		}
		if !p.accept(tokOp, ",") {
			break
		}
	}
	if _, err := p.expect(tokOp, ")"); err != nil {
		return nil, err
	}
	return s, nil
}

func (p *parser) parseType() (types.Kind, error) {
	t := p.cur()
	if t.kind != tokKeyword {
		return 0, p.errf("expected type name, found %q", t.text)
	}
	p.pos++
	var kind types.Kind
	switch t.text {
	case "INT", "INTEGER", "BIGINT":
		kind = types.KindInt
	case "FLOAT", "DOUBLE", "REAL":
		kind = types.KindFloat
	case "VARCHAR", "TEXT":
		kind = types.KindString
	case "BOOL", "BOOLEAN":
		kind = types.KindBool
	case "TIMESTAMP", "DATE":
		kind = types.KindTime
	default:
		return 0, p.errf("unknown type %q", t.text)
	}
	// optional length: VARCHAR(40)
	if p.accept(tokOp, "(") {
		if _, err := p.expect(tokNumber, ""); err != nil {
			return 0, err
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return 0, err
		}
	}
	return kind, nil
}

func (p *parser) parseCreateIndex(unique bool) (*CreateIndexStmt, error) {
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "ON"); err != nil {
		return nil, err
	}
	tbl, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	s := &CreateIndexStmt{Name: name.text, Table: tbl.text, Unique: unique}
	if _, err := p.expect(tokOp, "("); err != nil {
		return nil, err
	}
	for {
		c, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		s.Columns = append(s.Columns, c.text)
		if !p.accept(tokOp, ",") {
			break
		}
	}
	if _, err := p.expect(tokOp, ")"); err != nil {
		return nil, err
	}
	return s, nil
}

// --- expressions ---

func (p *parser) parseExpr() (Node, error) { return p.parseOr() }

func (p *parser) parseOr() (Node, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Node, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Node, error) {
	if p.accept(tokKeyword, "NOT") {
		k, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnOp{Op: "NOT", Kid: k}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Node, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// postfix predicates
	negate := false
	if p.at(tokKeyword, "NOT") &&
		(p.peek().text == "LIKE" || p.peek().text == "IN" || p.peek().text == "BETWEEN") {
		p.pos++
		negate = true
	}
	switch {
	case p.accept(tokKeyword, "LIKE"):
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &LikeNode{L: l, Pattern: pat, Negate: negate}, nil
	case p.accept(tokKeyword, "IN"):
		if _, err := p.expect(tokOp, "("); err != nil {
			return nil, err
		}
		var list []Node
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.accept(tokOp, ",") {
				break
			}
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return &InNode{L: l, List: list, Negate: negate}, nil
	case p.accept(tokKeyword, "BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenNode{L: l, Lo: lo, Hi: hi, Negate: negate}, nil
	case p.accept(tokKeyword, "IS"):
		neg := p.accept(tokKeyword, "NOT")
		if _, err := p.expect(tokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return &IsNullNode{L: l, Negate: neg}, nil
	}
	if negate {
		return nil, p.errf("dangling NOT")
	}
	for _, op := range []string{"<=", ">=", "<>", "!=", "=", "<", ">"} {
		if p.accept(tokOp, op) {
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if op == "!=" {
				op = "<>"
			}
			return &BinOp{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdditive() (Node, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokOp, "+"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &BinOp{Op: "+", L: l, R: r}
		case p.accept(tokOp, "-"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &BinOp{Op: "-", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMultiplicative() (Node, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokOp, "*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinOp{Op: "*", L: l, R: r}
		case p.accept(tokOp, "/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinOp{Op: "/", L: l, R: r}
		case p.accept(tokOp, "%"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinOp{Op: "%", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (Node, error) {
	if p.accept(tokOp, "-") {
		k, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := k.(*Lit); ok {
			switch lit.Val.Kind() {
			case types.KindInt:
				return &Lit{Val: types.NewInt(-lit.Val.Int)}, nil
			case types.KindFloat:
				return &Lit{Val: types.NewFloat(-lit.Val.Float)}, nil
			}
		}
		return &UnOp{Op: "-", Kid: k}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Node, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.pos++
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return &Lit{Val: types.NewFloat(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return &Lit{Val: types.NewInt(i)}, nil
	case t.kind == tokString:
		p.pos++
		return &Lit{Val: types.NewString(t.text)}, nil
	case t.kind == tokParam:
		p.pos++
		n := &ParamRef{Idx: p.numParams}
		p.numParams++
		return n, nil
	case t.kind == tokKeyword && t.text == "NULL":
		p.pos++
		return &Lit{Val: types.Null}, nil
	case t.kind == tokKeyword && t.text == "TRUE":
		p.pos++
		return &Lit{Val: types.NewBool(true)}, nil
	case t.kind == tokKeyword && t.text == "FALSE":
		p.pos++
		return &Lit{Val: types.NewBool(false)}, nil
	case t.kind == tokKeyword && isAggName(t.text):
		p.pos++
		if _, err := p.expect(tokOp, "("); err != nil {
			return nil, err
		}
		fc := &FuncCall{Name: t.text}
		if p.accept(tokOp, "*") {
			fc.Star = true
		} else {
			if p.accept(tokKeyword, "DISTINCT") {
				fc.Distinct = true
			}
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fc.Arg = arg
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return fc, nil
	case t.kind == tokIdent:
		p.pos++
		name := t.text
		if p.accept(tokOp, ".") {
			col, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			name = name + "." + col.text
		}
		return &Ident{Name: name}, nil
	case p.accept(tokOp, "("):
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errf("expected expression, found %q", t.text)
	}
}

func isAggName(s string) bool {
	switch s {
	case "COUNT", "SUM", "MIN", "MAX", "AVG":
		return true
	}
	return false
}

// Name returns the token's identifier text (helper making alias parsing read
// naturally).
func (t token) Name() string { return t.text }
