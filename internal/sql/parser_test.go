package sql

import (
	"strings"
	"testing"

	"shareddb/internal/types"
)

func mustParse(t *testing.T, src string) Statement {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return stmt
}

func TestParseSimpleSelect(t *testing.T) {
	s := mustParse(t, "SELECT id, name FROM users WHERE id = 5").(*SelectStmt)
	if len(s.Items) != 2 || s.Items[0].Expr.(*Ident).Name != "id" {
		t.Errorf("items = %+v", s.Items)
	}
	if len(s.From) != 1 || s.From[0].Table != "users" {
		t.Errorf("from = %+v", s.From)
	}
	w := s.Where.(*BinOp)
	if w.Op != "=" || w.L.(*Ident).Name != "id" || w.R.(*Lit).Val.AsInt() != 5 {
		t.Errorf("where = %+v", w)
	}
}

func TestParseStar(t *testing.T) {
	s := mustParse(t, "SELECT * FROM users").(*SelectStmt)
	if !s.Items[0].Star {
		t.Error("star not recognized")
	}
	s = mustParse(t, "SELECT u.* FROM users u").(*SelectStmt)
	if !s.Items[0].Star || s.Items[0].StarTable != "u" {
		t.Errorf("qualified star = %+v", s.Items[0])
	}
}

func TestParseAliases(t *testing.T) {
	s := mustParse(t, "SELECT name AS n, account acct FROM users AS u, orders o").(*SelectStmt)
	if s.Items[0].Alias != "n" || s.Items[1].Alias != "acct" {
		t.Errorf("aliases = %+v", s.Items)
	}
	if s.From[0].Alias != "u" || s.From[1].Alias != "o" {
		t.Errorf("from aliases = %+v", s.From)
	}
}

func TestParseJoinOn(t *testing.T) {
	s := mustParse(t, "SELECT * FROM a JOIN b ON a.x = b.y WHERE a.z > 1").(*SelectStmt)
	if len(s.From) != 2 || s.From[1].JoinOn == nil {
		t.Fatalf("from = %+v", s.From)
	}
	s = mustParse(t, "SELECT * FROM a INNER JOIN b ON a.x = b.y").(*SelectStmt)
	if s.From[1].JoinOn == nil {
		t.Error("INNER JOIN not parsed")
	}
}

func TestParseGroupHavingOrderLimit(t *testing.T) {
	src := `SELECT country, COUNT(*), SUM(account) AS total
	        FROM users GROUP BY country HAVING COUNT(*) > 2
	        ORDER BY total DESC, country LIMIT 10`
	s := mustParse(t, src).(*SelectStmt)
	if len(s.GroupBy) != 1 || s.Having == nil {
		t.Fatalf("group/having = %v %v", s.GroupBy, s.Having)
	}
	if len(s.OrderBy) != 2 || !s.OrderBy[0].Desc || s.OrderBy[1].Desc {
		t.Errorf("order = %+v", s.OrderBy)
	}
	if s.Limit != 10 {
		t.Errorf("limit = %d", s.Limit)
	}
	fc := s.Items[1].Expr.(*FuncCall)
	if fc.Name != "COUNT" || !fc.Star {
		t.Errorf("count = %+v", fc)
	}
}

func TestParseDistinctAndTop(t *testing.T) {
	s := mustParse(t, "SELECT DISTINCT name FROM users").(*SelectStmt)
	if !s.Distinct {
		t.Error("DISTINCT missed")
	}
	s = mustParse(t, "SELECT TOP 5 name FROM users").(*SelectStmt)
	if s.Limit != 5 {
		t.Error("TOP missed")
	}
}

func TestParsePredicates(t *testing.T) {
	s := mustParse(t, `SELECT * FROM t WHERE a LIKE '%x%' AND b NOT LIKE 'y'
		AND c IN (1, 2, 3) AND d NOT IN (4) AND e IS NULL AND f IS NOT NULL
		AND g BETWEEN 1 AND 10 AND NOT h = 3`).(*SelectStmt)
	// count conjuncts by walking the AND spine
	n := 0
	var walk func(Node)
	walk = func(nd Node) {
		if b, ok := nd.(*BinOp); ok && b.Op == "AND" {
			walk(b.L)
			walk(b.R)
			return
		}
		n++
	}
	walk(s.Where)
	if n != 8 {
		t.Errorf("conjuncts = %d, want 8", n)
	}
}

func TestParseParams(t *testing.T) {
	s := mustParse(t, "SELECT * FROM t WHERE a = ? AND b > ? AND c LIKE ?")
	if got := NumParams(s); got != 3 {
		t.Errorf("NumParams = %d, want 3", got)
	}
	ins := mustParse(t, "INSERT INTO t (a, b) VALUES (?, ?)")
	if got := NumParams(ins); got != 2 {
		t.Errorf("insert NumParams = %d", got)
	}
	upd := mustParse(t, "UPDATE t SET a = ? WHERE b = ?")
	if got := NumParams(upd); got != 2 {
		t.Errorf("update NumParams = %d", got)
	}
}

func TestParseInsert(t *testing.T) {
	s := mustParse(t, "INSERT INTO users (id, name) VALUES (1, 'bob')").(*InsertStmt)
	if s.Table != "users" || len(s.Columns) != 2 || len(s.Values) != 2 {
		t.Errorf("insert = %+v", s)
	}
	if s.Values[1].(*Lit).Val.AsString() != "bob" {
		t.Error("string literal wrong")
	}
	s = mustParse(t, "INSERT INTO users VALUES (1, 'bob', 'CH', 5)").(*InsertStmt)
	if len(s.Columns) != 0 || len(s.Values) != 4 {
		t.Errorf("columnless insert = %+v", s)
	}
}

func TestParseUpdateDelete(t *testing.T) {
	u := mustParse(t, "UPDATE users SET account = account + 1, name = 'x' WHERE id = 3").(*UpdateStmt)
	if len(u.Set) != 2 || u.Set[0].Column != "account" {
		t.Errorf("update = %+v", u)
	}
	d := mustParse(t, "DELETE FROM users WHERE id = 3").(*DeleteStmt)
	if d.Table != "users" || d.Where == nil {
		t.Errorf("delete = %+v", d)
	}
}

func TestParseCreate(t *testing.T) {
	ct := mustParse(t, `CREATE TABLE users (
		id INT, name VARCHAR(40), account DOUBLE, ok BOOL, born TIMESTAMP,
		PRIMARY KEY (id))`).(*CreateTableStmt)
	if len(ct.Columns) != 5 {
		t.Fatalf("columns = %+v", ct.Columns)
	}
	wantKinds := []types.Kind{types.KindInt, types.KindString, types.KindFloat, types.KindBool, types.KindTime}
	for i, k := range wantKinds {
		if ct.Columns[i].Kind != k {
			t.Errorf("col %d kind = %v, want %v", i, ct.Columns[i].Kind, k)
		}
	}
	if len(ct.Primary) != 1 || ct.Primary[0] != "id" {
		t.Errorf("primary = %v", ct.Primary)
	}
	ci := mustParse(t, "CREATE UNIQUE INDEX idx_name ON users (name, id)").(*CreateIndexStmt)
	if !ci.Unique || ci.Table != "users" || len(ci.Columns) != 2 {
		t.Errorf("create index = %+v", ci)
	}
}

func TestParseStringEscapes(t *testing.T) {
	s := mustParse(t, "SELECT * FROM t WHERE a = 'it''s'").(*SelectStmt)
	if s.Where.(*BinOp).R.(*Lit).Val.AsString() != "it's" {
		t.Error("quote escape failed")
	}
}

func TestParseComments(t *testing.T) {
	s := mustParse(t, "SELECT * -- trailing comment\nFROM t")
	if s.(*SelectStmt).From[0].Table != "t" {
		t.Error("comment handling broken")
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	s := mustParse(t, "SELECT * FROM t WHERE a = -5 AND b = -2.5").(*SelectStmt)
	and := s.Where.(*BinOp)
	if and.L.(*BinOp).R.(*Lit).Val.AsInt() != -5 {
		t.Error("negative int")
	}
	if and.R.(*BinOp).R.(*Lit).Val.AsFloat() != -2.5 {
		t.Error("negative float")
	}
}

func TestParsePrecedence(t *testing.T) {
	s := mustParse(t, "SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").(*SelectStmt)
	or := s.Where.(*BinOp)
	if or.Op != "OR" {
		t.Fatalf("top = %s, want OR", or.Op)
	}
	if or.R.(*BinOp).Op != "AND" {
		t.Error("AND should bind tighter than OR")
	}
	s = mustParse(t, "SELECT * FROM t WHERE a + 1 * 2 = 3").(*SelectStmt)
	eq := s.Where.(*BinOp)
	add := eq.L.(*BinOp)
	if add.Op != "+" || add.R.(*BinOp).Op != "*" {
		t.Error("* should bind tighter than +")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC * FROM t",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t LIMIT x",
		"INSERT INTO t",
		"UPDATE t",
		"DELETE t",
		"CREATE VIEW v",
		"SELECT * FROM t WHERE a = 'unterminated",
		"SELECT * FROM t WHERE a @ 3",
		"SELECT * FROM t; SELECT * FROM u",
		"SELECT * FROM t WHERE a = 1.2.3",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseTPCWStatements(t *testing.T) {
	// Representative statements from the TPC-W reference implementation.
	stmts := []string{
		`SELECT c_fname, c_lname FROM customer WHERE c_id = ?`,
		`SELECT * FROM item, author WHERE item.i_a_id = author.a_id AND i_id = ?`,
		`SELECT i_id, i_title, a_fname, a_lname FROM item, author
		 WHERE i_a_id = a_id AND i_subject = ? ORDER BY i_pub_date DESC, i_title LIMIT 50`,
		`SELECT i_id, i_title, a_fname, a_lname, SUM(ol_qty) AS val
		 FROM order_line, item, author
		 WHERE ol_i_id = i_id AND i_a_id = a_id AND ol_o_id > ? AND i_subject = ?
		 GROUP BY i_id, i_title, a_fname, a_lname
		 ORDER BY val DESC LIMIT 50`,
		`SELECT DISTINCT i_title FROM item WHERE i_title LIKE ? ORDER BY i_title LIMIT 50`,
		`UPDATE item SET i_cost = ?, i_image = ?, i_thumbnail = ?, i_pub_date = ? WHERE i_id = ?`,
		`INSERT INTO order_line (ol_id, ol_o_id, ol_i_id, ol_qty, ol_discount, ol_comments)
		 VALUES (?, ?, ?, ?, ?, ?)`,
		`SELECT COUNT(*) FROM shopping_cart_line WHERE scl_sc_id = ?`,
		`DELETE FROM shopping_cart_line WHERE scl_sc_id = ? AND scl_i_id = ?`,
	}
	for _, src := range stmts {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse failed for %q: %v", strings.Join(strings.Fields(src), " "), err)
		}
	}
}
