// Package sql implements the SQL front-end: a lexer, a recursive-descent
// parser producing an AST, and a logical planner that binds statements
// against a catalog into logical plans with predicate pushdown (the "first
// step" of the paper's two-step optimization, Figure 3: "each query is
// parsed and compiled individually, thereby pushing down predicates").
//
// The dialect covers what the TPC-W prepared statements and the examples
// need: SELECT (joins, GROUP BY/HAVING, ORDER BY, LIMIT, DISTINCT,
// aggregates, LIKE/IN/BETWEEN, positional ? parameters), INSERT, UPDATE,
// DELETE, CREATE TABLE and CREATE INDEX.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokParam // ?
	tokOp    // operators and punctuation
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased; idents as written
	pos  int
}

// keywords recognized by the lexer (upper-case canonical form).
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true,
	"SET": true, "DELETE": true, "CREATE": true, "TABLE": true, "INDEX": true,
	"UNIQUE": true, "PRIMARY": true, "KEY": true, "ON": true, "JOIN": true,
	"INNER": true, "LEFT": true, "ORDER": true, "BY": true, "GROUP": true,
	"HAVING": true, "LIMIT": true, "DISTINCT": true, "AS": true, "LIKE": true,
	"IN": true, "IS": true, "NULL": true, "BETWEEN": true, "ASC": true,
	"DESC": true, "TRUE": true, "FALSE": true, "INT": true, "INTEGER": true,
	"BIGINT": true, "FLOAT": true, "DOUBLE": true, "REAL": true,
	"VARCHAR": true, "TEXT": true, "BOOL": true, "BOOLEAN": true,
	"TIMESTAMP": true, "DATE": true, "COUNT": true, "SUM": true, "MIN": true,
	"MAX": true, "AVG": true, "TOP": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes src.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case isIdentStart(rune(c)):
			l.lexIdent()
		case c >= '0' && c <= '9':
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '?':
			l.emit(tokParam, "?")
			l.pos++
		default:
			if err := l.lexOp(); err != nil {
				return nil, err
			}
		}
	}
	l.emit(tokEOF, "")
	return l.toks, nil
}

func (l *lexer) emit(k tokenKind, text string) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: l.pos})
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	word := l.src[start:l.pos]
	up := strings.ToUpper(word)
	if keywords[up] {
		l.emit(tokKeyword, up)
	} else {
		l.emit(tokIdent, word)
	}
}

func (l *lexer) lexNumber() error {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '.' {
			if seenDot {
				return fmt.Errorf("sql: malformed number at %d", start)
			}
			seenDot = true
			l.pos++
			continue
		}
		if c < '0' || c > '9' {
			break
		}
		l.pos++
	}
	l.emit(tokNumber, l.src[start:l.pos])
	return nil
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' escapes a quote
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.emit(tokString, b.String())
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string literal at %d", start)
}

func (l *lexer) lexOp() error {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=":
		l.emit(tokOp, two)
		l.pos += 2
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case '=', '<', '>', '+', '-', '*', '/', '%', '(', ')', ',', '.', ';':
		l.emit(tokOp, string(c))
		l.pos++
		return nil
	}
	return fmt.Errorf("sql: unexpected character %q at %d", c, l.pos)
}
