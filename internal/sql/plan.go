package sql

import (
	"fmt"
	"strings"

	"shareddb/internal/expr"
	"shareddb/internal/types"
)

// Catalog resolves table names to schemas during binding.
type Catalog interface {
	// TableSchema returns the schema of the named table, or false.
	TableSchema(name string) (*types.Schema, bool)
}

// LogicalPlan is a bound relational operator tree. It is consumed by two
// compilers: the SharedDB global-plan compiler (internal/plan) and the
// query-at-a-time baseline executor (internal/baseline).
type LogicalPlan interface {
	Schema() *types.Schema
	Child() LogicalPlan // nil for leaves
}

// Scan reads a base table with an optional pushed-down predicate (bound
// over the table schema; may contain Param nodes).
type Scan struct {
	Table string
	Alias string // qualifier used by this query ("" = table name)
	Pred  expr.Expr
	Out   *types.Schema
}

// Join is an inner equi-join (LeftKeys[i] = RightKeys[i]) with an optional
// residual predicate over the concatenated schema. Empty key lists denote a
// cross join filtered by Residual.
type Join struct {
	Left, Right LogicalPlan
	LeftKeys    []int // column indices in Left's schema
	RightKeys   []int // column indices in Right's schema
	Residual    expr.Expr
	Out         *types.Schema
}

// Filter keeps rows satisfying Pred.
type Filter struct {
	In   LogicalPlan
	Pred expr.Expr
}

// Project computes output columns from input rows.
type Project struct {
	In    LogicalPlan
	Exprs []expr.Expr
	Out   *types.Schema
}

// AggFunc enumerates aggregate functions.
type AggFunc uint8

// Aggregate functions.
const (
	AggCount AggFunc = iota
	AggSum
	AggMin
	AggMax
	AggAvg
)

func (f AggFunc) String() string {
	return [...]string{"COUNT", "SUM", "MIN", "MAX", "AVG"}[f]
}

// AggSpec is one aggregate computed by a Group.
type AggSpec struct {
	Func     AggFunc
	Arg      expr.Expr // nil for COUNT(*)
	Distinct bool
	Name     string // output column name
}

// Group groups by the given input columns and computes aggregates. Its
// output schema is the group columns followed by one column per aggregate.
// Having (optional) is bound over the output schema. An empty GroupCols
// list aggregates the whole input into a single row.
type Group struct {
	In        LogicalPlan
	GroupCols []int
	Aggs      []AggSpec
	Having    expr.Expr
	Out       *types.Schema
}

// SortKey is one ORDER BY key, bound over the sort input schema.
type SortKey struct {
	Expr expr.Expr
	Desc bool
}

// Sort orders rows by the given keys.
type Sort struct {
	In   LogicalPlan
	Keys []SortKey
}

// Limit keeps the first N rows. A Limit directly above a Sort is a Top-N.
type Limit struct {
	In LogicalPlan
	N  int
}

// Distinct removes duplicate rows.
type Distinct struct {
	In LogicalPlan
}

// Schema/Child implementations.

func (s *Scan) Schema() *types.Schema     { return s.Out }
func (s *Scan) Child() LogicalPlan        { return nil }
func (j *Join) Schema() *types.Schema     { return j.Out }
func (j *Join) Child() LogicalPlan        { return j.Left }
func (f *Filter) Schema() *types.Schema   { return f.In.Schema() }
func (f *Filter) Child() LogicalPlan      { return f.In }
func (p *Project) Schema() *types.Schema  { return p.Out }
func (p *Project) Child() LogicalPlan     { return p.In }
func (g *Group) Schema() *types.Schema    { return g.Out }
func (g *Group) Child() LogicalPlan       { return g.In }
func (s *Sort) Schema() *types.Schema     { return s.In.Schema() }
func (s *Sort) Child() LogicalPlan        { return s.In }
func (l *Limit) Schema() *types.Schema    { return l.In.Schema() }
func (l *Limit) Child() LogicalPlan       { return l.In }
func (d *Distinct) Schema() *types.Schema { return d.In.Schema() }
func (d *Distinct) Child() LogicalPlan    { return d.In }

// WritePlan is the bound form of INSERT/UPDATE/DELETE.
type WritePlan struct {
	Kind   WriteKind
	Table  string
	Values []expr.Expr // insert: one per schema column
	Pred   expr.Expr   // update/delete
	Set    []SetCol    // update
}

// WriteKind enumerates write statement kinds.
type WriteKind uint8

// Write kinds.
const (
	WriteInsert WriteKind = iota
	WriteUpdate
	WriteDelete
)

// SetCol assigns Val (over the table schema) to column Col.
type SetCol struct {
	Col int
	Val expr.Expr
}

// DDLPlan is the bound form of CREATE TABLE / CREATE INDEX.
type DDLPlan struct {
	CreateTable *CreateTableStmt
	CreateIndex *CreateIndexStmt
}

// PlanStatement binds a parsed statement against the catalog.
// The result is one of *LogicalPlan-rooted SELECT (returned as LogicalPlan),
// *WritePlan, or *DDLPlan.
func PlanStatement(stmt Statement, cat Catalog) (interface{}, error) {
	switch s := stmt.(type) {
	case *SelectStmt:
		return PlanSelect(s, cat)
	case *InsertStmt:
		return planInsert(s, cat)
	case *UpdateStmt:
		return planUpdate(s, cat)
	case *DeleteStmt:
		return planDelete(s, cat)
	case *CreateTableStmt:
		return &DDLPlan{CreateTable: s}, nil
	case *CreateIndexStmt:
		return &DDLPlan{CreateIndex: s}, nil
	default:
		return nil, fmt.Errorf("sql: unsupported statement %T", stmt)
	}
}

// binder holds state while binding one SELECT.
type binder struct {
	cat Catalog
}

// PlanSelect binds a SELECT into a logical plan:
//
//	Scan* → Join tree (left-deep, FROM order) → Filter → [Group] →
//	[Sort] → [Limit] → Project → [Distinct]
//
// Single-table conjuncts of WHERE are pushed into scans; cross-table
// equality conjuncts become join keys (the paper's Figure 3 "logical query
// optimization" step).
func PlanSelect(s *SelectStmt, cat Catalog) (LogicalPlan, error) {
	if len(s.From) == 0 {
		return nil, fmt.Errorf("sql: SELECT requires FROM")
	}
	b := &binder{cat: cat}

	// Resolve FROM tables.
	type fromTable struct {
		ref    TableRef
		schema *types.Schema // qualified
		offset int           // first column in the combined schema
	}
	tables := make([]fromTable, len(s.From))
	combined := types.NewSchema()
	for i, ref := range s.From {
		ts, ok := cat.TableSchema(ref.Table)
		if !ok {
			return nil, fmt.Errorf("sql: unknown table %q", ref.Table)
		}
		qual := ref.Alias
		if qual == "" {
			qual = ref.Table
		}
		qs := ts.WithQualifier(qual)
		tables[i] = fromTable{ref: ref, schema: qs, offset: combined.Len()}
		combined = combined.Concat(qs)
	}

	// Collect WHERE plus explicit JOIN ... ON conditions.
	var whereNodes []Node
	if s.Where != nil {
		whereNodes = append(whereNodes, s.Where)
	}
	for _, ref := range s.From {
		if ref.JoinOn != nil {
			whereNodes = append(whereNodes, ref.JoinOn)
		}
	}
	var conjuncts []expr.Expr
	for _, n := range whereNodes {
		e, err := b.bindScalar(n, combined)
		if err != nil {
			return nil, err
		}
		conjuncts = append(conjuncts, expr.Conjuncts(e)...)
	}

	// Classify conjuncts: per-table pushdown, join keys, residual.
	tableOf := func(col int) int {
		for i := len(tables) - 1; i >= 0; i-- {
			if col >= tables[i].offset {
				return i
			}
		}
		return 0
	}
	pushed := make([][]expr.Expr, len(tables))
	type joinKey struct{ lcol, rcol int } // global column indices, l in earlier table
	var joinKeys []joinKey
	var residual []expr.Expr
	for _, c := range conjuncts {
		cols := expr.Columns(c)
		tset := map[int]bool{}
		for col := range cols {
			tset[tableOf(col)] = true
		}
		switch {
		case len(tset) == 0:
			residual = append(residual, c) // constant predicate
		case len(tset) == 1:
			var ti int
			for t := range tset {
				ti = t
			}
			mapping := map[int]int{}
			for col := range cols {
				mapping[col] = col - tables[ti].offset
			}
			pushed[ti] = append(pushed[ti], expr.Remap(c, mapping))
		default:
			// cross-table: equi-join key if "colA = colB"
			if cmp, ok := c.(*expr.Cmp); ok && cmp.Op == expr.EQ {
				lc, lok := cmp.L.(*expr.ColRef)
				rc, rok := cmp.R.(*expr.ColRef)
				if lok && rok && len(tset) == 2 {
					l, r := lc.Idx, rc.Idx
					if l > r {
						l, r = r, l
					}
					joinKeys = append(joinKeys, joinKey{lcol: l, rcol: r})
					continue
				}
			}
			residual = append(residual, c)
		}
	}

	// Build scans and the left-deep join tree in FROM order.
	var cur LogicalPlan = &Scan{
		Table: tables[0].ref.Table,
		Alias: qualOf(tables[0].ref),
		Pred:  expr.AndOf(pushed[0]),
		Out:   tables[0].schema,
	}
	usedKeys := make([]bool, len(joinKeys))
	for i := 1; i < len(tables); i++ {
		right := &Scan{
			Table: tables[i].ref.Table,
			Alias: qualOf(tables[i].ref),
			Pred:  expr.AndOf(pushed[i]),
			Out:   tables[i].schema,
		}
		var lkeys, rkeys []int
		hi := tables[i].offset + tables[i].schema.Len()
		for k, jk := range joinKeys {
			if usedKeys[k] {
				continue
			}
			if jk.lcol < tables[i].offset && jk.rcol >= tables[i].offset && jk.rcol < hi {
				lkeys = append(lkeys, jk.lcol) // accumulated side is a prefix of combined
				rkeys = append(rkeys, jk.rcol-tables[i].offset)
				usedKeys[k] = true
			}
		}
		cur = &Join{
			Left:      cur,
			Right:     right,
			LeftKeys:  lkeys,
			RightKeys: rkeys,
			Out:       cur.Schema().Concat(right.Schema()),
		}
	}
	// join keys that span non-adjacent steps or duplicates become residual
	for k, jk := range joinKeys {
		if !usedKeys[k] {
			residual = append(residual, &expr.Cmp{Op: expr.EQ,
				L: &expr.ColRef{Idx: jk.lcol}, R: &expr.ColRef{Idx: jk.rcol}})
		}
	}
	if len(residual) > 0 {
		cur = &Filter{In: cur, Pred: expr.AndOf(residual)}
	}

	// Aggregation.
	grouped := len(s.GroupBy) > 0 || hasAggregate(s)
	var aggIndex map[string]int // agg signature → output column in Group.Out
	if grouped {
		g, ai, err := b.buildGroup(s, cur, combined)
		if err != nil {
			return nil, err
		}
		cur = g
		aggIndex = ai
	}

	// ORDER BY binds over the (possibly grouped) schema; aliases resolve to
	// the underlying select expression.
	if len(s.OrderBy) > 0 {
		keys := make([]SortKey, len(s.OrderBy))
		for i, oi := range s.OrderBy {
			node := resolveAlias(oi.Expr, s.Items)
			e, err := b.bindMaybeAgg(node, cur.Schema(), aggIndex)
			if err != nil {
				return nil, err
			}
			keys[i] = SortKey{Expr: e, Desc: oi.Desc}
		}
		cur = &Sort{In: cur, Keys: keys}
	}
	if s.Limit >= 0 {
		cur = &Limit{In: cur, N: s.Limit}
	}

	// Projection.
	proj, err := b.buildProject(s, cur, aggIndex)
	if err != nil {
		return nil, err
	}
	cur = proj
	if s.Distinct {
		cur = &Distinct{In: cur}
	}
	return cur, nil
}

func qualOf(ref TableRef) string {
	if ref.Alias != "" {
		return ref.Alias
	}
	return ref.Table
}

func hasAggregate(s *SelectStmt) bool {
	var found bool
	var walk func(Node)
	walk = func(n Node) {
		switch x := n.(type) {
		case *FuncCall:
			found = true
		case *BinOp:
			walk(x.L)
			walk(x.R)
		case *UnOp:
			walk(x.Kid)
		}
	}
	for _, it := range s.Items {
		if it.Expr != nil {
			walk(it.Expr)
		}
	}
	if s.Having != nil {
		walk(s.Having)
	}
	return found
}

// aggSignature canonicalizes an aggregate call for matching between the
// select list, HAVING and ORDER BY.
func aggSignature(fc *FuncCall) string {
	var b strings.Builder
	b.WriteString(fc.Name)
	b.WriteByte('(')
	if fc.Distinct {
		b.WriteString("DISTINCT ")
	}
	if fc.Star {
		b.WriteByte('*')
	} else {
		b.WriteString(nodeString(fc.Arg))
	}
	b.WriteByte(')')
	return strings.ToUpper(b.String())
}

func nodeString(n Node) string {
	switch x := n.(type) {
	case nil:
		return ""
	case *Ident:
		return x.Name
	case *Lit:
		return x.Val.String()
	case *ParamRef:
		return fmt.Sprintf("?%d", x.Idx)
	case *BinOp:
		return "(" + nodeString(x.L) + x.Op + nodeString(x.R) + ")"
	case *UnOp:
		return x.Op + nodeString(x.Kid)
	case *FuncCall:
		return aggSignature(x)
	default:
		return fmt.Sprintf("%T", n)
	}
}

// buildGroup constructs the Group node: group columns must be plain column
// references; aggregates are harvested from the select list, HAVING and
// ORDER BY.
func (b *binder) buildGroup(s *SelectStmt, in LogicalPlan, inSchema *types.Schema) (*Group, map[string]int, error) {
	g := &Group{In: in}
	outCols := []types.Column{}
	for _, gn := range s.GroupBy {
		e, err := b.bindScalar(gn, inSchema)
		if err != nil {
			return nil, nil, err
		}
		cr, ok := e.(*expr.ColRef)
		if !ok {
			return nil, nil, fmt.Errorf("sql: GROUP BY supports column references only, got %s", e)
		}
		g.GroupCols = append(g.GroupCols, cr.Idx)
		outCols = append(outCols, inSchema.Cols[cr.Idx])
	}

	aggIndex := map[string]int{}
	var addAgg func(fc *FuncCall) error
	addAgg = func(fc *FuncCall) error {
		sig := aggSignature(fc)
		if _, dup := aggIndex[sig]; dup {
			return nil
		}
		spec := AggSpec{Distinct: fc.Distinct, Name: sig}
		switch fc.Name {
		case "COUNT":
			spec.Func = AggCount
		case "SUM":
			spec.Func = AggSum
		case "MIN":
			spec.Func = AggMin
		case "MAX":
			spec.Func = AggMax
		case "AVG":
			spec.Func = AggAvg
		default:
			return fmt.Errorf("sql: unknown aggregate %q", fc.Name)
		}
		if !fc.Star {
			arg, err := b.bindScalar(fc.Arg, inSchema)
			if err != nil {
				return err
			}
			spec.Arg = arg
		}
		// Numeric aggregates over strings have no defined sum; surface the
		// type error at plan time instead of silently aggregating to 0.
		if spec.Func == AggSum || spec.Func == AggAvg {
			if k := inferKind(spec.Arg, inSchema); k == types.KindString {
				return fmt.Errorf("sql: %s over a VARCHAR argument is not defined (%s)", fc.Name, sig)
			}
		}
		aggIndex[sig] = len(g.GroupCols) + len(g.Aggs)
		kind := types.KindFloat
		switch spec.Func {
		case AggCount:
			kind = types.KindInt
		case AggSum, AggMin, AggMax:
			kind = inferKind(spec.Arg, inSchema)
		}
		outCols = append(outCols, types.Column{Name: sig, Kind: kind})
		g.Aggs = append(g.Aggs, spec)
		return nil
	}
	var harvest func(Node) error
	harvest = func(n Node) error {
		switch x := n.(type) {
		case nil:
			return nil
		case *FuncCall:
			return addAgg(x)
		case *BinOp:
			if err := harvest(x.L); err != nil {
				return err
			}
			return harvest(x.R)
		case *UnOp:
			return harvest(x.Kid)
		default:
			return nil
		}
	}
	for _, it := range s.Items {
		if err := harvest(it.Expr); err != nil {
			return nil, nil, err
		}
	}
	if err := harvest(s.Having); err != nil {
		return nil, nil, err
	}
	for _, oi := range s.OrderBy {
		if err := harvest(resolveAlias(oi.Expr, s.Items)); err != nil {
			return nil, nil, err
		}
	}
	g.Out = types.NewSchema(outCols...)

	if s.Having != nil {
		h, err := b.bindMaybeAgg(s.Having, g.Out, aggIndex)
		if err != nil {
			return nil, nil, err
		}
		g.Having = h
	}
	return g, aggIndex, nil
}

// buildProject binds the select list over the current plan's schema.
func (b *binder) buildProject(s *SelectStmt, in LogicalPlan, aggIndex map[string]int) (*Project, error) {
	inSchema := in.Schema()
	var exprs []expr.Expr
	var cols []types.Column
	for _, it := range s.Items {
		if it.Star {
			for i, c := range inSchema.Cols {
				if it.StarTable != "" && !strings.EqualFold(c.Qualifier, it.StarTable) {
					continue
				}
				exprs = append(exprs, &expr.ColRef{Idx: i, Name: c.QName()})
				cols = append(cols, c)
			}
			continue
		}
		e, err := b.bindMaybeAgg(it.Expr, inSchema, aggIndex)
		if err != nil {
			return nil, err
		}
		name := it.Alias
		if name == "" {
			name = displayName(it.Expr)
		}
		col := types.Column{Name: name, Kind: inferKind(e, inSchema)}
		if id, ok := it.Expr.(*Ident); ok && it.Alias == "" {
			// keep qualifier for bare column selections
			if i := strings.IndexByte(id.Name, '.'); i >= 0 {
				col.Qualifier, col.Name = id.Name[:i], id.Name[i+1:]
			}
		}
		exprs = append(exprs, e)
		cols = append(cols, col)
	}
	return &Project{In: in, Exprs: exprs, Out: types.NewSchema(cols...)}, nil
}

func displayName(n Node) string {
	switch x := n.(type) {
	case *Ident:
		return x.Name
	case *FuncCall:
		return aggSignature(x)
	default:
		return nodeString(n)
	}
}

// resolveAlias replaces a bare identifier that names a select alias with
// the aliased expression (ORDER BY val → ORDER BY SUM(qty)).
func resolveAlias(n Node, items []SelectItem) Node {
	id, ok := n.(*Ident)
	if !ok {
		return n
	}
	for _, it := range items {
		if it.Alias != "" && strings.EqualFold(it.Alias, id.Name) {
			return it.Expr
		}
	}
	return n
}

// bindMaybeAgg binds a node over schema, mapping aggregate calls to their
// Group output columns via aggIndex.
func (b *binder) bindMaybeAgg(n Node, schema *types.Schema, aggIndex map[string]int) (expr.Expr, error) {
	if fc, ok := n.(*FuncCall); ok {
		if aggIndex == nil {
			return nil, fmt.Errorf("sql: aggregate %s outside GROUP BY context", aggSignature(fc))
		}
		idx, ok := aggIndex[aggSignature(fc)]
		if !ok {
			return nil, fmt.Errorf("sql: aggregate %s not available", aggSignature(fc))
		}
		return &expr.ColRef{Idx: idx, Name: aggSignature(fc)}, nil
	}
	if bin, ok := n.(*BinOp); ok && (bin.Op == "AND" || bin.Op == "OR" || isCmpOp(bin.Op) || isArithOp(bin.Op)) {
		l, err := b.bindMaybeAgg(bin.L, schema, aggIndex)
		if err != nil {
			return nil, err
		}
		r, err := b.bindMaybeAgg(bin.R, schema, aggIndex)
		if err != nil {
			return nil, err
		}
		return combineBin(bin.Op, l, r)
	}
	return b.bindScalar(n, schema)
}

func isCmpOp(op string) bool {
	switch op {
	case "=", "<>", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func isArithOp(op string) bool {
	switch op {
	case "+", "-", "*", "/", "%":
		return true
	}
	return false
}

func combineBin(op string, l, r expr.Expr) (expr.Expr, error) {
	switch op {
	case "AND":
		return &expr.And{Kids: []expr.Expr{l, r}}, nil
	case "OR":
		return &expr.Or{Kids: []expr.Expr{l, r}}, nil
	case "=":
		return &expr.Cmp{Op: expr.EQ, L: l, R: r}, nil
	case "<>":
		return &expr.Cmp{Op: expr.NE, L: l, R: r}, nil
	case "<":
		return &expr.Cmp{Op: expr.LT, L: l, R: r}, nil
	case "<=":
		return &expr.Cmp{Op: expr.LE, L: l, R: r}, nil
	case ">":
		return &expr.Cmp{Op: expr.GT, L: l, R: r}, nil
	case ">=":
		return &expr.Cmp{Op: expr.GE, L: l, R: r}, nil
	case "+":
		return &expr.Arith{Op: expr.Add, L: l, R: r}, nil
	case "-":
		return &expr.Arith{Op: expr.Sub, L: l, R: r}, nil
	case "*":
		return &expr.Arith{Op: expr.Mul, L: l, R: r}, nil
	case "/":
		return &expr.Arith{Op: expr.Div, L: l, R: r}, nil
	case "%":
		return &expr.Arith{Op: expr.Mod, L: l, R: r}, nil
	default:
		return nil, fmt.Errorf("sql: unknown operator %q", op)
	}
}

// bindScalar binds a scalar (non-aggregate) node over schema.
func (b *binder) bindScalar(n Node, schema *types.Schema) (expr.Expr, error) {
	switch x := n.(type) {
	case *Ident:
		if schema == nil {
			return nil, fmt.Errorf("sql: column reference %q not allowed here", x.Name)
		}
		idx, err := schema.ColIndex(x.Name)
		if err != nil {
			return nil, fmt.Errorf("sql: %w", err)
		}
		return &expr.ColRef{Idx: idx, Name: x.Name}, nil
	case *Lit:
		return &expr.Const{Val: x.Val}, nil
	case *ParamRef:
		return &expr.Param{Idx: x.Idx}, nil
	case *BinOp:
		l, err := b.bindScalar(x.L, schema)
		if err != nil {
			return nil, err
		}
		r, err := b.bindScalar(x.R, schema)
		if err != nil {
			return nil, err
		}
		return combineBin(x.Op, l, r)
	case *UnOp:
		k, err := b.bindScalar(x.Kid, schema)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "NOT":
			return &expr.Not{Kid: k}, nil
		case "-":
			return &expr.Arith{Op: expr.Sub, L: &expr.Const{Val: types.NewInt(0)}, R: k}, nil
		default:
			return nil, fmt.Errorf("sql: unknown unary operator %q", x.Op)
		}
	case *LikeNode:
		l, err := b.bindScalar(x.L, schema)
		if err != nil {
			return nil, err
		}
		p, err := b.bindScalar(x.Pattern, schema)
		if err != nil {
			return nil, err
		}
		return &expr.Like{L: l, Pattern: p, Negate: x.Negate}, nil
	case *InNode:
		l, err := b.bindScalar(x.L, schema)
		if err != nil {
			return nil, err
		}
		list := make([]expr.Expr, len(x.List))
		for i, e := range x.List {
			be, err := b.bindScalar(e, schema)
			if err != nil {
				return nil, err
			}
			list[i] = be
		}
		return &expr.In{L: l, List: list, Negate: x.Negate}, nil
	case *IsNullNode:
		l, err := b.bindScalar(x.L, schema)
		if err != nil {
			return nil, err
		}
		return &expr.IsNull{Kid: l, Negate: x.Negate}, nil
	case *BetweenNode:
		l, err := b.bindScalar(x.L, schema)
		if err != nil {
			return nil, err
		}
		lo, err := b.bindScalar(x.Lo, schema)
		if err != nil {
			return nil, err
		}
		hi, err := b.bindScalar(x.Hi, schema)
		if err != nil {
			return nil, err
		}
		between := &expr.And{Kids: []expr.Expr{
			&expr.Cmp{Op: expr.GE, L: l, R: lo},
			&expr.Cmp{Op: expr.LE, L: l, R: hi},
		}}
		if x.Negate {
			return &expr.Not{Kid: between}, nil
		}
		return between, nil
	case *FuncCall:
		return nil, fmt.Errorf("sql: aggregate %s in scalar context", aggSignature(x))
	default:
		return nil, fmt.Errorf("sql: cannot bind %T", n)
	}
}

// inferKind approximates the result kind of a bound expression.
func inferKind(e expr.Expr, schema *types.Schema) types.Kind {
	switch x := e.(type) {
	case nil:
		return types.KindInt
	case *expr.ColRef:
		if schema != nil && x.Idx < schema.Len() {
			return schema.Cols[x.Idx].Kind
		}
		return types.KindInt
	case *expr.Const:
		return x.Val.Kind()
	case *expr.Arith:
		lk, rk := inferKind(x.L, schema), inferKind(x.R, schema)
		if lk == types.KindFloat || rk == types.KindFloat || x.Op == expr.Div {
			return types.KindFloat
		}
		return types.KindInt
	case *expr.Param:
		return types.KindInt // unknowable pre-execution; INT is a safe display default
	default:
		return types.KindBool
	}
}

func planInsert(s *InsertStmt, cat Catalog) (*WritePlan, error) {
	schema, ok := cat.TableSchema(s.Table)
	if !ok {
		return nil, fmt.Errorf("sql: unknown table %q", s.Table)
	}
	b := &binder{cat: cat}
	vals := make([]expr.Expr, schema.Len())
	for i := range vals {
		vals[i] = &expr.Const{Val: types.Null}
	}
	cols := s.Columns
	if len(cols) == 0 {
		if len(s.Values) != schema.Len() {
			return nil, fmt.Errorf("sql: INSERT has %d values, table %s has %d columns",
				len(s.Values), s.Table, schema.Len())
		}
		for i, v := range s.Values {
			e, err := b.bindScalar(v, nil)
			if err != nil {
				return nil, err
			}
			vals[i] = e
		}
	} else {
		if len(cols) != len(s.Values) {
			return nil, fmt.Errorf("sql: INSERT has %d columns but %d values", len(cols), len(s.Values))
		}
		for i, c := range cols {
			idx, err := schema.ColIndex(c)
			if err != nil {
				return nil, fmt.Errorf("sql: %w", err)
			}
			e, err := b.bindScalar(s.Values[i], nil)
			if err != nil {
				return nil, err
			}
			vals[idx] = e
		}
	}
	return &WritePlan{Kind: WriteInsert, Table: s.Table, Values: vals}, nil
}

func planUpdate(s *UpdateStmt, cat Catalog) (*WritePlan, error) {
	schema, ok := cat.TableSchema(s.Table)
	if !ok {
		return nil, fmt.Errorf("sql: unknown table %q", s.Table)
	}
	b := &binder{cat: cat}
	wp := &WritePlan{Kind: WriteUpdate, Table: s.Table}
	for _, sc := range s.Set {
		idx, err := schema.ColIndex(sc.Column)
		if err != nil {
			return nil, fmt.Errorf("sql: %w", err)
		}
		e, err := b.bindScalar(sc.Value, schema)
		if err != nil {
			return nil, err
		}
		wp.Set = append(wp.Set, SetCol{Col: idx, Val: e})
	}
	if s.Where != nil {
		p, err := b.bindScalar(s.Where, schema)
		if err != nil {
			return nil, err
		}
		wp.Pred = p
	}
	return wp, nil
}

func planDelete(s *DeleteStmt, cat Catalog) (*WritePlan, error) {
	schema, ok := cat.TableSchema(s.Table)
	if !ok {
		return nil, fmt.Errorf("sql: unknown table %q", s.Table)
	}
	b := &binder{cat: cat}
	wp := &WritePlan{Kind: WriteDelete, Table: s.Table}
	if s.Where != nil {
		p, err := b.bindScalar(s.Where, schema)
		if err != nil {
			return nil, err
		}
		wp.Pred = p
	}
	return wp, nil
}
