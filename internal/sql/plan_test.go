package sql

import (
	"testing"

	"shareddb/internal/expr"
	"shareddb/internal/types"
)

// testCatalog is a map-backed Catalog.
type testCatalog map[string]*types.Schema

func (c testCatalog) TableSchema(name string) (*types.Schema, bool) {
	s, ok := c[name]
	return s, ok
}

func catalog() testCatalog {
	return testCatalog{
		"users": types.NewSchema(
			types.Col("user_id", types.KindInt),
			types.Col("username", types.KindString),
			types.Col("country", types.KindString),
			types.Col("account", types.KindInt),
		),
		"orders": types.NewSchema(
			types.Col("o_id", types.KindInt),
			types.Col("o_user_id", types.KindInt),
			types.Col("o_status", types.KindString),
			types.Col("o_total", types.KindFloat),
		),
		"items": types.NewSchema(
			types.Col("item_id", types.KindInt),
			types.Col("i_title", types.KindString),
			types.Col("i_price", types.KindFloat),
		),
	}
}

func plan(t *testing.T, src string) LogicalPlan {
	t.Helper()
	stmt := mustParse(t, src)
	p, err := PlanSelect(stmt.(*SelectStmt), catalog())
	if err != nil {
		t.Fatalf("PlanSelect(%q): %v", src, err)
	}
	return p
}

// unwrap walks to the first node of the requested type.
func findNode[T LogicalPlan](p LogicalPlan) (T, bool) {
	for p != nil {
		if v, ok := p.(T); ok {
			return v, true
		}
		p = p.Child()
	}
	var zero T
	return zero, false
}

func TestPlanPushdown(t *testing.T) {
	p := plan(t, "SELECT username FROM users WHERE country = 'CH' AND account > 100")
	scan, ok := findNode[*Scan](p)
	if !ok {
		t.Fatal("no scan")
	}
	if scan.Pred == nil {
		t.Fatal("predicate not pushed into scan")
	}
	conjs := expr.Conjuncts(scan.Pred)
	if len(conjs) != 2 {
		t.Errorf("pushed conjuncts = %d, want 2", len(conjs))
	}
	// no residual filter should remain
	if _, hasFilter := findNode[*Filter](p); hasFilter {
		t.Error("unexpected residual filter")
	}
}

func TestPlanJoinKeys(t *testing.T) {
	p := plan(t, `SELECT * FROM users u, orders o
		WHERE u.user_id = o.o_user_id AND u.country = 'CH' AND o.o_status = 'OK'`)
	join, ok := findNode[*Join](p)
	if !ok {
		t.Fatal("no join")
	}
	if len(join.LeftKeys) != 1 || len(join.RightKeys) != 1 {
		t.Fatalf("join keys = %v / %v", join.LeftKeys, join.RightKeys)
	}
	if join.LeftKeys[0] != 0 {
		t.Errorf("left key = %d, want 0 (user_id)", join.LeftKeys[0])
	}
	if join.RightKeys[0] != 1 {
		t.Errorf("right key = %d, want 1 (o_user_id)", join.RightKeys[0])
	}
	// both single-table predicates pushed below the join
	ls := join.Left.(*Scan)
	rs := join.Right.(*Scan)
	if ls.Pred == nil || rs.Pred == nil {
		t.Error("predicates not pushed below join")
	}
	if join.Out.Len() != 8 {
		t.Errorf("join schema width = %d, want 8", join.Out.Len())
	}
}

func TestPlanExplicitJoin(t *testing.T) {
	p := plan(t, "SELECT * FROM users u JOIN orders o ON u.user_id = o.o_user_id")
	join, ok := findNode[*Join](p)
	if !ok || len(join.LeftKeys) != 1 {
		t.Fatal("JOIN ON not turned into equi-join keys")
	}
}

func TestPlanThreeWayJoin(t *testing.T) {
	p := plan(t, `SELECT * FROM users u, orders o, items i
		WHERE u.user_id = o.o_user_id AND o.o_id = i.item_id`)
	top, ok := findNode[*Join](p)
	if !ok {
		t.Fatal("no top join")
	}
	inner, ok := top.Left.(*Join)
	if !ok {
		t.Fatal("left-deep tree expected")
	}
	if len(inner.LeftKeys) != 1 || len(top.LeftKeys) != 1 {
		t.Error("join keys misassigned")
	}
	if top.Out.Len() != 4+4+3 {
		t.Errorf("combined width = %d", top.Out.Len())
	}
}

func TestPlanCrossJoinResidual(t *testing.T) {
	// non-equi cross-table predicate: join has no keys, predicate lands in
	// a residual Filter above the join.
	p := plan(t, "SELECT * FROM users u, orders o WHERE u.account > o.o_total")
	join, _ := findNode[*Join](p)
	if len(join.LeftKeys) != 0 {
		t.Error("non-equi predicate became a join key")
	}
	if _, hasFilter := findNode[*Filter](p); !hasFilter {
		t.Error("missing residual filter")
	}
}

func TestPlanGroupBy(t *testing.T) {
	p := plan(t, `SELECT country, COUNT(*), SUM(account) AS total FROM users
		GROUP BY country HAVING COUNT(*) > 1 ORDER BY total DESC`)
	g, ok := findNode[*Group](p)
	if !ok {
		t.Fatal("no group node")
	}
	if len(g.GroupCols) != 1 || g.GroupCols[0] != 2 {
		t.Errorf("group cols = %v", g.GroupCols)
	}
	if len(g.Aggs) != 2 {
		t.Fatalf("aggs = %+v", g.Aggs)
	}
	if g.Aggs[0].Func != AggCount || g.Aggs[1].Func != AggSum {
		t.Errorf("agg funcs = %v %v", g.Aggs[0].Func, g.Aggs[1].Func)
	}
	if g.Having == nil {
		t.Error("HAVING not bound")
	}
	// output schema: country, COUNT(*), SUM(account)
	if g.Out.Len() != 3 {
		t.Errorf("group out = %v", g.Out)
	}
	// ORDER BY total resolves through the alias to the SUM column
	srt, ok := findNode[*Sort](p)
	if !ok {
		t.Fatal("no sort")
	}
	cr, ok := srt.Keys[0].Expr.(*expr.ColRef)
	if !ok || cr.Idx != 2 || !srt.Keys[0].Desc {
		t.Errorf("sort key = %+v", srt.Keys[0])
	}
}

func TestPlanScalarAggregate(t *testing.T) {
	p := plan(t, "SELECT COUNT(*) FROM orders WHERE o_status = 'OK'")
	g, ok := findNode[*Group](p)
	if !ok {
		t.Fatal("no group")
	}
	if len(g.GroupCols) != 0 || len(g.Aggs) != 1 {
		t.Errorf("scalar agg = %+v", g)
	}
}

func TestPlanAggregateArithmetic(t *testing.T) {
	p := plan(t, "SELECT SUM(account * 2) FROM users")
	g, _ := findNode[*Group](p)
	if g == nil || g.Aggs[0].Arg == nil {
		t.Fatal("agg arg not bound")
	}
}

func TestPlanOrderByColumn(t *testing.T) {
	p := plan(t, "SELECT username FROM users ORDER BY account DESC LIMIT 10")
	srt, ok := findNode[*Sort](p)
	if !ok {
		t.Fatal("no sort")
	}
	cr := srt.Keys[0].Expr.(*expr.ColRef)
	if cr.Idx != 3 {
		t.Errorf("sort col = %d, want 3 (account, pre-projection)", cr.Idx)
	}
	lim, ok := findNode[*Limit](p)
	if !ok || lim.N != 10 {
		t.Error("limit missing")
	}
	// projection keeps only username
	proj := p.(*Project)
	if proj.Out.Len() != 1 || proj.Out.Cols[0].Name != "username" {
		t.Errorf("projection = %v", proj.Out)
	}
}

func TestPlanDistinct(t *testing.T) {
	p := plan(t, "SELECT DISTINCT country FROM users")
	if _, ok := p.(*Distinct); !ok {
		t.Errorf("top = %T, want Distinct", p)
	}
}

func TestPlanStarSchemas(t *testing.T) {
	p := plan(t, "SELECT * FROM users")
	if p.Schema().Len() != 4 {
		t.Errorf("star width = %d", p.Schema().Len())
	}
	p = plan(t, "SELECT u.* FROM users u, orders o WHERE u.user_id = o.o_user_id")
	if p.Schema().Len() != 4 {
		t.Errorf("qualified star width = %d", p.Schema().Len())
	}
}

func TestPlanBetweenDesugar(t *testing.T) {
	p := plan(t, "SELECT * FROM users WHERE account BETWEEN 1 AND 10")
	scan, _ := findNode[*Scan](p)
	conjs := expr.Conjuncts(scan.Pred)
	if len(conjs) != 2 {
		t.Errorf("BETWEEN should desugar to 2 conjuncts, got %d", len(conjs))
	}
}

func TestPlanParamsPreserved(t *testing.T) {
	p := plan(t, "SELECT * FROM users WHERE username = ? AND account > ?")
	scan, _ := findNode[*Scan](p)
	// binding keeps Param nodes; they are bound per-execution
	params := []types.Value{types.NewString("bob"), types.NewInt(5)}
	row := types.Row{types.NewInt(1), types.NewString("bob"), types.NewString("CH"), types.NewInt(10)}
	if !expr.TruthyEval(scan.Pred, row, params) {
		t.Error("param eval through plan failed")
	}
}

func TestPlanErrors(t *testing.T) {
	bad := []string{
		"SELECT * FROM missing",
		"SELECT nocol FROM users",
		"SELECT user_id FROM users, orders WHERE user_id = nono",
		"SELECT SUM(account) FROM users GROUP BY account + 1", // non-column group key
		"SELECT country FROM users WHERE SUM(account) > 5",    // agg in WHERE
	}
	for _, src := range bad {
		stmt, err := Parse(src)
		if err != nil {
			continue // parse-level failure also acceptable
		}
		if _, err := PlanSelect(stmt.(*SelectStmt), catalog()); err == nil {
			t.Errorf("PlanSelect(%q) should fail", src)
		}
	}
}

// String SUM/AVG must be a plan-time type error, not a silent 0 at
// execution (ROADMAP aggregate item).
func TestPlanStringAggregateTypeError(t *testing.T) {
	bad := []string{
		"SELECT SUM(username) FROM users GROUP BY country",
		"SELECT AVG(country) FROM users",
		"SELECT country FROM users GROUP BY country HAVING SUM(username) > 1",
		"SELECT SUM(i_title) FROM items",
	}
	for _, src := range bad {
		if _, err := PlanSelect(mustParse(t, src).(*SelectStmt), catalog()); err == nil {
			t.Errorf("PlanSelect(%q) should fail with a type error", src)
		}
	}
	// Numeric aggregates stay valid, incl. MIN/MAX over strings (defined by
	// lexicographic ordering).
	good := []string{
		"SELECT SUM(account) FROM users GROUP BY country",
		"SELECT AVG(o_total) FROM orders",
		"SELECT MIN(username), MAX(username) FROM users GROUP BY country",
		"SELECT COUNT(username) FROM users",
	}
	for _, src := range good {
		if _, err := PlanSelect(mustParse(t, src).(*SelectStmt), catalog()); err != nil {
			t.Errorf("PlanSelect(%q): unexpected error %v", src, err)
		}
	}
}

func TestPlanWriteStatements(t *testing.T) {
	ins, err := PlanStatement(mustParse(t, "INSERT INTO users (user_id, username) VALUES (?, ?)"), catalog())
	if err != nil {
		t.Fatal(err)
	}
	wp := ins.(*WritePlan)
	if wp.Kind != WriteInsert || len(wp.Values) != 4 {
		t.Errorf("insert plan = %+v", wp)
	}
	// unspecified columns default to NULL
	if v := wp.Values[2].Eval(nil, nil); !v.IsNull() {
		t.Error("default should be NULL")
	}

	upd, err := PlanStatement(mustParse(t, "UPDATE users SET account = account + 1 WHERE user_id = ?"), catalog())
	if err != nil {
		t.Fatal(err)
	}
	up := upd.(*WritePlan)
	if up.Kind != WriteUpdate || len(up.Set) != 1 || up.Set[0].Col != 3 || up.Pred == nil {
		t.Errorf("update plan = %+v", up)
	}

	del, err := PlanStatement(mustParse(t, "DELETE FROM users WHERE user_id = 1"), catalog())
	if err != nil {
		t.Fatal(err)
	}
	if del.(*WritePlan).Kind != WriteDelete {
		t.Error("delete kind")
	}

	ddl, err := PlanStatement(mustParse(t, "CREATE TABLE x (a INT)"), catalog())
	if err != nil {
		t.Fatal(err)
	}
	if ddl.(*DDLPlan).CreateTable == nil {
		t.Error("ddl plan missing")
	}
}

func TestPlanInsertArityMismatch(t *testing.T) {
	stmt := mustParse(t, "INSERT INTO users VALUES (1, 'a')")
	if _, err := PlanStatement(stmt, catalog()); err == nil {
		t.Error("arity mismatch should fail")
	}
	stmt = mustParse(t, "INSERT INTO users (user_id) VALUES (1, 2)")
	if _, err := PlanStatement(stmt, catalog()); err == nil {
		t.Error("column/value mismatch should fail")
	}
}

func TestInferKind(t *testing.T) {
	sch := catalog()["items"]
	cases := []struct {
		e    expr.Expr
		want types.Kind
	}{
		{&expr.ColRef{Idx: 2}, types.KindFloat},
		{&expr.Const{Val: types.NewInt(1)}, types.KindInt},
		{&expr.Arith{Op: expr.Add, L: &expr.ColRef{Idx: 0}, R: &expr.Const{Val: types.NewInt(1)}}, types.KindInt},
		{&expr.Arith{Op: expr.Div, L: &expr.ColRef{Idx: 0}, R: &expr.Const{Val: types.NewInt(2)}}, types.KindFloat},
		{&expr.Cmp{Op: expr.EQ, L: &expr.ColRef{Idx: 0}, R: &expr.Const{Val: types.NewInt(1)}}, types.KindBool},
	}
	for _, c := range cases {
		if got := inferKind(c.e, sch); got != c.want {
			t.Errorf("inferKind(%s) = %v, want %v", c.e, got, c.want)
		}
	}
}
