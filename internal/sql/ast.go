package sql

import (
	"shareddb/internal/types"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Node // may be nil
	GroupBy  []Node
	Having   Node
	OrderBy  []OrderItem
	Limit    int // -1 = none
}

// InsertStmt is INSERT INTO t (cols) VALUES (...).
type InsertStmt struct {
	Table   string
	Columns []string // empty = schema order
	Values  []Node
}

// UpdateStmt is UPDATE t SET col = expr, ... WHERE ...
type UpdateStmt struct {
	Table string
	Set   []SetClause
	Where Node
}

// DeleteStmt is DELETE FROM t WHERE ...
type DeleteStmt struct {
	Table string
	Where Node
}

// CreateTableStmt is CREATE TABLE t (col TYPE, ..., PRIMARY KEY(cols)).
type CreateTableStmt struct {
	Table   string
	Columns []ColumnDef
	Primary []string
}

// CreateIndexStmt is CREATE [UNIQUE] INDEX name ON t (cols).
type CreateIndexStmt struct {
	Name    string
	Table   string
	Columns []string
	Unique  bool
}

func (*SelectStmt) stmt()      {}
func (*InsertStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
func (*CreateTableStmt) stmt() {}
func (*CreateIndexStmt) stmt() {}

// ColumnDef defines one column in CREATE TABLE.
type ColumnDef struct {
	Name string
	Kind types.Kind
}

// SetClause is one assignment in UPDATE ... SET.
type SetClause struct {
	Column string
	Value  Node
}

// SelectItem is one entry of the select list.
type SelectItem struct {
	Star      bool   // SELECT * or t.*
	StarTable string // qualifier for t.*
	Expr      Node
	Alias     string
}

// TableRef names a table in FROM, optionally aliased, optionally the right
// side of an explicit JOIN with an ON condition.
type TableRef struct {
	Table  string
	Alias  string
	JoinOn Node // non-nil for explicit "JOIN t ON cond" (merged into WHERE)
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Node
	Desc bool
}

// Node is an unbound AST expression (names, not column indices).
type Node interface{ node() }

// Ident is a possibly qualified column reference ("c" or "t.c").
type Ident struct{ Name string }

// Lit is a literal value.
type Lit struct{ Val types.Value }

// ParamRef is the i-th positional '?' parameter.
type ParamRef struct{ Idx int }

// BinOp is a binary operation; Op is one of = <> < <= > >= + - * / % AND OR.
type BinOp struct {
	Op   string
	L, R Node
}

// UnOp is a unary operation; Op is one of NOT or - (negation).
type UnOp struct {
	Op  string
	Kid Node
}

// FuncCall is an aggregate call (COUNT/SUM/MIN/MAX/AVG).
type FuncCall struct {
	Name     string // upper-case
	Star     bool   // COUNT(*)
	Distinct bool
	Arg      Node
}

// LikeNode is [NOT] LIKE.
type LikeNode struct {
	L, Pattern Node
	Negate     bool
}

// InNode is [NOT] IN (list).
type InNode struct {
	L      Node
	List   []Node
	Negate bool
}

// IsNullNode is IS [NOT] NULL.
type IsNullNode struct {
	L      Node
	Negate bool
}

// BetweenNode is [NOT] BETWEEN lo AND hi.
type BetweenNode struct {
	L, Lo, Hi Node
	Negate    bool
}

func (*Ident) node()       {}
func (*Lit) node()         {}
func (*ParamRef) node()    {}
func (*BinOp) node()       {}
func (*UnOp) node()        {}
func (*FuncCall) node()    {}
func (*LikeNode) node()    {}
func (*InNode) node()      {}
func (*IsNullNode) node()  {}
func (*BetweenNode) node() {}
