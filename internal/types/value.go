// Package types defines the value, tuple and schema model shared by the
// storage manager, the shared operators and the SQL front-end.
//
// Values are small immutable scalars. The struct contains only comparable
// fields so a Value can be used directly as a Go map key, which the hash
// join and group-by operators rely on.
package types

import (
	"fmt"
	"math"
	"strconv"
	"time"
)

// Kind enumerates the scalar types supported by the engine.
type Kind uint8

// Supported value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
	KindTime // stored as Unix nanoseconds, UTC
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "VARCHAR"
	case KindBool:
		return "BOOL"
	case KindTime:
		return "TIMESTAMP"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single typed scalar. The zero Value is NULL.
//
// Int doubles as the representation for BOOL (0/1) and TIME (Unix nanos);
// this keeps the struct comparable and small.
type Value struct {
	K     Kind
	Int   int64
	Float float64
	Str   string
}

// Null is the SQL NULL value.
var Null = Value{}

// NewInt returns an INT value.
func NewInt(v int64) Value { return Value{K: KindInt, Int: v} }

// NewFloat returns a FLOAT value.
func NewFloat(v float64) Value { return Value{K: KindFloat, Float: v} }

// NewString returns a VARCHAR value.
func NewString(v string) Value { return Value{K: KindString, Str: v} }

// NewBool returns a BOOL value.
func NewBool(v bool) Value {
	if v {
		return Value{K: KindBool, Int: 1}
	}
	return Value{K: KindBool}
}

// NewTime returns a TIMESTAMP value (UTC, nanosecond precision).
func NewTime(t time.Time) Value { return Value{K: KindTime, Int: t.UnixNano()} }

// Kind returns the value's kind.
func (v Value) Kind() Kind { return v.K }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// AsInt returns the value as an int64. FLOATs are truncated, BOOLs map to
// 0/1, and all other kinds return 0.
func (v Value) AsInt() int64 {
	switch v.K {
	case KindInt, KindBool, KindTime:
		return v.Int
	case KindFloat:
		return int64(v.Float)
	default:
		return 0
	}
}

// AsFloat returns the value as a float64 (0 for non-numeric kinds).
func (v Value) AsFloat() float64 {
	switch v.K {
	case KindFloat:
		return v.Float
	case KindInt, KindBool, KindTime:
		return float64(v.Int)
	default:
		return 0
	}
}

// AsString returns the value as a string, formatting non-string kinds.
func (v Value) AsString() string {
	if v.K == KindString {
		return v.Str
	}
	return v.String()
}

// AsBool returns the truthiness of the value.
func (v Value) AsBool() bool {
	switch v.K {
	case KindBool, KindInt, KindTime:
		return v.Int != 0
	case KindFloat:
		return v.Float != 0
	case KindString:
		return v.Str != ""
	default:
		return false
	}
}

// AsTime returns the value as a time.Time (zero time for non-time kinds).
func (v Value) AsTime() time.Time {
	if v.K != KindTime {
		return time.Time{}
	}
	return time.Unix(0, v.Int).UTC()
}

// String renders the value for display and debugging.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case KindString:
		return v.Str
	case KindBool:
		if v.Int != 0 {
			return "true"
		}
		return "false"
	case KindTime:
		return v.AsTime().Format(time.RFC3339Nano)
	default:
		return fmt.Sprintf("Value(kind=%d)", uint8(v.K))
	}
}

// FNV-1a parameters shared by Value.Hash and the codec's composite
// KeyHash — the two mixes must stay compatible: shard routing hashes
// stored rows through KeyHash and relies on Value.Hash's coercion
// consistency.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// numericKind reports whether k participates in numeric coercion.
func numericKind(k Kind) bool {
	return k == KindInt || k == KindFloat || k == KindBool || k == KindTime
}

// Compare orders two values: -1 if v < o, 0 if equal, +1 if v > o.
// NULL sorts before every non-NULL value. INT/FLOAT/BOOL/TIME compare
// numerically with coercion; strings compare lexicographically. Values of
// incomparable kinds order by kind tag so that sorting is always total.
func (v Value) Compare(o Value) int {
	if v.K == KindNull || o.K == KindNull {
		switch {
		case v.K == o.K:
			return 0
		case v.K == KindNull:
			return -1
		default:
			return 1
		}
	}
	if numericKind(v.K) && numericKind(o.K) {
		if v.K == KindFloat || o.K == KindFloat {
			a, b := v.AsFloat(), o.AsFloat()
			switch {
			case a < b:
				return -1
			case a > b:
				return 1
			default:
				return 0
			}
		}
		a, b := v.Int, o.Int
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if v.K == KindString && o.K == KindString {
		switch {
		case v.Str < o.Str:
			return -1
		case v.Str > o.Str:
			return 1
		default:
			return 0
		}
	}
	// Incomparable kinds: fall back to kind ordering for a total order.
	switch {
	case v.K < o.K:
		return -1
	case v.K > o.K:
		return 1
	default:
		return 0
	}
}

// Equal reports whether two values compare equal (with numeric coercion).
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// Hash returns a 64-bit hash of the value, consistent with Equal for values
// of the same kind family (numeric values hash by their float64 image when
// either side could be FLOAT; the engine only mixes kinds via coercion in
// comparisons, hash tables are built per-column so kinds are homogeneous).
func (v Value) Hash() uint64 {
	h := uint64(fnvOffset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	switch v.K {
	case KindNull:
		mix(0)
	case KindInt, KindBool, KindTime:
		u := uint64(v.Int)
		for i := 0; i < 8; i++ {
			mix(byte(u >> (8 * i)))
		}
	case KindFloat:
		// Hash integral floats like the equal INT so coerced equality
		// keeps hash consistency.
		if f := v.Float; f == math.Trunc(f) && !math.IsInf(f, 0) {
			u := uint64(int64(f))
			for i := 0; i < 8; i++ {
				mix(byte(u >> (8 * i)))
			}
		} else {
			u := math.Float64bits(v.Float)
			for i := 0; i < 8; i++ {
				mix(byte(u >> (8 * i)))
			}
		}
	case KindString:
		for i := 0; i < len(v.Str); i++ {
			mix(v.Str[i])
		}
	}
	return h
}
