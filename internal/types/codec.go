package types

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary row codec used by the write-ahead log and checkpoints.
//
// Layout per value: 1 kind byte, then a kind-dependent payload:
//
//	NULL                      (nothing)
//	INT/BOOL/TIME             8-byte little-endian int64
//	FLOAT                     8-byte little-endian IEEE-754 bits
//	VARCHAR                   uvarint length + bytes
//
// A row is a uvarint column count followed by the encoded values.

// AppendValue appends the binary encoding of v to dst.
func AppendValue(dst []byte, v Value) []byte {
	dst = append(dst, byte(v.K))
	switch v.K {
	case KindNull:
	case KindInt, KindBool, KindTime:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(v.Int))
		dst = append(dst, buf[:]...)
	case KindFloat:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.Float))
		dst = append(dst, buf[:]...)
	case KindString:
		dst = binary.AppendUvarint(dst, uint64(len(v.Str)))
		dst = append(dst, v.Str...)
	}
	return dst
}

// DecodeValue decodes one value from b, returning the value and the number
// of bytes consumed.
func DecodeValue(b []byte) (Value, int, error) {
	if len(b) == 0 {
		return Null, 0, io.ErrUnexpectedEOF
	}
	k := Kind(b[0])
	switch k {
	case KindNull:
		return Null, 1, nil
	case KindInt, KindBool, KindTime:
		if len(b) < 9 {
			return Null, 0, io.ErrUnexpectedEOF
		}
		return Value{K: k, Int: int64(binary.LittleEndian.Uint64(b[1:9]))}, 9, nil
	case KindFloat:
		if len(b) < 9 {
			return Null, 0, io.ErrUnexpectedEOF
		}
		return NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(b[1:9]))), 9, nil
	case KindString:
		l, n := binary.Uvarint(b[1:])
		if n <= 0 {
			return Null, 0, io.ErrUnexpectedEOF
		}
		start := 1 + n
		end := start + int(l)
		if end > len(b) {
			return Null, 0, io.ErrUnexpectedEOF
		}
		return NewString(string(b[start:end])), end, nil
	default:
		return Null, 0, fmt.Errorf("corrupt value encoding: kind byte %d", b[0])
	}
}

// AppendRow appends the binary encoding of row r to dst.
func AppendRow(dst []byte, r Row) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(r)))
	for _, v := range r {
		dst = AppendValue(dst, v)
	}
	return dst
}

// DecodeRow decodes one row from b, returning the row and bytes consumed.
func DecodeRow(b []byte) (Row, int, error) {
	n, used := binary.Uvarint(b)
	if used <= 0 {
		return nil, 0, io.ErrUnexpectedEOF
	}
	off := used
	row := make(Row, 0, n)
	for i := uint64(0); i < n; i++ {
		v, c, err := DecodeValue(b[off:])
		if err != nil {
			return nil, 0, err
		}
		row = append(row, v)
		off += c
	}
	return row, off, nil
}

// KeyHash returns a 64-bit hash of a composite key, chaining the
// coercion-consistent per-value hashes (Value.Hash) through an FNV-style
// mix. It is the hash the shard router partitions primary keys on: equal
// keys — including INT/FLOAT pairs that compare equal under coercion —
// hash identically, so a row inserted with pk=1 and a lookup with pk=1.0
// land on the same shard.
func KeyHash(vals ...Value) uint64 {
	h := uint64(fnvOffset64)
	for _, v := range vals {
		h ^= v.Hash()
		h *= fnvPrime64
	}
	return h
}
