package types

import (
	"fmt"
	"math"
	"strings"
)

// Column describes one attribute of a relation. Name may be qualified
// ("table.col"); Qualifier holds the table (or alias) part when present.
type Column struct {
	Qualifier string // table name or alias, may be empty
	Name      string // bare column name
	Kind      Kind
}

// QName returns the qualified name ("t.c") or the bare name if unqualified.
func (c Column) QName() string {
	if c.Qualifier == "" {
		return c.Name
	}
	return c.Qualifier + "." + c.Name
}

// Col is shorthand for an unqualified column definition.
func Col(name string, kind Kind) Column { return Column{Name: name, Kind: kind} }

// Schema is an ordered list of columns with name-based lookup.
type Schema struct {
	Cols []Column
}

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) *Schema {
	return &Schema{Cols: cols}
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Cols) }

// ColIndex resolves a possibly-qualified column name to its index.
// A bare name matches any qualifier; "t.c" matches only columns with
// qualifier t. Returns an error when the name is unknown or ambiguous.
func (s *Schema) ColIndex(name string) (int, error) {
	qual, bare := "", name
	if i := strings.IndexByte(name, '.'); i >= 0 {
		qual, bare = name[:i], name[i+1:]
	}
	found := -1
	for i, c := range s.Cols {
		if !strings.EqualFold(c.Name, bare) {
			continue
		}
		if qual != "" && !strings.EqualFold(c.Qualifier, qual) {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("ambiguous column reference %q", name)
		}
		found = i
	}
	if found < 0 {
		return -1, fmt.Errorf("unknown column %q", name)
	}
	return found, nil
}

// MustColIndex is ColIndex for statically known-good names; it panics on
// resolution failure and is intended for tests and generated plans.
func (s *Schema) MustColIndex(name string) int {
	i, err := s.ColIndex(name)
	if err != nil {
		panic(err)
	}
	return i
}

// Concat returns the schema of a join result: the columns of s followed by
// the columns of o, qualifiers preserved.
func (s *Schema) Concat(o *Schema) *Schema {
	cols := make([]Column, 0, len(s.Cols)+len(o.Cols))
	cols = append(cols, s.Cols...)
	cols = append(cols, o.Cols...)
	return &Schema{Cols: cols}
}

// Project returns a schema containing the given column indices of s.
func (s *Schema) Project(idx []int) *Schema {
	cols := make([]Column, len(idx))
	for i, j := range idx {
		cols[i] = s.Cols[j]
	}
	return &Schema{Cols: cols}
}

// WithQualifier returns a copy of s with every column's qualifier replaced.
// Used when a table is aliased in a query ("FROM item i").
func (s *Schema) WithQualifier(q string) *Schema {
	cols := make([]Column, len(s.Cols))
	for i, c := range s.Cols {
		c.Qualifier = q
		cols[i] = c
	}
	return &Schema{Cols: cols}
}

// String renders the schema as "(a INT, b VARCHAR)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.QName())
		b.WriteByte(' ')
		b.WriteString(c.Kind.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Row is one tuple: a slice of values positionally aligned with a schema.
type Row []Value

// Clone returns a deep copy of the row (values are immutable, so a shallow
// copy of the slice suffices).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Concat returns the concatenation of two rows (join result).
func (r Row) Concat(o Row) Row {
	out := make(Row, 0, len(r)+len(o))
	out = append(out, r...)
	out = append(out, o...)
	return out
}

// String renders the row for debugging.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// EncodeKey builds a deterministic byte-string key from a list of values,
// suitable for use as a Go map key in hash joins and group-by tables.
// Distinct value lists produce distinct keys (values are length-prefixed),
// and numerically equal INT/FLOAT/BOOL/TIME values of the *same kind*
// produce equal keys.
func EncodeKey(vals ...Value) string {
	n := 0
	for _, v := range vals {
		n += 10 + len(v.Str)
	}
	b := make([]byte, 0, n)
	for _, v := range vals {
		b = append(b, byte(v.K))
		switch v.K {
		case KindNull:
		case KindInt, KindBool, KindTime:
			u := uint64(v.Int)
			for i := 0; i < 8; i++ {
				b = append(b, byte(u>>(8*i)))
			}
		case KindFloat:
			// Encode integral floats as their int64 image so INT and
			// FLOAT columns holding the same number join correctly.
			f := v.Float
			if f == float64(int64(f)) {
				b[len(b)-1] = byte(KindInt)
				u := uint64(int64(f))
				for i := 0; i < 8; i++ {
					b = append(b, byte(u>>(8*i)))
				}
			} else {
				u := math.Float64bits(f)
				for i := 0; i < 8; i++ {
					b = append(b, byte(u>>(8*i)))
				}
			}
		case KindString:
			l := uint32(len(v.Str))
			b = append(b, byte(l), byte(l>>8), byte(l>>16), byte(l>>24))
			b = append(b, v.Str...)
		}
	}
	return string(b)
}
