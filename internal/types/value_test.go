package types

import (
	"testing"
	"testing/quick"
	"time"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	now := time.Now().UTC().Truncate(time.Nanosecond)
	tests := []struct {
		name string
		v    Value
		kind Kind
		str  string
	}{
		{"int", NewInt(42), KindInt, "42"},
		{"negative int", NewInt(-7), KindInt, "-7"},
		{"float", NewFloat(3.5), KindFloat, "3.5"},
		{"string", NewString("abc"), KindString, "abc"},
		{"bool true", NewBool(true), KindBool, "true"},
		{"bool false", NewBool(false), KindBool, "false"},
		{"null", Null, KindNull, "NULL"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.v.Kind() != tt.kind {
				t.Errorf("Kind() = %v, want %v", tt.v.Kind(), tt.kind)
			}
			if tt.v.String() != tt.str {
				t.Errorf("String() = %q, want %q", tt.v.String(), tt.str)
			}
		})
	}
	if got := NewTime(now).AsTime(); !got.Equal(now) {
		t.Errorf("AsTime() = %v, want %v", got, now)
	}
}

func TestValueAs(t *testing.T) {
	if NewInt(5).AsFloat() != 5.0 {
		t.Error("int AsFloat")
	}
	if NewFloat(5.9).AsInt() != 5 {
		t.Error("float AsInt truncation")
	}
	if !NewInt(1).AsBool() || NewInt(0).AsBool() {
		t.Error("int AsBool")
	}
	if !NewString("x").AsBool() || NewString("").AsBool() {
		t.Error("string AsBool")
	}
	if Null.AsInt() != 0 || Null.AsFloat() != 0 || Null.AsBool() {
		t.Error("null accessors should be zero")
	}
}

func TestValueCompare(t *testing.T) {
	tests := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(2), NewFloat(2.0), 0},
		{NewInt(2), NewFloat(2.5), -1},
		{NewFloat(2.5), NewInt(2), 1},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{Null, NewInt(0), -1},
		{NewInt(0), Null, 1},
		{Null, Null, 0},
		{NewBool(false), NewBool(true), -1},
		{NewTime(time.Unix(1, 0)), NewTime(time.Unix(2, 0)), -1},
		// cross-kind: string vs int falls back to kind order (int < string)
		{NewInt(5), NewString("5"), -1},
	}
	for _, tt := range tests {
		if got := tt.a.Compare(tt.b); got != tt.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
		if got := tt.b.Compare(tt.a); got != -tt.want {
			t.Errorf("Compare(%v, %v) = %d, want %d (antisymmetry)", tt.b, tt.a, got, -tt.want)
		}
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := NewInt(a), NewInt(b)
		return va.Compare(vb) == -vb.Compare(va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashEqualConsistencyProperty(t *testing.T) {
	// Equal values of the same kind must hash identically, and an integral
	// float must hash like its int image (coerced join keys).
	f := func(x int64) bool {
		if NewInt(x).Hash() != NewInt(x).Hash() {
			return false
		}
		x %= 1 << 52 // keep exactly representable in float64
		return NewInt(x).Hash() == NewFloat(float64(x)).Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if NewString("ab").Hash() == NewString("ba").Hash() {
		t.Error("distinct strings should (very likely) hash differently")
	}
}

func TestValueAsStringAllKinds(t *testing.T) {
	if NewInt(3).AsString() != "3" {
		t.Error("int AsString")
	}
	if NewString("q").AsString() != "q" {
		t.Error("string AsString")
	}
}
