package types

import (
	"testing"
	"testing/quick"
)

func userSchema() *Schema {
	return NewSchema(
		Column{Qualifier: "users", Name: "id", Kind: KindInt},
		Column{Qualifier: "users", Name: "name", Kind: KindString},
		Column{Qualifier: "users", Name: "account", Kind: KindFloat},
	)
}

func TestSchemaColIndex(t *testing.T) {
	s := userSchema()
	for name, want := range map[string]int{
		"id": 0, "name": 1, "account": 2,
		"users.id": 0, "USERS.NAME": 1,
	} {
		got, err := s.ColIndex(name)
		if err != nil {
			t.Fatalf("ColIndex(%q): %v", name, err)
		}
		if got != want {
			t.Errorf("ColIndex(%q) = %d, want %d", name, got, want)
		}
	}
	if _, err := s.ColIndex("missing"); err == nil {
		t.Error("expected error for unknown column")
	}
	if _, err := s.ColIndex("orders.id"); err == nil {
		t.Error("expected error for wrong qualifier")
	}
}

func TestSchemaAmbiguity(t *testing.T) {
	s := userSchema().Concat(NewSchema(Column{Qualifier: "orders", Name: "id", Kind: KindInt}))
	if _, err := s.ColIndex("id"); err == nil {
		t.Error("bare 'id' should be ambiguous after join")
	}
	if i, err := s.ColIndex("orders.id"); err != nil || i != 3 {
		t.Errorf("orders.id = %d, %v; want 3, nil", i, err)
	}
}

func TestSchemaConcatProjectQualifier(t *testing.T) {
	s := userSchema()
	j := s.Concat(s.WithQualifier("u2"))
	if j.Len() != 6 {
		t.Fatalf("concat len = %d, want 6", j.Len())
	}
	if i := j.MustColIndex("u2.name"); i != 4 {
		t.Errorf("u2.name = %d, want 4", i)
	}
	p := j.Project([]int{4, 0})
	if p.Len() != 2 || p.Cols[0].Name != "name" || p.Cols[1].Name != "id" {
		t.Errorf("bad projection: %v", p)
	}
}

func TestEncodeKeyInjective(t *testing.T) {
	// ("a","bc") and ("ab","c") must not collide: lengths are encoded.
	k1 := EncodeKey(NewString("a"), NewString("bc"))
	k2 := EncodeKey(NewString("ab"), NewString("c"))
	if k1 == k2 {
		t.Error("EncodeKey collided on shifted strings")
	}
	if EncodeKey(NewInt(7)) != EncodeKey(NewFloat(7)) {
		t.Error("integral float should key like int (coerced join)")
	}
	if EncodeKey(NewInt(7)) == EncodeKey(NewInt(8)) {
		t.Error("distinct ints collided")
	}
}

func TestEncodeKeyProperty(t *testing.T) {
	f := func(a, b int64, s1, s2 string) bool {
		k1 := EncodeKey(NewInt(a), NewString(s1))
		k2 := EncodeKey(NewInt(b), NewString(s2))
		same := a == b && s1 == s2
		return (k1 == k2) == same
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRowCloneConcat(t *testing.T) {
	r := Row{NewInt(1), NewString("x")}
	c := r.Clone()
	c[0] = NewInt(9)
	if r[0].AsInt() != 1 {
		t.Error("Clone aliases the original")
	}
	j := r.Concat(Row{NewBool(true)})
	if len(j) != 3 || !j[2].AsBool() {
		t.Errorf("Concat = %v", j)
	}
	if r.String() != "[1, x]" {
		t.Errorf("Row.String() = %q", r.String())
	}
}

func TestRowCodecRoundTrip(t *testing.T) {
	rows := []Row{
		{},
		{Null},
		{NewInt(-5), NewFloat(2.25), NewString("héllo"), NewBool(true), Null},
		{NewString("")},
	}
	for _, r := range rows {
		enc := AppendRow(nil, r)
		dec, n, err := DecodeRow(enc)
		if err != nil {
			t.Fatalf("DecodeRow(%v): %v", r, err)
		}
		if n != len(enc) {
			t.Errorf("consumed %d of %d bytes", n, len(enc))
		}
		if len(dec) != len(r) {
			t.Fatalf("len mismatch: %d vs %d", len(dec), len(r))
		}
		for i := range r {
			if !dec[i].Equal(r[i]) || dec[i].K != r[i].K {
				t.Errorf("col %d: %v != %v", i, dec[i], r[i])
			}
		}
	}
}

func TestRowCodecProperty(t *testing.T) {
	f := func(i int64, fl float64, s string, b bool) bool {
		r := Row{NewInt(i), NewFloat(fl), NewString(s), NewBool(b)}
		enc := AppendRow(nil, r)
		dec, _, err := DecodeRow(enc)
		if err != nil || len(dec) != 4 {
			return false
		}
		return dec[0].Int == i && dec[1].Float == fl && dec[2].Str == s && dec[3].AsBool() == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	if _, _, err := DecodeValue(nil); err == nil {
		t.Error("empty input should error")
	}
	if _, _, err := DecodeValue([]byte{byte(KindInt), 1, 2}); err == nil {
		t.Error("short int should error")
	}
	if _, _, err := DecodeValue([]byte{200}); err == nil {
		t.Error("bad kind byte should error")
	}
	if _, _, err := DecodeRow([]byte{2, byte(KindNull)}); err == nil {
		t.Error("truncated row should error")
	}
}
