package tpcw

import (
	"fmt"
	"math/rand"
	"time"

	"shareddb/internal/storage"
	"shareddb/internal/types"
)

// Generator populates a TPC-W database deterministically from a seed.
type Generator struct {
	scale Scale
	rng   *rand.Rand

	// id high-water marks used by the runtime to allocate new keys
	MaxOrderID     int64
	MaxOrderLineID int64
	MaxCustomerID  int64
	MaxAddressID   int64
	MaxCartID      int64
}

// NewGenerator creates a generator.
func NewGenerator(scale Scale, seed int64) *Generator {
	return &Generator{scale: scale, rng: rand.New(rand.NewSource(seed))}
}

var baseTime = time.Date(2012, 8, 27, 0, 0, 0, 0, time.UTC)

func (g *Generator) randString(minLen, maxLen int) string {
	const alpha = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"
	n := minLen + g.rng.Intn(maxLen-minLen+1)
	b := make([]byte, n)
	for i := range b {
		b[i] = alpha[g.rng.Intn(len(alpha))]
	}
	return string(b)
}

func (g *Generator) randDate(daysBack int) time.Time {
	return baseTime.AddDate(0, 0, -g.rng.Intn(daysBack+1))
}

// Load populates all tables through the OpApplier interface, so the same
// loader fills a single database or a sharded deployment (the shard
// router's Stores routes each insert to its owning partition).
func (g *Generator) Load(db storage.OpApplier) error {
	if err := g.loadCountries(db); err != nil {
		return err
	}
	if err := g.loadAuthors(db); err != nil {
		return err
	}
	if err := g.loadItems(db); err != nil {
		return err
	}
	if err := g.loadAddresses(db); err != nil {
		return err
	}
	if err := g.loadCustomers(db); err != nil {
		return err
	}
	if err := g.loadOrders(db); err != nil {
		return err
	}
	return nil
}

func applyAll(db storage.OpApplier, ops []storage.WriteOp) error {
	const chunk = 4096
	for start := 0; start < len(ops); start += chunk {
		end := min(start+chunk, len(ops))
		results, _ := db.ApplyOps(ops[start:end])
		for _, r := range results {
			if r.Err != nil {
				return r.Err
			}
		}
	}
	return nil
}

var countryNames = []string{
	"United States", "United Kingdom", "Canada", "Germany", "France",
	"Japan", "Netherlands", "Italy", "Switzerland", "Australia",
}

func (g *Generator) loadCountries(db storage.OpApplier) error {
	ops := make([]storage.WriteOp, 0, numCountries)
	for i := 0; i < numCountries; i++ {
		name := fmt.Sprintf("Country%02d", i)
		if i < len(countryNames) {
			name = countryNames[i]
		}
		ops = append(ops, storage.WriteOp{Table: "country", Kind: storage.WInsert, Row: types.Row{
			types.NewInt(int64(i + 1)),
			types.NewString(name),
			types.NewFloat(g.rng.Float64()*10 + 0.1),
			types.NewString("Currency" + fmt.Sprint(i%10)),
		}})
	}
	return applyAll(db, ops)
}

func (g *Generator) loadAuthors(db storage.OpApplier) error {
	n := g.scale.Authors()
	ops := make([]storage.WriteOp, 0, n)
	for i := 0; i < n; i++ {
		ops = append(ops, storage.WriteOp{Table: "author", Kind: storage.WInsert, Row: types.Row{
			types.NewInt(int64(i + 1)),
			types.NewString(g.randString(3, 12)),
			types.NewString(fmt.Sprintf("Lastname%04d", i)),
			types.NewString(g.randString(1, 1)),
			types.NewTime(g.randDate(20000)),
			types.NewString(g.randString(50, 200)),
		}})
	}
	return applyAll(db, ops)
}

func (g *Generator) loadItems(db storage.OpApplier) error {
	n := g.scale.Items
	authors := g.scale.Authors()
	ops := make([]storage.WriteOp, 0, n)
	for i := 0; i < n; i++ {
		srp := float64(g.rng.Intn(9999))/100 + 1
		ops = append(ops, storage.WriteOp{Table: "item", Kind: storage.WInsert, Row: types.Row{
			types.NewInt(int64(i + 1)),
			types.NewString(fmt.Sprintf("Title %05d %s", i, g.randString(4, 20))),
			types.NewInt(int64(g.rng.Intn(authors) + 1)),
			types.NewTime(g.randDate(4000)),
			types.NewString("Publisher" + fmt.Sprint(i%37)),
			types.NewString(subjects[g.rng.Intn(len(subjects))]),
			types.NewString(g.randString(20, 100)),
			types.NewInt(int64(g.rng.Intn(n) + 1)), // i_related1
			types.NewString(fmt.Sprintf("img/thumb_%d.gif", i)),
			types.NewString(fmt.Sprintf("img/image_%d.gif", i)),
			types.NewFloat(srp),
			types.NewFloat(srp * (0.5 + g.rng.Float64()*0.5)),
			types.NewTime(g.randDate(30)),
			types.NewInt(int64(10 + g.rng.Intn(21))),
			types.NewString(fmt.Sprintf("%013d", g.rng.Int63n(1e13))),
			types.NewInt(int64(20 + g.rng.Intn(9980))),
			types.NewString([]string{"HARDBACK", "PAPERBACK", "USED", "AUDIO", "LIMITED-EDITION"}[g.rng.Intn(5)]),
			types.NewString(fmt.Sprintf("%dx%dx%d", 1+g.rng.Intn(9), 10+g.rng.Intn(20), 15+g.rng.Intn(10))),
		}})
	}
	return applyAll(db, ops)
}

func (g *Generator) loadAddresses(db storage.OpApplier) error {
	n := g.scale.Addresses()
	ops := make([]storage.WriteOp, 0, n)
	for i := 0; i < n; i++ {
		ops = append(ops, storage.WriteOp{Table: "address", Kind: storage.WInsert, Row: types.Row{
			types.NewInt(int64(i + 1)),
			types.NewString(g.randString(10, 30)),
			types.NewString(g.randString(10, 30)),
			types.NewString(g.randString(4, 15)),
			types.NewString(g.randString(2, 2)),
			types.NewString(fmt.Sprintf("%05d", g.rng.Intn(100000))),
			types.NewInt(int64(g.rng.Intn(numCountries) + 1)),
		}})
	}
	g.MaxAddressID = int64(n)
	return applyAll(db, ops)
}

func (g *Generator) loadCustomers(db storage.OpApplier) error {
	n := g.scale.Customers
	ops := make([]storage.WriteOp, 0, n)
	for i := 0; i < n; i++ {
		uname := fmt.Sprintf("user%06d", i+1)
		since := g.randDate(730)
		ops = append(ops, storage.WriteOp{Table: "customer", Kind: storage.WInsert, Row: types.Row{
			types.NewInt(int64(i + 1)),
			types.NewString(uname),
			types.NewString(uname), // spec: password = username lowercased
			types.NewString(g.randString(3, 12)),
			types.NewString(g.randString(3, 15)),
			types.NewInt(int64(g.rng.Intn(g.scale.Addresses()) + 1)),
			types.NewString(fmt.Sprintf("%010d", g.rng.Int63n(1e10))),
			types.NewString(uname + "@example.com"),
			types.NewTime(since),
			types.NewTime(since.AddDate(0, 0, g.rng.Intn(60))),
			types.NewTime(baseTime),
			types.NewTime(baseTime.Add(2 * time.Hour)),
			types.NewFloat(float64(g.rng.Intn(51)) / 100),
			types.NewFloat(0),
			types.NewFloat(float64(g.rng.Intn(100000)) / 100),
			types.NewTime(g.randDate(25000)),
			types.NewString(g.randString(100, 400)),
		}})
	}
	g.MaxCustomerID = int64(n)
	return applyAll(db, ops)
}

func (g *Generator) loadOrders(db storage.OpApplier) error {
	n := g.scale.Orders()
	ops := make([]storage.WriteOp, 0, n*5)
	olID := int64(0)
	shipTypes := []string{"AIR", "UPS", "FEDEX", "SHIP", "COURIER", "MAIL"}
	statuses := []string{"PENDING", "PROCESSING", "SHIPPED", "DENIED"}
	for i := 0; i < n; i++ {
		oid := int64(i + 1)
		date := g.randDate(60)
		nLines := 1 + g.rng.Intn(5)
		subtotal := 0.0
		for l := 0; l < nLines; l++ {
			olID++
			qty := int64(1 + g.rng.Intn(300)/100)
			subtotal += float64(qty) * (1 + g.rng.Float64()*99)
			ops = append(ops, storage.WriteOp{Table: "order_line", Kind: storage.WInsert, Row: types.Row{
				types.NewInt(olID),
				types.NewInt(oid),
				types.NewInt(int64(g.rng.Intn(g.scale.Items) + 1)),
				types.NewInt(qty),
				types.NewFloat(float64(g.rng.Intn(31)) / 100),
				types.NewString(g.randString(20, 100)),
			}})
		}
		tax := subtotal * 0.0825
		ops = append(ops, storage.WriteOp{Table: "orders", Kind: storage.WInsert, Row: types.Row{
			types.NewInt(oid),
			types.NewInt(int64(g.rng.Intn(g.scale.Customers) + 1)),
			types.NewTime(date),
			types.NewFloat(subtotal),
			types.NewFloat(tax),
			types.NewFloat(subtotal + tax + 3.0),
			types.NewString(shipTypes[g.rng.Intn(len(shipTypes))]),
			types.NewTime(date.AddDate(0, 0, g.rng.Intn(7))),
			types.NewInt(int64(g.rng.Intn(g.scale.Addresses()) + 1)),
			types.NewInt(int64(g.rng.Intn(g.scale.Addresses()) + 1)),
			types.NewString(statuses[g.rng.Intn(len(statuses))]),
		}})
		ops = append(ops, storage.WriteOp{Table: "cc_xacts", Kind: storage.WInsert, Row: types.Row{
			types.NewInt(oid),
			types.NewString([]string{"VISA", "MASTERCARD", "DISCOVER", "AMEX", "DINERS"}[g.rng.Intn(5)]),
			types.NewString(fmt.Sprintf("%016d", g.rng.Int63n(1e16))),
			types.NewString(g.randString(10, 30)),
			types.NewTime(baseTime.AddDate(g.rng.Intn(3), 0, 0)),
			types.NewString(g.randString(15, 15)),
			types.NewFloat(subtotal + tax),
			types.NewTime(date),
			types.NewInt(int64(g.rng.Intn(numCountries) + 1)),
		}})
	}
	g.MaxOrderID = int64(n)
	g.MaxOrderLineID = olID
	return applyAll(db, ops)
}
