package tpcw

// The prepared statements of the TPC-W reference implementation ("the
// implementation of the TPC-W benchmark involves about thirty different
// JDBC PreparedStatements", paper §2). Statement text follows the reference
// Java servlets, adapted to this engine's SQL subset:
//
//   - the best-sellers and most-recent-order scalar subqueries are split
//     into a separate MAX() statement plus a parameter (semantics
//     preserved: "the analysis of the latest 3,333 orders", §5.6);
//   - related items use the single i_related1 column;
//   - SELECT * is spelled out where the reference selected long column
//     lists (identical projection width is what matters for cost).
type StmtID int

// Statement identifiers.
const (
	StGetName StmtID = iota
	StGetBook
	StGetCustomer
	StDoSubjectSearch
	StDoTitleSearch
	StDoAuthorSearch
	StGetNewProducts
	StGetMaxOrderID
	StGetBestSellers
	StGetRelated
	StAdminUpdate
	StAdminUpdateRelated
	StGetUserName
	StGetPassword
	StGetMostRecentOrderID
	StGetMostRecentOrder
	StGetMostRecentOrderLines
	StCreateEmptyCart
	StAddLine
	StGetCartLine
	StUpdateLine
	StDeleteLine
	StGetCart
	StResetCartTime
	StRefreshSession
	StCreateNewCustomer
	StGetCDiscount
	StGetCAddr
	StEnterCCXact
	StClearCart
	StEnterAddress
	StGetCountryID
	StEnterOrder
	StAddOrderLine
	StGetStock
	StSetStock
	StGetLatestOrderID
	numStatements
)

// NumStatements is the number of prepared statements in the workload.
const NumStatements = int(numStatements)

// StatementSQL returns the SQL text for every statement, indexed by StmtID.
func StatementSQL() []string {
	s := make([]string, numStatements)
	s[StGetName] = `SELECT c_fname, c_lname FROM customer WHERE c_id = ?`
	s[StGetBook] = `SELECT i_id, i_title, i_pub_date, i_publisher, i_subject, i_desc,
		i_related1, i_thumbnail, i_image, i_srp, i_cost, i_avail, i_stock, i_isbn,
		i_page, i_backing, i_dimensions, a_fname, a_lname
		FROM item, author WHERE item.i_a_id = author.a_id AND i_id = ?`
	s[StGetCustomer] = `SELECT c_id, c_uname, c_passwd, c_fname, c_lname, c_phone,
		c_email, c_discount, c_balance, addr_street1, addr_city, addr_zip, co_name
		FROM customer, address, country
		WHERE customer.c_addr_id = address.addr_id
		AND address.addr_co_id = country.co_id AND customer.c_uname = ?`
	s[StDoSubjectSearch] = `SELECT i_id, i_title, i_srp, i_cost, a_fname, a_lname
		FROM item, author WHERE item.i_a_id = author.a_id AND item.i_subject = ?
		ORDER BY item.i_title LIMIT 50`
	s[StDoTitleSearch] = `SELECT i_id, i_title, i_srp, i_cost, a_fname, a_lname
		FROM item, author WHERE item.i_a_id = author.a_id AND item.i_title LIKE ?
		ORDER BY item.i_title LIMIT 50`
	s[StDoAuthorSearch] = `SELECT i_id, i_title, i_srp, i_cost, a_fname, a_lname
		FROM author, item WHERE author.a_lname LIKE ? AND item.i_a_id = author.a_id
		ORDER BY item.i_title LIMIT 50`
	s[StGetNewProducts] = `SELECT i_id, i_title, a_fname, a_lname
		FROM item, author WHERE item.i_a_id = author.a_id AND item.i_subject = ?
		ORDER BY item.i_pub_date DESC, item.i_title LIMIT 50`
	s[StGetMaxOrderID] = `SELECT MAX(o_id) FROM orders`
	s[StGetBestSellers] = `SELECT i_id, i_title, a_fname, a_lname, SUM(ol_qty) AS val
		FROM order_line, item, author
		WHERE order_line.ol_i_id = item.i_id AND item.i_a_id = author.a_id
		AND order_line.ol_o_id > ? AND item.i_subject = ?
		GROUP BY i_id, i_title, a_fname, a_lname
		ORDER BY val DESC LIMIT 50`
	s[StGetRelated] = `SELECT J.i_id, J.i_title, J.i_thumbnail, J.i_srp
		FROM item I, item J WHERE I.i_related1 = J.i_id AND I.i_id = ?`
	s[StAdminUpdate] = `UPDATE item SET i_cost = ?, i_image = ?, i_thumbnail = ?, i_pub_date = ?
		WHERE i_id = ?`
	s[StAdminUpdateRelated] = `UPDATE item SET i_related1 = ? WHERE i_id = ?`
	s[StGetUserName] = `SELECT c_uname FROM customer WHERE c_id = ?`
	s[StGetPassword] = `SELECT c_passwd FROM customer WHERE c_uname = ?`
	s[StGetMostRecentOrderID] = `SELECT MAX(o_id) FROM orders WHERE o_c_id = ?`
	s[StGetMostRecentOrder] = `SELECT o_id, o_c_id, o_date, o_sub_total, o_tax, o_total,
		o_ship_type, o_ship_date, o_status, c_fname, c_lname,
		addr_street1, addr_city, addr_zip, co_name
		FROM orders, customer, address, country
		WHERE orders.o_c_id = customer.c_id
		AND orders.o_bill_addr_id = address.addr_id
		AND address.addr_co_id = country.co_id
		AND orders.o_id = ?`
	s[StGetMostRecentOrderLines] = `SELECT ol_i_id, i_title, i_publisher, i_cost,
		ol_qty, ol_discount, ol_comments
		FROM order_line, item WHERE order_line.ol_i_id = item.i_id
		AND order_line.ol_o_id = ?`
	s[StCreateEmptyCart] = `INSERT INTO shopping_cart (sc_id, sc_time) VALUES (?, ?)`
	s[StAddLine] = `INSERT INTO shopping_cart_line (scl_sc_id, scl_qty, scl_i_id) VALUES (?, ?, ?)`
	s[StGetCartLine] = `SELECT scl_qty FROM shopping_cart_line WHERE scl_sc_id = ? AND scl_i_id = ?`
	s[StUpdateLine] = `UPDATE shopping_cart_line SET scl_qty = ? WHERE scl_sc_id = ? AND scl_i_id = ?`
	s[StDeleteLine] = `DELETE FROM shopping_cart_line WHERE scl_sc_id = ? AND scl_i_id = ?`
	s[StGetCart] = `SELECT scl_i_id, scl_qty, i_title, i_cost, i_srp, i_backing
		FROM shopping_cart_line, item
		WHERE shopping_cart_line.scl_i_id = item.i_id AND shopping_cart_line.scl_sc_id = ?`
	s[StResetCartTime] = `UPDATE shopping_cart SET sc_time = ? WHERE sc_id = ?`
	s[StRefreshSession] = `UPDATE customer SET c_login = ?, c_expiration = ? WHERE c_id = ?`
	s[StCreateNewCustomer] = `INSERT INTO customer (c_id, c_uname, c_passwd, c_fname,
		c_lname, c_addr_id, c_phone, c_email, c_since, c_last_login, c_login,
		c_expiration, c_discount, c_balance, c_ytd_pmt, c_birthdate, c_data)
		VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)`
	s[StGetCDiscount] = `SELECT c_discount FROM customer WHERE c_id = ?`
	s[StGetCAddr] = `SELECT c_addr_id FROM customer WHERE c_id = ?`
	s[StEnterCCXact] = `INSERT INTO cc_xacts (cx_o_id, cx_type, cx_num, cx_name,
		cx_expire, cx_auth_id, cx_xact_amt, cx_xact_date, cx_co_id)
		VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)`
	s[StClearCart] = `DELETE FROM shopping_cart_line WHERE scl_sc_id = ?`
	s[StEnterAddress] = `INSERT INTO address (addr_id, addr_street1, addr_street2,
		addr_city, addr_state, addr_zip, addr_co_id) VALUES (?, ?, ?, ?, ?, ?, ?)`
	s[StGetCountryID] = `SELECT co_id FROM country WHERE co_name = ?`
	s[StEnterOrder] = `INSERT INTO orders (o_id, o_c_id, o_date, o_sub_total, o_tax,
		o_total, o_ship_type, o_ship_date, o_bill_addr_id, o_ship_addr_id, o_status)
		VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)`
	s[StAddOrderLine] = `INSERT INTO order_line (ol_id, ol_o_id, ol_i_id, ol_qty,
		ol_discount, ol_comments) VALUES (?, ?, ?, ?, ?, ?)`
	s[StGetStock] = `SELECT i_stock FROM item WHERE i_id = ?`
	s[StSetStock] = `UPDATE item SET i_stock = ? WHERE i_id = ?`
	s[StGetLatestOrderID] = `SELECT MAX(o_id) FROM orders WHERE o_c_id = ?`
	return s
}
