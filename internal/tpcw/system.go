package tpcw

import (
	"fmt"

	"shareddb/internal/baseline"
	"shareddb/internal/core"
	"shareddb/internal/plan"
	"shareddb/internal/shard"
	"shareddb/internal/storage"
	"shareddb/internal/types"
)

// System abstracts a database system under test so the same interaction
// code drives SharedDB and the query-at-a-time baselines (the paper runs
// identical TPC-W workloads against SharedDB, MySQL and SystemX).
type System interface {
	Name() string
	Query(id StmtID, params ...types.Value) ([]types.Row, error)
	Exec(id StmtID, params ...types.Value) (int, error)
	// ExecTx runs a multi-statement write transaction: fn buffers writes
	// through the TxSink; the transaction commits when fn returns nil.
	ExecTx(fn func(tx TxSink) error) error
	Close()
}

// TxSink buffers transactional writes.
type TxSink interface {
	Exec(id StmtID, params ...types.Value) error
}

// --- SharedDB adapter ---

// SharedSystem runs the workload on a SharedDB execution backend: the
// single engine, or the sharded scatter-gather router — both behind
// core.Executor, so the interaction code cannot tell them apart.
type SharedSystem struct {
	engine core.Executor
	stmts  []*plan.Statement
}

// NewSharedSystem builds the always-on global plan for all TPC-W statements
// (the paper's Figure 6 plan) over db.
func NewSharedSystem(db *storage.Database, cfg core.Config) (*SharedSystem, error) {
	gp := plan.New(db)
	return newSharedSystem(core.New(db, gp, cfg))
}

// ShardedPlacement is the TPC-W table placement for a sharded deployment:
// the write-heavy per-customer state (orders, order lines, carts, credit
// card transactions) hash-partitions — order lines and cart lines
// co-partition with their parent id so their point lookups stay
// shard-local — while the catalog and customer dimensions replicate so
// every shard can run the paper's join plans locally.
func ShardedPlacement() shard.Placement {
	return shard.Placement{
		Replicated: []string{"country", "author", "item", "customer", "address"},
		PartitionKeys: map[string][]string{
			"order_line":         {"ol_o_id"},
			"shopping_cart_line": {"scl_sc_id"},
		},
	}
}

// NewShardedSystem builds the sharded backend: one shard engine per
// database behind the scatter-gather router, with every TPC-W statement
// classified and prepared on all shards.
func NewShardedSystem(dbs []*storage.Database, cfg core.Config) (*SharedSystem, error) {
	router, err := shard.New(dbs, cfg, ShardedPlacement())
	if err != nil {
		return nil, err
	}
	return newSharedSystem(router)
}

func newSharedSystem(exec core.Executor) (*SharedSystem, error) {
	sys := &SharedSystem{engine: exec}
	for id, sqlText := range StatementSQL() {
		st, err := exec.Prepare(sqlText)
		if err != nil {
			exec.Close()
			return nil, fmt.Errorf("tpcw: statement %d: %w", id, err)
		}
		sys.stmts = append(sys.stmts, st)
	}
	return sys, nil
}

// Name identifies the system in reports.
func (s *SharedSystem) Name() string { return "SharedDB" }

// Engine exposes the underlying execution backend (stats).
func (s *SharedSystem) Engine() core.Executor { return s.engine }

// Query runs a read statement.
func (s *SharedSystem) Query(id StmtID, params ...types.Value) ([]types.Row, error) {
	res := s.engine.Submit(s.stmts[id], params)
	if err := res.Wait(); err != nil {
		return nil, err
	}
	return res.Rows, nil
}

// Exec runs a write statement.
func (s *SharedSystem) Exec(id StmtID, params ...types.Value) (int, error) {
	res := s.engine.Submit(s.stmts[id], params)
	if err := res.Wait(); err != nil {
		return 0, err
	}
	return res.RowsAffected, nil
}

type sharedTx struct {
	sys *SharedSystem
	tx  core.Tx
}

func (t *sharedTx) Exec(id StmtID, params ...types.Value) error {
	wp := t.sys.stmts[id].Write
	if wp == nil {
		return fmt.Errorf("tpcw: statement %d is not a write", id)
	}
	op, err := core.BindWriteForTx(wp, params)
	if err != nil {
		return err
	}
	switch op.Kind {
	case storage.WInsert:
		t.tx.Insert(op.Table, op.Row)
	case storage.WUpdate:
		t.tx.Update(op.Table, op.Pred, op.Set)
	case storage.WDelete:
		t.tx.Delete(op.Table, op.Pred)
	}
	return nil
}

// ExecTx runs fn's buffered writes as one snapshot-isolated transaction
// committed in the next generation's update batch.
func (s *SharedSystem) ExecTx(fn func(tx TxSink) error) error {
	tx := s.engine.BeginTx()
	if err := fn(&sharedTx{sys: s, tx: tx}); err != nil {
		tx.Rollback()
		return err
	}
	return s.engine.SubmitTx(tx).Wait()
}

// Close stops the engine.
func (s *SharedSystem) Close() { s.engine.Close() }

// --- query-at-a-time adapter ---

// BaselineSystem runs the workload query-at-a-time (MySQLLike or
// SystemXLike profile).
type BaselineSystem struct {
	engine  *baseline.Engine
	stmts   []*baseline.Stmt
	db      *storage.Database
	profile baseline.Profile
}

// NewBaselineSystem prepares all statements on a query-at-a-time engine.
func NewBaselineSystem(db *storage.Database, profile baseline.Profile) (*BaselineSystem, error) {
	eng := baseline.New(db, profile)
	sys := &BaselineSystem{engine: eng, db: db, profile: profile}
	for id, sqlText := range StatementSQL() {
		st, err := eng.Prepare(sqlText)
		if err != nil {
			return nil, fmt.Errorf("tpcw: statement %d: %w", id, err)
		}
		sys.stmts = append(sys.stmts, st)
	}
	return sys, nil
}

// Name identifies the system in reports.
func (s *BaselineSystem) Name() string {
	if s.profile == baseline.MySQLLike {
		return "MySQL"
	}
	return "SystemX"
}

// Query runs a read statement.
func (s *BaselineSystem) Query(id StmtID, params ...types.Value) ([]types.Row, error) {
	res, err := s.stmts[id].Exec(params)
	if err != nil {
		return nil, err
	}
	return res.Rows, nil
}

// Exec runs a write statement.
func (s *BaselineSystem) Exec(id StmtID, params ...types.Value) (int, error) {
	res, err := s.stmts[id].Exec(params)
	if err != nil {
		return 0, err
	}
	return res.RowsAffected, nil
}

type baselineTx struct {
	sys *BaselineSystem
	tx  *storage.Tx
}

func (t *baselineTx) Exec(id StmtID, params ...types.Value) error {
	return t.sys.stmts[id].BufferInTx(t.tx, params)
}

// ExecTx commits fn's writes immediately (query-at-a-time transactions).
func (s *BaselineSystem) ExecTx(fn func(tx TxSink) error) error {
	tx := s.db.Begin()
	if err := fn(&baselineTx{sys: s, tx: tx}); err != nil {
		tx.Rollback()
		return err
	}
	return s.engine.ExecTx(tx)
}

// Close is a no-op for the baseline.
func (s *BaselineSystem) Close() {}
