// Package tpcw implements the TPC-W benchmark used in the paper's
// evaluation (§5): the full database schema, a scalable data generator, the
// prepared statements of the reference implementation, all 14 web
// interactions, the three workload mixes, and an emulated-browser driver
// measuring WIPS (web interactions per second) under the per-interaction
// response-time limits.
//
// Substitutions from the reference implementation are minimal and
// documented in DESIGN.md: no web tier or images (the paper also bypassed
// them), scalar subqueries split into two statements (MAX(o_id) is fetched
// separately, preserving "analysis of the latest 3,333 orders"), and
// related-items use a single related column.
package tpcw

import (
	"fmt"

	"shareddb/internal/storage"
	"shareddb/internal/types"
)

// Scale configures the database population. The TPC-W scale drivers are the
// item count and the emulated-browser count; the remaining cardinalities
// follow the spec's ratios.
type Scale struct {
	Items     int // spec: 1k, 10k, 100k, ...
	Customers int // spec: 2880 per EB; scaled down for laptop runs
}

// DefaultScale is a laptop-sized population.
func DefaultScale() Scale { return Scale{Items: 1000, Customers: 1440} }

// Authors returns the author count (spec: items / 4).
func (s Scale) Authors() int { return max(s.Items/4, 10) }

// Orders returns the initial order count (spec: 0.9 × customers).
func (s Scale) Orders() int { return max(s.Customers*9/10, 10) }

// Addresses returns the address count (spec: 2 × customers).
func (s Scale) Addresses() int { return s.Customers * 2 }

// numCountries matches the TPC-W country table.
const numCountries = 92

// subjects are the 24 item subjects of the TPC-W specification.
var subjects = []string{
	"ARTS", "BIOGRAPHIES", "BUSINESS", "CHILDREN", "COMPUTERS", "COOKING",
	"HEALTH", "HISTORY", "HOME", "HUMOR", "LITERATURE", "MYSTERY",
	"NON-FICTION", "PARENTING", "POLITICS", "REFERENCE", "RELIGION",
	"ROMANCE", "SELF-HELP", "SCIENCE-NATURE", "SCIENCE-FICTION", "SPORTS",
	"YOUTH", "TRAVEL",
}

// Subjects returns the 24 TPC-W subjects.
func Subjects() []string { return subjects }

// CreateSchema creates the nine TPC-W base tables of the paper's global
// plan (Figure 6) plus CC_XACTS, with the indexes both engines use.
func CreateSchema(db *storage.Database) error {
	type tableDef struct {
		name    string
		cols    []types.Column
		pk      []string
		indexes [][]string
	}
	col := func(table, name string, k types.Kind) types.Column {
		return types.Column{Qualifier: table, Name: name, Kind: k}
	}
	defs := []tableDef{
		{
			name: "country",
			cols: []types.Column{
				col("country", "co_id", types.KindInt),
				col("country", "co_name", types.KindString),
				col("country", "co_exchange", types.KindFloat),
				col("country", "co_currency", types.KindString),
			},
			pk:      []string{"co_id"},
			indexes: [][]string{{"co_name"}},
		},
		{
			name: "address",
			cols: []types.Column{
				col("address", "addr_id", types.KindInt),
				col("address", "addr_street1", types.KindString),
				col("address", "addr_street2", types.KindString),
				col("address", "addr_city", types.KindString),
				col("address", "addr_state", types.KindString),
				col("address", "addr_zip", types.KindString),
				col("address", "addr_co_id", types.KindInt),
			},
			pk: []string{"addr_id"},
		},
		{
			name: "customer",
			cols: []types.Column{
				col("customer", "c_id", types.KindInt),
				col("customer", "c_uname", types.KindString),
				col("customer", "c_passwd", types.KindString),
				col("customer", "c_fname", types.KindString),
				col("customer", "c_lname", types.KindString),
				col("customer", "c_addr_id", types.KindInt),
				col("customer", "c_phone", types.KindString),
				col("customer", "c_email", types.KindString),
				col("customer", "c_since", types.KindTime),
				col("customer", "c_last_login", types.KindTime),
				col("customer", "c_login", types.KindTime),
				col("customer", "c_expiration", types.KindTime),
				col("customer", "c_discount", types.KindFloat),
				col("customer", "c_balance", types.KindFloat),
				col("customer", "c_ytd_pmt", types.KindFloat),
				col("customer", "c_birthdate", types.KindTime),
				col("customer", "c_data", types.KindString),
			},
			pk:      []string{"c_id"},
			indexes: [][]string{{"c_uname"}, {"c_addr_id"}},
		},
		{
			name: "orders",
			cols: []types.Column{
				col("orders", "o_id", types.KindInt),
				col("orders", "o_c_id", types.KindInt),
				col("orders", "o_date", types.KindTime),
				col("orders", "o_sub_total", types.KindFloat),
				col("orders", "o_tax", types.KindFloat),
				col("orders", "o_total", types.KindFloat),
				col("orders", "o_ship_type", types.KindString),
				col("orders", "o_ship_date", types.KindTime),
				col("orders", "o_bill_addr_id", types.KindInt),
				col("orders", "o_ship_addr_id", types.KindInt),
				col("orders", "o_status", types.KindString),
			},
			pk:      []string{"o_id"},
			indexes: [][]string{{"o_c_id"}},
		},
		{
			name: "order_line",
			cols: []types.Column{
				col("order_line", "ol_id", types.KindInt),
				col("order_line", "ol_o_id", types.KindInt),
				col("order_line", "ol_i_id", types.KindInt),
				col("order_line", "ol_qty", types.KindInt),
				col("order_line", "ol_discount", types.KindFloat),
				col("order_line", "ol_comments", types.KindString),
			},
			pk:      []string{"ol_id"},
			indexes: [][]string{{"ol_o_id"}, {"ol_i_id"}},
		},
		{
			name: "cc_xacts",
			cols: []types.Column{
				col("cc_xacts", "cx_o_id", types.KindInt),
				col("cc_xacts", "cx_type", types.KindString),
				col("cc_xacts", "cx_num", types.KindString),
				col("cc_xacts", "cx_name", types.KindString),
				col("cc_xacts", "cx_expire", types.KindTime),
				col("cc_xacts", "cx_auth_id", types.KindString),
				col("cc_xacts", "cx_xact_amt", types.KindFloat),
				col("cc_xacts", "cx_xact_date", types.KindTime),
				col("cc_xacts", "cx_co_id", types.KindInt),
			},
			pk: []string{"cx_o_id"},
		},
		{
			name: "item",
			cols: []types.Column{
				col("item", "i_id", types.KindInt),
				col("item", "i_title", types.KindString),
				col("item", "i_a_id", types.KindInt),
				col("item", "i_pub_date", types.KindTime),
				col("item", "i_publisher", types.KindString),
				col("item", "i_subject", types.KindString),
				col("item", "i_desc", types.KindString),
				col("item", "i_related1", types.KindInt),
				col("item", "i_thumbnail", types.KindString),
				col("item", "i_image", types.KindString),
				col("item", "i_srp", types.KindFloat),
				col("item", "i_cost", types.KindFloat),
				col("item", "i_avail", types.KindTime),
				col("item", "i_stock", types.KindInt),
				col("item", "i_isbn", types.KindString),
				col("item", "i_page", types.KindInt),
				col("item", "i_backing", types.KindString),
				col("item", "i_dimensions", types.KindString),
			},
			pk:      []string{"i_id"},
			indexes: [][]string{{"i_subject"}, {"i_a_id"}, {"i_title"}},
		},
		{
			name: "author",
			cols: []types.Column{
				col("author", "a_id", types.KindInt),
				col("author", "a_fname", types.KindString),
				col("author", "a_lname", types.KindString),
				col("author", "a_mname", types.KindString),
				col("author", "a_dob", types.KindTime),
				col("author", "a_bio", types.KindString),
			},
			pk:      []string{"a_id"},
			indexes: [][]string{{"a_lname"}},
		},
		{
			name: "shopping_cart",
			cols: []types.Column{
				col("shopping_cart", "sc_id", types.KindInt),
				col("shopping_cart", "sc_time", types.KindTime),
			},
			pk: []string{"sc_id"},
		},
		{
			name: "shopping_cart_line",
			cols: []types.Column{
				col("shopping_cart_line", "scl_sc_id", types.KindInt),
				col("shopping_cart_line", "scl_qty", types.KindInt),
				col("shopping_cart_line", "scl_i_id", types.KindInt),
			},
			pk: []string{"scl_sc_id", "scl_i_id"},
		},
	}
	for _, d := range defs {
		t, err := db.CreateTable(d.name, types.NewSchema(d.cols...))
		if err != nil {
			return err
		}
		if _, err := t.SetPrimaryKey(d.pk...); err != nil {
			return err
		}
		for _, ixCols := range d.indexes {
			name := fmt.Sprintf("ix_%s_%s", d.name, ixCols[0])
			if _, err := t.AddIndex(name, false, ixCols...); err != nil {
				return err
			}
		}
	}
	return nil
}
