package tpcw

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"shareddb/internal/core"
	"shareddb/internal/harness"
	"shareddb/internal/shard"
	"shareddb/internal/storage"
)

// Mix selects one of the three TPC-W workload mixes (§5.1): "The Browsing
// mix is a read-mostly, search intensive workload ... The Ordering mix is a
// write-intensive workload with only a few analytical queries. The Shopping
// mix is somewhere in between."
type Mix int

// Workload mixes.
const (
	Browsing Mix = iota
	Shopping
	Ordering
)

// String names the mix.
func (m Mix) String() string {
	return [...]string{"Browsing", "Shopping", "Ordering"}[m]
}

// Weights returns the per-interaction probabilities of the mix. The TPC-W
// specification defines the mixes as Markov transition matrices; these are
// their stationary interaction frequencies (the spec's Table 5.3 summary),
// a standard simplification for database-tier benchmarking.
func (m Mix) Weights() [NumInteractions]float64 {
	switch m {
	case Browsing:
		return [NumInteractions]float64{
			29.00, 11.00, 11.00, 21.00, 12.00, 11.00,
			2.00, 0.82, 0.75, 0.69, 0.30, 0.25, 0.10, 0.09,
		}
	case Shopping:
		return [NumInteractions]float64{
			16.00, 5.00, 5.00, 17.00, 20.00, 17.00,
			11.60, 3.00, 2.60, 1.20, 0.75, 0.66, 0.10, 0.09,
		}
	default: // Ordering
		return [NumInteractions]float64{
			9.12, 0.46, 0.46, 12.35, 14.53, 13.08,
			13.53, 12.86, 12.73, 10.18, 0.25, 0.22, 0.12, 0.11,
		}
	}
}

// DriverConfig configures a TPC-W run.
type DriverConfig struct {
	EBs      int           // emulated browsers
	Duration time.Duration // measurement window
	// ThinkTime is the mean of the exponential think-time distribution.
	// The spec uses 7s; runs here scale it down together with the
	// response-time limits (TimeScale) to keep experiments laptop-sized
	// while preserving offered-load ratios (DESIGN.md §3).
	ThinkTime time.Duration
	Mix       Mix
	// Only restricts the workload to a single interaction (paper Figure 9);
	// -1 uses the mix.
	Only Interaction
	Seed int64
}

// TimeScale returns the factor by which think time was compressed relative
// to the spec's 7 s; response-time limits compress by the same factor.
func (c DriverConfig) TimeScale() float64 {
	if c.ThinkTime <= 0 {
		return 0
	}
	return float64(c.ThinkTime) / float64(7*time.Second)
}

// Metrics aggregates a run's outcome.
type Metrics struct {
	System   string
	Mix      Mix
	EBs      int
	Duration time.Duration

	Success int64 // interactions finished within their response-time limit
	Late    int64 // finished but exceeded the limit (not valid WIPS)
	// Shed counts interactions rejected by admission control
	// (ErrOverloaded): backpressure doing its job under overload, reported
	// separately from Errors so shed rate is measurable per run.
	Shed    int64
	Errors  int64
	Total   int64
	ByInter [NumInteractions]int64
	LateBy  [NumInteractions]int64
	Latency *harness.Histogram
	ByLat   [NumInteractions]*harness.Histogram
}

// WIPS is the paper's throughput metric: valid web interactions per second.
func (m *Metrics) WIPS() float64 {
	if m.Duration <= 0 {
		return 0
	}
	return float64(m.Success) / m.Duration.Seconds()
}

// ShedRate is the fraction of offered interactions rejected by admission
// control during the run.
func (m *Metrics) ShedRate() float64 {
	if m.Total == 0 {
		return 0
	}
	return float64(m.Shed) / float64(m.Total)
}

// OfferedLoad is the "GeneratedLoad" line of Figure 7: the throughput the
// EB population would generate with zero response time.
func OfferedLoad(ebs int, think time.Duration) float64 {
	if think <= 0 {
		return math.Inf(1)
	}
	return float64(ebs) / think.Seconds()
}

// RunDriver executes the closed-loop emulated-browser workload and returns
// aggregated metrics.
func RunDriver(sys System, scale Scale, ids *IDAllocator, cfg DriverConfig) *Metrics {
	m := &Metrics{
		System: sys.Name(), Mix: cfg.Mix, EBs: cfg.EBs, Duration: cfg.Duration,
		Latency: harness.NewHistogram(),
	}
	for i := range m.ByLat {
		m.ByLat[i] = harness.NewHistogram()
	}
	weights := cfg.Mix.Weights()
	var cum [NumInteractions]float64
	total := 0.0
	for i, w := range weights {
		total += w
		cum[i] = total
	}
	timeScale := cfg.TimeScale()
	deadline := time.Now().Add(cfg.Duration)

	var stop atomic.Bool
	var wg sync.WaitGroup
	for eb := 0; eb < cfg.EBs; eb++ {
		wg.Add(1)
		go func(eb int) {
			defer wg.Done()
			sess := NewSession(sys, scale, ids, cfg.Seed+int64(eb)*7919)
			rng := rand.New(rand.NewSource(cfg.Seed + int64(eb)*104729 + 1))
			for !stop.Load() && time.Now().Before(deadline) {
				inter := cfg.Only
				if inter < 0 || inter >= NumInteractions {
					pick := rng.Float64() * total
					for i := Interaction(0); i < NumInteractions; i++ {
						if pick <= cum[i] {
							inter = i
							break
						}
					}
				}
				start := time.Now()
				err := sess.Run(inter)
				lat := time.Since(start)

				limit := inter.Timeout()
				if timeScale > 0 {
					limit = time.Duration(float64(limit) * timeScale)
				}
				atomic.AddInt64(&m.Total, 1)
				atomic.AddInt64(&m.ByInter[inter], 1)
				shed := err != nil && errors.Is(err, core.ErrOverloaded)
				if !shed {
					// Rejections return in microseconds by design; folding
					// them into the histograms would understate admitted
					// latency in exactly the overload runs Shed is for.
					m.Latency.Observe(lat)
					m.ByLat[inter].Observe(lat)
				}
				switch {
				case shed:
					atomic.AddInt64(&m.Shed, 1)
					// Honor the typed back-off hint: retrying immediately
					// lands in the same overloaded generation window and is
					// shed again, inflating the shed rate without adding any
					// successful work. OverloadError.RetryAfter is the
					// server's estimate of when capacity frees up.
					var oe *core.OverloadError
					if errors.As(err, &oe) && oe.RetryAfter > 0 {
						wait := oe.RetryAfter
						if max := 10 * cfg.ThinkTime; cfg.ThinkTime > 0 && wait > max {
							wait = max // same cap the spec puts on think time
						}
						time.Sleep(wait)
					}
				case err != nil:
					atomic.AddInt64(&m.Errors, 1)
				case timeScale > 0 && lat > limit:
					atomic.AddInt64(&m.Late, 1)
					atomic.AddInt64(&m.LateBy[inter], 1)
				default:
					atomic.AddInt64(&m.Success, 1)
				}

				if cfg.ThinkTime > 0 {
					think := time.Duration(rng.ExpFloat64() * float64(cfg.ThinkTime))
					if think > 10*cfg.ThinkTime {
						think = 10 * cfg.ThinkTime // spec caps think time at 10× mean
					}
					time.Sleep(think)
				}
			}
		}(eb)
	}
	wg.Wait()
	stop.Store(true)
	return m
}

// Setup creates the TPC-W schema in db and loads the scaled population,
// returning the generator (whose high-water marks seed the ID allocator).
func Setup(db *storage.Database, scale Scale, seed int64) (*Generator, error) {
	if err := CreateSchema(db); err != nil {
		return nil, err
	}
	g := NewGenerator(scale, seed)
	if err := g.Load(db); err != nil {
		return nil, err
	}
	return g, nil
}

// SetupSharded creates the TPC-W schema on every shard database and loads
// the scaled population through the sharded placement: partitioned tables
// split by partition-key hash, the catalog dimensions replicated to every
// shard. The same generator seed produces the same logical database as an
// unsharded Setup.
func SetupSharded(dbs []*storage.Database, scale Scale, seed int64) (*Generator, error) {
	for _, db := range dbs {
		if err := CreateSchema(db); err != nil {
			return nil, err
		}
	}
	g := NewGenerator(scale, seed)
	if err := g.Load(shard.Stores{DBs: dbs, Policy: ShardedPlacement()}); err != nil {
		return nil, err
	}
	return g, nil
}
