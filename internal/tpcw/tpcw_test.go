package tpcw

import (
	"testing"
	"time"

	"shareddb/internal/baseline"
	"shareddb/internal/core"
	"shareddb/internal/storage"
	"shareddb/internal/testutil"
	"shareddb/internal/types"
)

func smallScale() Scale { return Scale{Items: 100, Customers: 80} }

func setupDB(t testing.TB, scale Scale) (*storage.Database, *Generator) {
	t.Helper()
	db, err := storage.Open(storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Setup(db, scale, 42)
	if err != nil {
		t.Fatal(err)
	}
	return db, g
}

func TestSchemaAndLoad(t *testing.T) {
	db, g := setupDB(t, smallScale())
	defer db.Close()
	ts := db.SnapshotTS()
	counts := map[string]int{
		"country":  numCountries,
		"item":     100,
		"customer": 80,
		"author":   smallScale().Authors(),
		"orders":   smallScale().Orders(),
	}
	for table, want := range counts {
		if got := db.Table(table).CountVisible(ts); got != want {
			t.Errorf("%s rows = %d, want %d", table, got, want)
		}
	}
	if got := db.Table("order_line").CountVisible(ts); got < smallScale().Orders() {
		t.Errorf("order_line rows = %d, want >= orders", got)
	}
	if g.MaxOrderID != int64(smallScale().Orders()) {
		t.Errorf("MaxOrderID = %d", g.MaxOrderID)
	}
	// deterministic: same seed → same data
	db2, _ := setupDB(t, smallScale())
	defer db2.Close()
	row1, _ := db.Table("item").Visible(0, ts)
	row2, _ := db2.Table("item").Visible(0, db2.SnapshotTS())
	if row1[1].AsString() != row2[1].AsString() {
		t.Error("generator not deterministic")
	}
}

func TestAllStatementsPrepareOnAllSystems(t *testing.T) {
	db, _ := setupDB(t, smallScale())
	defer db.Close()
	shared, err := NewSharedSystem(db, core.Config{})
	if err != nil {
		t.Fatalf("SharedDB prepare failed: %v", err)
	}
	defer shared.Close()
	if _, err := NewBaselineSystem(db, baseline.SystemXLike); err != nil {
		t.Fatalf("SystemX prepare failed: %v", err)
	}
	if _, err := NewBaselineSystem(db, baseline.MySQLLike); err != nil {
		t.Fatalf("MySQL prepare failed: %v", err)
	}
}

func allSystems(t *testing.T, db *storage.Database) []System {
	t.Helper()
	shared, err := NewSharedSystem(db, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(shared.Close)
	sx, err := NewBaselineSystem(db, baseline.SystemXLike)
	if err != nil {
		t.Fatal(err)
	}
	my, err := NewBaselineSystem(db, baseline.MySQLLike)
	if err != nil {
		t.Fatal(err)
	}
	return []System{shared, sx, my}
}

func TestEveryInteractionOnEverySystem(t *testing.T) {
	db, g := setupDB(t, smallScale())
	defer db.Close()
	ids := NewIDAllocator(g)
	for _, sys := range allSystems(t, db) {
		t.Run(sys.Name(), func(t *testing.T) {
			sess := NewSession(sys, smallScale(), ids, 7)
			for i := Interaction(0); i < NumInteractions; i++ {
				if err := sess.Run(i); err != nil {
					t.Errorf("%s failed: %v", i, err)
				}
			}
			// run the order pipeline twice more: cart → buy → display
			for round := 0; round < 2; round++ {
				for _, i := range []Interaction{ShoppingCart, BuyRequest, BuyConfirm, OrderDisplay} {
					if err := sess.Run(i); err != nil {
						t.Errorf("round %d %s failed: %v", round, i, err)
					}
				}
			}
		})
	}
}

// TestBuyConfirmConsistency verifies transactional integrity: after a
// purchase, the order exists, its lines match the former cart, and the cart
// is empty.
func TestBuyConfirmConsistency(t *testing.T) {
	db, g := setupDB(t, smallScale())
	defer db.Close()
	ids := NewIDAllocator(g)
	shared, err := NewSharedSystem(db, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer shared.Close()

	sess := NewSession(shared, smallScale(), ids, 99)
	if err := sess.Run(ShoppingCart); err != nil {
		t.Fatal(err)
	}
	cartID := sess.cartID
	cart, err := shared.Query(StGetCart, iv(cartID))
	if err != nil || len(cart) == 0 {
		t.Fatalf("cart: %v %d", err, len(cart))
	}
	beforeMax := ids.order.Load()
	if err := sess.Run(BuyConfirm); err != nil {
		t.Fatal(err)
	}
	oid := beforeMax + 1

	order, err := shared.Query(StGetMostRecentOrder, iv(oid))
	if err != nil || len(order) != 1 {
		t.Fatalf("order lookup: %v, %d rows", err, len(order))
	}
	lines, err := shared.Query(StGetMostRecentOrderLines, iv(oid))
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(cart) {
		t.Errorf("order lines = %d, cart had %d", len(lines), len(cart))
	}
	after, err := shared.Query(StGetCart, iv(cartID))
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 0 {
		t.Errorf("cart not cleared: %d lines", len(after))
	}
}

// TestSharedVsBaselineInteractionResults compares read-only interaction
// queries across engines on identical data.
func TestSharedVsBaselineInteractionResults(t *testing.T) {
	db, _ := setupDB(t, smallScale())
	defer db.Close()
	shared, err := NewSharedSystem(db, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer shared.Close()
	sx, err := NewBaselineSystem(db, baseline.SystemXLike)
	if err != nil {
		t.Fatal(err)
	}

	checks := []struct {
		id     StmtID
		params []types.Value
	}{
		{StGetName, []types.Value{iv(5)}},
		{StGetBook, []types.Value{iv(17)}},
		{StGetCustomer, []types.Value{sv("user000003")}},
		{StDoSubjectSearch, []types.Value{sv("ARTS")}},
		{StGetNewProducts, []types.Value{sv("HISTORY")}},
		{StGetBestSellers, []types.Value{iv(0), sv("COOKING")}},
		{StGetRelated, []types.Value{iv(9)}},
		{StGetMaxOrderID, nil},
		{StGetMostRecentOrderLines, []types.Value{iv(3)}},
	}
	for _, c := range checks {
		a, err := shared.Query(c.id, c.params...)
		if err != nil {
			t.Fatalf("shared stmt %d: %v", c.id, err)
		}
		b, err := sx.Query(c.id, c.params...)
		if err != nil {
			t.Fatalf("baseline stmt %d: %v", c.id, err)
		}
		if len(a) != len(b) {
			t.Errorf("stmt %d: shared %d rows, baseline %d rows", c.id, len(a), len(b))
		}
	}
}

func TestDriverShortRun(t *testing.T) {
	if testing.Short() {
		t.Skip("driver run")
	}
	db, g := setupDB(t, smallScale())
	defer db.Close()
	shared, err := NewSharedSystem(db, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer shared.Close()
	ids := NewIDAllocator(g)

	for _, mix := range []Mix{Browsing, Shopping, Ordering} {
		m := RunDriver(shared, smallScale(), ids, DriverConfig{
			EBs: 8, Duration: 300 * time.Millisecond,
			ThinkTime: time.Millisecond, Mix: mix, Only: -1, Seed: 1,
		})
		if m.Total == 0 {
			t.Errorf("%s: no interactions completed", mix)
		}
		if m.Errors > 0 {
			t.Errorf("%s: %d errors of %d", mix, m.Errors, m.Total)
		}
		if m.WIPS() <= 0 {
			t.Errorf("%s: WIPS = %v", mix, m.WIPS())
		}
	}
}

func TestDriverSingleInteraction(t *testing.T) {
	if testing.Short() {
		t.Skip("driver run")
	}
	db, g := setupDB(t, smallScale())
	defer db.Close()
	shared, err := NewSharedSystem(db, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer shared.Close()
	ids := NewIDAllocator(g)
	m := RunDriver(shared, smallScale(), ids, DriverConfig{
		EBs: 4, Duration: 200 * time.Millisecond, ThinkTime: 0,
		Mix: Shopping, Only: BestSellers, Seed: 3,
	})
	if m.ByInter[BestSellers] != m.Total || m.Total == 0 {
		t.Errorf("single-interaction run: %d/%d", m.ByInter[BestSellers], m.Total)
	}
}

func TestMixWeights(t *testing.T) {
	for _, mix := range []Mix{Browsing, Shopping, Ordering} {
		w := mix.Weights()
		sum := 0.0
		for _, x := range w {
			if x < 0 {
				t.Errorf("%s: negative weight", mix)
			}
			sum += x
		}
		if sum < 99 || sum > 101 {
			t.Errorf("%s weights sum to %.2f, want ~100", mix, sum)
		}
	}
	// browsing is search-heavy; ordering is buy-heavy
	b, o := Browsing.Weights(), Ordering.Weights()
	if b[BestSellers] <= o[BestSellers] {
		t.Error("browsing should have more best-sellers")
	}
	if o[BuyConfirm] <= b[BuyConfirm] {
		t.Error("ordering should have more buy-confirms")
	}
}

func TestOfferedLoad(t *testing.T) {
	if got := OfferedLoad(700, 7*time.Second); got != 100 {
		t.Errorf("OfferedLoad = %v", got)
	}
}

func TestInteractionMetadata(t *testing.T) {
	if NumInteractions != 14 {
		t.Errorf("interactions = %d", NumInteractions)
	}
	seen := map[string]bool{}
	for i := Interaction(0); i < NumInteractions; i++ {
		name := i.String()
		if seen[name] {
			t.Errorf("duplicate name %s", name)
		}
		seen[name] = true
		if i.Timeout() <= 0 {
			t.Errorf("%s has no timeout", name)
		}
	}
	if AdminConfirm.Timeout() != 20*time.Second {
		t.Error("AdminConfirm timeout should be the long one")
	}
}

// setupShardedDBs loads the fixture across n shard databases through the
// sharded placement.
func setupShardedDBs(t testing.TB, n int, scale Scale) ([]*storage.Database, *Generator) {
	t.Helper()
	dbs := make([]*storage.Database, n)
	for i := range dbs {
		db, err := storage.Open(storage.Options{Shard: storage.ShardInfo{Index: i, Count: n}})
		if err != nil {
			t.Fatal(err)
		}
		dbs[i] = db
	}
	g, err := SetupSharded(dbs, scale, 42)
	if err != nil {
		t.Fatal(err)
	}
	return dbs, g
}

// TestShardedEveryInteraction runs all 14 web interactions (plus the order
// pipeline twice) on a 3-shard deployment: every TPC-W statement must
// classify for sharding and execute correctly through the router.
func TestShardedEveryInteraction(t *testing.T) {
	dbs, g := setupShardedDBs(t, 3, smallScale())
	defer func() {
		for _, db := range dbs {
			db.Close()
		}
	}()
	sys, err := NewShardedSystem(dbs, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	ids := NewIDAllocator(g)
	sess := NewSession(sys, smallScale(), ids, 7)
	for i := Interaction(0); i < NumInteractions; i++ {
		if err := sess.Run(i); err != nil {
			t.Errorf("%s failed: %v", i, err)
		}
	}
	for round := 0; round < 2; round++ {
		for _, i := range []Interaction{ShoppingCart, BuyRequest, BuyConfirm, OrderDisplay} {
			if err := sess.Run(i); err != nil {
				t.Errorf("round %d %s failed: %v", round, i, err)
			}
		}
	}
}

// TestShardedVsSingleResults compares read-statement results between the
// sharded deployment and the single engine over the same logical data.
func TestShardedVsSingleResults(t *testing.T) {
	db, _ := setupDB(t, smallScale())
	defer db.Close()
	single, err := NewSharedSystem(db, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()

	dbs, _ := setupShardedDBs(t, 3, smallScale())
	defer func() {
		for _, sdb := range dbs {
			sdb.Close()
		}
	}()
	sharded, err := NewShardedSystem(dbs, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()

	checks := []struct {
		id     StmtID
		params []types.Value
	}{
		{StGetName, []types.Value{iv(5)}},
		{StGetBook, []types.Value{iv(17)}},
		{StGetCustomer, []types.Value{sv("user000003")}},
		{StDoSubjectSearch, []types.Value{sv("ARTS")}},
		{StGetNewProducts, []types.Value{sv("HISTORY")}},
		{StGetBestSellers, []types.Value{iv(0), sv("COOKING")}},
		{StGetRelated, []types.Value{iv(9)}},
		{StGetMaxOrderID, nil},
		{StGetMostRecentOrderLines, []types.Value{iv(3)}},
		{StGetCart, []types.Value{iv(1)}},
		{StGetLatestOrderID, []types.Value{iv(4)}},
	}
	for _, c := range checks {
		a, err := sharded.Query(c.id, c.params...)
		if err != nil {
			t.Fatalf("sharded stmt %d: %v", c.id, err)
		}
		b, err := single.Query(c.id, c.params...)
		if err != nil {
			t.Fatalf("single stmt %d: %v", c.id, err)
		}
		ca, cb := testutil.CanonRows(a), testutil.CanonRows(b)
		if len(ca) != len(cb) {
			t.Errorf("stmt %d: sharded %d rows, single %d rows", c.id, len(a), len(b))
			continue
		}
		for i := range ca {
			if ca[i] != cb[i] {
				t.Errorf("stmt %d row %d: sharded %q, single %q", c.id, i, ca[i], cb[i])
				break
			}
		}
	}
}

// TestShardedDriverShortRun drives the full Shopping mix against a 2-shard
// deployment.
func TestShardedDriverShortRun(t *testing.T) {
	if testing.Short() {
		t.Skip("driver run")
	}
	dbs, g := setupShardedDBs(t, 2, smallScale())
	defer func() {
		for _, db := range dbs {
			db.Close()
		}
	}()
	sys, err := NewShardedSystem(dbs, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	ids := NewIDAllocator(g)
	m := RunDriver(sys, smallScale(), ids, DriverConfig{
		EBs: 8, Duration: 300 * time.Millisecond,
		ThinkTime: time.Millisecond, Mix: Shopping, Only: -1, Seed: 1,
	})
	if m.Total == 0 {
		t.Error("no interactions completed on the sharded system")
	}
	if m.Errors > 0 {
		t.Errorf("%d of %d interactions failed", m.Errors, m.Total)
	}
}

// TestDriverOverloadCountsShed runs the closed-loop driver against a
// SharedDB instance whose queue cap is far below the offered concurrency:
// admission rejections must land in Metrics.Shed (not Errors), the run must
// complete without deadlock, and the accounting must close.
func TestDriverOverloadCountsShed(t *testing.T) {
	if testing.Short() {
		t.Skip("driver run")
	}
	db, g := setupDB(t, smallScale())
	defer db.Close()
	shared, err := NewSharedSystem(db, core.Config{
		QueueDepthLimit:        2,
		MaxInFlightGenerations: 1,
		Heartbeat:              2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer shared.Close()
	ids := NewIDAllocator(g)

	m := RunDriver(shared, smallScale(), ids, DriverConfig{
		EBs: 24, Duration: 400 * time.Millisecond, ThinkTime: 0,
		Mix: Browsing, Only: -1, Seed: 11,
	})
	if m.Total == 0 {
		t.Fatal("no interactions offered")
	}
	if m.Errors > 0 {
		t.Fatalf("%d non-overload errors of %d", m.Errors, m.Total)
	}
	if m.Shed == 0 {
		t.Fatalf("24 EBs against a 2-deep queue must shed (total %d)", m.Total)
	}
	if m.Success == 0 {
		t.Fatal("overload must still admit interactions")
	}
	if got := m.Success + m.Late + m.Shed + m.Errors; got != m.Total {
		t.Fatalf("accounting: %d classified of %d total", got, m.Total)
	}
	if rate := m.ShedRate(); rate <= 0 || rate >= 1 {
		t.Fatalf("shed rate %v, want in (0, 1)", rate)
	}
}
