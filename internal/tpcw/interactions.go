package tpcw

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"shareddb/internal/storage"
	"shareddb/internal/types"
)

// Interaction enumerates the 14 TPC-W web interactions.
type Interaction int

// Web interactions (paper Figure 9 order).
const (
	Home Interaction = iota
	NewProducts
	BestSellers
	ProductDetail
	SearchRequest
	SearchResults
	ShoppingCart
	CustomerRegistration
	BuyRequest
	BuyConfirm
	OrderInquiry
	OrderDisplay
	AdminRequest
	AdminConfirm
	NumInteractions
)

// String returns the interaction name.
func (i Interaction) String() string {
	return [...]string{
		"Home", "NewProducts", "BestSellers", "ProductDetail", "SearchRequest",
		"SearchResults", "ShoppingCart", "CustomerRegistration", "BuyRequest",
		"BuyConfirm", "OrderInquiry", "OrderDisplay", "AdminRequest", "AdminConfirm",
	}[i]
}

// Timeout returns the TPC-W web-interaction response-time constraint
// (seconds, per the specification's WIRT table).
func (i Interaction) Timeout() time.Duration {
	secs := [...]int{3, 5, 5, 3, 3, 10, 3, 3, 3, 5, 3, 3, 3, 20}[i]
	return time.Duration(secs) * time.Second
}

// IDAllocator hands out fresh primary keys during the run (the reference
// implementation does this in the application tier).
type IDAllocator struct {
	order     atomic.Int64
	orderLine atomic.Int64
	customer  atomic.Int64
	address   atomic.Int64
	cart      atomic.Int64
}

// NewIDAllocator seeds the counters from the generator's high-water marks.
func NewIDAllocator(g *Generator) *IDAllocator {
	a := &IDAllocator{}
	a.order.Store(g.MaxOrderID)
	a.orderLine.Store(g.MaxOrderLineID)
	a.customer.Store(g.MaxCustomerID)
	a.address.Store(g.MaxAddressID)
	a.cart.Store(g.MaxCartID)
	return a
}

// Session is one emulated browser's state: the system under test, its
// private RNG and the identifiers it touched.
type Session struct {
	Sys   System
	Rng   *rand.Rand
	IDs   *IDAllocator
	Scale Scale

	customerID int64
	cartID     int64
	lastItemID int64
	// BestSellerWindow is the paper's "latest 3,333 orders" (§5.6), scaled
	// with the database population.
	BestSellerWindow int64
}

// NewSession creates a session.
func NewSession(sys System, scale Scale, ids *IDAllocator, seed int64) *Session {
	w := int64(3333)
	if maxW := int64(scale.Orders()); w > maxW {
		w = maxW / 3
		if w < 10 {
			w = 10
		}
	}
	return &Session{
		Sys: sys, Rng: rand.New(rand.NewSource(seed)), IDs: ids, Scale: scale,
		customerID:       1 + int64(seed)%int64(scale.Customers),
		BestSellerWindow: w,
	}
}

func (s *Session) randItem() int64 { return int64(s.Rng.Intn(s.Scale.Items) + 1) }
func (s *Session) randSubject() string {
	return subjects[s.Rng.Intn(len(subjects))]
}

// iv/sv/fv/tv are parameter constructors.
func iv(v int64) types.Value     { return types.NewInt(v) }
func sv(v string) types.Value    { return types.NewString(v) }
func fv(v float64) types.Value   { return types.NewFloat(v) }
func tv(v time.Time) types.Value { return types.NewTime(v) }

// Run executes one web interaction end to end (all its database queries).
func (s *Session) Run(i Interaction) error {
	switch i {
	case Home:
		return s.home()
	case NewProducts:
		return s.newProducts()
	case BestSellers:
		return s.bestSellers()
	case ProductDetail:
		return s.productDetail()
	case SearchRequest:
		return s.searchRequest()
	case SearchResults:
		return s.searchResults()
	case ShoppingCart:
		return s.shoppingCart()
	case CustomerRegistration:
		return s.customerRegistration()
	case BuyRequest:
		return s.buyRequest()
	case BuyConfirm:
		return s.buyConfirm()
	case OrderInquiry:
		return s.orderInquiry()
	case OrderDisplay:
		return s.orderDisplay()
	case AdminRequest:
		return s.adminRequest()
	case AdminConfirm:
		return s.adminConfirm()
	default:
		return fmt.Errorf("tpcw: unknown interaction %d", i)
	}
}

// home fetches the customer greeting and the promotional items
// ("two queries ... the first fetches a set of promotion items, and the
// second retrieves the profile of the user", paper §5.1).
func (s *Session) home() error {
	if _, err := s.Sys.Query(StGetName, iv(s.customerID)); err != nil {
		return err
	}
	_, err := s.Sys.Query(StGetRelated, iv(s.randItem()))
	return err
}

func (s *Session) newProducts() error {
	rows, err := s.Sys.Query(StGetNewProducts, sv(s.randSubject()))
	if err == nil && len(rows) > 0 {
		s.lastItemID = rows[s.Rng.Intn(len(rows))][0].AsInt()
	}
	return err
}

// bestSellers is the paper's heavy query (§5.6): the latest orders window
// comes from a separate MAX(o_id) statement (scalar-subquery substitution).
func (s *Session) bestSellers() error {
	rows, err := s.Sys.Query(StGetMaxOrderID)
	if err != nil {
		return err
	}
	maxOID := int64(0)
	if len(rows) > 0 {
		maxOID = rows[0][0].AsInt()
	}
	res, err := s.Sys.Query(StGetBestSellers, iv(maxOID-s.BestSellerWindow), sv(s.randSubject()))
	if err == nil && len(res) > 0 {
		s.lastItemID = res[s.Rng.Intn(len(res))][0].AsInt()
	}
	return err
}

func (s *Session) productDetail() error {
	item := s.lastItemID
	if item == 0 || s.Rng.Intn(2) == 0 {
		item = s.randItem()
	}
	rows, err := s.Sys.Query(StGetBook, iv(item))
	if err != nil {
		return err
	}
	if len(rows) == 1 {
		s.lastItemID = rows[0][0].AsInt()
	}
	return nil
}

// searchRequest serves the search form plus promotional items.
func (s *Session) searchRequest() error {
	_, err := s.Sys.Query(StGetRelated, iv(s.randItem()))
	return err
}

func (s *Session) searchResults() error {
	var rows []types.Row
	var err error
	switch s.Rng.Intn(3) {
	case 0:
		rows, err = s.Sys.Query(StDoSubjectSearch, sv(s.randSubject()))
	case 1:
		rows, err = s.Sys.Query(StDoTitleSearch, sv(fmt.Sprintf("Title %02d%%", s.Rng.Intn(100))))
	default:
		rows, err = s.Sys.Query(StDoAuthorSearch, sv(fmt.Sprintf("Lastname%02d%%", s.Rng.Intn(100))))
	}
	if err == nil && len(rows) > 0 {
		s.lastItemID = rows[s.Rng.Intn(len(rows))][0].AsInt()
	}
	return err
}

// shoppingCart creates or mutates the session's cart and displays it.
func (s *Session) shoppingCart() error {
	if s.cartID == 0 {
		s.cartID = s.IDs.cart.Add(1)
		if _, err := s.Sys.Exec(StCreateEmptyCart, iv(s.cartID), tv(time.Now())); err != nil {
			return err
		}
	}
	item := s.lastItemID
	if item == 0 {
		item = s.randItem()
	}
	// add or bump the line
	lines, err := s.Sys.Query(StGetCartLine, iv(s.cartID), iv(item))
	if err != nil {
		return err
	}
	if len(lines) == 0 {
		if _, err := s.Sys.Exec(StAddLine, iv(s.cartID), iv(1), iv(item)); err != nil {
			return err
		}
	} else {
		qty := lines[0][0].AsInt() + 1
		if _, err := s.Sys.Exec(StUpdateLine, iv(qty), iv(s.cartID), iv(item)); err != nil {
			return err
		}
	}
	if _, err := s.Sys.Exec(StResetCartTime, tv(time.Now()), iv(s.cartID)); err != nil {
		return err
	}
	_, err = s.Sys.Query(StGetCart, iv(s.cartID))
	return err
}

func (s *Session) customerRegistration() error {
	// 80% returning customer, 20% new registration (reference behaviour)
	if s.Rng.Intn(5) > 0 {
		_, err := s.Sys.Query(StGetUserName, iv(s.customerID))
		return err
	}
	cid := s.IDs.customer.Add(1)
	addrID, err := s.enterAddress()
	if err != nil {
		return err
	}
	uname := fmt.Sprintf("newuser%07d", cid)
	now := time.Now()
	_, err = s.Sys.Exec(StCreateNewCustomer,
		iv(cid), sv(uname), sv(uname), sv("First"), sv("Last"), iv(addrID),
		sv("5551234567"), sv(uname+"@example.com"), tv(now), tv(now), tv(now),
		tv(now.Add(2*time.Hour)), fv(float64(s.Rng.Intn(51))/100), fv(0), fv(0),
		tv(now.AddDate(-30, 0, 0)), sv("new customer"))
	if err != nil {
		return err
	}
	s.customerID = cid
	return nil
}

func (s *Session) enterAddress() (int64, error) {
	rows, err := s.Sys.Query(StGetCountryID, sv("Switzerland"))
	if err != nil {
		return 0, err
	}
	coID := int64(1)
	if len(rows) > 0 {
		coID = rows[0][0].AsInt()
	}
	addrID := s.IDs.address.Add(1)
	_, err = s.Sys.Exec(StEnterAddress, iv(addrID), sv("1 Main St"), sv(""),
		sv("Zurich"), sv("ZH"), sv("8000"), iv(coID))
	return addrID, err
}

func (s *Session) buyRequest() error {
	if _, err := s.Sys.Query(StGetCustomer, sv(fmt.Sprintf("user%06d", s.customerID))); err != nil {
		return err
	}
	if s.cartID == 0 {
		if err := s.shoppingCart(); err != nil {
			return err
		}
	}
	if _, err := s.Sys.Query(StGetCart, iv(s.cartID)); err != nil {
		return err
	}
	_, err := s.Sys.Exec(StRefreshSession, tv(time.Now()), tv(time.Now().Add(2*time.Hour)), iv(s.customerID))
	return err
}

// buyConfirm is the write-heavy interaction: it turns the cart into an
// order inside one transaction (order header, one order line per cart line,
// stock updates, credit-card transaction, cart clearing).
//
// A snapshot-isolation conflict (another customer's purchase committing a
// stock update to the same item after this transaction's Begin) aborts the
// commit atomically; like a real TPC-W client the session retries the
// interaction a few times — the cart is untouched by an aborted commit and
// stock is re-read on each attempt. Note the conflict check only covers
// the Begin→commit window: the reference read-then-write behaviour (stock
// is read before the transaction opens) can still overwrite a competing
// update that committed before Begin, exactly as in TPC-W implementations
// on snapshot-isolation databases.
func (s *Session) buyConfirm() error {
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		err = s.buyConfirmOnce()
		if err == nil || !errors.Is(err, storage.ErrConflict) {
			return err
		}
	}
	return err
}

func (s *Session) buyConfirmOnce() error {
	if s.cartID == 0 {
		if err := s.shoppingCart(); err != nil {
			return err
		}
	}
	discRows, err := s.Sys.Query(StGetCDiscount, iv(s.customerID))
	if err != nil {
		return err
	}
	discount := 0.0
	if len(discRows) > 0 {
		discount = discRows[0][0].AsFloat()
	}
	cart, err := s.Sys.Query(StGetCart, iv(s.cartID))
	if err != nil {
		return err
	}
	if len(cart) == 0 {
		s.cartID = 0
		return nil // empty cart: nothing to buy
	}
	addrRows, err := s.Sys.Query(StGetCAddr, iv(s.customerID))
	if err != nil {
		return err
	}
	addrID := int64(1)
	if len(addrRows) > 0 {
		addrID = addrRows[0][0].AsInt()
	}

	subtotal := 0.0
	for _, line := range cart {
		subtotal += float64(line[1].AsInt()) * line[3].AsFloat()
	}
	subtotal *= 1 - discount
	tax := subtotal * 0.0825
	total := subtotal + tax + 3.0
	oid := s.IDs.order.Add(1)
	now := time.Now()

	// stock reads happen before the transaction (reference behaviour reads
	// then conditionally updates)
	type stockUpdate struct {
		item  int64
		stock int64
	}
	var stockUpdates []stockUpdate
	for _, line := range cart {
		itemID, qty := line[0].AsInt(), line[1].AsInt()
		st, err := s.Sys.Query(StGetStock, iv(itemID))
		if err != nil {
			return err
		}
		if len(st) == 0 {
			continue
		}
		newStock := st[0][0].AsInt() - qty
		if newStock < 10 {
			newStock += 21
		}
		stockUpdates = append(stockUpdates, stockUpdate{item: itemID, stock: newStock})
	}

	err = s.Sys.ExecTx(func(tx TxSink) error {
		if err := tx.Exec(StEnterOrder, iv(oid), iv(s.customerID), tv(now),
			fv(subtotal), fv(tax), fv(total), sv("UPS"), tv(now.AddDate(0, 0, 3)),
			iv(addrID), iv(addrID), sv("PENDING")); err != nil {
			return err
		}
		for _, line := range cart {
			olID := s.IDs.orderLine.Add(1)
			if err := tx.Exec(StAddOrderLine, iv(olID), iv(oid),
				iv(line[0].AsInt()), iv(line[1].AsInt()), fv(discount), sv("")); err != nil {
				return err
			}
		}
		for _, su := range stockUpdates {
			if err := tx.Exec(StSetStock, iv(su.stock), iv(su.item)); err != nil {
				return err
			}
		}
		if err := tx.Exec(StEnterCCXact, iv(oid), sv("VISA"),
			sv("1234567812345678"), sv("Cardholder"), tv(now.AddDate(2, 0, 0)),
			sv("AUTH-OK"), fv(total), tv(now), iv(1)); err != nil {
			return err
		}
		return tx.Exec(StClearCart, iv(s.cartID))
	})
	if err != nil {
		return err
	}
	s.cartID = 0
	return nil
}

func (s *Session) orderInquiry() error {
	_, err := s.Sys.Query(StGetPassword, sv(fmt.Sprintf("user%06d", s.customerID)))
	return err
}

// orderDisplay is the paper's "Order Display" interaction: the customer's
// most recent order with its lines (a 4-way join plus a join to items).
func (s *Session) orderDisplay() error {
	rows, err := s.Sys.Query(StGetMostRecentOrderID, iv(s.customerID))
	if err != nil {
		return err
	}
	if len(rows) == 0 || rows[0][0].IsNull() {
		return nil // customer has no orders
	}
	oid := rows[0][0].AsInt()
	if oid == 0 {
		return nil
	}
	if _, err := s.Sys.Query(StGetMostRecentOrder, iv(oid)); err != nil {
		return err
	}
	_, err = s.Sys.Query(StGetMostRecentOrderLines, iv(oid))
	return err
}

func (s *Session) adminRequest() error {
	_, err := s.Sys.Query(StGetBook, iv(s.randItem()))
	return err
}

// adminConfirm updates an item's price/image and recomputes its related
// item from the current best sellers of its subject (simplified from the
// reference's 5-way related computation; DESIGN.md §3).
func (s *Session) adminConfirm() error {
	item := s.randItem()
	rows, err := s.Sys.Query(StGetMaxOrderID)
	if err != nil {
		return err
	}
	maxOID := int64(0)
	if len(rows) > 0 {
		maxOID = rows[0][0].AsInt()
	}
	best, err := s.Sys.Query(StGetBestSellers, iv(maxOID-s.BestSellerWindow), sv(s.randSubject()))
	if err != nil {
		return err
	}
	related := s.randItem()
	if len(best) > 0 {
		related = best[0][0].AsInt()
	}
	now := time.Now()
	if _, err := s.Sys.Exec(StAdminUpdate, fv(float64(s.Rng.Intn(9999))/100+1),
		sv(fmt.Sprintf("img/image_%d.gif", item)), sv(fmt.Sprintf("img/thumb_%d.gif", item)),
		tv(now), iv(item)); err != nil {
		return err
	}
	_, err = s.Sys.Exec(StAdminUpdateRelated, iv(related), iv(item))
	return err
}
