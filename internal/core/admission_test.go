package core

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"shareddb/internal/baseline"
	"shareddb/internal/plan"
	"shareddb/internal/sql"
	"shareddb/internal/types"
)

// --- controller unit tests (engine mutex not required: single goroutine) ---

func TestAdmissionDisabledIsNil(t *testing.T) {
	if a := newAdmission(Config{}); a != nil {
		t.Fatalf("zero-value admission config must disable the controller, got %+v", a)
	}
	// Negative values are clamped to disabled (Validate rejects them on the
	// public path; New must not blow up on raw internal use).
	if a := newAdmission(Config{MaxGenerationDelay: -1, QueueDepthLimit: -2, StatementQuota: -3}); a != nil {
		t.Fatalf("negative limits must clamp to disabled, got %+v", a)
	}
	if a := newAdmission(Config{QueueDepthLimit: 5}); a == nil {
		t.Fatal("a single non-zero limit must enable the controller")
	}
}

func TestOverloadErrorIsAndAs(t *testing.T) {
	err := error(&OverloadError{Reason: "queue full", RetryAfter: 3 * time.Millisecond})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatal("OverloadError must match errors.Is(err, ErrOverloaded)")
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.RetryAfter != 3*time.Millisecond {
		t.Fatalf("errors.As must recover the retry hint, got %+v", oe)
	}
}

func TestAdmitQueueDepthBoundary(t *testing.T) {
	a := newAdmission(Config{QueueDepthLimit: 4})
	// depth below the limit admits, at the limit rejects: the limit is the
	// max depth the queue ever reaches.
	if err := a.admit(nil, 3); err != nil {
		t.Fatalf("depth 3 of limit 4 must admit: %v", err)
	}
	err := a.admit(nil, 4)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("depth 4 of limit 4 must reject with ErrOverloaded, got %v", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.RetryAfter <= 0 {
		t.Fatalf("queue rejection needs a positive retry hint, got %+v", oe)
	}
	if a.rejected != 1 {
		t.Fatalf("rejected counter = %d, want 1", a.rejected)
	}
}

// mkReqs builds synthetic requests: one per statement in stmts, in order.
func mkReqs(stmts ...*plan.Statement) []*Request {
	out := make([]*Request, len(stmts))
	for i, s := range stmts {
		out[i] = &Request{Stmt: s, Result: &Result{done: make(chan struct{})}}
	}
	return out
}

func TestFormBatchQuotaExactlyAtBoundary(t *testing.T) {
	a := newAdmission(Config{StatementQuota: 2})
	// Quota identity is the SQL text (ad-hoc prepares make fresh handles).
	sa := &plan.Statement{ID: 1, SQL: "SELECT a"}
	sb := &plan.Statement{ID: 2, SQL: "SELECT b"}

	// Exactly at the quota: everything admits, nothing sheds.
	pending := mkReqs(sa, sa, sb)
	batch, rest := a.formBatch(pending, 0)
	if len(batch) != 3 || len(rest) != 0 || a.shed != 0 {
		t.Fatalf("at-boundary batch: got %d admitted, %d shed (counter %d), want 3/0/0",
			len(batch), len(rest), a.shed)
	}

	// One over: the third activation of sa sheds, arrival order preserved
	// in both partitions.
	pending = mkReqs(sa, sa, sa, sb)
	third := pending[2]
	batch, rest = a.formBatch(pending, 0)
	if len(batch) != 3 || len(rest) != 1 {
		t.Fatalf("over-quota: got %d admitted, %d shed, want 3/1", len(batch), len(rest))
	}
	if batch[0].Stmt != sa || batch[1].Stmt != sa || batch[2].Stmt != sb {
		t.Fatalf("admitted order broken: %v", []*plan.Statement{batch[0].Stmt, batch[1].Stmt, batch[2].Stmt})
	}
	if rest[0] != third {
		t.Fatal("the shed request must be the third (over-quota) activation of sa")
	}
	if a.shed != 1 {
		t.Fatalf("shed counter = %d, want 1", a.shed)
	}

	// Quota scratch is cleared between calls: the same statement admits
	// again next generation.
	batch, rest = a.formBatch(mkReqs(sa, sa), 0)
	if len(batch) != 2 || len(rest) != 0 {
		t.Fatalf("fresh generation must re-admit up to quota, got %d/%d", len(batch), len(rest))
	}

	// A distinct handle with the same SQL (the ad-hoc path re-preparing)
	// shares sa's quota bucket.
	saAdhoc := &plan.Statement{ID: 9, SQL: "SELECT a"}
	batch, rest = a.formBatch(mkReqs(sa, saAdhoc, saAdhoc), 0)
	if len(batch) != 2 || len(rest) != 1 {
		t.Fatalf("same-SQL handles must share the quota, got %d/%d", len(batch), len(rest))
	}

	// Writes are exempt: quota shedding is non-positional and would
	// reorder the write stream (divergent replicated copies on shards).
	wr := &plan.Statement{ID: 3, SQL: "UPDATE t", Write: &sql.WritePlan{}}
	batch, rest = a.formBatch(mkReqs(wr, wr, wr, wr), 0)
	if len(batch) != 4 || len(rest) != 0 {
		t.Fatalf("writes must bypass the quota, got %d admitted / %d shed", len(batch), len(rest))
	}
}

func TestFormBatchSLOCapAndMaxBatchCompose(t *testing.T) {
	a := newAdmission(Config{MaxGenerationDelay: 10 * time.Millisecond})
	s := &plan.Statement{ID: 1}

	// No cost history: the SLO cannot size the batch yet, everything admits.
	batch, rest := a.formBatch(mkReqs(s, s, s, s), 0)
	if len(batch) != 4 || rest != nil {
		t.Fatalf("no-history SLO must not cap, got %d/%d", len(batch), len(rest))
	}

	// 4ms per request observed → a 10ms SLO admits 2 per generation.
	a.recordGeneration(nil, 4*time.Millisecond, 1)
	if c := a.sloCap(); c != 2 {
		t.Fatalf("sloCap = %d, want 2 (10ms SLO / 4ms cost)", c)
	}
	batch, rest = a.formBatch(mkReqs(s, s, s, s), 0)
	if len(batch) != 2 || len(rest) != 2 {
		t.Fatalf("SLO cap: got %d admitted, %d shed, want 2/2", len(batch), len(rest))
	}
	if a.shed != 2 {
		t.Fatalf("SLO deferrals must count as shed, got %d want 2", a.shed)
	}

	// MaxBatch below the SLO cap wins; a cost spike cannot starve the
	// engine — the cap floors at one request per generation. The MaxBatch
	// trim is the legacy cap: it must NOT count as shed.
	shedBefore := a.shed
	batch, _ = a.formBatch(mkReqs(s, s, s), 1)
	if len(batch) != 1 {
		t.Fatalf("MaxBatch=1 must cap at 1, got %d", len(batch))
	}
	if a.shed != shedBefore {
		t.Fatalf("MaxBatch overflow counted as shed (%d -> %d)", shedBefore, a.shed)
	}
	a.costNs = float64(time.Second)
	if c := a.sloCap(); c != 1 {
		t.Fatalf("sloCap with cost >> SLO = %d, want floor of 1", c)
	}
}

func TestBreakerTripHalfOpenResetCycle(t *testing.T) {
	a := newAdmission(Config{
		MaxGenerationDelay: 10 * time.Millisecond,
		BreakerStrikes:     2,
		BreakerCooldown:    100 * time.Millisecond,
	})
	clock := time.Unix(0, 0)
	a.now = func() time.Time { return clock }
	s := &plan.Statement{ID: 7, SQL: "SELECT slow"}
	slow, fast := 20*time.Millisecond, 2*time.Millisecond

	// One strike: still closed.
	a.recordGeneration([]*plan.Statement{s}, slow, 1)
	if err := a.admit(s, 0); err != nil {
		t.Fatalf("one strike of two must stay closed: %v", err)
	}
	// An SLO-met generation resets the strike count.
	a.recordGeneration([]*plan.Statement{s}, fast, 1)
	a.recordGeneration([]*plan.Statement{s}, slow, 1)
	if err := a.admit(s, 0); err != nil {
		t.Fatalf("strikes must reset after a fast generation: %v", err)
	}

	// Two consecutive strikes: trips.
	a.recordGeneration([]*plan.Statement{s}, slow, 1)
	err := a.admit(s, 0)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("tripped breaker must reject, got %v", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.RetryAfter <= 0 || oe.RetryAfter > 100*time.Millisecond {
		t.Fatalf("open-breaker retry hint must be the remaining cooldown, got %+v", oe)
	}
	if a.trips != 1 {
		t.Fatalf("trips = %d, want 1", a.trips)
	}

	// Mid-cooldown: still rejecting, hint shrinks with the clock.
	clock = clock.Add(60 * time.Millisecond)
	if err := a.admit(s, 0); err == nil {
		t.Fatal("mid-cooldown must still reject")
	} else if errors.As(err, &oe) && oe.RetryAfter > 40*time.Millisecond {
		t.Fatalf("retry hint must shrink to the remaining cooldown, got %v", oe.RetryAfter)
	}

	// Cooldown elapsed: the pre-Prepare peek must admit WITHOUT consuming
	// the probe slot, then half-open admits exactly one probe.
	clock = clock.Add(41 * time.Millisecond)
	if err := a.peekBreaker(s.SQL); err != nil {
		t.Fatalf("peek after cooldown must admit: %v", err)
	}
	if err := a.admit(s, 0); err != nil {
		t.Fatalf("half-open must admit the probe (peek must not have consumed it): %v", err)
	}
	if err := a.peekBreaker(s.SQL); !errors.Is(err, ErrOverloaded) {
		t.Fatal("peek during the probe must reject")
	}
	if err := a.admit(s, 0); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second submission during the probe must reject, got %v", err)
	}

	// Failed probe: re-trips for another full cooldown.
	a.recordGeneration([]*plan.Statement{s}, slow, 1)
	if a.trips != 2 {
		t.Fatalf("failed probe must count a trip, got %d", a.trips)
	}
	if err := a.admit(s, 0); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("re-tripped breaker must reject, got %v", err)
	}

	// Cooldown again, probe again — this time it meets the SLO: full reset.
	clock = clock.Add(101 * time.Millisecond)
	if err := a.admit(s, 0); err != nil {
		t.Fatalf("second probe must admit: %v", err)
	}
	a.recordGeneration([]*plan.Statement{s}, fast, 1)
	if _, quarantined := a.breakers[s.SQL]; quarantined {
		t.Fatal("successful probe must fully reset (delete) the breaker")
	}
	for i := 0; i < 3; i++ {
		if err := a.admit(s, 0); err != nil {
			t.Fatalf("closed breaker must admit freely: %v", err)
		}
	}
}

// TestWriteOnlyGenerationsFeedCostEWMA: a pure-write workload must still
// train the SLO batch cap — otherwise a write burst leaves costNs at zero
// and generations drain unboundedly against a configured SLO.
func TestWriteOnlyGenerationsFeedCostEWMA(t *testing.T) {
	db, closeDB := bookstore(t)
	defer closeDB()
	e := New(db, plan.New(db), Config{MaxGenerationDelay: 50 * time.Millisecond})
	defer e.Close()
	w := mustPrepare(t, e, "UPDATE item SET i_price = i_price + 1 WHERE i_id = ?")
	for i := 0; i < 3; i++ {
		if err := e.Submit(w, []types.Value{types.NewInt(int64(i))}).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	e.mu.Lock()
	cost := e.adm.costNs
	e.mu.Unlock()
	if cost <= 0 {
		t.Fatal("write-only generations must feed the cost EWMA")
	}
}

// --- Validate ---

func TestValidateAdmissionConfig(t *testing.T) {
	valid := []Config{
		{},
		{MaxGenerationDelay: time.Millisecond},
		{MaxGenerationDelay: 50 * time.Millisecond, QueueDepthLimit: 10, StatementQuota: 5,
			BreakerStrikes: 2, BreakerCooldown: time.Second},
		{QueueDepthLimit: 1},
	}
	for _, cfg := range valid {
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", cfg, err)
		}
	}
	invalid := []Config{
		{MaxGenerationDelay: -time.Millisecond},
		{MaxGenerationDelay: 500 * time.Microsecond}, // below timer resolution
		{MaxGenerationDelay: time.Nanosecond},
		{QueueDepthLimit: -1},
		{StatementQuota: -1},
		{BreakerStrikes: -1, MaxGenerationDelay: time.Millisecond},
		{BreakerCooldown: -time.Second, MaxGenerationDelay: time.Millisecond},
		{BreakerStrikes: 3},                 // breaker without an SLO
		{BreakerCooldown: time.Second},      // breaker without an SLO
		{StatementQuota: -7, Workers: 2},    // negative quota with other knobs fine
		{QueueDepthLimit: -3, MaxBatch: 10}, // negative depth with other knobs fine
	}
	for _, cfg := range invalid {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", cfg)
		}
	}
}

// --- engine-level tests ---

// TestAdmissionNonBindingDifferential pins the differential guarantee the
// tentpole must not break: with admission ENABLED but every limit far above
// the workload, results are identical to the query-at-a-time oracle (and
// nothing is shed or rejected) — the admission path may observe, but not
// perturb.
func TestAdmissionNonBindingDifferential(t *testing.T) {
	db, closeDB := bookstore(t)
	defer closeDB()
	gp := plan.New(db)
	e := New(db, gp, Config{
		MaxGenerationDelay: 10 * time.Second,
		QueueDepthLimit:    1 << 20,
		StatementQuota:     1 << 20,
	})
	defer e.Close()
	if e.adm == nil {
		t.Fatal("admission must be enabled for this test")
	}
	qat := baseline.New(db, baseline.SystemXLike)

	templates := []struct {
		sql     string
		mkParam func(r *rand.Rand) []types.Value
	}{
		{"SELECT i_title, i_price FROM item WHERE i_id = ?",
			func(r *rand.Rand) []types.Value { return []types.Value{types.NewInt(int64(r.Intn(120)))} }},
		{"SELECT i_id, i_title FROM item WHERE i_subject = ?",
			func(r *rand.Rand) []types.Value {
				subjects := []string{"ARTS", "SCIENCE", "HISTORY", "COOKING"}
				return []types.Value{types.NewString(subjects[r.Intn(len(subjects))])}
			}},
		{"SELECT i_subject, COUNT(*), AVG(i_price) FROM item WHERE i_price > ? GROUP BY i_subject",
			func(r *rand.Rand) []types.Value { return []types.Value{types.NewFloat(r.Float64() * 100)} }},
		{"SELECT i_title, a_lname FROM item, author WHERE i_a_id = a_id AND i_subject = ?",
			func(r *rand.Rand) []types.Value { return []types.Value{types.NewString("ARTS")} }},
	}
	sharedStmts := make([]*plan.Statement, len(templates))
	qatStmts := make([]*baseline.Stmt, len(templates))
	for i, tpl := range templates {
		sharedStmts[i] = mustPrepare(t, e, tpl.sql)
		var err error
		qatStmts[i], err = qat.Prepare(tpl.sql)
		if err != nil {
			t.Fatal(err)
		}
	}
	r := rand.New(rand.NewSource(2027))
	for round := 0; round < 8; round++ {
		n := 1 + r.Intn(24)
		idxs := make([]int, n)
		params := make([][]types.Value, n)
		results := make([]*Result, n)
		for i := 0; i < n; i++ {
			idxs[i] = r.Intn(len(templates))
			params[i] = templates[idxs[i]].mkParam(r)
			results[i] = e.Submit(sharedStmts[idxs[i]], params[i])
		}
		for i := 0; i < n; i++ {
			if err := results[i].Wait(); err != nil {
				t.Fatalf("round %d query %d: %v", round, i, err)
			}
			want, err := qatStmts[idxs[i]].Exec(params[i])
			if err != nil {
				t.Fatal(err)
			}
			if !sameRows(results[i].Rows, want.Rows) {
				t.Fatalf("round %d: mismatch for %q %v", round, templates[idxs[i]].sql, params[i])
			}
		}
	}
	stats := e.AdmissionStats()
	if stats.Rejected != 0 || stats.BreakerTrips != 0 {
		t.Fatalf("non-binding limits must not reject or trip: %+v", stats)
	}
}

// TestAdmitReserveRelease pins the router's all-or-nothing seam: a
// reservation consumes queue capacity until released or consumed by
// SubmitReserved.
func TestAdmitReserveRelease(t *testing.T) {
	db, closeDB := bookstore(t)
	defer closeDB()
	e := New(db, plan.New(db), Config{QueueDepthLimit: 2})
	defer e.Close()

	if err := e.AdmitReserve(nil); err != nil {
		t.Fatalf("first reservation: %v", err)
	}
	if err := e.AdmitReserve(nil); err != nil {
		t.Fatalf("second reservation: %v", err)
	}
	if err := e.AdmitReserve(nil); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third reservation at limit 2 must reject, got %v", err)
	}
	e.AdmitRelease()
	if err := e.AdmitReserve(nil); err != nil {
		t.Fatalf("reservation after release: %v", err)
	}
	// Consume both reservations through the reserved submit path; the
	// requests execute normally.
	s := mustPrepare(t, e, "SELECT i_id FROM item WHERE i_id = ?")
	r1 := e.SubmitReserved(s, []types.Value{types.NewInt(1)})
	r2 := e.SubmitReserved(s, []types.Value{types.NewInt(2)})
	if err := r1.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := r2.Wait(); err != nil {
		t.Fatal(err)
	}
	if depth := e.AdmissionStats().QueueDepth; depth != 0 {
		t.Fatalf("reservations must be consumed, queue depth = %d", depth)
	}
}

// TestBreakerQuarantinesSlowStatement drives the breaker end to end on a
// real engine: a statement whose generations reliably blow a 1ms SLO trips
// after BreakerStrikes cycles, rejects while open, and admits a half-open
// probe after the cooldown.
func TestBreakerQuarantinesSlowStatement(t *testing.T) {
	db, closeDB := bigTable(t, 60000)
	defer closeDB()
	e := New(db, plan.New(db), Config{
		MaxGenerationDelay: MinGenerationDelay, // 1ms: the scan+sort below cannot meet it
		BreakerStrikes:     2,
		BreakerCooldown:    50 * time.Millisecond,
	})
	defer e.Close()

	heavy := mustPrepare(t, e, "SELECT b_id FROM big WHERE b_pad LIKE '%x%' ORDER BY b_val")
	for i := 0; i < 2; i++ {
		if err := e.Submit(heavy, nil).Wait(); err != nil {
			t.Fatalf("pre-trip generation %d: %v", i, err)
		}
	}
	// Two consecutive over-SLO generations: quarantined.
	err := e.Submit(heavy, nil).Wait()
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("statement must be quarantined after 2 slow generations, got %v", err)
	}
	if trips := e.AdmissionStats().BreakerTrips; trips != 1 {
		t.Fatalf("BreakerTrips = %d, want 1", trips)
	}
	// The quarantine binds to the SQL text, not the handle: a fresh
	// prepare of the same statement (the ad-hoc path) is rejected too,
	// and the pre-Prepare peek rejects without touching the pipeline.
	if err := e.AdmitStatement(heavy.SQL); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("AdmitStatement peek on a quarantined SQL must reject, got %v", err)
	}
	heavyAdhoc := mustPrepare(t, e, heavy.SQL)
	if heavyAdhoc == heavy {
		t.Fatal("fixture assumption broken: Prepare returned the same handle")
	}
	if err := e.Submit(heavyAdhoc, nil).Wait(); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("re-prepared handle of a quarantined statement must reject, got %v", err)
	}
	// After the cooldown a probe is admitted; it is still slow, so the
	// breaker re-trips and the next submission rejects again.
	time.Sleep(60 * time.Millisecond)
	if err := e.Submit(heavy, nil).Wait(); err != nil {
		t.Fatalf("half-open probe must be admitted and answered: %v", err)
	}
	if err := e.Submit(heavy, nil).Wait(); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("failed probe must re-quarantine, got %v", err)
	}
	if trips := e.AdmissionStats().BreakerTrips; trips != 2 {
		t.Fatalf("BreakerTrips = %d, want 2", trips)
	}
}
