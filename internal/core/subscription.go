package core

import (
	"errors"
	"sync"

	"shareddb/internal/plan"
	"shareddb/internal/types"
)

// DefaultSubscriptionBuffer is the per-subscription update channel capacity
// used when Config.SubscriptionBuffer is zero.
const DefaultSubscriptionBuffer = 16

// SubscriptionUpdate is one delivery on a standing query's update channel.
// The first delivery (and any delivery after the subscriber lagged) is a
// full resync: Full is true and Rows holds the complete result at the
// generation's snapshot. Every other delivery is a delta: Added/Removed are
// the multiset difference between this generation's result and the
// previously delivered one. Generations whose result is unchanged produce
// no delivery at all. Rows are shared with the subscription's internal
// state and must be treated as read-only.
type SubscriptionUpdate struct {
	Gen        uint64
	SnapshotTS uint64
	Full       bool
	Rows       []types.Row // complete result; set only when Full
	Added      []types.Row
	Removed    []types.Row
}

// Subscription is a standing query: a permanent member of the engine's
// generation query-sets. Each generation re-evaluates it at the
// generation's post-write snapshot and delivers the result change on
// Updates. Close detaches it; the engine drops it at the next batch
// formation without perturbing in-flight generations.
type Subscription struct {
	stmt   *plan.Statement
	params []types.Value
	ch     chan SubscriptionUpdate
	done   chan struct{}

	mu     sync.Mutex
	closed bool
	// lagged records a dropped delivery (full channel): deltas are useless
	// to a subscriber that missed one, so the next successful delivery is a
	// full resync.
	lagged bool

	// Delivery-side state below is touched only on the sink goroutine, one
	// generation at a time (sink cycles serialize in generation order).
	needsInitial bool
	prevRows     []types.Row    // previously delivered result, arrival order
	prevCnt      map[string]int // its multiset, keyed by types.EncodeKey
}

// Updates returns the delivery channel. It is closed by Close (and by
// engine shutdown), so ranging over it terminates.
func (s *Subscription) Updates() <-chan SubscriptionUpdate { return s.ch }

// Done is closed when the subscription is detached.
func (s *Subscription) Done() <-chan struct{} { return s.done }

// Statement returns the subscribed statement.
func (s *Subscription) Statement() *plan.Statement { return s.stmt }

// Close detaches the subscription and closes its channels. Safe to call
// concurrently with deliveries and more than once.
func (s *Subscription) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.done)
		close(s.ch)
	}
	s.mu.Unlock()
}

func (s *Subscription) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// deliver diffs one generation's result against the previously delivered
// one and pushes the update (non-blocking; a full channel marks the
// subscription lagged instead of stalling the generation). Returns whether
// an update was handed to the subscriber. Sink goroutine only.
func (s *Subscription) deliver(gen, ts uint64, rows []types.Row) bool {
	curCnt := make(map[string]int, len(rows))
	for _, r := range rows {
		curCnt[types.EncodeKey(r...)]++
	}

	var u SubscriptionUpdate
	full := s.needsInitial
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.prevRows, s.prevCnt = rows, curCnt
		return false
	}
	full = full || s.lagged
	if full {
		u = SubscriptionUpdate{Gen: gen, SnapshotTS: ts, Full: true, Rows: rows}
	} else {
		// Multiset diff in deterministic order: occurrences beyond the other
		// side's count, in each side's arrival order.
		var added, removed []types.Row
		occ := make(map[string]int, len(rows))
		for _, r := range rows {
			k := types.EncodeKey(r...)
			occ[k]++
			if occ[k] > s.prevCnt[k] {
				added = append(added, r)
			}
		}
		clear(occ)
		for _, r := range s.prevRows {
			k := types.EncodeKey(r...)
			occ[k]++
			if occ[k] > curCnt[k] {
				removed = append(removed, r)
			}
		}
		if len(added) == 0 && len(removed) == 0 {
			s.mu.Unlock()
			s.prevRows, s.prevCnt = rows, curCnt
			return false
		}
		u = SubscriptionUpdate{Gen: gen, SnapshotTS: ts, Added: added, Removed: removed}
	}
	sent := false
	select {
	case s.ch <- u:
		sent = true
		s.lagged = false
	default:
		s.lagged = true
	}
	s.mu.Unlock()
	if sent {
		s.needsInitial = false
	}
	s.prevRows, s.prevCnt = rows, curCnt
	return sent
}

// NewProxySubscription returns a subscription fed by the caller instead of
// an engine: the shard router uses it as the client-facing end of a merged
// multi-shard feed. Deliver updates with Push; Close releases consumers.
func NewProxySubscription(stmt *plan.Statement, params []types.Value, buf int) *Subscription {
	if buf <= 0 {
		buf = DefaultSubscriptionBuffer
	}
	return &Subscription{
		stmt:   stmt,
		params: params,
		ch:     make(chan SubscriptionUpdate, buf),
		done:   make(chan struct{}),
	}
}

// Push delivers an update on a proxy subscription without blocking: a full
// channel marks the subscription lagged and drops the update. While lagged,
// delta updates are refused (they would be misleading after a gap) — the
// feeder must send a Full resync, whose successful delivery clears the lag.
// Returns whether the update was handed to the subscriber.
func (s *Subscription) Push(u SubscriptionUpdate) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	if s.lagged && !u.Full {
		return false
	}
	select {
	case s.ch <- u:
		if u.Full {
			s.lagged = false
		}
		return true
	default:
		s.lagged = true
		return false
	}
}

// Lagged reports whether the subscriber has missed a delivery since the
// last full resync (the feeder should send Full next).
func (s *Subscription) Lagged() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lagged
}

// subCollector gathers one subscription's projected rows during one
// generation's sink cycle.
type subCollector struct {
	sub          *Subscription
	rows         []types.Row
	distinctSeen map[string]bool
}

// Subscribe registers stmt as a standing query. The subscription joins
// every subsequent generation's query set; the first delivery is the full
// result at that generation's snapshot (a generation is kicked off for it
// even when no requests are queued).
func (e *Engine) Subscribe(stmt *plan.Statement, params []types.Value) (*Subscription, error) {
	if stmt == nil || stmt.IsWrite() {
		return nil, errors.New("core: Subscribe requires a read statement")
	}
	buf := e.cfg.SubscriptionBuffer
	if buf <= 0 {
		buf = DefaultSubscriptionBuffer
	}
	s := &Subscription{
		stmt:         stmt,
		params:       params,
		ch:           make(chan SubscriptionUpdate, buf),
		done:         make(chan struct{}),
		needsInitial: true,
	}
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return nil, errors.New("core: engine closed")
	}
	e.subs = append(e.subs, s)
	e.subsKick = true
	e.cond.Broadcast()
	e.mu.Unlock()
	return s, nil
}

// activeSubsLocked prunes closed subscriptions and snapshots the live ones
// for one generation. Caller holds e.mu. Returns nil when there are none,
// so the subscription-free dispatch path stays byte-identical (query ids
// start at 1 for the batch's reads).
func (e *Engine) activeSubsLocked() []*Subscription {
	if len(e.subs) == 0 {
		return nil
	}
	kept := e.subs[:0]
	for _, s := range e.subs {
		if !s.isClosed() {
			kept = append(kept, s)
		}
	}
	for i := len(kept); i < len(e.subs); i++ {
		e.subs[i] = nil
	}
	e.subs = kept
	if len(kept) == 0 {
		return nil
	}
	return append([]*Subscription{}, kept...)
}
