package core

import (
	"fmt"
	"runtime"
	"sort"
	"testing"

	"shareddb/internal/operators"
	"shareddb/internal/plan"
	"shareddb/internal/types"
)

// Engine-level contract of the worker-pool layer: any Workers setting yields
// the same per-query answers; Workers only changes how much hardware one
// generation cycle uses.

func TestWorkersResolution(t *testing.T) {
	db, closeDB := bookstore(t)
	defer closeDB()
	for _, tc := range []struct{ cfg, want int }{
		{0, runtime.GOMAXPROCS(0)},
		{1, 1},
		{-5, 1},
		{4, 4},
	} {
		gp := plan.New(db)
		e := New(db, gp, Config{Workers: tc.cfg})
		if got := e.Workers(); got != tc.want {
			t.Errorf("Config.Workers=%d resolved to %d, want %d", tc.cfg, got, tc.want)
		}
		if got := gp.Workers(); got != tc.want {
			t.Errorf("Config.Workers=%d: plan workers %d, want %d", tc.cfg, got, tc.want)
		}
		e.Close()
	}
}

// workloadStatements is the query mix used for the serial/parallel
// differential: it covers every parallelized operator — partitioned scan
// (range + equality + LIKE/rest predicates), parallel join build, partitioned
// hash aggregation, partitioned sort with Top-N.
func workloadStatements() []string {
	return []string{
		"SELECT i_id, i_title FROM item WHERE i_id = ?",
		"SELECT i_id FROM item WHERE i_price > ?",
		"SELECT i_id, i_title FROM item WHERE i_title LIKE ?",
		"SELECT i_title, a_lname FROM item, author WHERE i_a_id = a_id AND i_subject = ?",
		"SELECT i_id, i_price FROM item WHERE i_subject = ? ORDER BY i_price DESC LIMIT 5",
		"SELECT i_subject, COUNT(*), AVG(i_price) FROM item GROUP BY i_subject",
		// the tiebreak key makes the Top-N cut deterministic: with ORDER BY
		// val alone, SQL permits any valid top-10 among tied vals (and the
		// engine's group emission order is hash-map order), so a serial-vs-
		// parallel comparison would be comparing two answers SQL both allows
		`SELECT i_id, i_title, SUM(ol_qty) AS val FROM order_line, item, author
			WHERE ol_i_id = i_id AND i_a_id = a_id AND ol_o_id > ?
			GROUP BY i_id, i_title ORDER BY val DESC, i_id LIMIT 10`,
	}
}

func workloadParams(stmt int, round int) []types.Value {
	switch stmt {
	case 0:
		return []types.Value{types.NewInt(int64(round % 100))}
	case 1:
		return []types.Value{types.NewFloat(float64(20 + round%60))}
	case 2:
		return []types.Value{types.NewString(fmt.Sprintf("Title 0%d%%", round%10))}
	case 3, 4:
		return []types.Value{types.NewString([]string{"ARTS", "SCIENCE", "HISTORY", "COOKING"}[round%4])}
	case 6:
		return []types.Value{types.NewInt(int64(round % 30))}
	default:
		return nil
	}
}

// canonical renders a result's rows as a sorted multiset fingerprint. Sorted
// because only ORDER BY queries define a total row order, and those are
// separately asserted ordered by the seed tests — which now also run at
// Workers=GOMAXPROCS via the engine default.
func canonical(rows []types.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = types.EncodeKey(r...)
	}
	sort.Strings(out)
	return out
}

func runWorkload(t *testing.T, workers int) map[string][][]string {
	t.Helper()
	db, closeDB := bookstore(t)
	defer closeDB()
	gp := plan.New(db)
	e := New(db, gp, Config{Workers: workers})
	defer e.Close()
	stmts := make([]*plan.Statement, len(workloadStatements()))
	for i, s := range workloadStatements() {
		stmts[i] = mustPrepare(t, e, s)
	}
	out := map[string][][]string{}
	// several rounds, with concurrent submission inside a round so requests
	// batch into shared generations
	for round := 0; round < 6; round++ {
		results := make([]*Result, len(stmts))
		for i, s := range stmts {
			results[i] = e.Submit(s, workloadParams(i, round))
		}
		for i, r := range results {
			if err := r.Wait(); err != nil {
				t.Fatalf("workers=%d stmt %d round %d: %v", workers, i, round, err)
			}
			key := fmt.Sprintf("stmt%d", i)
			out[key] = append(out[key], canonical(r.Rows))
		}
	}
	return out
}

func TestWorkersSerialParallelIdentical(t *testing.T) {
	// Keep the test-sized fixture on the parallel operator paths: the
	// adaptive budget would otherwise serialize every cycle after the first.
	t.Cleanup(operators.DisableAdaptiveWorkersForTest())
	serial := runWorkload(t, 1)
	for _, workers := range []int{2, 4} {
		parallel := runWorkload(t, workers)
		for key, sRounds := range serial {
			pRounds := parallel[key]
			if len(sRounds) != len(pRounds) {
				t.Fatalf("workers=%d %s: round count differs", workers, key)
			}
			for round := range sRounds {
				s, p := sRounds[round], pRounds[round]
				if len(s) != len(p) {
					t.Fatalf("workers=%d %s round %d: %d rows vs %d serial",
						workers, key, round, len(p), len(s))
				}
				for i := range s {
					if s[i] != p[i] {
						t.Fatalf("workers=%d %s round %d: row multiset differs at %d",
							workers, key, round, i)
					}
				}
			}
		}
	}
}

// Parallel workers must also hold under pipelined generations with writes
// landing between reads (the PR 1 machinery): results stay correct because
// each generation reads its own pinned snapshot regardless of how many
// workers scan it.
func TestWorkersWithPipelinedWrites(t *testing.T) {
	// Keep the test-sized fixture on the parallel operator paths: the
	// adaptive budget would otherwise serialize every cycle after the first.
	t.Cleanup(operators.DisableAdaptiveWorkersForTest())
	db, closeDB := bookstore(t)
	defer closeDB()
	gp := plan.New(db)
	e := New(db, gp, Config{Workers: 4, MaxInFlightGenerations: 4})
	defer e.Close()

	count := mustPrepare(t, e, "SELECT COUNT(*) FROM orders WHERE o_total >= ?")
	ins := mustPrepare(t, e, "INSERT INTO orders (o_id, o_c_id, o_total) VALUES (?, ?, ?)")

	base := run(t, e, count, types.NewFloat(0)).Rows[0][0].AsInt()
	const n = 40
	reads := make([]*Result, 0, n)
	for i := 0; i < n; i++ {
		e.Submit(ins, []types.Value{types.NewInt(int64(5000 + i)), types.NewInt(1), types.NewFloat(10)})
		reads = append(reads, e.Submit(count, []types.Value{types.NewFloat(0)}))
	}
	prev := base
	for i, r := range reads {
		if err := r.Wait(); err != nil {
			t.Fatal(err)
		}
		got := r.Rows[0][0].AsInt()
		// each read follows its insert in the same or later generation; the
		// count must be monotonically consistent with the write order
		if got < prev || got > base+int64(n) {
			t.Fatalf("read %d saw count %d (prev %d, base %d)", i, got, prev, base)
		}
		prev = got
	}
	if finalCount := run(t, e, count, types.NewFloat(0)).Rows[0][0].AsInt(); finalCount != base+n {
		t.Errorf("final count = %d, want %d", finalCount, base+n)
	}
}
