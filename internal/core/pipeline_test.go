package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"shareddb/internal/baseline"
	"shareddb/internal/plan"
	"shareddb/internal/storage"
	"shareddb/internal/types"
)

// Pipelined generation execution tests: the engine admits up to
// Config.MaxInFlightGenerations generations concurrently (paper §3.1, §4 —
// sharing only pays off while the always-on plan stays busy). These tests
// verify (a) that overlap actually happens and is observable, (b) that
// results under overlapping mixed read/write load are exactly what the
// query-at-a-time baseline computes at each generation's snapshot, and (c)
// that generation-scoped query-id routing never bleeds rows across
// in-flight generations.

// TestPipelinedGenerationsOverlap drives non-blocking read waves until the
// engine observably has more than one generation in flight.
func TestPipelinedGenerationsOverlap(t *testing.T) {
	db, closeDB := bookstore(t)
	defer closeDB()
	// Pad the item table so a LIKE scan cycle takes long enough for the
	// dispatcher to admit the next generation (the allocation-free scan
	// path made the 100-row fixture cycle faster than the dispatch loop).
	var pad []storage.WriteOp
	for i := int64(1000); i < 9000; i++ {
		pad = append(pad, storage.WriteOp{Table: "item", Kind: storage.WInsert,
			Row: types.Row{
				types.NewInt(i),
				types.NewString(fmt.Sprintf("Padding %04d", i)),
				types.NewInt(i % 20),
				types.NewString("ARTS"),
				types.NewFloat(1),
			}})
	}
	padRes, _ := db.ApplyOps(pad)
	for _, r := range padRes {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	gp := plan.New(db)
	e := New(db, gp, Config{MaxInFlightGenerations: 4})
	defer e.Close()

	// Non-indexed LIKE scans keep a generation's read cycle busy long
	// enough for the dispatcher to admit the next one.
	s := mustPrepare(t, e, "SELECT i_id FROM item WHERE i_title LIKE ?")

	deadline := time.Now().Add(10 * time.Second)
	var results []*Result
	for {
		// Back-to-back bursts keep a standing backlog: the dispatcher forms
		// the next generation while the previous one's read phase is still
		// draining in the plan.
		for i := 0; i < 8; i++ {
			results = append(results, e.Submit(s, []types.Value{types.NewString("%1%")}))
			time.Sleep(50 * time.Microsecond) // let the dispatcher drain between submissions
		}
		if _, peak := e.InFlightGenerations(); peak > 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never observed more than one generation in flight")
		}
	}
	for _, r := range results {
		if err := r.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	gens := e.Stats().Generations
	_, peak := e.InFlightGenerations()
	t.Logf("generations=%d peak in flight=%d", gens, peak)
	if peak <= 1 {
		t.Errorf("peak in flight = %d, want > 1", peak)
	}
}

// TestSerialModeNoOverlap checks that MaxInFlightGenerations=1 restores the
// classic generation barrier: the gauge never exceeds one.
func TestSerialModeNoOverlap(t *testing.T) {
	db, closeDB := bookstore(t)
	defer closeDB()
	gp := plan.New(db)
	e := New(db, gp, Config{MaxInFlightGenerations: 1})
	defer e.Close()

	sel := mustPrepare(t, e, "SELECT i_id FROM item WHERE i_title LIKE ?")
	ins := mustPrepare(t, e, "INSERT INTO orders (o_id, o_c_id, o_total) VALUES (?, ?, ?)")
	var results []*Result
	for i := 0; i < 50; i++ {
		results = append(results, e.Submit(sel, []types.Value{types.NewString("%0%")}))
		results = append(results, e.Submit(ins, []types.Value{
			types.NewInt(int64(5000 + i)), types.NewInt(1), types.NewFloat(1)}))
	}
	for _, r := range results {
		if err := r.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if cur, peak := e.InFlightGenerations(); peak != 1 || cur != 0 {
		t.Errorf("serial mode: current=%d peak=%d, want 0/1", cur, peak)
	}
}

// TestPipelinedDifferentialMixedLoad is the pipelined differential test:
// concurrent readers and writers drive well over three overlapping
// generations; every read records the snapshot its generation executed at,
// and afterwards the query-at-a-time baseline re-executes each read at that
// exact snapshot (MVCC history is immutable without GC). Any cross-
// generation bleed, stale-snapshot read, or write misordering shows up as a
// result mismatch.
func TestPipelinedDifferentialMixedLoad(t *testing.T) {
	db, closeDB := bookstore(t)
	defer closeDB()
	// Grow the item table so scan cycles take long enough that the
	// dispatcher overlaps generations even on small machines.
	growItems(t, db, 4000)
	gp := plan.New(db)
	e := New(db, gp, Config{MaxInFlightGenerations: 4})
	defer e.Close()
	qat := baseline.New(db, baseline.SystemXLike)

	readSQL := []string{
		"SELECT i_title, i_price FROM item WHERE i_id = ?",
		"SELECT i_id, i_price FROM item WHERE i_subject = ?",
		"SELECT i_id FROM item WHERE i_price > ? AND i_price < ?",
		"SELECT i_title, a_lname FROM item, author WHERE i_a_id = a_id AND i_subject = ?",
		"SELECT i_subject, COUNT(*), AVG(i_price) FROM item WHERE i_price > ? GROUP BY i_subject",
		"SELECT COUNT(*) FROM orders WHERE o_c_id = ?",
	}
	mkParams := []func(r *rand.Rand) []types.Value{
		func(r *rand.Rand) []types.Value { return []types.Value{types.NewInt(int64(r.Intn(120)))} },
		func(r *rand.Rand) []types.Value {
			return []types.Value{types.NewString([]string{"ARTS", "SCIENCE", "HISTORY", "COOKING"}[r.Intn(4)])}
		},
		func(r *rand.Rand) []types.Value {
			lo := r.Float64() * 80
			return []types.Value{types.NewFloat(lo), types.NewFloat(lo + 30)}
		},
		func(r *rand.Rand) []types.Value {
			return []types.Value{types.NewString([]string{"ARTS", "SCIENCE", "HISTORY", "COOKING"}[r.Intn(4)])}
		},
		func(r *rand.Rand) []types.Value { return []types.Value{types.NewFloat(r.Float64() * 100)} },
		func(r *rand.Rand) []types.Value { return []types.Value{types.NewInt(int64(r.Intn(12)))} },
	}
	sharedStmts := make([]*plan.Statement, len(readSQL))
	qatStmts := make([]*baseline.Stmt, len(readSQL))
	for i, sqlText := range readSQL {
		sharedStmts[i] = mustPrepare(t, e, sqlText)
		var err error
		qatStmts[i], err = qat.Prepare(sqlText)
		if err != nil {
			t.Fatal(err)
		}
	}
	updPrice := mustPrepare(t, e, "UPDATE item SET i_price = i_price + ? WHERE i_id = ?")
	insOrder := mustPrepare(t, e, "INSERT INTO orders (o_id, o_c_id, o_total) VALUES (?, ?, ?)")

	type observation struct {
		stmt   int
		params []types.Value
		rows   []types.Row
		ts     uint64
	}
	var mu sync.Mutex
	var observed []observation

	// Run mixed rounds until the engine has demonstrably overlapped
	// generations (peak in flight > 1); each round interleaves 4 reader
	// goroutines with 2 writer goroutines.
	deadline := time.Now().Add(20 * time.Second)
	round := 0
	for {
		var wg sync.WaitGroup
		// Writers: price updates (visible to range/group reads) and order
		// inserts (visible to the count read), interleaved with readers.
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				r := rand.New(rand.NewSource(int64(round*100 + w + 77)))
				for i := 0; i < 15; i++ {
					if err := e.Submit(updPrice, []types.Value{
						types.NewFloat(r.Float64()*2 - 1), types.NewInt(int64(r.Intn(120)))}).Wait(); err != nil {
						t.Error(err)
						return
					}
					if err := e.Submit(insOrder, []types.Value{
						types.NewInt(int64(10000 + round*100 + w*50 + i)), types.NewInt(int64(r.Intn(12))),
						types.NewFloat(9.5)}).Wait(); err != nil {
						t.Error(err)
						return
					}
				}
			}(w)
		}
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				r := rand.New(rand.NewSource(int64(round*100 + g + 13)))
				for i := 0; i < 10; i++ {
					k := r.Intn(len(readSQL))
					params := mkParams[k](r)
					res := e.Submit(sharedStmts[k], params)
					if err := res.Wait(); err != nil {
						t.Error(err)
						return
					}
					mu.Lock()
					observed = append(observed, observation{stmt: k, params: params, rows: res.Rows, ts: res.SnapshotTS})
					mu.Unlock()
				}
			}(g)
		}
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}
		round++
		if _, peak := e.InFlightGenerations(); peak > 1 && round >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never observed overlapping generations under mixed load")
		}
	}

	st := e.Stats()
	gens, queries, writes := st.Generations, st.QueriesRun, st.WritesRun
	_, peak := e.InFlightGenerations()
	t.Logf("rounds=%d generations=%d queries=%d writes=%d peak in flight=%d", round, gens, queries, writes, peak)
	if gens < 3 {
		t.Fatalf("only %d generations ran; the test needs overlapping generations", gens)
	}

	// Replay every read at its recorded snapshot through the baseline.
	for _, ob := range observed {
		want, err := qatStmts[ob.stmt].ExecAt(ob.params, ob.ts)
		if err != nil {
			t.Fatal(err)
		}
		if !sameRows(ob.rows, want.Rows) {
			t.Fatalf("mismatch for %q params %v at ts %d:\nshared (%d rows): %v\nbaseline (%d rows): %v",
				readSQL[ob.stmt], ob.params, ob.ts,
				len(ob.rows), canon(ob.rows), len(want.Rows), canon(want.Rows))
		}
	}
}

// growItems bulk-inserts extra item rows (ids from 1000 upward) so shared
// scan cycles have real work to do.
func growItems(t *testing.T, db *storage.Database, n int) {
	t.Helper()
	subjects := []string{"ARTS", "SCIENCE", "HISTORY", "COOKING"}
	ops := make([]storage.WriteOp, n)
	for i := 0; i < n; i++ {
		id := int64(1000 + i)
		ops[i] = storage.WriteOp{Table: "item", Kind: storage.WInsert,
			Row: types.Row{
				types.NewInt(id),
				types.NewString(fmt.Sprintf("Bulk %05d", id)),
				types.NewInt(id % 20),
				types.NewString(subjects[i%4]),
				types.NewFloat(float64(i%90) + 0.25),
			}}
	}
	results, _ := db.ApplyOps(ops)
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
}

// TestSinkRoutingNoCrossGenerationBleed stress-tests generation-scoped
// query-id routing under the race detector: overlapping generations reuse
// the same dense query-id space (1..n per generation), so any routing that
// keyed on the bare id would deliver another generation's rows. Each point
// query must return exactly its own row, and a write acknowledged before a
// read was submitted must be visible to it (generation monotonicity).
func TestSinkRoutingNoCrossGenerationBleed(t *testing.T) {
	db, closeDB := bookstore(t)
	defer closeDB()
	gp := plan.New(db)
	e := New(db, gp, Config{MaxInFlightGenerations: 4})
	defer e.Close()

	byID := mustPrepare(t, e, "SELECT i_id, i_title FROM item WHERE i_id = ?")
	bySubject := mustPrepare(t, e, "SELECT i_id FROM item WHERE i_subject = ?")
	insOrder := mustPrepare(t, e, "INSERT INTO orders (o_id, o_c_id, o_total) VALUES (?, ?, ?)")
	orderByID := mustPrepare(t, e, "SELECT o_id FROM orders WHERE o_id = ?")

	subjects := []string{"ARTS", "SCIENCE", "HISTORY", "COOKING"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 40; i++ {
				id := int64(r.Intn(100))
				r1 := e.Submit(byID, []types.Value{types.NewInt(id)})
				r2 := e.Submit(bySubject, []types.Value{types.NewString(subjects[r.Intn(4)])})
				if err := r1.Wait(); err != nil {
					t.Error(err)
					return
				}
				if len(r1.Rows) != 1 || r1.Rows[0][0].AsInt() != id ||
					r1.Rows[0][1].AsString() != fmt.Sprintf("Title %03d", id) {
					t.Errorf("point query for %d got %v (cross-generation bleed?)", id, r1.Rows)
					return
				}
				if err := r2.Wait(); err != nil {
					t.Error(err)
					return
				}
				if len(r2.Rows) != 25 {
					t.Errorf("subject query got %d rows, want 25", len(r2.Rows))
					return
				}
				// Read-your-writes across generations: the insert is acked
				// before the read is submitted, so the read's generation is
				// later and must see it.
				oid := int64(20000 + g*1000 + i)
				if err := e.Submit(insOrder, []types.Value{
					types.NewInt(oid), types.NewInt(int64(g)), types.NewFloat(1)}).Wait(); err != nil {
					t.Error(err)
					return
				}
				r3 := e.Submit(orderByID, []types.Value{types.NewInt(oid)})
				if err := r3.Wait(); err != nil {
					t.Error(err)
					return
				}
				if len(r3.Rows) != 1 {
					t.Errorf("order %d not visible after acked insert: %v", oid, r3.Rows)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestHeartbeatPrepareQuiesce stresses Prepare against a paced dispatcher:
// the heartbeat sleep releases the engine lock, so dispatch admission must
// be re-checked afterwards or a Prepare started during the sleep would
// mutate the DAG under a running generation.
func TestHeartbeatPrepareQuiesce(t *testing.T) {
	db, closeDB := bookstore(t)
	defer closeDB()
	gp := plan.New(db)
	e := New(db, gp, Config{Heartbeat: time.Millisecond, MaxInFlightGenerations: 4})
	defer e.Close()
	sel := mustPrepare(t, e, "SELECT i_id FROM item WHERE i_title LIKE ?")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := e.Submit(sel, []types.Value{types.NewString("%3%")}).Wait(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		s := mustPrepare(t, e, fmt.Sprintf("SELECT i_id FROM item WHERE i_price > %d.5", i))
		if err := e.Submit(s, nil).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestPrepareQuiescesPipeline checks that ad-hoc Prepare (which mutates the
// operator DAG) still works while generations are continuously in flight.
func TestPrepareQuiescesPipeline(t *testing.T) {
	db, closeDB := bookstore(t)
	defer closeDB()
	gp := plan.New(db)
	e := New(db, gp, Config{MaxInFlightGenerations: 4})
	defer e.Close()

	sel := mustPrepare(t, e, "SELECT i_id FROM item WHERE i_title LIKE ?")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := e.Submit(sel, []types.Value{types.NewString("%2%")}).Wait(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 10; i++ {
		s := mustPrepare(t, e, fmt.Sprintf("SELECT i_id FROM item WHERE i_price > %d", i))
		if err := e.Submit(s, nil).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
