package core

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"shareddb/internal/baseline"
	"shareddb/internal/plan"
	"shareddb/internal/storage"
	"shareddb/internal/types"
)

// The fold-window tests use a long heartbeat: after one generation starts,
// every submission for the next foldWindow lands in the same pending queue
// — the fold window — so a burst of duplicates folds deterministically.
const foldWindow = 500 * time.Millisecond

// foldEngine builds an engine with folding on and a wide fold window.
func foldEngine(t testing.TB, db *storage.Database, subsume bool) *Engine {
	t.Helper()
	return New(db, plan.New(db), Config{
		FoldQueries: true,
		FoldSubsume: subsume,
		Heartbeat:   foldWindow,
	})
}

// burst submits n copies of (s, params) back-to-back and waits for all.
// Each submission carries its own params slice — folding must key on
// values, never on slice identity.
func burst(t *testing.T, e *Engine, s *plan.Statement, params []types.Value, n int) []*Result {
	t.Helper()
	results := make([]*Result, n)
	for i := range results {
		p := append([]types.Value(nil), params...)
		results[i] = e.Submit(s, p)
	}
	for i, r := range results {
		if err := r.Wait(); err != nil {
			t.Fatalf("burst member %d: %v", i, err)
		}
	}
	return results
}

// sameResult asserts b carries exactly a's rows, in order, at a's snapshot.
func sameResult(t *testing.T, a, b *Result) {
	t.Helper()
	if a.SnapshotTS != b.SnapshotTS {
		t.Fatalf("snapshots differ: %d vs %d", a.SnapshotTS, b.SnapshotTS)
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		if len(a.Rows[i]) != len(b.Rows[i]) {
			t.Fatalf("row %d widths differ", i)
		}
		for j := range a.Rows[i] {
			if !a.Rows[i][j].Equal(b.Rows[i][j]) {
				t.Fatalf("row %d col %d: %v vs %v", i, j, a.Rows[i][j], b.Rows[i][j])
			}
		}
	}
}

func TestFoldCollapsesDuplicates(t *testing.T) {
	db, closeDB := bookstore(t)
	defer closeDB()
	e := foldEngine(t, db, false)
	defer e.Close()
	s := mustPrepare(t, e, `SELECT i_id, i_title FROM item WHERE i_subject = ?`)

	// Warm generation: starts the heartbeat clock so the burst below pools
	// in one fold window.
	want := run(t, e, s, types.NewString("SCIENCE"))
	before := e.Stats()

	const dup = 16
	results := burst(t, e, s, []types.Value{types.NewString("SCIENCE")}, dup)
	for _, r := range results {
		sameResult(t, results[0], r)
	}
	if len(results[0].Rows) == 0 || len(results[0].Rows) != len(want.Rows) {
		t.Fatalf("burst returned %d rows, standalone %d", len(results[0].Rows), len(want.Rows))
	}

	st := e.Stats()
	if got := st.FoldedQueries - before.FoldedQueries; got != dup-1 {
		t.Fatalf("folded %d queries, want %d", got, dup-1)
	}
	if got := st.QueriesRun - before.QueriesRun; got != 1 {
		t.Fatalf("engine ran %d activations for the burst, want 1", got)
	}
	if got := st.Generations - before.Generations; got != 1 {
		t.Fatalf("burst took %d generations, want 1", got)
	}
}

func TestFoldStrictParamIdentity(t *testing.T) {
	db, closeDB := bookstore(t)
	defer closeDB()
	e := foldEngine(t, db, false)
	defer e.Close()
	// i_price is FLOAT: the comparison coerces, so INT 10 and FLOAT 10.0
	// return the same rows — but they are distinct fold keys (projection
	// could expose the bound value; only bit-identical params fold).
	s := mustPrepare(t, e, `SELECT i_id FROM item WHERE i_price > ?`)

	run(t, e, s, types.NewFloat(50))
	before := e.Stats()

	resInt := make([]*Result, 0, 4)
	resFloat := make([]*Result, 0, 4)
	for i := 0; i < 4; i++ {
		resInt = append(resInt, e.Submit(s, []types.Value{types.NewInt(10)}))
		resFloat = append(resFloat, e.Submit(s, []types.Value{types.NewFloat(10)}))
	}
	for _, r := range append(append([]*Result{}, resInt...), resFloat...) {
		if err := r.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range resInt[1:] {
		sameResult(t, resInt[0], r)
	}
	for _, r := range resFloat[1:] {
		sameResult(t, resFloat[0], r)
	}

	st := e.Stats()
	// Two fold groups of 4: one lead each, 3 subscribers each.
	if got := st.FoldedQueries - before.FoldedQueries; got != 6 {
		t.Fatalf("folded %d queries, want 6 (INT and FLOAT params must not share a group)", got)
	}
	if got := st.QueriesRun - before.QueriesRun; got != 2 {
		t.Fatalf("engine ran %d activations, want 2", got)
	}
}

func TestFoldDisabledRunsEveryQuery(t *testing.T) {
	db, closeDB := bookstore(t)
	defer closeDB()
	e := New(db, plan.New(db), Config{Heartbeat: foldWindow})
	defer e.Close()
	s := mustPrepare(t, e, `SELECT i_id, i_title FROM item WHERE i_subject = ?`)

	run(t, e, s, types.NewString("ARTS"))
	before := e.Stats()
	const dup = 8
	results := burst(t, e, s, []types.Value{types.NewString("ARTS")}, dup)
	for _, r := range results {
		sameResult(t, results[0], r)
	}
	st := e.Stats()
	if st.FoldedQueries != 0 || st.SubsumedQueries != 0 {
		t.Fatalf("folding disabled but stats count %d folded / %d subsumed",
			st.FoldedQueries, st.SubsumedQueries)
	}
	if got := st.QueriesRun - before.QueriesRun; got != dup {
		t.Fatalf("engine ran %d activations, want %d (every duplicate executes)", got, dup)
	}
}

func TestFoldSubsumesEqualityRestriction(t *testing.T) {
	db, closeDB := bookstore(t)
	defer closeDB()
	e := foldEngine(t, db, true)
	defer e.Close()
	// Lead: parameter-free full scan. Sub: equality on i_a_id (no index,
	// so it compiles to the same ClockScan path) projecting a subset of
	// the lead's columns — servable from the lead's rows by a residual
	// filter plus projection.
	lead := mustPrepare(t, e, `SELECT i_id, i_title, i_a_id FROM item`)
	sub := mustPrepare(t, e, `SELECT i_id, i_title FROM item WHERE i_a_id = ?`)

	// Standalone answers, each in its own generation.
	wantSub := run(t, e, sub, types.NewInt(7))
	before := e.Stats()

	leadRes := e.Submit(lead, nil)
	subRes := e.Submit(sub, []types.Value{types.NewInt(7)})
	if err := leadRes.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := subRes.Wait(); err != nil {
		t.Fatal(err)
	}

	st := e.Stats()
	if got := st.SubsumedQueries - before.SubsumedQueries; got != 1 {
		t.Fatalf("subsumed %d queries, want 1", got)
	}
	if got := st.QueriesRun - before.QueriesRun; got != 1 {
		t.Fatalf("engine ran %d activations, want 1 (the covering scan)", got)
	}
	// The subsumed answer must match the standalone run row-for-row — the
	// residual filter preserves the shared scan's clock order.
	if len(subRes.Rows) != len(wantSub.Rows) {
		t.Fatalf("subsumed result has %d rows, standalone %d", len(subRes.Rows), len(wantSub.Rows))
	}
	for i := range subRes.Rows {
		for j := range subRes.Rows[i] {
			if !subRes.Rows[i][j].Equal(wantSub.Rows[i][j]) {
				t.Fatalf("row %d col %d: subsumed %v, standalone %v",
					i, j, subRes.Rows[i][j], wantSub.Rows[i][j])
			}
		}
	}
	if subRes.SnapshotTS != leadRes.SnapshotTS {
		t.Fatalf("subsumed read at snapshot %d, lead at %d", subRes.SnapshotTS, leadRes.SnapshotTS)
	}
}

func TestFoldSubsumeRequiresCoverage(t *testing.T) {
	db, closeDB := bookstore(t)
	defer closeDB()
	e := foldEngine(t, db, true)
	defer e.Close()
	lead := mustPrepare(t, e, `SELECT i_id, i_title, i_a_id FROM item`)
	// i_price is not in the lead's projection: not coverable.
	sub := mustPrepare(t, e, `SELECT i_price FROM item WHERE i_a_id = ?`)
	// ORDER BY disqualifies fold metadata entirely (no shared-scan order).
	ordered := mustPrepare(t, e, `SELECT i_id FROM item WHERE i_a_id = ? ORDER BY i_id`)

	run(t, e, lead)
	before := e.Stats()

	leadRes := e.Submit(lead, nil)
	subRes := e.Submit(sub, []types.Value{types.NewInt(7)})
	ordRes := e.Submit(ordered, []types.Value{types.NewInt(7)})
	for _, r := range []*Result{leadRes, subRes, ordRes} {
		if err := r.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if got := st.SubsumedQueries - before.SubsumedQueries; got != 0 {
		t.Fatalf("subsumed %d queries, want 0 (uncovered column / ordered sink)", got)
	}
	if got := st.QueriesRun - before.QueriesRun; got != 3 {
		t.Fatalf("engine ran %d activations, want 3", got)
	}
	if len(subRes.Rows) == 0 || len(ordRes.Rows) == 0 {
		t.Fatal("non-subsumable queries returned no rows")
	}
}

// TestFoldWriteOrdering pins the fold-vs-write contract: a folded read
// never observes a snapshot its generation peers can't. A duplicate
// submitted after a write in the same window folds into a lead submitted
// before the write — and still sees the write, because every read in the
// generation runs at the post-write snapshot. Across windows, the fold
// index resets: a duplicate of an already-dispatched query re-executes at
// the newer snapshot instead of being served stale rows.
func TestFoldWriteOrdering(t *testing.T) {
	db, closeDB := bookstore(t)
	defer closeDB()
	e := foldEngine(t, db, false)
	defer e.Close()
	read := mustPrepare(t, e, `SELECT i_id FROM item WHERE i_id > ?`)
	ins := mustPrepare(t, e, `INSERT INTO item VALUES (?, ?, ?, ?, ?)`)

	newItem := func(id int64) []types.Value {
		return []types.Value{types.NewInt(id), types.NewString("Fold Title"),
			types.NewInt(1), types.NewString("ARTS"), types.NewFloat(1)}
	}
	hasID := func(res *Result, id int64) bool {
		for _, row := range res.Rows {
			if row[0].Int == id {
				return true
			}
		}
		return false
	}

	// Same window: lead read, then a write, then a duplicate read.
	run(t, e, read, types.NewInt(10000)) // warm: open the window
	leadRes := e.Submit(read, []types.Value{types.NewInt(900)})
	wRes := e.Submit(ins, newItem(1001))
	dupRes := e.Submit(read, []types.Value{types.NewInt(900)})
	for _, r := range []*Result{leadRes, wRes, dupRes} {
		if err := r.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if !hasID(leadRes, 1001) || !hasID(dupRes, 1001) {
		t.Fatal("reads in the write's generation must see the write (post-write snapshot)")
	}
	sameResult(t, leadRes, dupRes)

	// Next window: a fresh duplicate must not be served the old fan-out.
	w2 := e.Submit(ins, newItem(1002))
	if err := w2.Wait(); err != nil {
		t.Fatal(err)
	}
	later := e.Submit(read, []types.Value{types.NewInt(900)})
	if err := later.Wait(); err != nil {
		t.Fatal(err)
	}
	if !hasID(later, 1002) {
		t.Fatal("post-dispatch duplicate was served a stale folded result")
	}
	if later.SnapshotTS <= leadRes.SnapshotTS {
		t.Fatalf("later read pinned snapshot %d, not after %d", later.SnapshotTS, leadRes.SnapshotTS)
	}
}

func TestFoldAbandonDetachesSubscriber(t *testing.T) {
	cancelErr := errors.New("ctx cancelled")
	fan := NewFanout()
	lead := NewPendingResult()
	s1, s2 := NewPendingResult(), NewPendingResult()
	if !fan.Attach(s1) || !fan.Attach(s2) {
		t.Fatal("attach to open fan-out failed")
	}

	// Abandoning a fold subscriber completes it immediately with the
	// caller's error and detaches it — the lead and its other subscribers
	// are untouched.
	if !s1.Abandon(cancelErr) {
		t.Fatal("fold subscriber Abandon returned false")
	}
	select {
	case <-s1.Done():
	default:
		t.Fatal("abandoned subscriber not completed")
	}
	if s1.Err != cancelErr {
		t.Fatalf("abandoned subscriber err = %v", s1.Err)
	}

	lead.Rows = []types.Row{{types.NewInt(42)}}
	lead.SnapshotTS = 7
	lead.Complete(nil)
	fan.Complete(lead)
	if err := s2.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(s2.Rows) != 1 || s2.Rows[0][0].Int != 42 || s2.SnapshotTS != 7 {
		t.Fatalf("surviving subscriber got %v @%d", s2.Rows, s2.SnapshotTS)
	}
	if s1.Err != cancelErr || len(s1.Rows) != 0 {
		t.Fatal("completion overwrote the abandoned subscriber")
	}

	// The window is closed: no more subscribers.
	if fan.Attach(NewPendingResult()) {
		t.Fatal("Attach succeeded after Complete")
	}
}

// TestDifferentialFoldDuplicateHeavy replays a duplicate-heavy randomized
// workload — parameters drawn from tiny domains so most submissions have
// in-flight twins — with folding on and off, asserting every client gets
// exactly the query-at-a-time oracle's rows either way.
func TestDifferentialFoldDuplicateHeavy(t *testing.T) {
	for _, mode := range []struct {
		name string
		cfg  Config
	}{
		{"off", Config{}},
		{"on", Config{FoldQueries: true}},
		{"on-subsume", Config{FoldQueries: true, FoldSubsume: true}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			db, closeDB := bookstore(t)
			defer closeDB()
			e := New(db, plan.New(db), mode.cfg)
			defer e.Close()
			qat := baseline.New(db, baseline.SystemXLike)

			subjects := []string{"ARTS", "SCIENCE", "HISTORY", "COOKING"}
			templates := []struct {
				sql     string
				mkParam func(r *rand.Rand) []types.Value
			}{
				{"SELECT i_id, i_title FROM item WHERE i_subject = ?",
					func(r *rand.Rand) []types.Value {
						return []types.Value{types.NewString(subjects[r.Intn(len(subjects))])}
					}},
				{"SELECT i_id, i_title, i_a_id FROM item", // subsumption lead
					func(r *rand.Rand) []types.Value { return nil }},
				{"SELECT i_id, i_title FROM item WHERE i_a_id = ?", // subsumption candidate
					func(r *rand.Rand) []types.Value { return []types.Value{types.NewInt(int64(r.Intn(4)))} }},
				{"SELECT i_title, a_lname FROM item, author WHERE i_a_id = a_id AND i_subject = ?",
					func(r *rand.Rand) []types.Value {
						return []types.Value{types.NewString(subjects[r.Intn(2)])}
					}},
				{"SELECT i_id FROM item WHERE i_price > ?",
					func(r *rand.Rand) []types.Value {
						return []types.Value{types.NewFloat(float64(r.Intn(3)) * 30)}
					}},
			}
			stmts := make([]*plan.Statement, len(templates))
			oracle := make([]*baseline.Stmt, len(templates))
			for i, tpl := range templates {
				var err error
				if stmts[i], err = e.Prepare(tpl.sql); err != nil {
					t.Fatal(err)
				}
				if oracle[i], err = qat.Prepare(tpl.sql); err != nil {
					t.Fatal(err)
				}
			}

			r := rand.New(rand.NewSource(61))
			for round := 0; round < 8; round++ {
				n := 20 + r.Intn(20)
				idxs := make([]int, n)
				params := make([][]types.Value, n)
				results := make([]*Result, n)
				for i := 0; i < n; i++ {
					idxs[i] = r.Intn(len(templates))
					params[i] = templates[idxs[i]].mkParam(r)
					results[i] = e.Submit(stmts[idxs[i]], params[i])
				}
				for i := 0; i < n; i++ {
					if err := results[i].Wait(); err != nil {
						t.Fatalf("round %d query %d: %v", round, i, err)
					}
					want, err := oracle[idxs[i]].Exec(params[i])
					if err != nil {
						t.Fatal(err)
					}
					if !sameRows(results[i].Rows, want.Rows) {
						t.Fatalf("round %d mode=%s: mismatch for %q params %v:\nshared (%d rows): %v\noracle (%d rows): %v",
							round, mode.name, templates[idxs[i]].sql, params[i],
							len(results[i].Rows), canon(results[i].Rows), len(want.Rows), canon(want.Rows))
					}
				}
			}
			if mode.cfg.FoldQueries {
				if e.Stats().FoldedQueries == 0 {
					t.Fatal("duplicate-heavy sweep never folded — fold path untested")
				}
			} else if e.Stats().FoldedQueries != 0 {
				t.Fatal("folding off but FoldedQueries > 0")
			}
		})
	}
}
