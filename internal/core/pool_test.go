package core

import (
	"fmt"
	"sync"
	"testing"

	"shareddb/internal/par"
	"shareddb/internal/plan"
	"shareddb/internal/types"
)

// Engine-level checks of the memory-discipline machinery: the plan-wide
// batch pool must actually recycle across generations on both the serial
// and the parallel worker paths, and the adaptive worker budget must keep
// tiny steady-state generations from forking goroutines.

func TestBatchPoolReuseAcrossGenerations(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			db, closeDB := bookstore(t)
			defer closeDB()
			gp := plan.New(db)
			e := New(db, gp, Config{Workers: workers, MaxInFlightGenerations: 1})
			defer e.Close()
			s := mustPrepare(t, e, "SELECT i_id FROM item WHERE i_title LIKE ?")
			for i := 0; i < 12; i++ {
				run(t, e, s, types.NewString("%1%"))
			}
			gets, reuses := gp.PoolStats()
			if gets == 0 {
				t.Fatal("no batches drawn from the pool")
			}
			if reuses == 0 {
				t.Errorf("no batch reuse across %d generations (gets=%d)", 12, gets)
			}
			// Steady state: all but the first generation's batches recycle.
			if float64(reuses) < 0.5*float64(gets) {
				t.Errorf("reuse rate %d/%d below 50%%", reuses, gets)
			}
		})
	}
}

// TestTinyGenerationsStaySerial pins the adaptive worker budget end to end:
// once a node has seen one tiny cycle, later tiny cycles run serial — no
// worker goroutines are forked anywhere in the plan — even under a large
// configured budget.
func TestTinyGenerationsStaySerial(t *testing.T) {
	db, closeDB := bookstore(t) // 100-row item table: every cycle is tiny
	defer closeDB()
	gp := plan.New(db)
	e := New(db, gp, Config{Workers: 8, MaxInFlightGenerations: 1})
	defer e.Close()
	// Group output has singleton query sets, so a multi-query sort cycle is
	// exactly the shape that would fork per-query partition sorts without
	// the adaptive clamp.
	s := mustPrepare(t, e, "SELECT i_subject, COUNT(*) FROM item GROUP BY i_subject ORDER BY i_subject")

	wave := func() {
		var wg sync.WaitGroup
		for j := 0; j < 4; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				res := e.Submit(s, nil)
				if err := res.Wait(); err != nil {
					t.Error(err)
				}
			}()
		}
		wg.Wait()
	}
	// Warm-up generations: first cycles have no input-size history and may
	// fork under the configured budget.
	for i := 0; i < 3; i++ {
		wave()
	}
	before := par.Forks()
	for i := 0; i < 10; i++ {
		wave()
	}
	if forked := par.Forks() - before; forked != 0 {
		t.Errorf("steady-state tiny generations forked %d workers, want 0", forked)
	}
}
