// Admission control: the paper sizes generations against a response-time
// limit ("the response time limit defines the batching window"), where this
// engine previously drained whatever had queued. The admission controller
// bounds the work one generation admits — and the work allowed to queue —
// along three axes:
//
//   - Config.QueueDepthLimit caps the submission queue. Excess submissions
//     are REJECTED immediately with a typed *OverloadError (wrapping
//     ErrOverloaded) carrying a retry hint, instead of queueing unboundedly.
//   - Config.StatementQuota caps how many activations of any single
//     statement one generation admits. Excess activations are SHED: they
//     stay queued, in arrival order, for a later generation — the client
//     keeps waiting, but one statement's burst cannot monopolize a cycle.
//   - Config.MaxGenerationDelay is the per-generation latency SLO. The
//     controller tracks an EWMA of observed per-request generation cost and
//     closes each batch at the size predicted to finish within the SLO
//     (excess is shed to the next generation, like quota overflow).
//
// Shed vs reject: shedding defers work (bounded per-generation cost, queue
// absorbs the burst); rejecting pushes back on the client (bounded queue).
// Under sustained overload shed work accumulates in the queue until the
// depth limit converts the overflow into rejections — so both bounds
// together give bounded in-flight work.
//
// The slow-query circuit breaker quarantines plans that repeatedly blow the
// SLO (the paper's ad-hoc query risk: one expensive plan joining the shared
// cycle drags every co-batched query over its deadline). Every generation
// that exceeds MaxGenerationDelay gives each read statement it contained a
// strike; BreakerStrikes consecutive strikes trip the statement's breaker
// (submissions reject with ErrOverloaded). After BreakerCooldown the
// breaker goes half-open and admits exactly one probe activation: if the
// probe's generation meets the SLO the breaker resets, if it blows the SLO
// the breaker re-trips for another cooldown. Blame is generation-grained —
// a light query repeatedly co-batched with a heavy one collects strikes
// too, but any SLO-met generation containing a statement resets its breaker,
// so only plans that are slow wherever they appear stay quarantined.
//
// Cycle time is measured wall-clock from dispatch to read-phase
// completion, so with MaxInFlightGenerations > 1 it includes contention
// from overlapping generations. That is deliberate — the SLO bounds what
// the client observes, and a pipeline saturated enough to blow it IS
// overload. Blame, however, is cost-attributed, not generation-grained:
// the engine times every operator cycle (operators.CycleStart.CostObserve)
// and splits each node's active time equally across the statements whose
// queries were active there. When a blown generation carries attribution,
// only statements whose share is at or above the generation's per-statement
// average are struck; below-average statements are SPARED — their breaker
// state is cleared, exactly as if they had run in an SLO-met generation —
// so a light query co-batched with a heavy one never trips. Generations
// without attribution (cost observing needs the SLO breaker on; write-only
// generations report none) fall back to striking every statement.
//
// The attributed costs also feed per-statement cost rings (last
// costRingSamples generations, p75 predictor), which sharpen the SLO batch
// cap: batch formation walks the queue accumulating each statement's
// predicted cost — charging each distinct statement once, since shared
// execution folds duplicate activations into the same operator work — and
// sheds the strict positional suffix past the budget (adaptive SLO). With
// no per-statement history the cap falls back to the uniform EWMA estimate.
//
// All admission state is guarded by the engine mutex: every method on
// admission must be called with Engine.mu held. With every knob at its
// zero value newAdmission returns nil and the engine's dispatch path is
// byte-identical to the pre-admission engine (pinned by the differential
// suite).
package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"shareddb/internal/plan"
)

// ErrOverloaded is the sentinel all admission rejections wrap: shed-vs-kept
// callers match with errors.Is(err, core.ErrOverloaded) and recover the
// retry hint with errors.As into a *OverloadError.
var ErrOverloaded = errors.New("core: overloaded")

// OverloadError is the typed admission rejection. It wraps ErrOverloaded
// (errors.Is matches) and carries a retry hint: how long the client should
// wait before resubmitting (the estimated queue drain time, or the
// remaining breaker cooldown).
type OverloadError struct {
	// Reason says which limit rejected the submission (queue depth,
	// quarantined statement, half-open probe in flight).
	Reason string
	// RetryAfter is the suggested client back-off before resubmitting.
	RetryAfter time.Duration
}

// Error renders the rejection with its retry hint.
func (e *OverloadError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("core: overloaded: %s (retry after %v)", e.Reason, e.RetryAfter)
	}
	return "core: overloaded: " + e.Reason
}

// Unwrap makes errors.Is(err, ErrOverloaded) match.
func (e *OverloadError) Unwrap() error { return ErrOverloaded }

const (
	// MinGenerationDelay is the smallest enforceable SLO: below the ~1ms
	// granularity of the platform timer the engine cannot distinguish an
	// SLO-met cycle from a blown one, so Config.Validate rejects non-zero
	// values under this floor.
	MinGenerationDelay = time.Millisecond
	// DefaultBreakerStrikes is the consecutive over-SLO generations that
	// quarantine a statement when Config.BreakerStrikes is zero.
	DefaultBreakerStrikes = 3
	// defaultCooldownFactor sizes the default breaker cooldown as a
	// multiple of the SLO: long enough for a queue sized by the SLO to
	// drain, short enough that a transiently slow plan is re-probed soon.
	defaultCooldownFactor = 8
	// costAlpha is the EWMA weight of the newest per-request cost sample.
	costAlpha = 0.3
)

// breakerState is the slow-query circuit breaker's state machine.
type breakerState uint8

const (
	breakerClosed   breakerState = iota // admitting normally
	breakerOpen                         // quarantined: reject until cooldown
	breakerHalfOpen                     // cooldown elapsed: one probe allowed
)

// String names the state for errors and tests.
func (s breakerState) String() string {
	return [...]string{"closed", "open", "half-open"}[s]
}

// breaker is one statement's quarantine state.
type breaker struct {
	state    breakerState
	strikes  int       // consecutive over-SLO generations while closed
	openedAt time.Time // when the breaker last tripped
	probing  bool      // half-open: the single probe is in flight
}

// AdmissionStats are the admission controller's counters.
type AdmissionStats struct {
	// Shed counts deferral events: requests pushed to a later generation
	// by the statement quota or the SLO batch cap (a request deferred k
	// generations counts k times).
	Shed uint64
	// Rejected counts submissions refused with ErrOverloaded.
	Rejected uint64
	// BreakerTrips counts closed→open and half-open→open transitions.
	BreakerTrips uint64
	// QueueDepth is the current submission queue length including router
	// reservations (never exceeds Config.QueueDepthLimit when set).
	QueueDepth int
}

// admission is the engine's admission controller. All fields are guarded by
// the engine mutex; every method must be called with it held.
type admission struct {
	maxDelay   time.Duration // SLO; 0 disables SLO sizing and the breaker
	queueLimit int           // 0 = unlimited
	quota      int           // per-statement activations per generation; 0 = unlimited
	strikes    int           // breaker trip threshold
	cooldown   time.Duration // open → half-open delay
	now        func() time.Time

	// Breaker and quota state key on the statement's SQL text, not the
	// *plan.Statement handle: the ad-hoc path (DB.Query, the server's
	// per-line execute) prepares a FRESH handle per submission, and the
	// ad-hoc plan is exactly what the slow-query breaker exists to
	// quarantine — pointer identity would never see the same statement
	// twice. SQL identity also matches the plan layer's sharing signature
	// (same text ⇒ same shared operators).
	costNs       float64 // EWMA of per-request generation cost in ns
	breakers     map[string]*breaker
	stmtCost     map[string]*costRing // per-statement attributed cycle cost
	quotaScratch map[string]int       // formBatch per-call counts, reused

	shed     uint64
	rejected uint64
	trips    uint64
}

// newAdmission resolves the admission knobs; it returns nil — admission
// fully disabled, the engine hot path unchanged — when every limit is at
// its zero value. Negative values (rejected by Config.Validate on the
// public path) are clamped to "disabled" as a backstop, mirroring how New
// clamps Workers and MaxInFlightGenerations.
func newAdmission(cfg Config) *admission {
	maxDelay := cfg.MaxGenerationDelay
	if maxDelay < 0 {
		maxDelay = 0
	}
	queueLimit := cfg.QueueDepthLimit
	if queueLimit < 0 {
		queueLimit = 0
	}
	quota := cfg.StatementQuota
	if quota < 0 {
		quota = 0
	}
	if maxDelay == 0 && queueLimit == 0 && quota == 0 {
		return nil
	}
	strikes := cfg.BreakerStrikes
	if strikes <= 0 {
		strikes = DefaultBreakerStrikes
	}
	cooldown := cfg.BreakerCooldown
	if cooldown <= 0 {
		cooldown = defaultCooldownFactor * maxDelay
	}
	return &admission{
		maxDelay:     maxDelay,
		queueLimit:   queueLimit,
		quota:        quota,
		strikes:      strikes,
		cooldown:     cooldown,
		now:          time.Now,
		breakers:     map[string]*breaker{},
		stmtCost:     map[string]*costRing{},
		quotaScratch: map[string]int{},
	}
}

// costRingSamples is how many recent generations of attributed cost each
// statement retains for the adaptive SLO predictor.
const costRingSamples = 8

// costRing is one statement's bounded history of attributed per-generation
// cycle cost (nanoseconds).
type costRing struct {
	samples [costRingSamples]float64
	n, idx  int
}

func (r *costRing) push(v float64) {
	r.samples[r.idx] = v
	r.idx = (r.idx + 1) % costRingSamples
	if r.n < costRingSamples {
		r.n++
	}
}

// predict estimates the statement's next-generation cost: the p75 of the
// retained samples (robust to a single outlier generation in either
// direction) once at least four exist, the mean before that.
func (r *costRing) predict() float64 {
	if r.n == 0 {
		return 0
	}
	if r.n < 4 {
		var sum float64
		for i := 0; i < r.n; i++ {
			sum += r.samples[i]
		}
		return sum / float64(r.n)
	}
	var buf [costRingSamples]float64
	copy(buf[:], r.samples[:r.n])
	s := buf[:r.n]
	sort.Float64s(s)
	return s[len(s)*3/4]
}

// admit decides whether one submission may join the queue at the given
// current depth (pending + reservations). It returns nil to admit or a
// *OverloadError to reject. The queue-depth check runs first so a full
// queue never consumes a half-open breaker's probe slot.
func (a *admission) admit(stmt *plan.Statement, depth int) error {
	if a.queueLimit > 0 && depth >= a.queueLimit {
		a.rejected++
		return &OverloadError{
			Reason:     fmt.Sprintf("submission queue at depth limit %d", a.queueLimit),
			RetryAfter: a.drainEstimate(depth),
		}
	}
	// The breaker guards read plans: writes do not traverse the shared
	// operator DAG, so they cannot blow a read cycle's SLO by themselves.
	if stmt != nil && !stmt.IsWrite() && a.maxDelay > 0 {
		if err := a.checkBreaker(stmt); err != nil {
			a.rejected++
			return err
		}
	}
	return nil
}

// drainEstimate predicts how long the current queue takes to drain — the
// retry hint on queue-depth rejections.
func (a *admission) drainEstimate(depth int) time.Duration {
	if a.costNs > 0 {
		return time.Duration(a.costNs * float64(depth+1))
	}
	if a.maxDelay > 0 {
		return a.maxDelay
	}
	return MinGenerationDelay
}

// checkBreaker runs the statement's quarantine state machine for one
// submission attempt.
func (a *admission) checkBreaker(stmt *plan.Statement) error {
	b := a.breakers[stmt.SQL]
	if b == nil || b.state == breakerClosed {
		return nil
	}
	if b.state == breakerOpen {
		if wait := b.openedAt.Add(a.cooldown).Sub(a.now()); wait > 0 {
			return &OverloadError{
				Reason:     fmt.Sprintf("statement quarantined by slow-query breaker (%d consecutive generations over the %v SLO)", b.strikes, a.maxDelay),
				RetryAfter: wait,
			}
		}
		b.state = breakerHalfOpen
		b.probing = false
	}
	if b.probing {
		return &OverloadError{
			Reason:     "statement breaker half-open: probe already in flight",
			RetryAfter: a.maxDelay,
		}
	}
	b.probing = true
	return nil
}

// peekBreaker is the non-mutating twin of checkBreaker: it reports whether
// a submission of the statement would be rejected right now, without
// consuming the half-open probe slot or transitioning state. The ad-hoc
// path uses it BEFORE Prepare — Prepare quiesces the whole generation
// pipeline, so a quarantined statement's retry loop must fail fast here
// instead of repeatedly stalling every other client's traffic.
func (a *admission) peekBreaker(sqlText string) error {
	b := a.breakers[sqlText]
	if b == nil || b.state == breakerClosed {
		return nil
	}
	if b.state == breakerOpen {
		if wait := b.openedAt.Add(a.cooldown).Sub(a.now()); wait > 0 {
			return &OverloadError{
				Reason:     fmt.Sprintf("statement quarantined by slow-query breaker (%d consecutive generations over the %v SLO)", b.strikes, a.maxDelay),
				RetryAfter: wait,
			}
		}
		return nil // cooldown elapsed: the real submission may probe
	}
	if b.probing {
		return &OverloadError{
			Reason:     "statement breaker half-open: probe already in flight",
			RetryAfter: a.maxDelay,
		}
	}
	return nil
}

// sloCap converts the cost EWMA into the largest batch predicted to finish
// inside the SLO; 0 means "no cap" (SLO disabled, or no history yet).
func (a *admission) sloCap() int {
	if a.maxDelay <= 0 || a.costNs <= 0 {
		return 0
	}
	n := int(float64(a.maxDelay) / a.costNs)
	if n < 1 {
		n = 1 // a generation always admits at least one request
	}
	return n
}

// sloLimit picks the largest batch prefix predicted to finish inside the
// SLO (0 = no cap). With per-statement cost history (the engine's cycle
// attribution) it walks the queue accumulating each request's predicted
// cost — charging each distinct statement once, since shared execution
// folds duplicate activations into the same operator pass — and cuts at
// the first request past the budget, a strict positional suffix shed.
// Requests with no history are charged the uniform EWMA estimate. Without
// any per-statement history it falls back to the EWMA-only sloCap.
func (a *admission) sloLimit(pending []*Request) int {
	if a.maxDelay <= 0 {
		return 0
	}
	if len(a.stmtCost) == 0 {
		return a.sloCap()
	}
	budget := float64(a.maxDelay)
	var acc float64
	charged := make(map[string]bool, len(pending))
	for i, r := range pending {
		var c float64
		if r.Stmt != nil {
			if ring := a.stmtCost[r.Stmt.SQL]; ring != nil {
				if !charged[r.Stmt.SQL] {
					charged[r.Stmt.SQL] = true
					c = ring.predict()
				}
			} else {
				c = a.costNs
			}
		} else {
			c = a.costNs
		}
		acc += c
		if acc > budget && i > 0 {
			return i // a generation always admits at least one request
		}
	}
	return 0
}

// formBatch partitions the pending queue into the batch this generation
// admits and the remainder shed to the next one, preserving arrival order
// in both. maxBatch is Config.MaxBatch (applied here so the admission and
// legacy caps compose). The batch compacts in place over pending's backing
// array; rest is freshly allocated (it becomes the new pending queue).
func (a *admission) formBatch(pending []*Request, maxBatch int) (batch, rest []*Request) {
	limit := len(pending)
	if maxBatch > 0 && maxBatch < limit {
		limit = maxBatch
	}
	// Only admission-driven deferrals count as shed: a MaxBatch trim is
	// the legacy cap and was never reported before admission existed.
	sloLimited := false
	if c := a.sloLimit(pending); c > 0 && c < limit {
		limit = c
		sloLimited = true
	}
	if limit == len(pending) && a.quota == 0 {
		return pending, nil
	}
	counts := a.quotaScratch
	batch = pending[:0]
	for _, r := range pending {
		// The quota is a read-cycle fairness knob and deliberately skips
		// writes (and tx commits, which have no Stmt): quota shedding is
		// NON-positional — it defers a mid-queue request past later
		// arrivals — which is harmless for reads (they just run at a later
		// snapshot) but would reorder the write stream. Since every shard
		// engine forms generation windows independently, a reordered
		// broadcast-write stream would apply in different orders on
		// different shards and diverge replicated copies; the positional
		// caps above (MaxBatch, SLO) only ever defer a strict suffix, so
		// relative order — and cross-shard write order — is preserved.
		quotaEligible := a.quota > 0 && r.Stmt != nil && !r.Stmt.IsWrite()
		switch {
		case len(batch) >= limit:
			rest = append(rest, r)
			if sloLimited {
				a.shed++
			}
		case quotaEligible && counts[r.Stmt.SQL] >= a.quota:
			rest = append(rest, r)
			a.shed++
		default:
			if quotaEligible {
				counts[r.Stmt.SQL]++
			}
			batch = append(batch, r)
		}
	}
	for k := range counts {
		delete(counts, k)
	}
	return batch, rest
}

// maxBreakers bounds the quarantine map: beyond it, new slow statements
// are not tracked (existing breakers keep working) instead of growing the
// map per unique ad-hoc SQL text forever. SLO-met generations delete their
// statements' entries, so a healthy workload stays far below the cap.
const maxBreakers = 4096

// recordGeneration is recordGenerationCosts without attribution (kept for
// call sites and tests that predate per-statement costing).
func (a *admission) recordGeneration(stmts []*plan.Statement, d time.Duration, batchSize int) {
	a.recordGenerationCosts(stmts, d, batchSize, nil)
}

// recordGenerationCosts feeds one completed generation back into the
// controller: the cost EWMA that sizes future batches, the per-statement
// cost rings behind the adaptive SLO cap, and — for read-bearing
// generations — a strike or a reset for every distinct read statement the
// generation contained (write-only generations pass nil stmts).
//
// costs is the generation's attributed operator time per statement SQL (nil
// when attribution is off). On a blown generation with attribution, a
// statement is struck only when its share is at or above the generation's
// per-statement average; below-average statements are spared AND reset —
// the attribution is positive evidence they are not the slow plan, so a
// light query co-batched with a heavy one never accumulates strikes.
func (a *admission) recordGenerationCosts(stmts []*plan.Statement, d time.Duration, batchSize int, costs map[string]int64) {
	if batchSize > 0 {
		per := float64(d) / float64(batchSize)
		if a.costNs == 0 {
			a.costNs = per
		} else {
			a.costNs = costAlpha*per + (1-costAlpha)*a.costNs
		}
	}
	if a.maxDelay <= 0 {
		return
	}
	// Adaptive SLO feed: one attributed-cost sample per statement per
	// generation. Totaled over the generation's statements only — standing
	// queries are attributed in costs too, but blame among the batch is
	// relative to the batch.
	var total int64
	if costs != nil {
		for _, s := range stmts {
			c := costs[s.SQL]
			total += c
			if c <= 0 {
				continue
			}
			ring := a.stmtCost[s.SQL]
			if ring == nil {
				if len(a.stmtCost) >= maxBreakers {
					continue
				}
				ring = &costRing{}
				a.stmtCost[s.SQL] = ring
			}
			ring.push(float64(c))
		}
	}
	blown := d > a.maxDelay
	attributed := blown && total > 0
	for _, s := range stmts {
		b := a.breakers[s.SQL]
		spared := !blown ||
			(attributed && costs[s.SQL]*int64(len(stmts)) < total)
		if spared {
			// Either the generation met the SLO, or attribution shows this
			// statement carried less than its share of a blown one: reset
			// (this is also how a successful half-open probe closes the
			// breaker).
			if b != nil {
				delete(a.breakers, s.SQL)
			}
			continue
		}
		if b == nil {
			if len(a.breakers) >= maxBreakers {
				continue
			}
			b = &breaker{}
			a.breakers[s.SQL] = b
		}
		switch b.state {
		case breakerClosed:
			b.strikes++
			if b.strikes >= a.strikes {
				b.state = breakerOpen
				b.openedAt = a.now()
				a.trips++
			}
		case breakerHalfOpen:
			// Failed probe: re-trip for another cooldown.
			b.state = breakerOpen
			b.openedAt = a.now()
			b.probing = false
			a.trips++
		case breakerOpen:
			// A pre-trip activation finished late; the breaker is already
			// doing its job.
		}
	}
}
