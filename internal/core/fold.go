// Result folding: activations with identical statement identity and bound
// parameters that land in the same generation collapse to one activation
// whose result fans out to every subscriber ("Pay One, Get Hundreds for
// Free"). The fold window is the pending queue — a request stops accepting
// subscribers the moment batch formation drafts it into a generation, so a
// subscriber always receives exactly the rows its own activation would
// have produced at that generation's snapshot.
//
// Two requests fold when their fingerprints match AND their SQL text and
// parameter values are identical byte for byte. The fingerprint (FNV-1a
// over the SQL text mixed with each parameter's types.Value.Hash) is only
// a prefilter: Value.Hash is coercion-consistent (INT 1 and FLOAT 1.0
// hash alike) but those parameters can project different output values,
// so the authoritative check compares parameter bit patterns exactly.
//
// Subsumption-lite (Config.FoldSubsume) additionally lets a parameter-free
// simple scan serve its equality-restriction duplicates: when
// internal/expr analysis proves the lead's output covers every column the
// subscriber's predicate and projection touch, the subscriber's rows are a
// residual filter plus column projection over the lead's rows — same scan
// order, same snapshot, bit-identical to a private activation.
package core

import (
	"math"
	"sync"

	"shareddb/internal/expr"
	"shareddb/internal/plan"
	"shareddb/internal/types"
)

// FNV-1a parameters, mirroring types.Value.Hash so the statement-text mix
// and the per-parameter value mixes compose into one stream.
const (
	foldFNVOffset64 = 14695981039346656037
	foldFNVPrime64  = 1099511628211
)

// FoldFingerprint hashes a statement's identity (its SQL text) together
// with its bound parameters into the fold-index key. Collisions are
// harmless — fold candidates are verified by exact SQL and parameter
// comparison — the fingerprint only bounds the search.
func FoldFingerprint(sqlText string, params []types.Value) uint64 {
	h := uint64(foldFNVOffset64)
	for i := 0; i < len(sqlText); i++ {
		h ^= uint64(sqlText[i])
		h *= foldFNVPrime64
	}
	for _, p := range params {
		u := p.Hash()
		for i := 0; i < 8; i++ {
			h ^= uint64(byte(u >> (8 * i)))
			h *= foldFNVPrime64
		}
	}
	return h
}

// IdenticalParams reports whether two parameter lists are identical bit
// for bit. This is deliberately stricter than types.Value.Equal: Equal
// coerces numerics (INT 1 equals FLOAT 1.0) and would also let -0.0 fold
// into 0.0, but a projected parameter renders those differently — folding
// must never change a single output byte.
func IdenticalParams(a, b []types.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].K != b[i].K || a[i].Int != b[i].Int || a[i].Str != b[i].Str ||
			math.Float64bits(a[i].Float) != math.Float64bits(b[i].Float) {
			return false
		}
	}
	return true
}

// foldTransform rewrites a lead's result rows into a subsumed subscriber's
// result: a residual filter (the subscriber's bound predicate, remapped to
// the lead's output columns) followed by a projection by lead-output index.
type foldTransform struct {
	residual expr.Expr // nil = no residual (predicate fully satisfied)
	project  []int     // subscriber output i = lead output project[i]
	schema   *types.Schema
}

func (t *foldTransform) apply(rows []types.Row) []types.Row {
	var out []types.Row
	for _, r := range rows {
		if t.residual != nil && !t.residual.Eval(r, nil).AsBool() {
			continue
		}
		nr := make(types.Row, len(t.project))
		for i, idx := range t.project {
			nr[i] = r[idx]
		}
		out = append(out, nr)
	}
	return out
}

// foldSub is one fan-out subscriber: a pending result plus the transform
// (nil for identical-fingerprint folds, which share the lead's rows).
type foldSub struct {
	res *Result
	tr  *foldTransform
}

// Fanout is the subscriber group attached to a fold lead. The engine
// creates one lazily when the first duplicate folds in; the shard router
// creates one per pending cross-shard gather via NewFanout.
type Fanout struct {
	mu   sync.Mutex
	subs []foldSub
	done bool
}

// NewFanout returns an empty fan-out group for callers that drive
// completion outside an engine generation (the shard router's
// fold-before-scatter path).
func NewFanout() *Fanout { return &Fanout{} }

// Attach subscribes res to the group. It fails (returns false) when the
// group has already completed — the caller must then fall back to a fresh
// submission.
func (f *Fanout) Attach(res *Result) bool { return f.attach(res, nil) }

func (f *Fanout) attach(res *Result, tr *foldTransform) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done {
		return false
	}
	f.subs = append(f.subs, foldSub{res: res, tr: tr})
	res.fold = f
	return true
}

// detach removes res from the group before completion; true means the
// caller now owns the result (the fanout will never touch it again).
func (f *Fanout) detach(res *Result) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done {
		return false
	}
	for i, s := range f.subs {
		if s.res == res {
			f.subs = append(f.subs[:i], f.subs[i+1:]...)
			return true
		}
	}
	return false
}

// Complete fans the lead's outcome out to every subscriber and seals the
// group against further attaches. Identical-fold subscribers share the
// lead's row slice (results are materialized and read-only by contract —
// see Rows in the public API); subsumed subscribers get freshly built
// filtered/projected rows.
func (f *Fanout) Complete(lead *Result) { f.complete(lead) }

func (f *Fanout) complete(lead *Result) {
	f.mu.Lock()
	f.done = true
	subs := f.subs
	f.subs = nil
	f.mu.Unlock()
	for _, s := range subs {
		res := s.res
		res.Err = lead.Err
		res.SnapshotTS = lead.SnapshotTS
		if lead.Err == nil {
			if s.tr == nil {
				res.Schema = lead.Schema
				res.Rows = lead.Rows
			} else {
				res.Schema = s.tr.schema
				res.Rows = s.tr.apply(lead.Rows)
			}
		}
		close(res.done)
	}
}

// Abandon detaches a waiter from its pending result (the context-aware
// API's cancellation path). A fold subscriber detaches from its group and
// completes immediately with err — the shared lead and its other
// subscribers are untouched. Any other pending request is marked
// abandoned: if it is still queued at the next batch formation it vacates
// the queue (freeing its queue-depth slot) without entering a generation;
// if it was already drafted it completes normally, unobserved. Returns
// true when the result was completed here (fold-subscriber case).
func (r *Result) Abandon(err error) bool {
	if f := r.fold; f != nil && f.detach(r) {
		r.Err = err
		close(r.done)
		return true
	}
	r.abandoned.Store(true)
	return false
}

// buildFoldTransform proves that lead — a parameter-free simple scan —
// covers sub with the given parameters, and builds the residual transform.
// Requirements (nil on any failure):
//   - both statements carry fold metadata for the same table (single
//     shared ClockScan, pure column projection, no DISTINCT/ORDER/LIMIT),
//     so both would emit rows in the same clock-scan order;
//   - every column sub projects appears in lead's output;
//   - every conjunct of sub's bound predicate is a provable equality
//     restriction (expr.EqualityMatch) on a column lead outputs.
func buildFoldTransform(lead, sub *plan.Statement, params []types.Value) *foldTransform {
	if lead.FoldTable == "" || lead.FoldPred != nil || lead.FoldTable != sub.FoldTable {
		return nil
	}
	out := make(map[int]int, len(lead.FoldCols))
	for i, c := range lead.FoldCols {
		if _, dup := out[c]; !dup {
			out[c] = i
		}
	}
	project := make([]int, len(sub.FoldCols))
	for i, c := range sub.FoldCols {
		idx, ok := out[c]
		if !ok {
			return nil
		}
		project[i] = idx
	}
	bound := expr.Bind(sub.FoldPred, params)
	mapping := make(map[int]int)
	for _, conj := range expr.Conjuncts(bound) {
		col, _, ok := expr.EqualityMatch(conj)
		if !ok {
			return nil
		}
		idx, covered := out[col]
		if !covered {
			return nil
		}
		mapping[col] = idx
	}
	return &foldTransform{
		residual: expr.Remap(bound, mapping),
		project:  project,
		schema:   sub.OutSchema,
	}
}
