package core

import (
	"errors"
	"fmt"

	"shareddb/internal/expr"
	"shareddb/internal/plan"
	"shareddb/internal/storage"
	"shareddb/internal/types"
)

// Executor is the statement-submission API shared by the single-node Engine
// and the sharded router (internal/shard). The public shareddb package, the
// TPC-W harness and the command-line tools program against this interface,
// so a deployment can swap one engine for N shard engines without the
// callers changing.
//
// Prepare returns a *plan.Statement handle; for the sharded backend the
// handle is a routing descriptor rather than a statement registered in one
// global plan, but SQL/IsWrite/OutSchema behave identically.
type Executor interface {
	Prepare(sqlText string) (*plan.Statement, error)
	// AdmitStatement is the pre-Prepare admission peek: it rejects (with
	// a *OverloadError) when the statement's SQL text is quarantined by
	// the slow-query breaker, so ad-hoc retries fail fast without paying
	// Prepare's pipeline quiesce. Always nil when admission is disabled.
	AdmitStatement(sqlText string) error
	Submit(stmt *plan.Statement, params []types.Value) *Result
	// Subscribe registers stmt as a standing query: an initial full result
	// followed by per-generation added/removed deltas on the returned
	// subscription's Updates channel. The sharded backend merges per-shard
	// feeds in generation order.
	Subscribe(stmt *plan.Statement, params []types.Value) (*Subscription, error)
	// BeginTx opens a buffered write transaction; SubmitTx enqueues its
	// commit for the next generation.
	BeginTx() Tx
	SubmitTx(tx Tx) *Result
	// Stats reports the typed counter snapshot (summed across shards for
	// the sharded backend — the in-flight gauges sum per-shard values).
	Stats() EngineStats
	// Workers reports the resolved intra-operator parallelism budget (per
	// shard for the sharded backend).
	Workers() int
	Close()
}

// Tx is the backend-agnostic buffered write transaction: *storage.Tx for
// the single-node engine, a per-shard transaction group for the router.
// Writes buffer until the transaction is submitted; Rollback abandons it.
type Tx interface {
	Insert(table string, row types.Row)
	Update(table string, pred expr.Expr, set []storage.ColSet)
	Delete(table string, pred expr.Expr)
	Rollback()
}

var (
	_ Executor = (*Engine)(nil)
	_ Tx       = (*storage.Tx)(nil)
)

// EngineStats is the typed counter snapshot Executor.Stats returns. All
// counters are cumulative since the engine started; InFlight and
// QueueDepth (inside Admission) are gauges.
type EngineStats struct {
	// Generations is the number of generations dispatched.
	Generations uint64
	// QueriesRun counts read activations actually executed by the engine;
	// folded duplicates are NOT included (they did no engine work).
	QueriesRun uint64
	// WritesRun counts applied write operations and transaction commits.
	WritesRun uint64
	// FoldedQueries counts read submissions served by fan-out from an
	// identical (or subsuming) pending duplicate instead of executing.
	FoldedQueries uint64
	// SubsumedQueries is the subset of FoldedQueries served through a
	// subsumption residual transform rather than an identical fingerprint.
	SubsumedQueries uint64
	// SubscriptionsActive is the gauge of open standing queries (summed
	// across shards for the sharded backend).
	SubscriptionsActive int
	// SubscriptionUpdates counts updates handed to subscribers (initial
	// full results, deltas and lag resyncs; dropped-and-lagged deliveries
	// are not included).
	SubscriptionUpdates uint64
	// InFlight / PeakInFlight mirror InFlightGenerations.
	InFlight     int
	PeakInFlight int
	// Admission carries the admission controller's counters (zero values
	// when admission is disabled; QueueDepth is live regardless).
	Admission AdmissionStats
}

// BeginTx opens a snapshot-isolated transaction on the engine's database.
func (e *Engine) BeginTx() Tx { return e.db.Begin() }

// NewPendingResult returns an unfinished Result for callers that assemble
// results outside an engine generation (the shard router's scatter-gather
// path). Complete the result exactly once with Complete.
func NewPendingResult() *Result { return &Result{done: make(chan struct{})} }

// Complete finishes a pending result, releasing its waiters.
func (r *Result) Complete(err error) {
	r.Err = err
	close(r.done)
}

// Validate rejects configurations that previously defaulted silently:
// negative Workers and negative MaxInFlightGenerations (zero still means
// "engine default" for both), negative admission limits, an SLO the timer
// cannot enforce, and breaker knobs without the SLO that drives them.
func (c Config) Validate() error {
	if c.Workers < 0 {
		return fmt.Errorf("core: Workers must be >= 0, got %d (0 = GOMAXPROCS, 1 = serial)", c.Workers)
	}
	if c.ShardWorkers < 0 {
		return fmt.Errorf("core: ShardWorkers must be >= 0, got %d (0 = GOMAXPROCS/shards)", c.ShardWorkers)
	}
	if c.IncrementalState && c.MaxInFlightGenerations < 0 {
		return fmt.Errorf("core: IncrementalState requires MaxInFlightGenerations >= 1, got %d (the delta chain needs a real pipeline depth; 0 selects the default %d)",
			c.MaxInFlightGenerations, DefaultMaxInFlightGenerations)
	}
	if c.MaxInFlightGenerations < 0 {
		return fmt.Errorf("core: MaxInFlightGenerations must be >= 0, got %d (0 = engine default, 1 = serial)", c.MaxInFlightGenerations)
	}
	if c.SubscriptionBuffer < 0 {
		return fmt.Errorf("core: SubscriptionBuffer must be >= 0, got %d (0 = default %d)", c.SubscriptionBuffer, DefaultSubscriptionBuffer)
	}
	if c.MaxBatch < 0 {
		return fmt.Errorf("core: MaxBatch must be >= 0, got %d (0 = unlimited)", c.MaxBatch)
	}
	if c.MaxGenerationDelay < 0 {
		return fmt.Errorf("core: MaxGenerationDelay must be >= 0, got %v (0 = no latency SLO)", c.MaxGenerationDelay)
	}
	if c.MaxGenerationDelay > 0 && c.MaxGenerationDelay < MinGenerationDelay {
		return fmt.Errorf("core: MaxGenerationDelay %v is below the %v timer resolution and cannot be enforced (use 0 to disable the SLO)",
			c.MaxGenerationDelay, MinGenerationDelay)
	}
	if c.QueueDepthLimit < 0 {
		return fmt.Errorf("core: QueueDepthLimit must be >= 0, got %d (0 = unlimited)", c.QueueDepthLimit)
	}
	if c.StatementQuota < 0 {
		return fmt.Errorf("core: StatementQuota must be >= 0, got %d (0 = unlimited)", c.StatementQuota)
	}
	if c.BreakerStrikes < 0 {
		return fmt.Errorf("core: BreakerStrikes must be >= 0, got %d (0 = default %d)", c.BreakerStrikes, DefaultBreakerStrikes)
	}
	if c.BreakerCooldown < 0 {
		return fmt.Errorf("core: BreakerCooldown must be >= 0, got %v (0 = 8x MaxGenerationDelay)", c.BreakerCooldown)
	}
	if (c.BreakerStrikes > 0 || c.BreakerCooldown > 0) && c.MaxGenerationDelay == 0 {
		return fmt.Errorf("core: breaker knobs require MaxGenerationDelay > 0 (the SLO the slow-query breaker enforces)")
	}
	if c.FoldSubsume && !c.FoldQueries {
		return fmt.Errorf("core: FoldSubsume requires FoldQueries (subsumption extends the fold index)")
	}
	return nil
}

// errNotStorageTx is returned when a foreign Tx implementation reaches the
// single-node engine.
var errNotStorageTx = errors.New("core: SubmitTx requires a transaction from this engine's BeginTx")

// errRequestAbandoned completes results whose waiter cancelled before the
// request was drafted into a generation (nobody is usually waiting — it
// keeps a late Wait well-defined).
var errRequestAbandoned = errors.New("core: request abandoned before dispatch")
