package core

import (
	"fmt"
	"math/rand"
	"testing"

	"shareddb/internal/baseline"
	"shareddb/internal/plan"
	"shareddb/internal/testutil"
	"shareddb/internal/types"
)

// Differential testing: the central correctness claim of SharedDB is that
// the shared, batched global plan returns exactly the rows a traditional
// query-at-a-time engine returns for every individual query (paper §3.3:
// the query_id amendment to the join predicate guarantees "an R tuple that
// is only relevant for Query Q1 does not match an S tuple that is only
// relevant for Query Q2"). This test runs randomized workloads through both
// engines — concurrently and in big batches on the shared engine — and
// compares per-query result multisets.

// canon/sameRows live in internal/testutil (shared with the shard router
// and TPC-W differential suites — one float-rounding width for all).
var (
	canon    = testutil.CanonRows
	sameRows = testutil.SameRows
)

func TestDifferentialSharedVsQueryAtATime(t *testing.T) {
	db, closeDB := bookstore(t)
	defer closeDB()
	shared := newEngine(t, db)
	defer shared.Close()
	qat := baseline.New(db, baseline.SystemXLike)

	type template struct {
		sql     string
		mkParam func(r *rand.Rand) []types.Value
	}
	subjects := []string{"ARTS", "SCIENCE", "HISTORY", "COOKING", "NONE"}
	templates := []template{
		{"SELECT i_title, i_price FROM item WHERE i_id = ?",
			func(r *rand.Rand) []types.Value { return []types.Value{types.NewInt(int64(r.Intn(120)))} }},
		{"SELECT i_id, i_title FROM item WHERE i_subject = ?",
			func(r *rand.Rand) []types.Value {
				return []types.Value{types.NewString(subjects[r.Intn(len(subjects))])}
			}},
		{"SELECT i_id FROM item WHERE i_price > ? AND i_price < ?",
			func(r *rand.Rand) []types.Value {
				lo := r.Float64() * 80
				return []types.Value{types.NewFloat(lo), types.NewFloat(lo + 30)}
			}},
		{"SELECT i_id, i_title FROM item WHERE i_title LIKE ?",
			func(r *rand.Rand) []types.Value {
				return []types.Value{types.NewString(fmt.Sprintf("%%%d%%", r.Intn(10)))}
			}},
		{"SELECT i_title, a_lname FROM item, author WHERE i_a_id = a_id AND i_subject = ?",
			func(r *rand.Rand) []types.Value {
				return []types.Value{types.NewString(subjects[r.Intn(len(subjects))])}
			}},
		{"SELECT i_id, i_title, a_lname FROM item, author WHERE i_a_id = a_id AND i_id = ?",
			func(r *rand.Rand) []types.Value { return []types.Value{types.NewInt(int64(r.Intn(120)))} }},
		// the i_id tie-break makes the Top-10 deterministic: with ties on
		// val alone, both engines would return different-but-valid cuts
		{`SELECT i_id, SUM(ol_qty) AS val FROM order_line, item
		  WHERE ol_i_id = i_id AND ol_o_id > ? GROUP BY i_id ORDER BY val DESC, i_id LIMIT 10`,
			func(r *rand.Rand) []types.Value { return []types.Value{types.NewInt(int64(r.Intn(50)))} }},
		{"SELECT i_subject, COUNT(*), AVG(i_price) FROM item WHERE i_price > ? GROUP BY i_subject",
			func(r *rand.Rand) []types.Value { return []types.Value{types.NewFloat(r.Float64() * 100)} }},
		{"SELECT i_id, i_price FROM item WHERE i_subject = ? ORDER BY i_price DESC LIMIT 5",
			func(r *rand.Rand) []types.Value {
				return []types.Value{types.NewString(subjects[r.Intn(len(subjects))])}
			}},
		{"SELECT DISTINCT i_subject FROM item WHERE i_price < ?",
			func(r *rand.Rand) []types.Value { return []types.Value{types.NewFloat(r.Float64() * 120)} }},
		// HAVING over DISTINCT aggregates (also through the sharded merge
		// in internal/shard's differential sweep)
		{"SELECT i_subject, COUNT(DISTINCT i_a_id) FROM item GROUP BY i_subject HAVING COUNT(DISTINCT i_a_id) > ?",
			func(r *rand.Rand) []types.Value { return []types.Value{types.NewInt(int64(r.Intn(25)))} }},
		{`SELECT i_subject, MAX(i_price) FROM item GROUP BY i_subject
		  HAVING COUNT(DISTINCT i_a_id) > ? ORDER BY i_subject`,
			func(r *rand.Rand) []types.Value { return []types.Value{types.NewInt(int64(r.Intn(25)))} }},
		{"SELECT COUNT(*) FROM orders WHERE o_c_id = ?",
			func(r *rand.Rand) []types.Value { return []types.Value{types.NewInt(int64(r.Intn(12)))} }},
		{"SELECT o_id, o_total FROM orders WHERE o_id = ?",
			func(r *rand.Rand) []types.Value { return []types.Value{types.NewInt(int64(r.Intn(60)))} }},
	}

	sharedStmts := make([]*plan.Statement, len(templates))
	qatStmts := make([]*baseline.Stmt, len(templates))
	for i, tpl := range templates {
		sharedStmts[i] = mustPrepare(t, shared, tpl.sql)
		var err error
		qatStmts[i], err = qat.Prepare(tpl.sql)
		if err != nil {
			t.Fatalf("baseline prepare %q: %v", tpl.sql, err)
		}
	}

	r := rand.New(rand.NewSource(2026))
	for round := 0; round < 15; round++ {
		// a burst of concurrent queries → they batch into few generations
		n := 1 + r.Intn(40)
		idxs := make([]int, n)
		params := make([][]types.Value, n)
		results := make([]*Result, n)
		for i := 0; i < n; i++ {
			idxs[i] = r.Intn(len(templates))
			params[i] = templates[idxs[i]].mkParam(r)
			results[i] = shared.Submit(sharedStmts[idxs[i]], params[i])
		}
		for i := 0; i < n; i++ {
			if err := results[i].Wait(); err != nil {
				t.Fatalf("round %d query %d (%s): %v", round, i, templates[idxs[i]].sql, err)
			}
			want, err := qatStmts[idxs[i]].Exec(params[i])
			if err != nil {
				t.Fatalf("baseline exec: %v", err)
			}
			if !sameRows(results[i].Rows, want.Rows) {
				t.Fatalf("round %d: result mismatch for %q params %v:\nshared (%d rows): %v\nbaseline (%d rows): %v",
					round, templates[idxs[i]].sql, params[i],
					len(results[i].Rows), canon(results[i].Rows),
					len(want.Rows), canon(want.Rows))
			}
		}
	}
}

// TestDifferentialOrderedQueries additionally checks row ORDER for queries
// with ORDER BY (multiset equality is not enough there).
func TestDifferentialOrderedQueries(t *testing.T) {
	db, closeDB := bookstore(t)
	defer closeDB()
	shared := newEngine(t, db)
	defer shared.Close()
	qat := baseline.New(db, baseline.SystemXLike)

	sqlText := "SELECT i_id, i_price FROM item WHERE i_subject = ? ORDER BY i_price DESC, i_id LIMIT 8"
	ss := mustPrepare(t, shared, sqlText)
	bs, err := qat.Prepare(sqlText)
	if err != nil {
		t.Fatal(err)
	}
	for _, subj := range []string{"ARTS", "SCIENCE", "HISTORY", "COOKING"} {
		got := run(t, shared, ss, types.NewString(subj))
		want, err := bs.Exec([]types.Value{types.NewString(subj)})
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Rows) != len(want.Rows) {
			t.Fatalf("%s: %d vs %d rows", subj, len(got.Rows), len(want.Rows))
		}
		for i := range got.Rows {
			// compare the sort key column: ties may order differently
			if got.Rows[i][1].AsFloat() != want.Rows[i][1].AsFloat() {
				t.Fatalf("%s row %d: shared %v, baseline %v", subj, i, got.Rows[i], want.Rows[i])
			}
		}
	}
}

// TestDifferentialProfilesAgree checks the two baseline profiles against
// each other (different join algorithms, same results).
func TestDifferentialProfilesAgree(t *testing.T) {
	db, closeDB := bookstore(t)
	defer closeDB()
	sx := baseline.New(db, baseline.SystemXLike)
	my := baseline.New(db, baseline.MySQLLike)

	queries := []struct {
		sql    string
		params []types.Value
	}{
		{"SELECT i_title, a_lname FROM item, author WHERE i_a_id = a_id AND i_subject = ?",
			[]types.Value{types.NewString("ARTS")}},
		{`SELECT i_id, SUM(ol_qty) AS v FROM order_line, item
		  WHERE ol_i_id = i_id GROUP BY i_id ORDER BY v DESC LIMIT 5`, nil},
	}
	for _, q := range queries {
		s1, err := sx.Prepare(q.sql)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := my.Prepare(q.sql)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := s1.Exec(q.params)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := s2.Exec(q.params)
		if err != nil {
			t.Fatal(err)
		}
		if !sameRows(r1.Rows, r2.Rows) {
			t.Errorf("profiles disagree on %q", q.sql)
		}
	}
}
