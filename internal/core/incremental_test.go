package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"shareddb/internal/plan"
	"shareddb/internal/types"
)

// Incremental shared state and standing queries: the differential suites
// here pin (a) Config.Validate's boundaries for the new knobs, (b) that the
// delta-maintained operator state returns exactly what the
// rebuild-every-generation path returns under interleaved write streams,
// and (c) that subscription delta streams compose to the same result a
// fresh per-generation query returns (the oracle).

// --- Validate boundaries ---

func TestValidateIncrementalConfig(t *testing.T) {
	valid := []Config{
		{IncrementalState: true},                            // 0 selects the default pipeline depth
		{IncrementalState: true, MaxInFlightGenerations: 1}, // the boundary
		{IncrementalState: true, MaxInFlightGenerations: 4},
		{SubscriptionBuffer: 0},
		{SubscriptionBuffer: 1},
		{IncrementalState: true, SubscriptionBuffer: 64},
	}
	for _, cfg := range valid {
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", cfg, err)
		}
	}
	invalid := []Config{
		{IncrementalState: true, MaxInFlightGenerations: -1},
		{SubscriptionBuffer: -1},
		{IncrementalState: true, SubscriptionBuffer: -5},
	}
	for _, cfg := range invalid {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", cfg)
		}
	}
}

// --- incremental vs rebuild differential sweep ---

// TestIncrementalDifferentialSweep runs the same randomized repeat-read
// workload with interleaved writes through two engines over identical data
// — one rebuilding operator state every generation, one maintaining it from
// write deltas — and requires identical per-query results. Reads repeat
// with stable parameters (the state-reuse condition) and the writes hit the
// join build side and every group-aggregate retraction path (SUM/COUNT/AVG
// subtract; MIN/MAX and COUNT(DISTINCT) rebuild per key).
func TestIncrementalDifferentialSweep(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			dbReb, closeReb := bookstore(t)
			defer closeReb()
			dbInc, closeInc := bookstore(t)
			defer closeInc()
			reb := New(dbReb, plan.New(dbReb), Config{Workers: workers})
			defer reb.Close()
			inc := New(dbInc, plan.New(dbInc), Config{Workers: workers, IncrementalState: true})
			defer inc.Close()
			engines := []*Engine{reb, inc}

			subjects := []string{"ARTS", "SCIENCE", "HISTORY", "COOKING"}
			reads := []struct {
				sql     string
				ordered bool
				mk      func(r *rand.Rand) []types.Value
			}{
				// Hash join with the item scan as build side (the per-query
				// predicate on the right keeps it off the index-join path).
				{"SELECT a_lname, i_title FROM author, item WHERE a_id = i_a_id AND i_price > ?", false,
					func(r *rand.Rand) []types.Value { return []types.Value{types.NewFloat(float64(r.Intn(90)))} }},
				// Subtractable aggregates.
				{"SELECT i_subject, COUNT(*), SUM(i_price), AVG(i_price) FROM item GROUP BY i_subject", false,
					func(*rand.Rand) []types.Value { return nil }},
				// Non-subtractable: per-key rebuild on retraction.
				{"SELECT i_subject, MIN(i_price), MAX(i_price) FROM item GROUP BY i_subject", false,
					func(*rand.Rand) []types.Value { return nil }},
				{"SELECT i_subject, COUNT(DISTINCT i_a_id) FROM item GROUP BY i_subject", false,
					func(*rand.Rand) []types.Value { return nil }},
				// Ordered with a full tie-break: row order must match too.
				{"SELECT i_id, i_price FROM item WHERE i_subject = ? ORDER BY i_price DESC, i_id LIMIT 8", true,
					func(r *rand.Rand) []types.Value {
						return []types.Value{types.NewString(subjects[r.Intn(len(subjects))])}
					}},
				// Plain shared scan (no stateful operator: the no-binding path).
				{"SELECT i_id, i_title FROM item WHERE i_subject = ?", false,
					func(r *rand.Rand) []types.Value {
						return []types.Value{types.NewString(subjects[r.Intn(len(subjects))])}
					}},
			}
			writes := []struct {
				sql string
				mk  func(r *rand.Rand, nextID *int64) []types.Value
			}{
				{"INSERT INTO item VALUES (?, ?, ?, ?, ?)",
					func(r *rand.Rand, nextID *int64) []types.Value {
						id := *nextID
						*nextID++
						return []types.Value{types.NewInt(id),
							types.NewString(fmt.Sprintf("New %03d", id)),
							types.NewInt(int64(r.Intn(20))),
							types.NewString(subjects[r.Intn(len(subjects))]),
							types.NewFloat(float64(r.Intn(10000)) / 100)}
					}},
				{"UPDATE item SET i_price = ? WHERE i_id = ?",
					func(r *rand.Rand, _ *int64) []types.Value {
						return []types.Value{types.NewFloat(float64(r.Intn(10000)) / 100),
							types.NewInt(int64(r.Intn(100)))}
					}},
				{"UPDATE item SET i_subject = ? WHERE i_id = ?",
					func(r *rand.Rand, _ *int64) []types.Value {
						return []types.Value{types.NewString(subjects[r.Intn(len(subjects))]),
							types.NewInt(int64(r.Intn(100)))}
					}},
				{"DELETE FROM item WHERE i_id = ?",
					func(r *rand.Rand, _ *int64) []types.Value {
						return []types.Value{types.NewInt(int64(r.Intn(100)))}
					}},
				{"INSERT INTO author VALUES (?, ?)",
					func(r *rand.Rand, nextID *int64) []types.Value {
						id := *nextID
						*nextID++
						return []types.Value{types.NewInt(id), types.NewString(fmt.Sprintf("Auth%03d", id))}
					}},
			}

			readStmts := make([][]*plan.Statement, len(engines))
			writeStmts := make([][]*plan.Statement, len(engines))
			for ei, e := range engines {
				for _, tpl := range reads {
					readStmts[ei] = append(readStmts[ei], mustPrepare(t, e, tpl.sql))
				}
				for _, tpl := range writes {
					writeStmts[ei] = append(writeStmts[ei], mustPrepare(t, e, tpl.sql))
				}
			}

			r := rand.New(rand.NewSource(int64(20260807 + workers)))
			nextID := int64(1000)
			doWrite := func() {
				wi := r.Intn(len(writes))
				params := writes[wi].mk(r, &nextID)
				for ei, e := range engines {
					res := e.Submit(writeStmts[ei][wi], params)
					if err := res.Wait(); err != nil {
						t.Fatalf("write %q on engine %d: %v", writes[wi].sql, ei, err)
					}
				}
			}
			for round := 0; round < 30; round++ {
				if r.Intn(2) == 0 {
					doWrite()
				}
				ti := r.Intn(len(reads))
				params := reads[ti].mk(r)
				// Repeats with identical parameters are where state reuse
				// engages; a write in the middle forces a delta application.
				repeats := 1 + r.Intn(3)
				for j := 0; j < repeats; j++ {
					if j > 0 && r.Intn(3) == 0 {
						doWrite()
					}
					got := run(t, inc, readStmts[1][ti], params...)
					want := run(t, reb, readStmts[0][ti], params...)
					if !sameRows(got.Rows, want.Rows) {
						t.Fatalf("round %d repeat %d: %q params %v:\nincremental (%d): %v\nrebuild (%d): %v",
							round, j, reads[ti].sql, params,
							len(got.Rows), canon(got.Rows), len(want.Rows), canon(want.Rows))
					}
					if reads[ti].ordered {
						for i := range got.Rows {
							if types.EncodeKey(got.Rows[i]...) != types.EncodeKey(want.Rows[i]...) {
								t.Fatalf("round %d: ordered row %d differs: %v vs %v",
									round, i, got.Rows[i], want.Rows[i])
							}
						}
					}
				}
			}
		})
	}
}

// --- subscription delta stream vs per-generation oracle ---

// applyUpdate folds one delivered update into the subscriber's tracked
// result, failing the test if a removal names a row the tracked state does
// not hold (a delta that could not have been produced by the real result).
func applyUpdate(t *testing.T, tracked []types.Row, u SubscriptionUpdate) []types.Row {
	t.Helper()
	if u.Full {
		return append([]types.Row{}, u.Rows...)
	}
	for _, rm := range u.Removed {
		k := types.EncodeKey(rm...)
		found := -1
		for i, row := range tracked {
			if types.EncodeKey(row...) == k {
				found = i
				break
			}
		}
		if found < 0 {
			t.Fatalf("delta removes row %v not present in tracked state", rm)
		}
		tracked = append(tracked[:found], tracked[found+1:]...)
	}
	return append(tracked, u.Added...)
}

// awaitState consumes updates until the tracked result equals want.
func awaitState(t *testing.T, sub *Subscription, tracked []types.Row, want []types.Row) []types.Row {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for !sameRows(tracked, want) {
		select {
		case u, ok := <-sub.Updates():
			if !ok {
				t.Fatalf("subscription closed while waiting for state: tracked %v want %v",
					canon(tracked), canon(want))
			}
			tracked = applyUpdate(t, tracked, u)
		case <-deadline:
			t.Fatalf("timed out converging subscription state:\ntracked (%d): %v\nwant (%d): %v",
				len(tracked), canon(tracked), len(want), canon(want))
		}
	}
	return tracked
}

// TestSubscriptionDeltasMatchOracle registers standing queries, drives a
// random write stream, and after every write checks that the subscription's
// delta stream converges the tracked result to exactly what a fresh query
// of the same statement returns — with incremental state off and on.
func TestSubscriptionDeltasMatchOracle(t *testing.T) {
	for _, incOn := range []bool{false, true} {
		t.Run(fmt.Sprintf("incremental=%v", incOn), func(t *testing.T) {
			db, closeDB := bookstore(t)
			defer closeDB()
			e := New(db, plan.New(db), Config{IncrementalState: incOn})
			defer e.Close()

			stmts := []struct {
				sql    string
				params []types.Value
			}{
				{"SELECT i_id, i_title, i_price FROM item WHERE i_subject = ?",
					[]types.Value{types.NewString("ARTS")}},
				{"SELECT a_lname, i_title FROM author, item WHERE a_id = i_a_id AND i_price > ?",
					[]types.Value{types.NewFloat(40)}},
				{"SELECT i_subject, COUNT(*), SUM(i_price) FROM item GROUP BY i_subject", nil},
			}
			subs := make([]*Subscription, len(stmts))
			readBack := make([]*plan.Statement, len(stmts))
			tracked := make([][]types.Row, len(stmts))
			for i, sp := range stmts {
				st := mustPrepare(t, e, sp.sql)
				readBack[i] = st
				sub, err := e.Subscribe(st, sp.params)
				if err != nil {
					t.Fatalf("Subscribe(%q): %v", sp.sql, err)
				}
				subs[i] = sub
			}
			// Initial delivery: a Full at some generation's snapshot.
			for i, sub := range subs {
				select {
				case u := <-sub.Updates():
					if !u.Full {
						t.Fatalf("sub %d: first delivery not Full: %+v", i, u)
					}
					tracked[i] = applyUpdate(t, nil, u)
				case <-time.After(10 * time.Second):
					t.Fatalf("sub %d: no initial full result", i)
				}
				want := run(t, e, readBack[i], stmts[i].params...)
				if !sameRows(tracked[i], want.Rows) {
					t.Fatalf("sub %d initial full mismatch: %v vs %v",
						i, canon(tracked[i]), canon(want.Rows))
				}
			}

			ins := mustPrepare(t, e, "INSERT INTO item VALUES (?, ?, ?, ?, ?)")
			upd := mustPrepare(t, e, "UPDATE item SET i_price = ? WHERE i_id = ?")
			del := mustPrepare(t, e, "DELETE FROM item WHERE i_id = ?")
			subjects := []string{"ARTS", "SCIENCE", "HISTORY", "COOKING"}
			r := rand.New(rand.NewSource(11))
			nextID := int64(500)
			for round := 0; round < 25; round++ {
				var res *Result
				switch r.Intn(3) {
				case 0:
					res = e.Submit(ins, []types.Value{types.NewInt(nextID),
						types.NewString(fmt.Sprintf("Sub %03d", nextID)),
						types.NewInt(int64(r.Intn(20))),
						types.NewString(subjects[r.Intn(len(subjects))]),
						types.NewFloat(float64(r.Intn(9000)) / 100)})
					nextID++
				case 1:
					res = e.Submit(upd, []types.Value{
						types.NewFloat(float64(r.Intn(9000)) / 100),
						types.NewInt(int64(r.Intn(100)))})
				default:
					res = e.Submit(del, []types.Value{types.NewInt(int64(r.Intn(100)))})
				}
				if err := res.Wait(); err != nil {
					t.Fatalf("round %d write: %v", round, err)
				}
				for i := range subs {
					want := run(t, e, readBack[i], stmts[i].params...)
					tracked[i] = awaitState(t, subs[i], tracked[i], want.Rows)
				}
			}

			st := e.Stats()
			if st.SubscriptionsActive != len(subs) {
				t.Errorf("SubscriptionsActive = %d, want %d", st.SubscriptionsActive, len(subs))
			}
			if st.SubscriptionUpdates == 0 {
				t.Error("SubscriptionUpdates = 0 after a delivered stream")
			}
			// Close detaches: the channel closes, the engine stops counting it,
			// and later generations proceed unperturbed.
			subs[0].Close()
			if _, ok := <-subs[0].Updates(); ok {
				// Drain anything buffered before the close; the channel must
				// eventually report closed.
				for range subs[0].Updates() {
				}
			}
			if got := e.Stats().SubscriptionsActive; got != len(subs)-1 {
				t.Errorf("SubscriptionsActive after Close = %d, want %d", got, len(subs)-1)
			}
			// A read after detach still runs fine.
			_ = run(t, e, readBack[2], stmts[2].params...)
		})
	}
}

// TestSubscriptionLagResync fills a tiny subscription buffer without
// draining it: the subscription must mark itself lagged and, once the
// subscriber drains, deliver a Full resync whose rows equal a fresh query.
func TestSubscriptionLagResync(t *testing.T) {
	db, closeDB := bookstore(t)
	defer closeDB()
	e := New(db, plan.New(db), Config{SubscriptionBuffer: 1, IncrementalState: true})
	defer e.Close()

	st := mustPrepare(t, e, "SELECT i_id, i_price FROM item WHERE i_subject = ?")
	params := []types.Value{types.NewString("ARTS")}
	sub, err := e.Subscribe(st, params)
	if err != nil {
		t.Fatal(err)
	}
	upd := mustPrepare(t, e, "UPDATE item SET i_price = ? WHERE i_id = ?")
	// Do not drain: the 1-slot buffer holds the initial full result, so
	// every write generation's delivery (each write changes an ARTS row —
	// ids 0,4,8,12 all carry the ARTS subject) is dropped and marks the gap.
	for i := 0; i < 8; i++ {
		res := e.Submit(upd, []types.Value{types.NewFloat(float64(200 + i)), types.NewInt(int64(4 * (i % 4)))})
		if err := res.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for !sub.Lagged() {
		if time.Now().After(deadline) {
			t.Fatal("subscription never marked lagged with a full buffer")
		}
		time.Sleep(time.Millisecond)
	}

	// Recovery: the buffered update is the pre-gap initial full; the first
	// delivery to land after it must be a full resync, never a delta that
	// spans the gap.
	var first SubscriptionUpdate
	select {
	case first = <-sub.Updates():
	case <-time.After(10 * time.Second):
		t.Fatal("buffered initial delivery missing")
	}
	if !first.Full {
		t.Fatalf("pre-gap buffered delivery not full: %+v", first)
	}
	var resync SubscriptionUpdate
	select {
	case resync = <-sub.Updates():
	case <-time.After(time.Second):
		// Every write generation already delivered (and dropped) before the
		// drain: force one more generation to carry the resync.
		res := e.Submit(upd, []types.Value{types.NewFloat(999), types.NewInt(0)})
		if err := res.Wait(); err != nil {
			t.Fatal(err)
		}
		select {
		case resync = <-sub.Updates():
		case <-time.After(10 * time.Second):
			t.Fatal("no delivery after the gap")
		}
	}
	if !resync.Full {
		t.Fatalf("first post-gap delivery not a full resync: %+v", resync)
	}
	// Converge onto the live result. Deliveries for generations that ran
	// between the resync's snapshot and now may have been dropped into the
	// refilled 1-slot buffer (marking a fresh gap), so nudge generations
	// until the stream catches up — each nudge's delivery lands now that
	// the subscriber is draining, as a full resync whenever a gap reopened.
	tracked := append([]types.Row{}, resync.Rows...)
	nudge := 300.0
	convergeBy := time.Now().Add(15 * time.Second)
	for {
		want := run(t, e, st, params...)
		if sameRows(tracked, want.Rows) {
			break
		}
		if time.Now().After(convergeBy) {
			t.Fatalf("subscription never converged after lag:\ntracked: %v\nwant: %v",
				canon(tracked), canon(want.Rows))
		}
		res := e.Submit(upd, []types.Value{types.NewFloat(nudge), types.NewInt(0)})
		nudge++
		if err := res.Wait(); err != nil {
			t.Fatal(err)
		}
		settle := time.After(500 * time.Millisecond)
	drain:
		for {
			select {
			case u, ok := <-sub.Updates():
				if !ok {
					t.Fatal("subscription closed while converging")
				}
				tracked = applyUpdate(t, tracked, u)
			case <-settle:
				break drain
			}
		}
	}
	sub.Close()
}

// TestSubscribeRejectsWrites pins the API contract.
func TestSubscribeRejectsWrites(t *testing.T) {
	db, closeDB := bookstore(t)
	defer closeDB()
	e := newEngine(t, db)
	defer e.Close()
	w := mustPrepare(t, e, "DELETE FROM item WHERE i_id = ?")
	if _, err := e.Subscribe(w, []types.Value{types.NewInt(1)}); err == nil {
		t.Fatal("Subscribe on a write statement must error")
	}
	if _, err := e.Subscribe(nil, nil); err == nil {
		t.Fatal("Subscribe(nil) must error")
	}
}
