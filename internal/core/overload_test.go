package core

// Overload stress: the CI `overload` job runs these under -race with a test
// timeout — an unbounded queue, a lost wakeup or a deadlock in the
// admission path surfaces as a hang (killed by -timeout) or an assertion
// failure here.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"shareddb/internal/plan"
	"shareddb/internal/storage"
	"shareddb/internal/types"
)

// bigTable loads a single wide table with n rows, big enough that one
// scan+sort generation reliably exceeds the minimum 1ms SLO.
func bigTable(t testing.TB, n int) (*storage.Database, func()) {
	t.Helper()
	db, err := storage.Open(storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := db.CreateTable("big", types.NewSchema(
		types.Column{Qualifier: "big", Name: "b_id", Kind: types.KindInt},
		types.Column{Qualifier: "big", Name: "b_val", Kind: types.KindInt},
		types.Column{Qualifier: "big", Name: "b_pad", Kind: types.KindString},
	))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.SetPrimaryKey("b_id"); err != nil {
		t.Fatal(err)
	}
	ops := make([]storage.WriteOp, n)
	for i := 0; i < n; i++ {
		ops[i] = storage.WriteOp{Table: "big", Kind: storage.WInsert, Row: types.Row{
			types.NewInt(int64(i)),
			types.NewInt(int64((i * 7919) % 104729)),
			types.NewString(fmt.Sprintf("xpad-%06d", i)),
		}}
	}
	results, _ := db.ApplyOps(ops)
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	return db, func() { db.Close() }
}

// TestOverloadStressBoundedQueue hammers a queue-capped engine from twice
// as many clients as the cap allows and checks the admission contract:
// every submission either completes correctly or is rejected with a typed
// ErrOverloaded, the queue depth never exceeds the cap, some work is
// rejected AND some admitted, and the engine still serves cleanly after
// the storm.
func TestOverloadStressBoundedQueue(t *testing.T) {
	db, closeDB := bookstore(t)
	defer closeDB()
	const queueCap = 16
	e := New(db, plan.New(db), Config{
		QueueDepthLimit:        queueCap,
		StatementQuota:         8,
		MaxGenerationDelay:     5 * time.Millisecond,
		MaxInFlightGenerations: 1,
		Heartbeat:              500 * time.Microsecond,
	})
	defer e.Close()
	s := mustPrepare(t, e, "SELECT i_id, i_title FROM item WHERE i_subject = ?")
	subjects := []string{"ARTS", "SCIENCE", "HISTORY", "COOKING"}

	// Depth sampler: QueueDepthLimit is an invariant, not a trend — any
	// sample above the cap is an unbounded-queue regression.
	stopSampler := make(chan struct{})
	var samplerWG sync.WaitGroup
	var depthViolation atomic.Int64
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		for {
			select {
			case <-stopSampler:
				return
			default:
			}
			if d := e.AdmissionStats().QueueDepth; d > queueCap {
				depthViolation.Store(int64(d))
				return
			}
		}
	}()

	const clients, iters = 32, 60
	var admitted, rejected atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				subj := subjects[(c+i)%len(subjects)]
				res := e.Submit(s, []types.Value{types.NewString(subj)})
				err := res.Wait()
				switch {
				case err == nil:
					// 25 items per subject in the bookstore fixture.
					if len(res.Rows) != 25 {
						t.Errorf("admitted query returned %d rows, want 25", len(res.Rows))
						return
					}
					admitted.Add(1)
				case errors.Is(err, ErrOverloaded):
					var oe *OverloadError
					if !errors.As(err, &oe) || oe.RetryAfter <= 0 {
						t.Errorf("rejection must be a typed *OverloadError with a retry hint, got %v", err)
						return
					}
					rejected.Add(1)
				default:
					t.Errorf("unexpected error under overload: %v", err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(stopSampler)
	samplerWG.Wait()

	if d := depthViolation.Load(); d != 0 {
		t.Fatalf("queue depth %d observed above the %d cap — unbounded queue", d, queueCap)
	}
	if total := admitted.Load() + rejected.Load(); total != clients*iters {
		t.Fatalf("accounting: admitted %d + rejected %d != offered %d",
			admitted.Load(), rejected.Load(), clients*iters)
	}
	if admitted.Load() == 0 {
		t.Fatal("overload must still admit work (the queue was never empty-able)")
	}
	if rejected.Load() == 0 {
		t.Fatalf("%d clients against a %d-deep queue must reject some work", clients, queueCap)
	}
	stats := e.AdmissionStats()
	if stats.Rejected != uint64(rejected.Load()) {
		t.Fatalf("engine counted %d rejections, clients saw %d", stats.Rejected, rejected.Load())
	}

	// The storm is over: the engine must serve a fresh query without
	// residual backpressure (retry a few times while the tail drains).
	deadline := time.Now().Add(2 * time.Second)
	for {
		err := e.Submit(s, []types.Value{types.NewString("ARTS")}).Wait()
		if err == nil {
			break
		}
		if !errors.Is(err, ErrOverloaded) || time.Now().After(deadline) {
			t.Fatalf("engine did not recover after overload: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOverloadRejectionIsImmediate pins the reject path's latency property:
// with the queue at its cap, rejection happens at Submit time (the Result
// completes without waiting for a generation).
func TestOverloadRejectionIsImmediate(t *testing.T) {
	db, closeDB := bookstore(t)
	defer closeDB()
	// A long heartbeat holds dispatch so the queue stays full while we
	// probe the reject path.
	e := New(db, plan.New(db), Config{
		QueueDepthLimit: 2,
		Heartbeat:       time.Second,
	})
	defer e.Close()
	s := mustPrepare(t, e, "SELECT i_id FROM item WHERE i_id = ?")

	// First submission dispatches immediately (heartbeat elapsed at start);
	// wait it out so the next submissions land in the 1s heartbeat window.
	if err := e.Submit(s, []types.Value{types.NewInt(1)}).Wait(); err != nil {
		t.Fatal(err)
	}
	var queued []*Result
	for i := 0; i < 2; i++ {
		queued = append(queued, e.Submit(s, []types.Value{types.NewInt(int64(i))}))
	}
	res := e.Submit(s, []types.Value{types.NewInt(9)})
	select {
	case <-res.Done():
		if !errors.Is(res.Err, ErrOverloaded) {
			t.Fatalf("over-cap submission got %v, want ErrOverloaded", res.Err)
		}
	case <-time.After(200 * time.Millisecond):
		t.Fatal("rejection must complete immediately, not wait for a generation")
	}
	for _, q := range queued {
		if err := q.Wait(); err != nil {
			t.Fatalf("queued request failed: %v", err)
		}
	}
}

// TestOverloadStatementQuotaSpreadsGenerations checks shedding end to end:
// a burst of one statement above its quota completes across multiple
// generations — nothing is rejected, every client gets its rows, and the
// shed counter records the deferrals.
func TestOverloadStatementQuotaSpreadsGenerations(t *testing.T) {
	db, closeDB := bookstore(t)
	defer closeDB()
	e := New(db, plan.New(db), Config{
		StatementQuota: 4,
		Heartbeat:      20 * time.Millisecond,
	})
	defer e.Close()
	s := mustPrepare(t, e, "SELECT i_id FROM item WHERE i_subject = ?")

	// Land one generation first so the burst below queues into one window.
	if err := e.Submit(s, []types.Value{types.NewString("ARTS")}).Wait(); err != nil {
		t.Fatal(err)
	}
	gensBefore := e.Stats().Generations
	const burst = 10
	results := make([]*Result, burst)
	for i := range results {
		results[i] = e.Submit(s, []types.Value{types.NewString("ARTS")})
	}
	for i, r := range results {
		if err := r.Wait(); err != nil {
			t.Fatalf("burst query %d: %v (quota must shed, never reject)", i, err)
		}
		if len(r.Rows) != 25 {
			t.Fatalf("burst query %d: %d rows, want 25", i, len(r.Rows))
		}
	}
	gensAfter := e.Stats().Generations
	if gens := gensAfter - gensBefore; gens < 3 {
		t.Fatalf("a %d-burst over quota 4 needs >= 3 generations, got %d", burst, gens)
	}
	if shed := e.AdmissionStats().Shed; shed == 0 {
		t.Fatal("quota deferrals must count as shed")
	}
}
