package core

// Columnar-aggregation differential fuzz: the GroupOp pushdown (feeding
// grouped/DISTINCT/Top-N statements straight from the columnar mirror,
// bypassing the scan stream) must be bit-identical to the row path — same
// values, not just float-close — under random schemas, interleaved write
// deltas and both serial and parallel cycles. Two engines share one storage
// database: one scans rows, one scans columns; every burst is submitted to
// both and compared via types.EncodeKey (exact value encoding).

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"shareddb/internal/expr"
	"shareddb/internal/operators"
	"shareddb/internal/plan"
	"shareddb/internal/storage"
	"shareddb/internal/types"
)

// colaggTable builds a one-table analytics schema with randomized group-key
// domains and row count: m_id (PK), m_g int key, m_tag string key, m_v int
// measure, m_w float measure. Returns the next unused PK for delta inserts.
func colaggTable(t *testing.T, r *rand.Rand) (*storage.Database, func(), *colaggDomains) {
	t.Helper()
	db, err := storage.Open(storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := db.CreateTable("m", types.NewSchema(
		types.Column{Qualifier: "m", Name: "m_id", Kind: types.KindInt},
		types.Column{Qualifier: "m", Name: "m_g", Kind: types.KindInt},
		types.Column{Qualifier: "m", Name: "m_tag", Kind: types.KindString},
		types.Column{Qualifier: "m", Name: "m_v", Kind: types.KindInt},
		types.Column{Qualifier: "m", Name: "m_w", Kind: types.KindFloat},
	))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.SetPrimaryKey("m_id"); err != nil {
		t.Fatal(err)
	}
	dom := &colaggDomains{
		gInt: 2 + r.Intn(20),
		gStr: 2 + r.Intn(8),
		vMax: 50 + r.Intn(500),
	}
	n := 200 + r.Intn(1000)
	ops := make([]storage.WriteOp, n)
	for i := 0; i < n; i++ {
		ops[i] = storage.WriteOp{Table: "m", Kind: storage.WInsert, Row: dom.row(int64(i), r)}
	}
	results, _ := db.ApplyOps(ops)
	for _, res := range results {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	dom.nextID = int64(n)
	return db, func() { db.Close() }, dom
}

type colaggDomains struct {
	gInt, gStr, vMax int
	nextID           int64
}

func (d *colaggDomains) row(id int64, r *rand.Rand) types.Row {
	return types.Row{
		types.NewInt(id),
		types.NewInt(int64(r.Intn(d.gInt))),
		types.NewString(fmt.Sprintf("tag-%d", r.Intn(d.gStr))),
		types.NewInt(int64(r.Intn(d.vMax))),
		types.NewFloat(r.Float64() * float64(d.vMax)),
	}
}

// delta applies 1..24 random writes (inserts of fresh PKs, measure updates
// and PK-range deletes) directly through the storage write path, exercising
// the columnar mirror's delta maintenance between generations.
func (d *colaggDomains) delta(t *testing.T, db *storage.Database, r *rand.Rand) {
	t.Helper()
	n := 1 + r.Intn(24)
	ops := make([]storage.WriteOp, 0, n)
	for i := 0; i < n; i++ {
		switch r.Intn(4) {
		case 0, 1: // insert
			ops = append(ops, storage.WriteOp{Table: "m", Kind: storage.WInsert, Row: d.row(d.nextID, r)})
			d.nextID++
		case 2: // bump a group's int measure
			ops = append(ops, storage.WriteOp{Table: "m", Kind: storage.WUpdate,
				Pred: &expr.Cmp{Op: expr.EQ, L: &expr.ColRef{Idx: 1},
					R: &expr.Const{Val: types.NewInt(int64(r.Intn(d.gInt)))}},
				Set: []storage.ColSet{{Col: 3, Val: &expr.Const{Val: types.NewInt(int64(r.Intn(d.vMax)))}}},
			})
		default: // delete a thin PK slice
			lo := r.Int63n(d.nextID)
			ops = append(ops, storage.WriteOp{Table: "m", Kind: storage.WDelete,
				Pred: &expr.And{Kids: []expr.Expr{
					&expr.Cmp{Op: expr.GE, L: &expr.ColRef{Idx: 0}, R: &expr.Const{Val: types.NewInt(lo)}},
					&expr.Cmp{Op: expr.LT, L: &expr.ColRef{Idx: 0}, R: &expr.Const{Val: types.NewInt(lo + 3)}},
				}},
			})
		}
	}
	results, _ := db.ApplyOps(ops)
	for _, res := range results {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
}

// encodeRows renders rows through the exact value encoding — any value
// difference (including float bits) between the row and columnar paths
// shows up as a string mismatch.
func encodeRows(rows []types.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = types.EncodeKey(r...)
	}
	return out
}

func TestColumnarAggDifferentialFuzz(t *testing.T) {
	defer operators.DisableAdaptiveWorkersForTest()()

	type template struct {
		sql     string
		ordered bool
		mkParam func(r *rand.Rand, d *colaggDomains) []types.Value
	}
	templates := []template{
		{"SELECT m_g, COUNT(*), SUM(m_v) FROM m WHERE m_v > ? GROUP BY m_g", false,
			func(r *rand.Rand, d *colaggDomains) []types.Value {
				return []types.Value{types.NewInt(int64(r.Intn(d.vMax)))}
			}},
		{"SELECT m_tag, COUNT(DISTINCT m_g), AVG(m_w) FROM m GROUP BY m_tag", false, nil},
		// m_g tiebreak pins the Top-N cut; this is the bounded-heap path.
		{"SELECT m_g, SUM(m_w) AS s FROM m WHERE m_w < ? GROUP BY m_g ORDER BY s DESC, m_g LIMIT 3", true,
			func(r *rand.Rand, d *colaggDomains) []types.Value {
				return []types.Value{types.NewFloat(r.Float64() * float64(d.vMax))}
			}},
		{"SELECT m_tag, MAX(m_v) FROM m GROUP BY m_tag HAVING COUNT(*) > ?", false,
			func(r *rand.Rand, d *colaggDomains) []types.Value {
				return []types.Value{types.NewInt(int64(r.Intn(40)))}
			}},
		{"SELECT COUNT(*), SUM(m_v) FROM m WHERE m_g = ?", false,
			func(r *rand.Rand, d *colaggDomains) []types.Value {
				return []types.Value{types.NewInt(int64(r.Intn(d.gInt)))}
			}},
		{"SELECT MIN(m_w), MAX(m_w), COUNT(*) FROM m", false, nil},
	}

	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(90 + workers)))
			db, closeDB, dom := colaggTable(t, r)
			defer closeDB()
			rowEng := New(db, plan.New(db), Config{Workers: workers})
			defer rowEng.Close()
			colEng := New(db, plan.New(db), Config{Workers: workers, ColumnarScan: true})
			defer colEng.Close()

			rowStmts := make([]*plan.Statement, len(templates))
			colStmts := make([]*plan.Statement, len(templates))
			for i, tpl := range templates {
				rowStmts[i] = mustPrepare(t, rowEng, tpl.sql)
				colStmts[i] = mustPrepare(t, colEng, tpl.sql)
			}

			for round := 0; round < 4; round++ {
				if round > 0 {
					// Writes land before any submission below, so both
					// engines' generations read the same snapshot.
					dom.delta(t, db, r)
				}
				n := 8 + r.Intn(24)
				idxs := make([]int, n)
				params := make([][]types.Value, n)
				rowRes := make([]*Result, n)
				colRes := make([]*Result, n)
				for i := 0; i < n; i++ {
					idxs[i] = r.Intn(len(templates))
					if mk := templates[idxs[i]].mkParam; mk != nil {
						params[i] = mk(r, dom)
					}
					rowRes[i] = rowEng.Submit(rowStmts[idxs[i]], params[i])
					colRes[i] = colEng.Submit(colStmts[idxs[i]], params[i])
				}
				for i := 0; i < n; i++ {
					tpl := templates[idxs[i]]
					if err := rowRes[i].Wait(); err != nil {
						t.Fatalf("round %d row-path %q: %v", round, tpl.sql, err)
					}
					if err := colRes[i].Wait(); err != nil {
						t.Fatalf("round %d columnar %q: %v", round, tpl.sql, err)
					}
					got := encodeRows(colRes[i].Rows)
					want := encodeRows(rowRes[i].Rows)
					if !tpl.ordered {
						// Group emission order is not part of the contract;
						// the encoded values are compared exactly.
						sort.Strings(got)
						sort.Strings(want)
					}
					if len(got) != len(want) {
						t.Fatalf("round %d %q params %v: columnar %d rows, row path %d rows",
							round, tpl.sql, params[i], len(got), len(want))
					}
					for j := range got {
						if got[j] != want[j] {
							t.Fatalf("round %d %q params %v row %d:\ncolumnar: %q\nrow path: %q",
								round, tpl.sql, params[i], j, got[j], want[j])
						}
					}
				}
			}
			if colEng.Plan().ColAggCycles() == 0 {
				t.Fatal("columnar engine never ran an aggregation-pushdown cycle — the fuzz exercised nothing")
			}
		})
	}
}

// TestBreakerSparesLightStatement pins the cost-attribution contract end to
// end: a cheap point query co-batched with a statement that blows the
// generation SLO must never be struck — attribution blames the statement
// that burned the cycles, and a below-average share is positive evidence of
// innocence (its breaker entry is reset, not advanced).
func TestBreakerSparesLightStatement(t *testing.T) {
	db, closeDB := bigTable(t, 6000)
	defer closeDB()
	const (
		heavySQL = "SELECT b_id FROM big WHERE b_pad LIKE '%x%' ORDER BY b_val"
		lightSQL = "SELECT b_val FROM big WHERE b_id = ?"
	)
	e := New(db, plan.New(db), Config{
		MaxGenerationDelay:     2 * time.Millisecond,
		BreakerStrikes:         2,
		BreakerCooldown:        time.Minute, // no half-open probes during the test
		MaxInFlightGenerations: 1,
		Heartbeat:              500 * time.Microsecond,
	})
	defer e.Close()
	heavy := mustPrepare(t, e, heavySQL)
	light := mustPrepare(t, e, lightSQL)

	for round := 0; round < 8; round++ {
		// A plug occupies the single in-flight generation slot so the next
		// two submissions queue up and co-batch into one generation.
		plug := e.Submit(heavy, nil)
		h := e.Submit(heavy, nil)
		l := e.Submit(light, []types.Value{types.NewInt(int64(round))})
		plug.Wait() // heavy is allowed (expected, eventually) to be rejected
		h.Wait()
		if err := l.Wait(); err != nil {
			t.Fatalf("round %d: light statement rejected: %v", round, err)
		}
	}

	if trips := e.AdmissionStats().BreakerTrips; trips == 0 {
		t.Fatal("the heavy statement never tripped the breaker — the fixture is not slow enough to test blame")
	}
	if err := e.AdmitStatement(heavySQL); err == nil {
		t.Fatal("heavy statement must be quarantined after repeated blown generations")
	}
	if err := e.AdmitStatement(lightSQL); err != nil {
		t.Fatalf("light statement must stay admitted, got %v", err)
	}
}
