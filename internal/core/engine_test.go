package core

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"

	"shareddb/internal/plan"
	"shareddb/internal/storage"
	"shareddb/internal/types"
)

// bookstore is a miniature of the TPC-W schema used across the engine tests.
func bookstore(t testing.TB) (*storage.Database, func()) {
	t.Helper()
	db, err := storage.Open(storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string, cols ...types.Column) *storage.Table {
		tab, err := db.CreateTable(name, types.NewSchema(cols...))
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	item := mk("item",
		types.Column{Qualifier: "item", Name: "i_id", Kind: types.KindInt},
		types.Column{Qualifier: "item", Name: "i_title", Kind: types.KindString},
		types.Column{Qualifier: "item", Name: "i_a_id", Kind: types.KindInt},
		types.Column{Qualifier: "item", Name: "i_subject", Kind: types.KindString},
		types.Column{Qualifier: "item", Name: "i_price", Kind: types.KindFloat},
	)
	item.SetPrimaryKey("i_id")
	item.AddIndex("item_subject", false, "i_subject")
	author := mk("author",
		types.Column{Qualifier: "author", Name: "a_id", Kind: types.KindInt},
		types.Column{Qualifier: "author", Name: "a_lname", Kind: types.KindString},
	)
	author.SetPrimaryKey("a_id")
	orders := mk("orders",
		types.Column{Qualifier: "orders", Name: "o_id", Kind: types.KindInt},
		types.Column{Qualifier: "orders", Name: "o_c_id", Kind: types.KindInt},
		types.Column{Qualifier: "orders", Name: "o_total", Kind: types.KindFloat},
	)
	orders.SetPrimaryKey("o_id")
	ol := mk("order_line",
		types.Column{Qualifier: "order_line", Name: "ol_id", Kind: types.KindInt},
		types.Column{Qualifier: "order_line", Name: "ol_o_id", Kind: types.KindInt},
		types.Column{Qualifier: "order_line", Name: "ol_i_id", Kind: types.KindInt},
		types.Column{Qualifier: "order_line", Name: "ol_qty", Kind: types.KindInt},
	)
	ol.SetPrimaryKey("ol_id")
	ol.AddIndex("ol_o", false, "ol_o_id")

	subjects := []string{"ARTS", "SCIENCE", "HISTORY", "COOKING"}
	var ops []storage.WriteOp
	for i := int64(0); i < 20; i++ {
		ops = append(ops, storage.WriteOp{Table: "author", Kind: storage.WInsert,
			Row: types.Row{types.NewInt(i), types.NewString(fmt.Sprintf("Author%02d", i))}})
	}
	for i := int64(0); i < 100; i++ {
		ops = append(ops, storage.WriteOp{Table: "item", Kind: storage.WInsert,
			Row: types.Row{
				types.NewInt(i),
				types.NewString(fmt.Sprintf("Title %03d", i)),
				types.NewInt(i % 20),
				types.NewString(subjects[i%4]),
				types.NewFloat(float64(100-i) + 0.5),
			}})
	}
	for o := int64(0); o < 50; o++ {
		ops = append(ops, storage.WriteOp{Table: "orders", Kind: storage.WInsert,
			Row: types.Row{types.NewInt(o), types.NewInt(o % 10), types.NewFloat(float64(o) * 2)}})
		for l := int64(0); l < 3; l++ {
			ops = append(ops, storage.WriteOp{Table: "order_line", Kind: storage.WInsert,
				Row: types.Row{types.NewInt(o*3 + l), types.NewInt(o), types.NewInt((o*7 + l*13) % 100), types.NewInt(l + 1)}})
		}
	}
	results, _ := db.ApplyOps(ops)
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	return db, func() { db.Close() }
}

// testColumnar reports whether engine-level suites should run with the
// columnar shared scan, from SHAREDDB_TEST_COLUMNAR (unset/0 = row path) —
// the CI matrix runs both, mirroring the SHAREDDB_TEST_SHARDS axis.
func testColumnar() bool {
	return os.Getenv("SHAREDDB_TEST_COLUMNAR") == "1"
}

func newEngine(t testing.TB, db *storage.Database) *Engine {
	t.Helper()
	gp := plan.New(db)
	return New(db, gp, Config{ColumnarScan: testColumnar()})
}

func mustPrepare(t testing.TB, e *Engine, sqlText string) *plan.Statement {
	t.Helper()
	s, err := e.Prepare(sqlText)
	if err != nil {
		t.Fatalf("Prepare(%q): %v", sqlText, err)
	}
	return s
}

func run(t testing.TB, e *Engine, s *plan.Statement, params ...types.Value) *Result {
	t.Helper()
	res := e.Submit(s, params)
	if err := res.Wait(); err != nil {
		t.Fatalf("run %q: %v", s.SQL, err)
	}
	return res
}

func TestPointQueryViaPK(t *testing.T) {
	db, closeDB := bookstore(t)
	defer closeDB()
	e := newEngine(t, db)
	defer e.Close()

	s := mustPrepare(t, e, "SELECT i_title, i_price FROM item WHERE i_id = ?")
	res := run(t, e, s, types.NewInt(42))
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].AsString() != "Title 042" {
		t.Errorf("row = %v", res.Rows[0])
	}
	if res.Schema.Cols[1].Name != "i_price" {
		t.Errorf("schema = %v", res.Schema)
	}
}

func TestSecondaryIndexAndLike(t *testing.T) {
	db, closeDB := bookstore(t)
	defer closeDB()
	e := newEngine(t, db)
	defer e.Close()

	bySubject := mustPrepare(t, e, "SELECT i_id FROM item WHERE i_subject = ?")
	res := run(t, e, bySubject, types.NewString("ARTS"))
	if len(res.Rows) != 25 {
		t.Errorf("ARTS items = %d, want 25", len(res.Rows))
	}

	byTitle := mustPrepare(t, e, "SELECT i_id, i_title FROM item WHERE i_title LIKE ?")
	res = run(t, e, byTitle, types.NewString("Title 09%"))
	if len(res.Rows) != 10 {
		t.Errorf("LIKE matched %d, want 10", len(res.Rows))
	}
}

func TestJoinQuery(t *testing.T) {
	db, closeDB := bookstore(t)
	defer closeDB()
	e := newEngine(t, db)
	defer e.Close()

	s := mustPrepare(t, e, `SELECT i_title, a_lname FROM item, author
		WHERE i_a_id = a_id AND i_id = ?`)
	res := run(t, e, s, types.NewInt(21))
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][1].AsString() != "Author01" {
		t.Errorf("author = %v", res.Rows[0])
	}
}

func TestOrderByLimitDesc(t *testing.T) {
	db, closeDB := bookstore(t)
	defer closeDB()
	e := newEngine(t, db)
	defer e.Close()

	s := mustPrepare(t, e, `SELECT i_id, i_price FROM item WHERE i_subject = ?
		ORDER BY i_price DESC LIMIT 5`)
	res := run(t, e, s, types.NewString("SCIENCE"))
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i][1].AsFloat() > res.Rows[i-1][1].AsFloat() {
			t.Errorf("not descending: %v", res.Rows)
		}
	}
	// SCIENCE items are ids 1,5,9,... prices 99.5, 95.5, ... top price is id 1
	if res.Rows[0][0].AsInt() != 1 {
		t.Errorf("top row = %v", res.Rows[0])
	}
}

func TestBestSellersShape(t *testing.T) {
	// The paper's heavy query: 3-way join, group-by, order by aggregate.
	db, closeDB := bookstore(t)
	defer closeDB()
	e := newEngine(t, db)
	defer e.Close()

	s := mustPrepare(t, e, `SELECT i_id, i_title, SUM(ol_qty) AS val
		FROM order_line, item, author
		WHERE ol_i_id = i_id AND i_a_id = a_id AND ol_o_id > ?
		GROUP BY i_id, i_title
		ORDER BY val DESC LIMIT 10`)
	res := run(t, e, s, types.NewInt(20))
	if len(res.Rows) == 0 || len(res.Rows) > 10 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// verify against a direct computation
	want := map[int64]int64{}
	for o := int64(21); o < 50; o++ {
		for l := int64(0); l < 3; l++ {
			want[(o*7+l*13)%100] += l + 1
		}
	}
	var bestVal int64
	for _, v := range want {
		if v > bestVal {
			bestVal = v
		}
	}
	if got := res.Rows[0][2].AsInt(); got != bestVal {
		t.Errorf("top val = %d, want %d", got, bestVal)
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i][2].AsInt() > res.Rows[i-1][2].AsInt() {
			t.Error("not sorted by val desc")
		}
	}
	for _, row := range res.Rows {
		if row[2].AsInt() != want[row[0].AsInt()] {
			t.Errorf("item %d: val %d, want %d", row[0].AsInt(), row[2].AsInt(), want[row[0].AsInt()])
		}
	}
}

func TestDistinctAndSinkLimit(t *testing.T) {
	db, closeDB := bookstore(t)
	defer closeDB()
	e := newEngine(t, db)
	defer e.Close()

	s := mustPrepare(t, e, "SELECT DISTINCT i_subject FROM item")
	res := run(t, e, s)
	if len(res.Rows) != 4 {
		t.Errorf("distinct subjects = %d, want 4", len(res.Rows))
	}
	s2 := mustPrepare(t, e, "SELECT i_id FROM item LIMIT 7")
	res = run(t, e, s2)
	if len(res.Rows) != 7 {
		t.Errorf("limit rows = %d, want 7", len(res.Rows))
	}
}

func TestSharingAcrossStatements(t *testing.T) {
	db, closeDB := bookstore(t)
	defer closeDB()
	e := newEngine(t, db)
	defer e.Close()

	// Two different statements with the same join and sort shape must share
	// the join and sort nodes (paper Figure 2). Their access paths differ
	// (index probe on subject vs full scan for the price range), so exactly
	// one new source node is expected for the second statement.
	before := e.Plan().NumNodes()
	s1 := mustPrepare(t, e, `SELECT i_title FROM item, author
		WHERE i_a_id = a_id AND i_subject = ? ORDER BY i_price`)
	mid := e.Plan().NumNodes()
	s2 := mustPrepare(t, e, `SELECT i_title, a_lname FROM item, author
		WHERE i_a_id = a_id AND i_price > ? ORDER BY i_price`)
	after := e.Plan().NumNodes()
	if mid == before {
		t.Fatal("first statement created no nodes")
	}
	if after-mid != 1 {
		t.Errorf("second statement created %d new nodes; expected 1 (its scan source)\n%s",
			after-mid, e.Plan().Describe())
	}

	// both run concurrently in one generation with different params
	r1 := e.Submit(s1, []types.Value{types.NewString("ARTS")})
	r2 := e.Submit(s2, []types.Value{types.NewFloat(90)})
	if err := r1.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := r2.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(r1.Rows) != 25 {
		t.Errorf("s1 rows = %d, want 25", len(r1.Rows))
	}
	if len(r2.Rows) != 11 { // prices 90.5 .. 100.5 → items 0..10
		t.Errorf("s2 rows = %d, want 11", len(r2.Rows))
	}
}

func TestWritesThroughEngine(t *testing.T) {
	db, closeDB := bookstore(t)
	defer closeDB()
	e := newEngine(t, db)
	defer e.Close()

	ins := mustPrepare(t, e, "INSERT INTO author (a_id, a_lname) VALUES (?, ?)")
	res := run(t, e, ins, types.NewInt(999), types.NewString("New"))
	if res.RowsAffected != 1 {
		t.Errorf("insert affected %d", res.RowsAffected)
	}
	sel := mustPrepare(t, e, "SELECT a_lname FROM author WHERE a_id = ?")
	q := run(t, e, sel, types.NewInt(999))
	if len(q.Rows) != 1 || q.Rows[0][0].AsString() != "New" {
		t.Errorf("read back = %v", q.Rows)
	}

	upd := mustPrepare(t, e, "UPDATE author SET a_lname = ? WHERE a_id = ?")
	res = run(t, e, upd, types.NewString("Renamed"), types.NewInt(999))
	if res.RowsAffected != 1 {
		t.Errorf("update affected %d", res.RowsAffected)
	}
	q = run(t, e, sel, types.NewInt(999))
	if q.Rows[0][0].AsString() != "Renamed" {
		t.Errorf("after update = %v", q.Rows)
	}

	del := mustPrepare(t, e, "DELETE FROM author WHERE a_id = ?")
	res = run(t, e, del, types.NewInt(999))
	if res.RowsAffected != 1 {
		t.Errorf("delete affected %d", res.RowsAffected)
	}
	q = run(t, e, sel, types.NewInt(999))
	if len(q.Rows) != 0 {
		t.Errorf("after delete = %v", q.Rows)
	}
}

func TestUniqueViolationSurfaces(t *testing.T) {
	db, closeDB := bookstore(t)
	defer closeDB()
	e := newEngine(t, db)
	defer e.Close()

	ins := mustPrepare(t, e, "INSERT INTO author (a_id, a_lname) VALUES (?, ?)")
	res := e.Submit(ins, []types.Value{types.NewInt(1), types.NewString("Dup")})
	if err := res.Wait(); !errors.Is(err, storage.ErrUniqueViolate) {
		t.Errorf("want unique violation, got %v", err)
	}
}

func TestTransactionCommitThroughEngine(t *testing.T) {
	db, closeDB := bookstore(t)
	defer closeDB()
	e := newEngine(t, db)
	defer e.Close()

	tx := db.Begin()
	tx.Insert("author", types.Row{types.NewInt(500), types.NewString("TxAuthor")})
	tx.Insert("author", types.Row{types.NewInt(501), types.NewString("TxAuthor2")})
	if err := e.SubmitTx(tx).Wait(); err != nil {
		t.Fatal(err)
	}
	sel := mustPrepare(t, e, "SELECT COUNT(*) FROM author WHERE a_id >= ?")
	res := run(t, e, sel, types.NewInt(500))
	if res.Rows[0][0].AsInt() != 2 {
		t.Errorf("tx rows visible = %v", res.Rows)
	}
}

func TestConcurrentMixedWorkload(t *testing.T) {
	db, closeDB := bookstore(t)
	defer closeDB()
	e := newEngine(t, db)
	defer e.Close()

	bySubject := mustPrepare(t, e, "SELECT i_id FROM item WHERE i_subject = ?")
	byID := mustPrepare(t, e, "SELECT i_title FROM item WHERE i_id = ?")
	topN := mustPrepare(t, e, "SELECT i_id FROM item ORDER BY i_price DESC LIMIT 3")
	ins := mustPrepare(t, e, "INSERT INTO orders (o_id, o_c_id, o_total) VALUES (?, ?, ?)")

	subjects := []string{"ARTS", "SCIENCE", "HISTORY", "COOKING"}
	var wg sync.WaitGroup
	errs := make(chan error, 400)
	for g := 0; g < 20; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				r1 := e.Submit(bySubject, []types.Value{types.NewString(subjects[(g+i)%4])})
				r2 := e.Submit(byID, []types.Value{types.NewInt(int64((g*5 + i) % 100))})
				r3 := e.Submit(topN, nil)
				r4 := e.Submit(ins, []types.Value{
					types.NewInt(int64(1000 + g*100 + i)), types.NewInt(int64(g)), types.NewFloat(1)})
				for _, r := range []*Result{r1, r2, r3, r4} {
					if err := r.Wait(); err != nil {
						errs <- err
					}
				}
				if len(r1.Rows) != 25 {
					errs <- fmt.Errorf("bySubject rows = %d", len(r1.Rows))
				}
				if len(r2.Rows) != 1 {
					errs <- fmt.Errorf("byID rows = %d", len(r2.Rows))
				}
				if len(r3.Rows) != 3 || r3.Rows[0][0].AsInt() != 0 {
					errs <- fmt.Errorf("topN rows = %v", r3.Rows)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := e.Stats()
	gens, queries, writes := st.Generations, st.QueriesRun, st.WritesRun
	if queries != 300 || writes != 100 {
		t.Errorf("stats: %d gens, %d queries, %d writes", gens, queries, writes)
	}
	if gens >= queries+writes {
		t.Errorf("no batching happened: %d generations for %d requests", gens, queries+writes)
	}
}

func TestEngineCloseFailsPending(t *testing.T) {
	db, closeDB := bookstore(t)
	defer closeDB()
	e := newEngine(t, db)
	s := mustPrepare(t, e, "SELECT i_id FROM item WHERE i_id = ?")
	e.Close()
	res := e.Submit(s, []types.Value{types.NewInt(1)})
	if err := res.Wait(); err == nil {
		t.Error("submit after close should fail")
	}
}

func TestGroupByCountryStyleQuery(t *testing.T) {
	// Q1 of the paper's Figure 2: SELECT country, SUM(...) GROUP BY country.
	db, closeDB := bookstore(t)
	defer closeDB()
	e := newEngine(t, db)
	defer e.Close()

	s := mustPrepare(t, e, `SELECT i_subject, COUNT(*), AVG(i_price)
		FROM item GROUP BY i_subject`)
	res := run(t, e, s)
	if len(res.Rows) != 4 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row[1].AsInt() != 25 {
			t.Errorf("group %v count = %v", row[0], row[1])
		}
	}
}
