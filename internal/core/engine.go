// Package core implements the SharedDB engine: the batch-oriented execution
// loop that the paper describes as a blood circulation (§3.2): "With every
// heartbeat, tuples are pushed through the global query plan in order to
// process the next generation of queries and updates. While one batch of
// queries and updates is processed, newly arriving queries and updates are
// queued. When the current batch ... has been processed, then the queues
// are emptied in order to form the next batch."
//
// Each generation: (1) the batch's updates are applied in arrival order and
// a new snapshot is published (Crescando semantics), (2) the batch's reads
// run together through the always-on global plan at that snapshot, (3)
// results are routed back to the waiting clients.
//
// Generations pipeline (§3.1, §4): the throughput claim — work per
// generation bounded by data size, not query count — only pays off while
// the always-on plan stays busy, so the engine admits up to
// Config.MaxInFlightGenerations generations concurrently instead of
// blocking on each one. Write phases stay serialized in generation order on
// the dispatcher goroutine (generation N+1's writes never apply before
// generation N's), each generation's reads run at the snapshot published
// after its own writes, and query-id routing is generation-scoped end to
// end, so overlapping read phases of distinct generations never observe
// each other's tuples.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"shareddb/internal/expr"
	"shareddb/internal/operators"
	"shareddb/internal/par"
	"shareddb/internal/plan"
	"shareddb/internal/queryset"
	"shareddb/internal/sql"
	"shareddb/internal/storage"
	"shareddb/internal/types"
)

// DefaultMaxInFlightGenerations is the pipeline depth used when
// Config.MaxInFlightGenerations is zero.
const DefaultMaxInFlightGenerations = 4

// Config tunes the engine.
type Config struct {
	// Heartbeat is the minimum spacing between generation starts. Zero
	// means the next generation forms as soon as the previous one finishes
	// (the paper's default: "for OLTP workloads, these heartbeats can be
	// frequent, in the order of one second or even less").
	Heartbeat time.Duration
	// MaxBatch caps the number of requests drained into one generation
	// (0 = unlimited).
	MaxBatch int
	// MaxInFlightGenerations bounds how many generations may execute
	// concurrently. 1 restores strictly serial generations (the classic
	// generation barrier); 0 selects DefaultMaxInFlightGenerations.
	// Negative values are rejected by Config.Validate (the public API
	// path); New clamps them to 1 as a backstop. Write phases always
	// apply in generation order regardless of this setting; only read
	// phases overlap.
	MaxInFlightGenerations int
	// Workers is the intra-operator parallelism budget per generation
	// cycle: the partitioned ClockScan splits each table scan into that
	// many contiguous row ranges, and the blocking shared operators run
	// data-parallel Finish phases (partitioned sort + k-way merge,
	// partitioned hash aggregation, parallel join build). 0 selects
	// GOMAXPROCS (one worker per core, the paper's Crescando setup);
	// 1 is strictly serial and byte-identical to the pre-parallel engine
	// (negative values are rejected by Config.Validate; New clamps them
	// to serial as a backstop). Per-query results are identical at any
	// setting.
	Workers int
	// ColumnarScan switches shared table scans from the row-store ClockScan
	// to the delta-maintained columnar mirror (typed flat vectors per
	// column, vectorized predicate evaluation; storage.SharedScanColumnar).
	// Emission is bit-identical to the row path — same rows, same order,
	// same query sets — so only scan throughput changes. Disabled (false),
	// the scan path is byte-identical to the row-store engine.
	ColumnarScan bool
	// ShardWorkers overrides the per-shard worker budget when this config
	// is used to build a sharded system (internal/shard): each shard engine
	// gets this many workers instead of the default GOMAXPROCS/shards
	// split, letting deployments oversubscribe or isolate cores explicitly.
	// 0 selects the split; negative values are rejected by Config.Validate.
	// Single-engine deployments ignore it.
	ShardWorkers int
	// PoolAffinity, when non-nil, runs once on each of the engine's
	// persistent worker goroutines at pool start (par.Pool) — the hook a
	// deployment uses to pin workers to a CPU/NUMA range (e.g. with
	// unix.SchedSetaffinity). The engine owns a pool of exactly Workers
	// goroutines (per shard, on sharded builds — the ShardWorkers split
	// decides the size), so affinity composes with explicit core isolation.
	PoolAffinity func(worker int)

	// MaxGenerationDelay is the per-generation latency SLO (the paper's
	// response-time limit): batch formation caps each generation at the
	// size predicted — from an EWMA of observed per-request cycle cost —
	// to finish within it, and the slow-query circuit breaker quarantines
	// statements whose generations repeatedly exceed it. 0 disables both;
	// non-zero values below MinGenerationDelay are rejected by
	// Config.Validate (the timer cannot enforce them).
	MaxGenerationDelay time.Duration
	// QueueDepthLimit caps the submission queue: submissions beyond it are
	// rejected immediately with a *OverloadError (wrapping ErrOverloaded)
	// carrying a retry hint, instead of queueing unboundedly. 0 = unlimited.
	QueueDepthLimit int
	// StatementQuota caps how many activations of any one statement a
	// single generation admits; excess activations are shed — they stay
	// queued, in arrival order, for a later generation. 0 = unlimited.
	StatementQuota int
	// BreakerStrikes is how many consecutive over-SLO generations
	// containing a statement trip its slow-query breaker (0 selects
	// DefaultBreakerStrikes; requires MaxGenerationDelay > 0).
	BreakerStrikes int
	// BreakerCooldown is how long a tripped statement stays quarantined
	// before a half-open probe is admitted (0 selects 8×MaxGenerationDelay;
	// requires MaxGenerationDelay > 0).
	BreakerCooldown time.Duration

	// FoldQueries enables result folding: a read submission identical to a
	// pending one (same SQL text, bit-identical parameters) attaches to the
	// pending request's result instead of occupying its own queue slot and
	// query-set activation. Folded submissions are charged once against
	// QueueDepthLimit/StatementQuota and the cost EWMA — by their lead.
	// Writes and transaction commits never fold. Disabled (false), the
	// submission path is byte-identical to the pre-folding engine.
	FoldQueries bool
	// FoldSubsume additionally lets a pending parameter-free simple scan
	// serve equality-restriction duplicates of itself via residual filters,
	// where expression analysis proves the scan's output covers the
	// duplicate's predicate and projection. Requires FoldQueries.
	FoldSubsume bool

	// IncrementalState turns stateful operator inputs into maintained node
	// state: hash-join build sides and group-by aggregate tables fed by a
	// direct base-table scan persist across generations and are updated in
	// place from each generation's write delta (exact, thanks to the
	// generation barrier) instead of being rebuilt from the scan stream.
	// Reuse requires the covering queries and parameters to repeat between
	// generations (standing queries and repeated prepared reads); anything
	// else reprimes from the table. Disabled (false), the dispatch path is
	// byte-identical to the delta-free engine.
	IncrementalState bool
	// SubscriptionBuffer is the per-subscription update channel capacity
	// (0 selects DefaultSubscriptionBuffer). A subscriber that falls more
	// than a full buffer behind is marked lagged and receives a full resync
	// as its next delivery; generations never block on slow subscribers.
	// Negative values are rejected by Config.Validate.
	SubscriptionBuffer int
}

// Engine drives generations over a storage database and a global plan.
type Engine struct {
	db   *storage.Database
	plan *plan.GlobalPlan
	cfg  Config

	mu      sync.Mutex
	cond    *sync.Cond
	pending []*Request
	stopped bool
	gen     uint64

	workers int        // resolved Config.Workers (immutable after New)
	pool    *par.Pool  // engine-owned persistent worker pool (closed on Close)
	adm     *admission // admission controller; nil when every limit is zero

	// Cost attribution (nil unless the SLO breaker is on): per-generation
	// records filled by the plan's cost observer from operator goroutines,
	// consumed by the generation's completion callback. Guarded by costMu —
	// deliberately separate from mu, which the observer must never touch
	// (operator goroutines report while the dispatcher holds mu elsewhere).
	costMu   sync.Mutex
	genCosts map[uint64]*genCostRec
	// reserved counts queue slots handed out by AdmitReserve but not yet
	// consumed by SubmitReserved/SubmitTxReserved (the shard router's
	// all-or-nothing broadcast admission). Guarded by mu; counted against
	// QueueDepthLimit alongside len(pending).
	reserved int

	// pipeline state, guarded by mu
	maxInFlight  int // resolved MaxInFlightGenerations
	inFlight     int // generations dispatched but not yet complete
	peakInFlight int // high-water mark of inFlight
	preparers    int // Prepare calls waiting for / holding plan quiescence
	loopDone     chan struct{}

	// Fold state, guarded by mu. The indexes cover exactly the foldable
	// requests currently in pending (the fold window); both are rebuilt
	// from the shed remainder after every batch formation. nil when
	// Config.FoldQueries is off.
	foldIdx    map[uint64][]*Request // fingerprint → pending fold leads
	subsumeIdx map[string][]*Request // table → pending full-scan leads

	// Standing queries, guarded by mu. subsKick forces a generation even
	// with an empty request queue so a fresh subscription gets its initial
	// full result.
	subs     []*Subscription
	subsKick bool

	// Incremental-state delta chain, touched only on the dispatcher
	// goroutine (write phases serialize there): the write records
	// accumulated since the last delivered delta, the snapshot that delta
	// brought operator state up to, and whether that snapshot holds a GC
	// pin (it must — delta classification reads row visibility at FromTS,
	// so those versions may not be truncated between generations).
	incFromTS  uint64
	incTouched []storage.WALRecord
	incPinned  bool

	// stats
	generations uint64
	queriesRun  uint64
	writesRun   uint64
	folded      uint64 // submissions folded into a pending duplicate
	subsumed    uint64 // of those, served through a subsumption transform
	subUpdates  uint64 // subscription updates handed to subscribers
}

// Request is one enqueued statement execution (or transaction commit).
type Request struct {
	Stmt   *plan.Statement
	Params []types.Value
	Tx     *storage.Tx // non-nil for transaction commits

	Result *Result

	// Fold state: fp is the fold fingerprint (computed once at Submit when
	// foldable), fold the fan-out group duplicates have attached to (nil
	// until the first fold), hooks the dispatch hooks to fire when this
	// request's generation forms (SubmitHooked; folded requests transfer
	// their hooks to the lead).
	fp       uint64
	foldable bool
	fold     *Fanout
	hooks    []func()
}

// Result is the client-visible outcome of a request. Wait blocks until the
// generation that served the request completes.
type Result struct {
	done chan struct{}

	Rows         []types.Row
	Schema       *types.Schema
	RowsAffected int
	Err          error

	// SnapshotTS is the storage snapshot the request executed at: the
	// post-write snapshot of its generation for reads, the published commit
	// timestamp for writes.
	SnapshotTS uint64

	// fold is set on results subscribed to a fan-out group (they complete
	// via Fanout.Complete, not a generation); abandoned marks a cancelled
	// waiter whose queued request should vacate at the next batch formation.
	fold      *Fanout
	abandoned atomic.Bool

	distinctSeen map[string]bool
}

// Wait blocks until the result is ready and returns its error.
func (r *Result) Wait() error {
	<-r.done
	return r.Err
}

// Done exposes the completion channel.
func (r *Result) Done() <-chan struct{} { return r.done }

// New creates an engine over db and global plan gp and starts its heartbeat
// loop and the plan's operator goroutines.
func New(db *storage.Database, gp *plan.GlobalPlan, cfg Config) *Engine {
	e := &Engine{db: db, plan: gp, cfg: cfg, loopDone: make(chan struct{})}
	e.maxInFlight = cfg.MaxInFlightGenerations
	if e.maxInFlight == 0 {
		e.maxInFlight = DefaultMaxInFlightGenerations
	} else if e.maxInFlight < 0 {
		e.maxInFlight = 1
	}
	e.workers = par.Resolve(cfg.Workers)
	e.pool = par.NewPool(e.workers, cfg.PoolAffinity)
	e.adm = newAdmission(cfg)
	if cfg.FoldQueries {
		e.foldIdx = make(map[uint64][]*Request)
		if cfg.FoldSubsume {
			e.subsumeIdx = make(map[string][]*Request)
		}
	}
	gp.SetWorkers(e.workers)
	gp.SetColumnar(cfg.ColumnarScan)
	gp.SetWorkerPool(e.pool)
	if e.adm != nil && e.adm.maxDelay > 0 {
		// The slow-query breaker is on: attribute operator cycle time to
		// statements so blame lands on the plan that burned the cycles.
		e.genCosts = make(map[uint64]*genCostRec)
		gp.SetCostObserver(e.observeCost)
	}
	e.cond = sync.NewCond(&e.mu)
	gp.Start()
	go e.loop()
	return e
}

// Workers reports the resolved intra-operator parallelism budget.
func (e *Engine) Workers() int { return e.workers }

// Close stops the heartbeat loop, waits for in-flight generations to drain
// (their waiters receive real results), and stops the operator goroutines.
// Pending requests that never made it into a generation are failed.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	e.stopped = true
	pending := e.pending
	e.pending = nil
	e.cond.Broadcast()
	e.mu.Unlock()
	failRequests(pending)
	<-e.loopDone
	// Wait out in-flight generations AND preparers: stopping the operator
	// goroutines while either is touching the plan would strand them.
	e.mu.Lock()
	for e.inFlight > 0 || e.preparers > 0 {
		e.cond.Wait()
	}
	subs := e.subs
	e.subs = nil
	e.mu.Unlock()
	for _, s := range subs {
		s.Close()
	}
	// The loop has exited and all generations drained, so the dispatcher-
	// goroutine delta-chain fields are quiescent: release the chain pin.
	if e.incPinned {
		e.db.UnpinSnapshot(e.incFromTS)
		e.incPinned = false
	}
	e.plan.Stop()
	e.pool.Close()
}

// genCostRec accumulates one generation's attributed operator time: each
// node cycle's active nanoseconds split equally across the cycle's tasks and
// summed per statement SQL (the breaker's identity).
type genCostRec struct {
	qidSQL map[queryset.QueryID]string
	ns     map[string]int64
}

// observeCost is the plan's cost-attribution hook (plan.SetCostObserver),
// called from operator goroutines as each node drains a generation. Every
// node reports before its EOS propagates downstream, so by the time the
// generation's sink completion callback runs, the record is final.
func (e *Engine) observeCost(gen uint64, tasks []operators.Task, activeNs int64) {
	if activeNs <= 0 || len(tasks) == 0 {
		return
	}
	// Equal split across the cycle's active queries: a shared operator does
	// one pass of work for all of them, and finer attribution (per-tuple
	// query-set accounting) would tax the hot path it is trying to protect.
	share := activeNs / int64(len(tasks))
	if share <= 0 {
		return
	}
	e.costMu.Lock()
	if rec := e.genCosts[gen]; rec != nil {
		for _, t := range tasks {
			if sql := rec.qidSQL[t.Query]; sql != "" {
				rec.ns[sql] += share
			}
		}
	}
	e.costMu.Unlock()
}

func failRequests(reqs []*Request) {
	for _, r := range reqs {
		r.Result.Err = errors.New("core: engine closed")
		close(r.Result.done)
		if r.fold != nil {
			r.fold.complete(r.Result)
		}
	}
}

// Stats reports the engine's typed counter snapshot.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	active := 0
	for _, sub := range e.subs {
		if !sub.isClosed() {
			active++
		}
	}
	s := EngineStats{
		Generations:         e.generations,
		QueriesRun:          e.queriesRun,
		WritesRun:           e.writesRun,
		FoldedQueries:       e.folded,
		SubsumedQueries:     e.subsumed,
		SubscriptionsActive: active,
		SubscriptionUpdates: e.subUpdates,
		InFlight:            e.inFlight,
		PeakInFlight:        e.peakInFlight,
		Admission:           AdmissionStats{QueueDepth: len(e.pending) + e.reserved},
	}
	if e.adm != nil {
		s.Admission.Shed = e.adm.shed
		s.Admission.Rejected = e.adm.rejected
		s.Admission.BreakerTrips = e.adm.trips
	}
	return s
}

// InFlightGenerations reports the pipeline gauge: how many generations are
// currently dispatched but not yet complete, and the peak observed since
// the engine started. peak > 1 is the observable signature of pipelined
// execution (it stays at 1 when MaxInFlightGenerations is 1).
func (e *Engine) InFlightGenerations() (current, peak int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.inFlight, e.peakInFlight
}

// Database returns the underlying storage.
func (e *Engine) Database() *storage.Database { return e.db }

// Plan returns the global plan.
func (e *Engine) Plan() *plan.GlobalPlan { return e.plan }

// Submit enqueues a request for the next generation. With admission limits
// configured the request may be rejected immediately: the Result completes
// with a *OverloadError (errors.Is(err, ErrOverloaded)) without entering
// the queue. With FoldQueries on, a read identical to a pending one
// returns a result subscribed to the pending request instead of queueing.
func (e *Engine) Submit(stmt *plan.Statement, params []types.Value) *Result {
	return e.submit(stmt, params, nil)
}

// SubmitHooked is Submit with a dispatch hook: fn runs on the dispatcher
// goroutine right after the generation containing the request forms —
// before the generation's writes apply or its read snapshot pins. When the
// submission folds into a pending lead the hook transfers to the lead, so
// it still fires when the generation that answers this submission
// dispatches. The shard router uses the hook to close its cross-shard fold
// window at the earliest shard's batch formation.
func (e *Engine) SubmitHooked(stmt *plan.Statement, params []types.Value, fn func()) *Result {
	return e.submit(stmt, params, fn)
}

func (e *Engine) submit(stmt *plan.Statement, params []types.Value, hook func()) *Result {
	req := &Request{Stmt: stmt, Params: params, Result: &Result{done: make(chan struct{})}}
	if e.foldIdx != nil && stmt != nil && !stmt.IsWrite() {
		req.foldable = true
		req.fp = FoldFingerprint(stmt.SQL, params)
	}
	if hook != nil {
		req.hooks = append(req.hooks, hook)
	}
	return e.enqueue(req, false)
}

// SubmitReserved is Submit for a request whose admission was already
// decided by AdmitReserve: it consumes one reservation and skips the
// admission checks (the shard router's all-or-nothing broadcast path).
// Reserved submissions never fold — the router reserves only for writes,
// whose per-shard application must be real on every shard.
func (e *Engine) SubmitReserved(stmt *plan.Statement, params []types.Value) *Result {
	req := &Request{Stmt: stmt, Params: params, Result: &Result{done: make(chan struct{})}}
	return e.enqueue(req, true)
}

// AdmitReserve runs the admission checks for one future submission and, on
// success, reserves its queue slot (counted against QueueDepthLimit) until
// SubmitReserved/SubmitTxReserved consumes it or AdmitRelease returns it.
// The shard router reserves on every shard before enqueueing a broadcast
// write anywhere, so partial admission can never diverge replicated copies.
// stmt may be nil (transaction commits): only the queue-depth check applies.
func (e *Engine) AdmitReserve(stmt *plan.Statement) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.stopped {
		return errors.New("core: engine closed")
	}
	if e.adm != nil {
		if err := e.adm.admit(stmt, len(e.pending)+e.reserved); err != nil {
			return err
		}
	}
	e.reserved++
	return nil
}

// AdmitRelease returns an unused AdmitReserve reservation.
func (e *Engine) AdmitRelease() {
	e.mu.Lock()
	if e.reserved > 0 {
		e.reserved--
	}
	e.mu.Unlock()
}

// AdmitStatement reports whether a statement with the given SQL text would
// be rejected by the slow-query breaker right now, without preparing or
// submitting anything. The ad-hoc path (DB.Prepare/DB.Query) calls it
// before Prepare: Prepare quiesces the generation pipeline, so a
// quarantined statement's retries must fail fast here instead of draining
// in-flight generations on every attempt. It is a peek, not a reservation —
// the authoritative check (which consumes the half-open probe slot) still
// runs at Submit.
func (e *Engine) AdmitStatement(sqlText string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.adm == nil {
		return nil
	}
	if err := e.adm.peekBreaker(sqlText); err != nil {
		e.adm.rejected++
		return err
	}
	return nil
}

// AdmissionStats reports the admission controller's counters (zero values
// when admission is disabled).
func (e *Engine) AdmissionStats() AdmissionStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := AdmissionStats{QueueDepth: len(e.pending) + e.reserved}
	if e.adm != nil {
		s.Shed = e.adm.shed
		s.Rejected = e.adm.rejected
		s.BreakerTrips = e.adm.trips
	}
	return s
}

// SubmitTx enqueues a transaction commit for the next generation. The
// transaction must come from this engine's BeginTx (or its database's
// Begin); foreign Tx implementations fail immediately.
func (e *Engine) SubmitTx(tx Tx) *Result {
	stx, ok := tx.(*storage.Tx)
	if !ok {
		res := NewPendingResult()
		res.Complete(errNotStorageTx)
		return res
	}
	req := &Request{Tx: stx, Result: &Result{done: make(chan struct{})}}
	return e.enqueue(req, false)
}

// SubmitTxReserved is SubmitTx consuming an AdmitReserve reservation (the
// shard router's transaction-group commit path).
func (e *Engine) SubmitTxReserved(tx Tx) *Result {
	stx, ok := tx.(*storage.Tx)
	if !ok {
		e.AdmitRelease()
		res := NewPendingResult()
		res.Complete(errNotStorageTx)
		return res
	}
	req := &Request{Tx: stx, Result: &Result{done: make(chan struct{})}}
	return e.enqueue(req, true)
}

// enqueue admits (or, for the reserved path, consumes the reservation of)
// one request and appends it to the pending queue. Foldable requests first
// try to collapse into a pending duplicate — a fold hit returns the
// subscriber's result without touching admission or the queue (the lead
// already paid for both).
func (e *Engine) enqueue(req *Request, reserved bool) *Result {
	e.mu.Lock()
	if reserved && e.reserved > 0 {
		e.reserved--
	}
	if e.stopped {
		e.mu.Unlock()
		req.Result.Err = errors.New("core: engine closed")
		close(req.Result.done)
		return req.Result
	}
	if req.foldable {
		if res := e.tryFold(req); res != nil {
			e.mu.Unlock()
			return res
		}
	}
	if !reserved && e.adm != nil {
		if err := e.adm.admit(req.Stmt, len(e.pending)+e.reserved); err != nil {
			e.mu.Unlock()
			req.Result.Err = err
			close(req.Result.done)
			return req.Result
		}
	}
	e.pending = append(e.pending, req)
	if req.foldable {
		e.indexFoldLead(req)
	}
	e.cond.Broadcast()
	e.mu.Unlock()
	return req.Result
}

// tryFold collapses req into a pending identical (or, with FoldSubsume,
// subsuming) lead. Called with e.mu held; returns the subscriber's result
// on a hit, nil when req must queue as its own lead.
func (e *Engine) tryFold(req *Request) *Result {
	for _, lead := range e.foldIdx[req.fp] {
		if lead.Stmt.SQL != req.Stmt.SQL || !IdenticalParams(lead.Params, req.Params) {
			continue
		}
		if lead.fold == nil {
			lead.fold = &Fanout{}
		}
		if !lead.fold.attach(req.Result, nil) {
			continue
		}
		lead.hooks = append(lead.hooks, req.hooks...)
		e.folded++
		return req.Result
	}
	if e.subsumeIdx != nil && req.Stmt.FoldTable != "" && req.Stmt.FoldPred != nil {
		for _, lead := range e.subsumeIdx[req.Stmt.FoldTable] {
			tr := buildFoldTransform(lead.Stmt, req.Stmt, req.Params)
			if tr == nil {
				continue
			}
			if lead.fold == nil {
				lead.fold = &Fanout{}
			}
			if !lead.fold.attach(req.Result, tr) {
				continue
			}
			lead.hooks = append(lead.hooks, req.hooks...)
			e.folded++
			e.subsumed++
			return req.Result
		}
	}
	return nil
}

// indexFoldLead registers a newly queued foldable request as a fold target
// (e.mu held). Parameter-free simple scans additionally become subsumption
// leads.
func (e *Engine) indexFoldLead(req *Request) {
	e.foldIdx[req.fp] = append(e.foldIdx[req.fp], req)
	if e.subsumeIdx != nil && req.Stmt.FoldTable != "" && req.Stmt.FoldPred == nil {
		e.subsumeIdx[req.Stmt.FoldTable] = append(e.subsumeIdx[req.Stmt.FoldTable], req)
	}
}

// loop is the heartbeat dispatcher: drain the queue, apply the generation's
// writes in order, launch its read phase, and — unlike the serial engine —
// move straight on to the next generation while up to maxInFlight read
// phases overlap in the always-on plan.
func (e *Engine) loop() {
	defer close(e.loopDone)
	lastStart := time.Time{}
	for {
		e.mu.Lock()
		for {
			for !e.stopped && ((len(e.pending) == 0 && !e.subsKick) || e.inFlight >= e.maxInFlight || e.preparers > 0) {
				e.cond.Wait()
			}
			if e.stopped {
				break
			}
			// Heartbeat pacing: give late arrivals a chance to join the
			// batch. The admission check reruns after the sleep — a Prepare
			// or a full pipeline that arose meanwhile must hold dispatch.
			if e.cfg.Heartbeat > 0 {
				if wait := e.cfg.Heartbeat - time.Since(lastStart); wait > 0 {
					e.mu.Unlock()
					time.Sleep(wait)
					e.mu.Lock()
					continue
				}
			}
			break
		}
		if e.stopped {
			pending := e.pending
			e.pending = nil
			e.mu.Unlock()
			failRequests(pending)
			return
		}
		// Cancelled submissions (Result.Abandon via the context API) vacate
		// the queue here, before formation: they were never dispatched, so
		// dropping them frees their queue-depth slot without touching any
		// generation. A lead that acquired fold subscribers still runs —
		// the subscribers need its result.
		var dropped []*Request
		for _, r := range e.pending {
			if r.Result.abandoned.Load() && r.fold == nil {
				dropped = append(dropped, r)
			}
		}
		if dropped != nil {
			kept := e.pending[:0]
			for _, r := range e.pending {
				if r.Result.abandoned.Load() && r.fold == nil {
					continue
				}
				kept = append(kept, r)
			}
			e.pending = kept
		}
		batch := e.pending
		if e.adm != nil {
			// Admission-controlled batch formation: per-statement quotas
			// and the SLO-predicted size cap shed excess back to the queue
			// (arrival order preserved); MaxBatch composes inside.
			batch, e.pending = e.adm.formBatch(batch, e.cfg.MaxBatch)
		} else if e.cfg.MaxBatch > 0 && len(batch) > e.cfg.MaxBatch {
			e.pending = batch[e.cfg.MaxBatch:]
			batch = batch[:e.cfg.MaxBatch]
		} else {
			e.pending = nil
		}
		// The fold window closes at batch formation: a drafted request's
		// snapshot is about to pin, so it stops accepting subscribers.
		// Shed requests stay foldable — a subscriber attached to a shed
		// lead simply rides to the lead's later generation.
		if e.foldIdx != nil {
			clear(e.foldIdx)
			if e.subsumeIdx != nil {
				clear(e.subsumeIdx)
			}
			for _, r := range e.pending {
				if r.foldable {
					e.indexFoldLead(r)
				}
			}
		}
		e.subsKick = false
		subs := e.activeSubsLocked()
		e.gen++
		gen := e.gen
		e.generations++
		e.inFlight++
		if e.inFlight > e.peakInFlight {
			e.peakInFlight = e.inFlight
		}
		e.mu.Unlock()

		for _, r := range dropped {
			r.Result.Err = errRequestAbandoned
			close(r.Result.done)
		}
		// Dispatch hooks fire after formation but before any of the
		// generation's effects (write apply, snapshot pin) — the shard
		// router's fold-window close point.
		for _, r := range batch {
			for _, h := range r.hooks {
				h()
			}
			r.hooks = nil
		}
		lastStart = time.Now()
		e.dispatchGeneration(gen, batch, subs)
		// Pipeline fairness: when read phases are in flight, yield the
		// processor before forming the next generation so operator
		// goroutines get scheduled promptly. This is load-bearing on
		// single-core machines despite Go's async preemption — preemption
		// caps a goroutine's quantum but does not prioritize the waiting
		// operator goroutines over a hot dispatcher/writer loop; measured
		// on a 1-CPU host, removing this yield inflates read latency under
		// a saturating write stream by ~3 orders of magnitude (seconds per
		// query).
		e.mu.Lock()
		reading := e.inFlight > 0
		e.mu.Unlock()
		if reading {
			runtime.Gosched()
		}
	}
}

// generationDone retires one generation from the pipeline.
func (e *Engine) generationDone() {
	e.mu.Lock()
	e.inFlight--
	e.cond.Broadcast()
	e.mu.Unlock()
}

// Prepare registers a statement in the global plan. Registration mutates
// the operator DAG, which must not happen while any generation is
// traversing it — so Prepare blocks new dispatches and waits until the
// pipeline has drained (the ad-hoc query path of §3.2, now a pipeline
// quiesce instead of a between-generations slot).
func (e *Engine) Prepare(sqlText string) (*plan.Statement, error) {
	return e.prepare(sqlText, nil)
}

// PrepareParsed registers an already-parsed statement, with the same
// pipeline quiesce as Prepare. The shard router uses it to install partial
// (rewritten) statements without rendering them back to SQL.
func (e *Engine) PrepareParsed(sqlText string, ast sql.Statement) (*plan.Statement, error) {
	return e.prepare(sqlText, ast)
}

func (e *Engine) prepare(sqlText string, ast sql.Statement) (*plan.Statement, error) {
	e.mu.Lock()
	e.preparers++
	for e.inFlight > 0 && !e.stopped {
		e.cond.Wait()
	}
	if e.stopped {
		// Close is (or will be) stopping the plan's operator goroutines;
		// mutating the DAG now would start nodes nothing ever stops.
		e.preparers--
		e.cond.Broadcast()
		e.mu.Unlock()
		return nil, errors.New("core: engine closed")
	}
	e.mu.Unlock()
	var stmt *plan.Statement
	var err error
	if ast != nil {
		stmt, err = e.plan.PrepareParsed(sqlText, ast)
	} else {
		stmt, err = e.plan.Prepare(sqlText)
	}
	e.mu.Lock()
	e.preparers--
	e.cond.Broadcast()
	e.mu.Unlock()
	return stmt, err
}

// dispatchGeneration runs one batch of queries and updates. The write phase
// executes synchronously on the dispatcher goroutine — generation order IS
// write order. The read phase is launched into the plan and completes
// asynchronously; generationDone retires the generation. subs are the
// generation's standing queries: they activate with the leading dense query
// ids (stable across generations while the subscription set is stable) and
// force a read phase even for write-only batches.
func (e *Engine) dispatchGeneration(gen uint64, batch []*Request, subs []*Subscription) {
	// Admission feedback needs the generation's cycle time (dispatch start
	// to read-phase completion); only measured when admission is on.
	var admStart time.Time
	if e.adm != nil {
		admStart = time.Now()
	}
	// Phase 1: writes, in arrival order. Standalone write statements apply
	// with Crescando semantics (later ops see earlier ones); transaction
	// commits follow with snapshot-isolation validation.
	var writeReqs []*Request
	var writeOps []storage.WriteOp
	var txReqs []*Request
	var txs []*storage.Tx
	var readReqs []*Request

	for _, r := range batch {
		switch {
		case r.Tx != nil:
			txReqs = append(txReqs, r)
			txs = append(txs, r.Tx)
		case r.Stmt != nil && r.Stmt.IsWrite():
			op, err := bindWrite(r.Stmt.Write, r.Params)
			if err != nil {
				r.Result.Err = err
				close(r.Result.done)
				continue
			}
			writeReqs = append(writeReqs, r)
			writeOps = append(writeOps, op)
		default:
			readReqs = append(readReqs, r)
		}
	}

	// Stats and pipeline bookkeeping update BEFORE the done channels close:
	// a client returning from Result.Wait must observe its own work in
	// Stats()/InFlightGenerations(). For a write-only generation the last
	// completion below also retires the generation before notifying.
	hasReads := len(readReqs) > 0 || len(subs) > 0
	if len(writeOps) > 0 {
		var results []storage.OpResult
		var commitTS uint64
		if e.cfg.IncrementalState {
			var recs []storage.WALRecord
			results, commitTS, recs = e.db.ApplyOpsRecorded(writeOps)
			e.incTouched = append(e.incTouched, recs...)
		} else {
			results, commitTS = e.db.ApplyOps(writeOps)
		}
		e.mu.Lock()
		e.writesRun += uint64(len(writeOps))
		e.mu.Unlock()
		if !hasReads && len(txs) == 0 {
			e.generationDone()
		}
		for i, res := range results {
			writeReqs[i].Result.RowsAffected = res.RowsAffected
			writeReqs[i].Result.Err = res.Err
			writeReqs[i].Result.SnapshotTS = commitTS
			close(writeReqs[i].Result.done)
		}
	}
	if len(txs) > 0 {
		var commitTS uint64
		var errs []error
		if e.cfg.IncrementalState {
			var recs []storage.WALRecord
			commitTS, errs, recs = e.db.CommitTxBatchRecorded(txs)
			e.incTouched = append(e.incTouched, recs...)
		} else {
			commitTS, errs = e.db.CommitTxBatch(txs)
		}
		e.mu.Lock()
		e.writesRun += uint64(len(txs))
		e.mu.Unlock()
		if !hasReads {
			e.generationDone()
		}
		for i, err := range errs {
			txReqs[i].Result.Err = err
			txReqs[i].Result.SnapshotTS = commitTS
			close(txReqs[i].Result.done)
		}
	}

	// Phase 2: reads at the post-write snapshot. Query ids are generation-
	// scoped (small dense ints); isolation between overlapping generations
	// comes from generation-tagged routing, not from the id space.
	if !hasReads {
		if len(writeOps) == 0 && len(txs) == 0 {
			e.generationDone()
		}
		// Write-only generations feed the cost EWMA too (no statements —
		// the breaker only judges read plans): without this, a pure-write
		// burst would leave costNs at zero and the SLO batch cap blind.
		if e.adm != nil {
			e.mu.Lock()
			e.adm.recordGeneration(nil, time.Since(admStart), len(batch))
			e.mu.Unlock()
		}
		return
	}
	ts := e.db.PinCurrentSnapshot()
	// The generation's write delta for incremental node state: everything
	// committed since the last delivered delta, classified at [incFromTS,
	// ts]. The previous FromTS keeps a dedicated GC pin so the versions the
	// classification reads are still there; the pin rolls forward to ts. A
	// nil delta (IncrementalState off) keeps RunGeneration byte-identical
	// to the delta-free engine.
	var delta *storage.Delta
	if e.cfg.IncrementalState {
		delta = e.db.BuildDelta(e.incFromTS, ts, e.incTouched)
		e.incTouched = nil
		chain := e.db.PinCurrentSnapshot() // == ts: writes serialize on this goroutine
		if e.incPinned {
			e.db.UnpinSnapshot(e.incFromTS)
		}
		e.incFromTS, e.incPinned = chain, true
	}
	// The breaker blames generations, not operators: collect the distinct
	// read statements so the completion callback can strike (or reset)
	// each one against the observed cycle time. Distinctness is by SQL
	// text — the breaker's identity — so two ad-hoc prepares of the same
	// statement in one generation strike once, not twice.
	var admStmts []*plan.Statement
	if e.adm != nil {
		seen := make(map[string]bool, len(readReqs))
		for _, r := range readReqs {
			if !seen[r.Stmt.SQL] {
				seen[r.Stmt.SQL] = true
				admStmts = append(admStmts, r.Stmt)
			}
		}
	}
	// Standing queries take the leading dense query ids (1..len(subs), in
	// registration order — stable while the subscription set is stable, so
	// incremental node state keyed on them can be reused), then the batch's
	// reads. With no subscriptions the numbering is unchanged.
	nsubs := len(subs)
	acts := make([]plan.Activation, 0, nsubs+len(readReqs))
	subCols := make([]*subCollector, nsubs)
	for i, s := range subs {
		acts = append(acts, plan.Activation{QID: queryset.QueryID(i + 1), Stmt: s.stmt, Params: s.params})
		subCols[i] = &subCollector{sub: s}
	}
	byQID := make(map[queryset.QueryID]*Request, len(readReqs))
	for i, r := range readReqs {
		qid := queryset.QueryID(nsubs + i + 1) // generation-scoped ids keep sets small
		acts = append(acts, plan.Activation{QID: qid, Stmt: r.Stmt, Params: r.Params})
		byQID[qid] = r
		r.Result.Schema = r.Stmt.OutSchema
		r.Result.SnapshotTS = ts
	}
	// Register the generation's cost-attribution record (qid → statement
	// SQL) before any operator can start reporting. Standing queries are
	// attributed too: their share belongs to them, not to whichever batch
	// statement happened to co-run.
	if e.genCosts != nil {
		qidSQL := make(map[queryset.QueryID]string, nsubs+len(readReqs))
		for i, s := range subs {
			qidSQL[queryset.QueryID(i+1)] = s.stmt.SQL
		}
		for qid, r := range byQID {
			qidSQL[qid] = r.Stmt.SQL
		}
		e.costMu.Lock()
		e.genCosts[gen] = &genCostRec{qidSQL: qidSQL, ns: make(map[string]int64)}
		e.costMu.Unlock()
	}

	e.plan.RunGeneration(gen, ts, acts, delta,
		func(stream int, t operators.Tuple) {
			// Sink callback: runs on the sink goroutine only (one sink cycle
			// at a time, even with generations in flight), so per-request
			// state needs no locking. Routing applies each query's own
			// projection, DISTINCT and LIMIT (the per-query tail of the
			// shared plan).
			for _, qid := range t.QS.IDs() {
				if int(qid) <= nsubs {
					sc := subCols[qid-1]
					stmt := sc.sub.stmt
					if stmt.SinkLimit >= 0 && len(sc.rows) >= stmt.SinkLimit {
						continue
					}
					row := make(types.Row, len(stmt.Project))
					for i, pe := range stmt.Project {
						row[i] = pe.Eval(t.Row, sc.sub.params)
					}
					if stmt.Distinct {
						if sc.distinctSeen == nil {
							sc.distinctSeen = map[string]bool{}
						}
						k := types.EncodeKey(row...)
						if sc.distinctSeen[k] {
							continue
						}
						sc.distinctSeen[k] = true
					}
					sc.rows = append(sc.rows, row)
					continue
				}
				r := byQID[qid]
				if r == nil {
					continue
				}
				res := r.Result
				if r.Stmt.SinkLimit >= 0 && len(res.Rows) >= r.Stmt.SinkLimit {
					continue
				}
				row := make(types.Row, len(r.Stmt.Project))
				for i, pe := range r.Stmt.Project {
					row[i] = pe.Eval(t.Row, r.Params)
				}
				if r.Stmt.Distinct {
					if res.distinctSeen == nil {
						res.distinctSeen = map[string]bool{}
					}
					k := types.EncodeKey(row...)
					if res.distinctSeen[k] {
						continue
					}
					res.distinctSeen[k] = true
				}
				res.Rows = append(res.Rows, row)
			}
		},
		func() {
			e.db.UnpinSnapshot(ts)
			// Subscription deliveries happen on the sink goroutine in
			// generation order (the per-subscription diff state depends on
			// it); a full subscriber channel marks it lagged, never blocks.
			var delivered uint64
			for _, sc := range subCols {
				if sc.sub.deliver(gen, ts, sc.rows) {
					delivered++
				}
			}
			// Every node reported its cost before its EOS propagated, and
			// this callback runs after the sink received every EOS — the
			// record is final; take it out of the live map.
			var costs map[string]int64
			if e.genCosts != nil {
				e.costMu.Lock()
				if rec := e.genCosts[gen]; rec != nil {
					costs = rec.ns
					delete(e.genCosts, gen)
				}
				e.costMu.Unlock()
			}
			e.mu.Lock()
			e.queriesRun += uint64(len(readReqs))
			e.subUpdates += delivered
			if e.adm != nil {
				e.adm.recordGenerationCosts(admStmts, time.Since(admStart), len(batch), costs)
			}
			e.mu.Unlock()
			e.generationDone()
			for _, r := range readReqs {
				r.Result.distinctSeen = nil
				close(r.Result.done)
				if r.fold != nil {
					// Fan the lead's materialized result out to every
					// folded subscriber at the same snapshot.
					r.fold.complete(r.Result)
				}
			}
		},
	)
}

// bindWrite turns a bound write plan plus parameters into a storage op:
// parameters are substituted so the storage layer can resolve targets by
// value (index selection, predicate indexing).
func bindWrite(wp *sql.WritePlan, params []types.Value) (storage.WriteOp, error) {
	switch wp.Kind {
	case sql.WriteInsert:
		row := make(types.Row, len(wp.Values))
		for i, v := range wp.Values {
			row[i] = v.Eval(nil, params)
		}
		return storage.WriteOp{Table: wp.Table, Kind: storage.WInsert, Row: row}, nil
	case sql.WriteUpdate:
		set := make([]storage.ColSet, len(wp.Set))
		for i, sc := range wp.Set {
			set[i] = storage.ColSet{Col: sc.Col, Val: expr.Bind(sc.Val, params)}
		}
		return storage.WriteOp{Table: wp.Table, Kind: storage.WUpdate,
			Pred: expr.Bind(wp.Pred, params), Set: set}, nil
	case sql.WriteDelete:
		return storage.WriteOp{Table: wp.Table, Kind: storage.WDelete,
			Pred: expr.Bind(wp.Pred, params)}, nil
	default:
		return storage.WriteOp{}, fmt.Errorf("core: unknown write kind %d", wp.Kind)
	}
}

// BindWriteForTx exposes write binding for the transaction API.
func BindWriteForTx(wp *sql.WritePlan, params []types.Value) (storage.WriteOp, error) {
	return bindWrite(wp, params)
}
