// Package core implements the SharedDB engine: the batch-oriented execution
// loop that the paper describes as a blood circulation (§3.2): "With every
// heartbeat, tuples are pushed through the global query plan in order to
// process the next generation of queries and updates. While one batch of
// queries and updates is processed, newly arriving queries and updates are
// queued. When the current batch ... has been processed, then the queues
// are emptied in order to form the next batch."
//
// Each generation: (1) the batch's updates are applied in arrival order and
// a new snapshot is published (Crescando semantics), (2) the batch's reads
// run together through the always-on global plan at that snapshot, (3)
// results are routed back to the waiting clients.
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"shareddb/internal/expr"
	"shareddb/internal/operators"
	"shareddb/internal/plan"
	"shareddb/internal/queryset"
	"shareddb/internal/sql"
	"shareddb/internal/storage"
	"shareddb/internal/types"
)

// Config tunes the engine.
type Config struct {
	// Heartbeat is the minimum spacing between generation starts. Zero
	// means the next generation forms as soon as the previous one finishes
	// (the paper's default: "for OLTP workloads, these heartbeats can be
	// frequent, in the order of one second or even less").
	Heartbeat time.Duration
	// MaxBatch caps the number of requests drained into one generation
	// (0 = unlimited).
	MaxBatch int
}

// Engine drives generations over a storage database and a global plan.
type Engine struct {
	db   *storage.Database
	plan *plan.GlobalPlan
	cfg  Config

	mu      sync.Mutex
	cond    *sync.Cond
	pending []*Request
	stopped bool
	gen     uint64
	idle    bool

	// genMu serializes generation execution against plan mutation:
	// Prepare extends the operator DAG, which must not happen while a
	// generation is traversing it.
	genMu sync.Mutex

	loopDone chan struct{}

	// stats
	generations uint64
	queriesRun  uint64
	writesRun   uint64
}

// Request is one enqueued statement execution (or transaction commit).
type Request struct {
	Stmt   *plan.Statement
	Params []types.Value
	Tx     *storage.Tx // non-nil for transaction commits

	Result *Result
}

// Result is the client-visible outcome of a request. Wait blocks until the
// generation that served the request completes.
type Result struct {
	done chan struct{}

	Rows         []types.Row
	Schema       *types.Schema
	RowsAffected int
	Err          error

	distinctSeen map[string]bool
}

// Wait blocks until the result is ready and returns its error.
func (r *Result) Wait() error {
	<-r.done
	return r.Err
}

// Done exposes the completion channel.
func (r *Result) Done() <-chan struct{} { return r.done }

// New creates an engine over db and global plan gp and starts its heartbeat
// loop and the plan's operator goroutines.
func New(db *storage.Database, gp *plan.GlobalPlan, cfg Config) *Engine {
	e := &Engine{db: db, plan: gp, cfg: cfg, loopDone: make(chan struct{})}
	e.cond = sync.NewCond(&e.mu)
	gp.Start()
	go e.loop()
	return e
}

// Close stops the heartbeat loop and the operator goroutines. Pending
// requests are failed.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	e.stopped = true
	pending := e.pending
	e.pending = nil
	e.cond.Broadcast()
	e.mu.Unlock()
	for _, r := range pending {
		r.Result.Err = errors.New("core: engine closed")
		close(r.Result.done)
	}
	<-e.loopDone
	e.plan.Stop()
}

// Stats reports engine counters: generations run, queries served, writes
// applied.
func (e *Engine) Stats() (generations, queries, writes uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.generations, e.queriesRun, e.writesRun
}

// Database returns the underlying storage.
func (e *Engine) Database() *storage.Database { return e.db }

// Plan returns the global plan.
func (e *Engine) Plan() *plan.GlobalPlan { return e.plan }

// Submit enqueues a request for the next generation.
func (e *Engine) Submit(stmt *plan.Statement, params []types.Value) *Result {
	req := &Request{Stmt: stmt, Params: params, Result: &Result{done: make(chan struct{})}}
	e.enqueue(req)
	return req.Result
}

// SubmitTx enqueues a transaction commit for the next generation.
func (e *Engine) SubmitTx(tx *storage.Tx) *Result {
	req := &Request{Tx: tx, Result: &Result{done: make(chan struct{})}}
	e.enqueue(req)
	return req.Result
}

func (e *Engine) enqueue(req *Request) {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		req.Result.Err = errors.New("core: engine closed")
		close(req.Result.done)
		return
	}
	e.pending = append(e.pending, req)
	e.cond.Signal()
	e.mu.Unlock()
}

// loop is the heartbeat: drain the queue, run one generation, repeat.
func (e *Engine) loop() {
	defer close(e.loopDone)
	lastStart := time.Time{}
	for {
		e.mu.Lock()
		for len(e.pending) == 0 && !e.stopped {
			e.idle = true
			e.cond.Wait()
		}
		e.idle = false
		if e.stopped {
			pending := e.pending
			e.pending = nil
			e.mu.Unlock()
			for _, r := range pending {
				r.Result.Err = errors.New("core: engine closed")
				close(r.Result.done)
			}
			return
		}
		// Heartbeat pacing: give late arrivals a chance to join the batch.
		if e.cfg.Heartbeat > 0 {
			if wait := e.cfg.Heartbeat - time.Since(lastStart); wait > 0 {
				e.mu.Unlock()
				time.Sleep(wait)
				e.mu.Lock()
			}
		}
		batch := e.pending
		if e.cfg.MaxBatch > 0 && len(batch) > e.cfg.MaxBatch {
			e.pending = batch[e.cfg.MaxBatch:]
			batch = batch[:e.cfg.MaxBatch]
		} else {
			e.pending = nil
		}
		e.gen++
		gen := e.gen
		e.generations++
		e.mu.Unlock()

		lastStart = time.Now()
		e.genMu.Lock()
		e.runGeneration(gen, batch)
		e.genMu.Unlock()
	}
}

// Prepare registers a statement in the global plan. Registration happens
// between generations (the plan is mutated), which is also how ad-hoc
// queries join the always-on plan at runtime (§3.2).
func (e *Engine) Prepare(sqlText string) (*plan.Statement, error) {
	e.genMu.Lock()
	defer e.genMu.Unlock()
	return e.plan.Prepare(sqlText)
}

// runGeneration executes one batch of queries and updates.
func (e *Engine) runGeneration(gen uint64, batch []*Request) {
	// Phase 1: writes, in arrival order. Standalone write statements apply
	// with Crescando semantics (later ops see earlier ones); transaction
	// commits follow with snapshot-isolation validation.
	var writeReqs []*Request
	var writeOps []storage.WriteOp
	var txReqs []*Request
	var txs []*storage.Tx
	var readReqs []*Request

	for _, r := range batch {
		switch {
		case r.Tx != nil:
			txReqs = append(txReqs, r)
			txs = append(txs, r.Tx)
		case r.Stmt != nil && r.Stmt.IsWrite():
			op, err := bindWrite(r.Stmt.Write, r.Params)
			if err != nil {
				r.Result.Err = err
				close(r.Result.done)
				continue
			}
			writeReqs = append(writeReqs, r)
			writeOps = append(writeOps, op)
		default:
			readReqs = append(readReqs, r)
		}
	}

	if len(writeOps) > 0 {
		results, _ := e.db.ApplyOps(writeOps)
		for i, res := range results {
			writeReqs[i].Result.RowsAffected = res.RowsAffected
			writeReqs[i].Result.Err = res.Err
			close(writeReqs[i].Result.done)
		}
		e.mu.Lock()
		e.writesRun += uint64(len(writeOps))
		e.mu.Unlock()
	}
	if len(txs) > 0 {
		_, errs := e.db.CommitTxBatch(txs)
		for i, err := range errs {
			txReqs[i].Result.Err = err
			close(txReqs[i].Result.done)
		}
		e.mu.Lock()
		e.writesRun += uint64(len(txs))
		e.mu.Unlock()
	}

	// Phase 2: reads at the post-write snapshot.
	if len(readReqs) == 0 {
		return
	}
	ts := e.db.SnapshotTS()
	acts := make([]plan.Activation, len(readReqs))
	byQID := make(map[queryset.QueryID]*Request, len(readReqs))
	for i, r := range readReqs {
		qid := queryset.QueryID(i + 1) // generation-scoped ids keep sets small
		acts[i] = plan.Activation{QID: qid, Stmt: r.Stmt, Params: r.Params}
		byQID[qid] = r
		r.Result.Schema = r.Stmt.OutSchema
	}

	done := make(chan struct{})
	e.plan.RunGeneration(gen, ts, acts,
		func(stream int, t operators.Tuple) {
			// Sink callback: runs on the sink goroutine only, so per-request
			// state needs no locking. Routing applies each query's own
			// projection, DISTINCT and LIMIT (the per-query tail of the
			// shared plan).
			for _, qid := range t.QS.IDs() {
				r := byQID[qid]
				if r == nil {
					continue
				}
				res := r.Result
				if r.Stmt.SinkLimit >= 0 && len(res.Rows) >= r.Stmt.SinkLimit {
					continue
				}
				row := make(types.Row, len(r.Stmt.Project))
				for i, pe := range r.Stmt.Project {
					row[i] = pe.Eval(t.Row, r.Params)
				}
				if r.Stmt.Distinct {
					if res.distinctSeen == nil {
						res.distinctSeen = map[string]bool{}
					}
					k := types.EncodeKey(row...)
					if res.distinctSeen[k] {
						continue
					}
					res.distinctSeen[k] = true
				}
				res.Rows = append(res.Rows, row)
			}
		},
		func() { close(done) },
	)
	<-done
	for _, r := range readReqs {
		r.Result.distinctSeen = nil
		close(r.Result.done)
	}
	e.mu.Lock()
	e.queriesRun += uint64(len(readReqs))
	e.mu.Unlock()
}

// bindWrite turns a bound write plan plus parameters into a storage op:
// parameters are substituted so the storage layer can resolve targets by
// value (index selection, predicate indexing).
func bindWrite(wp *sql.WritePlan, params []types.Value) (storage.WriteOp, error) {
	switch wp.Kind {
	case sql.WriteInsert:
		row := make(types.Row, len(wp.Values))
		for i, v := range wp.Values {
			row[i] = v.Eval(nil, params)
		}
		return storage.WriteOp{Table: wp.Table, Kind: storage.WInsert, Row: row}, nil
	case sql.WriteUpdate:
		set := make([]storage.ColSet, len(wp.Set))
		for i, sc := range wp.Set {
			set[i] = storage.ColSet{Col: sc.Col, Val: expr.Bind(sc.Val, params)}
		}
		return storage.WriteOp{Table: wp.Table, Kind: storage.WUpdate,
			Pred: expr.Bind(wp.Pred, params), Set: set}, nil
	case sql.WriteDelete:
		return storage.WriteOp{Table: wp.Table, Kind: storage.WDelete,
			Pred: expr.Bind(wp.Pred, params)}, nil
	default:
		return storage.WriteOp{}, fmt.Errorf("core: unknown write kind %d", wp.Kind)
	}
}

// BindWriteForTx exposes write binding for the transaction API.
func BindWriteForTx(wp *sql.WritePlan, params []types.Value) (storage.WriteOp, error) {
	return bindWrite(wp, params)
}
