package expr

import (
	"testing"
	"testing/quick"

	"shareddb/internal/types"
)

func col(i int) Expr               { return &ColRef{Idx: i} }
func lit(v types.Value) Expr       { return &Const{Val: v} }
func intv(i int64) types.Value     { return types.NewInt(i) }
func strv(s string) types.Value    { return types.NewString(s) }
func cmp(op CmpOp, l, r Expr) Expr { return &Cmp{Op: op, L: l, R: r} }

var row = types.Row{intv(10), strv("hello"), types.NewFloat(2.5), types.Null}

func TestCmpEval(t *testing.T) {
	tests := []struct {
		e    Expr
		want bool
	}{
		{cmp(EQ, col(0), lit(intv(10))), true},
		{cmp(NE, col(0), lit(intv(10))), false},
		{cmp(LT, col(0), lit(intv(11))), true},
		{cmp(GE, col(0), lit(intv(10))), true},
		{cmp(GT, col(2), lit(intv(2))), true},
		{cmp(EQ, col(1), lit(strv("hello"))), true},
		{cmp(LE, col(0), lit(types.NewFloat(10.0))), true},
	}
	for _, tt := range tests {
		if got := TruthyEval(tt.e, row, nil); got != tt.want {
			t.Errorf("%s = %v, want %v", tt.e, got, tt.want)
		}
	}
}

func TestNullPropagation(t *testing.T) {
	e := cmp(EQ, col(3), lit(intv(1)))
	if !e.Eval(row, nil).IsNull() {
		t.Error("NULL = 1 should be NULL")
	}
	if TruthyEval(e, row, nil) {
		t.Error("NULL predicate should be falsy")
	}
	isn := &IsNull{Kid: col(3)}
	if !TruthyEval(isn, row, nil) {
		t.Error("IS NULL failed")
	}
	notn := &IsNull{Kid: col(0), Negate: true}
	if !TruthyEval(notn, row, nil) {
		t.Error("IS NOT NULL failed")
	}
	// AND: false dominates NULL; OR: true dominates NULL
	f := lit(types.NewBool(false))
	tr := lit(types.NewBool(true))
	nl := col(3)
	if v := (&And{Kids: []Expr{f, nl}}).Eval(row, nil); v.IsNull() || v.AsBool() {
		t.Error("false AND NULL should be false")
	}
	if v := (&And{Kids: []Expr{tr, nl}}).Eval(row, nil); !v.IsNull() {
		t.Error("true AND NULL should be NULL")
	}
	if v := (&Or{Kids: []Expr{tr, nl}}).Eval(row, nil); v.IsNull() || !v.AsBool() {
		t.Error("true OR NULL should be true")
	}
	if v := (&Or{Kids: []Expr{f, nl}}).Eval(row, nil); !v.IsNull() {
		t.Error("false OR NULL should be NULL")
	}
}

func TestLogicAndNot(t *testing.T) {
	tr := cmp(EQ, col(0), lit(intv(10)))
	fa := cmp(EQ, col(0), lit(intv(11)))
	if !TruthyEval(&And{Kids: []Expr{tr, tr}}, row, nil) {
		t.Error("true AND true")
	}
	if TruthyEval(&And{Kids: []Expr{tr, fa}}, row, nil) {
		t.Error("true AND false")
	}
	if !TruthyEval(&Or{Kids: []Expr{fa, tr}}, row, nil) {
		t.Error("false OR true")
	}
	if TruthyEval(&Not{Kid: tr}, row, nil) {
		t.Error("NOT true")
	}
}

func TestArith(t *testing.T) {
	tests := []struct {
		op   ArithOp
		l, r types.Value
		want types.Value
	}{
		{Add, intv(2), intv(3), intv(5)},
		{Sub, intv(2), intv(3), intv(-1)},
		{Mul, intv(4), intv(3), intv(12)},
		{Div, intv(6), intv(3), intv(2)},
		{Div, intv(7), intv(2), types.NewFloat(3.5)},
		{Div, intv(7), intv(0), types.Null},
		{Mod, intv(7), intv(3), intv(1)},
		{Add, types.NewFloat(1.5), intv(1), types.NewFloat(2.5)},
	}
	for _, tt := range tests {
		got := (&Arith{Op: tt.op, L: lit(tt.l), R: lit(tt.r)}).Eval(nil, nil)
		if got.Kind() != tt.want.Kind() || !got.Equal(tt.want) && !tt.want.IsNull() {
			t.Errorf("%v %v %v = %v, want %v", tt.l, tt.op, tt.r, got, tt.want)
		}
	}
}

func TestParamAndBind(t *testing.T) {
	e := cmp(EQ, col(0), &Param{Idx: 0})
	params := []types.Value{intv(10)}
	if !TruthyEval(e, row, params) {
		t.Error("param eval failed")
	}
	bound := Bind(e, params)
	if !TruthyEval(bound, row, nil) {
		t.Error("bound expr should not need params")
	}
	// out-of-range param is NULL
	if !(&Param{Idx: 5}).Eval(nil, nil).IsNull() {
		t.Error("out-of-range param should be NULL")
	}
}

func TestIn(t *testing.T) {
	e := &In{L: col(0), List: []Expr{lit(intv(1)), lit(intv(10))}}
	if !TruthyEval(e, row, nil) {
		t.Error("IN failed")
	}
	n := &In{L: col(0), List: []Expr{lit(intv(1))}, Negate: true}
	if !TruthyEval(n, row, nil) {
		t.Error("NOT IN failed")
	}
}

func TestLike(t *testing.T) {
	tests := []struct {
		pattern, s string
		want       bool
	}{
		{"hello", "hello", true},
		{"hello", "hell", false},
		{"hel%", "hello", true},
		{"%llo", "hello", true},
		{"%ell%", "hello", true},
		{"%ell%", "help", false},
		{"h_llo", "hello", true},
		{"h_llo", "hallo", true},
		{"h_llo", "hllo", false},
		{"%", "", true},
		{"%", "anything", true},
		{"", "", true},
		{"", "x", false},
		{"a%b%c", "aXXbYYc", true},
		{"a%b%c", "acb", false},
		{"_%_", "ab", true},
		{"_%_", "a", false},
	}
	for _, tt := range tests {
		if got := MatchLike(tt.pattern, tt.s); got != tt.want {
			t.Errorf("MatchLike(%q, %q) = %v, want %v", tt.pattern, tt.s, got, tt.want)
		}
	}
	e := &Like{L: col(1), Pattern: lit(strv("he%"))}
	if !TruthyEval(e, row, nil) {
		t.Error("Like expr failed")
	}
	// re-evaluate with same compiled pattern (cache hit path)
	if !TruthyEval(e, row, nil) {
		t.Error("Like cache failed")
	}
	ne := &Like{L: col(1), Pattern: lit(strv("xx%")), Negate: true}
	if !TruthyEval(ne, row, nil) {
		t.Error("NOT LIKE failed")
	}
}

func TestConjuncts(t *testing.T) {
	a := cmp(EQ, col(0), lit(intv(1)))
	b := cmp(EQ, col(1), lit(strv("x")))
	c := cmp(GT, col(2), lit(intv(0)))
	e := &And{Kids: []Expr{a, &And{Kids: []Expr{b, c}}}}
	cs := Conjuncts(e)
	if len(cs) != 3 {
		t.Fatalf("Conjuncts len = %d, want 3", len(cs))
	}
	if Conjuncts(nil) != nil {
		t.Error("Conjuncts(nil) should be nil")
	}
	if AndOf(nil) != nil {
		t.Error("AndOf(nil)")
	}
	if AndOf([]Expr{a}) != a {
		t.Error("AndOf singleton")
	}
	if _, ok := AndOf(cs).(*And); !ok {
		t.Error("AndOf multi")
	}
}

func TestEqualityAndRangeMatch(t *testing.T) {
	e := cmp(EQ, col(2), lit(intv(5)))
	colIdx, v, ok := EqualityMatch(e)
	if !ok || colIdx != 2 || v.AsInt() != 5 {
		t.Errorf("EqualityMatch = %d, %v, %v", colIdx, v, ok)
	}
	// reversed operands
	e2 := cmp(EQ, lit(intv(5)), col(2))
	if _, _, ok := EqualityMatch(e2); !ok {
		t.Error("reversed equality not matched")
	}
	if _, _, ok := EqualityMatch(cmp(GT, col(0), lit(intv(1)))); ok {
		t.Error("GT should not match equality")
	}

	r, ok := RangeMatch(cmp(GT, col(1), lit(intv(7))))
	if !ok || r.Col != 1 || r.Lo.AsInt() != 7 || r.LoIncl || !r.Hi.IsNull() {
		t.Errorf("RangeMatch GT = %+v", r)
	}
	r, ok = RangeMatch(cmp(LE, col(1), lit(intv(7))))
	if !ok || !r.HiIncl || r.Hi.AsInt() != 7 {
		t.Errorf("RangeMatch LE = %+v", r)
	}
	// flipped: 7 < col means col > 7
	r, ok = RangeMatch(cmp(LT, lit(intv(7)), col(1)))
	if !ok || r.Lo.AsInt() != 7 || r.LoIncl {
		t.Errorf("flipped RangeMatch = %+v", r)
	}
	if !r.Contains(intv(8)) || r.Contains(intv(7)) || r.Contains(types.Null) {
		t.Error("Range.Contains wrong")
	}
}

func TestColumnsAndRemap(t *testing.T) {
	e := &And{Kids: []Expr{
		cmp(EQ, col(0), lit(intv(1))),
		&Like{L: col(2), Pattern: lit(strv("%x%"))},
	}}
	cols := Columns(e)
	if !cols[0] || !cols[2] || cols[1] {
		t.Errorf("Columns = %v", cols)
	}
	re := Remap(e, map[int]int{0: 5, 2: 6})
	cols = Columns(re)
	if !cols[5] || !cols[6] || cols[0] {
		t.Errorf("Remapped columns = %v", cols)
	}
}

func TestCmpOpHelpers(t *testing.T) {
	if EQ.Negate() != NE || LT.Negate() != GE || GT.Negate() != LE {
		t.Error("Negate wrong")
	}
	if LT.Flip() != GT || LE.Flip() != GE || EQ.Flip() != EQ {
		t.Error("Flip wrong")
	}
}

func TestSelectivityOrdering(t *testing.T) {
	eq := cmp(EQ, col(0), lit(intv(1)))
	rng := cmp(GT, col(0), lit(intv(1)))
	if Selectivity(eq) >= Selectivity(rng) {
		t.Error("equality should be more selective than range")
	}
	if Selectivity(nil) != 1.0 {
		t.Error("nil predicate selects everything")
	}
	and := &And{Kids: []Expr{eq, rng}}
	if Selectivity(and) >= Selectivity(eq) {
		t.Error("AND should narrow")
	}
	or := &Or{Kids: []Expr{eq, rng}}
	if Selectivity(or) <= Selectivity(rng) {
		t.Error("OR should widen")
	}
}

// Property: LIKE with a pattern equal to the string (no wildcards) always
// matches, and '%'+s+'%' always matches any superstring.
func TestLikeProperty(t *testing.T) {
	f := func(s, pre, post string) bool {
		if len(s) > 50 || len(pre) > 20 || len(post) > 20 {
			return true
		}
		clean := func(x string) string {
			out := []byte{}
			for i := 0; i < len(x); i++ {
				if x[i] != '%' && x[i] != '_' {
					out = append(out, x[i])
				}
			}
			return string(out)
		}
		cs := clean(s)
		return MatchLike(cs, cs) && MatchLike("%"+cs+"%", clean(pre)+cs+clean(post))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Bind(e, params) evaluated without params equals e evaluated with
// params, for a family of random comparison predicates.
func TestBindEquivalenceProperty(t *testing.T) {
	f := func(x, p int64, opIdx uint8) bool {
		op := CmpOp(opIdx % 6)
		e := cmp(op, col(0), &Param{Idx: 0})
		r := types.Row{intv(x)}
		params := []types.Value{intv(p)}
		return TruthyEval(e, r, params) == TruthyEval(Bind(e, params), r, nil)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
