package expr

import (
	"math"

	"shareddb/internal/types"
)

// This file contains predicate analysis used by (a) the Crescando storage
// manager's ClockScan, which indexes query predicates instead of data
// (paper §4.4), and (b) index/access-path selection in both engines.

// Conjuncts flattens nested ANDs into a list of conjuncts. A nil expression
// yields an empty list.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if a, ok := e.(*And); ok {
		var out []Expr
		for _, k := range a.Kids {
			out = append(out, Conjuncts(k)...)
		}
		return out
	}
	return []Expr{e}
}

// AndOf rebuilds a conjunction from parts (nil for empty, the sole element
// for singletons).
func AndOf(parts []Expr) Expr {
	switch len(parts) {
	case 0:
		return nil
	case 1:
		return parts[0]
	default:
		return &And{Kids: parts}
	}
}

// Bind returns a copy of e with every Param node replaced by the
// corresponding constant from params. The engine binds predicates at query
// activation time so that the storage layer can index them by value.
func Bind(e Expr, params []types.Value) Expr {
	if e == nil {
		return nil
	}
	switch n := e.(type) {
	case *ColRef, *Const:
		return e
	case *Param:
		return &Const{Val: n.Eval(nil, params)}
	case *Cmp:
		return &Cmp{Op: n.Op, L: Bind(n.L, params), R: Bind(n.R, params)}
	case *And:
		kids := make([]Expr, len(n.Kids))
		for i, k := range n.Kids {
			kids[i] = Bind(k, params)
		}
		return &And{Kids: kids}
	case *Or:
		kids := make([]Expr, len(n.Kids))
		for i, k := range n.Kids {
			kids[i] = Bind(k, params)
		}
		return &Or{Kids: kids}
	case *Not:
		return &Not{Kid: Bind(n.Kid, params)}
	case *Arith:
		return &Arith{Op: n.Op, L: Bind(n.L, params), R: Bind(n.R, params)}
	case *IsNull:
		return &IsNull{Kid: Bind(n.Kid, params), Negate: n.Negate}
	case *In:
		list := make([]Expr, len(n.List))
		for i, k := range n.List {
			list[i] = Bind(k, params)
		}
		return &In{L: Bind(n.L, params), List: list, Negate: n.Negate}
	case *Like:
		return &Like{L: Bind(n.L, params), Pattern: Bind(n.Pattern, params), Negate: n.Negate}
	default:
		return e
	}
}

// EqualityMatch recognizes a bound conjunct of the form col = const (or
// const = col) and returns the column index and constant.
func EqualityMatch(e Expr) (col int, val types.Value, ok bool) {
	c, isCmp := e.(*Cmp)
	if !isCmp || c.Op != EQ {
		return 0, types.Null, false
	}
	if cr, o := c.L.(*ColRef); o {
		if k, o2 := c.R.(*Const); o2 {
			return cr.Idx, k.Val, true
		}
	}
	if cr, o := c.R.(*ColRef); o {
		if k, o2 := c.L.(*Const); o2 {
			return cr.Idx, k.Val, true
		}
	}
	return 0, types.Null, false
}

// Range is a (possibly half-open) interval constraint on a column.
type Range struct {
	Col    int
	Lo, Hi types.Value // Null = unbounded
	LoIncl bool
	HiIncl bool
}

// Contains reports whether v lies within the range.
func (r Range) Contains(v types.Value) bool {
	if v.IsNull() {
		return false
	}
	if !r.Lo.IsNull() {
		d := v.Compare(r.Lo)
		if d < 0 || (d == 0 && !r.LoIncl) {
			return false
		}
	}
	if !r.Hi.IsNull() {
		d := v.Compare(r.Hi)
		if d > 0 || (d == 0 && !r.HiIncl) {
			return false
		}
	}
	return true
}

// RangeMatch recognizes a bound conjunct constraining a column by an
// inequality against a constant and returns it as a Range.
func RangeMatch(e Expr) (Range, bool) {
	c, isCmp := e.(*Cmp)
	if !isCmp {
		return Range{}, false
	}
	op := c.Op
	var colIdx int
	var k types.Value
	if cr, o := c.L.(*ColRef); o {
		cst, o2 := c.R.(*Const)
		if !o2 {
			return Range{}, false
		}
		colIdx, k = cr.Idx, cst.Val
	} else if cr, o := c.R.(*ColRef); o {
		cst, o2 := c.L.(*Const)
		if !o2 {
			return Range{}, false
		}
		colIdx, k = cr.Idx, cst.Val
		op = op.Flip()
	} else {
		return Range{}, false
	}
	switch op {
	case EQ:
		return Range{Col: colIdx, Lo: k, Hi: k, LoIncl: true, HiIncl: true}, true
	case LT:
		return Range{Col: colIdx, Hi: k}, true
	case LE:
		return Range{Col: colIdx, Hi: k, HiIncl: true}, true
	case GT:
		return Range{Col: colIdx, Lo: k}, true
	case GE:
		return Range{Col: colIdx, Lo: k, LoIncl: true}, true
	default:
		return Range{}, false
	}
}

// Columns returns the set of column indices referenced by e.
func Columns(e Expr) map[int]bool {
	out := map[int]bool{}
	var walk func(Expr)
	walk = func(e Expr) {
		if e == nil {
			return
		}
		switch n := e.(type) {
		case *ColRef:
			out[n.Idx] = true
		case *Cmp:
			walk(n.L)
			walk(n.R)
		case *And:
			for _, k := range n.Kids {
				walk(k)
			}
		case *Or:
			for _, k := range n.Kids {
				walk(k)
			}
		case *Not:
			walk(n.Kid)
		case *Arith:
			walk(n.L)
			walk(n.R)
		case *IsNull:
			walk(n.Kid)
		case *In:
			walk(n.L)
			for _, k := range n.List {
				walk(k)
			}
		case *Like:
			walk(n.L)
			walk(n.Pattern)
		}
	}
	walk(e)
	return out
}

// Remap returns a copy of e with every column index translated through
// mapping (old index → new index). Used when predicates are pushed through
// projections and joins. Unmapped columns panic: the planner must only
// remap predicates it proved moveable.
func Remap(e Expr, mapping map[int]int) Expr {
	if e == nil {
		return nil
	}
	switch n := e.(type) {
	case *ColRef:
		idx, ok := mapping[n.Idx]
		if !ok {
			panic("expr: Remap with incomplete mapping")
		}
		return &ColRef{Idx: idx, Name: n.Name}
	case *Const, *Param:
		return e
	case *Cmp:
		return &Cmp{Op: n.Op, L: Remap(n.L, mapping), R: Remap(n.R, mapping)}
	case *And:
		kids := make([]Expr, len(n.Kids))
		for i, k := range n.Kids {
			kids[i] = Remap(k, mapping)
		}
		return &And{Kids: kids}
	case *Or:
		kids := make([]Expr, len(n.Kids))
		for i, k := range n.Kids {
			kids[i] = Remap(k, mapping)
		}
		return &Or{Kids: kids}
	case *Not:
		return &Not{Kid: Remap(n.Kid, mapping)}
	case *Arith:
		return &Arith{Op: n.Op, L: Remap(n.L, mapping), R: Remap(n.R, mapping)}
	case *IsNull:
		return &IsNull{Kid: Remap(n.Kid, mapping), Negate: n.Negate}
	case *In:
		list := make([]Expr, len(n.List))
		for i, k := range n.List {
			list[i] = Remap(k, mapping)
		}
		return &In{L: Remap(n.L, mapping), List: list, Negate: n.Negate}
	case *Like:
		return &Like{L: Remap(n.L, mapping), Pattern: Remap(n.Pattern, mapping), Negate: n.Negate}
	default:
		return e
	}
}

// Selectivity crudely estimates the fraction of rows satisfying a bound
// predicate. It is intentionally simple (System-R style magic numbers); the
// baseline optimizer only needs relative ordering of access paths.
func Selectivity(e Expr) float64 {
	if e == nil {
		return 1.0
	}
	switch n := e.(type) {
	case *Cmp:
		switch n.Op {
		case EQ:
			return 0.005
		case NE:
			return 0.995
		default:
			return 0.3
		}
	case *And:
		s := 1.0
		for _, k := range n.Kids {
			s *= Selectivity(k)
		}
		return s
	case *Or:
		s := 1.0
		for _, k := range n.Kids {
			s *= 1 - Selectivity(k)
		}
		return 1 - s
	case *Not:
		return 1 - Selectivity(n.Kid)
	case *Like:
		return 0.05
	case *In:
		return math.Min(1.0, 0.005*float64(len(n.List)))
	case *IsNull:
		return 0.02
	default:
		return 0.5
	}
}
