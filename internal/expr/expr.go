// Package expr provides bound scalar expressions: predicates and arithmetic
// evaluated over tuples. Expressions are produced by the SQL planner (column
// references already resolved to schema indices) and consumed by storage
// scans, shared operators and the query-at-a-time baseline.
//
// Evaluation is total: type errors and division by zero yield SQL NULL
// rather than runtime errors, matching SQL three-valued semantics closely
// enough for the workloads in this repository.
package expr

import (
	"fmt"
	"strings"

	"shareddb/internal/types"
)

// Expr is a scalar expression over a row. Params carries the positional
// arguments of the prepared statement being evaluated (may be nil when the
// expression contains no Param nodes).
type Expr interface {
	Eval(row types.Row, params []types.Value) types.Value
	String() string
}

// ColRef references a column of the input row by position.
type ColRef struct {
	Idx  int
	Name string // display name, informational only
}

// Eval returns the referenced column value.
func (c *ColRef) Eval(row types.Row, _ []types.Value) types.Value { return row[c.Idx] }

func (c *ColRef) String() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("$%d", c.Idx)
}

// Const is a literal value.
type Const struct{ Val types.Value }

// Eval returns the literal.
func (c *Const) Eval(types.Row, []types.Value) types.Value { return c.Val }

func (c *Const) String() string {
	if c.Val.Kind() == types.KindString {
		return "'" + c.Val.Str + "'"
	}
	return c.Val.String()
}

// Param references the i-th positional parameter ('?') of a prepared
// statement.
type Param struct{ Idx int }

// Eval returns the bound parameter value (NULL when out of range).
func (p *Param) Eval(_ types.Row, params []types.Value) types.Value {
	if p.Idx < 0 || p.Idx >= len(params) {
		return types.Null
	}
	return params[p.Idx]
}

func (p *Param) String() string { return fmt.Sprintf("?%d", p.Idx) }

// CmpOp enumerates comparison operators.
type CmpOp uint8

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

func (o CmpOp) String() string {
	switch o {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	}
	return "?"
}

// Negate returns the complementary operator (= ↔ <>, < ↔ >=, …).
func (o CmpOp) Negate() CmpOp {
	switch o {
	case EQ:
		return NE
	case NE:
		return EQ
	case LT:
		return GE
	case LE:
		return GT
	case GT:
		return LE
	case GE:
		return LT
	}
	return o
}

// Flip returns the operator with operands swapped (< ↔ >, <= ↔ >=).
func (o CmpOp) Flip() CmpOp {
	switch o {
	case LT:
		return GT
	case LE:
		return GE
	case GT:
		return LT
	case GE:
		return LE
	}
	return o
}

// Cmp compares two sub-expressions. NULL operands yield NULL (which is
// falsy).
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Eval applies the comparison with SQL NULL propagation.
func (c *Cmp) Eval(row types.Row, params []types.Value) types.Value {
	l := c.L.Eval(row, params)
	r := c.R.Eval(row, params)
	if l.IsNull() || r.IsNull() {
		return types.Null
	}
	d := l.Compare(r)
	var ok bool
	switch c.Op {
	case EQ:
		ok = d == 0
	case NE:
		ok = d != 0
	case LT:
		ok = d < 0
	case LE:
		ok = d <= 0
	case GT:
		ok = d > 0
	case GE:
		ok = d >= 0
	}
	return types.NewBool(ok)
}

func (c *Cmp) String() string {
	return fmt.Sprintf("(%s %s %s)", c.L, c.Op, c.R)
}

// And is an n-ary conjunction with short-circuit evaluation.
type And struct{ Kids []Expr }

// Eval returns false as soon as any conjunct is false; NULL if any conjunct
// is NULL and none is false.
func (a *And) Eval(row types.Row, params []types.Value) types.Value {
	sawNull := false
	for _, k := range a.Kids {
		v := k.Eval(row, params)
		if v.IsNull() {
			sawNull = true
			continue
		}
		if !v.AsBool() {
			return types.NewBool(false)
		}
	}
	if sawNull {
		return types.Null
	}
	return types.NewBool(true)
}

func (a *And) String() string { return joinKids(" AND ", a.Kids) }

// Or is an n-ary disjunction with short-circuit evaluation.
type Or struct{ Kids []Expr }

// Eval returns true as soon as any disjunct is true.
func (o *Or) Eval(row types.Row, params []types.Value) types.Value {
	sawNull := false
	for _, k := range o.Kids {
		v := k.Eval(row, params)
		if v.IsNull() {
			sawNull = true
			continue
		}
		if v.AsBool() {
			return types.NewBool(true)
		}
	}
	if sawNull {
		return types.Null
	}
	return types.NewBool(false)
}

func (o *Or) String() string { return joinKids(" OR ", o.Kids) }

func joinKids(sep string, kids []Expr) string {
	parts := make([]string, len(kids))
	for i, k := range kids {
		parts[i] = k.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

// Not negates a boolean sub-expression (NULL stays NULL).
type Not struct{ Kid Expr }

// Eval negates the child.
func (n *Not) Eval(row types.Row, params []types.Value) types.Value {
	v := n.Kid.Eval(row, params)
	if v.IsNull() {
		return types.Null
	}
	return types.NewBool(!v.AsBool())
}

func (n *Not) String() string { return "NOT " + n.Kid.String() }

// ArithOp enumerates arithmetic operators.
type ArithOp uint8

// Arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
	Mod
)

func (o ArithOp) String() string { return [...]string{"+", "-", "*", "/", "%"}[o] }

// Arith applies binary arithmetic. INT op INT stays INT (except /, which
// promotes to FLOAT when inexact); any FLOAT operand promotes to FLOAT.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// Eval computes the arithmetic result with NULL propagation.
func (a *Arith) Eval(row types.Row, params []types.Value) types.Value {
	l := a.L.Eval(row, params)
	r := a.R.Eval(row, params)
	if l.IsNull() || r.IsNull() {
		return types.Null
	}
	if l.Kind() == types.KindFloat || r.Kind() == types.KindFloat {
		x, y := l.AsFloat(), r.AsFloat()
		switch a.Op {
		case Add:
			return types.NewFloat(x + y)
		case Sub:
			return types.NewFloat(x - y)
		case Mul:
			return types.NewFloat(x * y)
		case Div:
			if y == 0 {
				return types.Null
			}
			return types.NewFloat(x / y)
		case Mod:
			if y == 0 {
				return types.Null
			}
			return types.NewFloat(float64(int64(x) % int64(y)))
		}
	}
	x, y := l.AsInt(), r.AsInt()
	switch a.Op {
	case Add:
		return types.NewInt(x + y)
	case Sub:
		return types.NewInt(x - y)
	case Mul:
		return types.NewInt(x * y)
	case Div:
		if y == 0 {
			return types.Null
		}
		if x%y == 0 {
			return types.NewInt(x / y)
		}
		return types.NewFloat(float64(x) / float64(y))
	case Mod:
		if y == 0 {
			return types.Null
		}
		return types.NewInt(x % y)
	}
	return types.Null
}

func (a *Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R)
}

// IsNull tests a sub-expression for (non-)NULLness.
type IsNull struct {
	Kid    Expr
	Negate bool // IS NOT NULL
}

// Eval returns the NULL test result (never NULL itself).
func (n *IsNull) Eval(row types.Row, params []types.Value) types.Value {
	isNull := n.Kid.Eval(row, params).IsNull()
	if n.Negate {
		return types.NewBool(!isNull)
	}
	return types.NewBool(isNull)
}

func (n *IsNull) String() string {
	if n.Negate {
		return n.Kid.String() + " IS NOT NULL"
	}
	return n.Kid.String() + " IS NULL"
}

// In tests membership of the left expression in a literal list.
type In struct {
	L      Expr
	List   []Expr
	Negate bool
}

// Eval applies the membership test with NULL propagation.
func (in *In) Eval(row types.Row, params []types.Value) types.Value {
	l := in.L.Eval(row, params)
	if l.IsNull() {
		return types.Null
	}
	found := false
	for _, e := range in.List {
		if l.Equal(e.Eval(row, params)) {
			found = true
			break
		}
	}
	if in.Negate {
		return types.NewBool(!found)
	}
	return types.NewBool(found)
}

func (in *In) String() string {
	op := " IN "
	if in.Negate {
		op = " NOT IN "
	}
	return in.L.String() + op + joinKids(", ", in.List)
}

// TruthyEval evaluates e as a predicate: NULL counts as false.
func TruthyEval(e Expr, row types.Row, params []types.Value) bool {
	if e == nil {
		return true
	}
	v := e.Eval(row, params)
	return !v.IsNull() && v.AsBool()
}
