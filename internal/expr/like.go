package expr

import (
	"strings"
	"sync"

	"shareddb/internal/types"
)

// Like implements the SQL LIKE operator with '%' (any run) and '_' (any one
// character) wildcards. TPC-W search statements ("search item by title /
// author / subject") are LIKE-heavy, and the paper's global plan (Figure 6)
// contains dedicated "Like Expression" operators, so the matcher is
// optimized: constant patterns are compiled once, and pure prefix/suffix/
// contains patterns avoid the general matcher entirely.
type Like struct {
	L       Expr
	Pattern Expr
	Negate  bool

	mu       sync.Mutex
	compiled *likeMatcher
	pattern  string
}

type likeKind uint8

const (
	likeGeneral  likeKind = iota
	likeExact             // no wildcards
	likePrefix            // abc%
	likeSuffix            // %abc
	likeContains          // %abc%
)

type likeMatcher struct {
	kind    likeKind
	needle  string
	pattern string
}

// classifyLike picks the specialized matcher kind for a pattern. For the
// specialized kinds the returned needle is the wildcard-stripped literal;
// for likeGeneral it is the full pattern (fed to the general matcher).
func classifyLike(pattern string) (likeKind, string) {
	hasUnderscore := strings.ContainsRune(pattern, '_')
	if !hasUnderscore {
		switch {
		case !strings.Contains(pattern, "%"):
			return likeExact, pattern
		case strings.Count(pattern, "%") == 1 && strings.HasSuffix(pattern, "%"):
			return likePrefix, pattern[:len(pattern)-1]
		case strings.Count(pattern, "%") == 1 && strings.HasPrefix(pattern, "%"):
			return likeSuffix, pattern[1:]
		case strings.Count(pattern, "%") == 2 && strings.HasPrefix(pattern, "%") && strings.HasSuffix(pattern, "%") && len(pattern) >= 2:
			return likeContains, pattern[1 : len(pattern)-1]
		}
	}
	return likeGeneral, pattern
}

func compileLike(pattern string) *likeMatcher {
	kind, needle := classifyLike(pattern)
	if kind == likeGeneral {
		return &likeMatcher{kind: likeGeneral, pattern: pattern}
	}
	return &likeMatcher{kind: kind, needle: needle}
}

func (m *likeMatcher) match(s string) bool {
	switch m.kind {
	case likeExact:
		return s == m.needle
	case likePrefix:
		return strings.HasPrefix(s, m.needle)
	case likeSuffix:
		return strings.HasSuffix(s, m.needle)
	case likeContains:
		return strings.Contains(s, m.needle)
	default:
		return likeMatch(m.pattern, s)
	}
}

// likeMatch is the general wildcard matcher: iterative two-pointer with
// backtracking on the last '%' (the classic glob algorithm, O(n·m) worst
// case, linear in practice).
func likeMatch(pattern, s string) bool {
	var pi, si int
	star, mark := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			pi++
			si++
		case pi < len(pattern) && pattern[pi] == '%':
			star = pi
			mark = si
			pi++
		case star >= 0:
			pi = star + 1
			mark++
			si = mark
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

// Eval applies the LIKE test with NULL propagation.
func (l *Like) Eval(row types.Row, params []types.Value) types.Value {
	lv := l.L.Eval(row, params)
	pv := l.Pattern.Eval(row, params)
	if lv.IsNull() || pv.IsNull() {
		return types.Null
	}
	pat := pv.AsString()

	l.mu.Lock()
	if l.compiled == nil || l.pattern != pat {
		l.compiled = compileLike(pat)
		l.pattern = pat
	}
	m := l.compiled
	l.mu.Unlock()

	ok := m.match(lv.AsString())
	if l.Negate {
		ok = !ok
	}
	return types.NewBool(ok)
}

func (l *Like) String() string {
	op := " LIKE "
	if l.Negate {
		op = " NOT LIKE "
	}
	return l.L.String() + op + l.Pattern.String()
}

// MatchLike exposes the general matcher for tests and for the baseline
// engine's row-at-a-time filter.
func MatchLike(pattern, s string) bool { return compileLike(pattern).match(s) }

// LikeShape classifies a constant LIKE pattern for vectorized evaluation
// (the columnar shared scan matches whole string vectors without going
// through Eval).
type LikeShape uint8

// LIKE pattern shapes: the wildcard-free/prefix/suffix/infix forms map to
// single library string operations; everything else runs the general glob
// matcher.
const (
	LikeGeneral  LikeShape = iota // arbitrary pattern: use MatchLike
	LikeExact                     // no wildcards: s == needle
	LikePrefix                    // abc%: strings.HasPrefix
	LikeSuffix                    // %abc: strings.HasSuffix
	LikeContains                  // %abc%: strings.Contains
)

// PlainLike recognizes e as `col LIKE <const>` (possibly negated) with a
// non-NULL constant pattern and returns the column, the classified pattern
// shape with its needle (the full pattern for LikeGeneral) and the negation
// flag. Callers must apply SQL NULL semantics themselves: a NULL column
// value fails the predicate regardless of negation (Like.Eval propagates
// NULL, which TruthyEval treats as false).
func PlainLike(e Expr) (col int, shape LikeShape, needle string, negate, ok bool) {
	l, isLike := e.(*Like)
	if !isLike {
		return 0, LikeGeneral, "", false, false
	}
	cr, okL := l.L.(*ColRef)
	pc, okP := l.Pattern.(*Const)
	if !okL || !okP || pc.Val.IsNull() {
		return 0, LikeGeneral, "", false, false
	}
	kind, needle := classifyLike(pc.Val.AsString())
	switch kind {
	case likeExact:
		shape = LikeExact
	case likePrefix:
		shape = LikePrefix
	case likeSuffix:
		shape = LikeSuffix
	case likeContains:
		shape = LikeContains
	default:
		shape = LikeGeneral
	}
	return cr.Idx, shape, needle, l.Negate, true
}
