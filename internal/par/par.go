// Package par is the engine's worker-pool execution layer: a minimal
// data-parallel fork/join primitive shared by the storage manager (the
// partitioned ClockScan of Crescando, paper §4.4) and the blocking shared
// operators (the data-parallel Finish phases of §4.2). The paper pins worker
// threads to cores; here the degree of parallelism is a per-cycle worker
// count resolved from Config.Workers, and pooled goroutines stand in for
// pinned threads.
//
// The contract every caller relies on: Do(workers, n, fn) runs fn(0..n-1) to
// completion before returning, fn invocations may run concurrently on up to
// `workers` goroutines, and with workers <= 1 everything runs sequentially
// on the calling goroutine in index order — which is how Workers=1 keeps the
// engine byte-identical to serial execution.
//
// Helpers are persistent: instead of spawning workers-1 goroutines per Do
// call, work is dispatched as tickets to a Pool of long-lived worker
// goroutines (a process-wide default pool, or a caller-owned Pool with a
// per-worker affinity hook — the seed for NUMA pinning of shard engines).
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve normalizes a Workers configuration value: 0 selects GOMAXPROCS
// (the paper's "one worker per core"), negative values clamp to 1 (serial).
func Resolve(workers int) int {
	if workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		return 1
	}
	return workers
}

// job is one Do invocation's shared work description. Workers that receive a
// ticket claim indices from next until it passes n; items completes once per
// finished fn call, so the issuing goroutine never waits on ticket delivery —
// only on its n items. A ticket delivered after the job drained is a cheap
// no-op, which is what lets ticket publication be fire-and-forget.
type job struct {
	next  atomic.Int64
	n     int
	fn    func(i int)
	items sync.WaitGroup
}

func (j *job) run() {
	for {
		i := int(j.next.Add(1)) - 1
		if i >= j.n {
			return
		}
		j.fn(i)
		j.items.Done()
	}
}

// Pool is a fixed set of persistent worker goroutines that execute Do
// tickets. The zero Pool is not usable; a nil *Pool is — its Do falls back
// to the package-level default pool, so plumbing an optional pool through
// call sites needs no nil checks.
type Pool struct {
	tickets chan *job
	size    int
	closed  atomic.Bool
	workers sync.WaitGroup
}

// NewPool starts size persistent worker goroutines. If affinity is non-nil
// it is called once on each worker goroutine before it starts accepting
// tickets, with the worker's index in [0, size) — the hook point for CPU /
// NUMA pinning of a shard engine's workers (e.g. locking the OS thread and
// setting a scheduler affinity mask). size is clamped to at least 1.
func NewPool(size int, affinity func(worker int)) *Pool {
	if size < 1 {
		size = 1
	}
	p := &Pool{tickets: make(chan *job, size), size: size}
	p.workers.Add(size)
	for w := 0; w < size; w++ {
		go func(w int) {
			defer p.workers.Done()
			if affinity != nil {
				affinity(w)
			}
			for j := range p.tickets {
				j.run()
			}
		}(w)
	}
	return p
}

// Size reports the number of persistent workers in the pool.
func (p *Pool) Size() int {
	if p == nil {
		return 0
	}
	return p.size
}

// Close shuts the pool's workers down and waits for them to exit. Close must
// not be called concurrently with Do on the same pool; after Close, Do runs
// serially on the caller. Closing a nil pool is a no-op (the default pool is
// process-lived).
func (p *Pool) Close() {
	if p == nil || !p.closed.CompareAndSwap(false, true) {
		return
	}
	close(p.tickets)
	p.workers.Wait()
}

// Do runs fn(i) for every i in [0, n), using up to `workers` goroutines
// (the calling goroutine plus at most workers-1 pool workers), and returns
// once all invocations have completed. Tasks are claimed from a shared
// atomic counter, so callers that want deterministic work assignment should
// make fn(i) own partition i outright and write only to i-indexed state.
// With workers <= 1 (or n <= 1) the calls happen sequentially in index order
// on the caller's goroutine. On a nil pool, Do delegates to the package
// default pool.
func (p *Pool) Do(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || (p != nil && p.closed.Load()) {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if p == nil {
		p = defaultPool()
	}
	j := &job{n: n, fn: fn}
	j.items.Add(n)
	need := workers - 1
	if need > p.size {
		need = p.size
	}
	// Fire-and-forget ticket publication: a full channel means every pool
	// worker is already busy, in which case the caller absorbs the work
	// instead of queueing more tickets than could ever help.
	for t := 0; t < need; t++ {
		select {
		case p.tickets <- j:
			forkCount.Add(1)
		default:
			t = need
		}
	}
	j.run()
	j.items.Wait()
}

// Do runs fn over [0, n) on the process-wide default pool; see (*Pool).Do
// for the contract. The default pool is sized to the machine's CPU count and
// created lazily on first parallel use.
func Do(workers, n int, fn func(i int)) {
	var p *Pool
	p.Do(workers, n, fn)
}

var (
	defaultOnce sync.Once
	defPool     *Pool
)

// defaultPool lazily creates the shared process-wide pool. It is sized to
// runtime.NumCPU rather than GOMAXPROCS so that later GOMAXPROCS changes
// (e.g. go test -cpu 1,4 re-running in one process) still find enough
// helpers; idle workers cost only a blocked channel receive.
func defaultPool() *Pool {
	defaultOnce.Do(func() { defPool = NewPool(runtime.NumCPU(), nil) })
	return defPool
}

// forkCount counts work tickets dispatched to pool workers since process
// start — the pooled analogue of "worker goroutines spawned". The adaptive
// worker budget's tests use it to pin that tiny cycles never fork.
var forkCount atomic.Int64

// Forks reports the total work tickets dispatched to pool workers so far.
func Forks() int64 { return forkCount.Load() }

// Split partitions [0, n) into at most `parts` contiguous ranges of
// near-equal size and returns the range boundaries: bounds[i] .. bounds[i+1]
// is partition i. Contiguity is what lets the partitioned ClockScan merge
// per-partition output back into global row order by plain concatenation.
func Split(n, parts int) []int {
	if parts > n {
		parts = n
	}
	if parts < 1 {
		parts = 1
	}
	bounds := make([]int, parts+1)
	for i := 0; i <= parts; i++ {
		bounds[i] = n * i / parts
	}
	return bounds
}
