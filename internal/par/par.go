// Package par is the engine's worker-pool execution layer: a minimal
// data-parallel fork/join primitive shared by the storage manager (the
// partitioned ClockScan of Crescando, paper §4.4) and the blocking shared
// operators (the data-parallel Finish phases of §4.2). The paper pins worker
// threads to cores; here the degree of parallelism is a per-cycle worker
// count resolved from Config.Workers, and goroutines stand in for pinned
// threads.
//
// The contract every caller relies on: Do(workers, n, fn) runs fn(0..n-1) to
// completion before returning, fn invocations may run concurrently on up to
// `workers` goroutines, and with workers <= 1 everything runs sequentially
// on the calling goroutine in index order — which is how Workers=1 keeps the
// engine byte-identical to serial execution.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve normalizes a Workers configuration value: 0 selects GOMAXPROCS
// (the paper's "one worker per core"), negative values clamp to 1 (serial).
func Resolve(workers int) int {
	if workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		return 1
	}
	return workers
}

// Do runs fn(i) for every i in [0, n), using up to `workers` goroutines
// (including the calling goroutine), and returns once all invocations have
// completed. Tasks are claimed from a shared atomic counter, so callers that
// want deterministic work assignment should make fn(i) own partition i
// outright and write only to i-indexed state. With workers <= 1 (or n <= 1)
// the calls happen sequentially in index order on the caller's goroutine.
func Do(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	forkCount.Add(int64(workers - 1))
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
}

// forkCount counts worker goroutines spawned by Do since process start.
// The adaptive worker budget's tests use it to pin that tiny cycles never
// fork.
var forkCount atomic.Int64

// Forks reports the total worker goroutines spawned by Do so far.
func Forks() int64 { return forkCount.Load() }

// Split partitions [0, n) into at most `parts` contiguous ranges of
// near-equal size and returns the range boundaries: bounds[i] .. bounds[i+1]
// is partition i. Contiguity is what lets the partitioned ClockScan merge
// per-partition output back into global row order by plain concatenation.
func Split(n, parts int) []int {
	if parts > n {
		parts = n
	}
	if parts < 1 {
		parts = 1
	}
	bounds := make([]int, parts+1)
	for i := 0; i <= parts; i++ {
		bounds[i] = n * i / parts
	}
	return bounds
}
