package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(-3); got != 1 {
		t.Errorf("Resolve(-3) = %d, want 1", got)
	}
	if got := Resolve(7); got != 7 {
		t.Errorf("Resolve(7) = %d, want 7", got)
	}
}

func TestDoCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		for _, n := range []int{0, 1, 3, 100} {
			hits := make([]atomic.Int32, n)
			Do(workers, n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Errorf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestDoSerialOrder(t *testing.T) {
	var order []int
	Do(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial Do out of order: %v", order)
		}
	}
}

func TestSplit(t *testing.T) {
	cases := []struct {
		n, parts int
		want     []int
	}{
		{10, 2, []int{0, 5, 10}},
		{10, 3, []int{0, 3, 6, 10}},
		{2, 4, []int{0, 1, 2}}, // parts clamped to n
		{0, 4, []int{0, 0}},    // empty input: one empty range
		{5, 1, []int{0, 5}},
	}
	for _, c := range cases {
		got := Split(c.n, c.parts)
		if len(got) != len(c.want) {
			t.Errorf("Split(%d,%d) = %v, want %v", c.n, c.parts, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Split(%d,%d) = %v, want %v", c.n, c.parts, got, c.want)
				break
			}
		}
	}
	// Every split must cover [0,n) exactly with non-decreasing bounds.
	for n := 0; n < 40; n++ {
		for parts := 1; parts < 9; parts++ {
			b := Split(n, parts)
			if b[0] != 0 || b[len(b)-1] != n {
				t.Fatalf("Split(%d,%d) bounds %v do not cover", n, parts, b)
			}
			for i := 1; i < len(b); i++ {
				if b[i] < b[i-1] {
					t.Fatalf("Split(%d,%d) bounds %v decrease", n, parts, b)
				}
			}
		}
	}
}

func TestPoolCoversEveryIndexOnce(t *testing.T) {
	p := NewPool(3, nil)
	defer p.Close()
	for _, workers := range []int{1, 2, 4, 16} {
		for _, n := range []int{0, 1, 3, 100} {
			hits := make([]atomic.Int32, n)
			p.Do(workers, n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Errorf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestPoolAffinityHookRunsPerWorker(t *testing.T) {
	var seen [4]atomic.Int32
	p := NewPool(4, func(w int) { seen[w].Add(1) })
	p.Do(4, 64, func(int) {})
	p.Close()
	for w := range seen {
		if got := seen[w].Load(); got != 1 {
			t.Errorf("affinity hook for worker %d ran %d times, want 1", w, got)
		}
	}
}

func TestPoolSerialAfterClose(t *testing.T) {
	p := NewPool(2, nil)
	p.Close()
	var order []int
	p.Do(4, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("closed-pool Do out of order: %v", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("closed-pool Do ran %d of 5 items", len(order))
	}
}

func TestNilPoolDelegatesToDefault(t *testing.T) {
	var p *Pool
	hits := make([]atomic.Int32, 50)
	p.Do(4, 50, func(i int) { hits[i].Add(1) })
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Errorf("nil-pool Do: index %d ran %d times", i, got)
		}
	}
	if p.Size() != 0 {
		t.Errorf("nil pool Size = %d, want 0", p.Size())
	}
}

func TestPoolNestedDoDoesNotDeadlock(t *testing.T) {
	p := NewPool(2, nil)
	defer p.Close()
	var total atomic.Int32
	p.Do(4, 8, func(i int) {
		p.Do(4, 8, func(j int) { total.Add(1) })
	})
	if got := total.Load(); got != 64 {
		t.Fatalf("nested Do ran %d inner items, want 64", got)
	}
}
