package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(-3); got != 1 {
		t.Errorf("Resolve(-3) = %d, want 1", got)
	}
	if got := Resolve(7); got != 7 {
		t.Errorf("Resolve(7) = %d, want 7", got)
	}
}

func TestDoCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		for _, n := range []int{0, 1, 3, 100} {
			hits := make([]atomic.Int32, n)
			Do(workers, n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Errorf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestDoSerialOrder(t *testing.T) {
	var order []int
	Do(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial Do out of order: %v", order)
		}
	}
}

func TestSplit(t *testing.T) {
	cases := []struct {
		n, parts int
		want     []int
	}{
		{10, 2, []int{0, 5, 10}},
		{10, 3, []int{0, 3, 6, 10}},
		{2, 4, []int{0, 1, 2}}, // parts clamped to n
		{0, 4, []int{0, 0}},    // empty input: one empty range
		{5, 1, []int{0, 5}},
	}
	for _, c := range cases {
		got := Split(c.n, c.parts)
		if len(got) != len(c.want) {
			t.Errorf("Split(%d,%d) = %v, want %v", c.n, c.parts, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Split(%d,%d) = %v, want %v", c.n, c.parts, got, c.want)
				break
			}
		}
	}
	// Every split must cover [0,n) exactly with non-decreasing bounds.
	for n := 0; n < 40; n++ {
		for parts := 1; parts < 9; parts++ {
			b := Split(n, parts)
			if b[0] != 0 || b[len(b)-1] != n {
				t.Fatalf("Split(%d,%d) bounds %v do not cover", n, parts, b)
			}
			for i := 1; i < len(b); i++ {
				if b[i] < b[i-1] {
					t.Fatalf("Split(%d,%d) bounds %v decrease", n, parts, b)
				}
			}
		}
	}
}
