package experiments

import (
	"testing"
	"time"
)

// foldLoadOptions is the scaled-down fold configuration the load scenario
// runs under in tests: quota'd, heartbeat-paced serial generations so a
// window of identical queries accumulates and folds.
func foldLoadOptions() Options {
	return Options{
		StatementQuota:         4,
		MaxInFlightGenerations: 1,
		Heartbeat:              2 * time.Millisecond,
		FoldQueries:            true,
	}
}

// TestLoad1kBinary is the acceptance smoke at test scale: real sockets,
// real client package, and — the fan-in claim — queries from different
// connections folding into shared activations (FoldedQueries > 0).
func TestLoad1kBinary(t *testing.T) {
	res, err := Load1k(LoadOptions{
		Clients:       16,
		Distinct:      4,
		Window:        500 * time.Millisecond,
		PipelineDepth: 2,
		Items:         100,
		Seed:          7,
		Engine:        foldLoadOptions(),
	})
	if err != nil {
		t.Fatalf("Load1k: %v", err)
	}
	if res.Queries == 0 {
		t.Fatal("no queries completed")
	}
	if res.FoldedQueries == 0 {
		t.Fatalf("no folding across %d pipelined connections: %+v", res.Clients, res)
	}
	if res.RPS() <= 0 || res.P50 <= 0 || res.P99 < res.P50 {
		t.Fatalf("implausible measurements: %+v", res)
	}
	t.Logf("binary: %d queries, %.0f rps, p50 %v p99 %v p999 %v, fold hit %.2f",
		res.Queries, res.RPS(), res.P50, res.P99, res.P999, res.FoldHitRate())
}

// TestLoad1kText drives the same closed loop through the legacy line
// protocol (ad-hoc SQL, no pipelining) — the migration comparison point.
func TestLoad1kText(t *testing.T) {
	res, err := Load1k(LoadOptions{
		Clients:  8,
		Distinct: 4,
		Window:   400 * time.Millisecond,
		Items:    50,
		Seed:     7,
		Text:     true,
		Engine:   foldLoadOptions(),
	})
	if err != nil {
		t.Fatalf("Load1k text: %v", err)
	}
	if res.Queries == 0 {
		t.Fatal("no queries completed")
	}
	t.Logf("text: %d queries, %.0f rps, p50 %v p99 %v", res.Queries, res.RPS(), res.P50, res.P99)
}
