package experiments

// The network-load scenario: the paper's thousand concurrent queries
// arriving the way they actually arrive — over a thousand sockets —
// instead of as in-process goroutines. Load1k stands up the real wire
// stack (internal/server in front of a folding engine, the public client
// package per connection) and drives the same Zipfian title-search
// workload as Folding, so the two results are directly comparable: the
// acceptance bar is network folded-QPS within a small factor of the
// in-process number, with bounded tail latency when admission is on.

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"shareddb"
	"shareddb/client"
	"shareddb/internal/harness"
	"shareddb/internal/server"
)

// LoadOptions shapes one Load1k run.
type LoadOptions struct {
	Clients       int           // concurrent network connections (0 = 1000)
	Distinct      int           // Zipf parameter domain, as in Folding (0 = 8)
	Window        time.Duration // measurement window (0 = 1.5s)
	PipelineDepth int           // in-flight queries per connection, binary protocol only (0 = 1)
	ServerWindow  int           // server-side per-connection window (0 = server default)
	Items         int           // item-table rows loaded before the run (0 = 500)
	Seed          int64
	Text          bool // drive the legacy text protocol instead of the binary one

	// Engine carries the admission + folding knobs (the same fields the
	// in-process scenarios use); Scale/ThinkTime/PointDuration are ignored.
	Engine Options
}

func (o *LoadOptions) defaults() {
	if o.Clients < 1 {
		o.Clients = 1000
	}
	if o.Distinct < 1 {
		o.Distinct = 8
	}
	if o.Window <= 0 {
		o.Window = 1500 * time.Millisecond
	}
	if o.PipelineDepth < 1 {
		o.PipelineDepth = 1
	}
	if o.Items < 1 {
		o.Items = 500
	}
}

// engineConfig maps the experiment Options onto the public Config the
// network server fronts.
func engineConfig(o Options) shareddb.Config {
	return shareddb.Config{
		Workers:                o.Workers,
		MaxGenerationDelay:     o.MaxGenerationDelay,
		QueueDepthLimit:        o.QueueDepthLimit,
		StatementQuota:         o.StatementQuota,
		FoldQueries:            o.FoldQueries,
		FoldSubsume:            o.FoldSubsume,
		MaxInFlightGenerations: o.MaxInFlightGenerations,
		Heartbeat:              o.Heartbeat,
	}
}

// LoadResult is one Load1k run: client-visible throughput and tail
// latency, plus the engine-side counters that show whether the fan-in
// actually fed the fold index.
type LoadResult struct {
	Clients int
	Queries int64 // completed queries across all connections
	Shed    int64 // BUSY rejections observed by clients
	Elapsed time.Duration
	P50     time.Duration
	P99     time.Duration
	P999    time.Duration

	Generations   uint64 // engine generations dispatched during the window
	EngineQueries uint64 // read activations the engine executed
	FoldedQueries uint64 // reads served by fan-out instead
}

// RPS is completed client queries per second.
func (r *LoadResult) RPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Queries) / r.Elapsed.Seconds()
}

// ShedRate is the fraction of offers rejected with BUSY.
func (r *LoadResult) ShedRate() float64 {
	total := r.Queries + r.Shed
	if total == 0 {
		return 0
	}
	return float64(r.Shed) / float64(total)
}

// FoldHitRate is the fraction of client reads served by folding.
func (r *LoadResult) FoldHitRate() float64 {
	total := r.EngineQueries + r.FoldedQueries
	if total == 0 {
		return 0
	}
	return float64(r.FoldedQueries) / float64(total)
}

const loadQuery = `SELECT i_id, i_title FROM item WHERE i_title LIKE ?`

// Load1k drives opts.Clients closed-loop network clients over loopback
// against a freshly loaded engine behind the real front end. Each client
// owns one connection and draws its title-search parameter from a small
// Zipfian domain (duplicates are the point: they must fold inside the
// server's fan-in path, not just in-process). Clients honor BUSY retry
// hints; every completed query's latency lands in one merged histogram.
func Load1k(opts LoadOptions) (*LoadResult, error) {
	opts.defaults()
	db, err := shareddb.Open(engineConfig(opts.Engine))
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if err := loadItems(db, opts.Items); err != nil {
		return nil, err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := server.New(db, server.Options{
		Window:       opts.ServerWindow,
		TextProtocol: opts.Text,
		Logf:         func(string, ...interface{}) {},
	})
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()

	// Connect every client before the clock starts; a dial limiter keeps
	// the thundering herd off the accept backlog.
	workers := make([]loadWorker, opts.Clients)
	dialLimit := make(chan struct{}, 64)
	var dialWG sync.WaitGroup
	var dialErr atomic.Value
	for i := range workers {
		dialWG.Add(1)
		go func(i int) {
			defer dialWG.Done()
			dialLimit <- struct{}{}
			defer func() { <-dialLimit }()
			var w loadWorker
			var err error
			if opts.Text {
				w, err = dialTextWorker(addr)
			} else {
				w, err = dialBinaryWorker(addr, opts.PipelineDepth)
			}
			if err != nil {
				dialErr.Store(err)
				return
			}
			workers[i] = w
		}(i)
	}
	dialWG.Wait()
	defer func() {
		var closeWG sync.WaitGroup
		for _, w := range workers {
			if w == nil {
				continue
			}
			closeWG.Add(1)
			go func(w loadWorker) {
				defer closeWG.Done()
				dialLimit <- struct{}{}
				w.close()
				<-dialLimit
			}(w)
		}
		closeWG.Wait()
	}()
	if err, _ := dialErr.Load().(error); err != nil {
		return nil, fmt.Errorf("experiments: Load1k dial: %w", err)
	}

	before := db.Stats()
	hist := harness.NewHistogram()
	var done, shed, failed int64
	var failure atomic.Value
	start := time.Now()
	deadline := start.Add(opts.Window)
	var wg sync.WaitGroup
	for i, w := range workers {
		lanes := 1
		if !opts.Text {
			lanes = opts.PipelineDepth
		}
		for lane := 0; lane < lanes; lane++ {
			wg.Add(1)
			go func(w loadWorker, id int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(opts.Seed + int64(id)))
				zipf := rand.NewZipf(rng, 1.2, 1, uint64(opts.Distinct-1))
				for time.Now().Before(deadline) {
					title := fmt.Sprintf("Title %02d%%", zipf.Uint64())
					qStart := time.Now()
					retry, err := w.query(title)
					switch {
					case err == nil && retry == 0:
						atomic.AddInt64(&done, 1)
						hist.Observe(time.Since(qStart))
					case err == nil: // BUSY with a retry hint
						atomic.AddInt64(&shed, 1)
						time.Sleep(retry)
					default:
						atomic.AddInt64(&failed, 1)
						failure.Store(err)
						return
					}
				}
			}(w, i*lanes+lane)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	if failed > 0 {
		err, _ := failure.Load().(error)
		return nil, fmt.Errorf("experiments: Load1k had %d query failures (first: %v)", failed, err)
	}
	after := db.Stats()
	return &LoadResult{
		Clients: opts.Clients,
		Queries: done,
		Shed:    shed,
		Elapsed: elapsed,
		P50:     hist.Quantile(0.50),
		P99:     hist.Quantile(0.99),
		P999:    hist.Quantile(0.999),

		Generations:   after.Generations - before.Generations,
		EngineQueries: after.QueriesRun - before.QueriesRun,
		FoldedQueries: after.FoldedQueries - before.FoldedQueries,
	}, nil
}

// loadItems creates and fills the title-search table; inserts run
// concurrently so generation batching amortizes the load phase.
func loadItems(db *shareddb.DB, items int) error {
	if _, err := db.Exec(`CREATE TABLE item (i_id INT, i_title VARCHAR, i_cost FLOAT, PRIMARY KEY (i_id))`); err != nil {
		return err
	}
	var wg sync.WaitGroup
	var firstErr atomic.Value
	sem := make(chan struct{}, 128)
	for i := 0; i < items; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			if _, err := db.Exec(`INSERT INTO item VALUES (?, ?, ?)`,
				i, fmt.Sprintf("Title %02d", i%100), float64(i%90)+1); err != nil {
				firstErr.Store(err)
			}
		}(i)
	}
	wg.Wait()
	err, _ := firstErr.Load().(error)
	return err
}

// loadWorker is one connection's query loop, protocol-agnostic: query
// returns (0, nil) on success, (hint, nil) on a BUSY rejection, and a
// non-nil error on anything else.
type loadWorker interface {
	query(title string) (retryAfter time.Duration, err error)
	close()
}

// binaryWorker drives the wire protocol through the public client.
type binaryWorker struct {
	db   *client.DB
	stmt *client.Stmt
}

func dialBinaryWorker(addr string, depth int) (loadWorker, error) {
	db, err := client.OpenConfig(client.Config{Addr: addr, Window: depth, DialTimeout: 30 * time.Second})
	if err != nil {
		return nil, err
	}
	stmt, err := db.Prepare(loadQuery)
	if err != nil {
		db.Close()
		return nil, err
	}
	return &binaryWorker{db: db, stmt: stmt}, nil
}

func (w *binaryWorker) query(title string) (time.Duration, error) {
	rows, err := w.stmt.Query(title)
	if err != nil {
		var oe *client.OverloadError
		if errors.As(err, &oe) {
			retry := oe.RetryAfter
			if retry <= 0 {
				retry = time.Millisecond
			}
			return retry, nil
		}
		return 0, err
	}
	rows.All()
	return 0, rows.Err()
}

func (w *binaryWorker) close() { w.db.Close() }

// textWorker drives the legacy line protocol: the statement is re-sent as
// ad-hoc SQL with the parameter inlined (the protocol has no binding), and
// the response is consumed line by line to its OK/ERR/BUSY terminator.
type textWorker struct {
	nc net.Conn
	rd *bufio.Reader
}

func dialTextWorker(addr string) (loadWorker, error) {
	nc, err := net.DialTimeout("tcp", addr, 30*time.Second)
	if err != nil {
		return nil, err
	}
	return &textWorker{nc: nc, rd: bufio.NewReader(nc)}, nil
}

func (w *textWorker) query(title string) (time.Duration, error) {
	sqlText := strings.Replace(loadQuery, "?", "'"+title+"'", 1)
	if _, err := fmt.Fprintf(w.nc, "%s\n", sqlText); err != nil {
		return 0, err
	}
	for {
		line, err := w.rd.ReadString('\n')
		if err != nil {
			return 0, err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "OK "):
			return 0, nil
		case strings.HasPrefix(line, "BUSY "):
			fields := strings.Fields(line)
			ms := int64(1)
			if len(fields) >= 2 {
				if v, err := strconv.ParseInt(fields[1], 10, 64); err == nil && v > 0 {
					ms = v
				}
			}
			return time.Duration(ms) * time.Millisecond, nil
		case strings.HasPrefix(line, "ERR"):
			return 0, fmt.Errorf("text protocol: %s", line)
		}
	}
}

func (w *textWorker) close() {
	fmt.Fprintln(w.nc, "QUIT")
	w.nc.Close()
}
