package experiments

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"shareddb/internal/tpcw"
)

// tinyOpts keeps the experiment smoke tests fast; the real sweeps run via
// cmd/tpcw and cmd/microbench.
func tinyOpts() Options {
	return Options{
		Scale:         tpcw.Scale{Items: 60, Customers: 40},
		PointDuration: 60 * time.Millisecond,
		ThinkTime:     time.Millisecond,
		Seed:          5,
	}
}

func TestEnvAllSystems(t *testing.T) {
	for _, kind := range AllSystems {
		env, err := NewEnv(kind, tpcw.Scale{Items: 50, Customers: 30}, 1, 0)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if env.Sys.Name() != kind.String() {
			t.Errorf("name = %s, want %s", env.Sys.Name(), kind)
		}
		env.Close()
	}
}

func TestFig7Smoke(t *testing.T) {
	res, err := Fig7(tpcw.Shopping, []int{4}, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range AllSystems {
		pts := res[kind]
		if len(pts) != 1 {
			t.Fatalf("%s: %d points", kind, len(pts))
		}
		if pts[0].WIPS <= 0 {
			t.Errorf("%s: WIPS = %v", kind, pts[0].WIPS)
		}
	}
	out := RenderFig7(tpcw.Shopping, res)
	if !strings.Contains(out, "SharedDB") || !strings.Contains(out, "EBs") {
		t.Errorf("render:\n%s", out)
	}
}

func TestFig8Smoke(t *testing.T) {
	res, err := Fig8(tpcw.Ordering, []int{runtime.NumCPU()}, 4, tinyOpts(), runtime.GOMAXPROCS)
	if err != nil {
		t.Fatal(err)
	}
	if res[SharedDB][0].WIPS <= 0 {
		t.Error("no throughput measured")
	}
	if out := RenderFig8(tpcw.Ordering, res); !strings.Contains(out, "Cores") {
		t.Errorf("render:\n%s", out)
	}
}

func TestFig9Smoke(t *testing.T) {
	opts := tinyOpts()
	opts.PointDuration = 15 * time.Millisecond
	res, err := Fig9(4, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res[SharedDB]) != int(tpcw.NumInteractions) {
		t.Fatalf("points = %d", len(res[SharedDB]))
	}
	if out := RenderFig9(res); !strings.Contains(out, "BestSellers") {
		t.Errorf("render:\n%s", out)
	}
}

func TestFig10Smoke(t *testing.T) {
	res, err := Fig10(HeavyQuery, []int{1, 8}, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range AllSystems {
		if len(res[kind]) != 2 || res[kind][1].Elapsed <= 0 {
			t.Errorf("%s: %+v", kind, res[kind])
		}
	}
	if out := RenderFig10(HeavyQuery, res); !strings.Contains(out, "BestSellers") {
		t.Errorf("render:\n%s", out)
	}
	if LightQuery.String() != "SearchItemByTitle" {
		t.Error("query naming")
	}
}

func TestFig11Smoke(t *testing.T) {
	opts := tinyOpts()
	opts.PointDuration = 100 * time.Millisecond
	res, err := Fig11(50, []float64{0, 20}, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range AllSystems {
		if len(res[kind]) != 2 {
			t.Fatalf("%s: %d points", kind, len(res[kind]))
		}
		if res[kind][0].LightDone <= 0 {
			t.Errorf("%s: no light queries completed", kind)
		}
	}
	if out := RenderFig11(50, res); !strings.Contains(out, "Heavy/s") {
		t.Errorf("render:\n%s", out)
	}
}

// TestOverloadScenarioSmoke runs the admission-control overload scenario at
// toy scale: the run must complete (no deadlock under rejection), account
// for every offered query, and keep latency percentiles consistent.
func TestOverloadScenarioSmoke(t *testing.T) {
	opts := tinyOpts()
	opts.MaxGenerationDelay = 5 * time.Millisecond
	opts.QueueDepthLimit = 8
	res, err := Overload(opts, 400, 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted+res.Shed != res.Offered {
		t.Fatalf("accounting: admitted %d + shed %d != offered %d", res.Admitted, res.Shed, res.Offered)
	}
	if res.Admitted == 0 {
		t.Fatal("overload scenario admitted nothing")
	}
	if res.Admitted > 0 && (res.P50 <= 0 || res.P99 < res.P50) {
		t.Fatalf("latency percentiles inconsistent: p50=%v p99=%v", res.P50, res.P99)
	}
	if rate := res.ShedRate(); rate < 0 || rate > 1 {
		t.Fatalf("shed rate %v out of range", rate)
	}
	// Without any admission limit the scenario refuses to run (it would
	// measure nothing).
	if _, err := Overload(tinyOpts(), 10, 2); err == nil {
		t.Fatal("Overload without admission limits must error")
	}
}
