// Package experiments regenerates every figure of the paper's evaluation
// (§5): the TPC-W throughput sweeps (Figures 7–9) and the micro-benchmarks
// (Figures 10–11). The same code backs the cmd/tpcw and cmd/microbench
// binaries and the root-level testing.B benchmarks.
//
// Absolute numbers differ from the paper (their testbed was a 48-core
// Magny-Cours; think times and response limits are compressed by a common
// factor, DESIGN.md §3) — the reproduced quantity is the *shape*: which
// system wins, by what ratio, and where the curves bend.
package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"shareddb/internal/baseline"
	"shareddb/internal/core"
	"shareddb/internal/harness"
	"shareddb/internal/storage"
	"shareddb/internal/tpcw"
	"shareddb/internal/types"
)

// SystemKind selects a system under test.
type SystemKind int

// Systems compared throughout §5.
const (
	SharedDB SystemKind = iota
	SystemX
	MySQL
)

// String names the system as the paper's figures do.
func (k SystemKind) String() string {
	return [...]string{"SharedDB", "SystemX", "MySQL"}[k]
}

// AllSystems lists the three systems in figure order.
var AllSystems = []SystemKind{MySQL, SystemX, SharedDB}

// Env is one freshly loaded TPC-W database plus a system under test.
type Env struct {
	DB    *storage.Database // first shard on sharded runs
	dbs   []*storage.Database
	Gen   *tpcw.Generator
	IDs   *tpcw.IDAllocator
	Sys   tpcw.System
	Scale tpcw.Scale
}

// NewEnv loads a fresh database and attaches the requested system. Each
// system gets its own copy so that one run's updates cannot skew another's.
// workers is SharedDB's intra-operator parallelism budget (0 = GOMAXPROCS);
// the query-at-a-time baselines ignore it (their parallelism is one core
// per query by construction).
func NewEnv(kind SystemKind, scale tpcw.Scale, seed int64, workers int) (*Env, error) {
	return NewEnvSharded(kind, scale, seed, workers, 1)
}

// NewEnvSharded is NewEnv with a shard count: shards > 1 runs SharedDB as
// a sharded deployment (hash-partitioned TPC-W tables behind the
// scatter-gather router, tpcw.ShardedPlacement). The query-at-a-time
// baselines stay single-node — their comparison point is the unsharded
// engine.
func NewEnvSharded(kind SystemKind, scale tpcw.Scale, seed int64, workers, shards int) (*Env, error) {
	return NewEnvWithOptions(kind, Options{Scale: scale, Seed: seed, Workers: workers, Shards: shards})
}

// NewEnvWithOptions builds the environment from the full Options — the
// admission-control knobs included — so overload scenarios can run against
// an engine with a latency SLO, queue cap and statement quotas.
func NewEnvWithOptions(kind SystemKind, opts Options) (*Env, error) {
	scale, seed, shards := opts.Scale, opts.Seed, opts.Shards
	if kind == SharedDB && shards > 1 {
		dbs := make([]*storage.Database, 0, shards)
		closeAll := func() {
			for _, db := range dbs {
				db.Close()
			}
		}
		for i := 0; i < shards; i++ {
			db, err := storage.Open(storage.Options{Shard: storage.ShardInfo{Index: i, Count: shards}})
			if err != nil {
				closeAll()
				return nil, err
			}
			dbs = append(dbs, db)
		}
		gen, err := tpcw.SetupSharded(dbs, scale, seed)
		if err != nil {
			closeAll()
			return nil, err
		}
		sys, err := tpcw.NewShardedSystem(dbs, opts.coreConfig())
		if err != nil {
			closeAll()
			return nil, err
		}
		return &Env{DB: dbs[0], dbs: dbs, Gen: gen, IDs: tpcw.NewIDAllocator(gen),
			Sys: sys, Scale: scale}, nil
	}
	db, err := storage.Open(storage.Options{})
	if err != nil {
		return nil, err
	}
	gen, err := tpcw.Setup(db, scale, seed)
	if err != nil {
		return nil, err
	}
	env := &Env{DB: db, dbs: []*storage.Database{db}, Gen: gen, IDs: tpcw.NewIDAllocator(gen), Scale: scale}
	switch kind {
	case SharedDB:
		sys, err := tpcw.NewSharedSystem(db, opts.coreConfig())
		if err != nil {
			return nil, err
		}
		env.Sys = sys
	case SystemX:
		sys, err := tpcw.NewBaselineSystem(db, baseline.SystemXLike)
		if err != nil {
			return nil, err
		}
		env.Sys = sys
	case MySQL:
		sys, err := tpcw.NewBaselineSystem(db, baseline.MySQLLike)
		if err != nil {
			return nil, err
		}
		env.Sys = sys
	}
	return env, nil
}

// Close releases the environment.
func (e *Env) Close() {
	e.Sys.Close()
	for _, db := range e.dbs {
		db.Close()
	}
}

// Options tunes experiment size so the binaries can run paper-shaped sweeps
// while the benchmarks run quick smoke versions.
type Options struct {
	Scale         tpcw.Scale
	PointDuration time.Duration // measurement window per data point
	ThinkTime     time.Duration // mean EB think time (scaled-down 7 s)
	Seed          int64
	Workers       int  // SharedDB intra-operator workers (0 = GOMAXPROCS)
	Shards        int  // SharedDB shard engines (0 or 1 = single engine)
	ColumnarScan  bool // scan the columnar mirror instead of the row store
	ShardWorkers  int  // per-shard worker override (0 = GOMAXPROCS/shards)

	// Admission-control knobs for overload scenarios (zero = disabled, the
	// classic unbounded-queue engine). They apply to SharedDB only; the
	// query-at-a-time baselines have no admission path.
	MaxGenerationDelay time.Duration // per-generation latency SLO
	QueueDepthLimit    int           // submissions queued per engine before rejection
	StatementQuota     int           // activations of one statement per generation

	// Folding knobs (SharedDB only): collapse identical concurrent reads
	// into one activation with a fan-out (FoldQueries), optionally serving
	// equality restrictions from covering scans (FoldSubsume).
	FoldQueries bool
	FoldSubsume bool
	// MaxInFlightGenerations pins the generation pipeline depth (0 = the
	// engine default of 4). Folding scenarios run depth 1 so duplicates
	// accumulate in the pending queue — the fold window — instead of being
	// drained into overlapping generations immediately.
	MaxInFlightGenerations int
	// Heartbeat is the minimum spacing between generation starts (zero =
	// redispatch immediately). Folding comparisons set it so the
	// generation rate is cadence-bound and therefore identical with
	// folding on or off — the constant-engine-work axis of the benchmark.
	Heartbeat time.Duration
}

// coreConfig maps the Options onto the engine configuration shared by the
// single-engine and sharded backends.
func (o Options) coreConfig() core.Config {
	return core.Config{
		Workers:                o.Workers,
		ColumnarScan:           o.ColumnarScan,
		ShardWorkers:           o.ShardWorkers,
		MaxGenerationDelay:     o.MaxGenerationDelay,
		QueueDepthLimit:        o.QueueDepthLimit,
		StatementQuota:         o.StatementQuota,
		FoldQueries:            o.FoldQueries,
		FoldSubsume:            o.FoldSubsume,
		MaxInFlightGenerations: o.MaxInFlightGenerations,
		Heartbeat:              o.Heartbeat,
	}
}

// DefaultOptions is the laptop-scale configuration.
func DefaultOptions() Options {
	return Options{
		Scale:         tpcw.DefaultScale(),
		PointDuration: 2 * time.Second,
		ThinkTime:     20 * time.Millisecond,
		Seed:          2012,
	}
}

// Fig7Point is one (EBs → throughput) measurement.
type Fig7Point struct {
	EBs     int
	Offered float64
	WIPS    float64
	P95     time.Duration
}

// Fig7 runs the paper's first experiment: throughput under varying load for
// one mix, for every system ("we varied the load of the system by
// increasing the number of emulated browsers and measured the web
// interactions that were successfully answered ... in the response time
// limit", §5.3).
func Fig7(mix tpcw.Mix, ebCounts []int, opts Options) (map[SystemKind][]Fig7Point, error) {
	out := map[SystemKind][]Fig7Point{}
	for _, kind := range AllSystems {
		env, err := NewEnvSharded(kind, opts.Scale, opts.Seed, opts.Workers, opts.Shards)
		if err != nil {
			return nil, err
		}
		for _, ebs := range ebCounts {
			m := tpcw.RunDriver(env.Sys, env.Scale, env.IDs, tpcw.DriverConfig{
				EBs: ebs, Duration: opts.PointDuration, ThinkTime: opts.ThinkTime,
				Mix: mix, Only: -1, Seed: opts.Seed,
			})
			out[kind] = append(out[kind], Fig7Point{
				EBs:     ebs,
				Offered: tpcw.OfferedLoad(ebs, opts.ThinkTime),
				WIPS:    m.WIPS(),
				P95:     m.Latency.Quantile(0.95),
			})
		}
		env.Close()
	}
	return out, nil
}

// Fig8Point is one (cores → max throughput) measurement.
type Fig8Point struct {
	Cores int
	WIPS  float64
}

// Fig8 measures maximum throughput while varying the core budget
// (GOMAXPROCS stands in for the paper's maxcpus kernel parameter, §5.4).
// saturate is the closed-loop client count used to saturate the system.
type GomaxprocsSetter func(n int) int

// Fig8 runs the cores sweep for one mix.
func Fig8(mix tpcw.Mix, cores []int, saturate int, opts Options, setProcs GomaxprocsSetter) (map[SystemKind][]Fig8Point, error) {
	out := map[SystemKind][]Fig8Point{}
	for _, kind := range AllSystems {
		for _, n := range cores {
			prev := setProcs(n)
			env, err := NewEnvSharded(kind, opts.Scale, opts.Seed, opts.Workers, opts.Shards)
			if err != nil {
				setProcs(prev)
				return nil, err
			}
			m := tpcw.RunDriver(env.Sys, env.Scale, env.IDs, tpcw.DriverConfig{
				EBs: saturate, Duration: opts.PointDuration, ThinkTime: 0,
				Mix: mix, Only: -1, Seed: opts.Seed,
			})
			env.Close()
			setProcs(prev)
			out[kind] = append(out[kind], Fig8Point{Cores: n, WIPS: m.WIPS()})
		}
	}
	return out, nil
}

// Fig9Point is one (interaction → max throughput) measurement.
type Fig9Point struct {
	Interaction tpcw.Interaction
	WIPS        float64
}

// Fig9 measures the maximum throughput of each individual web interaction
// ("the maximum throughput that each of the three systems can achieve if
// the clients are configured to issue only queries that correspond to a
// single web interaction", §5.5).
func Fig9(clients int, opts Options) (map[SystemKind][]Fig9Point, error) {
	out := map[SystemKind][]Fig9Point{}
	for _, kind := range AllSystems {
		env, err := NewEnvSharded(kind, opts.Scale, opts.Seed, opts.Workers, opts.Shards)
		if err != nil {
			return nil, err
		}
		for i := tpcw.Interaction(0); i < tpcw.NumInteractions; i++ {
			m := tpcw.RunDriver(env.Sys, env.Scale, env.IDs, tpcw.DriverConfig{
				EBs: clients, Duration: opts.PointDuration, ThinkTime: 0,
				Mix: tpcw.Shopping, Only: i, Seed: opts.Seed,
			})
			out[kind] = append(out[kind], Fig9Point{Interaction: i, WIPS: m.WIPS()})
		}
		env.Close()
	}
	return out, nil
}

// Fig10Point is one (batch size → batch response time) measurement.
type Fig10Point struct {
	BatchSize int
	Elapsed   time.Duration
}

// Fig10Query selects the light or heavy query of §5.6.
type Fig10Query int

// The two §5.6 queries.
const (
	LightQuery Fig10Query = iota // "search item by title": 2-way join point query
	HeavyQuery                   // "best sellers": 3 joins + group-by + sort
)

func (q Fig10Query) String() string {
	if q == LightQuery {
		return "SearchItemByTitle"
	}
	return "BestSellers"
}

// Fig10 issues batches of an increasing number of identical-template
// queries (different parameters) and measures whole-batch completion time,
// including SharedDB's queueing delay (§5.6).
func Fig10(query Fig10Query, sizes []int, opts Options) (map[SystemKind][]Fig10Point, error) {
	out := map[SystemKind][]Fig10Point{}
	for _, kind := range AllSystems {
		env, err := NewEnvSharded(kind, opts.Scale, opts.Seed, opts.Workers, opts.Shards)
		if err != nil {
			return nil, err
		}
		maxOID := int64(env.Gen.MaxOrderID)
		window := int64(1000)
		for _, n := range sizes {
			params := make([][]types.Value, n)
			for i := 0; i < n; i++ {
				if query == LightQuery {
					params[i] = []types.Value{types.NewString(fmt.Sprintf("Title %02d%%", i%100))}
				} else {
					params[i] = []types.Value{
						types.NewInt(maxOID - window),
						types.NewString(tpcw.Subjects()[i%len(tpcw.Subjects())]),
					}
				}
			}
			stmt := tpcw.StDoTitleSearch
			if query == HeavyQuery {
				stmt = tpcw.StGetBestSellers
			}
			start := time.Now()
			var wg sync.WaitGroup
			errCount := int64(0)
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					if _, err := env.Sys.Query(stmt, params[i]...); err != nil {
						atomic.AddInt64(&errCount, 1)
					}
				}(i)
			}
			wg.Wait()
			if errCount > 0 {
				env.Close()
				return nil, fmt.Errorf("fig10: %d queries failed", errCount)
			}
			out[kind] = append(out[kind], Fig10Point{BatchSize: n, Elapsed: time.Since(start)})
		}
		env.Close()
	}
	return out, nil
}

// Fig11Point is one (heavy-query rate → total throughput) measurement.
type Fig11Point struct {
	HeavyRate  float64 // offered best-sellers per second
	Throughput float64 // completed queries (light + heavy) per second
	LightDone  float64 // completed light queries per second
}

// Fig11 reproduces the load-interaction experiment (§5.7): a constant
// stream of light "search item by title" queries plus an increasing
// open-loop stream of heavy "best sellers" queries. The paper's headline:
// the baselines' light-query throughput collapses below the constant rate,
// SharedDB's total increases monotonically.
func Fig11(lightRate float64, heavyRates []float64, opts Options) (map[SystemKind][]Fig11Point, error) {
	out := map[SystemKind][]Fig11Point{}
	for _, kind := range AllSystems {
		env, err := NewEnvSharded(kind, opts.Scale, opts.Seed, opts.Workers, opts.Shards)
		if err != nil {
			return nil, err
		}
		maxOID := env.Gen.MaxOrderID
		for _, hr := range heavyRates {
			light, heavy := openLoopRun(env, lightRate, hr, maxOID, opts.PointDuration)
			out[kind] = append(out[kind], Fig11Point{
				HeavyRate:  hr,
				Throughput: light + heavy,
				LightDone:  light,
			})
		}
		env.Close()
	}
	return out, nil
}

// openLoopRun fires light and heavy queries at fixed rates for the window
// and returns completed-per-second counts. In-flight work is capped to keep
// an overloaded system from accumulating unbounded goroutines (the paper's
// clients likewise had finite connection pools).
func openLoopRun(env *Env, lightRate, heavyRate float64, maxOID int64, window time.Duration) (lightPerSec, heavyPerSec float64) {
	var lightDone, heavyDone int64
	var wg sync.WaitGroup
	inflight := make(chan struct{}, 2048)

	deadline := time.Now().Add(window)
	fire := func(rate float64, fn func(i int)) {
		defer wg.Done()
		if rate <= 0 {
			return
		}
		interval := time.Duration(float64(time.Second) / rate)
		i := 0
		for next := time.Now(); next.Before(deadline); next = next.Add(interval) {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			select {
			case inflight <- struct{}{}:
				wg.Add(1)
				i++
				go func(i int) {
					defer wg.Done()
					fn(i)
					<-inflight
				}(i)
			default: // system saturated: request dropped (client timeout)
			}
		}
	}
	wg.Add(2)
	go fire(lightRate, func(i int) {
		if _, err := env.Sys.Query(tpcw.StDoTitleSearch,
			types.NewString(fmt.Sprintf("Title %02d%%", i%100))); err == nil {
			atomic.AddInt64(&lightDone, 1)
		}
	})
	go fire(heavyRate, func(i int) {
		if _, err := env.Sys.Query(tpcw.StGetBestSellers,
			types.NewInt(maxOID-1000),
			types.NewString(tpcw.Subjects()[i%len(tpcw.Subjects())])); err == nil {
			atomic.AddInt64(&heavyDone, 1)
		}
	})
	wg.Wait()
	secs := window.Seconds()
	return float64(lightDone) / secs, float64(heavyDone) / secs
}

// OverloadResult is one overload-scenario run: how much work was offered,
// how much admission control let through, and the latency distribution of
// the admitted queries.
type OverloadResult struct {
	Offered  int64 // queries offered by the clients
	Admitted int64 // queries admitted and answered
	Shed     int64 // queries rejected with ErrOverloaded
	P50      time.Duration
	P99      time.Duration
	Mean     time.Duration
	Max      time.Duration
	Elapsed  time.Duration
}

// ShedRate is the fraction of offered queries rejected by admission
// control.
func (r *OverloadResult) ShedRate() float64 {
	if r.Offered == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Offered)
}

// Overload drives a deliberately saturating closed-loop burst of light
// TPC-W queries (clients-way concurrent, no think time) against a SharedDB
// instance with admission control enabled, and reports admitted-latency
// percentiles plus the shed rate. The claim under test is the flip side of
// Fig10/Fig11: with a queue cap and a latency SLO, overload shows up as
// fast typed rejections and bounded admitted latency, not as an unbounded
// queue. At least one admission limit must be set in opts. Rejected clients
// re-offer immediately (the worst case); OverloadBackoff is the same run
// with the retry hint honored.
func Overload(opts Options, queries, clients int) (*OverloadResult, error) {
	return overload(opts, queries, clients, false)
}

// OverloadBackoff is Overload with well-behaved clients: on a shed, the
// client sleeps for the typed OverloadError.RetryAfter hint before offering
// its next query instead of hammering the same overloaded generation
// window. The offered load is identical (same query count per client), so
// the shed-rate difference against Overload isolates what honoring the
// hint buys.
func OverloadBackoff(opts Options, queries, clients int) (*OverloadResult, error) {
	return overload(opts, queries, clients, true)
}

func overload(opts Options, queries, clients int, backoff bool) (*OverloadResult, error) {
	if opts.MaxGenerationDelay == 0 && opts.QueueDepthLimit == 0 && opts.StatementQuota == 0 {
		return nil, fmt.Errorf("experiments: Overload needs at least one admission limit set (the scenario measures admission behavior)")
	}
	if clients < 1 {
		clients = 1
	}
	env, err := NewEnvWithOptions(SharedDB, opts)
	if err != nil {
		return nil, err
	}
	defer env.Close()

	hist := harness.NewHistogram()
	var admitted, shed, failed int64
	per := (queries + clients - 1) / clients
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				title := fmt.Sprintf("Title %02d%%", (c*per+i)%100)
				qStart := time.Now()
				_, err := env.Sys.Query(tpcw.StDoTitleSearch, types.NewString(title))
				switch {
				case err == nil:
					atomic.AddInt64(&admitted, 1)
					hist.Observe(time.Since(qStart))
				case errors.Is(err, core.ErrOverloaded):
					atomic.AddInt64(&shed, 1)
					var oe *core.OverloadError
					if backoff && errors.As(err, &oe) && oe.RetryAfter > 0 {
						time.Sleep(oe.RetryAfter)
					}
				default:
					atomic.AddInt64(&failed, 1)
				}
			}
		}(c)
	}
	wg.Wait()
	if failed > 0 {
		return nil, fmt.Errorf("experiments: overload run had %d non-overload failures", failed)
	}
	return &OverloadResult{
		Offered:  int64(per * clients),
		Admitted: admitted,
		Shed:     shed,
		P50:      hist.Quantile(0.50),
		P99:      hist.Quantile(0.99),
		Mean:     hist.Mean(),
		Max:      hist.Max(),
		Elapsed:  time.Since(start),
	}, nil
}

// FoldingResult is one Zipfian-repeat folding run: client-visible work
// versus the engine work that served it.
type FoldingResult struct {
	ClientQueries int64         // queries answered to clients
	Elapsed       time.Duration // measurement window
	Generations   uint64        // engine generations dispatched
	EngineQueries uint64        // read activations the engine executed
	Folded        uint64        // reads served by fan-out instead
	Shed          uint64        // activations deferred by the quota
}

// ClientQPS is client-visible queries per second.
func (r *FoldingResult) ClientQPS() float64 { return float64(r.ClientQueries) / r.Elapsed.Seconds() }

// GenerationsPerSec is the engine-work rate (the quantity folding must
// hold constant while client throughput multiplies).
func (r *FoldingResult) GenerationsPerSec() float64 {
	return float64(r.Generations) / r.Elapsed.Seconds()
}

// FoldHitRate is the fraction of client queries served by folding.
func (r *FoldingResult) FoldHitRate() float64 {
	total := r.EngineQueries + r.Folded
	if total == 0 {
		return 0
	}
	return float64(r.Folded) / float64(total)
}

// Folding drives the Zipfian-repeat scenario behind the headline folding
// metric: clients closed-loop clients all issue the TPC-W title-search
// statement with parameters Zipf-drawn from a small domain (distinct
// values), so the same query-with-same-parameters arrives dozens of times
// per generation. Options.StatementQuota bounds how many activations of
// the statement one generation admits — the engine-work rate — so with
// folding OFF the excess is shed to later generations (clients wait),
// while with folding ON the duplicates collapse into the quota'd leads and
// the whole client population rides each generation. Client-visible
// queries/sec multiplies; generations/sec — work per unit time — stays
// constant.
func Folding(opts Options, clients, distinct int, window time.Duration) (*FoldingResult, error) {
	if clients < 1 {
		clients = 1
	}
	if distinct < 1 {
		distinct = 1
	}
	env, err := NewEnvWithOptions(SharedDB, opts)
	if err != nil {
		return nil, err
	}
	defer env.Close()
	sys, ok := env.Sys.(*tpcw.SharedSystem)
	if !ok {
		return nil, fmt.Errorf("experiments: Folding needs a SharedDB system")
	}

	before := sys.Engine().Stats()
	var done, failed int64
	start := time.Now()
	deadline := start.Add(window)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Zipf over the small parameter domain: skew concentrates the
			// duplicates the way a popular-item workload does.
			rng := rand.New(rand.NewSource(opts.Seed + int64(c)))
			zipf := rand.NewZipf(rng, 1.2, 1, uint64(distinct-1))
			for time.Now().Before(deadline) {
				title := fmt.Sprintf("Title %02d%%", zipf.Uint64())
				if _, err := env.Sys.Query(tpcw.StDoTitleSearch, types.NewString(title)); err == nil {
					atomic.AddInt64(&done, 1)
				} else {
					atomic.AddInt64(&failed, 1)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if failed > 0 {
		return nil, fmt.Errorf("experiments: folding run had %d failures", failed)
	}
	after := sys.Engine().Stats()
	return &FoldingResult{
		ClientQueries: done,
		Elapsed:       elapsed,
		Generations:   after.Generations - before.Generations,
		EngineQueries: after.QueriesRun - before.QueriesRun,
		Folded:        after.FoldedQueries - before.FoldedQueries,
		Shed:          after.Admission.Shed - before.Admission.Shed,
	}, nil
}

// RenderFig7 formats a Fig7 result as the paper's throughput table.
func RenderFig7(mix tpcw.Mix, res map[SystemKind][]Fig7Point) string {
	t := &harness.Table{Header: []string{"EBs", "Offered/s", "MySQL", "SystemX", "SharedDB"}}
	if len(res[SharedDB]) == 0 {
		return ""
	}
	for i, p := range res[SharedDB] {
		t.Add(p.EBs, p.Offered, res[MySQL][i].WIPS, res[SystemX][i].WIPS, p.WIPS)
	}
	return fmt.Sprintf("TPC-W %s Mix: throughput (WIPS) under varying load\n%s", mix, t)
}

// RenderFig8 formats a Fig8 result.
func RenderFig8(mix tpcw.Mix, res map[SystemKind][]Fig8Point) string {
	t := &harness.Table{Header: []string{"Cores", "MySQL", "SystemX", "SharedDB"}}
	for i, p := range res[SharedDB] {
		t.Add(p.Cores, res[MySQL][i].WIPS, res[SystemX][i].WIPS, p.WIPS)
	}
	return fmt.Sprintf("TPC-W %s Mix: max throughput vs cores\n%s", mix, t)
}

// RenderFig9 formats a Fig9 result.
func RenderFig9(res map[SystemKind][]Fig9Point) string {
	t := &harness.Table{Header: []string{"Interaction", "MySQL", "SystemX", "SharedDB"}}
	for i, p := range res[SharedDB] {
		t.Add(p.Interaction.String(), res[MySQL][i].WIPS, res[SystemX][i].WIPS, p.WIPS)
	}
	return "Max throughput (WIPS) of individual web interactions\n" + t.String()
}

// RenderFig10 formats a Fig10 result.
func RenderFig10(q Fig10Query, res map[SystemKind][]Fig10Point) string {
	t := &harness.Table{Header: []string{"Batch", "MySQL", "SystemX", "SharedDB"}}
	for i, p := range res[SharedDB] {
		t.Add(p.BatchSize, res[MySQL][i].Elapsed, res[SystemX][i].Elapsed, p.Elapsed)
	}
	return fmt.Sprintf("Response time of batches of the %s query\n%s", q, t)
}

// RenderFig11 formats a Fig11 result: total completed throughput per
// system, plus each system's completed *light* queries (the paper's
// robustness claim is about the light stream surviving heavy load).
func RenderFig11(lightRate float64, res map[SystemKind][]Fig11Point) string {
	t := &harness.Table{Header: []string{"Heavy/s",
		"MySQL", "SystemX", "SharedDB",
		"MySQL-light", "SystemX-light", "SharedDB-light"}}
	for i, p := range res[SharedDB] {
		t.Add(p.HeavyRate, res[MySQL][i].Throughput, res[SystemX][i].Throughput,
			p.Throughput, res[MySQL][i].LightDone, res[SystemX][i].LightDone, p.LightDone)
	}
	return fmt.Sprintf("Load interaction: constant %.0f light queries/s + increasing heavy queries\n%s",
		lightRate, t)
}
