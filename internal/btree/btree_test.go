package btree

import (
	"math/rand"
	"sort"
	"testing"

	"shareddb/internal/types"
)

func ik(vals ...int64) Key {
	k := make(Key, len(vals))
	for i, v := range vals {
		k[i] = types.NewInt(v)
	}
	return k
}

func TestInsertLookup(t *testing.T) {
	tr := New()
	if !tr.Insert(ik(5), 100) {
		t.Fatal("insert failed")
	}
	if tr.Insert(ik(5), 100) {
		t.Fatal("duplicate (key,rid) should be rejected")
	}
	if !tr.Insert(ik(5), 101) {
		t.Fatal("same key different rid should insert")
	}
	rids := tr.Lookup(ik(5))
	if len(rids) != 2 || rids[0] != 100 || rids[1] != 101 {
		t.Errorf("Lookup = %v", rids)
	}
	if got := tr.Lookup(ik(6)); len(got) != 0 {
		t.Errorf("Lookup(6) = %v", got)
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	tr.Insert(ik(1), 1)
	tr.Insert(ik(2), 2)
	if !tr.Delete(ik(1), 1) {
		t.Fatal("delete failed")
	}
	if tr.Delete(ik(1), 1) {
		t.Fatal("double delete should fail")
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
	if got := tr.Lookup(ik(1)); len(got) != 0 {
		t.Errorf("deleted key still found: %v", got)
	}
}

func TestSplitGrowsHeight(t *testing.T) {
	tr := New()
	for i := 0; i < 10*degree; i++ {
		tr.Insert(ik(int64(i)), uint64(i))
	}
	if tr.Height() < 2 {
		t.Errorf("expected height >= 2, got %d", tr.Height())
	}
	// all present, in order
	var got []int64
	tr.Ascend(func(k Key, rid uint64) bool {
		got = append(got, k[0].AsInt())
		return true
	})
	if len(got) != 10*degree {
		t.Fatalf("Ascend yielded %d entries", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Error("Ascend not sorted")
	}
}

func TestRangeScan(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Insert(ik(int64(i)), uint64(i))
	}
	collect := func(lo, hi Key, loIncl, hiIncl bool) []int64 {
		var out []int64
		tr.Scan(lo, hi, loIncl, hiIncl, func(k Key, _ uint64) bool {
			out = append(out, k[0].AsInt())
			return true
		})
		return out
	}
	if got := collect(ik(10), ik(13), true, true); len(got) != 4 || got[0] != 10 || got[3] != 13 {
		t.Errorf("[10,13] = %v", got)
	}
	if got := collect(ik(10), ik(13), false, false); len(got) != 2 || got[0] != 11 || got[1] != 12 {
		t.Errorf("(10,13) = %v", got)
	}
	if got := collect(nil, ik(2), true, true); len(got) != 3 {
		t.Errorf("(-inf,2] = %v", got)
	}
	if got := collect(ik(97), nil, true, true); len(got) != 3 {
		t.Errorf("[97,inf) = %v", got)
	}
	// early stop
	n := 0
	tr.Scan(nil, nil, true, true, func(Key, uint64) bool { n++; return n < 5 })
	if n != 5 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestCompositeKeyPrefixScan(t *testing.T) {
	tr := New()
	// (a, b) composite index
	for a := int64(0); a < 10; a++ {
		for b := int64(0); b < 10; b++ {
			tr.Insert(ik(a, b), uint64(a*100+b))
		}
	}
	// prefix lookup: all entries with a=4
	rids := tr.Lookup(ik(4))
	if len(rids) != 10 {
		t.Fatalf("prefix lookup found %d, want 10", len(rids))
	}
	for i, rid := range rids {
		if rid != uint64(400+i) {
			t.Errorf("rids[%d] = %d", i, rid)
		}
	}
	// exact composite lookup
	if got := tr.Lookup(ik(4, 7)); len(got) != 1 || got[0] != 407 {
		t.Errorf("exact lookup = %v", got)
	}
	// prefix range: a in [3,5)
	var count int
	tr.Scan(ik(3), ik(5), true, false, func(Key, uint64) bool { count++; return true })
	if count != 20 {
		t.Errorf("prefix range count = %d, want 20", count)
	}
}

func TestStringKeys(t *testing.T) {
	tr := New()
	words := []string{"banana", "apple", "cherry", "date", "apricot"}
	for i, w := range words {
		tr.Insert(Key{types.NewString(w)}, uint64(i))
	}
	var got []string
	tr.Ascend(func(k Key, _ uint64) bool {
		got = append(got, k[0].AsString())
		return true
	})
	want := []string{"apple", "apricot", "banana", "cherry", "date"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v", got)
		}
	}
	// LIKE-style prefix range [ap, aq)
	var pre []string
	tr.Scan(Key{types.NewString("ap")}, Key{types.NewString("aq")}, true, false,
		func(k Key, _ uint64) bool {
			pre = append(pre, k[0].AsString())
			return true
		})
	if len(pre) != 2 {
		t.Errorf("prefix scan = %v", pre)
	}
}

// reference model for property testing
type refEntry struct {
	key int64
	rid uint64
}

// Property: after a random interleaving of inserts and deletes the tree
// agrees exactly with a reference slice, in content and order.
func TestRandomizedAgainstReference(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		tr := New()
		ref := map[refEntry]bool{}
		ops := 2000
		for i := 0; i < ops; i++ {
			k := int64(r.Intn(200))
			rid := uint64(r.Intn(5))
			e := refEntry{k, rid}
			if r.Intn(3) == 0 {
				wantOK := ref[e]
				if got := tr.Delete(ik(k), rid); got != wantOK {
					t.Fatalf("Delete(%d,%d) = %v, want %v", k, rid, got, wantOK)
				}
				delete(ref, e)
			} else {
				wantOK := !ref[e]
				if got := tr.Insert(ik(k), rid); got != wantOK {
					t.Fatalf("Insert(%d,%d) = %v, want %v", k, rid, got, wantOK)
				}
				ref[e] = true
			}
		}
		if tr.Len() != len(ref) {
			t.Fatalf("Len = %d, want %d", tr.Len(), len(ref))
		}
		var want []refEntry
		for e := range ref {
			want = append(want, e)
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].key != want[j].key {
				return want[i].key < want[j].key
			}
			return want[i].rid < want[j].rid
		})
		var got []refEntry
		tr.Ascend(func(k Key, rid uint64) bool {
			got = append(got, refEntry{k[0].AsInt(), rid})
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d entries, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: entry %d = %v, want %v", trial, i, got[i], want[i])
			}
		}
		// spot-check random range scans against the reference
		for j := 0; j < 10; j++ {
			lo := int64(r.Intn(200))
			hi := lo + int64(r.Intn(50))
			wantN := 0
			for e := range ref {
				if e.key >= lo && e.key <= hi {
					wantN++
				}
			}
			gotN := 0
			tr.Scan(ik(lo), ik(hi), true, true, func(Key, uint64) bool { gotN++; return true })
			if gotN != wantN {
				t.Fatalf("range [%d,%d]: got %d, want %d", lo, hi, gotN, wantN)
			}
		}
	}
}

func TestCompareKeys(t *testing.T) {
	if CompareKeys(ik(1, 2), ik(1, 3)) >= 0 {
		t.Error("lexicographic order wrong")
	}
	if CompareKeys(ik(1), ik(1, 5)) != 0 {
		t.Error("prefix should compare equal")
	}
	if CompareKeys(ik(2), ik(1, 5)) <= 0 {
		t.Error("prefix order wrong")
	}
}

func BenchmarkInsert(b *testing.B) {
	tr := New()
	for i := 0; i < b.N; i++ {
		tr.Insert(ik(int64(i)), uint64(i))
	}
}

func BenchmarkLookup(b *testing.B) {
	tr := New()
	for i := 0; i < 100000; i++ {
		tr.Insert(ik(int64(i)), uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(ik(int64(i % 100000)))
	}
}
