// Package btree implements the in-memory B+tree used by the Crescando
// storage manager for index probes and index nested-loop joins (paper §4.4:
// "we extended Crescando and implemented B-Tree indexes and index probe
// operators as an additional access path").
//
// The tree maps composite keys (one types.Value per indexed column) to row
// identifiers. Duplicate keys are allowed (non-unique indexes); the
// (key, rowID) pair is the unit of storage. Leaves are chained for fast
// range scans.
//
// Deletion removes entries from leaves without rebalancing: the tree never
// shrinks in height. This is a deliberate simplification — the workloads the
// engine targets are insert-heavy (TPC-W) and the MVCC storage layer retires
// whole index generations on checkpoint, at which point the index is rebuilt
// compactly. Correctness is unaffected and verified by property tests
// against a reference implementation.
package btree

import (
	"shareddb/internal/types"
)

// degree is the maximum number of entries per node (order of the tree).
const degree = 64

// Key is a composite index key: one value per indexed column.
type Key []types.Value

// CompareKeys orders two keys lexicographically over their common prefix.
// If the prefixes are equal the keys compare equal, regardless of length —
// this is what makes a short key usable as a prefix bound in Scan (e.g.
// scanning a two-column index for all entries with a given first column).
func CompareKeys(a, b Key) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if d := a[i].Compare(b[i]); d != 0 {
			return d
		}
	}
	return 0
}

// compareFull orders (key, rid) pairs totally: lexicographic key order with
// the row id as a tie-break. Full keys inside the tree always have the same
// length, so prefix semantics never apply here.
func compareFull(ak Key, ar uint64, bk Key, br uint64) int {
	if d := CompareKeys(ak, bk); d != 0 {
		return d
	}
	switch {
	case ar < br:
		return -1
	case ar > br:
		return 1
	default:
		return 0
	}
}

type entry struct {
	key Key
	rid uint64
}

type node struct {
	// Internal nodes: len(children) == len(keys)+1; keys[i] is the smallest
	// full entry of the subtree children[i+1].
	// Leaves: children == nil; entries sorted by (key, rid); next links the
	// leaf chain.
	keys     []entry
	children []*node
	next     *node
	leaf     bool
}

// Tree is a B+tree index. It is not safe for concurrent mutation; the
// storage manager serializes writers per batch cycle and readers run against
// quiesced trees between cycles.
type Tree struct {
	root *node
	size int
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &node{leaf: true}}
}

// Len returns the number of (key, rowID) entries.
func (t *Tree) Len() int { return t.size }

// Insert adds the (key, rid) pair. Inserting an exact duplicate pair is a
// no-op returning false.
func (t *Tree) Insert(key Key, rid uint64) bool {
	k := make(Key, len(key))
	copy(k, key)
	inserted, split, sepEntry, right := t.insert(t.root, entry{key: k, rid: rid})
	if split {
		newRoot := &node{
			keys:     []entry{sepEntry},
			children: []*node{t.root, right},
		}
		t.root = newRoot
	}
	if inserted {
		t.size++
	}
	return inserted
}

// insert returns (inserted, didSplit, separator, rightSibling).
func (t *Tree) insert(n *node, e entry) (bool, bool, entry, *node) {
	if n.leaf {
		i := n.lowerBound(e.key, e.rid)
		if i < len(n.keys) && compareFull(n.keys[i].key, n.keys[i].rid, e.key, e.rid) == 0 {
			return false, false, entry{}, nil
		}
		n.keys = append(n.keys, entry{})
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = e
		if len(n.keys) > degree {
			sep, right := n.splitLeaf()
			return true, true, sep, right
		}
		return true, false, entry{}, nil
	}
	ci := n.childIndex(e.key, e.rid)
	inserted, split, sep, right := t.insert(n.children[ci], e)
	if split {
		n.keys = append(n.keys, entry{})
		copy(n.keys[ci+1:], n.keys[ci:])
		n.keys[ci] = sep
		n.children = append(n.children, nil)
		copy(n.children[ci+2:], n.children[ci+1:])
		n.children[ci+1] = right
		if len(n.keys) > degree {
			sep2, right2 := n.splitInternal()
			return inserted, true, sep2, right2
		}
	}
	return inserted, false, entry{}, nil
}

// lowerBound returns the first position in a leaf whose (key,rid) >= the
// given pair.
func (n *node) lowerBound(key Key, rid uint64) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if compareFull(n.keys[mid].key, n.keys[mid].rid, key, rid) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childIndex picks the subtree for the given (key, rid) in an internal node.
func (n *node) childIndex(key Key, rid uint64) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if compareFull(key, rid, n.keys[mid].key, n.keys[mid].rid) < 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

func (n *node) splitLeaf() (entry, *node) {
	mid := len(n.keys) / 2
	right := &node{leaf: true, next: n.next}
	right.keys = append(right.keys, n.keys[mid:]...)
	n.keys = n.keys[:mid:mid]
	n.next = right
	return right.keys[0], right
}

func (n *node) splitInternal() (entry, *node) {
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	right := &node{}
	right.keys = append(right.keys, n.keys[mid+1:]...)
	right.children = append(right.children, n.children[mid+1:]...)
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return sep, right
}

// Delete removes the (key, rid) pair, reporting whether it was present.
func (t *Tree) Delete(key Key, rid uint64) bool {
	n := t.root
	for !n.leaf {
		n = n.children[n.childIndex(key, rid)]
	}
	i := n.lowerBound(key, rid)
	if i >= len(n.keys) || compareFull(n.keys[i].key, n.keys[i].rid, key, rid) != 0 {
		return false
	}
	copy(n.keys[i:], n.keys[i+1:])
	n.keys = n.keys[:len(n.keys)-1]
	t.size--
	return true
}

// SeekEQ invokes fn for every row id whose key equals key (prefix semantics:
// a short key matches all entries sharing that prefix). Iteration stops early
// if fn returns false.
func (t *Tree) SeekEQ(key Key, fn func(rid uint64) bool) {
	t.Scan(key, key, true, true, func(_ Key, rid uint64) bool { return fn(rid) })
}

// Lookup returns all row ids matching key (prefix semantics).
func (t *Tree) Lookup(key Key) []uint64 {
	var out []uint64
	t.SeekEQ(key, func(rid uint64) bool {
		out = append(out, rid)
		return true
	})
	return out
}

// Scan iterates entries in key order over [lo, hi] with per-bound
// inclusiveness; nil bounds are unbounded. Prefix semantics apply to both
// bounds. Iteration stops early if fn returns false.
func (t *Tree) Scan(lo, hi Key, loIncl, hiIncl bool, fn func(key Key, rid uint64) bool) {
	n := t.root
	if lo == nil {
		for !n.leaf {
			n = n.children[0]
		}
	} else {
		for !n.leaf {
			// Descend to the leftmost leaf that can contain entries with
			// key >= lo: treat lo as having rid 0 (smallest).
			n = n.children[n.childIndex(lo, 0)]
		}
	}
	for n != nil {
		for _, e := range n.keys {
			if lo != nil {
				d := CompareKeys(e.key, lo)
				if d < 0 || (d == 0 && !loIncl) {
					continue
				}
			}
			if hi != nil {
				d := CompareKeys(e.key, hi)
				if d > 0 || (d == 0 && !hiIncl) {
					return
				}
			}
			if !fn(e.key, e.rid) {
				return
			}
		}
		n = n.next
	}
}

// Ascend iterates all entries in key order.
func (t *Tree) Ascend(fn func(key Key, rid uint64) bool) {
	t.Scan(nil, nil, true, true, fn)
}

// Height returns the tree height (1 for a lone leaf); used in tests.
func (t *Tree) Height() int {
	h, n := 1, t.root
	for !n.leaf {
		h++
		n = n.children[0]
	}
	return h
}
