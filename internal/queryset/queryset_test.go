package queryset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestOfDeduplicatesAndSorts(t *testing.T) {
	s := Of(3, 1, 2, 3, 1)
	want := []QueryID{1, 2, 3}
	got := s.IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs() = %v, want %v", got, want)
		}
	}
	if s.String() != "{1, 2, 3}" {
		t.Errorf("String() = %q", s.String())
	}
}

func TestEmptySet(t *testing.T) {
	var s Set
	if !s.Empty() || s.Len() != 0 || s.Contains(1) {
		t.Error("zero Set should be empty")
	}
	if !s.Union(Of(1)).Equal(Of(1)) {
		t.Error("∅ ∪ {1} != {1}")
	}
	if !s.Intersect(Of(1)).Empty() {
		t.Error("∅ ∩ {1} != ∅")
	}
}

func TestContains(t *testing.T) {
	s := Of(2, 4, 6, 8)
	for _, id := range []QueryID{2, 4, 6, 8} {
		if !s.Contains(id) {
			t.Errorf("should contain %d", id)
		}
	}
	for _, id := range []QueryID{0, 1, 3, 5, 7, 9} {
		if s.Contains(id) {
			t.Errorf("should not contain %d", id)
		}
	}
	// exercise the binary-search path (>16 elements)
	big := make([]QueryID, 50)
	for i := range big {
		big[i] = QueryID(i * 2)
	}
	bs := FromSorted(big)
	if !bs.Contains(48) || bs.Contains(49) {
		t.Error("binary search path wrong")
	}
}

func TestAdd(t *testing.T) {
	s := Of(1, 3)
	s2 := s.Add(2)
	if !s2.Equal(Of(1, 2, 3)) {
		t.Errorf("Add(2) = %v", s2)
	}
	if !s.Equal(Of(1, 3)) {
		t.Error("Add mutated the receiver")
	}
	if got := s.Add(3); !got.Equal(s) {
		t.Error("adding existing member should be identity")
	}
}

func TestUnionIntersectMinus(t *testing.T) {
	a, b := Of(1, 2, 3, 5), Of(2, 4, 5, 6)
	if got := a.Union(b); !got.Equal(Of(1, 2, 3, 4, 5, 6)) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(Of(2, 5)) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Minus(b); !got.Equal(Of(1, 3)) {
		t.Errorf("Minus = %v", got)
	}
	if !a.Intersects(b) {
		t.Error("Intersects should be true")
	}
	if Of(1, 2).Intersects(Of(3, 4)) {
		t.Error("disjoint sets should not intersect")
	}
	// disjoint-range fast path
	if Of(1, 2).Intersects(Of(100, 200)) {
		t.Error("range fast path broken")
	}
}

func TestRetain(t *testing.T) {
	s := Of(1, 2, 3, 4, 5)
	even := s.Retain(func(id QueryID) bool { return id%2 == 0 })
	if !even.Equal(Of(2, 4)) {
		t.Errorf("Retain = %v", even)
	}
}

func randSet(r *rand.Rand) Set {
	n := r.Intn(20)
	ids := make([]QueryID, n)
	for i := range ids {
		ids[i] = QueryID(r.Intn(64))
	}
	return Of(ids...)
}

// Property: set algebra laws hold for the list implementation.
func TestSetAlgebraProperties(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		a, b, c := randSet(r), randSet(r), randSet(r)
		if !a.Union(b).Equal(b.Union(a)) {
			t.Fatalf("union not commutative: %v %v", a, b)
		}
		if !a.Intersect(b).Equal(b.Intersect(a)) {
			t.Fatalf("intersect not commutative: %v %v", a, b)
		}
		if !a.Union(a).Equal(a) || !a.Intersect(a).Equal(a) {
			t.Fatalf("not idempotent: %v", a)
		}
		if !a.Union(b.Union(c)).Equal(a.Union(b).Union(c)) {
			t.Fatalf("union not associative")
		}
		// distributivity: a ∩ (b ∪ c) == (a∩b) ∪ (a∩c)
		if !a.Intersect(b.Union(c)).Equal(a.Intersect(b).Union(a.Intersect(c))) {
			t.Fatalf("not distributive")
		}
		if a.Intersects(b) != !a.Intersect(b).Empty() {
			t.Fatalf("Intersects inconsistent with Intersect")
		}
		// minus: (a \ b) ∩ b == ∅ and (a\b) ∪ (a∩b) == a
		if !a.Minus(b).Intersect(b).Empty() {
			t.Fatalf("minus leaves members of b")
		}
		if !a.Minus(b).Union(a.Intersect(b)).Equal(a) {
			t.Fatalf("minus/intersect don't partition")
		}
	}
}

// Property: the list and bitmap representations agree.
func TestListBitmapEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		a, b := randSet(r), randSet(r)
		ba, bb := BitmapOf(64, a.IDs()...), BitmapOf(64, b.IDs()...)
		if !ba.Union(bb).ToSet().Equal(a.Union(b)) {
			t.Fatalf("bitmap union disagrees: %v %v", a, b)
		}
		if !ba.Intersect(bb).ToSet().Equal(a.Intersect(b)) {
			t.Fatalf("bitmap intersect disagrees: %v %v", a, b)
		}
		if ba.Intersects(bb) != a.Intersects(b) {
			t.Fatalf("bitmap Intersects disagrees")
		}
		if ba.Len() != a.Len() || ba.Empty() != a.Empty() {
			t.Fatalf("bitmap len/empty disagrees")
		}
	}
}

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(10)
	if !b.Empty() {
		t.Error("new bitmap should be empty")
	}
	b.Set(3)
	b.Set(200) // beyond initial universe: must grow
	if !b.Contains(3) || !b.Contains(200) || b.Contains(4) {
		t.Error("membership wrong")
	}
	ids := b.IDs()
	if len(ids) != 2 || ids[0] != 3 || ids[1] != 200 {
		t.Errorf("IDs = %v", ids)
	}
}

func TestFromSortedAdoptsSlice(t *testing.T) {
	ids := []QueryID{1, 5, 9}
	s := FromSorted(ids)
	if s.Len() != 3 || !s.Contains(5) {
		t.Error("FromSorted wrong")
	}
}

func TestSingle(t *testing.T) {
	s := Single(7)
	if s.Len() != 1 || !s.Contains(7) {
		t.Error("Single wrong")
	}
}

func TestQuickUnionSorted(t *testing.T) {
	f := func(xs, ys []uint32) bool {
		a, b := Of(xs...), Of(ys...)
		u := a.Union(b).IDs()
		return sort.SliceIsSorted(u, func(i, j int) bool { return u[i] < u[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
