package queryset

import "math/bits"

// Bitmap is the alternative set representation considered (and rejected) by
// the paper for the query_id attribute (§3.1: "In the literature, two data
// structures have been proposed: (a) bitmaps and (b) lists"). It is kept so
// the representation choice can be benchmarked (DESIGN.md ablation A1):
// bitmaps win when sets are dense relative to the id universe, lists win for
// the sparse sets typical of shared plans.
type Bitmap struct {
	words []uint64
}

// NewBitmap returns an empty bitmap sized for ids in [0, universe).
func NewBitmap(universe int) *Bitmap {
	return &Bitmap{words: make([]uint64, (universe+63)/64)}
}

// BitmapOf builds a bitmap containing the given ids.
func BitmapOf(universe int, ids ...QueryID) *Bitmap {
	b := NewBitmap(universe)
	for _, id := range ids {
		b.Set(id)
	}
	return b
}

// Set adds id to the bitmap, growing it as needed.
func (b *Bitmap) Set(id QueryID) {
	w := int(id / 64)
	for w >= len(b.words) {
		b.words = append(b.words, 0)
	}
	b.words[w] |= 1 << (id % 64)
}

// Contains reports membership of id.
func (b *Bitmap) Contains(id QueryID) bool {
	w := int(id / 64)
	return w < len(b.words) && b.words[w]&(1<<(id%64)) != 0
}

// Len returns the number of set bits.
func (b *Bitmap) Len() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether no bit is set.
func (b *Bitmap) Empty() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Union returns a new bitmap b ∪ o.
func (b *Bitmap) Union(o *Bitmap) *Bitmap {
	long, short := b.words, o.words
	if len(short) > len(long) {
		long, short = short, long
	}
	out := make([]uint64, len(long))
	copy(out, long)
	for i, w := range short {
		out[i] |= w
	}
	return &Bitmap{words: out}
}

// Intersect returns a new bitmap b ∩ o.
func (b *Bitmap) Intersect(o *Bitmap) *Bitmap {
	n := len(b.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = b.words[i] & o.words[i]
	}
	return &Bitmap{words: out}
}

// Intersects reports whether b ∩ o is non-empty without materializing it.
func (b *Bitmap) Intersects(o *Bitmap) bool {
	n := len(b.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		if b.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// IDs returns the members in ascending order.
func (b *Bitmap) IDs() []QueryID {
	out := make([]QueryID, 0, b.Len())
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			out = append(out, QueryID(wi*64+bit))
			w &= w - 1
		}
	}
	return out
}

// ToSet converts the bitmap to the list representation.
func (b *Bitmap) ToSet() Set { return FromSorted(b.IDs()) }
