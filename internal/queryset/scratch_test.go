package queryset

import (
	"testing"

	"shareddb/internal/testutil"
)

// Correctness of the scratch (zero-allocation) set operations against their
// allocating counterparts, plus AllocsPerRun gates pinning the
// steady-state routing path at zero allocations.

func TestIntersectIntoMatchesIntersect(t *testing.T) {
	cases := [][2]Set{
		{Of(), Of()},
		{Of(1, 2, 3), Of()},
		{Of(), Of(4, 5)},
		{Of(1, 2, 3), Of(2, 3, 4)},
		{Of(1, 5, 9), Of(2, 6, 10)},
		{Of(1, 2, 3, 4, 5), Of(1, 2, 3, 4, 5)},
		{Of(1), Of(1)},
		{Of(1, 3), Of(2, 4)},
		{Of(10, 20, 30), Of(1, 2, 3)}, // disjoint ranges fast path
	}
	var scratch []QueryID
	for _, c := range cases {
		want := c[0].Intersect(c[1])
		got := c[0].IntersectInto(c[1], scratch)
		if !got.Equal(want) {
			t.Errorf("IntersectInto(%v, %v) = %v, want %v", c[0], c[1], got, want)
		}
		scratch = got.IDs()
		wantU := c[0].Union(c[1])
		gotU := c[0].UnionInto(c[1], nil)
		if !gotU.Equal(wantU) {
			t.Errorf("UnionInto(%v, %v) = %v, want %v", c[0], c[1], gotU, wantU)
		}
	}
}

func TestRetainIntoMatchesRetain(t *testing.T) {
	s := Of(1, 2, 3, 4, 5, 6)
	keep := func(id QueryID) bool { return id%2 == 0 }
	want := s.Retain(keep)
	got := s.RetainInto(keep, nil)
	if !got.Equal(want) {
		t.Errorf("RetainInto = %v, want %v", got, want)
	}
}

func TestArenaSetsSurviveGrowth(t *testing.T) {
	var a Arena
	big := Of(1, 2, 3, 4, 5, 6, 7, 8)
	var stored []Set
	// Enough appends to force several arena growths.
	for i := 0; i < 100; i++ {
		stored = append(stored, a.Intersect(big, Of(QueryID(i%8)+1)))
	}
	for i, s := range stored {
		want := Single(QueryID(i%8) + 1)
		if !s.Equal(want) {
			t.Fatalf("stored[%d] = %v, want %v (clobbered by arena growth?)", i, s, want)
		}
	}
	a.Reset()
	if a.Cap() == 0 {
		t.Error("Reset dropped the arena backing array")
	}
}

func TestArenaAppendEmpty(t *testing.T) {
	var a Arena
	if got := a.Append(Set{}); !got.Empty() {
		t.Errorf("Append(empty) = %v", got)
	}
	if got := a.Intersect(Of(1), Of(2)); !got.Empty() {
		t.Errorf("Intersect(disjoint) = %v", got)
	}
}

// TestIntersectIntoZeroAlloc is an allocation-regression gate: routing a
// tuple's set against an edge's set through scratch must not allocate.
func TestIntersectIntoZeroAlloc(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	a := Of(1, 2, 3, 5, 8)
	b := Of(2, 3, 4, 5, 9)
	scratch := make([]QueryID, 0, 8)
	allocs := testing.AllocsPerRun(1000, func() {
		s := a.IntersectInto(b, scratch)
		scratch = s.IDs()
	})
	if allocs != 0 {
		t.Errorf("IntersectInto allocates %.1f/op, want 0", allocs)
	}
}

// TestArenaSteadyStateZeroAlloc pins that a warmed arena absorbs
// intersections without allocating.
func TestArenaSteadyStateZeroAlloc(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	a := Of(1, 2, 3, 5, 8)
	b := Of(2, 3, 4, 5, 9)
	var arena Arena
	allocs := testing.AllocsPerRun(1000, func() {
		arena.Reset()
		for i := 0; i < 16; i++ {
			arena.Intersect(a, b)
		}
	})
	if allocs != 0 {
		t.Errorf("warmed Arena.Intersect allocates %.1f/run, want 0", allocs)
	}
}
