package queryset

import (
	"testing"
)

// Ablation A1 (DESIGN.md): list vs bitmap representation of the query_id
// set (§3.1: "we chose to use a list-based implementation because that
// turned out to be the more space and time efficient option in all our
// experiments"). For the sparse sets typical of shared plans (a handful of
// subscribers out of hundreds of active queries), lists win; bitmaps only
// catch up when sets are dense.

func sparseSets(universe, members int) (Set, Set, *Bitmap, *Bitmap) {
	a := make([]QueryID, 0, members)
	bIDs := make([]QueryID, 0, members)
	for i := 0; i < members; i++ {
		a = append(a, QueryID(i*universe/members))
		bIDs = append(bIDs, QueryID(i*universe/members+universe/(2*members)))
	}
	la, lb := Of(a...), Of(bIDs...)
	return la, lb, BitmapOf(universe, a...), BitmapOf(universe, bIDs...)
}

func BenchmarkAblation_QuerySetListVsBitmap(b *testing.B) {
	cases := []struct {
		name              string
		universe, members int
	}{
		{"sparse_1024q_8members", 1024, 8},
		{"medium_1024q_64members", 1024, 64},
		{"dense_1024q_512members", 1024, 512},
	}
	for _, c := range cases {
		la, lb, ba, bb := sparseSets(c.universe, c.members)
		b.Run(c.name+"/list_intersect", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = la.Intersect(lb)
			}
		})
		b.Run(c.name+"/bitmap_intersect", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = ba.Intersect(bb)
			}
		})
		b.Run(c.name+"/list_union", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = la.Union(lb)
			}
		})
		b.Run(c.name+"/bitmap_union", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = ba.Union(bb)
			}
		})
	}
}

func BenchmarkOf(b *testing.B) {
	ids := make([]QueryID, 128)
	for i := range ids {
		ids[i] = QueryID(i)
	}
	b.Run("sorted_fastpath", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = Of(ids...)
		}
	})
	rev := make([]QueryID, 128)
	for i := range rev {
		rev[i] = QueryID(127 - i)
	}
	b.Run("unsorted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = Of(rev...)
		}
	})
}
