// Package queryset implements the set-valued query_id attribute of
// SharedDB's data-query model (paper §3.1, Figure 1).
//
// Every intermediate tuple in a SharedDB plan carries the set of identifiers
// of queries potentially interested in it, so an operator touches each tuple
// once regardless of how many concurrent queries subscribed to it (the NF2
// representation on the right of Figure 1). The paper evaluated bitmap and
// list representations and chose sorted lists; Set is that list
// implementation. A bitmap variant lives in bitmap.go for the ablation
// benchmark (DESIGN.md A1).
//
// QueryIDs are generation-scoped: each engine generation numbers its
// queries densely from 1, which keeps sets small and lets operators use
// id-indexed slices. With pipelined generations the same ids are live in
// several generations at once — isolation comes from generation-tagged
// routing (every message, cycle and edge query-set carries its generation),
// never from the id space itself.
package queryset

import (
	"sort"
	"strconv"
	"strings"
)

// QueryID identifies one active query within a batch generation.
type QueryID = uint32

// Set is an immutable sorted list of query identifiers. The zero value is
// the empty set. Sets are value types; operations return new sets and never
// mutate their receivers, so sets can be shared across tuples and operators
// without copying.
type Set struct {
	ids []QueryID // sorted ascending, no duplicates
}

// Of builds a set from the given ids (deduplicated, any order). Already
// sorted duplicate-free input — the common case when sets are assembled by
// in-order scans — takes a copy-only fast path.
func Of(ids ...QueryID) Set {
	if len(ids) == 0 {
		return Set{}
	}
	sorted := true
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			sorted = false
			break
		}
	}
	s := make([]QueryID, len(ids))
	copy(s, ids)
	if sorted {
		return Set{ids: s}
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:1]
	for _, id := range s[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return Set{ids: out}
}

// FromSorted adopts a sorted, duplicate-free slice without copying.
// The caller must not modify the slice afterwards.
func FromSorted(ids []QueryID) Set { return Set{ids: ids} }

// Single returns the singleton set {id}.
func Single(id QueryID) Set { return Set{ids: []QueryID{id}} }

// Len returns the cardinality of the set.
func (s Set) Len() int { return len(s.ids) }

// Empty reports whether the set has no members.
func (s Set) Empty() bool { return len(s.ids) == 0 }

// Contains reports whether id is a member.
func (s Set) Contains(id QueryID) bool {
	// Sets are typically tiny (a handful of subscribed queries);
	// linear scan beats binary search until ~16 entries.
	if len(s.ids) <= 16 {
		for _, x := range s.ids {
			if x == id {
				return true
			}
			if x > id {
				return false
			}
		}
		return false
	}
	i := sort.Search(len(s.ids), func(i int) bool { return s.ids[i] >= id })
	return i < len(s.ids) && s.ids[i] == id
}

// IDs returns the members in ascending order. The returned slice is shared;
// callers must not modify it.
func (s Set) IDs() []QueryID { return s.ids }

// Add returns s ∪ {id}.
func (s Set) Add(id QueryID) Set {
	i := sort.Search(len(s.ids), func(i int) bool { return s.ids[i] >= id })
	if i < len(s.ids) && s.ids[i] == id {
		return s
	}
	out := make([]QueryID, 0, len(s.ids)+1)
	out = append(out, s.ids[:i]...)
	out = append(out, id)
	out = append(out, s.ids[i:]...)
	return Set{ids: out}
}

// Union returns s ∪ o using a linear merge.
func (s Set) Union(o Set) Set {
	if s.Empty() {
		return o
	}
	if o.Empty() {
		return s
	}
	out := make([]QueryID, 0, len(s.ids)+len(o.ids))
	i, j := 0, 0
	for i < len(s.ids) && j < len(o.ids) {
		a, b := s.ids[i], o.ids[j]
		switch {
		case a < b:
			out = append(out, a)
			i++
		case a > b:
			out = append(out, b)
			j++
		default:
			out = append(out, a)
			i++
			j++
		}
	}
	out = append(out, s.ids[i:]...)
	out = append(out, o.ids[j:]...)
	return Set{ids: out}
}

// Intersect returns s ∩ o using a linear merge. This is the hot operation:
// it implements the amended join predicate R.query_id ∩ S.query_id ≠ ∅ of
// the shared join (paper Figure 3).
func (s Set) Intersect(o Set) Set {
	if s.Empty() || o.Empty() {
		return Set{}
	}
	// Fast path: disjoint ranges.
	if s.ids[len(s.ids)-1] < o.ids[0] || o.ids[len(o.ids)-1] < s.ids[0] {
		return Set{}
	}
	var out []QueryID
	i, j := 0, 0
	for i < len(s.ids) && j < len(o.ids) {
		a, b := s.ids[i], o.ids[j]
		switch {
		case a < b:
			i++
		case a > b:
			j++
		default:
			out = append(out, a)
			i++
			j++
		}
	}
	return Set{ids: out}
}

// IntersectInto computes s ∩ o into dst (reusing dst's backing array) and
// returns the result as a Set aliasing dst. The returned set is valid only
// until the caller reuses dst; it is the zero-allocation variant of
// Intersect for hot routing paths (the emitter's per-edge query-set
// restriction and the join's amended predicate), where the result is
// immediately copied into a longer-lived arena or consumed before the next
// call. dst may be nil (the first call then allocates; steady-state calls
// reuse the grown backing via Grow/IDs).
func (s Set) IntersectInto(o Set, dst []QueryID) Set {
	out := dst[:0]
	if s.Empty() || o.Empty() {
		return Set{ids: out}
	}
	if s.ids[len(s.ids)-1] < o.ids[0] || o.ids[len(o.ids)-1] < s.ids[0] {
		return Set{ids: out}
	}
	i, j := 0, 0
	for i < len(s.ids) && j < len(o.ids) {
		a, b := s.ids[i], o.ids[j]
		switch {
		case a < b:
			i++
		case a > b:
			j++
		default:
			out = append(out, a)
			i++
			j++
		}
	}
	return Set{ids: out}
}

// UnionInto computes s ∪ o into dst (reusing dst's backing array) and
// returns the result as a Set aliasing dst. Same validity contract as
// IntersectInto. dst must not alias s or o.
func (s Set) UnionInto(o Set, dst []QueryID) Set {
	out := dst[:0]
	i, j := 0, 0
	for i < len(s.ids) && j < len(o.ids) {
		a, b := s.ids[i], o.ids[j]
		switch {
		case a < b:
			out = append(out, a)
			i++
		case a > b:
			out = append(out, b)
			j++
		default:
			out = append(out, a)
			i++
			j++
		}
	}
	out = append(out, s.ids[i:]...)
	out = append(out, o.ids[j:]...)
	return Set{ids: out}
}

// RetainInto computes the subset of s satisfying keep into dst (reusing
// dst's backing array), with the same validity contract as IntersectInto.
// It is the zero-allocation variant of Retain for per-tuple predicate
// routing (filters, sort Top-N cutoffs, index-join residuals).
func (s Set) RetainInto(keep func(QueryID) bool, dst []QueryID) Set {
	out := dst[:0]
	for _, id := range s.ids {
		if keep(id) {
			out = append(out, id)
		}
	}
	return Set{ids: out}
}

// Intersects reports whether s ∩ o is non-empty without materializing it.
func (s Set) Intersects(o Set) bool {
	if s.Empty() || o.Empty() {
		return false
	}
	if s.ids[len(s.ids)-1] < o.ids[0] || o.ids[len(o.ids)-1] < s.ids[0] {
		return false
	}
	i, j := 0, 0
	for i < len(s.ids) && j < len(o.ids) {
		a, b := s.ids[i], o.ids[j]
		switch {
		case a < b:
			i++
		case a > b:
			j++
		default:
			return true
		}
	}
	return false
}

// Arena is a bump allocator for query-id sets with a common lifetime: all
// sets created from one arena die together, at which point Reset reclaims
// the whole backing array at once. The routing hot path uses one arena per
// in-flight batch (internal/operators), so intersecting a tuple's set
// against an edge's active set allocates nothing in steady state — the ids
// land in the batch's arena and are recycled with it.
//
// Appending may grow the arena by allocating a fresh backing array;
// previously returned sets keep aliasing the old array (which stays alive
// through their references), so they remain valid until Reset. An Arena is
// single-owner: callers must not share one across goroutines without
// external synchronization (batch hand-off through SyncedQueue provides
// it).
type Arena struct {
	buf []QueryID
}

// Reset discards all sets allocated from the arena, keeping the (largest)
// backing array for reuse. Only call once every set previously returned by
// the arena is dead.
func (a *Arena) Reset() { a.buf = a.buf[:0] }

// Cap returns the arena's current backing capacity (diagnostics).
func (a *Arena) Cap() int { return cap(a.buf) }

// Intersect appends s ∩ o to the arena and returns the stored set. The
// returned set is capacity-clipped so later arena appends cannot write
// through it.
func (a *Arena) Intersect(s, o Set) Set {
	start := len(a.buf)
	if s.Empty() || o.Empty() {
		return Set{}
	}
	if s.ids[len(s.ids)-1] < o.ids[0] || o.ids[len(o.ids)-1] < s.ids[0] {
		return Set{}
	}
	i, j := 0, 0
	for i < len(s.ids) && j < len(o.ids) {
		x, y := s.ids[i], o.ids[j]
		switch {
		case x < y:
			i++
		case x > y:
			j++
		default:
			a.buf = append(a.buf, x)
			i++
			j++
		}
	}
	return Set{ids: a.buf[start:len(a.buf):len(a.buf)]}
}

// Append copies s into the arena and returns the stored copy.
func (a *Arena) Append(s Set) Set {
	if s.Empty() {
		return Set{}
	}
	start := len(a.buf)
	a.buf = append(a.buf, s.ids...)
	return Set{ids: a.buf[start:len(a.buf):len(a.buf)]}
}

// Minus returns s \ o.
func (s Set) Minus(o Set) Set {
	if s.Empty() || o.Empty() {
		return s
	}
	var out []QueryID
	j := 0
	for _, a := range s.ids {
		for j < len(o.ids) && o.ids[j] < a {
			j++
		}
		if j < len(o.ids) && o.ids[j] == a {
			continue
		}
		out = append(out, a)
	}
	return Set{ids: out}
}

// Retain returns the subset of s whose members satisfy keep. Used by output
// routing to restrict a tuple's set to the queries owned by one consumer.
func (s Set) Retain(keep func(QueryID) bool) Set {
	var out []QueryID
	for _, id := range s.ids {
		if keep(id) {
			out = append(out, id)
		}
	}
	return Set{ids: out}
}

// Equal reports set equality.
func (s Set) Equal(o Set) bool {
	if len(s.ids) != len(o.ids) {
		return false
	}
	for i := range s.ids {
		if s.ids[i] != o.ids[i] {
			return false
		}
	}
	return true
}

// String renders the set as "{1, 2, 3}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, id := range s.ids {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(strconv.FormatUint(uint64(id), 10))
	}
	b.WriteByte('}')
	return b.String()
}
