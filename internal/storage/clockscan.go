package storage

import (
	"slices"
	"sort"

	"shareddb/internal/expr"
	"shareddb/internal/par"
	"shareddb/internal/queryset"
	"shareddb/internal/types"
)

// ClockScan is the shared table scan of the Crescando storage manager
// (Unterbrunner et al., cited as [28]; paper §4.4). It batches the read
// queries of one cycle and answers all of them in a single pass over the
// table. "Performance is increased by indexing the query predicates instead
// of the data and performing query-data joins": equality predicates are
// hashed by (column, value) and range predicates are kept in per-column
// interval lists sorted by lower bound, so each record is matched against
// the whole query batch in (near-)constant time instead of evaluating every
// query's predicate on every record.
//
// The scan produces rows in SharedDB's data-query model: each emitted row
// carries the set of query ids interested in it (paper §3.1, Figure 1).

// ScanClient is one read query participating in a scan cycle.
type ScanClient struct {
	ID   queryset.QueryID
	Pred expr.Expr // bound predicate over the table schema; nil = all rows
}

// eqProbe is a query hanging off an equality predicate index entry. val is
// the pinned column value: the index is keyed by the value's 64-bit hash
// (no per-row key encoding), so hash collisions are resolved by comparing
// against val.
type eqProbe struct {
	id       queryset.QueryID
	val      types.Value
	residual expr.Expr
}

// rangeProbe is a query indexed by a range predicate on one column.
type rangeProbe struct {
	rng      expr.Range
	id       queryset.QueryID
	residual expr.Expr
}

// predIndex is the per-cycle query index of a ClockScan.
type predIndex struct {
	// eq[col][hash(value)] → queries whose predicate pins col to a value
	// with that hash (collisions verified against eqProbe.val, so row
	// matching never encodes a key).
	eq map[int]map[uint64][]eqProbe
	// ranges[col] → queries with an interval constraint on col, sorted by
	// lower bound (unbounded first) for early termination.
	ranges map[int][]rangeProbe
	// rest: queries that could not be indexed (disjunctions, LIKE-only, no
	// predicate); evaluated per record.
	rest []eqProbe
}

// buildPredIndex classifies every client by its most selective indexable
// conjunct.
func buildPredIndex(clients []ScanClient) *predIndex {
	pi := &predIndex{eq: map[int]map[uint64][]eqProbe{}, ranges: map[int][]rangeProbe{}}
	for _, c := range clients {
		conjs := expr.Conjuncts(c.Pred)
		// Prefer an equality conjunct; otherwise a range conjunct.
		eqAt := -1
		rngAt := -1
		for i, cj := range conjs {
			if _, _, ok := expr.EqualityMatch(cj); ok {
				eqAt = i
				break
			}
			if rngAt < 0 {
				if _, ok := expr.RangeMatch(cj); ok {
					rngAt = i
				}
			}
		}
		switch {
		case eqAt >= 0:
			col, val, _ := expr.EqualityMatch(conjs[eqAt])
			residual := expr.AndOf(removeAt(conjs, eqAt))
			m := pi.eq[col]
			if m == nil {
				m = map[uint64][]eqProbe{}
				pi.eq[col] = m
			}
			h := val.Hash()
			m[h] = append(m[h], eqProbe{id: c.ID, val: val, residual: residual})
		case rngAt >= 0:
			rng, _ := expr.RangeMatch(conjs[rngAt])
			residual := expr.AndOf(removeAt(conjs, rngAt))
			pi.ranges[rng.Col] = append(pi.ranges[rng.Col], rangeProbe{rng: rng, id: c.ID, residual: residual})
		default:
			pi.rest = append(pi.rest, eqProbe{id: c.ID, residual: c.Pred})
		}
	}
	for col := range pi.ranges {
		rs := pi.ranges[col]
		sort.SliceStable(rs, func(i, j int) bool {
			li, lj := rs[i].rng.Lo, rs[j].rng.Lo
			if li.IsNull() != lj.IsNull() {
				return li.IsNull() // unbounded lower bounds first
			}
			if li.IsNull() {
				return false
			}
			return li.Compare(lj) < 0
		})
	}
	return pi
}

func removeAt(conjs []expr.Expr, i int) []expr.Expr {
	out := make([]expr.Expr, 0, len(conjs)-1)
	out = append(out, conjs[:i]...)
	out = append(out, conjs[i+1:]...)
	return out
}

// match collects the ids of all queries interested in row into buf.
func (pi *predIndex) match(row types.Row, buf []queryset.QueryID) []queryset.QueryID {
	for col, m := range pi.eq {
		v := row[col]
		if probes, ok := m[v.Hash()]; ok {
			for _, p := range probes {
				if p.val.Equal(v) && expr.TruthyEval(p.residual, row, nil) {
					buf = append(buf, p.id)
				}
			}
		}
	}
	for col, probes := range pi.ranges {
		v := row[col]
		for _, p := range probes {
			// probes are sorted by lower bound: once Lo > v no later probe
			// can match.
			if !p.rng.Lo.IsNull() && v.Compare(p.rng.Lo) < 0 {
				break
			}
			if p.rng.Contains(v) && expr.TruthyEval(p.residual, row, nil) {
				buf = append(buf, p.id)
			}
		}
	}
	for _, p := range pi.rest {
		if expr.TruthyEval(p.residual, row, nil) {
			buf = append(buf, p.id)
		}
	}
	return buf
}

// SharedScan executes one ClockScan cycle: a single pass over the rows
// visible at snapshot ts answering every client at once. emit receives each
// row that at least one client wants, together with the interested query-id
// set (the data-query model). Emitted sets are fresh; callers may retain
// them.
func (t *Table) SharedScan(ts uint64, clients []ScanClient, emit func(rid RowID, row types.Row, qs queryset.Set)) {
	t.sharedScan(ts, clients, 1, nil, emit)
}

// SharedScanPartitioned is the partition-parallel ClockScan (Crescando runs
// one scan thread per core over a partition of the table; paper §4.4). The
// table's row slots are split into `workers` contiguous ranges, every worker
// runs the same shared predicate index over its own range, and the
// per-partition hits are then emitted in partition order — which, because
// partitions are contiguous and ordered, is exactly the RowID order the
// serial scan produces. workers <= 1 (or a table below minParallelScanRows)
// falls back to the serial SharedScan, so Workers=1 engines are
// byte-identical to the pre-parallel engine. Emitted sets are fresh.
func (t *Table) SharedScanPartitioned(ts uint64, clients []ScanClient, workers int, emit func(rid RowID, row types.Row, qs queryset.Set)) {
	t.sharedScan(ts, clients, workers, nil, emit)
}

// SharedScanPooled is the zero-allocation ClockScan cycle used by the
// always-on scan operator: identical visit and emission order to
// SharedScan/SharedScanPartitioned, but every emitted query set is borrowed
// from bufs — valid only during the emit callback — instead of freshly
// allocated, and the partition hit buffers are drawn from bufs and reused
// across generations. Callers that retain a set must copy it (the operator
// emitter copies into its batch arena).
func (t *Table) SharedScanPooled(ts uint64, clients []ScanClient, workers int, bufs *ScanBuffers, emit func(rid RowID, row types.Row, qs queryset.Set)) {
	t.sharedScan(ts, clients, workers, bufs, emit)
}

// minParallelScanRows is the table size below which a partitioned scan
// runs serial regardless of the worker budget (the adaptive worker budget's
// source-node heuristic: a cycle over a tiny table never forks). A var so
// tests can lower it.
var minParallelScanRows = 1024

// scanHit is one row emitted by a scan partition, buffered so that
// per-partition output can be replayed in global row order.
type scanHit struct {
	rid RowID
	row types.Row
	qs  queryset.Set
}

// ScanBuffers is the reusable per-cycle state of a pooled shared scan: the
// match scratch, the per-partition hit buffers and the query-id arenas
// backing the emitted sets. One instance is owned by each scan operator
// node (one cycle at a time) and reused across generations, so the
// steady-state scan cycle allocates nothing per row.
type ScanBuffers struct {
	ids   []queryset.QueryID
	parts []partScratch
}

// partScratch is one partition's reusable buffers in a parallel pooled
// scan.
type partScratch struct {
	hits  []scanHit
	arena queryset.Arena
	ids   []queryset.QueryID
}

// sharedScan is the one ClockScan body behind the three public entry
// points. bufs == nil is the unpooled contract: a private ScanBuffers is
// used and never reset afterwards, so emitted sets (arena-backed in the
// parallel regime, freshly copied in the serial one) stay valid
// indefinitely. With caller-owned bufs the sets are borrowed until the next
// cycle reuses the buffers.
//
// In the parallel regime the table read lock is held across the whole pass
// (writers of later generations block, readers proceed); emission happens
// after the lock is released — version rows are immutable, so handing them
// out lock-free is safe.
func (t *Table) sharedScan(ts uint64, clients []ScanClient, workers int, bufs *ScanBuffers, emit func(rid RowID, row types.Row, qs queryset.Set)) {
	if len(clients) == 0 {
		return
	}
	pi := buildPredIndex(clients)
	if workers > 1 && t.NumSlots() < minParallelScanRows {
		// Adaptive budget: forking workers over a tiny table costs more than
		// the scan itself; run serial (identical output order either way).
		workers = 1
	}
	if workers <= 1 {
		pooled := bufs != nil
		if !pooled {
			bufs = &ScanBuffers{}
		}
		t.ScanVisible(ts, func(rid RowID, row types.Row) bool {
			bufs.ids = pi.match(row, bufs.ids[:0])
			if len(bufs.ids) > 0 {
				if pooled {
					// Borrowed: sorted in place, valid during emit only.
					// Ids are unique by construction (every client is
					// indexed under exactly one conjunct class).
					slices.Sort(bufs.ids)
					emit(rid, row, queryset.FromSorted(bufs.ids))
				} else {
					emit(rid, row, queryset.Of(bufs.ids...))
				}
			}
			return true
		})
		return
	}
	reused := bufs != nil
	if !reused {
		bufs = &ScanBuffers{}
	}
	t.mu.RLock()
	bounds := par.Split(len(t.slots), workers)
	nparts := len(bounds) - 1
	for len(bufs.parts) < nparts {
		bufs.parts = append(bufs.parts, partScratch{})
	}
	par.Do(workers, nparts, func(w int) {
		ps := &bufs.parts[w]
		ps.arena.Reset()
		hits := ps.hits[:0]
		for rid := bounds[w]; rid < bounds[w+1]; rid++ {
			for v := t.slots[rid]; v != nil; v = v.older {
				if v.beginTS <= ts && ts < v.endTS {
					ps.ids = pi.match(v.row, ps.ids[:0])
					if len(ps.ids) > 0 {
						slices.Sort(ps.ids)
						hits = append(hits, scanHit{rid: RowID(rid), row: v.row, qs: ps.arena.Append(queryset.FromSorted(ps.ids))})
					}
					break
				}
			}
		}
		ps.hits = hits
	})
	t.mu.RUnlock()
	for w := 0; w < nparts; w++ {
		for _, h := range bufs.parts[w].hits {
			emit(h.rid, h.row, h.qs)
		}
		if reused {
			// Drop row references promptly; the arena is reset next cycle.
			clear(bufs.parts[w].hits)
			bufs.parts[w].hits = bufs.parts[w].hits[:0]
		}
	}
}

// SharedScanNaive answers the same question without the predicate index:
// every client's predicate is evaluated against every record. Kept for the
// ablation benchmark (DESIGN.md A4) quantifying the value of query-data
// joins.
func (t *Table) SharedScanNaive(ts uint64, clients []ScanClient, emit func(rid RowID, row types.Row, qs queryset.Set)) {
	if len(clients) == 0 {
		return
	}
	var buf []queryset.QueryID
	t.ScanVisible(ts, func(rid RowID, row types.Row) bool {
		buf = buf[:0]
		for _, c := range clients {
			if expr.TruthyEval(c.Pred, row, nil) {
				buf = append(buf, c.ID)
			}
		}
		if len(buf) > 0 {
			emit(rid, row, queryset.Of(buf...))
		}
		return true
	})
}
