package storage

import (
	"os"
	"path/filepath"
	"testing"

	"shareddb/internal/expr"
	"shareddb/internal/types"
)

func newDurableDB(t *testing.T, dir string) (*Database, *Table) {
	t.Helper()
	db, err := Open(Options{WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := db.CreateTable("users", usersSchema())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.SetPrimaryKey("id"); err != nil {
		t.Fatal(err)
	}
	return db, tab
}

func TestWALRecovery(t *testing.T) {
	dir := t.TempDir()
	db, tab := newDurableDB(t, dir)
	insertUsers(t, db, user(1, "a", "CH", 10), user(2, "b", "DE", 20))
	db.ApplyOps([]WriteOp{{
		Table: "users", Kind: WUpdate,
		Pred: eqPred(tab, "id", types.NewInt(1)),
		Set:  []ColSet{{Col: 3, Val: &expr.Const{Val: types.NewInt(99)}}},
	}})
	db.ApplyOps([]WriteOp{{Table: "users", Kind: WDelete, Pred: eqPred(tab, "id", types.NewInt(2))}})
	wantTS := db.SnapshotTS()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// "restart": fresh database, same schema, recover from log
	db2, tab2 := newDurableDB(t, dir)
	if err := db2.Recover(); err != nil {
		t.Fatal(err)
	}
	if db2.SnapshotTS() != wantTS {
		t.Errorf("recovered TS = %d, want %d", db2.SnapshotTS(), wantTS)
	}
	ts := db2.SnapshotTS()
	if n := tab2.CountVisible(ts); n != 1 {
		t.Fatalf("recovered %d rows, want 1", n)
	}
	row, ok := tab2.Visible(0, ts)
	if !ok || row[3].AsInt() != 99 {
		t.Errorf("recovered row = %v", row)
	}
	// index probes work after recovery
	rids := tab2.PrimaryKey().Tree().Lookup([]types.Value{types.NewInt(1)})
	if len(rids) == 0 {
		t.Error("pk index empty after recovery")
	}
	db2.Close()
}

func TestCheckpointAndRecovery(t *testing.T) {
	dir := t.TempDir()
	db, _ := newDurableDB(t, dir)
	insertUsers(t, db, user(1, "a", "CH", 10), user(2, "b", "DE", 20), user(3, "c", "US", 30))
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// post-checkpoint activity goes to the (truncated) log
	insertUsers(t, db, user(4, "d", "FR", 40))
	db.ApplyOps([]WriteOp{{Table: "users", Kind: WDelete, Pred: eqPred(db.Table("users"), "id", types.NewInt(2))}})
	wantTS := db.SnapshotTS()
	db.Close()

	db2, tab2 := newDurableDB(t, dir)
	if err := db2.Recover(); err != nil {
		t.Fatal(err)
	}
	ts := db2.SnapshotTS()
	if ts != wantTS {
		t.Errorf("TS = %d, want %d", ts, wantTS)
	}
	if n := tab2.CountVisible(ts); n != 3 {
		t.Errorf("recovered %d rows, want 3 (1,3,4)", n)
	}
	var ids []int64
	tab2.ScanVisible(ts, func(_ RowID, row types.Row) bool {
		ids = append(ids, row[0].AsInt())
		return true
	})
	want := map[int64]bool{1: true, 3: true, 4: true}
	for _, id := range ids {
		if !want[id] {
			t.Errorf("unexpected id %d", id)
		}
	}
	db2.Close()
}

func TestRecoveryTruncatedWALTail(t *testing.T) {
	dir := t.TempDir()
	db, _ := newDurableDB(t, dir)
	insertUsers(t, db, user(1, "a", "CH", 10))
	insertUsers(t, db, user(2, "b", "DE", 20))
	db.Close()

	// Simulate a crash mid-append: chop bytes off the log tail.
	logPath := filepath.Join(dir, walFileName)
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(logPath, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	db2, tab2 := newDurableDB(t, dir)
	if err := db2.Recover(); err != nil {
		t.Fatal(err)
	}
	// first insert survives; the torn second record is dropped
	if n := tab2.CountVisible(db2.SnapshotTS()); n != 1 {
		t.Errorf("recovered %d rows, want 1", n)
	}
	db2.Close()
}

func TestRecoveryCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	db, _ := newDurableDB(t, dir)
	insertUsers(t, db, user(1, "a", "CH", 10))
	insertUsers(t, db, user(2, "b", "DE", 20))
	db.Close()

	// Flip a byte inside the second record's payload: CRC must reject it.
	logPath := filepath.Join(dir, walFileName)
	data, _ := os.ReadFile(logPath)
	data[len(data)-3] ^= 0xFF
	os.WriteFile(logPath, data, 0o644)

	db2, tab2 := newDurableDB(t, dir)
	if err := db2.Recover(); err != nil {
		t.Fatal(err)
	}
	if n := tab2.CountVisible(db2.SnapshotTS()); n != 1 {
		t.Errorf("recovered %d rows, want 1", n)
	}
	db2.Close()
}

func TestRecoverWithoutWALFails(t *testing.T) {
	db, _ := newUserDB(t)
	if err := db.Recover(); err == nil {
		t.Error("Recover without WAL should fail")
	}
	if err := db.Checkpoint(); err == nil {
		t.Error("Checkpoint without WAL should fail")
	}
}

func TestWALSyncMode(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{WALDir: dir, SyncWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	tab, _ := db.CreateTable("users", usersSchema())
	tab.SetPrimaryKey("id")
	insertUsers(t, db, user(1, "a", "CH", 10))
	db.Close()

	db2, tab2 := newDurableDB(t, dir)
	if err := db2.Recover(); err != nil {
		t.Fatal(err)
	}
	if tab2.CountVisible(db2.SnapshotTS()) != 1 {
		t.Error("synced insert lost")
	}
	db2.Close()
}

func TestRecoveryPreservesRowIDs(t *testing.T) {
	// Updates in the log address rows by RowID; a checkpoint must keep the
	// numbering stable even with dead slots in between.
	dir := t.TempDir()
	db, tab := newDurableDB(t, dir)
	insertUsers(t, db, user(1, "a", "CH", 10), user(2, "b", "DE", 20), user(3, "c", "US", 30))
	// delete the middle row, checkpoint, then update row id=3 (slot 2)
	db.ApplyOps([]WriteOp{{Table: "users", Kind: WDelete, Pred: eqPred(tab, "id", types.NewInt(2))}})
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.ApplyOps([]WriteOp{{
		Table: "users", Kind: WUpdate,
		Pred: eqPred(tab, "id", types.NewInt(3)),
		Set:  []ColSet{{Col: 3, Val: &expr.Const{Val: types.NewInt(777)}}},
	}})
	db.Close()

	db2, tab2 := newDurableDB(t, dir)
	if err := db2.Recover(); err != nil {
		t.Fatal(err)
	}
	ts := db2.SnapshotTS()
	found := false
	tab2.ScanVisible(ts, func(_ RowID, row types.Row) bool {
		if row[0].AsInt() == 3 {
			found = true
			if row[3].AsInt() != 777 {
				t.Errorf("post-checkpoint update lost: %v", row)
			}
		}
		return true
	})
	if !found {
		t.Error("row id=3 missing after recovery")
	}
	db2.Close()
}
