package storage

import (
	"testing"

	"shareddb/internal/par"
	"shareddb/internal/queryset"
	"shareddb/internal/types"
)

// The adaptive worker budget's source-node heuristic: a scan cycle over a
// tiny table must not fork worker goroutines, whatever the configured
// budget (ROADMAP "Adaptive worker budget").
func TestTinyTableScanSpawnsNoWorkers(t *testing.T) {
	db, tab := seedUsers(t, 10)
	ts := db.SnapshotTS()
	clients := []ScanClient{
		{ID: 1, Pred: nil},
		{ID: 2, Pred: eqPred(tab, "country", types.NewString("CH"))},
	}
	for _, scan := range []struct {
		name string
		run  func(workers int, emit func(RowID, types.Row, queryset.Set))
	}{
		{"partitioned", func(w int, emit func(RowID, types.Row, queryset.Set)) {
			tab.SharedScanPartitioned(ts, clients, w, emit)
		}},
		{"pooled", func(w int, emit func(RowID, types.Row, queryset.Set)) {
			var bufs ScanBuffers
			tab.SharedScanPooled(ts, clients, w, &bufs, emit)
		}},
	} {
		before := par.Forks()
		rows := 0
		scan.run(8, func(RowID, types.Row, queryset.Set) { rows++ })
		if forked := par.Forks() - before; forked != 0 {
			t.Errorf("%s: 10-row cycle forked %d workers, want 0", scan.name, forked)
		}
		if rows != 10 {
			t.Errorf("%s: emitted %d rows, want 10", scan.name, rows)
		}
	}
}

// Above the clamp the partitioned scan does fork (guards the test above
// against the heuristic accidentally disabling parallelism everywhere).
func TestLargeTableScanForksWorkers(t *testing.T) {
	old := minParallelScanRows
	minParallelScanRows = 16
	t.Cleanup(func() { minParallelScanRows = old })
	db, tab := seedUsers(t, 64)
	ts := db.SnapshotTS()
	clients := []ScanClient{{ID: 1, Pred: nil}}
	before := par.Forks()
	tab.SharedScanPartitioned(ts, clients, 4, func(RowID, types.Row, queryset.Set) {})
	if forked := par.Forks() - before; forked == 0 {
		t.Error("64-row scan above the clamp forked no workers")
	}
}
