package storage

import (
	"fmt"
	"testing"

	"shareddb/internal/expr"
	"shareddb/internal/queryset"
	"shareddb/internal/types"
)

// benchItemsTable seeds an item-shaped table (int id, string title, float
// cost) mirroring the TPC-W columns the microbench statements scan.
func benchItemsTable(b *testing.B, n int) (*Database, *Table, uint64) {
	b.Helper()
	db, err := Open(Options{})
	if err != nil {
		b.Fatal(err)
	}
	sch := types.NewSchema(
		types.Column{Qualifier: "item", Name: "i_id", Kind: types.KindInt},
		types.Column{Qualifier: "item", Name: "i_title", Kind: types.KindString},
		types.Column{Qualifier: "item", Name: "i_cost", Kind: types.KindFloat},
	)
	tab, err := db.CreateTable("item", sch)
	if err != nil {
		b.Fatal(err)
	}
	tab.SetPrimaryKey("i_id")
	ops := make([]WriteOp, 0, n)
	for i := 0; i < n; i++ {
		ops = append(ops, WriteOp{Table: "item", Kind: WInsert, Row: types.Row{
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("Title %05d abcdefgh", i)),
			types.NewFloat(float64(i%1000) / 10),
		}})
	}
	db.ApplyOps(ops)
	return db, tab, db.SnapshotTS()
}

func benchColumnarScan(b *testing.B, clients []ScanClient) {
	_, tab, ts := benchItemsTable(b, 10000)
	var bufs ColScanBuffers
	// prime the mirror outside the timed loop
	tab.SharedScanColumnar(ts, clients, 1, &bufs, func(RowID, types.Row, queryset.Set) {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.SharedScanColumnar(ts, clients, 1, &bufs, func(RowID, types.Row, queryset.Set) {})
	}
}

// BenchmarkColumnarScanLike is the scan_columnar batch shape: 64 LIKE
// prefix predicates over the title column.
func BenchmarkColumnarScanLike(b *testing.B) {
	clients := make([]ScanClient, 64)
	for i := range clients {
		clients[i] = ScanClient{ID: queryset.QueryID(i + 1), Pred: &expr.Like{
			L:       &expr.ColRef{Idx: 1},
			Pattern: &expr.Const{Val: types.NewString(fmt.Sprintf("Title %02d%%", i%100))},
		}}
	}
	benchColumnarScan(b, clients)
}

// BenchmarkColumnarScanIntRange: 64 int range predicates over i_id.
func BenchmarkColumnarScanIntRange(b *testing.B) {
	clients := make([]ScanClient, 64)
	for i := range clients {
		clients[i] = ScanClient{ID: queryset.QueryID(i + 1), Pred: &expr.Cmp{
			Op: expr.GT, L: &expr.ColRef{Idx: 0}, R: &expr.Const{Val: types.NewInt(int64(i * 150))},
		}}
	}
	benchColumnarScan(b, clients)
}

// BenchmarkColumnarScanFloatRange: 64 float range predicates over i_cost.
func BenchmarkColumnarScanFloatRange(b *testing.B) {
	clients := make([]ScanClient, 64)
	for i := range clients {
		clients[i] = ScanClient{ID: queryset.QueryID(i + 1), Pred: &expr.Cmp{
			Op: expr.LT, L: &expr.ColRef{Idx: 2}, R: &expr.Const{Val: types.NewFloat(float64(i) * 1.5)},
		}}
	}
	benchColumnarScan(b, clients)
}

// BenchmarkColumnarScanEq: 64 equality predicates over i_id.
func BenchmarkColumnarScanEq(b *testing.B) {
	clients := make([]ScanClient, 64)
	for i := range clients {
		clients[i] = ScanClient{ID: queryset.QueryID(i + 1), Pred: &expr.Cmp{
			Op: expr.EQ, L: &expr.ColRef{Idx: 0}, R: &expr.Const{Val: types.NewInt(int64(i * 7))},
		}}
	}
	benchColumnarScan(b, clients)
}

// BenchmarkColumnarScanLikeMiss: 64 LIKE predicates that never match —
// isolates pure kernel cost (no emission).
func BenchmarkColumnarScanLikeMiss(b *testing.B) {
	clients := make([]ScanClient, 64)
	for i := range clients {
		clients[i] = ScanClient{ID: queryset.QueryID(i + 1), Pred: &expr.Like{
			L:       &expr.ColRef{Idx: 1},
			Pattern: &expr.Const{Val: types.NewString(fmt.Sprintf("Zitle %02d%%", i%100))},
		}}
	}
	benchColumnarScan(b, clients)
}

// BenchmarkColumnarScanIntRangeMiss: 64 int ranges that never match.
func BenchmarkColumnarScanIntRangeMiss(b *testing.B) {
	clients := make([]ScanClient, 64)
	for i := range clients {
		clients[i] = ScanClient{ID: queryset.QueryID(i + 1), Pred: &expr.Cmp{
			Op: expr.GT, L: &expr.ColRef{Idx: 0}, R: &expr.Const{Val: types.NewInt(int64(1000000 + i))},
		}}
	}
	benchColumnarScan(b, clients)
}

// BenchmarkColumnarScanFloatRangeMiss: 64 float ranges that never match.
func BenchmarkColumnarScanFloatRangeMiss(b *testing.B) {
	clients := make([]ScanClient, 64)
	for i := range clients {
		clients[i] = ScanClient{ID: queryset.QueryID(i + 1), Pred: &expr.Cmp{
			Op: expr.LT, L: &expr.ColRef{Idx: 2}, R: &expr.Const{Val: types.NewFloat(-1 - float64(i))},
		}}
	}
	benchColumnarScan(b, clients)
}
