package storage

import (
	"shareddb/internal/btree"
	"shareddb/internal/types"
)

// Locked index look-ups.
//
// Before generation pipelining, shared operators resolved row visibility
// through a lock-free ReadView: the engine's generation barrier guaranteed
// no write ran while the operator dataflow executed. With up to
// Config.MaxInFlightGenerations read phases overlapping later generations'
// write phases, that guarantee is gone — B-tree traversals and version
// chains must be protected against concurrent mutation. These helpers hold
// the table read lock across one traversal and resolve visibility at a
// fixed snapshot, so callers (shared index joins, the query-at-a-time
// baseline) stay correct while writes land concurrently.

// IndexSeekAt seeks ix for key (equality, prefix semantics) and yields
// every distinct visible row at snapshot ts whose visible version still
// carries the sought key (entries for superseded versions linger in the
// tree until GC). fn returning false stops the traversal. The table read
// lock is held for the whole seek; fn must not call back into this table's
// locking methods.
func (t *Table) IndexSeekAt(ix *Index, key btree.Key, ts uint64, fn func(rid RowID, row types.Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var seen map[RowID]bool
	ix.tree.SeekEQ(key, func(rid uint64) bool {
		if seen[rid] {
			return true
		}
		row, visible := t.visibleLocked(rid, ts)
		if !visible || !indexKeyMatches(ix, row, key) {
			return true
		}
		if seen == nil {
			seen = map[RowID]bool{}
		}
		seen[rid] = true
		return fn(rid, row)
	})
}

// IndexScanAt scans ix over [lo, hi] and yields every distinct visible row
// at snapshot ts whose visible version still carries the entry's key, under
// the table read lock. fn returning false stops the traversal.
func (t *Table) IndexScanAt(ix *Index, lo, hi btree.Key, loIncl, hiIncl bool, ts uint64, fn func(rid RowID, row types.Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var seen map[RowID]bool
	ix.tree.Scan(lo, hi, loIncl, hiIncl, func(key btree.Key, rid uint64) bool {
		if seen[rid] {
			return true
		}
		row, visible := t.visibleLocked(rid, ts)
		if !visible || !indexKeyMatches(ix, row, key) {
			// Stale entry for a superseded version: the entry carrying the
			// visible version's key will handle this rid.
			return true
		}
		if seen == nil {
			seen = map[RowID]bool{}
		}
		seen[rid] = true
		return fn(rid, row)
	})
}

// indexKeyMatches reports whether row carries key under ix (prefix
// semantics for short keys).
func indexKeyMatches(ix *Index, row types.Row, key btree.Key) bool {
	for i := range key {
		if i >= len(ix.Cols) {
			break
		}
		if !row[ix.Cols[i]].Equal(key[i]) {
			return false
		}
	}
	return true
}
