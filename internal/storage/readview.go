package storage

import (
	"shareddb/internal/types"
)

// ReadView is a lock-free visibility checker for one batch cycle.
//
// SharedDB's generation barrier guarantees that no write runs while the
// operator dataflow executes (updates apply in phase 1, reads run in phase
// 2; the next generation starts only after the previous fully drains), so
// shared operators can capture the slot array once per cycle and resolve
// row visibility without per-row locking. The query-at-a-time baseline,
// whose reads do overlap writes, keeps using the locked Visible path.
type ReadView struct {
	slots []*version
	ts    uint64
}

// ReadView captures a visibility view at snapshot ts.
func (t *Table) ReadView(ts uint64) *ReadView {
	t.mu.RLock()
	slots := t.slots
	t.mu.RUnlock()
	return &ReadView{slots: slots, ts: ts}
}

// Visible resolves the row version of rid visible at the view's snapshot.
func (v *ReadView) Visible(rid RowID) (types.Row, bool) {
	if rid >= uint64(len(v.slots)) {
		return nil, false
	}
	for ver := v.slots[rid]; ver != nil; ver = ver.older {
		if ver.beginTS <= v.ts && v.ts < ver.endTS {
			return ver.row, true
		}
	}
	return nil, false
}
