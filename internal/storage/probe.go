package storage

import (
	"slices"

	"shareddb/internal/btree"
	"shareddb/internal/expr"
	"shareddb/internal/queryset"
	"shareddb/internal/types"
)

// Shared index probes (paper §4.4): "Look-ups are enqueued in the pending
// query queue which is emptied at the beginning of each cycle ... multiple
// B-Tree look-ups are used to evaluate all the select queries. Executing
// multiple look-ups in one cycle allows for better instruction and data
// cache locality."
//
// Sharing happens two ways: look-ups with identical keys collapse into one
// B-tree traversal serving all their queries, and all look-ups of a cycle
// run back-to-back over the tree.

// ProbeClient is one index look-up in a probe cycle. Either Key (equality,
// prefix semantics) or Lo/Hi (range) is set.
type ProbeClient struct {
	ID       queryset.QueryID
	Key      btree.Key
	Lo, Hi   btree.Key
	LoIncl   bool
	HiIncl   bool
	Residual expr.Expr // additional bound predicate over the table schema
}

// SharedProbe executes one probe cycle against ix at snapshot ts. Equal keys
// across clients are deduplicated so each distinct key is traversed once.
// emit receives each visible matching row with its interested-query set.
//
// Traversals run through the locked helpers (IndexSeekAt / IndexScanAt):
// pipelined generations let later generations' writes land while this
// probe cycle runs, so trees and version chains cannot be walked lock-free.
// Visibility is at the fixed snapshot ts, so per-traversal locking is
// equivalent to holding the lock for the whole cycle.
func (t *Table) SharedProbe(ts uint64, ix *Index, clients []ProbeClient, emit func(rid RowID, row types.Row, qs queryset.Set)) {
	t.sharedProbe(ts, ix, clients, nil, emit)
}

// ProbeBuffers is the reusable per-cycle scratch of a pooled shared probe
// (one instance per probe operator node, reused across generations).
type ProbeBuffers struct {
	ids []queryset.QueryID
}

// SharedProbePooled is SharedProbe with borrowed query sets: emitted sets
// live in bufs and are valid only during the emit callback, so the
// steady-state probe cycle allocates no per-row id slices. Callers that
// retain a set must copy it.
func (t *Table) SharedProbePooled(ts uint64, ix *Index, clients []ProbeClient, bufs *ProbeBuffers, emit func(rid RowID, row types.Row, qs queryset.Set)) {
	t.sharedProbe(ts, ix, clients, bufs, emit)
}

func (t *Table) sharedProbe(ts uint64, ix *Index, clients []ProbeClient, bufs *ProbeBuffers, emit func(rid RowID, row types.Row, qs queryset.Set)) {
	if len(clients) == 0 {
		return
	}
	// Group equality clients by key; ranges handled per client.
	type group struct {
		key     btree.Key
		clients []ProbeClient
	}
	groups := map[string]*group{}
	var rangeClients []ProbeClient
	for _, c := range clients {
		if c.Key != nil {
			k := types.EncodeKey(c.Key...)
			g := groups[k]
			if g == nil {
				g = &group{key: c.Key}
				groups[k] = g
			}
			g.clients = append(g.clients, c)
		} else {
			rangeClients = append(rangeClients, c)
		}
	}

	var buf []queryset.QueryID
	if bufs != nil {
		buf = bufs.ids[:0]
	}
	// borrow materializes buf as the emitted set: pooled probes hand out the
	// scratch directly (valid during emit only), unpooled ones copy.
	borrow := func() queryset.Set {
		if bufs != nil {
			bufs.ids = buf
			slices.Sort(buf)
			return queryset.FromSorted(buf)
		}
		return queryset.Of(buf...)
	}
	for _, g := range groups {
		g := g
		t.IndexSeekAt(ix, g.key, ts, func(rid RowID, row types.Row) bool {
			buf = buf[:0]
			for _, c := range g.clients {
				if expr.TruthyEval(c.Residual, row, nil) {
					buf = append(buf, c.ID)
				}
			}
			if len(buf) > 0 {
				emit(rid, row, borrow())
			}
			return true
		})
	}

	for _, c := range rangeClients {
		c := c
		t.IndexScanAt(ix, c.Lo, c.Hi, c.LoIncl, c.HiIncl, ts, func(rid RowID, row types.Row) bool {
			if expr.TruthyEval(c.Residual, row, nil) {
				if bufs != nil {
					buf = append(buf[:0], c.ID)
					emit(rid, row, borrow())
				} else {
					emit(rid, row, queryset.Single(c.ID))
				}
			}
			return true
		})
	}
}
