package storage

import (
	"shareddb/internal/btree"
	"shareddb/internal/expr"
	"shareddb/internal/queryset"
	"shareddb/internal/types"
)

// Shared index probes (paper §4.4): "Look-ups are enqueued in the pending
// query queue which is emptied at the beginning of each cycle ... multiple
// B-Tree look-ups are used to evaluate all the select queries. Executing
// multiple look-ups in one cycle allows for better instruction and data
// cache locality."
//
// Sharing happens two ways: look-ups with identical keys collapse into one
// B-tree traversal serving all their queries, and all look-ups of a cycle
// run back-to-back over a quiesced tree.

// ProbeClient is one index look-up in a probe cycle. Either Key (equality,
// prefix semantics) or Lo/Hi (range) is set.
type ProbeClient struct {
	ID       queryset.QueryID
	Key      btree.Key
	Lo, Hi   btree.Key
	LoIncl   bool
	HiIncl   bool
	Residual expr.Expr // additional bound predicate over the table schema
}

// SharedProbe executes one probe cycle against ix at snapshot ts. Equal keys
// across clients are deduplicated so each distinct key is traversed once.
// emit receives each visible matching row with its interested-query set.
//
// Visibility resolution uses a lock-free ReadView: shared probes run only
// inside the engine's read phase, where the generation barrier excludes
// concurrent writers.
func (t *Table) SharedProbe(ts uint64, ix *Index, clients []ProbeClient, emit func(rid RowID, row types.Row, qs queryset.Set)) {
	if len(clients) == 0 {
		return
	}
	view := t.ReadView(ts)
	// Group equality clients by key; ranges handled per client.
	type group struct {
		key     btree.Key
		clients []ProbeClient
	}
	groups := map[string]*group{}
	var rangeClients []ProbeClient
	for _, c := range clients {
		if c.Key != nil {
			k := types.EncodeKey(c.Key...)
			g := groups[k]
			if g == nil {
				g = &group{key: c.Key}
				groups[k] = g
			}
			g.clients = append(g.clients, c)
		} else {
			rangeClients = append(rangeClients, c)
		}
	}

	// rowMatches verifies the visible row still carries the sought key
	// (index entries for superseded versions linger until GC).
	keyMatches := func(row types.Row, key btree.Key) bool {
		for i := range key {
			if i >= len(ix.Cols) {
				break
			}
			if !row[ix.Cols[i]].Equal(key[i]) {
				return false
			}
		}
		return true
	}

	var buf []queryset.QueryID
	for _, g := range groups {
		// Prefix keys can reach the same rid through several full keys
		// (e.g. superseded versions of a multi-column index); dedup on the
		// first version that actually matches.
		seen := map[RowID]bool{}
		ix.tree.SeekEQ(g.key, func(rid uint64) bool {
			if seen[rid] {
				return true
			}
			row, ok := view.Visible(rid)
			if !ok || !keyMatches(row, g.key) {
				return true
			}
			seen[rid] = true
			buf = buf[:0]
			for _, c := range g.clients {
				if expr.TruthyEval(c.Residual, row, nil) {
					buf = append(buf, c.ID)
				}
			}
			if len(buf) > 0 {
				emit(rid, row, queryset.Of(buf...))
			}
			return true
		})
	}

	for _, c := range rangeClients {
		seen := map[RowID]bool{}
		c := c
		ix.tree.Scan(c.Lo, c.Hi, c.LoIncl, c.HiIncl, func(key btree.Key, rid uint64) bool {
			if seen[rid] {
				return true
			}
			row, ok := view.Visible(rid)
			if !ok || !keyMatches(row, key) {
				// Stale entry for a superseded version: the entry carrying
				// the visible version's key will handle this rid.
				return true
			}
			seen[rid] = true
			if expr.TruthyEval(c.Residual, row, nil) {
				emit(rid, row, queryset.Single(c.ID))
			}
			return true
		})
	}
}
