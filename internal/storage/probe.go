package storage

import (
	"shareddb/internal/btree"
	"shareddb/internal/expr"
	"shareddb/internal/queryset"
	"shareddb/internal/types"
)

// Shared index probes (paper §4.4): "Look-ups are enqueued in the pending
// query queue which is emptied at the beginning of each cycle ... multiple
// B-Tree look-ups are used to evaluate all the select queries. Executing
// multiple look-ups in one cycle allows for better instruction and data
// cache locality."
//
// Sharing happens two ways: look-ups with identical keys collapse into one
// B-tree traversal serving all their queries, and all look-ups of a cycle
// run back-to-back over the tree.

// ProbeClient is one index look-up in a probe cycle. Either Key (equality,
// prefix semantics) or Lo/Hi (range) is set.
type ProbeClient struct {
	ID       queryset.QueryID
	Key      btree.Key
	Lo, Hi   btree.Key
	LoIncl   bool
	HiIncl   bool
	Residual expr.Expr // additional bound predicate over the table schema
}

// SharedProbe executes one probe cycle against ix at snapshot ts. Equal keys
// across clients are deduplicated so each distinct key is traversed once.
// emit receives each visible matching row with its interested-query set.
//
// Traversals run through the locked helpers (IndexSeekAt / IndexScanAt):
// pipelined generations let later generations' writes land while this
// probe cycle runs, so trees and version chains cannot be walked lock-free.
// Visibility is at the fixed snapshot ts, so per-traversal locking is
// equivalent to holding the lock for the whole cycle.
func (t *Table) SharedProbe(ts uint64, ix *Index, clients []ProbeClient, emit func(rid RowID, row types.Row, qs queryset.Set)) {
	if len(clients) == 0 {
		return
	}
	// Group equality clients by key; ranges handled per client.
	type group struct {
		key     btree.Key
		clients []ProbeClient
	}
	groups := map[string]*group{}
	var rangeClients []ProbeClient
	for _, c := range clients {
		if c.Key != nil {
			k := types.EncodeKey(c.Key...)
			g := groups[k]
			if g == nil {
				g = &group{key: c.Key}
				groups[k] = g
			}
			g.clients = append(g.clients, c)
		} else {
			rangeClients = append(rangeClients, c)
		}
	}

	var buf []queryset.QueryID
	for _, g := range groups {
		g := g
		t.IndexSeekAt(ix, g.key, ts, func(rid RowID, row types.Row) bool {
			buf = buf[:0]
			for _, c := range g.clients {
				if expr.TruthyEval(c.Residual, row, nil) {
					buf = append(buf, c.ID)
				}
			}
			if len(buf) > 0 {
				emit(rid, row, queryset.Of(buf...))
			}
			return true
		})
	}

	for _, c := range rangeClients {
		c := c
		t.IndexScanAt(ix, c.Lo, c.Hi, c.LoIncl, c.HiIncl, ts, func(rid RowID, row types.Row) bool {
			if expr.TruthyEval(c.Residual, row, nil) {
				emit(rid, row, queryset.Single(c.ID))
			}
			return true
		})
	}
}
