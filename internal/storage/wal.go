package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"shareddb/internal/types"
)

// Durability (paper §4.4): "Crescando keeps all data in main memory, but it
// also supports full recovery by checkpointing and logging all data to
// disk." The WAL stores physical redo records; a checkpoint stores every
// table's live slots at a timestamp. Recovery loads the newest checkpoint
// and replays log records with TS beyond it.
//
// Record wire format (little-endian):
//
//	u32 payloadLen | u32 crc32(payload) | payload
//
// payload: u64 ts | u8 kind | u16 tableNameLen | tableName | u64 rid |
//          encoded row (insert/update only)

// WALRecord is one physical redo record.
type WALRecord struct {
	TS    uint64
	Kind  WriteKind
	Table string
	RID   RowID
	Row   types.Row // nil for deletes
}

// WAL is an append-only redo log.
type WAL struct {
	dir  string
	f    *os.File
	w    *bufio.Writer
	sync bool
}

const (
	walFileName        = "wal.log"
	checkpointFileName = "checkpoint.db"
)

// OpenWAL opens (creating if needed) the log in dir.
func OpenWAL(dir string, syncEveryAppend bool) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, walFileName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	return &WAL{dir: dir, f: f, w: bufio.NewWriterSize(f, 1<<16), sync: syncEveryAppend}, nil
}

// Append writes records and flushes (fsyncing when configured).
func (w *WAL) Append(recs []WALRecord) error {
	for _, r := range recs {
		payload := encodeRecord(r)
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
		if _, err := w.w.Write(hdr[:]); err != nil {
			return fmt.Errorf("wal append: %w", err)
		}
		if _, err := w.w.Write(payload); err != nil {
			return fmt.Errorf("wal append: %w", err)
		}
	}
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("wal flush: %w", err)
	}
	if w.sync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("wal sync: %w", err)
		}
	}
	return nil
}

// Close flushes and closes the log file.
func (w *WAL) Close() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	return w.f.Close()
}

func encodeRecord(r WALRecord) []byte {
	b := make([]byte, 0, 64)
	b = binary.LittleEndian.AppendUint64(b, r.TS)
	b = append(b, byte(r.Kind))
	b = binary.LittleEndian.AppendUint16(b, uint16(len(r.Table)))
	b = append(b, r.Table...)
	b = binary.LittleEndian.AppendUint64(b, r.RID)
	if r.Kind != WDelete {
		b = types.AppendRow(b, r.Row)
	}
	return b
}

func decodeRecord(b []byte) (WALRecord, error) {
	var r WALRecord
	if len(b) < 19 {
		return r, io.ErrUnexpectedEOF
	}
	r.TS = binary.LittleEndian.Uint64(b[0:8])
	r.Kind = WriteKind(b[8])
	nameLen := int(binary.LittleEndian.Uint16(b[9:11]))
	if len(b) < 11+nameLen+8 {
		return r, io.ErrUnexpectedEOF
	}
	r.Table = string(b[11 : 11+nameLen])
	off := 11 + nameLen
	r.RID = binary.LittleEndian.Uint64(b[off : off+8])
	off += 8
	if r.Kind != WDelete {
		row, _, err := types.DecodeRow(b[off:])
		if err != nil {
			return r, err
		}
		r.Row = row
	}
	return r, nil
}

// ReadAll replays every intact record in the log, stopping silently at the
// first truncated or corrupt tail record (a crash mid-append loses only the
// unsynced tail, never earlier records).
func (w *WAL) ReadAll(fn func(WALRecord) error) error {
	return readWALFile(filepath.Join(w.dir, walFileName), fn)
}

func readWALFile(path string, fn func(WALRecord) error) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil // clean EOF or truncated header: stop
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n > 1<<28 {
			return nil // implausible length: corrupt tail
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil // truncated payload: stop
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return nil // corrupt record: stop
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return nil
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// Checkpoint writes a consistent snapshot of the database at its current
// snapshot timestamp and truncates the log up to it. The checkpoint file
// stores, per table, every slot's rid and visible row so RowIDs stay stable
// across recovery (log records address rows by rid).
//
// Format: u64 checkpointTS, then per table: u16 nameLen | name | u64 rows,
// then per row: u64 rid | encoded row. A trailing magic seals the file.
func (db *Database) Checkpoint() error {
	if db.wal == nil {
		return errors.New("storage: checkpoint requires a WAL directory")
	}
	// Block commits so the checkpoint is a clean prefix of the log.
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	ts := db.SnapshotTS()

	tmp := filepath.Join(db.wal.dir, checkpointFileName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<16)
	buf := binary.LittleEndian.AppendUint64(nil, ts)
	if _, err := w.Write(buf); err != nil {
		return err
	}
	for _, t := range db.Tables() {
		var rows [][]byte
		t.ScanVisible(ts, func(rid RowID, row types.Row) bool {
			b := binary.LittleEndian.AppendUint64(nil, rid)
			b = types.AppendRow(b, row)
			rows = append(rows, b)
			return true
		})
		hdr := binary.LittleEndian.AppendUint16(nil, uint16(len(t.Name())))
		hdr = append(hdr, t.Name()...)
		hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(rows)))
		if _, err := w.Write(hdr); err != nil {
			return err
		}
		for _, b := range rows {
			lenBuf := binary.LittleEndian.AppendUint32(nil, uint32(len(b)))
			if _, err := w.Write(lenBuf); err != nil {
				return err
			}
			if _, err := w.Write(b); err != nil {
				return err
			}
		}
	}
	if _, err := w.Write([]byte("CKPTDONE")); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(db.wal.dir, checkpointFileName)); err != nil {
		return err
	}
	// Truncate the log: everything up to ts is in the checkpoint.
	if err := db.wal.w.Flush(); err != nil {
		return err
	}
	if err := db.wal.f.Close(); err != nil {
		return err
	}
	nf, err := os.OpenFile(filepath.Join(db.wal.dir, walFileName), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	db.wal.f = nf
	db.wal.w = bufio.NewWriterSize(nf, 1<<16)
	return nil
}

// Recover rebuilds table contents from the newest checkpoint plus the log.
// The schema (tables and indexes) must already have been re-created; only
// data is restored. Recovery is idempotent and tolerates a missing
// checkpoint (replays the whole log) and a truncated log tail.
func (db *Database) Recover() error {
	if db.wal == nil {
		return errors.New("storage: recover requires a WAL directory")
	}
	db.commitMu.Lock()
	defer db.commitMu.Unlock()

	ckptTS, err := db.loadCheckpoint()
	if err != nil {
		return err
	}
	maxTS := ckptTS
	err = db.wal.ReadAll(func(rec WALRecord) error {
		if rec.TS <= ckptTS {
			return nil
		}
		t := db.Table(rec.Table)
		if t == nil {
			return fmt.Errorf("recover: log references unknown table %q", rec.Table)
		}
		t.mu.Lock()
		switch rec.Kind {
		case WInsert:
			// Slots must land at rec.RID: pad with dead slots if needed
			// (gaps arise when aborted batches skipped rids).
			for uint64(len(t.slots)) < rec.RID {
				t.slots = append(t.slots, &version{beginTS: 0, endTS: 0})
			}
			if uint64(len(t.slots)) == rec.RID {
				t.insertLocked(rec.Row, rec.TS)
			} else {
				t.slots[rec.RID] = &version{row: rec.Row, beginTS: rec.TS, endTS: TSMax}
				for _, ix := range t.indexes {
					ix.tree.Insert(ix.KeyFor(rec.Row), rec.RID)
				}
			}
		case WUpdate:
			if rec.RID < uint64(len(t.slots)) {
				t.updateLocked(rec.RID, rec.Row, rec.TS)
			}
		case WDelete:
			if rec.RID < uint64(len(t.slots)) {
				t.deleteLocked(rec.RID, rec.TS)
			}
		}
		t.mu.Unlock()
		if rec.TS > maxTS {
			maxTS = rec.TS
		}
		return nil
	})
	if err != nil {
		return err
	}
	db.publish(maxTS)
	return nil
}

// loadCheckpoint restores table data from the checkpoint file, returning its
// timestamp (0 when absent).
func (db *Database) loadCheckpoint() (uint64, error) {
	path := filepath.Join(db.wal.dir, checkpointFileName)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	if len(data) < 16 || string(data[len(data)-8:]) != "CKPTDONE" {
		return 0, errors.New("recover: checkpoint file incomplete; ignoring")
	}
	body := data[:len(data)-8]
	ts := binary.LittleEndian.Uint64(body[:8])
	off := 8
	for off < len(body) {
		if off+2 > len(body) {
			return 0, io.ErrUnexpectedEOF
		}
		nameLen := int(binary.LittleEndian.Uint16(body[off : off+2]))
		off += 2
		if off+nameLen+8 > len(body) {
			return 0, io.ErrUnexpectedEOF
		}
		name := string(body[off : off+nameLen])
		off += nameLen
		nRows := binary.LittleEndian.Uint64(body[off : off+8])
		off += 8
		t := db.Table(name)
		if t == nil {
			return 0, fmt.Errorf("recover: checkpoint references unknown table %q", name)
		}
		t.mu.Lock()
		for i := uint64(0); i < nRows; i++ {
			if off+4 > len(body) {
				t.mu.Unlock()
				return 0, io.ErrUnexpectedEOF
			}
			recLen := int(binary.LittleEndian.Uint32(body[off : off+4]))
			off += 4
			if off+recLen > len(body) {
				t.mu.Unlock()
				return 0, io.ErrUnexpectedEOF
			}
			rec := body[off : off+recLen]
			off += recLen
			rid := binary.LittleEndian.Uint64(rec[:8])
			row, _, err := types.DecodeRow(rec[8:])
			if err != nil {
				t.mu.Unlock()
				return 0, err
			}
			for uint64(len(t.slots)) < rid {
				t.slots = append(t.slots, &version{beginTS: 0, endTS: 0})
			}
			t.slots = append(t.slots, &version{row: row, beginTS: ts, endTS: TSMax})
			for _, ix := range t.indexes {
				ix.tree.Insert(ix.KeyFor(row), rid)
			}
		}
		t.mu.Unlock()
	}
	db.publish(ts)
	return ts, nil
}
