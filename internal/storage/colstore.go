package storage

import (
	"math"
	"slices"
	"sync"

	"shareddb/internal/types"
)

// This file implements the per-table columnar read mirror behind
// Config.ColumnarScan: typed flat vectors (int64 / float64 / string with a
// validity bitmap) over the rows visible at one snapshot, maintained in
// place from the table's write stream. The mirror trades the row path's
// version-chain walk (pointer chase + interface dispatch per row per cycle)
// for cache-linear vector passes; SharedScanColumnar (colscan.go) evaluates
// the ClockScan predicate index column-at-a-time over it.
//
// Maintenance mirrors the incremental-state design of PR 7: writers append
// (rid, commitTS) records to a pending log under the table lock, and the
// scan synchronizes the mirror to its snapshot by draining the pending
// prefix with ts <= snapshot — appending inserts, tombstoning deletes via
// the live bitmap, patching updates in place — classified exactly like
// BuildDelta, by visibility at the snapshot boundary. Chain mismatch
// (a snapshot older than the mirror, like core.decideIncremental's
// signature/ts check) or a pending backlog larger than the mirror falls
// back to a rebuild from ScanVisible. Compaction rewrites the vectors when
// the dead fraction crosses colCompactDeadFraction.

// colRep selects the physical representation of one column vector.
type colRep uint8

const (
	// repGeneric keeps no typed vector: values are read from the mirrored
	// rows (mixed-kind columns, or kinds without a flat representation).
	repGeneric colRep = iota
	repI64            // KindInt / KindBool / KindTime, stored as int64
	repF64            // KindFloat
	repStr            // KindString
)

// colVec is one column of the mirror. For the typed representations every
// non-NULL value has exactly the vector's kind (the uniform-kind
// invariant); a value of any other kind demotes the whole column to
// repGeneric, because coercing comparisons (and the total order's kind-tag
// fallback) depend on the stored kind tag, not just the payload.
type colVec struct {
	rep   colRep
	kind  types.Kind
	i64   []int64
	f64   []float64
	str   []string
	valid []uint64 // bit i set = position i is non-NULL (typed reps only)
}

// reset re-derives the representation from the schema kind and empties the
// vector (rebuild and initial attach).
func (c *colVec) reset(kind types.Kind) {
	c.kind = kind
	switch kind {
	case types.KindInt, types.KindBool, types.KindTime:
		c.rep = repI64
	case types.KindFloat:
		c.rep = repF64
	case types.KindString:
		c.rep = repStr
	default:
		c.rep = repGeneric
	}
	c.i64 = c.i64[:0]
	c.f64 = c.f64[:0]
	clear(c.str)
	c.str = c.str[:0]
	clear(c.valid)
	c.valid = c.valid[:0]
}

// demote abandons the typed vector: reads go through the mirrored rows.
func (c *colVec) demote() {
	c.rep = repGeneric
	c.i64 = nil
	c.f64 = nil
	c.str = nil
	c.valid = nil
}

// appendVal appends v as position n (the vector's current length).
func (c *colVec) appendVal(v types.Value, n int) {
	if c.rep == repGeneric {
		return
	}
	for len(c.valid) <= n>>6 {
		c.valid = append(c.valid, 0)
	}
	null := v.IsNull()
	if !null && v.K != c.kind {
		c.demote()
		return
	}
	switch c.rep {
	case repI64:
		c.i64 = append(c.i64, v.Int)
	case repF64:
		c.f64 = append(c.f64, v.Float)
	case repStr:
		c.str = append(c.str, v.Str)
	}
	if !null {
		c.valid[n>>6] |= 1 << (n & 63)
	}
}

// setVal overwrites position i (update patch).
func (c *colVec) setVal(v types.Value, i int) {
	if c.rep == repGeneric {
		return
	}
	null := v.IsNull()
	if !null && v.K != c.kind {
		c.demote()
		return
	}
	switch c.rep {
	case repI64:
		c.i64[i] = v.Int
	case repF64:
		c.f64[i] = v.Float
	case repStr:
		c.str[i] = v.Str
	}
	if null {
		c.valid[i>>6] &^= 1 << (i & 63)
	} else {
		c.valid[i>>6] |= 1 << (i & 63)
	}
}

// colPending is one write-stream record: rid changed at commit timestamp
// ts. Appended by the mutation funnel under the table write lock.
type colPending struct {
	rid RowID
	ts  uint64
}

// colMirror is the columnar read mirror of one table.
//
// Locking: mu guards every field except pending; pending is guarded by the
// owning Table's mu (writers never take mirror locks, so the write path
// cannot deadlock against a scan). The lock order is mirror.mu before
// Table.mu — sync holds mu exclusively while it drains pending and reads
// version chains, and the scan pass holds mu shared for its whole cycle.
type colMirror struct {
	mu sync.RWMutex

	built bool
	asOf  uint64 // snapshot the mirror matches
	// maxSynced is the highest snapshot ever synchronized: pending records
	// up to it have been consumed, so incremental apply is only sound while
	// the mirror sits at this frontier (asOf == maxSynced). A pin at an
	// older snapshot rebuilds and leaves the mirror behind the frontier;
	// the next forward pin must rebuild too, because the records between
	// asOf and maxSynced are gone from the log.
	maxSynced uint64

	rids []RowID     // ascending (RowIDs are allocated monotonically)
	rows []types.Row // visible row at asOf; nil at dead positions
	cols []colVec
	live []uint64 // selection bitmap over positions; tail bits are zero
	dead int      // count of cleared live bits

	// stats (guarded by mu; test observability)
	rebuilds    uint64
	incSyncs    uint64
	compactions uint64

	// pending is the unapplied write stream, ordered by nondecreasing ts
	// (commit timestamps are handed out monotonically under the same lock).
	// Guarded by Table.mu, NOT by mu.
	pending []colPending

	drain []colPending // sync scratch, guarded by mu
}

// Maintenance thresholds. Vars so tests can force the rebuild and
// compaction paths on small fixtures.
var (
	// colCompactMinRows: mirrors smaller than this never compact (the
	// rewrite costs more than scanning a few dead slots).
	colCompactMinRows = 1024
	// colRebuildMinPending: a drained backlog larger than both this and the
	// mirror itself is applied by rebuilding instead of row-at-a-time.
	colRebuildMinPending = 1024
)

// colCompactDeadFraction (as a ratio n/d) is the dead fraction that
// triggers compaction: dead*colCompactDeadDen >= len(rids)*colCompactDeadNum.
const (
	colCompactDeadNum = 1
	colCompactDeadDen = 2
)

// columnarMirror returns the table's mirror, attaching (and thereby
// activating pending-log capture in the mutation funnel) on first use.
func (t *Table) columnarMirror() *colMirror {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.colm == nil {
		t.colm = &colMirror{}
	}
	return t.colm
}

// recordWrite appends one write-stream record. Caller holds t.mu for
// writing (the insertLocked/updateLocked/deleteLocked funnel).
func (t *Table) recordWrite(rid RowID, ts uint64) {
	if t.colm != nil {
		t.colm.pending = append(t.colm.pending, colPending{rid: rid, ts: ts})
	}
}

// pin brings the mirror to snapshot ts and returns with mu held shared.
// Concurrent pins at different snapshots (pipelined generations) serialize
// on mu; the loop re-checks because another pin may move asOf between the
// exclusive sync and re-acquiring the shared lock.
func (m *colMirror) pin(t *Table, ts uint64) {
	for {
		m.mu.RLock()
		if m.built && m.asOf == ts {
			return
		}
		m.mu.RUnlock()
		m.mu.Lock()
		m.syncLocked(t, ts)
		m.mu.Unlock()
	}
}

// syncLocked synchronizes the mirror to ts. Caller holds mu exclusively.
func (m *colMirror) syncLocked(t *Table, ts uint64) {
	if m.built && m.asOf == ts {
		return
	}

	// Drain the pending prefix with ts' <= ts under the table lock. The log
	// is ordered by nondecreasing commit ts, so the prefix is exact; later
	// entries belong to generations beyond this snapshot and stay queued.
	t.mu.Lock()
	pend := m.pending
	k := 0
	for k < len(pend) && pend[k].ts <= ts {
		k++
	}
	m.drain = append(m.drain[:0], pend[:k]...)
	n := copy(pend, pend[k:])
	clear(pend[n:])
	m.pending = pend[:n]
	t.mu.Unlock()

	switch {
	case !m.built, ts < m.asOf, m.asOf != m.maxSynced:
		// Chain mismatch: the mirror is ahead of (or does not cover) this
		// snapshot, or sits behind the drained frontier — reprime from a
		// full scan, exactly like core.decideIncremental falling back to
		// IncPrime.
		m.rebuildLocked(t, ts)
		return
	case len(m.drain) > colRebuildMinPending && len(m.drain) > len(m.rids):
		// The backlog dwarfs the mirror; a rebuild is cheaper than applying
		// it row by row.
		m.rebuildLocked(t, ts)
		return
	}

	if len(m.drain) > 0 {
		m.applyLocked(t, ts)
		if !m.built {
			// applyLocked hit an ordering violation; reprime.
			m.rebuildLocked(t, ts)
			return
		}
	}
	m.asOf = ts
	m.maxSynced = ts // incremental apply only runs at the frontier, ts > asOf
	m.incSyncs++

	if m.dead*colCompactDeadDen >= len(m.rids)*colCompactDeadNum && len(m.rids) >= colCompactMinRows {
		m.compactLocked()
	}
}

// applyLocked applies the drained write records: each touched rid is
// classified by membership in the mirror and visibility at ts (BuildDelta's
// boundary comparison) into append / tombstone / patch / no-op. Clears
// m.built on an append ordering violation (defensive; RowIDs invisible at
// the mirror's snapshot cannot become visible later, so appends always
// carry rids beyond the current tail). Caller holds mu exclusively.
func (m *colMirror) applyLocked(t *Table, ts uint64) {
	slices.SortFunc(m.drain, func(a, b colPending) int {
		switch {
		case a.rid < b.rid:
			return -1
		case a.rid > b.rid:
			return 1
		default:
			return 0
		}
	})
	t.mu.RLock()
	defer t.mu.RUnlock()
	var prev RowID = math.MaxUint64
	for _, e := range m.drain {
		if e.rid == prev {
			continue // several writes to one rid collapse into one check
		}
		prev = e.rid
		row, vis := t.visibleLocked(e.rid, ts)
		pos, found := slices.BinarySearch(m.rids, e.rid)
		switch {
		case found && vis:
			// Patch in place (update, or a tombstone revival on replayed
			// histories): install the visible row and refresh every column.
			m.rows[pos] = row
			for ci := range m.cols {
				m.cols[ci].setVal(row[ci], pos)
			}
			if m.live[pos>>6]&(1<<(pos&63)) == 0 {
				m.live[pos>>6] |= 1 << (pos & 63)
				m.dead--
			}
		case found:
			// Tombstone: clear the selection bit, release the row.
			if m.live[pos>>6]&(1<<(pos&63)) != 0 {
				m.live[pos>>6] &^= 1 << (pos & 63)
				m.dead++
			}
			m.rows[pos] = nil
		case vis:
			if len(m.rids) > 0 && e.rid <= m.rids[len(m.rids)-1] {
				m.built = false // ordering violation: force a rebuild
				return
			}
			m.appendRowLocked(e.rid, row)
		default:
			// Never visible at this snapshot (inserted and superseded within
			// the drained window, or inserted above ts): nothing to mirror.
		}
	}
}

// appendRowLocked appends one visible row at the mirror tail. Caller holds
// mu exclusively (and t.mu at least shared).
func (m *colMirror) appendRowLocked(rid RowID, row types.Row) {
	n := len(m.rids)
	m.rids = append(m.rids, rid)
	m.rows = append(m.rows, row)
	for ci := range m.cols {
		m.cols[ci].appendVal(row[ci], n)
	}
	for len(m.live) <= n>>6 {
		m.live = append(m.live, 0)
	}
	m.live[n>>6] |= 1 << (n & 63)
}

// rebuildLocked reprimes the mirror from a full visible scan at ts. Caller
// holds mu exclusively.
func (m *colMirror) rebuildLocked(t *Table, ts uint64) {
	schema := t.Schema()
	if len(m.cols) != len(schema.Cols) {
		m.cols = make([]colVec, len(schema.Cols))
	}
	for ci := range m.cols {
		m.cols[ci].reset(schema.Cols[ci].Kind)
	}
	m.rids = m.rids[:0]
	clear(m.rows)
	m.rows = m.rows[:0]
	clear(m.live)
	m.live = m.live[:0]
	m.dead = 0
	t.ScanVisible(ts, func(rid RowID, row types.Row) bool {
		m.appendRowLocked(rid, row)
		return true
	})
	m.built = true
	m.asOf = ts
	m.maxSynced = max(m.maxSynced, ts)
	m.rebuilds++
}

// compactLocked rewrites the vectors keeping only live positions (rid order
// is preserved — positions stay sorted by rid, so emission order is
// untouched). Caller holds mu exclusively.
func (m *colMirror) compactLocked() {
	w := 0
	for i := range m.rids {
		if m.live[i>>6]&(1<<(i&63)) == 0 {
			continue
		}
		if w != i {
			m.rids[w] = m.rids[i]
			m.rows[w] = m.rows[i]
			for ci := range m.cols {
				c := &m.cols[ci]
				switch c.rep {
				case repI64:
					c.i64[w] = c.i64[i]
				case repF64:
					c.f64[w] = c.f64[i]
				case repStr:
					c.str[w] = c.str[i]
				}
				if c.rep != repGeneric {
					if c.valid[i>>6]&(1<<(i&63)) != 0 {
						c.valid[w>>6] |= 1 << (w & 63)
					} else {
						c.valid[w>>6] &^= 1 << (w & 63)
					}
				}
			}
		}
		w++
	}
	old := len(m.rids)
	m.rids = m.rids[:w]
	clear(m.rows[w:old])
	m.rows = m.rows[:w]
	words := (w + 63) / 64
	for i := 0; i < words; i++ {
		m.live[i] = ^uint64(0)
	}
	if w&63 != 0 {
		m.live[words-1] = (1 << (w & 63)) - 1
	}
	clear(m.live[words:])
	m.live = m.live[:words]
	for ci := range m.cols {
		c := &m.cols[ci]
		switch c.rep {
		case repI64:
			c.i64 = c.i64[:w]
		case repF64:
			c.f64 = c.f64[:w]
		case repStr:
			clear(c.str[w:old])
			c.str = c.str[:w]
		}
		if c.rep != repGeneric {
			if w&63 != 0 {
				c.valid[words-1] &= (1 << (w & 63)) - 1
			}
			clear(c.valid[words:])
			c.valid = c.valid[:words]
		}
	}
	m.dead = 0
	m.compactions++
}

// colMirrorStats is the maintenance counter snapshot (test observability).
type colMirrorStats struct {
	rebuilds    uint64
	incSyncs    uint64
	compactions uint64
	rows        int
	dead        int
}

func (t *Table) columnarStats() colMirrorStats {
	t.mu.RLock()
	m := t.colm
	t.mu.RUnlock()
	if m == nil {
		return colMirrorStats{}
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	return colMirrorStats{
		rebuilds:    m.rebuilds,
		incSyncs:    m.incSyncs,
		compactions: m.compactions,
		rows:        len(m.rids),
		dead:        m.dead,
	}
}
