package storage

import (
	"errors"
	"fmt"
	"testing"

	"shareddb/internal/expr"
	"shareddb/internal/types"
)

func usersSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Qualifier: "users", Name: "id", Kind: types.KindInt},
		types.Column{Qualifier: "users", Name: "name", Kind: types.KindString},
		types.Column{Qualifier: "users", Name: "country", Kind: types.KindString},
		types.Column{Qualifier: "users", Name: "account", Kind: types.KindInt},
	)
}

func newUserDB(t *testing.T) (*Database, *Table) {
	t.Helper()
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := db.CreateTable("users", usersSchema())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.SetPrimaryKey("id"); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.AddIndex("users_country", false, "country"); err != nil {
		t.Fatal(err)
	}
	return db, tab
}

func user(id int64, name, country string, account int64) types.Row {
	return types.Row{types.NewInt(id), types.NewString(name), types.NewString(country), types.NewInt(account)}
}

func insertUsers(t *testing.T, db *Database, rows ...types.Row) {
	t.Helper()
	ops := make([]WriteOp, len(rows))
	for i, r := range rows {
		ops[i] = WriteOp{Table: "users", Kind: WInsert, Row: r}
	}
	results, _ := db.ApplyOps(ops)
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("insert %d: %v", i, res.Err)
		}
	}
}

func eqPred(t *Table, col string, v types.Value) expr.Expr {
	return &expr.Cmp{Op: expr.EQ, L: &expr.ColRef{Idx: t.Schema().MustColIndex(col)}, R: &expr.Const{Val: v}}
}

func TestInsertAndVisibility(t *testing.T) {
	db, tab := newUserDB(t)
	ts0 := db.SnapshotTS()
	insertUsers(t, db, user(1, "john", "CH", 100))
	ts1 := db.SnapshotTS()
	if ts1 <= ts0 {
		t.Fatal("snapshot did not advance")
	}
	if _, ok := tab.Visible(0, ts0); ok {
		t.Error("row visible before its commit")
	}
	row, ok := tab.Visible(0, ts1)
	if !ok || row[1].AsString() != "john" {
		t.Errorf("row not visible after commit: %v %v", row, ok)
	}
	if n := tab.CountVisible(ts1); n != 1 {
		t.Errorf("CountVisible = %d", n)
	}
}

func TestUpdateCreatesVersion(t *testing.T) {
	db, tab := newUserDB(t)
	insertUsers(t, db, user(1, "john", "CH", 100))
	ts1 := db.SnapshotTS()

	res, _ := db.ApplyOps([]WriteOp{{
		Table: "users", Kind: WUpdate,
		Pred: eqPred(tab, "id", types.NewInt(1)),
		Set:  []ColSet{{Col: 3, Val: &expr.Const{Val: types.NewInt(500)}}},
	}})
	if res[0].Err != nil || res[0].RowsAffected != 1 {
		t.Fatalf("update: %+v", res[0])
	}
	ts2 := db.SnapshotTS()

	// old snapshot still sees the old value (snapshot isolation)
	old, _ := tab.Visible(0, ts1)
	if old[3].AsInt() != 100 {
		t.Errorf("old snapshot sees %d", old[3].AsInt())
	}
	cur, _ := tab.Visible(0, ts2)
	if cur[3].AsInt() != 500 {
		t.Errorf("new snapshot sees %d", cur[3].AsInt())
	}
}

func TestDeleteVisibility(t *testing.T) {
	db, tab := newUserDB(t)
	insertUsers(t, db, user(1, "john", "CH", 100))
	ts1 := db.SnapshotTS()
	res, _ := db.ApplyOps([]WriteOp{{Table: "users", Kind: WDelete, Pred: eqPred(tab, "id", types.NewInt(1))}})
	if res[0].RowsAffected != 1 {
		t.Fatalf("delete affected %d", res[0].RowsAffected)
	}
	ts2 := db.SnapshotTS()
	if _, ok := tab.Visible(0, ts2); ok {
		t.Error("deleted row still visible")
	}
	if _, ok := tab.Visible(0, ts1); !ok {
		t.Error("old snapshot lost the row")
	}
}

func TestApplyOpsArrivalOrder(t *testing.T) {
	// Crescando contract: ops in one batch see the effects of earlier ops.
	db, tab := newUserDB(t)
	insertUsers(t, db, user(1, "john", "CH", 100))
	add100 := []ColSet{{Col: 3, Val: &expr.Arith{Op: expr.Add,
		L: &expr.ColRef{Idx: 3}, R: &expr.Const{Val: types.NewInt(100)}}}}
	res, _ := db.ApplyOps([]WriteOp{
		{Table: "users", Kind: WUpdate, Pred: eqPred(tab, "id", types.NewInt(1)), Set: add100},
		{Table: "users", Kind: WUpdate, Pred: eqPred(tab, "id", types.NewInt(1)), Set: add100},
	})
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("op %d: %v", i, r.Err)
		}
	}
	row, _ := tab.Visible(0, db.SnapshotTS())
	if row[3].AsInt() != 300 {
		t.Errorf("account = %d, want 300 (both increments applied in order)", row[3].AsInt())
	}
}

func TestUniqueViolation(t *testing.T) {
	db, _ := newUserDB(t)
	insertUsers(t, db, user(1, "john", "CH", 100))
	res, _ := db.ApplyOps([]WriteOp{{Table: "users", Kind: WInsert, Row: user(1, "dup", "DE", 0)}})
	if !errors.Is(res[0].Err, ErrUniqueViolate) {
		t.Errorf("expected unique violation, got %v", res[0].Err)
	}
	// table unchanged
	if db.Table("users").CountVisible(db.SnapshotTS()) != 1 {
		t.Error("failed insert changed table")
	}
}

func TestApplyOpsUnknownTable(t *testing.T) {
	db, _ := newUserDB(t)
	res, _ := db.ApplyOps([]WriteOp{{Table: "nope", Kind: WInsert, Row: user(1, "x", "y", 0)}})
	if !errors.Is(res[0].Err, ErrNoTable) {
		t.Errorf("expected ErrNoTable, got %v", res[0].Err)
	}
}

func TestResolveTargetsUsesIndex(t *testing.T) {
	db, tab := newUserDB(t)
	var rows []types.Row
	for i := int64(0); i < 100; i++ {
		rows = append(rows, user(i, fmt.Sprintf("u%d", i), []string{"CH", "DE", "US"}[i%3], i*10))
	}
	insertUsers(t, db, rows...)
	ts := db.SnapshotTS()

	tab.mu.Lock()
	targets := resolveTargets(tab, eqPred(tab, "id", types.NewInt(42)), ts)
	tab.mu.Unlock()
	if len(targets) != 1 || targets[0] != 42 {
		t.Errorf("pk resolve = %v", targets)
	}

	tab.mu.Lock()
	targets = resolveTargets(tab, eqPred(tab, "country", types.NewString("DE")), ts)
	tab.mu.Unlock()
	if len(targets) != 33 {
		t.Errorf("secondary index resolve found %d, want 33", len(targets))
	}

	// non-indexed predicate falls back to scan
	pred := &expr.Cmp{Op: expr.GT, L: &expr.ColRef{Idx: 3}, R: &expr.Const{Val: types.NewInt(900)}}
	tab.mu.Lock()
	targets = resolveTargets(tab, pred, ts)
	tab.mu.Unlock()
	if len(targets) != 9 {
		t.Errorf("scan resolve found %d, want 9", len(targets))
	}
}

func TestTxCommitAtomic(t *testing.T) {
	db, tab := newUserDB(t)
	tx := db.Begin()
	tx.Insert("users", user(1, "a", "CH", 1))
	tx.Insert("users", user(2, "b", "DE", 2))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if tab.CountVisible(db.SnapshotTS()) != 2 {
		t.Error("both inserts should be visible")
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Errorf("double commit: %v", err)
	}
}

func TestTxRollback(t *testing.T) {
	db, tab := newUserDB(t)
	tx := db.Begin()
	tx.Insert("users", user(1, "a", "CH", 1))
	tx.Rollback()
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Errorf("commit after rollback: %v", err)
	}
	if tab.CountVisible(db.SnapshotTS()) != 0 {
		t.Error("rollback leaked rows")
	}
}

func TestTxWriteWriteConflict(t *testing.T) {
	db, tab := newUserDB(t)
	insertUsers(t, db, user(1, "john", "CH", 100))

	tx1 := db.Begin()
	tx2 := db.Begin()
	set := []ColSet{{Col: 3, Val: &expr.Const{Val: types.NewInt(1)}}}
	tx1.Update("users", eqPred(tab, "id", types.NewInt(1)), set)
	tx2.Update("users", eqPred(tab, "id", types.NewInt(1)), set)
	if err := tx1.Commit(); err != nil {
		t.Fatalf("tx1: %v", err)
	}
	if err := tx2.Commit(); !errors.Is(err, ErrConflict) {
		t.Errorf("tx2 should conflict, got %v", err)
	}
}

func TestTxNoConflictDisjointRows(t *testing.T) {
	db, tab := newUserDB(t)
	insertUsers(t, db, user(1, "a", "CH", 1), user(2, "b", "DE", 2))
	tx1, tx2 := db.Begin(), db.Begin()
	set := []ColSet{{Col: 3, Val: &expr.Const{Val: types.NewInt(9)}}}
	tx1.Update("users", eqPred(tab, "id", types.NewInt(1)), set)
	tx2.Update("users", eqPred(tab, "id", types.NewInt(2)), set)
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Errorf("disjoint tx2 should commit: %v", err)
	}
}

func TestTxUniqueWithinTransaction(t *testing.T) {
	db, _ := newUserDB(t)
	tx := db.Begin()
	tx.Insert("users", user(1, "a", "CH", 1))
	tx.Insert("users", user(1, "b", "DE", 2))
	if err := tx.Commit(); !errors.Is(err, ErrUniqueViolate) {
		t.Errorf("want unique violation, got %v", err)
	}
	if db.Table("users").CountVisible(db.SnapshotTS()) != 0 {
		t.Error("aborted tx applied partially")
	}
}

func TestCommitTxBatchOrdering(t *testing.T) {
	// Batch commit: transactions apply in order and each gets SI checks.
	db, tab := newUserDB(t)
	insertUsers(t, db, user(1, "a", "CH", 100))
	tx1, tx2, tx3 := db.Begin(), db.Begin(), db.Begin()
	set := []ColSet{{Col: 3, Val: &expr.Const{Val: types.NewInt(9)}}}
	tx1.Update("users", eqPred(tab, "id", types.NewInt(1)), set)
	tx2.Update("users", eqPred(tab, "id", types.NewInt(1)), set)
	tx3.Insert("users", user(2, "c", "DE", 0))
	_, errs := db.CommitTxBatch([]*Tx{tx1, tx2, tx3})
	if errs[0] != nil {
		t.Errorf("tx1: %v", errs[0])
	}
	if !errors.Is(errs[1], ErrConflict) {
		t.Errorf("tx2 should conflict (first committer wins), got %v", errs[1])
	}
	if errs[2] != nil {
		t.Errorf("tx3: %v", errs[2])
	}
	if tab.CountVisible(db.SnapshotTS()) != 2 {
		t.Error("tx3 insert missing")
	}
}

func TestGCPreservesVisibleState(t *testing.T) {
	db, tab := newUserDB(t)
	insertUsers(t, db, user(1, "a", "CH", 1))
	for i := 0; i < 10; i++ {
		db.ApplyOps([]WriteOp{{
			Table: "users", Kind: WUpdate,
			Pred: eqPred(tab, "id", types.NewInt(1)),
			Set:  []ColSet{{Col: 3, Val: &expr.Const{Val: types.NewInt(int64(i))}}},
		}})
	}
	ts := db.SnapshotTS()
	before, _ := tab.Visible(0, ts)
	db.GCAll(0)
	after, ok := tab.Visible(0, ts)
	if !ok || after[3].AsInt() != before[3].AsInt() {
		t.Errorf("GC changed visible state: %v -> %v", before, after)
	}
	// chain should now be a single version
	tab.mu.RLock()
	depth := 0
	for v := tab.slots[0]; v != nil; v = v.older {
		depth++
	}
	tab.mu.RUnlock()
	if depth != 1 {
		t.Errorf("chain depth after GC = %d, want 1", depth)
	}
}

func TestGCRemovesStaleIndexEntries(t *testing.T) {
	db, tab := newUserDB(t)
	insertUsers(t, db, user(1, "a", "CH", 1))
	// move the user across countries; each update adds an index entry
	for _, c := range []string{"DE", "US", "FR"} {
		db.ApplyOps([]WriteOp{{
			Table: "users", Kind: WUpdate,
			Pred: eqPred(tab, "id", types.NewInt(1)),
			Set:  []ColSet{{Col: 2, Val: &expr.Const{Val: types.NewString(c)}}},
		}})
	}
	ix := tab.IndexByName("users_country")
	if ix.Tree().Len() != 4 {
		t.Fatalf("expected 4 entries before GC, got %d", ix.Tree().Len())
	}
	db.GCAll(0)
	if ix.Tree().Len() != 1 {
		t.Errorf("expected 1 entry after GC, got %d", ix.Tree().Len())
	}
	ts := db.SnapshotTS()
	row, _ := tab.Visible(0, ts)
	if row[2].AsString() != "FR" {
		t.Errorf("visible country = %s", row[2].AsString())
	}
}

func TestAddIndexBackfills(t *testing.T) {
	db, tab := newUserDB(t)
	insertUsers(t, db, user(1, "a", "CH", 1), user(2, "b", "CH", 2))
	ix, err := tab.AddIndex("late", false, "account")
	if err != nil {
		t.Fatal(err)
	}
	if ix.Tree().Len() != 2 {
		t.Errorf("backfill inserted %d entries", ix.Tree().Len())
	}
}

func TestIndexOn(t *testing.T) {
	_, tab := newUserDB(t)
	if tab.IndexOn(0) == nil {
		t.Error("pk index on col 0 not found")
	}
	if tab.IndexOn(2) == nil {
		t.Error("country index not found")
	}
	if tab.IndexOn(3) != nil {
		t.Error("no index on account should exist")
	}
}
