package storage

import (
	"fmt"
	"math/rand"
	"testing"

	"shareddb/internal/expr"
	"shareddb/internal/queryset"
	"shareddb/internal/types"
)

// Differential correctness sweep for the ClockScan (the batched, predicate-
// indexed shared scan): for random schemas, rows and predicate batches, the
// batched answer of every query must equal a naive per-query evaluation of
// its predicate over the visible rows — same row ids, same order. The sweep
// covers all four client classes the predicate index distinguishes:
// equality (hashed), range (sorted interval list with early termination),
// residual-conjunct (indexed conjunct + per-row residual), and
// no-predicate/rest (LIKE, OR, NOT, IS NULL, full scans). Both the serial
// and the partition-parallel scan are checked against the oracle.

// fuzzValue generates a value for a column kind; withNull allows SQL NULL.
// Numeric domains are deliberately tiny so predicates hit often, and float
// columns mix integral and fractional values to stress INT/FLOAT coercion
// (Compare coerces; the equality hash must agree via key canonicalization).
func fuzzValue(r *rand.Rand, kind types.Kind, withNull bool) types.Value {
	if withNull && r.Intn(10) == 0 {
		return types.Null
	}
	switch kind {
	case types.KindInt:
		return types.NewInt(int64(r.Intn(21) - 10))
	case types.KindFloat:
		f := float64(r.Intn(21) - 10)
		if r.Intn(2) == 0 {
			f += 0.5
		}
		return types.NewFloat(f)
	default:
		return types.NewString(string(rune('a' + r.Intn(5))))
	}
}

// fuzzConst generates a comparison constant for a column: usually the
// column's own kind, sometimes the other numeric kind (an INT literal
// compared against a FLOAT column and vice versa — the SQL front-end
// produces exactly that for `WHERE fcol = 5`).
func fuzzConst(r *rand.Rand, kind types.Kind) types.Value {
	if kind == types.KindFloat && r.Intn(3) == 0 {
		return types.NewInt(int64(r.Intn(21) - 10))
	}
	if kind == types.KindInt && r.Intn(3) == 0 {
		f := float64(r.Intn(21) - 10)
		if r.Intn(2) == 0 {
			f += 0.5
		}
		return types.NewFloat(f)
	}
	return fuzzValue(r, kind, false)
}

// fuzzPred builds one random predicate over the schema, drawn from the four
// client classes.
func fuzzPred(r *rand.Rand, kinds []types.Kind) expr.Expr {
	col := func() int { return r.Intn(len(kinds)) }
	cmp := func(op expr.CmpOp) expr.Expr {
		c := col()
		return &expr.Cmp{Op: op, L: &expr.ColRef{Idx: c}, R: &expr.Const{Val: fuzzConst(r, kinds[c])}}
	}
	rangeOps := []expr.CmpOp{expr.LT, expr.LE, expr.GT, expr.GE}
	switch r.Intn(10) {
	case 0, 1: // equality client
		return cmp(expr.EQ)
	case 2, 3: // range client (half the time with an unbounded lower bound)
		return cmp(rangeOps[r.Intn(len(rangeOps))])
	case 4: // residual-conjunct client: equality + extra conjuncts
		kids := []expr.Expr{cmp(expr.EQ), cmp(rangeOps[r.Intn(len(rangeOps))])}
		if r.Intn(2) == 0 {
			kids = append(kids, cmp(expr.NE))
		}
		return &expr.And{Kids: kids}
	case 5: // residual-conjunct client: range + range (BETWEEN shape)
		c := col()
		lo := fuzzConst(r, kinds[c])
		hi := fuzzConst(r, kinds[c])
		return &expr.And{Kids: []expr.Expr{
			&expr.Cmp{Op: expr.GE, L: &expr.ColRef{Idx: c}, R: &expr.Const{Val: lo}},
			&expr.Cmp{Op: expr.LE, L: &expr.ColRef{Idx: c}, R: &expr.Const{Val: hi}},
		}}
	case 6: // rest: disjunction
		return &expr.Or{Kids: []expr.Expr{cmp(expr.EQ), cmp(expr.EQ)}}
	case 7: // rest: negation / IS NULL
		if r.Intn(2) == 0 {
			return &expr.Not{Kid: cmp(expr.EQ)}
		}
		return &expr.IsNull{Kid: &expr.ColRef{Idx: col()}, Negate: r.Intn(2) == 0}
	case 8: // rest: NE only (not indexable)
		return cmp(expr.NE)
	default: // no-predicate client
		return nil
	}
}

func TestClockScanDifferentialFuzz(t *testing.T) {
	forceParallelScan(t)
	r := rand.New(rand.NewSource(20120725))
	kindPool := []types.Kind{types.KindInt, types.KindFloat, types.KindString}
	for trial := 0; trial < 150; trial++ {
		ncols := 1 + r.Intn(4)
		kinds := make([]types.Kind, ncols)
		cols := make([]types.Column, ncols)
		for i := range cols {
			kinds[i] = kindPool[r.Intn(len(kindPool))]
			cols[i] = types.Column{Qualifier: "t", Name: fmt.Sprintf("c%d", i), Kind: kinds[i]}
		}
		db, err := Open(Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.CreateTable("t", types.NewSchema(cols...)); err != nil {
			t.Fatal(err)
		}
		tab := db.Table("t")
		nrows := r.Intn(250)
		ops := make([]WriteOp, nrows)
		for i := range ops {
			row := make(types.Row, ncols)
			for c := range row {
				row[c] = fuzzValue(r, kinds[c], true)
			}
			ops[i] = WriteOp{Table: "t", Kind: WInsert, Row: row}
		}
		db.ApplyOps(ops)
		ts := db.SnapshotTS()

		nq := 1 + r.Intn(40)
		clients := make([]ScanClient, nq)
		for i := range clients {
			clients[i] = ScanClient{ID: queryset.QueryID(i + 1), Pred: fuzzPred(r, kinds)}
		}

		// Oracle: evaluate each client's predicate on every visible row.
		want := make(map[queryset.QueryID][]RowID)
		tab.ScanVisible(ts, func(rid RowID, row types.Row) bool {
			for _, c := range clients {
				if expr.TruthyEval(c.Pred, row, nil) {
					want[c.ID] = append(want[c.ID], rid)
				}
			}
			return true
		})

		check := func(label string, workers int) {
			got := make(map[queryset.QueryID][]RowID)
			emit := func(rid RowID, _ types.Row, qs queryset.Set) {
				for _, id := range qs.IDs() {
					got[id] = append(got[id], rid)
				}
			}
			if workers == 0 {
				tab.SharedScan(ts, clients, emit)
			} else {
				tab.SharedScanPartitioned(ts, clients, workers, emit)
			}
			for _, c := range clients {
				w, g := want[c.ID], got[c.ID]
				if len(w) != len(g) {
					t.Fatalf("trial %d %s query %d (pred %v): %d rows, oracle %d",
						trial, label, c.ID, c.Pred, len(g), len(w))
				}
				for i := range w {
					if w[i] != g[i] {
						t.Fatalf("trial %d %s query %d (pred %v): row %d = rid %d, oracle rid %d",
							trial, label, c.ID, c.Pred, i, g[i], w[i])
					}
				}
			}
			if len(got) > len(want) {
				t.Fatalf("trial %d %s: answered %d queries, oracle answered %d", trial, label, len(got), len(want))
			}
		}
		check("serial", 0)
		check("parallel", 3)
		db.Close()
	}
}

// Audit of the predicate index's range-probe early termination (the sweep's
// named suspect): probes on one column are sorted by lower bound with
// unbounded (NULL) lower bounds first, and the scan breaks at the first
// bounded probe whose Lo exceeds the row value. This test pins the
// interleaving that would break if the ordering or the break condition
// regressed: unbounded-Lo probes must be evaluated before the break can
// trigger, and probes sharing a lower bound must all be evaluated.
func TestClockScanRangeProbeUnboundedLowerBounds(t *testing.T) {
	db, tab := newUserDB(t)
	for i := int64(0); i < 40; i++ {
		insertUsers(t, db, user(i, fmt.Sprintf("u%d", i), "CH", i*10))
	}
	ts := db.SnapshotTS()
	lt := func(v int64) expr.Expr {
		return &expr.Cmp{Op: expr.LT, L: colRef(tab, "account"), R: &expr.Const{Val: types.NewInt(v)}}
	}
	ge := func(v int64) expr.Expr {
		return &expr.Cmp{Op: expr.GE, L: colRef(tab, "account"), R: &expr.Const{Val: types.NewInt(v)}}
	}
	between := func(lo, hi int64) expr.Expr {
		return &expr.And{Kids: []expr.Expr{ge(lo), lt(hi)}}
	}
	clients := []ScanClient{
		{ID: 1, Pred: lt(50)},            // unbounded lower bound, sorts first
		{ID: 2, Pred: lt(250)},           // unbounded lower bound, wider
		{ID: 3, Pred: between(100, 200)}, // bounded Lo=100
		{ID: 4, Pred: between(100, 300)}, // same Lo=100 (tie in the sort)
		{ID: 5, Pred: ge(300)},           // bounded Lo=300
	}
	counts := map[queryset.QueryID]int{}
	tab.SharedScan(ts, clients, func(_ RowID, row types.Row, qs queryset.Set) {
		acct := row[3].AsInt()
		for _, id := range qs.IDs() {
			counts[id]++
			ok := false
			switch id {
			case 1:
				ok = acct < 50
			case 2:
				ok = acct < 250
			case 3:
				ok = acct >= 100 && acct < 200
			case 4:
				ok = acct >= 100 && acct < 300
			case 5:
				ok = acct >= 300
			}
			if !ok {
				t.Errorf("query %d wrongly matched account %d", id, acct)
			}
		}
	})
	// accounts are 0,10,...,390
	want := map[queryset.QueryID]int{1: 5, 2: 25, 3: 10, 4: 20, 5: 10}
	for id, w := range want {
		if counts[id] != w {
			t.Errorf("query %d matched %d rows, want %d (early termination dropped probes?)", id, counts[id], w)
		}
	}
}
