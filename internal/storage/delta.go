package storage

import (
	"sort"

	"shareddb/internal/types"
)

// Delta is the net effect of one engine generation's write phase: for each
// touched table, which logical rows appeared, vanished or changed between
// the snapshot published before the batch (FromTS) and the snapshot
// published after it (ToTS). The generation barrier makes the delta exact —
// no writes of any other generation fall inside (FromTS, ToTS].
//
// Rows are reported at the boundary snapshots, so intra-batch churn
// collapses: a row inserted and deleted within the same generation appears
// in no list, and a row updated twice appears once with the first old row
// and the last new row.
type Delta struct {
	FromTS uint64
	ToTS   uint64
	Tables map[string]*TableDelta
}

// Empty reports whether the delta carries no changes.
func (d *Delta) Empty() bool { return d == nil || len(d.Tables) == 0 }

// Table returns the named table's delta, or nil when untouched.
func (d *Delta) Table(name string) *TableDelta {
	if d == nil {
		return nil
	}
	return d.Tables[name]
}

// TableDelta is one table's slice of a Delta. Each list is sorted by RowID
// ascending, and a RowID appears in at most one list.
type TableDelta struct {
	Inserted []DeltaRow   // visible at ToTS, not at FromTS
	Deleted  []DeltaRow   // visible at FromTS, not at ToTS (Row is the old row)
	Updated  []UpdatedRow // visible at both with different versions
}

// DeltaRow is one inserted or deleted row.
type DeltaRow struct {
	RID RowID
	Row types.Row // inserted: row at ToTS; deleted: row at FromTS
}

// UpdatedRow carries both boundary versions of a changed row.
type UpdatedRow struct {
	RID RowID
	Old types.Row // version visible at FromTS
	New types.Row // version visible at ToTS
}

// BuildDelta classifies the rows touched by a batch of recorded writes into
// an exact generation delta. recs is the physical write log of the batch
// (as returned by ApplyOpsRecorded / CommitTxBatchRecorded — possibly
// accumulated across several write-only generations); fromTS is the
// snapshot published before the first of those batches and toTS the
// snapshot published after the last (typically the generation's pinned read
// snapshot, which shields the versions involved from GC).
//
// Each touched (table, rid) is classified once by comparing its visibility
// at the two boundary snapshots, so the same rid recorded several times —
// insert then delete, repeated updates — collapses to its net effect.
func (db *Database) BuildDelta(fromTS, toTS uint64, recs []WALRecord) *Delta {
	d := &Delta{FromTS: fromTS, ToTS: toTS}
	if len(recs) == 0 {
		return d
	}
	type tableTouches struct {
		t    *Table
		rids []RowID
	}
	touched := map[string]*tableTouches{}
	seen := map[string]map[RowID]bool{}
	for _, rec := range recs {
		tt := touched[rec.Table]
		if tt == nil {
			t := db.Table(rec.Table)
			if t == nil {
				continue // table dropped since the write; nothing to maintain
			}
			tt = &tableTouches{t: t}
			touched[rec.Table] = tt
			seen[rec.Table] = map[RowID]bool{}
		}
		if seen[rec.Table][rec.RID] {
			continue
		}
		seen[rec.Table][rec.RID] = true
		tt.rids = append(tt.rids, rec.RID)
	}
	for name, tt := range touched {
		sort.Slice(tt.rids, func(i, j int) bool { return tt.rids[i] < tt.rids[j] })
		td := &TableDelta{}
		tt.t.mu.RLock()
		for _, rid := range tt.rids {
			oldRow, hadOld := tt.t.visibleLocked(rid, fromTS)
			newRow, hasNew := tt.t.visibleLocked(rid, toTS)
			switch {
			case !hadOld && hasNew:
				td.Inserted = append(td.Inserted, DeltaRow{RID: rid, Row: newRow})
			case hadOld && !hasNew:
				td.Deleted = append(td.Deleted, DeltaRow{RID: rid, Row: oldRow})
			case hadOld && hasNew:
				// Boundary versions may be the same object when a touched
				// row's net effect is a no-op (e.g. a conflicting update
				// that never applied would not be recorded, but an update
				// writing identical values still produces a new version).
				td.Updated = append(td.Updated, UpdatedRow{RID: rid, Old: oldRow, New: newRow})
			}
			// !hadOld && !hasNew: inserted and deleted within the window —
			// invisible at both boundaries, no net effect.
		}
		tt.t.mu.RUnlock()
		if len(td.Inserted)+len(td.Deleted)+len(td.Updated) > 0 {
			if d.Tables == nil {
				d.Tables = map[string]*TableDelta{}
			}
			d.Tables[name] = td
		}
	}
	return d
}

// ApplyOpsRecorded is ApplyOps additionally returning the batch's physical
// write records (table, RowID, kind per applied mutation) so the caller can
// build an exact generation Delta. The records alias the same slice handed
// to the WAL; callers must treat them as read-only.
func (db *Database) ApplyOpsRecorded(ops []WriteOp) ([]OpResult, uint64, []WALRecord) {
	return db.applyOps(ops)
}

// CommitTxBatchRecorded is CommitTxBatch additionally returning the batch's
// physical write records for delta construction.
func (db *Database) CommitTxBatchRecorded(txs []*Tx) (uint64, []error, []WALRecord) {
	return db.commitTxBatch(txs)
}
