package storage

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"shareddb/internal/expr"
	"shareddb/internal/types"
)

// Common storage errors.
var (
	ErrConflict      = errors.New("storage: snapshot isolation write-write conflict")
	ErrUniqueViolate = errors.New("storage: unique index violation")
	ErrNoTable       = errors.New("storage: no such table")
	ErrTxDone        = errors.New("storage: transaction already finished")
)

// Options configures a Database.
type Options struct {
	// WALDir enables durability: updates are logged to WALDir and
	// checkpoints are written there. Empty disables logging (the
	// configuration the paper used for MySQL).
	WALDir string
	// SyncWAL fsyncs the log on every commit batch when true.
	SyncWAL bool
	// Shard records which hash partition of a sharded deployment this
	// database holds (metadata only; zero value = unsharded).
	Shard ShardInfo
}

// Database is the storage manager: a catalog of MVCC tables with a global
// commit clock providing snapshot isolation, plus optional WAL durability.
type Database struct {
	mu     sync.RWMutex
	tables map[string]*Table

	// commitMu serializes commit batches; clock/snapTS only change while it
	// is held. Readers load snapTS without commitMu via stateMu.
	commitMu sync.Mutex
	stateMu  sync.RWMutex
	clock    uint64 // last assigned commit timestamp
	snapTS   uint64 // latest published snapshot

	// pins are snapshots held by in-flight read generations; GC must not
	// truncate versions still visible at the oldest pin.
	pinMu sync.Mutex
	pins  map[uint64]int // snapshot ts → reference count

	wal   *WAL
	shard ShardInfo
}

// Shard reports which hash partition this database holds (zero value when
// unsharded).
func (db *Database) Shard() ShardInfo { return db.shard }

// PinCurrentSnapshot atomically reads the latest published snapshot and
// pins it, shielding the versions visible at it from GC until
// UnpinSnapshot. The read and the pin happen under the pin lock that
// GCAll's horizon computation also takes, so there is no window where a
// concurrent GC can truncate versions the about-to-run reader needs.
func (db *Database) PinCurrentSnapshot() uint64 {
	db.pinMu.Lock()
	ts := db.SnapshotTS()
	if db.pins == nil {
		db.pins = map[uint64]int{}
	}
	db.pins[ts]++
	db.pinMu.Unlock()
	return ts
}

// UnpinSnapshot releases a PinSnapshot reference.
func (db *Database) UnpinSnapshot(ts uint64) {
	db.pinMu.Lock()
	if db.pins[ts] > 1 {
		db.pins[ts]--
	} else {
		delete(db.pins, ts)
	}
	db.pinMu.Unlock()
}

// gcHorizon computes the GC truncation horizon: the current snapshot minus
// keep, capped by the oldest pinned snapshot. Held under pinMu so it is
// atomic with PinCurrentSnapshot — a pin taken after this returns is for a
// snapshot >= the horizon, whose visible versions GC preserves.
func (db *Database) gcHorizon(keep uint64) (uint64, bool) {
	db.pinMu.Lock()
	defer db.pinMu.Unlock()
	ts := db.SnapshotTS()
	if ts <= keep {
		return 0, false
	}
	horizon := ts - keep
	for pinned := range db.pins {
		if pinned < horizon {
			horizon = pinned
		}
	}
	return horizon, true
}

// Open creates a new empty database. If opts.WALDir is set, any existing
// checkpoint and log found there are NOT replayed automatically — call
// Recover after re-creating the schema.
func Open(opts Options) (*Database, error) {
	db := &Database{tables: map[string]*Table{}, shard: opts.Shard}
	if opts.WALDir != "" {
		w, err := OpenWAL(opts.WALDir, opts.SyncWAL)
		if err != nil {
			return nil, err
		}
		db.wal = w
	}
	return db, nil
}

// Close releases the WAL (if any).
func (db *Database) Close() error {
	if db.wal != nil {
		return db.wal.Close()
	}
	return nil
}

// CreateTable registers a new table.
func (db *Database) CreateTable(name string, schema *types.Schema) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("storage: table %q already exists", name)
	}
	t := NewTable(name, schema)
	db.tables[name] = t
	return t, nil
}

// Table returns the named table or nil.
func (db *Database) Table(name string) *Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tables[name]
}

// Tables returns all tables sorted by name.
func (db *Database) Tables() []*Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]*Table, 0, len(db.tables))
	for _, t := range db.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// SnapshotTS returns the latest committed snapshot timestamp. All reads at
// this timestamp see a consistent database state.
func (db *Database) SnapshotTS() uint64 {
	db.stateMu.RLock()
	defer db.stateMu.RUnlock()
	return db.snapTS
}

func (db *Database) publish(ts uint64) {
	db.stateMu.Lock()
	db.clock = ts
	db.snapTS = ts
	db.stateMu.Unlock()
}

// WriteKind enumerates mutation kinds.
type WriteKind uint8

// Mutation kinds.
const (
	WInsert WriteKind = iota
	WUpdate
	WDelete
)

// ColSet assigns a new value (an expression over the old row) to a column.
type ColSet struct {
	Col int
	Val expr.Expr
}

// WriteOp is one logical mutation. Update/Delete targets are selected by a
// bound predicate over the table schema at apply time.
type WriteOp struct {
	Table string
	Kind  WriteKind
	Row   types.Row // insert only
	Pred  expr.Expr // update/delete target selection (nil = all rows)
	Set   []ColSet  // update only
}

// OpResult reports the outcome of one WriteOp.
type OpResult struct {
	RowsAffected int
	Err          error
}

// resolveTargets finds the RowIDs of rows visible at ts satisfying pred,
// using an index when an equality conjunct matches one (the common TPC-W
// case: updates by primary key), else a full scan. Caller holds the table's
// write lock (readers of slots are safe under either lock).
func resolveTargets(t *Table, pred expr.Expr, ts uint64) []RowID {
	var out []RowID
	// Index selection: collect equality conjuncts col=const and find an
	// index whose leading columns are all covered.
	eq := map[int]types.Value{}
	for _, c := range expr.Conjuncts(pred) {
		if col, v, ok := expr.EqualityMatch(c); ok {
			if _, dup := eq[col]; !dup {
				eq[col] = v
			}
		}
	}
	var best *Index
	bestLen := 0
	for _, ix := range t.indexes {
		n := 0
		for _, c := range ix.Cols {
			if _, ok := eq[c]; ok {
				n++
			} else {
				break
			}
		}
		if n > bestLen {
			best, bestLen = ix, n
		}
	}
	if best != nil {
		key := make([]types.Value, bestLen)
		for i := 0; i < bestLen; i++ {
			key[i] = eq[best.Cols[i]]
		}
		seen := map[RowID]bool{}
		best.tree.SeekEQ(key, func(rid uint64) bool {
			if seen[rid] {
				return true
			}
			seen[rid] = true
			row, ok := t.visibleLocked(rid, ts)
			if ok && expr.TruthyEval(pred, row, nil) {
				out = append(out, rid)
			}
			return true
		})
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	for rid, head := range t.slots {
		for v := head; v != nil; v = v.older {
			if v.beginTS <= ts && ts < v.endTS {
				if expr.TruthyEval(pred, v.row, nil) {
					out = append(out, RowID(rid))
				}
				break
			}
		}
	}
	return out
}

// checkUnique verifies that inserting/updating to row would not violate a
// unique index at snapshot ts (excluding selfRID). Caller holds write lock.
func checkUnique(t *Table, row types.Row, ts uint64, selfRID RowID, hasSelf bool) error {
	for _, ix := range t.indexes {
		if !ix.Unique {
			continue
		}
		key := ix.KeyFor(row)
		dup := false
		ix.tree.SeekEQ(key, func(rid uint64) bool {
			if hasSelf && rid == selfRID {
				return true
			}
			vRow, ok := t.visibleLocked(rid, ts)
			if ok {
				// visible row must actually carry the key (stale entries)
				match := true
				for i, c := range ix.Cols {
					if !vRow[c].Equal(key[i]) {
						match = false
						break
					}
				}
				if match {
					dup = true
					return false
				}
			}
			return true
		})
		if dup {
			return fmt.Errorf("%w: index %s", ErrUniqueViolate, ix.Name)
		}
	}
	return nil
}

// ApplyOps applies a batch of mutations in arrival order, each at its own
// commit timestamp so that later ops in the batch observe earlier ones.
// This is the Crescando contract (paper §4.4): "updates are executed in
// arrival order", while concurrent readers keep seeing the snapshot
// published before the batch. The new snapshot is published once, after the
// whole batch — readers never observe a half-applied batch.
func (db *Database) ApplyOps(ops []WriteOp) ([]OpResult, uint64) {
	results, ts, _ := db.applyOps(ops)
	return results, ts
}

func (db *Database) applyOps(ops []WriteOp) ([]OpResult, uint64, []WALRecord) {
	db.commitMu.Lock()
	defer db.commitMu.Unlock()

	db.stateMu.RLock()
	ts := db.clock
	db.stateMu.RUnlock()

	results := make([]OpResult, len(ops))
	var logRecs []WALRecord
	for i, op := range ops {
		t := db.Table(op.Table)
		if t == nil {
			results[i] = OpResult{Err: fmt.Errorf("%w: %s", ErrNoTable, op.Table)}
			continue
		}
		ts++
		res, recs := applyOne(t, op, ts)
		results[i] = res
		logRecs = append(logRecs, recs...)
		if res.Err != nil {
			ts-- // nothing happened at this timestamp
		}
	}
	if db.wal != nil && len(logRecs) > 0 {
		if err := db.wal.Append(logRecs); err != nil {
			// Durability failure: surface on every op that logged.
			for i := range results {
				if results[i].Err == nil {
					results[i].Err = err
				}
			}
		}
	}
	db.publish(ts)
	return results, ts, logRecs
}

// applyOne executes one mutation at timestamp ts and returns physical WAL
// records describing what happened.
func applyOne(t *Table, op WriteOp, ts uint64) (OpResult, []WALRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch op.Kind {
	case WInsert:
		if err := checkUnique(t, op.Row, ts-1, 0, false); err != nil {
			return OpResult{Err: err}, nil
		}
		rid := t.insertLocked(op.Row.Clone(), ts)
		return OpResult{RowsAffected: 1},
			[]WALRecord{{TS: ts, Kind: WInsert, Table: t.name, RID: rid, Row: op.Row}}
	case WUpdate:
		targets := resolveTargets(t, op.Pred, ts-1)
		var recs []WALRecord
		for _, rid := range targets {
			oldRow, _ := t.visibleLocked(rid, ts-1)
			newRow := oldRow.Clone()
			for _, set := range op.Set {
				newRow[set.Col] = set.Val.Eval(oldRow, nil)
			}
			if err := checkUnique(t, newRow, ts-1, rid, true); err != nil {
				return OpResult{RowsAffected: len(recs), Err: err}, recs
			}
			t.updateLocked(rid, newRow, ts)
			recs = append(recs, WALRecord{TS: ts, Kind: WUpdate, Table: t.name, RID: rid, Row: newRow})
		}
		return OpResult{RowsAffected: len(targets)}, recs
	case WDelete:
		targets := resolveTargets(t, op.Pred, ts-1)
		var recs []WALRecord
		for _, rid := range targets {
			t.deleteLocked(rid, ts)
			recs = append(recs, WALRecord{TS: ts, Kind: WDelete, Table: t.name, RID: rid})
		}
		return OpResult{RowsAffected: len(targets)}, recs
	default:
		return OpResult{Err: fmt.Errorf("storage: unknown write kind %d", op.Kind)}, nil
	}
}

// GCAll truncates version history older than the current snapshot minus
// keepGenerations commit timestamps. Snapshots pinned by in-flight read
// generations cap the horizon: their versions survive regardless.
func (db *Database) GCAll(keepGenerations uint64) {
	horizon, ok := db.gcHorizon(keepGenerations)
	if !ok {
		return
	}
	for _, t := range db.Tables() {
		t.GC(horizon)
	}
}
