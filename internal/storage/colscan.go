package storage

import (
	"math"
	"math/bits"
	"slices"
	"strings"

	"shareddb/internal/expr"
	"shareddb/internal/par"
	"shareddb/internal/queryset"
	"shareddb/internal/types"
)

// SharedScanColumnar is the ClockScan cycle over the columnar mirror
// (colstore.go): the same predicate classification as buildPredIndex, but
// evaluated column-at-a-time over typed vectors in fixed-size chunks.
// Equality probes hash a whole column chunk against the per-value query
// lists, range predicates compare typed vector slices without boxing, and
// residual expressions run only on rows that survived their indexed
// conjunct. Per-query selection bitmaps are intersected into the same
// borrowed query-set emission path as the row scan: identical rows (same
// objects), identical RowID order, identical sorted query-id sets, so
// downstream operators cannot tell the two paths apart.
//
// Like SharedScanPooled, bufs == nil is the unpooled contract (emitted sets
// stay valid indefinitely); with caller-owned bufs the sets are borrowed
// until the next cycle. The chunk loop is partitioned across workers on
// chunk boundaries — contiguous and ordered, so partition-order replay is
// RowID order, exactly like the row path's partitioned scan.

// colChunkRows is the chunk size of the columnar scan: per-query selection
// bitmaps cover one chunk at a time so they stay L1-resident. Must be a
// multiple of 64 (chunks are word-aligned into the live bitmap). A var so
// tests can force many-chunk coverage on small fixtures.
var colChunkRows = 1024

// FNV-1a, matching types.Value.Hash bit for bit (the typed vector loops
// hash payloads without materializing a Value).
const (
	colFNVOffset64 = 14695981039346656037
	colFNVPrime64  = 1099511628211
)

// colHashNull is types.Null.Hash().
var colHashNull = types.Null.Hash()

// colHash64 hashes the 8 little-endian bytes of u (the Value.Hash image of
// INT/BOOL/TIME payloads and of integral or non-finite FLOAT bit patterns).
func colHash64(u uint64) uint64 {
	h := uint64(colFNVOffset64)
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(u >> (8 * i)))
		h *= colFNVPrime64
	}
	return h
}

// colHashF64 hashes a float64 exactly like Value.Hash: integral finite
// floats hash as their int64 image (coerced-equality consistency with INT),
// everything else by bit pattern.
func colHashF64(f float64) uint64 {
	if f == math.Trunc(f) && !math.IsInf(f, 0) {
		return colHash64(uint64(int64(f)))
	}
	return colHash64(math.Float64bits(f))
}

// colHashStr hashes string bytes like Value.Hash.
func colHashStr(s string) uint64 {
	h := uint64(colFNVOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= colFNVPrime64
	}
	return h
}

// colNumericKind mirrors types' numeric-coercion family.
func colNumericKind(k types.Kind) bool {
	return k == types.KindInt || k == types.KindFloat || k == types.KindBool || k == types.KindTime
}

// cmpF64 is the three-way float compare Value.Compare uses. Note the NaN
// semantics: NaN is neither < nor > anything, so it compares "equal" to
// every number — the columnar path must reproduce that, not use ==.
func cmpF64(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// colBound is one precompiled range-bound check against a typed vector.
// The mode is derived per scan from the bound constant's kind and the
// column's representation; incomparable kinds collapse to pass/fail for
// the whole column (Value.Compare's kind-tag total order).
type colBound struct {
	mode uint8
	incl bool
	i    int64
	f    float64
	s    string
}

const (
	cbNone uint8 = iota // unbounded or always satisfied
	cbFail              // never satisfied
	cbI64               // compare against i (int64 payloads)
	cbF64               // compare against f (coerced float compare)
	cbStr               // compare against s (string payloads)
)

// colEqProbe is one equality-indexed client. Probes are stored in a flat
// arena and chained per hash bucket via next (1-based; 0 terminates), so
// steady-state index rebuilds allocate nothing.
type colEqProbe struct {
	val      types.Value
	residual expr.Expr
	ci       int32
	next     int32
}

// colEqCol is the per-column equality probe index: value hash → first
// probe (1-based into colIndex.eqProbes).
type colEqCol struct {
	col   int
	heads map[uint64]int32
}

// colRangeProbe is one range-indexed client with its compiled bounds.
// normalize folds the bounds into the closed sentinel forms the stride
// kernels consume; fail marks a probe no row can satisfy.
type colRangeProbe struct {
	col      int
	rng      expr.Range
	residual expr.Expr
	ci       int32
	lo, hi   colBound
	fail     bool
}

// normalize rewrites compiled bounds for the word kernels. NaN float bounds
// collapse first: cmpF64 ranks NaN neither below nor above anything, so
// every row compares "equal" — the bound passes everything when inclusive
// and nothing when exclusive. Int columns then close exclusive int bounds
// by stepping one (saturating at the extremes → fail) and turn unbounded
// sides into the int extremes; float columns turn unbounded sides into
// inclusive ±Inf, which passes every row — including NaN rows, which
// compare "equal" to any bound and so pass inclusive ones.
func (p *colRangeProbe) normalize(c *colVec) {
	p.fail = false
	for _, b := range [2]*colBound{&p.lo, &p.hi} {
		if b.mode == cbF64 && math.IsNaN(b.f) {
			if b.incl {
				b.mode = cbNone
			} else {
				b.mode = cbFail
			}
		}
	}
	switch c.rep {
	case repI64:
		if p.lo.mode == cbNone {
			p.lo = colBound{mode: cbI64, i: math.MinInt64, incl: true}
		}
		if p.hi.mode == cbNone {
			p.hi = colBound{mode: cbI64, i: math.MaxInt64, incl: true}
		}
		if p.lo.mode == cbI64 && !p.lo.incl {
			if p.lo.i == math.MaxInt64 {
				p.fail = true
			} else {
				p.lo.i++
				p.lo.incl = true
			}
		}
		if p.hi.mode == cbI64 && !p.hi.incl {
			if p.hi.i == math.MinInt64 {
				p.fail = true
			} else {
				p.hi.i--
				p.hi.incl = true
			}
		}
	case repF64:
		if p.lo.mode == cbNone {
			p.lo = colBound{mode: cbF64, f: math.Inf(-1), incl: true}
		}
		if p.hi.mode == cbNone {
			p.hi = colBound{mode: cbF64, f: math.Inf(1), incl: true}
		}
	}
	if p.lo.mode == cbFail || p.hi.mode == cbFail {
		p.fail = true
	}
}

// colRestProbe is one unindexable client (evaluated per surviving row),
// with a vectorized fast path for single constant-LIKE predicates — the
// dominant rest-class shape in the TPC-W search statements.
type colRestProbe struct {
	pred       expr.Expr
	ci         int32
	likeOK     bool
	likeCol    int
	likeShape  expr.LikeShape
	likeNeedle string
	likeNeg    bool
}

// colClientOrd pins the qid order of the bitmap slots.
type colClientOrd struct {
	id  queryset.QueryID
	idx int32
}

// colIndex is the per-cycle columnar query index. All slices and maps are
// reused across cycles (the flat probe arena plus cleared bucket maps), so
// a steady-state index rebuild allocates nothing.
type colIndex struct {
	ids      []queryset.QueryID // bitmap slot → query id, ascending
	ord      []colClientOrd
	eqCols   []colEqCol
	eqProbes []colEqProbe
	rngs     []colRangeProbe
	rest     []colRestProbe
}

// build classifies every client exactly like buildPredIndex: the first
// equality conjunct wins, else the first range conjunct, else the whole
// predicate is a rest probe; the remaining conjuncts form the residual.
// Clients are slotted in ascending query-id order so the per-row gather
// emits sorted id sets without a sort.
func (ix *colIndex) build(clients []ScanClient) {
	ix.ord = ix.ord[:0]
	for i, c := range clients {
		ix.ord = append(ix.ord, colClientOrd{id: c.ID, idx: int32(i)})
	}
	slices.SortStableFunc(ix.ord, func(a, b colClientOrd) int {
		switch {
		case a.id < b.id:
			return -1
		case a.id > b.id:
			return 1
		default:
			return 0
		}
	})
	ix.ids = ix.ids[:0]
	for i := range ix.eqCols {
		clear(ix.eqCols[i].heads)
	}
	ix.eqCols = ix.eqCols[:0]
	ix.eqProbes = ix.eqProbes[:0]
	ix.rngs = ix.rngs[:0]
	ix.rest = ix.rest[:0]

	for ci, o := range ix.ord {
		c := clients[o.idx]
		ix.ids = append(ix.ids, c.ID)
		conjs := expr.Conjuncts(c.Pred)
		eqAt, rngAt := -1, -1
		for i, cj := range conjs {
			if _, _, ok := expr.EqualityMatch(cj); ok {
				eqAt = i
				break
			}
			if rngAt < 0 {
				if _, ok := expr.RangeMatch(cj); ok {
					rngAt = i
				}
			}
		}
		switch {
		case eqAt >= 0:
			col, val, _ := expr.EqualityMatch(conjs[eqAt])
			residual := expr.AndOf(removeAt(conjs, eqAt))
			ec := ix.eqCol(col)
			h := val.Hash()
			ix.eqProbes = append(ix.eqProbes, colEqProbe{val: val, residual: residual, ci: int32(ci), next: ec.heads[h]})
			ec.heads[h] = int32(len(ix.eqProbes)) // 1-based
		case rngAt >= 0:
			rng, _ := expr.RangeMatch(conjs[rngAt])
			residual := expr.AndOf(removeAt(conjs, rngAt))
			ix.rngs = append(ix.rngs, colRangeProbe{col: rng.Col, rng: rng, residual: residual, ci: int32(ci)})
		default:
			p := colRestProbe{pred: c.Pred, ci: int32(ci)}
			if c.Pred != nil {
				if col, shape, needle, neg, ok := expr.PlainLike(c.Pred); ok {
					p.likeOK, p.likeCol, p.likeShape, p.likeNeedle, p.likeNeg = true, col, shape, needle, neg
				}
			}
			ix.rest = append(ix.rest, p)
		}
	}
}

// eqCol finds or creates the equality index for col, reusing bucket maps
// from previous cycles.
func (ix *colIndex) eqCol(col int) *colEqCol {
	for i := range ix.eqCols {
		if ix.eqCols[i].col == col {
			return &ix.eqCols[i]
		}
	}
	if len(ix.eqCols) < cap(ix.eqCols) {
		ix.eqCols = ix.eqCols[:len(ix.eqCols)+1]
		ec := &ix.eqCols[len(ix.eqCols)-1]
		ec.col = col
		if ec.heads == nil {
			ec.heads = map[uint64]int32{}
		}
		return ec
	}
	ix.eqCols = append(ix.eqCols, colEqCol{col: col, heads: map[uint64]int32{}})
	return &ix.eqCols[len(ix.eqCols)-1]
}

// prepare compiles the range bounds against the mirror's current column
// representations. Caller holds the mirror lock (shared suffices: reps only
// change under the exclusive sync).
func (ix *colIndex) prepare(m *colMirror) {
	for i := range ix.rngs {
		p := &ix.rngs[i]
		c := &m.cols[p.col]
		p.lo = compileBound(c, p.rng.Lo, p.rng.LoIncl, false)
		p.hi = compileBound(c, p.rng.Hi, p.rng.HiIncl, true)
		p.normalize(c)
	}
}

// compileBound turns one side of a Range into a typed check against a
// column vector. A NULL bound is unbounded (Range.Contains skips it). For a
// bound whose kind is incomparable with the column's uniform kind the
// three-way compare degenerates to the constant kind-tag order, making the
// check pass or fail for every non-NULL row at once.
func compileBound(c *colVec, b types.Value, incl, isHi bool) colBound {
	if b.IsNull() || c.rep == repGeneric {
		return colBound{mode: cbNone}
	}
	switch c.rep {
	case repI64:
		if colNumericKind(b.K) {
			if b.K == types.KindFloat {
				return colBound{mode: cbF64, f: b.Float, incl: incl}
			}
			return colBound{mode: cbI64, i: b.Int, incl: incl}
		}
	case repF64:
		if colNumericKind(b.K) {
			return colBound{mode: cbF64, f: b.AsFloat(), incl: incl}
		}
	case repStr:
		if b.K == types.KindString {
			return colBound{mode: cbStr, s: b.Str, incl: incl}
		}
	}
	// Incomparable kinds: Value.Compare orders by kind tag.
	d := cmpKindTag(c.kind, b.K)
	if isHi {
		if d > 0 {
			return colBound{mode: cbFail}
		}
		return colBound{mode: cbNone}
	}
	if d < 0 {
		return colBound{mode: cbFail}
	}
	return colBound{mode: cbNone}
}

func cmpKindTag(a, b types.Kind) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// colEqMatch verifies a hash-bucket candidate: the typed-coerced equality
// Value.Equal would compute, without boxing the row value.
func colEqMatch(c *colVec, row types.Row, col, pos int, val types.Value) bool {
	if c.rep == repGeneric {
		return val.Equal(row[col])
	}
	valid := c.valid[pos>>6]&(1<<(pos&63)) != 0
	if val.IsNull() {
		return !valid
	}
	if !valid {
		return false
	}
	switch c.rep {
	case repI64:
		if !colNumericKind(val.K) {
			return false
		}
		if val.K == types.KindFloat {
			return cmpF64(float64(c.i64[pos]), val.Float) == 0
		}
		return c.i64[pos] == val.Int
	case repF64:
		if !colNumericKind(val.K) {
			return false
		}
		return cmpF64(c.f64[pos], val.AsFloat()) == 0
	case repStr:
		return val.K == types.KindString && c.str[pos] == val.Str
	}
	return false
}

// colBitmaps is one partition's per-chunk selection state: one bitmap per
// client (slot order = ascending qid), sized to the chunk word count.
type colBitmaps struct {
	per [][]uint64
}

func (b *colBitmaps) ensure(nclients, words int) {
	for len(b.per) < nclients {
		b.per = append(b.per, nil)
	}
	for ci := 0; ci < nclients; ci++ {
		if len(b.per[ci]) < words {
			b.per[ci] = make([]uint64, colChunkRows/64)
		}
		clear(b.per[ci][:words])
	}
}

// colPartScratch is one partition's reusable buffers in a columnar scan
// (the analog of partScratch).
type colPartScratch struct {
	hits  []scanHit
	arena queryset.Arena
	ids   []queryset.QueryID
	bits  colBitmaps
	act   []int32    // gather: clients with any match in the current word
	hash  [64]uint64 // equality probing: per-lane hash images of one word
}

// ColScanBuffers is the reusable per-cycle state of a pooled columnar scan:
// the query index (flat probe arenas, cleared bucket maps) and per-partition
// bitmaps, hit buffers and query-id arenas. One instance is owned by each
// scan operator node and reused across generations, so the steady-state
// chunk loop allocates nothing.
type ColScanBuffers struct {
	idx   colIndex
	parts []colPartScratch
}

// SharedScanColumnar executes one columnar ClockScan cycle at snapshot ts.
// See the file comment for the contract; emission is bit-identical to
// sharedScan at any worker count.
func (t *Table) SharedScanColumnar(ts uint64, clients []ScanClient, workers int, bufs *ColScanBuffers, emit func(rid RowID, row types.Row, qs queryset.Set)) {
	if len(clients) == 0 {
		return
	}
	m := t.columnarMirror()
	m.pin(t, ts) // returns holding m.mu shared
	pooled := bufs != nil
	if !pooled {
		bufs = &ColScanBuffers{}
	}
	ix := &bufs.idx
	ix.build(clients)
	ix.prepare(m)

	n := len(m.rids)
	if n == 0 {
		m.mu.RUnlock()
		return
	}
	if workers > 1 && n < minParallelScanRows {
		workers = 1 // same tiny-table clamp as the row path
	}
	nchunks := (n + colChunkRows - 1) / colChunkRows

	if workers <= 1 {
		for len(bufs.parts) < 1 {
			bufs.parts = append(bufs.parts, colPartScratch{})
		}
		ps := &bufs.parts[0]
		for ch := 0; ch < nchunks; ch++ {
			base := ch * colChunkRows
			end := min(base+colChunkRows, n)
			ix.runChunk(m, base, end, ps, func(pos int, ids []queryset.QueryID) {
				if pooled {
					// Borrowed set, valid during emit only — ids are already
					// sorted (gather walks bitmap slots in qid order).
					emit(m.rids[pos], m.rows[pos], queryset.FromSorted(ids))
				} else {
					emit(m.rids[pos], m.rows[pos], queryset.Of(ids...))
				}
			})
		}
		m.mu.RUnlock()
		return
	}

	bounds := par.Split(nchunks, workers)
	nparts := len(bounds) - 1
	for len(bufs.parts) < nparts {
		bufs.parts = append(bufs.parts, colPartScratch{})
	}
	par.Do(workers, nparts, func(w int) {
		ps := &bufs.parts[w]
		ps.arena.Reset()
		ps.hits = ps.hits[:0]
		sink := func(pos int, ids []queryset.QueryID) {
			ps.hits = append(ps.hits, scanHit{rid: m.rids[pos], row: m.rows[pos], qs: ps.arena.Append(queryset.FromSorted(ids))})
		}
		for ch := bounds[w]; ch < bounds[w+1]; ch++ {
			base := ch * colChunkRows
			end := min(base+colChunkRows, n)
			ix.runChunk(m, base, end, ps, sink)
		}
	})
	m.mu.RUnlock()
	// Partitions are contiguous ascending chunk ranges, so partition-order
	// replay is position order = RowID order.
	for w := 0; w < nparts; w++ {
		for _, h := range bufs.parts[w].hits {
			emit(h.rid, h.row, h.qs)
		}
		if pooled {
			clear(bufs.parts[w].hits)
			bufs.parts[w].hits = bufs.parts[w].hits[:0]
		}
	}
}

// runChunk evaluates every probe class over rows [base, end) and hands each
// selected position with its sorted borrowed query-id list to sink. base is
// a multiple of colChunkRows (word-aligned into the bitmaps).
func (ix *colIndex) runChunk(m *colMirror, base, end int, ps *colPartScratch, sink func(pos int, ids []queryset.QueryID)) {
	nb := end - base
	words := (nb + 63) >> 6
	baseW := base >> 6
	liveW := m.live[baseW : baseW+words]
	nc := len(ix.ids)
	ps.bits.ensure(nc, words)
	per := ps.bits.per

	// Equality probes: hash the column chunk a word at a time (the
	// representation switch runs once per word, not per row), then probe the
	// per-value lists for the selected lanes.
	for eci := range ix.eqCols {
		ec := &ix.eqCols[eci]
		c := &m.cols[ec.col]
		for w := 0; w < words; w++ {
			bw := liveW[w]
			if bw == 0 {
				continue
			}
			pos0 := base + w<<6
			var vw uint64
			if c.rep != repGeneric {
				vw = c.valid[baseW+w]
			}
			eqHashWord(c, m.rows, ec.col, pos0, bw, vw, &ps.hash)
			for t := bw; t != 0; {
				tz := bits.TrailingZeros64(t)
				t &= t - 1
				pos := pos0 + tz
				for pi := ec.heads[ps.hash[tz]]; pi != 0; {
					p := &ix.eqProbes[pi-1]
					pi = p.next
					if colEqMatch(c, m.rows[pos], ec.col, pos, p.val) &&
						(p.residual == nil || expr.TruthyEval(p.residual, m.rows[pos], nil)) {
						per[p.ci][w] |= 1 << uint(tz)
					}
				}
			}
		}
	}

	// Range probes: typed word kernels over the vector lanes. The kernels
	// evaluate whole 64-lane words branch-free and the live∧valid mask is
	// applied afterwards; string columns stay per-selected-lane (compares
	// are too expensive to burn on dead lanes), generic columns fall back
	// to the boxed per-row check.
	for ri := range ix.rngs {
		p := &ix.rngs[ri]
		if p.fail {
			continue
		}
		c := &m.cols[p.col]
		out := per[p.ci]
		switch c.rep {
		case repGeneric:
			for w := 0; w < words; w++ {
				bw := liveW[w]
				for bw != 0 {
					tz := bits.TrailingZeros64(bw)
					bw &= bw - 1
					pos := base + w<<6 + tz
					row := m.rows[pos]
					if p.rng.Contains(row[p.col]) &&
						(p.residual == nil || expr.TruthyEval(p.residual, row, nil)) {
						out[w] |= 1 << tz
					}
				}
			}
		case repI64:
			vals := c.i64[base:end]
			allInt := p.lo.mode == cbI64 && p.hi.mode == cbI64
			// The int extremes are normalization sentinels for "unbounded";
			// a genuine bound at the extreme passes every lane anyway, so
			// the one-sided kernels are exact either way.
			loUnb := p.lo.mode == cbI64 && p.lo.i == math.MinInt64
			hiUnb := p.hi.mode == cbI64 && p.hi.i == math.MaxInt64
			for w := 0; w < words; w++ {
				// NULL rows never satisfy a range (Contains rejects NULL first).
				bw := liveW[w] & c.valid[baseW+w]
				if bw == 0 {
					continue
				}
				rb := w << 6
				lanes := vals[rb:min(rb+64, nb)]
				var mask uint64
				switch {
				case loUnb && hiUnb:
					mask = ^uint64(0)
				case allInt && hiUnb:
					mask = rangeWordI64Lo(lanes, p.lo.i)
				case allInt && loUnb:
					mask = rangeWordI64Hi(lanes, p.hi.i)
				case allInt:
					mask = rangeWordI64(lanes, p.lo.i, p.hi.i)
				default:
					mask = rangeWordI64Mixed(lanes, p.lo, p.hi)
				}
				mask &= bw
				if mask != 0 && p.residual != nil {
					mask = residualWord(mask, p.residual, m.rows, base+rb)
				}
				out[w] |= mask
			}
		case repF64:
			vals := c.f64[base:end]
			loIncl, hiIncl := b2u(p.lo.incl), b2u(p.hi.incl)
			// Inclusive ±Inf is the "unbounded" sentinel: it passes every
			// lane, NaN included (NaN compares "equal" to any bound).
			loUnb := math.IsInf(p.lo.f, -1) && p.lo.incl
			hiUnb := math.IsInf(p.hi.f, 1) && p.hi.incl
			for w := 0; w < words; w++ {
				bw := liveW[w] & c.valid[baseW+w]
				if bw == 0 {
					continue
				}
				rb := w << 6
				lanes := vals[rb:min(rb+64, nb)]
				var mask uint64
				switch {
				case loUnb && hiUnb:
					mask = ^uint64(0)
				case hiUnb:
					mask = rangeWordF64Lo(lanes, p.lo.f, loIncl)
				case loUnb:
					mask = rangeWordF64Hi(lanes, p.hi.f, hiIncl)
				default:
					mask = rangeWordF64(lanes, p.lo.f, p.hi.f, loIncl, hiIncl)
				}
				mask &= bw
				if mask != 0 && p.residual != nil {
					mask = residualWord(mask, p.residual, m.rows, base+rb)
				}
				out[w] |= mask
			}
		case repStr:
			strs := c.str
			loS, hiS := p.lo.mode == cbStr, p.hi.mode == cbStr
			for w := 0; w < words; w++ {
				bw := liveW[w] & c.valid[baseW+w]
				for bw != 0 {
					tz := bits.TrailingZeros64(bw)
					bw &= bw - 1
					pos := base + w<<6 + tz
					x := strs[pos]
					ok := !loS || x > p.lo.s || (x == p.lo.s && p.lo.incl)
					if ok && hiS {
						ok = x < p.hi.s || (x == p.hi.s && p.hi.incl)
					}
					if ok && (p.residual == nil || expr.TruthyEval(p.residual, m.rows[pos], nil)) {
						out[w] |= 1 << tz
					}
				}
			}
		}
	}

	// Rest probes: select-all copies the live words; single constant-LIKE
	// predicates over a string vector run the hoisted-shape word kernel on
	// dense words (and a per-lane loop on sparse ones); everything else
	// evaluates per row.
	for ri := range ix.rest {
		p := &ix.rest[ri]
		out := per[p.ci]
		if p.pred == nil {
			copy(out[:words], liveW)
			continue
		}
		if p.likeOK {
			if c := &m.cols[p.likeCol]; c.rep == repStr {
				strs := c.str[base:end]
				for w := 0; w < words; w++ {
					// A NULL lhs makes LIKE evaluate to NULL → false, negated
					// or not, so invalid positions never match.
					bw := liveW[w] & c.valid[baseW+w]
					if bw == 0 {
						continue
					}
					rb := w << 6
					lanes := strs[rb:min(rb+64, nb)]
					if bits.OnesCount64(bw)*2 >= len(lanes) {
						mask := likeWord(lanes, p.likeShape, p.likeNeedle)
						if p.likeNeg {
							mask = ^mask
						}
						out[w] |= mask & bw
						continue
					}
					for t := bw; t != 0; {
						tz := bits.TrailingZeros64(t)
						t &= t - 1
						if likeLane(lanes[tz], p.likeShape, p.likeNeedle) != p.likeNeg {
							out[w] |= 1 << uint(tz)
						}
					}
				}
				continue
			}
		}
		for w := 0; w < words; w++ {
			bw := liveW[w]
			for bw != 0 {
				tz := bits.TrailingZeros64(bw)
				bw &= bw - 1
				pos := base + w<<6 + tz
				if expr.TruthyEval(p.pred, m.rows[pos], nil) {
					out[w] |= 1 << tz
				}
			}
		}
	}

	// Gather: walk selected positions in order; per position, collect the
	// interested clients in slot (= ascending qid) order. The per-word
	// active-client list keeps the per-position loop proportional to the
	// clients that matched anything in the word, not all clients.
	act := ps.act[:0]
	for w := 0; w < words; w++ {
		var anyw uint64
		act = act[:0]
		for ci := 0; ci < nc; ci++ {
			if pw := per[ci][w]; pw != 0 {
				anyw |= pw
				act = append(act, int32(ci))
			}
		}
		for anyw != 0 {
			tz := bits.TrailingZeros64(anyw)
			anyw &= anyw - 1
			mask := uint64(1) << tz
			ids := ps.ids[:0]
			for _, ci := range act {
				if per[ci][w]&mask != 0 {
					ids = append(ids, ix.ids[ci])
				}
			}
			ps.ids = ids
			sink(base+w<<6+tz, ids)
		}
	}
	ps.act = act
}

// eqHashWord fills hs with the Value.Hash image of every selected lane of
// one bitmap word, with the representation switch hoisted out of the row
// loop. pos0 is the chunk-global position of lane 0; vw is the column's
// validity word (unused for generic columns).
func eqHashWord(c *colVec, rows []types.Row, col, pos0 int, bw, vw uint64, hs *[64]uint64) {
	switch c.rep {
	case repI64:
		for t := bw; t != 0; {
			tz := bits.TrailingZeros64(t)
			t &= t - 1
			if vw&(1<<uint(tz)) != 0 {
				hs[tz] = colHash64(uint64(c.i64[pos0+tz]))
			} else {
				hs[tz] = colHashNull
			}
		}
	case repF64:
		for t := bw; t != 0; {
			tz := bits.TrailingZeros64(t)
			t &= t - 1
			if vw&(1<<uint(tz)) != 0 {
				hs[tz] = colHashF64(c.f64[pos0+tz])
			} else {
				hs[tz] = colHashNull
			}
		}
	case repStr:
		for t := bw; t != 0; {
			tz := bits.TrailingZeros64(t)
			t &= t - 1
			if vw&(1<<uint(tz)) != 0 {
				hs[tz] = colHashStr(c.str[pos0+tz])
			} else {
				hs[tz] = colHashNull
			}
		}
	default:
		for t := bw; t != 0; {
			tz := bits.TrailingZeros64(t)
			t &= t - 1
			hs[tz] = rows[pos0+tz][col].Hash()
		}
	}
}

// likeLane is the single-lane fallback of likeWord for sparse words.
func likeLane(s string, shape expr.LikeShape, needle string) bool {
	switch shape {
	case expr.LikeExact:
		return s == needle
	case expr.LikePrefix:
		return strings.HasPrefix(s, needle)
	case expr.LikeSuffix:
		return strings.HasSuffix(s, needle)
	case expr.LikeContains:
		return strings.Contains(s, needle)
	default:
		return expr.MatchLike(needle, s)
	}
}
