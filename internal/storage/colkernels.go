package storage

import (
	"math/bits"
	"strings"

	"shareddb/internal/expr"
	"shareddb/internal/types"
)

// Stride kernels: the 64-row word-at-a-time inner loops of the columnar
// scan. Each kernel evaluates one compiled predicate over the (up to) 64
// lanes backing one selection-bitmap word and returns the lane mask — no
// per-row mode switches, no bit-extraction in the hot loop, just typed
// compares the compiler turns into flag materialization (SETcc/CSEL). The
// caller masks the result with the live∧valid word, so kernels are free to
// evaluate dead lanes.
//
// Bound semantics are pinned to Value.Compare via cmpF64: NaN compares
// "equal" to every number (neither < nor >), so the float kernels derive
// the lane bit as gt | (incl &^ (lt|gt)) instead of using ==, and bound
// normalization (colRangeProbe.normalize) has already folded NaN bounds and
// unbounded sides into closed sentinel forms.

// b2u materializes a comparison as a 0/1 lane bit.
func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// rangeWordI64 evaluates a closed int interval [lo, hi] over the lanes.
func rangeWordI64(lanes []int64, lo, hi int64) uint64 {
	var m uint64
	for k, x := range lanes {
		m |= b2u(x >= lo && x <= hi) << uint(k)
	}
	return m
}

// rangeWordI64Lo / rangeWordI64Hi are the one-sided int kernels (the other
// side normalized to an int extreme, which passes every lane).
func rangeWordI64Lo(lanes []int64, lo int64) uint64 {
	var m uint64
	for k, x := range lanes {
		m |= b2u(x >= lo) << uint(k)
	}
	return m
}

func rangeWordI64Hi(lanes []int64, hi int64) uint64 {
	var m uint64
	for k, x := range lanes {
		m |= b2u(x <= hi) << uint(k)
	}
	return m
}

// rangeLaneF64 is one float lane under cmpF64 semantics: d>0 passes a lower
// bound, d<0 an upper bound, d==0 (which includes NaN on either side)
// passes iff the bound is inclusive.
func rangeLaneF64(x, lo, hi float64, loIncl, hiIncl uint64) uint64 {
	ltLo, gtLo := b2u(x < lo), b2u(x > lo)
	ok := gtLo | (loIncl &^ (ltLo | gtLo))
	ltHi, gtHi := b2u(x < hi), b2u(x > hi)
	return ok & (ltHi | (hiIncl &^ (ltHi | gtHi)))
}

// rangeWordF64 evaluates float bounds over the lanes, NaN-exact.
func rangeWordF64(lanes []float64, lo, hi float64, loIncl, hiIncl uint64) uint64 {
	var m uint64
	for k, x := range lanes {
		m |= rangeLaneF64(x, lo, hi, loIncl, hiIncl) << uint(k)
	}
	return m
}

// rangeWordF64Lo / rangeWordF64Hi are the one-sided float kernels, still
// NaN-exact (a NaN lane is "equal" to the bound and passes iff inclusive).
func rangeWordF64Lo(lanes []float64, lo float64, loIncl uint64) uint64 {
	var m uint64
	for k, x := range lanes {
		lt, gt := b2u(x < lo), b2u(x > lo)
		m |= (gt | (loIncl &^ (lt | gt))) << uint(k)
	}
	return m
}

func rangeWordF64Hi(lanes []float64, hi float64, hiIncl uint64) uint64 {
	var m uint64
	for k, x := range lanes {
		lt, gt := b2u(x < hi), b2u(x > hi)
		m |= (lt | (hiIncl &^ (lt | gt))) << uint(k)
	}
	return m
}

// rangeWordI64Mixed handles an int column with at least one float bound:
// the float side compares float64(x) (Value.Compare's coercion), the int
// side is already closed by normalization. The per-bound branches are
// loop-invariant and predicted.
func rangeWordI64Mixed(lanes []int64, lo, hi colBound) uint64 {
	loIsF, hiIsF := lo.mode == cbF64, hi.mode == cbF64
	loIncl, hiIncl := b2u(lo.incl), b2u(hi.incl)
	var m uint64
	for k, x := range lanes {
		var ok uint64
		if loIsF {
			xf := float64(x)
			lt, gt := b2u(xf < lo.f), b2u(xf > lo.f)
			ok = gt | (loIncl &^ (lt | gt))
		} else {
			ok = b2u(x >= lo.i)
		}
		if hiIsF {
			xf := float64(x)
			lt, gt := b2u(xf < hi.f), b2u(xf > hi.f)
			ok &= lt | (hiIncl &^ (lt | gt))
		} else {
			ok &= b2u(x <= hi.i)
		}
		m |= ok << uint(k)
	}
	return m
}

// likeWord evaluates one plain-LIKE shape over the lanes with the shape
// switch hoisted out of the row loop. Negation is the caller's ^m & bw.
func likeWord(lanes []string, shape expr.LikeShape, needle string) uint64 {
	var m uint64
	switch shape {
	case expr.LikeExact:
		for k, s := range lanes {
			m |= b2u(s == needle) << uint(k)
		}
	case expr.LikePrefix:
		for k, s := range lanes {
			m |= b2u(strings.HasPrefix(s, needle)) << uint(k)
		}
	case expr.LikeSuffix:
		for k, s := range lanes {
			m |= b2u(strings.HasSuffix(s, needle)) << uint(k)
		}
	case expr.LikeContains:
		for k, s := range lanes {
			m |= b2u(strings.Contains(s, needle)) << uint(k)
		}
	default:
		for k, s := range lanes {
			m |= b2u(expr.MatchLike(needle, s)) << uint(k)
		}
	}
	return m
}

// residualWord re-checks the surviving lanes of mask against a residual
// expression, clearing lanes it rejects. wordBase is the chunk-global row
// position of lane 0.
func residualWord(mask uint64, res expr.Expr, rows []types.Row, wordBase int) uint64 {
	for t := mask; t != 0; {
		tz := bits.TrailingZeros64(t)
		t &= t - 1
		if !expr.TruthyEval(res, rows[wordBase+tz], nil) {
			mask &^= 1 << uint(tz)
		}
	}
	return mask
}
