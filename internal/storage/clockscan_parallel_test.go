package storage

import (
	"fmt"
	"testing"

	"shareddb/internal/expr"
	"shareddb/internal/queryset"
	"shareddb/internal/types"
)

// emission is one SharedScan callback invocation, captured for exact
// (order-sensitive) comparison between the serial and partitioned scans.
type emission struct {
	rid RowID
	qs  string
}

// forceParallelScan disables the adaptive tiny-table clamp so the parallel
// scan machinery is exercised even on test-sized tables.
func forceParallelScan(t *testing.T) {
	t.Helper()
	old := minParallelScanRows
	minParallelScanRows = 0
	t.Cleanup(func() { minParallelScanRows = old })
}

func collectScan(tab *Table, ts uint64, clients []ScanClient, workers int) []emission {
	var out []emission
	emit := func(rid RowID, _ types.Row, qs queryset.Set) {
		out = append(out, emission{rid: rid, qs: qs.String()})
	}
	if workers == 0 {
		tab.SharedScan(ts, clients, emit)
	} else {
		tab.SharedScanPartitioned(ts, clients, workers, emit)
	}
	return out
}

// The partitioned ClockScan must emit exactly the serial scan's rows, in the
// same RowID order, with the same per-row query sets — the parallelism
// contract of the worker-pool layer.
func TestSharedScanPartitionedMatchesSerialExactly(t *testing.T) {
	forceParallelScan(t)
	db, tab := seedUsers(t, 157) // deliberately not a multiple of any worker count
	ts := db.SnapshotTS()
	clients := []ScanClient{
		{ID: 1, Pred: eqPred(tab, "country", types.NewString("CH"))},
		{ID: 2, Pred: &expr.Cmp{Op: expr.GT, L: colRef(tab, "account"), R: &expr.Const{Val: types.NewInt(400)}}},
		{ID: 3, Pred: nil}, // full table
		{ID: 4, Pred: &expr.And{Kids: []expr.Expr{
			eqPred(tab, "country", types.NewString("DE")),
			&expr.Cmp{Op: expr.LT, L: colRef(tab, "account"), R: &expr.Const{Val: types.NewInt(900)}},
		}}},
	}
	serial := collectScan(tab, ts, clients, 0)
	if len(serial) != 157 { // Q3 subscribes to every row
		t.Fatalf("serial emitted %d rows, want 157", len(serial))
	}
	for _, workers := range []int{1, 2, 3, 4, 8, 157, 200} {
		got := collectScan(tab, ts, clients, workers)
		if len(got) != len(serial) {
			t.Fatalf("workers=%d: emitted %d rows, want %d", workers, len(got), len(serial))
		}
		for i := range got {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: emission %d = %+v, want %+v", workers, i, got[i], serial[i])
			}
		}
	}
}

func TestSharedScanPartitionedEdgeCases(t *testing.T) {
	forceParallelScan(t)
	db, tab := newUserDB(t)
	ts := db.SnapshotTS()
	all := []ScanClient{{ID: 1, Pred: nil}}

	// empty table
	if got := collectScan(tab, ts, all, 4); len(got) != 0 {
		t.Errorf("empty table emitted %v", got)
	}
	// no clients
	tab.SharedScanPartitioned(ts, nil, 4, func(RowID, types.Row, queryset.Set) {
		t.Error("emit called with no clients")
	})

	// fewer rows than workers
	insertUsers(t, db, user(1, "a", "CH", 10), user(2, "b", "DE", 20))
	ts = db.SnapshotTS()
	got := collectScan(tab, ts, all, 16)
	if len(got) != 2 || got[0].rid != 0 || got[1].rid != 1 {
		t.Errorf("tiny table scan = %+v", got)
	}
}

// The partitioned scan must respect MVCC visibility exactly like the serial
// scan: updated and deleted rows resolve to the version visible at the
// pinned snapshot even when newer versions exist.
func TestSharedScanPartitionedVisibility(t *testing.T) {
	forceParallelScan(t)
	db, tab := seedUsers(t, 60)
	tsOld := db.SnapshotTS()
	db.ApplyOps([]WriteOp{
		{Table: "users", Kind: WUpdate, Pred: eqPred(tab, "id", types.NewInt(10)),
			Set: []ColSet{{Col: 2, Val: &expr.Const{Val: types.NewString("ZZ")}}}},
		{Table: "users", Kind: WDelete, Pred: eqPred(tab, "id", types.NewInt(20))},
	})
	tsNew := db.SnapshotTS()

	for _, tc := range []struct {
		ts   uint64
		name string
	}{{tsOld, "old"}, {tsNew, "new"}} {
		clients := []ScanClient{{ID: 1, Pred: nil}}
		serial := collectScan(tab, tc.ts, clients, 0)
		parallel := collectScan(tab, tc.ts, clients, 4)
		if len(serial) != len(parallel) {
			t.Fatalf("%s snapshot: %d serial vs %d parallel rows", tc.name, len(serial), len(parallel))
		}
		for i := range serial {
			if serial[i] != parallel[i] {
				t.Fatalf("%s snapshot: emission %d differs: %+v vs %+v", tc.name, i, serial[i], parallel[i])
			}
		}
	}
}

// BenchmarkSharedScanPartitioned measures the partition-parallel ClockScan
// at several worker counts (the acceptance microbenchmark: ≥1.5× at 4
// workers on a multi-core host; on a single-core host all settings collapse
// to roughly serial throughput).
func BenchmarkSharedScanPartitioned(b *testing.B) {
	db, err := Open(Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	tab, _ := db.CreateTable("users", usersSchema())
	tab.SetPrimaryKey("id")
	var ops []WriteOp
	for i := int64(0); i < 20000; i++ {
		ops = append(ops, WriteOp{Table: "users", Kind: WInsert,
			Row: user(i, fmt.Sprintf("u%d", i), fmt.Sprintf("C%d", i%50), i%1000)})
	}
	db.ApplyOps(ops)
	ts := db.SnapshotTS()
	// A Fig-10-shaped batch: equality clients, range clients, and residual-
	// conjunct clients, so per-row match work (the part that parallelizes)
	// resembles a real generation rather than a single hash probe.
	clients := make([]ScanClient, 256)
	for i := range clients {
		id := queryset.QueryID(i + 1)
		switch i % 4 {
		case 0, 1:
			clients[i] = ScanClient{ID: id,
				Pred: eqPred(tab, "country", types.NewString(fmt.Sprintf("C%d", i%50)))}
		case 2:
			lo := int64(i % 900)
			clients[i] = ScanClient{ID: id, Pred: &expr.And{Kids: []expr.Expr{
				&expr.Cmp{Op: expr.GE, L: colRef(tab, "account"), R: &expr.Const{Val: types.NewInt(lo)}},
				&expr.Cmp{Op: expr.LT, L: colRef(tab, "account"), R: &expr.Const{Val: types.NewInt(lo + 50)}},
			}}}
		default:
			clients[i] = ScanClient{ID: id, Pred: &expr.And{Kids: []expr.Expr{
				eqPred(tab, "country", types.NewString(fmt.Sprintf("C%d", i%50))),
				&expr.Cmp{Op: expr.GT, L: colRef(tab, "account"), R: &expr.Const{Val: types.NewInt(int64(i))}},
			}}}
		}
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tab.SharedScanPartitioned(ts, clients, workers, func(RowID, types.Row, queryset.Set) {})
			}
		})
	}
}
