package storage

import (
	"fmt"
	"math/rand"
	"testing"

	"shareddb/internal/expr"
	"shareddb/internal/queryset"
	"shareddb/internal/types"
)

func seedUsers(t *testing.T, n int) (*Database, *Table) {
	t.Helper()
	db, tab := newUserDB(t)
	countries := []string{"CH", "DE", "US", "FR", "IT"}
	rows := make([]types.Row, n)
	for i := 0; i < n; i++ {
		rows[i] = user(int64(i), fmt.Sprintf("user%03d", i), countries[i%len(countries)], int64(i*7%1000))
	}
	insertUsers(t, db, rows...)
	return db, tab
}

func colRef(t *Table, name string) *expr.ColRef {
	return &expr.ColRef{Idx: t.Schema().MustColIndex(name), Name: name}
}

func TestSharedScanEqualityQueries(t *testing.T) {
	db, tab := seedUsers(t, 100)
	ts := db.SnapshotTS()
	clients := []ScanClient{
		{ID: 1, Pred: eqPred(tab, "country", types.NewString("CH"))},
		{ID: 2, Pred: eqPred(tab, "country", types.NewString("DE"))},
		{ID: 3, Pred: eqPred(tab, "country", types.NewString("CH"))}, // same as Q1
	}
	got := map[queryset.QueryID]int{}
	rowsEmitted := 0
	tab.SharedScan(ts, clients, func(_ RowID, row types.Row, qs queryset.Set) {
		rowsEmitted++
		for _, id := range qs.IDs() {
			got[id]++
		}
		// CH rows must carry both Q1 and Q3 — the sharing property.
		if row[2].AsString() == "CH" && (!qs.Contains(1) || !qs.Contains(3)) {
			t.Errorf("CH row missing shared subscribers: %v", qs)
		}
	})
	if got[1] != 20 || got[2] != 20 || got[3] != 20 {
		t.Errorf("per-query counts = %v", got)
	}
	// 20 CH + 20 DE rows scanned once each — not 40+20.
	if rowsEmitted != 40 {
		t.Errorf("rows emitted = %d, want 40 (shared, not duplicated)", rowsEmitted)
	}
}

func TestSharedScanRangeQueries(t *testing.T) {
	db, tab := seedUsers(t, 100)
	ts := db.SnapshotTS()
	gt := func(col string, v int64) expr.Expr {
		return &expr.Cmp{Op: expr.GT, L: colRef(tab, col), R: &expr.Const{Val: types.NewInt(v)}}
	}
	lt := func(col string, v int64) expr.Expr {
		return &expr.Cmp{Op: expr.LT, L: colRef(tab, col), R: &expr.Const{Val: types.NewInt(v)}}
	}
	clients := []ScanClient{
		{ID: 1, Pred: gt("account", 500)},
		{ID: 2, Pred: &expr.And{Kids: []expr.Expr{gt("account", 100), lt("account", 300)}}},
	}
	counts := map[queryset.QueryID]int{}
	tab.SharedScan(ts, clients, func(_ RowID, row types.Row, qs queryset.Set) {
		for _, id := range qs.IDs() {
			counts[id]++
			acct := row[3].AsInt()
			if id == 1 && acct <= 500 {
				t.Errorf("Q1 got account %d", acct)
			}
			if id == 2 && (acct <= 100 || acct >= 300) {
				t.Errorf("Q2 got account %d", acct)
			}
		}
	})
	if counts[1] == 0 || counts[2] == 0 {
		t.Errorf("counts = %v", counts)
	}
}

func TestSharedScanRestQueries(t *testing.T) {
	db, tab := seedUsers(t, 50)
	ts := db.SnapshotTS()
	// LIKE and OR predicates cannot be predicate-indexed: rest class.
	clients := []ScanClient{
		{ID: 1, Pred: &expr.Like{L: colRef(tab, "name"), Pattern: &expr.Const{Val: types.NewString("user00%")}}},
		{ID: 2, Pred: &expr.Or{Kids: []expr.Expr{
			eqPred(tab, "country", types.NewString("CH")),
			eqPred(tab, "country", types.NewString("DE")),
		}}},
		{ID: 3, Pred: nil}, // full table
	}
	counts := map[queryset.QueryID]int{}
	tab.SharedScan(ts, clients, func(_ RowID, _ types.Row, qs queryset.Set) {
		for _, id := range qs.IDs() {
			counts[id]++
		}
	})
	if counts[1] != 10 {
		t.Errorf("LIKE matched %d, want 10", counts[1])
	}
	if counts[2] != 20 {
		t.Errorf("OR matched %d, want 20", counts[2])
	}
	if counts[3] != 50 {
		t.Errorf("full scan matched %d, want 50", counts[3])
	}
}

func TestSharedScanNoClients(t *testing.T) {
	db, tab := seedUsers(t, 10)
	called := false
	tab.SharedScan(db.SnapshotTS(), nil, func(RowID, types.Row, queryset.Set) { called = true })
	if called {
		t.Error("emit called with no clients")
	}
}

// Property: SharedScan (predicate-indexed) and SharedScanNaive (per-query
// evaluation) produce identical per-query result sets for random workloads.
// This is the correctness core of the ClockScan query-data join.
func TestSharedScanMatchesNaiveProperty(t *testing.T) {
	db, tab := seedUsers(t, 200)
	ts := db.SnapshotTS()
	r := rand.New(rand.NewSource(99))
	countries := []string{"CH", "DE", "US", "FR", "IT", "XX"}

	randPred := func() expr.Expr {
		switch r.Intn(5) {
		case 0:
			return eqPred(tab, "country", types.NewString(countries[r.Intn(len(countries))]))
		case 1:
			return eqPred(tab, "id", types.NewInt(int64(r.Intn(250))))
		case 2:
			return &expr.Cmp{Op: expr.CmpOp(2 + r.Intn(4)), L: colRef(tab, "account"),
				R: &expr.Const{Val: types.NewInt(int64(r.Intn(1000)))}}
		case 3:
			return &expr.And{Kids: []expr.Expr{
				eqPred(tab, "country", types.NewString(countries[r.Intn(len(countries))])),
				&expr.Cmp{Op: expr.GT, L: colRef(tab, "account"), R: &expr.Const{Val: types.NewInt(int64(r.Intn(800)))}},
			}}
		default:
			return &expr.Like{L: colRef(tab, "name"), Pattern: &expr.Const{Val: types.NewString("%" + fmt.Sprint(r.Intn(10)) + "%")}}
		}
	}

	for trial := 0; trial < 30; trial++ {
		nq := 1 + r.Intn(30)
		clients := make([]ScanClient, nq)
		for i := range clients {
			clients[i] = ScanClient{ID: queryset.QueryID(i + 1), Pred: randPred()}
		}
		collect := func(scan func(uint64, []ScanClient, func(RowID, types.Row, queryset.Set))) map[queryset.QueryID]map[RowID]bool {
			out := map[queryset.QueryID]map[RowID]bool{}
			scan(ts, clients, func(rid RowID, _ types.Row, qs queryset.Set) {
				for _, id := range qs.IDs() {
					if out[id] == nil {
						out[id] = map[RowID]bool{}
					}
					out[id][rid] = true
				}
			})
			return out
		}
		indexed := collect(tab.SharedScan)
		naive := collect(tab.SharedScanNaive)
		if len(indexed) != len(naive) {
			t.Fatalf("trial %d: query coverage differs: %d vs %d", trial, len(indexed), len(naive))
		}
		for id, rows := range naive {
			if len(indexed[id]) != len(rows) {
				t.Fatalf("trial %d query %d: %d rows indexed vs %d naive", trial, id, len(indexed[id]), len(rows))
			}
			for rid := range rows {
				if !indexed[id][rid] {
					t.Fatalf("trial %d query %d: rid %d missing from indexed scan", trial, id, rid)
				}
			}
		}
	}
}

func TestSharedProbeEquality(t *testing.T) {
	db, tab := seedUsers(t, 100)
	ts := db.SnapshotTS()
	pk := tab.PrimaryKey()
	clients := []ProbeClient{
		{ID: 1, Key: []types.Value{types.NewInt(5)}},
		{ID: 2, Key: []types.Value{types.NewInt(5)}}, // duplicate key: shared traversal
		{ID: 3, Key: []types.Value{types.NewInt(7)}},
		{ID: 4, Key: []types.Value{types.NewInt(999)}}, // miss
	}
	emitted := 0
	got := map[queryset.QueryID]int64{}
	tab.SharedProbe(ts, pk, clients, func(_ RowID, row types.Row, qs queryset.Set) {
		emitted++
		for _, id := range qs.IDs() {
			got[id] = row[0].AsInt()
		}
	})
	if emitted != 2 {
		t.Errorf("emitted %d rows, want 2 (key 5 shared)", emitted)
	}
	if got[1] != 5 || got[2] != 5 || got[3] != 7 {
		t.Errorf("got = %v", got)
	}
	if _, ok := got[4]; ok {
		t.Error("missing key should produce nothing")
	}
}

func TestSharedProbeRange(t *testing.T) {
	db, tab := seedUsers(t, 100)
	ts := db.SnapshotTS()
	pk := tab.PrimaryKey()
	clients := []ProbeClient{
		{ID: 1, Lo: []types.Value{types.NewInt(10)}, Hi: []types.Value{types.NewInt(14)}, LoIncl: true, HiIncl: true},
	}
	var ids []int64
	tab.SharedProbe(ts, pk, clients, func(_ RowID, row types.Row, _ queryset.Set) {
		ids = append(ids, row[0].AsInt())
	})
	if len(ids) != 5 {
		t.Errorf("range probe found %v", ids)
	}
}

func TestSharedProbeResidual(t *testing.T) {
	db, tab := seedUsers(t, 100)
	ts := db.SnapshotTS()
	ix := tab.IndexByName("users_country")
	gt500 := &expr.Cmp{Op: expr.GT, L: colRef(tab, "account"), R: &expr.Const{Val: types.NewInt(500)}}
	clients := []ProbeClient{
		{ID: 1, Key: []types.Value{types.NewString("CH")}, Residual: gt500},
		{ID: 2, Key: []types.Value{types.NewString("CH")}},
	}
	counts := map[queryset.QueryID]int{}
	tab.SharedProbe(ts, ix, clients, func(_ RowID, row types.Row, qs queryset.Set) {
		for _, id := range qs.IDs() {
			counts[id]++
			if id == 1 && row[3].AsInt() <= 500 {
				t.Errorf("residual violated: %v", row)
			}
		}
	})
	if counts[2] != 20 {
		t.Errorf("Q2 = %d, want 20", counts[2])
	}
	if counts[1] == 0 || counts[1] >= counts[2] {
		t.Errorf("Q1 = %d should be a strict non-empty subset of Q2", counts[1])
	}
}

func TestSharedProbeStaleEntriesAfterUpdate(t *testing.T) {
	db, tab := seedUsers(t, 10)
	// Move user 3 from its country to "ZZ": the country index now has a
	// stale entry; probes must not return the row under the old key.
	oldRow, _ := tab.Visible(3, db.SnapshotTS())
	oldCountry := oldRow[2].AsString()
	db.ApplyOps([]WriteOp{{
		Table: "users", Kind: WUpdate,
		Pred: eqPred(tab, "id", types.NewInt(3)),
		Set:  []ColSet{{Col: 2, Val: &expr.Const{Val: types.NewString("ZZ")}}},
	}})
	ts := db.SnapshotTS()
	ix := tab.IndexByName("users_country")

	var oldKeyIDs []int64
	tab.SharedProbe(ts, ix, []ProbeClient{{ID: 1, Key: []types.Value{types.NewString(oldCountry)}}},
		func(_ RowID, row types.Row, _ queryset.Set) { oldKeyIDs = append(oldKeyIDs, row[0].AsInt()) })
	for _, id := range oldKeyIDs {
		if id == 3 {
			t.Error("stale index entry returned moved row")
		}
	}
	var newKeyIDs []int64
	tab.SharedProbe(ts, ix, []ProbeClient{{ID: 1, Key: []types.Value{types.NewString("ZZ")}}},
		func(_ RowID, row types.Row, _ queryset.Set) { newKeyIDs = append(newKeyIDs, row[0].AsInt()) })
	if len(newKeyIDs) != 1 || newKeyIDs[0] != 3 {
		t.Errorf("new key probe = %v", newKeyIDs)
	}
}

func BenchmarkSharedScanIndexed(b *testing.B) {
	benchScan(b, true)
}

func BenchmarkSharedScanNaive(b *testing.B) {
	benchScan(b, false)
}

func benchScan(b *testing.B, indexed bool) {
	db, err := Open(Options{})
	if err != nil {
		b.Fatal(err)
	}
	tab, _ := db.CreateTable("users", usersSchema())
	tab.SetPrimaryKey("id")
	var ops []WriteOp
	for i := int64(0); i < 10000; i++ {
		ops = append(ops, WriteOp{Table: "users", Kind: WInsert, Row: user(i, fmt.Sprintf("u%d", i), fmt.Sprintf("C%d", i%50), i%1000)})
	}
	db.ApplyOps(ops)
	ts := db.SnapshotTS()
	clients := make([]ScanClient, 256)
	for i := range clients {
		clients[i] = ScanClient{ID: queryset.QueryID(i + 1),
			Pred: eqPred(tab, "country", types.NewString(fmt.Sprintf("C%d", i%50)))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if indexed {
			tab.SharedScan(ts, clients, func(RowID, types.Row, queryset.Set) {})
		} else {
			tab.SharedScanNaive(ts, clients, func(RowID, types.Row, queryset.Set) {})
		}
	}
}
