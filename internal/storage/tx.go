package storage

import (
	"fmt"

	"shareddb/internal/expr"
	"shareddb/internal/types"
)

// Tx is a snapshot-isolated multi-statement transaction (paper §4.4: "the
// design of SharedDB favors optimistic and multi-version concurrency
// control ... Snapshot Isolation, as supported by the Crescando storage
// manager"). Reads see the snapshot taken at Begin; writes are buffered and
// applied atomically at commit with first-committer-wins conflict
// detection.
//
// Reads do not observe the transaction's own buffered writes; TPC-W
// interactions thread generated keys through the application instead.
type Tx struct {
	db     *Database
	snapTS uint64
	ops    []WriteOp
	done   bool
}

// Begin starts a transaction reading at the current snapshot.
func (db *Database) Begin() *Tx {
	return &Tx{db: db, snapTS: db.SnapshotTS()}
}

// SnapshotTS returns the transaction's read timestamp.
func (tx *Tx) SnapshotTS() uint64 { return tx.snapTS }

// Insert buffers an insert.
func (tx *Tx) Insert(table string, row types.Row) {
	tx.ops = append(tx.ops, WriteOp{Table: table, Kind: WInsert, Row: row})
}

// Update buffers an update of the rows matching pred.
func (tx *Tx) Update(table string, pred expr.Expr, set []ColSet) {
	tx.ops = append(tx.ops, WriteOp{Table: table, Kind: WUpdate, Pred: pred, Set: set})
}

// Delete buffers a delete of the rows matching pred.
func (tx *Tx) Delete(table string, pred expr.Expr) {
	tx.ops = append(tx.ops, WriteOp{Table: table, Kind: WDelete, Pred: pred})
}

// Rollback abandons the transaction.
func (tx *Tx) Rollback() {
	tx.done = true
	tx.ops = nil
}

// Commit applies the buffered writes atomically. Update/delete targets are
// resolved against the transaction's snapshot; if any target row was
// modified by a transaction that committed after snapTS, ErrConflict is
// returned and nothing is applied.
func (tx *Tx) Commit() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	if len(tx.ops) == 0 {
		return nil
	}
	_, err := tx.db.CommitTxBatch([]*Tx{tx})
	return err[0]
}

// CommitTxBatch commits many transactions in one critical section, in order.
// This is the shared engine's batch-commit path: all updates of a heartbeat
// generation apply together and a single new snapshot is published. The
// returned slice has one error (nil on success) per transaction.
func (db *Database) CommitTxBatch(txs []*Tx) (uint64, []error) {
	ts, errs, _ := db.commitTxBatch(txs)
	return ts, errs
}

func (db *Database) commitTxBatch(txs []*Tx) (uint64, []error, []WALRecord) {
	db.commitMu.Lock()
	defer db.commitMu.Unlock()

	db.stateMu.RLock()
	ts := db.clock
	db.stateMu.RUnlock()

	errs := make([]error, len(txs))
	var logRecs []WALRecord
	for i, tx := range txs {
		recs, err := db.commitOneLocked(tx, ts+1)
		errs[i] = err
		if err == nil && len(recs) > 0 {
			ts++
			logRecs = append(logRecs, recs...)
		}
	}
	if db.wal != nil && len(logRecs) > 0 {
		if err := db.wal.Append(logRecs); err != nil {
			for i := range errs {
				if errs[i] == nil {
					errs[i] = err
				}
			}
		}
	}
	db.publish(ts)
	return ts, errs, logRecs
}

// commitOneLocked validates and applies one transaction at timestamp ts.
// All-or-nothing: validation of every op happens before any apply.
func (db *Database) commitOneLocked(tx *Tx, ts uint64) ([]WALRecord, error) {
	if tx.done && len(tx.ops) == 0 {
		return nil, nil
	}
	tx.done = true

	type plannedWrite struct {
		t      *Table
		kind   WriteKind
		rid    RowID
		newRow types.Row
	}
	var plan []plannedWrite

	// Phase 1: resolve targets against the tx snapshot and detect
	// write-write conflicts (first committer wins).
	for _, op := range tx.ops {
		t := db.Table(op.Table)
		if t == nil {
			return nil, fmt.Errorf("%w: %s", ErrNoTable, op.Table)
		}
		t.mu.Lock()
		switch op.Kind {
		case WInsert:
			plan = append(plan, plannedWrite{t: t, kind: WInsert, newRow: op.Row.Clone()})
		case WUpdate, WDelete:
			for _, rid := range resolveTargets(t, op.Pred, tx.snapTS) {
				if t.lastModTS(rid) > tx.snapTS {
					t.mu.Unlock()
					return nil, fmt.Errorf("%w: %s row %d", ErrConflict, op.Table, rid)
				}
				pw := plannedWrite{t: t, kind: op.Kind, rid: rid}
				if op.Kind == WUpdate {
					oldRow, _ := t.visibleLocked(rid, tx.snapTS)
					pw.newRow = oldRow.Clone()
					for _, set := range op.Set {
						pw.newRow[set.Col] = set.Val.Eval(oldRow, nil)
					}
				}
				plan = append(plan, pw)
			}
		}
		t.mu.Unlock()
	}

	// Phase 2: validate every unique constraint before applying anything,
	// so a violation aborts the transaction without partial effects. The
	// check runs against the pre-commit snapshot plus this transaction's
	// own planned rows.
	planned := map[string]bool{} // index name + encoded key → taken by this tx
	for _, pw := range plan {
		if pw.kind == WDelete {
			continue
		}
		pw.t.mu.RLock()
		for _, ix := range pw.t.indexes {
			if !ix.Unique {
				continue
			}
			key := ix.KeyFor(pw.newRow)
			pk := ix.Name + "\x00" + types.EncodeKey(key...)
			if planned[pk] {
				pw.t.mu.RUnlock()
				return nil, fmt.Errorf("%w: index %s (within transaction)", ErrUniqueViolate, ix.Name)
			}
			planned[pk] = true
		}
		var err error
		if pw.kind == WInsert {
			err = checkUnique(pw.t, pw.newRow, ts-1, 0, false)
		} else {
			err = checkUnique(pw.t, pw.newRow, ts-1, pw.rid, true)
		}
		pw.t.mu.RUnlock()
		if err != nil {
			return nil, err
		}
	}

	// Phase 3: apply.
	var recs []WALRecord
	for _, pw := range plan {
		pw.t.mu.Lock()
		switch pw.kind {
		case WInsert:
			rid := pw.t.insertLocked(pw.newRow, ts)
			recs = append(recs, WALRecord{TS: ts, Kind: WInsert, Table: pw.t.name, RID: rid, Row: pw.newRow})
		case WUpdate:
			pw.t.updateLocked(pw.rid, pw.newRow, ts)
			recs = append(recs, WALRecord{TS: ts, Kind: WUpdate, Table: pw.t.name, RID: pw.rid, Row: pw.newRow})
		case WDelete:
			pw.t.deleteLocked(pw.rid, ts)
			recs = append(recs, WALRecord{TS: ts, Kind: WDelete, Table: pw.t.name, RID: pw.rid})
		}
		pw.t.mu.Unlock()
	}
	return recs, nil
}
