// Package storage implements SharedDB's storage manager, modeled on
// Crescando (paper §4.4): a main-memory MVCC row store with snapshot
// isolation, a batched shared table scan (ClockScan) that indexes query
// predicates instead of data, shared B-tree index probes, and durability via
// write-ahead logging and checkpoints.
package storage

import (
	"fmt"
	"math"
	"sync"

	"shareddb/internal/btree"
	"shareddb/internal/types"
)

// RowID identifies a logical row (a slot whose version chain evolves over
// time). RowIDs are dense and never reused.
type RowID = uint64

// TSMax marks a version as live (no successor).
const TSMax = math.MaxUint64

// version is one MVCC version of a row. A version is visible to snapshot ts
// iff beginTS <= ts < endTS. Chains are newest-first.
type version struct {
	row     types.Row
	beginTS uint64
	endTS   uint64
	older   *version
}

// Index is a secondary (or primary) B-tree index over a table.
//
// The tree maps column values of *all* row versions to RowIDs; readers must
// re-check the visible version against the sought key because entries for
// superseded versions linger until garbage collection.
type Index struct {
	Name   string
	Cols   []int
	Unique bool
	tree   *btree.Tree
}

// Tree exposes the underlying B-tree for shared probe operators.
func (ix *Index) Tree() *btree.Tree { return ix.tree }

// KeyFor extracts the index key from a row.
func (ix *Index) KeyFor(row types.Row) btree.Key {
	k := make(btree.Key, len(ix.Cols))
	for i, c := range ix.Cols {
		k[i] = row[c]
	}
	return k
}

// Table is an MVCC table: a slice of version-chain slots plus indexes.
//
// Concurrency contract: mutations (Insert/Update/Delete/GC) are serialized
// by the Database's commit path while holding mu for writing; readers take
// mu for reading. Version chains themselves are immutable except for head
// replacement and endTS sealing, both done under the write lock.
type Table struct {
	mu      sync.RWMutex
	name    string
	schema  *types.Schema
	slots   []*version
	indexes []*Index
	pk      *Index // primary-key index, also present in indexes

	// colm is the columnar read mirror (colstore.go), attached lazily by
	// the first SharedScanColumnar. Once attached, every mutation below
	// appends a (rid, ts) record to its pending log — see colMirror for the
	// locking contract (the log is guarded by mu, the mirror by its own
	// lock, so writers never block on scans).
	colm *colMirror
}

// NewTable creates an empty table.
func NewTable(name string, schema *types.Schema) *Table {
	return &Table{name: name, schema: schema}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *types.Schema { return t.schema }

// NumSlots returns the number of allocated row slots (live + dead).
func (t *Table) NumSlots() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.slots)
}

// AddIndex creates an index over the named columns. Must be called before
// rows exist or is backfilled from the latest versions.
func (t *Table) AddIndex(name string, unique bool, cols ...string) (*Index, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	idxCols := make([]int, len(cols))
	for i, c := range cols {
		ci, err := t.schema.ColIndex(c)
		if err != nil {
			return nil, fmt.Errorf("index %s: %w", name, err)
		}
		idxCols[i] = ci
	}
	ix := &Index{Name: name, Cols: idxCols, Unique: unique, tree: btree.New()}
	for rid, v := range t.slots {
		for ver := v; ver != nil; ver = ver.older {
			ix.tree.Insert(ix.KeyFor(ver.row), uint64(rid))
		}
	}
	t.indexes = append(t.indexes, ix)
	return ix, nil
}

// SetPrimaryKey creates (or designates) the unique primary-key index.
func (t *Table) SetPrimaryKey(cols ...string) (*Index, error) {
	ix, err := t.AddIndex("pk_"+t.name, true, cols...)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	t.pk = ix
	t.mu.Unlock()
	return ix, nil
}

// PrimaryKey returns the primary-key index or nil.
func (t *Table) PrimaryKey() *Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.pk
}

// Indexes returns the table's indexes.
func (t *Table) Indexes() []*Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]*Index, len(t.indexes))
	copy(out, t.indexes)
	return out
}

// IndexByName returns the named index or nil.
func (t *Table) IndexByName(name string) *Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, ix := range t.indexes {
		if ix.Name == name {
			return ix
		}
	}
	return nil
}

// IndexOn returns an index whose leading columns match cols, or nil.
func (t *Table) IndexOn(cols ...int) *Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, ix := range t.indexes {
		if len(ix.Cols) < len(cols) {
			continue
		}
		match := true
		for i, c := range cols {
			if ix.Cols[i] != c {
				match = false
				break
			}
		}
		if match {
			return ix
		}
	}
	return nil
}

// insertLocked appends a new row visible from ts. Caller holds mu.
func (t *Table) insertLocked(row types.Row, ts uint64) RowID {
	rid := RowID(len(t.slots))
	t.slots = append(t.slots, &version{row: row, beginTS: ts, endTS: TSMax})
	for _, ix := range t.indexes {
		ix.tree.Insert(ix.KeyFor(row), rid)
	}
	t.recordWrite(rid, ts)
	return rid
}

// updateLocked installs a new version of rid visible from ts. Caller holds
// mu and has verified visibility/conflicts.
func (t *Table) updateLocked(rid RowID, newRow types.Row, ts uint64) {
	head := t.slots[rid]
	head.endTS = ts
	t.slots[rid] = &version{row: newRow, beginTS: ts, endTS: TSMax, older: head}
	for _, ix := range t.indexes {
		oldKey, newKey := ix.KeyFor(head.row), ix.KeyFor(newRow)
		if btree.CompareKeys(oldKey, newKey) != 0 {
			// Old entry stays for old-snapshot readers; GC removes it.
			ix.tree.Insert(newKey, rid)
		}
	}
	t.recordWrite(rid, ts)
}

// deleteLocked seals the head version of rid at ts. Caller holds mu.
func (t *Table) deleteLocked(rid RowID, ts uint64) {
	t.slots[rid].endTS = ts
	t.recordWrite(rid, ts)
}

// Visible returns the version of rid visible at snapshot ts.
func (t *Table) Visible(rid RowID, ts uint64) (types.Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.visibleLocked(rid, ts)
}

func (t *Table) visibleLocked(rid RowID, ts uint64) (types.Row, bool) {
	if rid >= uint64(len(t.slots)) {
		return nil, false
	}
	for v := t.slots[rid]; v != nil; v = v.older {
		if v.beginTS <= ts && ts < v.endTS {
			return v.row, true
		}
	}
	return nil, false
}

// lastModTS returns the timestamp of the most recent modification of rid
// (insert, update or delete); used for snapshot-isolation first-committer-
// wins conflict checks. Caller holds mu.
func (t *Table) lastModTS(rid RowID) uint64 {
	if rid >= uint64(len(t.slots)) {
		return 0
	}
	v := t.slots[rid]
	if v.endTS != TSMax {
		return v.endTS // head sealed: row was deleted at endTS
	}
	return v.beginTS
}

// ScanVisible iterates all rows visible at ts in RowID order. fn returning
// false stops the scan.
//
// The table read lock is held for the whole pass: with pipelined
// generations, writes of later generations land while earlier generations'
// read cycles are still scanning, so version chains can no longer be
// traversed lock-free. Writers (ApplyOps / CommitTxBatch) block until the
// pass completes; readers of other generations proceed concurrently. fn
// must not call back into this table's locking methods.
func (t *Table) ScanVisible(ts uint64, fn func(rid RowID, row types.Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for rid, head := range t.slots {
		for v := head; v != nil; v = v.older {
			if v.beginTS <= ts && ts < v.endTS {
				if !fn(RowID(rid), v.row) {
					return
				}
				break
			}
		}
	}
}

// CountVisible returns the number of rows visible at ts.
func (t *Table) CountVisible(ts uint64) int {
	n := 0
	t.ScanVisible(ts, func(RowID, types.Row) bool { n++; return true })
	return n
}

// GC truncates version chains: versions whose endTS <= beforeTS can no
// longer be seen by any snapshot the database will serve and are unlinked.
// Stale index entries referencing keys that no surviving version carries are
// removed.
func (t *Table) GC(beforeTS uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for rid, head := range t.slots {
		// Find the oldest version that is still needed: the newest version
		// with beginTS <= beforeTS survives (it is visible at beforeTS),
		// everything older goes.
		var keep *version
		for v := head; v != nil; v = v.older {
			keep = v
			if v.beginTS <= beforeTS {
				break
			}
		}
		if keep == nil || keep.older == nil {
			continue
		}
		// Collect surviving keys per index, then drop entries that belong
		// only to truncated versions.
		for _, ix := range t.indexes {
			surviving := map[string]bool{}
			for v := head; v != nil; v = v.older {
				surviving[types.EncodeKey(ix.KeyFor(v.row)...)] = true
				if v == keep {
					break
				}
			}
			for v := keep.older; v != nil; v = v.older {
				k := ix.KeyFor(v.row)
				if !surviving[types.EncodeKey(k...)] {
					ix.tree.Delete(k, uint64(rid))
					surviving[types.EncodeKey(k...)] = true // delete once
				}
			}
		}
		keep.older = nil
	}
}
