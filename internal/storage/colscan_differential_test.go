package storage

import (
	"fmt"
	"math/rand"
	"testing"

	"shareddb/internal/expr"
	"shareddb/internal/queryset"
	"shareddb/internal/testutil"
	"shareddb/internal/types"
)

// Differential correctness sweep for the columnar shared scan: for random
// schemas, evolving row sets (interleaved inserts, updates and deletes) and
// predicate batches drawn from every client class — equality, range,
// residual-conjunct, LIKE and rest — SharedScanColumnar must reproduce the
// row-path SharedScan bit for bit: same RowID order, same row objects, same
// per-row query sets. The mirror's whole maintenance surface is in the
// loop: incremental delta application between snapshots, compaction (forced
// by lowered thresholds), rebuild fallbacks, and typed-vector demotion via
// cross-kind updates.

// lowerColThresholds shrinks the columnar maintenance knobs so test-sized
// fixtures exercise many chunks, compaction and the rebuild backlog path.
func lowerColThresholds(t *testing.T) {
	t.Helper()
	oldChunk, oldCompact, oldRebuild := colChunkRows, colCompactMinRows, colRebuildMinPending
	colChunkRows = 64 // must stay a multiple of 64
	colCompactMinRows = 8
	colRebuildMinPending = 16
	t.Cleanup(func() {
		colChunkRows, colCompactMinRows, colRebuildMinPending = oldChunk, oldCompact, oldRebuild
	})
}

// fuzzPredColumnar draws from the row sweep's predicate classes plus LIKE
// shapes (exact/prefix/suffix/contains/general, half negated) when a string
// column exists — the columnar rest-class fast path.
func fuzzPredColumnar(r *rand.Rand, kinds []types.Kind) expr.Expr {
	if r.Intn(4) == 0 {
		var strCols []int
		for i, k := range kinds {
			if k == types.KindString {
				strCols = append(strCols, i)
			}
		}
		if len(strCols) > 0 {
			c := strCols[r.Intn(len(strCols))]
			letter := string(rune('a' + r.Intn(5)))
			patterns := []string{letter, letter + "%", "%" + letter, "%" + letter + "%", letter + "_%", "%"}
			return &expr.Like{
				L:       &expr.ColRef{Idx: c},
				Pattern: &expr.Const{Val: types.NewString(patterns[r.Intn(len(patterns))])},
				Negate:  r.Intn(2) == 0,
			}
		}
	}
	return fuzzPred(r, kinds)
}

// colEmission captures one emit callback with row identity: both scan paths
// hand out the very same types.Row objects (the version chain's), so the
// backing-array pointer must match, not just the values.
type colEmission struct {
	rid RowID
	qs  string
	rp  *types.Value
}

func collectColumnar(tab *Table, ts uint64, clients []ScanClient, workers int, bufs *ColScanBuffers) []colEmission {
	var out []colEmission
	tab.SharedScanColumnar(ts, clients, workers, bufs, func(rid RowID, row types.Row, qs queryset.Set) {
		out = append(out, colEmission{rid: rid, qs: qs.String(), rp: &row[0]})
	})
	return out
}

func collectRow(tab *Table, ts uint64, clients []ScanClient) []colEmission {
	var out []colEmission
	tab.SharedScan(ts, clients, func(rid RowID, row types.Row, qs queryset.Set) {
		out = append(out, colEmission{rid: rid, qs: qs.String(), rp: &row[0]})
	})
	return out
}

func TestColumnarScanDifferentialFuzz(t *testing.T) {
	forceParallelScan(t)
	lowerColThresholds(t)
	r := rand.New(rand.NewSource(20120807))
	kindPool := []types.Kind{types.KindInt, types.KindFloat, types.KindString}
	var totalCompactions, totalIncSyncs, totalRebuilds uint64
	for trial := 0; trial < 60; trial++ {
		ncols := 1 + r.Intn(4)
		kinds := make([]types.Kind, ncols)
		cols := make([]types.Column, ncols)
		for i := range cols {
			kinds[i] = kindPool[r.Intn(len(kindPool))]
			cols[i] = types.Column{Qualifier: "t", Name: fmt.Sprintf("c%d", i), Kind: kinds[i]}
		}
		db, err := Open(Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.CreateTable("t", types.NewSchema(cols...)); err != nil {
			t.Fatal(err)
		}
		tab := db.Table("t")
		mkRow := func() types.Row {
			row := make(types.Row, ncols)
			for c := range row {
				row[c] = fuzzValue(r, kinds[c], true)
			}
			return row
		}
		nrows := r.Intn(260)
		ops := make([]WriteOp, nrows)
		for i := range ops {
			ops[i] = WriteOp{Table: "t", Kind: WInsert, Row: mkRow()}
		}
		db.ApplyOps(ops)

		bufs := &ColScanBuffers{} // reused across sweeps: steady-state reuse path
		for sweep := 0; sweep < 4; sweep++ {
			ts := db.SnapshotTS()
			nq := 1 + r.Intn(30)
			clients := make([]ScanClient, nq)
			for i := range clients {
				clients[i] = ScanClient{ID: queryset.QueryID(i + 1), Pred: fuzzPredColumnar(r, kinds)}
			}
			want := collectRow(tab, ts, clients)
			for _, workers := range []int{1, 4} {
				got := collectColumnar(tab, ts, clients, workers, bufs)
				if len(got) != len(want) {
					t.Fatalf("trial %d sweep %d workers=%d: %d emissions, row path %d",
						trial, sweep, workers, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("trial %d sweep %d workers=%d emission %d: columnar {rid %d, qs %s}, row path {rid %d, qs %s} (row identity match: %v)",
							trial, sweep, workers, i, got[i].rid, got[i].qs, want[i].rid, want[i].qs, got[i].rp == want[i].rp)
					}
				}
			}

			// Interleave a delta before the next sweep: inserts, predicate-
			// targeted updates and deletes. Cross-kind SET values (1 in 8)
			// force typed-vector demotion mid-life.
			nmut := 1 + r.Intn(25)
			mops := make([]WriteOp, 0, nmut)
			for i := 0; i < nmut; i++ {
				switch r.Intn(3) {
				case 0:
					mops = append(mops, WriteOp{Table: "t", Kind: WInsert, Row: mkRow()})
				case 1:
					pc, sc := r.Intn(ncols), r.Intn(ncols)
					setKind := kinds[sc]
					if r.Intn(8) == 0 {
						setKind = kindPool[r.Intn(len(kindPool))]
					}
					mops = append(mops, WriteOp{Table: "t", Kind: WUpdate,
						Pred: &expr.Cmp{Op: expr.EQ, L: &expr.ColRef{Idx: pc}, R: &expr.Const{Val: fuzzConst(r, kinds[pc])}},
						Set:  []ColSet{{Col: sc, Val: &expr.Const{Val: fuzzValue(r, setKind, true)}}}})
				default:
					pc := r.Intn(ncols)
					mops = append(mops, WriteOp{Table: "t", Kind: WDelete,
						Pred: &expr.Cmp{Op: expr.EQ, L: &expr.ColRef{Idx: pc}, R: &expr.Const{Val: fuzzConst(r, kinds[pc])}}})
				}
			}
			db.ApplyOps(mops)
		}
		st := tab.columnarStats()
		totalCompactions += st.compactions
		totalIncSyncs += st.incSyncs
		totalRebuilds += st.rebuilds
		db.Close()
	}
	// The sweep must have exercised the whole maintenance surface, or the
	// differential proves less than it claims.
	if totalRebuilds == 0 || totalIncSyncs == 0 || totalCompactions == 0 {
		t.Fatalf("maintenance paths not covered: rebuilds=%d incSyncs=%d compactions=%d",
			totalRebuilds, totalIncSyncs, totalCompactions)
	}
}

// TestColumnarMirrorMaintenance pins the maintenance triggers one by one:
// first pin rebuilds, forward pins apply the delta incrementally, crossing
// the dead-fraction threshold compacts, and a pin at an older snapshot (or
// past the drained frontier) falls back to a rebuild — with every state
// checked against the row path.
func TestColumnarMirrorMaintenance(t *testing.T) {
	lowerColThresholds(t)
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	cols := []types.Column{
		{Qualifier: "t", Name: "id", Kind: types.KindInt},
		{Qualifier: "t", Name: "name", Kind: types.KindString},
	}
	if _, err := db.CreateTable("t", types.NewSchema(cols...)); err != nil {
		t.Fatal(err)
	}
	tab := db.Table("t")
	insert := func(lo, hi int64) {
		var ops []WriteOp
		for i := lo; i < hi; i++ {
			ops = append(ops, WriteOp{Table: "t", Kind: WInsert,
				Row: types.Row{types.NewInt(i), types.NewString(fmt.Sprintf("n%03d", i))}})
		}
		db.ApplyOps(ops)
	}
	clients := []ScanClient{
		{ID: 1, Pred: &expr.Cmp{Op: expr.GE, L: &expr.ColRef{Idx: 0}, R: &expr.Const{Val: types.NewInt(0)}}},
		{ID: 2, Pred: &expr.Like{L: &expr.ColRef{Idx: 1}, Pattern: &expr.Const{Val: types.NewString("n0%")}}},
	}
	verify := func(label string, ts uint64) {
		t.Helper()
		want := collectRow(tab, ts, clients)
		got := collectColumnar(tab, ts, clients, 1, nil)
		if len(got) != len(want) {
			t.Fatalf("%s: %d emissions, row path %d", label, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s emission %d: columnar {rid %d, qs %s}, row path {rid %d, qs %s}",
					label, i, got[i].rid, got[i].qs, want[i].rid, want[i].qs)
			}
		}
	}

	insert(0, 40)
	ts1 := db.SnapshotTS()
	verify("initial build", ts1)
	st := tab.columnarStats()
	if st.rebuilds != 1 || st.rows != 40 {
		t.Fatalf("after first pin: stats %+v, want 1 rebuild over 40 rows", st)
	}

	// Forward delta: a handful of updates and deletes must apply in place.
	db.ApplyOps([]WriteOp{
		{Table: "t", Kind: WUpdate,
			Pred: &expr.Cmp{Op: expr.EQ, L: &expr.ColRef{Idx: 0}, R: &expr.Const{Val: types.NewInt(3)}},
			Set:  []ColSet{{Col: 1, Val: &expr.Const{Val: types.NewString("patched")}}}},
		{Table: "t", Kind: WDelete,
			Pred: &expr.Cmp{Op: expr.EQ, L: &expr.ColRef{Idx: 0}, R: &expr.Const{Val: types.NewInt(7)}}},
	})
	ts2 := db.SnapshotTS()
	verify("incremental delta", ts2)
	st = tab.columnarStats()
	if st.rebuilds != 1 || st.incSyncs == 0 {
		t.Fatalf("after forward pin: stats %+v, want incremental sync without new rebuild", st)
	}
	if st.dead != 1 {
		t.Fatalf("after one delete: dead = %d, want 1", st.dead)
	}

	// Kill most rows: the dead fraction crosses 1/2 and compaction rewrites
	// the vectors (rows >= lowered colCompactMinRows).
	db.ApplyOps([]WriteOp{{Table: "t", Kind: WDelete,
		Pred: &expr.Cmp{Op: expr.LT, L: &expr.ColRef{Idx: 0}, R: &expr.Const{Val: types.NewInt(30)}}}})
	ts3 := db.SnapshotTS()
	verify("post-compaction", ts3)
	st = tab.columnarStats()
	if st.compactions == 0 {
		t.Fatalf("after mass delete: stats %+v, want a compaction", st)
	}
	if st.dead != 0 || st.rows != 10 {
		t.Fatalf("after compaction: rows=%d dead=%d, want 10 live rows, 0 dead", st.rows, st.dead)
	}

	// Pinning an older snapshot is a chain mismatch: rebuild, and the next
	// forward pin must rebuild too (its delta records were already drained).
	verify("backward pin", ts1)
	st = tab.columnarStats()
	if st.rebuilds < 2 {
		t.Fatalf("after backward pin: stats %+v, want a rebuild fallback", st)
	}
	verify("forward after backward", ts3)
	verify("forward after backward again", ts3)

	// A pending backlog larger than both the mirror and the threshold takes
	// the rebuild-instead-of-apply path.
	insert(1000, 1100)
	ts4 := db.SnapshotTS()
	before := tab.columnarStats().rebuilds
	verify("backlog rebuild", ts4)
	if after := tab.columnarStats().rebuilds; after != before+1 {
		t.Fatalf("backlog of 100 over 10 mirrored rows: rebuilds %d -> %d, want a rebuild", before, after)
	}
}

// TestColumnarScanWorkersMatrix re-runs one fixture through the worker
// ladder against the serial row scan (partition merge order, tiny-table
// clamp interplay).
func TestColumnarScanWorkersMatrix(t *testing.T) {
	forceParallelScan(t)
	lowerColThresholds(t)
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	cols := []types.Column{
		{Qualifier: "t", Name: "id", Kind: types.KindInt},
		{Qualifier: "t", Name: "grp", Kind: types.KindString},
	}
	if _, err := db.CreateTable("t", types.NewSchema(cols...)); err != nil {
		t.Fatal(err)
	}
	tab := db.Table("t")
	var ops []WriteOp
	for i := int64(0); i < 500; i++ {
		ops = append(ops, WriteOp{Table: "t", Kind: WInsert,
			Row: types.Row{types.NewInt(i % 97), types.NewString(string(rune('a' + i%7)))}})
	}
	db.ApplyOps(ops)
	ts := db.SnapshotTS()
	clients := []ScanClient{
		{ID: 1, Pred: &expr.Cmp{Op: expr.EQ, L: &expr.ColRef{Idx: 0}, R: &expr.Const{Val: types.NewInt(13)}}},
		{ID: 2, Pred: &expr.Cmp{Op: expr.LT, L: &expr.ColRef{Idx: 0}, R: &expr.Const{Val: types.NewInt(40)}}},
		{ID: 3, Pred: &expr.Like{L: &expr.ColRef{Idx: 1}, Pattern: &expr.Const{Val: types.NewString("c%")}}},
		{ID: 4, Pred: nil},
	}
	want := collectRow(tab, ts, clients)
	for _, workers := range []int{1, 2, 3, 4, 8, 64} {
		got := collectColumnar(tab, ts, clients, workers, &ColScanBuffers{})
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d emissions, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d emission %d: got {rid %d, qs %s}, want {rid %d, qs %s}",
					workers, i, got[i].rid, got[i].qs, want[i].rid, want[i].qs)
			}
		}
	}
}

// TestColumnarScanZeroAllocSteadyState is the alloc gate for the columnar
// chunk loop: once the mirror and the scan buffers are warm, re-running the
// same cycle allocates nothing per chunk — the measured allocation count
// must not grow when the table (and with it the chunk count) does.
func TestColumnarScanZeroAllocSteadyState(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	lowerColThresholds(t)
	build := func(nrows int64) (*Table, uint64, []ScanClient, *ColScanBuffers) {
		db, err := Open(Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		cols := []types.Column{
			{Qualifier: "t", Name: "id", Kind: types.KindInt},
			{Qualifier: "t", Name: "price", Kind: types.KindFloat},
			{Qualifier: "t", Name: "title", Kind: types.KindString},
		}
		if _, err := db.CreateTable("t", types.NewSchema(cols...)); err != nil {
			t.Fatal(err)
		}
		ops := make([]WriteOp, nrows)
		for i := range ops {
			ops[i] = WriteOp{Table: "t", Kind: WInsert, Row: types.Row{
				types.NewInt(int64(i) % 101),
				types.NewFloat(float64(i%89) / 2),
				types.NewString(fmt.Sprintf("Title %02d", i%13)),
			}}
		}
		db.ApplyOps(ops)
		tab := db.Table("t")
		ts := db.SnapshotTS()
		clients := []ScanClient{
			{ID: 1, Pred: &expr.Cmp{Op: expr.EQ, L: &expr.ColRef{Idx: 0}, R: &expr.Const{Val: types.NewInt(42)}}},
			{ID: 2, Pred: &expr.Cmp{Op: expr.GT, L: &expr.ColRef{Idx: 1}, R: &expr.Const{Val: types.NewFloat(30)}}},
			{ID: 3, Pred: &expr.Like{L: &expr.ColRef{Idx: 2}, Pattern: &expr.Const{Val: types.NewString("Title 0%")}}},
		}
		bufs := &ColScanBuffers{}
		sink := func(RowID, types.Row, queryset.Set) {}
		tab.SharedScanColumnar(ts, clients, 1, bufs, sink) // warm mirror + buffers
		tab.SharedScanColumnar(ts, clients, 1, bufs, sink)
		return tab, ts, clients, bufs
	}
	measure := func(nrows int64) float64 {
		tab, ts, clients, bufs := build(nrows)
		sink := func(RowID, types.Row, queryset.Set) {}
		return testing.AllocsPerRun(20, func() {
			tab.SharedScanColumnar(ts, clients, 1, bufs, sink)
		})
	}
	small := measure(4 * int64(colChunkRows))  // 4 chunks
	large := measure(24 * int64(colChunkRows)) // 24 chunks
	if large > small {
		t.Fatalf("allocs grow with chunk count: %.1f at 4 chunks, %.1f at 24 chunks (want flat — ~0 allocs per chunk)", small, large)
	}
	// The per-cycle fixed cost (index build residuals etc.) stays tiny.
	if large > 16 {
		t.Fatalf("steady-state columnar cycle allocates %.1f times (want <= 16)", large)
	}
}
