package storage

import "shareddb/internal/types"

// ShardInfo identifies one hash partition of a sharded deployment: shard
// Index of Count total shards. The zero value (Count 0) means unsharded.
// The info is metadata only — the storage manager itself is shard-agnostic;
// the router (internal/shard) decides which rows land here.
type ShardInfo struct {
	Index int
	Count int
}

// Sharded reports whether the database is one partition of a multi-shard
// deployment.
func (s ShardInfo) Sharded() bool { return s.Count > 1 }

// Partitioning is the hash router over primary keys: a table's row belongs
// to shard ShardOf(pk values) of Shards. Hashing goes through the codec's
// coercion-consistent key hash (types.KeyHash), so a row inserted with
// pk=1 and a lookup with pk=1.0 resolve to the same shard.
type Partitioning struct {
	Shards int
}

// ShardOf returns the owning shard of a primary key.
func (p Partitioning) ShardOf(key ...types.Value) int {
	if p.Shards <= 1 {
		return 0
	}
	return int(types.KeyHash(key...) % uint64(p.Shards))
}

// OpApplier is the write-batch sink shared by the storage manager and the
// shard router: Database implements it directly; the router implements it
// by routing each op to the owning partition. Bulk loaders (the TPC-W data
// generator) target this interface so the same load path fills unsharded
// and sharded deployments.
type OpApplier interface {
	ApplyOps(ops []WriteOp) ([]OpResult, uint64)
}
