// Package harness provides the measurement utilities shared by the
// benchmark drivers: latency histograms, throughput tracking and table
// rendering for the figure-regeneration binaries.
package harness

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Histogram records latency observations with log-scaled buckets
// (~4% relative error), cheap enough for hot paths.
type Histogram struct {
	mu      sync.Mutex
	buckets []uint64
	count   uint64
	sum     time.Duration
	max     time.Duration
}

const histBuckets = 400

// bucketOf maps a duration to a logarithmic bucket index.
func bucketOf(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	// log base 1.04 of microseconds
	b := int(math.Log(float64(d.Microseconds())+1) / math.Log(1.04))
	if b < 0 {
		b = 0
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

func bucketValue(i int) time.Duration {
	us := math.Pow(1.04, float64(i)) - 1
	return time.Duration(us) * time.Microsecond
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{buckets: make([]uint64, histBuckets)}
}

// Observe records one latency.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	h.buckets[bucketOf(d)]++
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the average latency.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns the approximate q-quantile (0 < q <= 1).
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	target := uint64(q * float64(h.count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			return bucketValue(i)
		}
	}
	return h.max
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	other.mu.Lock()
	snapshot := append([]uint64{}, other.buckets...)
	cnt, sum, mx := other.count, other.sum, other.max
	other.mu.Unlock()

	h.mu.Lock()
	for i, c := range snapshot {
		h.buckets[i] += c
	}
	h.count += cnt
	h.sum += sum
	if mx > h.max {
		h.max = mx
	}
	h.mu.Unlock()
}

// Table renders aligned rows for figure output: the harness binaries print
// the same series the paper plots.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row of stringified cells.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		case time.Duration:
			row[i] = fmt.Sprintf("%.2fms", float64(v.Microseconds())/1000)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, hd := range t.Header {
		widths[i] = len(hd)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var out string
	line := func(cells []string) string {
		s := ""
		for i, c := range cells {
			s += fmt.Sprintf("%-*s  ", widths[min(i, len(widths)-1)], c)
		}
		return s + "\n"
	}
	out += line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = repeat('-', widths[i])
	}
	out += line(sep)
	for _, r := range t.Rows {
		out += line(r)
	}
	return out
}

func repeat(b byte, n int) string {
	s := make([]byte, n)
	for i := range s {
		s[i] = b
	}
	return string(s)
}

// SortedKeys returns map keys in sorted order (report stability helper).
func SortedKeys[K interface{ ~int | ~string }, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
