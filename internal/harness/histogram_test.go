package harness

import (
	"strings"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram should be zero")
	}
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Max() != 100*time.Millisecond {
		t.Errorf("max = %v", h.Max())
	}
	mean := h.Mean()
	if mean < 45*time.Millisecond || mean > 56*time.Millisecond {
		t.Errorf("mean = %v", mean)
	}
	p50 := h.Quantile(0.5)
	if p50 < 40*time.Millisecond || p50 > 60*time.Millisecond {
		t.Errorf("p50 = %v (log buckets allow ~4%% error)", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 90*time.Millisecond {
		t.Errorf("p99 = %v", p99)
	}
	if h.Quantile(1.0) < p99 {
		t.Error("quantiles should be monotone")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Observe(time.Millisecond)
	b.Observe(time.Second)
	a.Merge(b)
	if a.Count() != 2 {
		t.Errorf("merged count = %d", a.Count())
	}
	if a.Max() != time.Second {
		t.Errorf("merged max = %v", a.Max())
	}
}

func TestHistogramExtremes(t *testing.T) {
	h := NewHistogram()
	h.Observe(0)
	h.Observe(-time.Second)
	h.Observe(24 * time.Hour) // beyond last bucket: clamped
	if h.Count() != 3 {
		t.Error("extreme observations dropped")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Header: []string{"name", "wips", "latency"}}
	tb.Add("SharedDB", 123.456, 1500*time.Microsecond)
	tb.Add("MySQL", 7.0, time.Second)
	out := tb.String()
	if !strings.Contains(out, "SharedDB") || !strings.Contains(out, "123.5") {
		t.Errorf("table output:\n%s", out)
	}
	if !strings.Contains(out, "1.50ms") {
		t.Errorf("duration formatting missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	keys := SortedKeys(m)
	if keys[0] != "a" || keys[2] != "c" {
		t.Errorf("keys = %v", keys)
	}
	mi := map[int]string{3: "x", 1: "y"}
	ki := SortedKeys(mi)
	if ki[0] != 1 {
		t.Errorf("int keys = %v", ki)
	}
}
