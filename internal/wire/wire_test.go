package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"strings"
	"testing"
	"time"

	"shareddb/internal/types"
)

// readOne reads a single frame out of an encoded buffer and fails on any
// framing error.
func readOne(t *testing.T, frame []byte) (Type, []byte) {
	t.Helper()
	typ, payload, _, err := ReadFrame(bytes.NewReader(frame), nil)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	return typ, payload
}

func sampleValues() []types.Value {
	return []types.Value{
		types.Null,
		types.NewInt(-42),
		types.NewFloat(3.5),
		types.NewString("Title 07%"),
		types.NewBool(true),
		types.NewTime(time.Unix(1700000000, 12345).UTC()),
	}
}

func sampleRows() []types.Row {
	return []types.Row{
		{types.NewInt(1), types.NewString("a")},
		{types.NewInt(2), types.NewString("b"), types.Null},
		{},
	}
}

// TestRoundTrip encodes each message, re-reads it through ReadFrame, and
// decodes it back, checking the frame type and field-for-field equality.
func TestRoundTrip(t *testing.T) {
	check := func(name string, frame []byte, want Type, decode func(p []byte) (interface{}, error), wantMsg interface{}) {
		t.Helper()
		typ, payload := readOne(t, frame)
		if typ != want {
			t.Fatalf("%s: frame type = %v, want %v", name, typ, want)
		}
		got, err := decode(payload)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !reflect.DeepEqual(got, wantMsg) {
			t.Fatalf("%s: round trip mismatch\n got %#v\nwant %#v", name, got, wantMsg)
		}
	}

	hello := Hello{Version: Version, Window: 32}
	check("hello", hello.Append(nil), THello,
		func(p []byte) (interface{}, error) { return DecodeHello(p) }, hello)

	helloOK := HelloOK{Version: Version, Window: 64}
	check("hello_ok", helloOK.Append(nil), THelloOK,
		func(p []byte) (interface{}, error) { return DecodeHelloOK(p) }, helloOK)

	prep := Prepare{ID: 7, SQL: "SELECT i_id FROM item WHERE i_title LIKE ?"}
	check("prepare", prep.Append(nil), TPrepare,
		func(p []byte) (interface{}, error) { return DecodePrepare(p) }, prep)

	prepOK := PrepareOK{ID: 7, Stmt: 3, NumParams: 1, IsWrite: false, Columns: []string{"i_id", "i_title"}}
	check("prepare_ok", prepOK.Append(nil), TPrepareOK,
		func(p []byte) (interface{}, error) { return DecodePrepareOK(p) }, prepOK)

	call := StmtCall{ID: 9, Stmt: 3, Params: sampleValues()}
	check("query", call.Append(nil, TQuery), TQuery,
		func(p []byte) (interface{}, error) { return DecodeStmtCall(p) }, call)
	check("exec", call.Append(nil, TExec), TExec,
		func(p []byte) (interface{}, error) { return DecodeStmtCall(p) }, call)

	sqlCall := SQLCall{ID: 11, SQL: "UPDATE item SET i_stock = ? WHERE i_id = ?", Params: sampleValues()[:2]}
	check("exec_sql", sqlCall.Append(nil, TExecSQL), TExecSQL,
		func(p []byte) (interface{}, error) { return DecodeSQLCall(p) }, sqlCall)
	check("subscribe", sqlCall.Append(nil, TSubscribe), TSubscribe,
		func(p []byte) (interface{}, error) { return DecodeSQLCall(p) }, sqlCall)

	ref := Ref{ID: 13, Ref: 3}
	check("close_stmt", ref.Append(nil, TCloseStmt), TCloseStmt,
		func(p []byte) (interface{}, error) { return DecodeRef(p) }, ref)

	simple := Simple{ID: 15}
	check("stats", simple.Append(nil, TStats), TStats,
		func(p []byte) (interface{}, error) { return DecodeSimple(p) }, simple)

	hdr := RowsHeader{ID: 9, Columns: []string{"i_id", "i_title"}}
	check("rows_header", hdr.Append(nil), TRowsHeader,
		func(p []byte) (interface{}, error) { return DecodeRowsHeader(p) }, hdr)

	batch := RowBatch{ID: 9, Rows: sampleRows()}
	check("row_batch", batch.Append(nil), TRowBatch,
		func(p []byte) (interface{}, error) { return DecodeRowBatch(p) }, batch)

	done := RowsDone{ID: 9, Total: 3}
	check("rows_done", done.Append(nil), TRowsDone,
		func(p []byte) (interface{}, error) { return DecodeRowsDone(p) }, done)

	execOK := ExecOK{ID: 11, RowsAffected: 2}
	check("exec_ok", execOK.Append(nil), TExecOK,
		func(p []byte) (interface{}, error) { return DecodeExecOK(p) }, execOK)

	werr := Error{ID: 11, Code: CodeUnknownStmt, Msg: "stmt 99 not prepared"}
	check("err", werr.Append(nil), TErr,
		func(p []byte) (interface{}, error) { return DecodeError(p) }, werr)

	busy := Busy{ID: 9, RetryAfterNs: uint64(5 * time.Millisecond), Reason: "queue full"}
	check("busy", busy.Append(nil), TBusy,
		func(p []byte) (interface{}, error) { return DecodeBusy(p) }, busy)

	stats := StatsOK{ID: 15, Fields: []StatField{{"generations", 12}, {"folded_queries", 99}}}
	check("stats_ok", stats.Append(nil), TStatsOK,
		func(p []byte) (interface{}, error) { return DecodeStatsOK(p) }, stats)

	subOK := SubOK{ID: 17, Sub: 4}
	check("sub_ok", subOK.Append(nil), TSubOK,
		func(p []byte) (interface{}, error) { return DecodeSubOK(p) }, subOK)

	pushFull := SubPush{Sub: 4, Gen: 8, Full: true, Rows: sampleRows()}
	check("sub_push_full", pushFull.Append(nil), TSubPush,
		func(p []byte) (interface{}, error) { return DecodeSubPush(p) }, pushFull)

	pushDelta := SubPush{Sub: 4, Gen: 9, Added: sampleRows()[:1], Removed: sampleRows()[1:2]}
	check("sub_push_delta", pushDelta.Append(nil), TSubPush,
		func(p []byte) (interface{}, error) { return DecodeSubPush(p) }, pushDelta)
}

// TestEmptyFrames checks the payload-free QUIT/BYE frames.
func TestEmptyFrames(t *testing.T) {
	for _, typ := range []Type{TQuit, TBye} {
		typGot, payload := readOne(t, AppendEmpty(nil, typ))
		if typGot != typ {
			t.Fatalf("type = %v, want %v", typGot, typ)
		}
		if err := DecodeEmpty(payload); err != nil {
			t.Fatalf("DecodeEmpty(%v): %v", typ, err)
		}
	}
}

// TestPipelinedStream writes several frames back to back into one buffer
// and reads them out with a reused buffer — the exact read-loop pattern the
// server and client use.
func TestPipelinedStream(t *testing.T) {
	var stream []byte
	for i := uint64(0); i < 10; i++ {
		stream = StmtCall{ID: i, Stmt: 1, Params: []types.Value{types.NewInt(int64(i))}}.Append(stream, TQuery)
	}
	r := bytes.NewReader(stream)
	var buf []byte
	for i := uint64(0); i < 10; i++ {
		typ, payload, bufOut, err := ReadFrame(r, buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		buf = bufOut
		if typ != TQuery {
			t.Fatalf("frame %d: type %v", i, typ)
		}
		m, err := DecodeStmtCall(payload)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if m.ID != i {
			t.Fatalf("frame %d: id %d out of order", i, m.ID)
		}
	}
	if _, _, _, err := ReadFrame(r, buf); err != io.EOF {
		t.Fatalf("after last frame: err = %v, want io.EOF", err)
	}
}

// TestFrameLimits pins the framing failure modes: zero-length frames,
// frames beyond MaxFrame (rejected before any allocation), and truncation
// at every prefix length of a valid frame.
func TestFrameLimits(t *testing.T) {
	var zero [4]byte
	if _, _, _, err := ReadFrame(bytes.NewReader(zero[:]), nil); err != ErrFrameEmpty {
		t.Fatalf("zero-length frame: err = %v, want ErrFrameEmpty", err)
	}

	var huge [4]byte
	binary.LittleEndian.PutUint32(huge[:], MaxFrame+1)
	if _, _, _, err := ReadFrame(bytes.NewReader(huge[:]), nil); err != ErrFrameTooLarge {
		t.Fatalf("oversized frame: err = %v, want ErrFrameTooLarge", err)
	}

	frame := StmtCall{ID: 1, Stmt: 2, Params: sampleValues()}.Append(nil, TQuery)
	for cut := 1; cut < len(frame); cut++ {
		_, _, _, err := ReadFrame(bytes.NewReader(frame[:cut]), nil)
		if err == nil {
			t.Fatalf("truncated frame at %d/%d bytes: no error", cut, len(frame))
		}
		if err == io.EOF && cut >= 4 {
			t.Fatalf("truncated frame at %d/%d bytes: clean EOF inside a frame", cut, len(frame))
		}
	}
}

// TestDecodeRejectsTrailing pins that every decoder refuses payload bytes
// after the message — corruption must not pass silently.
func TestDecodeRejectsTrailing(t *testing.T) {
	frame := Simple{ID: 1}.Append(nil, TPing)
	_, payload := readOne(t, frame)
	padded := append(append([]byte{}, payload...), 0xFF)
	if _, err := DecodeSimple(padded); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestDecodeClampsCounts pins the alloc-bomb guard: a payload declaring a
// huge element count with no bytes behind it must fail before allocating.
func TestDecodeClampsCounts(t *testing.T) {
	// RowBatch claiming 2^40 rows in a 12-byte payload.
	payload := binary.AppendUvarint(nil, 1)        // request id
	payload = binary.AppendUvarint(payload, 1<<40) // row count lie
	if _, err := DecodeRowBatch(payload); err == nil {
		t.Fatal("row-count lie accepted")
	}
	// StmtCall claiming 2^40 params.
	payload = binary.AppendUvarint(nil, 1)
	payload = binary.AppendUvarint(payload, 1)
	payload = binary.AppendUvarint(payload, 1<<40)
	if _, err := DecodeStmtCall(payload); err == nil {
		t.Fatal("param-count lie accepted")
	}
	// Strings with a length lie.
	payload = binary.AppendUvarint(nil, 1)
	payload = binary.AppendUvarint(payload, 1)
	payload = binary.AppendUvarint(payload, 1<<40) // string length lie
	if _, err := DecodeRowsHeader(payload); err == nil {
		t.Fatal("string-length lie accepted")
	}
}

// TestCatalogCoversEveryType ensures the golden catalog names every frame
// type (adding a frame without cataloguing it should fail here before the
// golden gate even runs).
func TestCatalogCoversEveryType(t *testing.T) {
	cat := Catalog()
	all := []Type{
		THello, TPrepare, TQuery, TExec, TQuerySQL, TExecSQL, TCloseStmt,
		TSubscribe, TUnsubscribe, TStats, TPing, TQuit,
		THelloOK, TPrepareOK, TRowsHeader, TRowBatch, TRowsDone, TExecOK,
		TErr, TBusy, TStatsOK, TPong, TSubOK, TSubPush, TBye,
	}
	for _, typ := range all {
		if !strings.Contains(cat, typ.String()) {
			t.Errorf("catalog is missing frame %v", typ)
		}
	}
	if strings.Contains(cat, "UNKNOWN(") {
		t.Error("catalog renders an unknown frame type")
	}
}
