package wire

import (
	"bytes"
	"io"
	"testing"

	"shareddb/internal/types"
)

// decodeAny dispatches a payload through the decoder for its frame type,
// mirroring what the server and client read loops do. The return value is
// ignored — fuzzing asserts only "never panic, never hang, never allocate
// unboundedly".
func decodeAny(t Type, payload []byte) {
	switch t {
	case THello:
		DecodeHello(payload)
	case THelloOK:
		DecodeHelloOK(payload)
	case TPrepare:
		DecodePrepare(payload)
	case TPrepareOK:
		DecodePrepareOK(payload)
	case TQuery, TExec:
		DecodeStmtCall(payload)
	case TQuerySQL, TExecSQL, TSubscribe:
		DecodeSQLCall(payload)
	case TCloseStmt, TUnsubscribe:
		DecodeRef(payload)
	case TStats, TPing, TPong:
		DecodeSimple(payload)
	case TQuit, TBye:
		DecodeEmpty(payload)
	case TRowsHeader:
		DecodeRowsHeader(payload)
	case TRowBatch:
		DecodeRowBatch(payload)
	case TRowsDone:
		DecodeRowsDone(payload)
	case TExecOK:
		DecodeExecOK(payload)
	case TErr:
		DecodeError(payload)
	case TBusy:
		DecodeBusy(payload)
	case TStatsOK:
		DecodeStatsOK(payload)
	case TSubOK:
		DecodeSubOK(payload)
	case TSubPush:
		DecodeSubPush(payload)
	}
}

// seedFrames returns one well-formed frame of every message shape, used
// both as the fuzz seed corpus and by TestFuzzSeedsDecode below.
func seedFrames() [][]byte {
	vals := []types.Value{types.Null, types.NewInt(7), types.NewString("Title 07%")}
	rows := []types.Row{{types.NewInt(1), types.NewString("a")}, {}}
	return [][]byte{
		Hello{Version: Version, Window: 32}.Append(nil),
		HelloOK{Version: Version, Window: 64}.Append(nil),
		Prepare{ID: 1, SQL: "SELECT i_id FROM item WHERE i_title LIKE ?"}.Append(nil),
		PrepareOK{ID: 1, Stmt: 2, NumParams: 1, Columns: []string{"i_id"}}.Append(nil),
		StmtCall{ID: 3, Stmt: 2, Params: vals}.Append(nil, TQuery),
		StmtCall{ID: 4, Stmt: 2, Params: vals}.Append(nil, TExec),
		SQLCall{ID: 5, SQL: "SELECT 1", Params: nil}.Append(nil, TQuerySQL),
		SQLCall{ID: 6, SQL: "SELECT 1", Params: vals}.Append(nil, TSubscribe),
		Ref{ID: 7, Ref: 2}.Append(nil, TCloseStmt),
		Ref{ID: 8, Ref: 1}.Append(nil, TUnsubscribe),
		Simple{ID: 9}.Append(nil, TStats),
		Simple{ID: 10}.Append(nil, TPing),
		AppendEmpty(nil, TQuit),
		RowsHeader{ID: 3, Columns: []string{"i_id", "i_title"}}.Append(nil),
		RowBatch{ID: 3, Rows: rows}.Append(nil),
		RowsDone{ID: 3, Total: 2}.Append(nil),
		ExecOK{ID: 4, RowsAffected: 1}.Append(nil),
		Error{ID: 5, Code: CodeBadRequest, Msg: "bad arity"}.Append(nil),
		Busy{ID: 6, RetryAfterNs: 5e6, Reason: "queue full"}.Append(nil),
		StatsOK{ID: 9, Fields: []StatField{{"generations", 1}}}.Append(nil),
		SubOK{ID: 6, Sub: 1}.Append(nil),
		SubPush{Sub: 1, Gen: 2, Full: true, Rows: rows}.Append(nil),
		SubPush{Sub: 1, Gen: 3, Added: rows[:1], Removed: rows[1:]}.Append(nil),
		AppendEmpty(nil, TBye),
	}
}

// TestFuzzSeedsDecode keeps the seed corpus honest outside fuzzing runs:
// every seed must read and decode cleanly.
func TestFuzzSeedsDecode(t *testing.T) {
	for i, frame := range seedFrames() {
		typ, payload, _, err := ReadFrame(bytes.NewReader(frame), nil)
		if err != nil {
			t.Fatalf("seed %d: ReadFrame: %v", i, err)
		}
		decodeAny(typ, payload)
	}
}

// FuzzDecode feeds arbitrary byte streams through the full read-and-decode
// loop. The property is purely defensive: no input may panic, and framing
// errors must be deterministic (the same stream fails the same way twice).
func FuzzDecode(f *testing.F) {
	for _, frame := range seedFrames() {
		f.Add(frame)
	}
	// A stream of several frames, a truncated frame, raw garbage.
	var stream []byte
	for _, frame := range seedFrames()[:4] {
		stream = append(stream, frame...)
	}
	f.Add(stream)
	f.Add(stream[:len(stream)-3])
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x00})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		run := func() error {
			r := bytes.NewReader(data)
			var buf []byte
			for {
				typ, payload, bufOut, err := ReadFrame(r, buf)
				if err != nil {
					return err
				}
				buf = bufOut
				decodeAny(typ, payload)
			}
		}
		err1 := run()
		err2 := run()
		if err1 == io.EOF && err2 != io.EOF {
			t.Fatalf("nondeterministic framing: first EOF, then %v", err2)
		}
	})
}
